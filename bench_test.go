package lesslog

// Benchmark harness for the paper's evaluation (§6): one benchmark per
// figure regenerates the full sweep and reports the headline numbers as
// benchmark metrics (replicas at the 20,000 req/s point per method), plus
// the lookup-cost comparison against Chord, the §2.2 halving guarantee,
// the counter-based eviction mechanism, and the ablations listed in
// DESIGN.md. Absolute wall-clock is incidental; the reported metrics are
// the reproduction targets recorded in EXPERIMENTS.md.
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"strings"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/can"
	"lesslog/internal/chord"
	"lesslog/internal/experiments"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/multisim"
	"lesslog/internal/pastry"
	"lesslog/internal/ptree"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// benchParams is the paper configuration with a single trial per point,
// keeping one full figure regeneration inside a benchmark iteration.
func benchParams() experiments.Params {
	p := experiments.PaperParams()
	p.Trials = 1
	return p
}

// reportFigure exposes each series' replica count at the top rate as a
// benchmark metric (e.g. "lesslog-replicas@20k").
func reportFigure(b *testing.B, fig experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		// Benchmark metric units must be whitespace-free: "10% dead"
		// becomes "10%dead".
		label := strings.ReplaceAll(s.Label, " ", "")
		b.ReportMetric(s.Replicas[len(s.Replicas)-1], label+"-replicas@20k")
	}
}

func benchFigure(b *testing.B, run func(experiments.Params) (experiments.Figure, error)) {
	b.Helper()
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkFigure5 regenerates "An evenly-distributed load": log-based vs
// LessLog vs random, 1,000–20,000 req/s, m=10, cap 100 req/s.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates "An evenly-distributed load on LessLog"
// with 10%, 20% and 30% dead nodes.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates "A locality model" (80% of requests on 20%
// of the nodes).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates "A locality model on LessLog" with dead
// nodes.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkLookupHopsLessLog measures the paper's O(log N) lookup bound:
// average live-ancestor hops to the target over every origin in the
// m=10 system, reported as "avg-hops".
func BenchmarkLookupHopsLessLog(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	v := ptree.NewView(4, live, 0)
	totalHops, lookups := 0, 0
	for i := 0; i < b.N; i++ {
		for origin := bitops.PID(0); origin < 1024; origin++ {
			totalHops += len(v.PathLiveStops(origin)) - 1
			lookups++
		}
	}
	b.ReportMetric(float64(totalHops)/float64(lookups), "avg-hops")
}

// BenchmarkLookupHopsChord is the related-work comparison (§7): Chord
// finger-table routing over the same 1024-node population.
func BenchmarkLookupHopsChord(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	ring := chord.New(10, live)
	rng := xrand.New(1)
	totalHops, lookups := 0, 0
	for i := 0; i < b.N; i++ {
		for t := 0; t < 1024; t++ {
			_, hops := ring.Lookup(bitops.PID(rng.Intn(1024)), uint32(rng.Intn(1024)))
			totalHops += hops
			lookups++
		}
	}
	b.ReportMetric(float64(totalHops)/float64(lookups), "avg-hops")
}

// BenchmarkHalving measures the §2.2 guarantee: the root's load fraction
// remaining after one LessLog replication under an even workload
// (reported as "load-fraction"; the paper proves 0.5).
func BenchmarkHalving(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		live := liveness.NewAllLive(10, 1024)
		sim := loadsim.New(loadsim.Config{
			M: 10, Target: 4, Cap: 100, Live: live,
			Rates: workload.Even(20000, live), Seed: 1,
		})
		before := sim.LoadOf(4)
		p, _ := (replication.LessLog{}).Place(sim, 4)
		sim.AddReplica(p)
		frac = sim.LoadOf(4) / before
	}
	b.ReportMetric(frac, "load-fraction")
}

// BenchmarkEviction measures the §6 counter-based removal mechanism:
// replicas dropped after a 10x rate collapse from the balanced 20,000
// req/s state ("evicted" and "holders-left").
func BenchmarkEviction(b *testing.B) {
	var evicted, left int
	for i := 0; i < b.N; i++ {
		live := liveness.NewAllLive(10, 1024)
		sim := loadsim.New(loadsim.Config{
			M: 10, Target: 4, Cap: 100, Live: live,
			Rates: workload.Even(20000, live), Seed: 1,
		})
		if _, err := sim.Balance(replication.LessLog{}, 0); err != nil {
			b.Fatal(err)
		}
		sim.SetRates(workload.Even(2000, live))
		evicted = sim.EvictCold(20)
		left = len(sim.Holders())
	}
	b.ReportMetric(float64(evicted), "evicted")
	b.ReportMetric(float64(left), "holders-left")
}

// reversedLessLog is the DESIGN.md child-order ablation: REPLICATEFILE
// walking the children list from the *fewest*-offspring end.
type reversedLessLog struct{}

func (reversedLessLog) Name() string { return "lesslog-reversed" }

func (reversedLessLog) Place(ctx replication.Context, k bitops.PID) (bitops.PID, bool) {
	v := ctx.View()
	list := v.ExpandedChildrenList(k)
	for i := len(list) - 1; i >= 0; i-- {
		if !ctx.HasCopy(list[i]) {
			return list[i], true
		}
	}
	return 0, false
}

// BenchmarkAblationChildOrder compares replicas-to-balance for the paper's
// most-offspring-first children list against the reversed order, showing
// why Property 3 ordering matters ("paper-order" vs "reversed-order").
func BenchmarkAblationChildOrder(b *testing.B) {
	run := func(s replication.Strategy) float64 {
		live := liveness.NewAllLive(10, 1024)
		sim := loadsim.New(loadsim.Config{
			M: 10, Target: 4, Cap: 100, Live: live,
			Rates: workload.Even(10000, live), Seed: 1,
		})
		res, err := sim.Balance(s, 0)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.ReplicasCreated)
	}
	var paper, reversed float64
	for i := 0; i < b.N; i++ {
		paper = run(replication.LessLog{})
		reversed = run(reversedLessLog{})
	}
	b.ReportMetric(paper, "paper-order")
	b.ReportMetric(reversed, "reversed-order")
}

// ownOnlyLessLog is the DESIGN.md proportional-choice ablation: the
// overloaded subtree maximum always sheds to its own children list,
// never to the root's.
type ownOnlyLessLog struct{}

func (ownOnlyLessLog) Name() string { return "lesslog-own-only" }

func (ownOnlyLessLog) Place(ctx replication.Context, k bitops.PID) (bitops.PID, bool) {
	v := ctx.View()
	for _, p := range v.ExpandedChildrenList(k) {
		if !ctx.HasCopy(p) {
			return p, true
		}
	}
	// Fall back to the root list only when the own list is exhausted, so
	// the ablation still terminates.
	for _, p := range v.ExpandedChildrenList(v.SubtreeRoot(v.SubtreeID(k))) {
		if !ctx.HasCopy(p) {
			return p, true
		}
	}
	return 0, false
}

// BenchmarkAblationProportional compares the §3 proportional children-list
// choice against always-own-list in a configuration where the target and
// its best children are dead, so the whole system funnels into the
// subtree maximum ("proportional" vs "own-only" replica counts).
func BenchmarkAblationProportional(b *testing.B) {
	run := func(s replication.Strategy) float64 {
		live := liveness.NewAllLive(10, 1024)
		// Kill the target and the top of its tree so the live maximum
		// holds the primary and takes the proportional branch.
		v := ptree.NewView(4, live, 0)
		killed := 0
		for vid := bitops.RootVID(10); killed < 40; vid-- {
			p := v.PID(vid)
			if live.IsLive(p) {
				live.SetDead(p)
				killed++
			}
		}
		sim := loadsim.New(loadsim.Config{
			M: 10, Target: 4, Cap: 100, Live: live,
			Rates: workload.Even(10000, live), Seed: 2,
		})
		res, err := sim.Balance(s, 0)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.ReplicasCreated)
	}
	var prop, own float64
	for i := 0; i < b.N; i++ {
		prop = run(replication.LessLog{})
		own = run(ownOnlyLessLog{})
	}
	b.ReportMetric(prop, "proportional")
	b.ReportMetric(own, "own-only")
}

// BenchmarkLookupHopsCAN completes the §7 baseline trio: CAN (d=2) greedy
// routing over the same 1024-node population, whose O(N^(1/d)) paths
// contrast with the logarithmic LessLog and Chord.
func BenchmarkLookupHopsCAN(b *testing.B) {
	nw := can.New(2, 1024, 9)
	rng := xrand.New(1)
	totalHops, lookups := 0, 0
	for i := 0; i < b.N; i++ {
		for t := 0; t < 1024; t++ {
			_, hops := nw.Lookup(rng.Intn(1024), []float64{rng.Float64(), rng.Float64()})
			totalHops += hops
			lookups++
		}
	}
	b.ReportMetric(float64(totalHops)/float64(lookups), "avg-hops")
}

// BenchmarkLookupHopsPastry adds the Plaxton/Pastry/Tapestry prefix
// routing the paper cites ([6], [8], [11]) to the §7 comparison: base-16
// digits over the same population.
func BenchmarkLookupHopsPastry(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	mesh := pastry.New(10, 4, live)
	rng := xrand.New(1)
	totalHops, lookups := 0, 0
	for i := 0; i < b.N; i++ {
		for t := 0; t < 1024; t++ {
			_, hops := mesh.Lookup(bitops.PID(rng.Intn(1024)), bitops.PID(rng.Intn(1024)))
			totalHops += hops
			lookups++
		}
	}
	b.ReportMetric(float64(totalHops)/float64(lookups), "avg-hops")
}

// BenchmarkMultiFile measures the multi-hot-file extension: replicas to
// balance 20,000 req/s split across 8 files under the aggregate cap.
func BenchmarkMultiFile(b *testing.B) {
	var replicas float64
	for i := 0; i < b.N; i++ {
		live := liveness.NewAllLive(10, 1024)
		s := multisim.New(multisim.Config{
			M: 10, Cap: 100, Live: live,
			Files: multisim.EvenSplit(8, 20000, 10, live),
			Seed:  1,
		})
		res, err := s.Balance(replication.LessLog{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		replicas = float64(res.ReplicasCreated)
	}
	b.ReportMetric(replicas, "replicas")
}

// BenchmarkUpdateCost measures the §2.2 top-down update broadcast at 256
// holders in the 1024-node system.
func BenchmarkUpdateCost(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.UpdateCost(benchParams(), 8)
		if err != nil {
			b.Fatal(err)
		}
		msgs = float64(rows[len(rows)-1].Messages)
	}
	b.ReportMetric(msgs, "messages@256holders")
}

// BenchmarkChurnAvailability runs the §8 dynamic scenario (extension):
// availability at churn rate 2/s for B=0 and B=1, reported as metrics.
func BenchmarkChurnAvailability(b *testing.B) {
	var a0, a1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ChurnTable([]int{0, 1}, []float64{2}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.B == 0 {
				a0 = r.Availability
			} else {
				a1 = r.Availability
			}
		}
	}
	b.ReportMetric(a0, "availability-b0")
	b.ReportMetric(a1, "availability-b1")
}

// BenchmarkEngineGet measures the operational engine's end-to-end get
// path (route + serve) on the paper-scale system.
func BenchmarkEngineGet(b *testing.B) {
	s, err := New(Options{M: 10, InitialNodes: 1024, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Insert(0, "bench-object", []byte("payload")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(PID(i&1023), "bench-object"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsert measures insert placement (including the
// FINDLIVENODE search) with 25% dead slots.
func BenchmarkEngineInsert(b *testing.B) {
	s, err := New(Options{M: 10, InitialNodes: 1024, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(3)
	for killed := 0; killed < 256; {
		p := PID(rng.Intn(1024))
		if s.Live().IsLive(p) {
			if err := s.Fail(p); err != nil {
				b.Fatal(err)
			}
			killed++
		}
	}
	live := s.Live()
	safe := live.LivePIDs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := PID(i & 1023)
		if !live.IsLive(origin) {
			origin = safe
		}
		if _, err := s.Insert(origin, fmt.Sprintf("obj-%d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}
