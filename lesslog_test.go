package lesslog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func newSystem(t *testing.T, opts Options) *System {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeLifecycle(t *testing.T) {
	s := newSystem(t, Options{M: 10, InitialNodes: 1024, Seed: 1})
	if s.M() != 10 || s.B() != 0 || s.NodeCount() != 1024 {
		t.Fatalf("m=%d b=%d n=%d", s.M(), s.B(), s.NodeCount())
	}
	name := "videos/cat.mpg"
	ins, err := s.Insert(0, name, []byte("meow"))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Target != s.Target(name) {
		t.Fatal("insert target mismatch")
	}
	res, err := s.Get(517, name)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.File.Data, []byte("meow")) || res.Hops > 10 {
		t.Fatalf("get = %+v", res)
	}
	if _, err := s.Update(3, name, []byte("purr")); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Get(900, name)
	if !bytes.Equal(res.File.Data, []byte("purr")) {
		t.Fatal("update not visible")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReplicationFlow(t *testing.T) {
	s := newSystem(t, Options{M: 8, InitialNodes: 256, Seed: 2})
	name := "hot-object"
	if _, err := s.Insert(0, name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	target := s.Target(name)
	// Hammer the file, then let the overload check replicate.
	for p := PID(0); p < 256; p++ {
		if _, err := s.Get(p, name); err != nil {
			t.Fatal(err)
		}
	}
	placements := s.ReplicateHot(100)
	if len(placements) != 1 || placements[0].Holder != target {
		t.Fatalf("placements = %+v", placements)
	}
	if got := s.HoldersOf(name); len(got) != 2 {
		t.Fatalf("holders = %v", got)
	}
	// §2.2 halving: a fresh window of one get per node splits evenly.
	s.ResetWindow()
	for p := PID(0); p < 256; p++ {
		s.Get(p, name)
	}
	a := s.ServeCount(target, name)
	b := s.ServeCount(placements[0].Replica, name)
	if a != 128 || b != 128 {
		t.Fatalf("serve split = %d/%d, want 128/128", a, b)
	}
	// Cold window evicts the replica.
	s.ResetWindow()
	if n := s.EvictCold(1); n != 1 {
		t.Fatalf("evicted %d", n)
	}
}

func TestFacadeChurn(t *testing.T) {
	s := newSystem(t, Options{M: 6, B: 2, InitialNodes: 64, Seed: 3})
	for i := 0; i < 20; i++ {
		if _, err := s.Insert(PID(i), fmt.Sprintf("f%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.FaultToleranceDegree("f0"); d != 4 {
		t.Fatalf("degree = %d", d)
	}
	if err := s.Leave(10); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(11); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(10); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Get(0, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatalf("f%d lost after churn: %v", i, err)
		}
	}
	if !s.Live().IsLive(10) || s.Live().IsLive(11) {
		t.Fatal("liveness snapshot wrong")
	}
}

func TestFacadeErrors(t *testing.T) {
	s := newSystem(t, Options{M: 4, InitialNodes: 8})
	if _, err := s.Get(0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get: %v", err)
	}
	if _, err := s.Get(15, "nope"); !errors.Is(err, ErrDeadOrigin) {
		t.Fatalf("dead origin: %v", err)
	}
	if err := s.Join(3); !errors.Is(err, ErrPIDInUse) {
		t.Fatalf("join: %v", err)
	}
	if err := s.Leave(14); !errors.Is(err, ErrNotLive) {
		t.Fatalf("leave: %v", err)
	}
	if _, err := New(Options{M: 4, InitialNodes: 99}); err == nil {
		t.Fatal("invalid options accepted")
	}
	if s.ServeCount(77, "x") != 0 {
		t.Fatal("ServeCount on absent node should be 0")
	}
	st := s.Stats()
	if st.Faults != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
