// Command lesslog-top is the fleet dashboard: it scrapes every peer's
// structured stat snapshot over the wire, merges the raw per-kind latency
// histograms into cluster-wide percentiles (quantiles do not add;
// bucket vectors do — internal/fleet), and reports replica spread,
// repair backlog, trace volume, and the fleet's hottest names by §6
// serve counters; see docs/OBSERVABILITY.md.
//
// Refreshing terminal view (default), one screen per interval:
//
//	lesslog-top -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
//
// One-shot modes for scripts and benchmarks:
//
//	lesslog-top -peers ... -once            # single rendered screen
//	lesslog-top -peers ... -json            # single merged snapshot as JSON
//
// With BENCH_JSON_DIR set, -json also records the merged view through
// internal/benchjson (results/BENCH_obs_cluster.json in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lesslog/internal/fleet"
)

func main() {
	var (
		peers    = flag.String("peers", "", "comma-separated peer wire addresses to scrape (required)")
		interval = flag.Duration("interval", 2*time.Second, "refresh period of the terminal view")
		once     = flag.Bool("once", false, "render one screen and exit")
		jsonOut  = flag.Bool("json", false, "emit one merged snapshot as JSON and exit")
		topK     = flag.Int("top", 10, "hot names to rank")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-peers is required (comma-separated wire addresses)"))
	}

	if *jsonOut {
		c := fleet.Aggregate(fleet.Scrape(addrs), *topK)
		if err := fleet.RecordBench(c); err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c); err != nil {
			fatal(err)
		}
		return
	}
	if *once {
		fleet.Render(os.Stdout, fleet.Aggregate(fleet.Scrape(addrs), *topK))
		return
	}
	for {
		c := fleet.Aggregate(fleet.Scrape(addrs), *topK)
		// Clear screen + home, then one full frame — the classic top loop.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Printf("lesslog-top  %s  every %s\n\n", time.Now().Format("15:04:05"), *interval)
		fleet.Render(os.Stdout, c)
		time.Sleep(*interval)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lesslog-top:", err)
	os.Exit(1)
}
