// Command lesslogd runs a networked LessLog node over TCP, or acts as a
// client against one — the demonstration deployment of the paper's §8
// future work.
//
// Server: every peer needs the full PID→address table (the networked
// status word):
//
//	lesslogd -pid 0 -m 4 -listen 127.0.0.1:7100 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101
//	lesslogd -pid 1 -m 4 -listen 127.0.0.1:7101 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101
//
// Client:
//
//	lesslogd -connect 127.0.0.1:7100 -op insert -name hello -data "world"
//	lesslogd -connect 127.0.0.1:7101 -op get -name hello
//	lesslogd -connect 127.0.0.1:7101 -op get -name hello -locate  # locate-then-fetch data plane
//	lesslogd -connect 127.0.0.1:7101 -op get -name hello -trace   # print the live route
//	lesslogd -connect 127.0.0.1:7101 -op locate -name hello       # resolve the holder, no payload
//	lesslogd -connect 127.0.0.1:7101 -op update -name hello -data "again"
//	lesslogd -connect 127.0.0.1:7101 -op update -name hello -data "x" -trace  # print the fan-out tree
//	lesslogd -connect 127.0.0.1:7100 -op stat
//	lesslogd -connect 127.0.0.1:7100 -op stat -json               # structured snapshot
//	lesslogd -connect 127.0.0.1:7100 -op traces                   # the peer's sampled trace ring
//
// With -locate, gets resolve the holder through a payload-free locate walk
// and fetch the file in one direct hop, caching the route hint for later
// gets in the same process; `-serve-locate=false` runs the server as a
// pre-locate build (clients downgrade to the relay path automatically).
// See docs/ROUTING.md.
//
// Observability: `-admin addr` exposes /metrics (Prometheus text),
// /healthz, /trees, /traces and /debug/pprof/* over HTTP, and
// `-log-level` selects the structured-log threshold (debug, info, warn,
// error). The always-on trace plane head-samples 1-in-N entry requests
// (-trace-every, -1 disables), tail-retains slow or errored ones past
// -trace-slow, and keeps -trace-ring of them in memory; `lesslog-top`
// aggregates the stat snapshots of a whole fleet. See
// docs/OBSERVABILITY.md.
//
// Peer-to-peer RPC behavior is tunable with -dial-timeout (default 2s),
// -rpc-timeout (default 5s), -retries (default 2, idempotent ops only,
// -1 disables) and -pool (idle connections kept per peer, default 4, -1
// dials per call); see docs/TRANSPORT.md.
//
// Background replica repair (the anti-entropy loop of docs/REPAIR.md) is
// enabled with -repair-interval; -repair-budget bounds its bandwidth in
// bytes/sec and -repair-tomb-ttl sets the delete-tombstone GC horizon. A
// locate client that hits a pre-locate fabric downgrades to the relay
// path for -downgrade-ttl before probing again.
//
// Update broadcasts past -notify-threshold bytes propagate payload-free:
// the tree carries a notify (name, version, checksum, sources) and each
// replica pulls the body in chunks from a converged copy, so tree bytes
// stop scaling with replica count (docs/ROUTING.md "The write plane").
//
// Durable storage (docs/STORAGE.md): `-data-dir` gives the peer a
// segmented write-ahead log — every mutation is appended there, a
// restart replays it (truncating any torn tail) and re-announces the
// recovered inventory through the repair plane. `-fsync` picks the
// durability policy (always / interval / never), `-fsync-every` the
// interval flush period, `-segment-size` the rotation threshold.
// SIGTERM/SIGINT leaves gracefully and fsyncs the log before exit; a
// second signal exits immediately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/netnode"
	"lesslog/internal/repair"
	"lesslog/internal/trace"
	"lesslog/internal/tracering"
	"lesslog/internal/transport"
	"lesslog/internal/wal"
)

func main() {
	var (
		pid       = flag.Uint("pid", 0, "server: this node's PID")
		m         = flag.Int("m", 4, "server: identifier width")
		b         = flag.Int("b", 0, "server: fault-tolerance bits")
		listen    = flag.String("listen", "127.0.0.1:0", "server: listen address")
		peers     = flag.String("peers", "", "server: PID=addr pairs, comma separated (include self)")
		bootstrap = flag.String("bootstrap", "", "server: join an existing system via this peer instead of -peers")
		maintain  = flag.Duration("maintain", 0, "server: overload/eviction maintenance interval (0 disables)")
		repairIv  = flag.Duration("repair-interval", 0, "server: anti-entropy replica repair interval (0 disables)")
		repairBw  = flag.Int("repair-budget", 0, "server: repair bandwidth budget in bytes/sec (0 selects the default, -1 unlimited)")
		repairTT  = flag.Duration("repair-tomb-ttl", 0, "server: delete-tombstone GC horizon (0 selects the default, -1 keeps them until restart)")
		dataDir   = flag.String("data-dir", "", "server: directory for the durable write-ahead log (replayed on start, flushed on exit)")
		segSize   = flag.Int64("segment-size", 0, "server: log segment rotation size in bytes (0 selects the default)")
		fsyncPol  = flag.String("fsync", "interval", "server: log durability policy: always (ack = on disk), interval or never")
		fsyncIv   = flag.Duration("fsync-every", 0, "server: flush period for -fsync interval (0 selects the default)")
		threshold = flag.Uint64("threshold", 100, "server: per-window serve count that triggers replication")
		evictLow  = flag.Uint64("evict-below", 1, "server: replicas serving fewer gets per window are dropped")
		dialTO    = flag.Duration("dial-timeout", transport.DefaultDialTimeout, "server: peer connection establishment deadline")
		rpcTO     = flag.Duration("rpc-timeout", transport.DefaultRPCTimeout, "server: per-RPC write+read deadline")
		retries   = flag.Int("retries", transport.DefaultRetries, "server: extra attempts for idempotent peer RPCs (-1 disables)")
		pool      = flag.Int("pool", transport.DefaultPoolSize, "server: idle connections kept per peer (-1 dials per call)")
		pipeWk    = flag.Int("pipeline-workers", transport.DefaultPipelineWorkers, "server: concurrent pipelined requests handled per connection")
		fanWk     = flag.Int("fanout-workers", netnode.DefaultFanoutWorkers, "server: concurrent broadcast RPC legs per update/delete")
		admin     = flag.String("admin", "", "server: admin HTTP address for /metrics, /healthz, /trees, /debug/pprof ('' disables)")
		logLevel  = flag.String("log-level", "info", "server: structured log threshold: debug, info, warn or error")
		srvLocate = flag.Bool("serve-locate", true, "server: answer locate and local-only gets (false emulates a pre-locate build)")
		notifyTh  = flag.Int("notify-threshold", 0, "server: update size in bytes past which broadcasts propagate by notify/pull instead of carrying the payload (0 selects the default, -1 disables)")
		trEvery   = flag.Int("trace-every", 0, "server: head-sample 1-in-N entry requests into the trace ring (0 selects the default, -1 disables tracing)")
		trSlow    = flag.Duration("trace-slow", 0, "server: latency past which unsampled requests are tail-retained anyway (0 selects the default)")
		trRing    = flag.Int("trace-ring", 0, "server: retained trace capacity (0 selects the default)")
		connect   = flag.String("connect", "", "client: peer address to contact")
		op        = flag.String("op", "get", "client: insert, get, update, delete, locate, stat or traces")
		name      = flag.String("name", "", "client: file name")
		data      = flag.String("data", "", "client: file contents")
		traced    = flag.Bool("trace", false, "client: with -op get, locate, update or delete, record and print the wire-level route")
		locate    = flag.Bool("locate", false, "client: serve gets through the locate-then-fetch data plane")
		downTTL   = flag.Duration("downgrade-ttl", 0, "client: with -locate, how long to stay on the relay path after an unknown-kind answer (0 selects the default)")
		asJSON    = flag.Bool("json", false, "client: with -op stat, print the structured snapshot as JSON")
	)
	flag.Parse()

	if *connect != "" {
		runClient(*connect, *op, *name, *data, *traced, *locate, *downTTL, *asJSON)
		return
	}

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(err)
	}
	policy, err := wal.ParsePolicy(*fsyncPol)
	if err != nil {
		fatal(err)
	}

	peer, err := netnode.Listen(netnode.Config{
		PID: bitops.PID(*pid), M: *m, B: *b, Addr: *listen, DataDir: *dataDir,
		SegmentSize: *segSize, Fsync: policy, FsyncEvery: *fsyncIv,
		PipelineWorkers: *pipeWk, FanoutWorkers: *fanWk,
		DisableLocate:    !*srvLocate,
		NotifyThreshold:  *notifyTh,
		TraceSampleEvery: *trEvery, TraceSlow: *trSlow, TraceRingSize: *trRing,
		Logger: logger,
		Transport: transport.Config{
			DialTimeout: *dialTO,
			RPCTimeout:  *rpcTO,
			Retries:     *retries,
			PoolSize:    *pool,
		},
	})
	if err != nil {
		fatal(err)
	}
	log := logger.With("component", "lesslogd", "pid", *pid)
	if *admin != "" {
		adm, err := peer.ServeAdmin(*admin)
		if err != nil {
			fatal(err)
		}
		defer adm.Close()
	}
	if *maintain > 0 {
		peer.StartMaintenance(*maintain, *threshold, *evictLow)
		log.Info("maintenance enabled",
			"interval", *maintain, "threshold", *threshold, "evict_below", *evictLow)
	}
	if *repairIv > 0 {
		peer.StartRepair(repair.Config{Interval: *repairIv, Budget: *repairBw, TombstoneTTL: *repairTT})
		log.Info("replica repair enabled", "interval", *repairIv, "budget", *repairBw, "tomb_ttl", *repairTT)
	}
	if *bootstrap != "" {
		if err := peer.Join(*bootstrap); err != nil {
			fatal(err)
		}
		log.Info("serving after join", "bootstrap", *bootstrap, "addr", peer.Addr())
		waitForSignal(peer, log)
		return
	}
	table := map[bitops.PID]string{bitops.PID(*pid): peer.Addr()}
	if *peers != "" {
		for _, pair := range strings.Split(*peers, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("bad peer entry %q", pair))
			}
			id, err := strconv.Atoi(kv[0])
			if err != nil || id < 0 || id >= bitops.Slots(*m) {
				fatal(fmt.Errorf("bad peer PID %q", kv[0]))
			}
			table[bitops.PID(id)] = kv[1]
		}
	}
	peer.SetAddrs(table)
	log.Info("serving", "addr", peer.Addr(), "m", *m, "b", *b, "peers", len(table))
	waitForSignal(peer, log)
}

// newLogger builds the process logger at the requested threshold.
func newLogger(level string) (*slog.Logger, error) {
	var l slog.Level
	switch strings.ToLower(level) {
	case "debug":
		l = slog.LevelDebug
	case "info":
		l = slog.LevelInfo
	case "warn":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

// waitForSignal blocks until SIGINT/SIGTERM, then shuts down gracefully:
// Leave hands inserted copies to their new primaries, Close drains the
// listener and in-flight handlers and — with -data-dir — flushes and
// fsyncs the open log segment, so a signalled exit never leaves an
// unsynced tail for the next start to truncate. A second signal skips
// the graceful path and exits immediately (the log stays crash-safe:
// recovery replay handles whatever was not yet flushed).
func waitForSignal(peer *netnode.Peer, log *slog.Logger) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Info("signal received; leaving and shutting down", "signal", s.String())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := peer.Leave(); err != nil {
			log.Error("leave failed", "err", err)
		}
		if err := peer.Close(); err != nil {
			log.Error("shutdown flush failed", "err", err)
		}
	}()
	select {
	case <-done:
		log.Info("shutdown complete")
	case s := <-sig:
		log.Warn("second signal; exiting without graceful leave", "signal", s.String())
		os.Exit(1)
	}
}

func runClient(addr, op, name, data string, traced, locate bool, downTTL time.Duration, asJSON bool) {
	cl := netnode.NewClient(addr)
	if locate {
		cl = netnode.NewLocateClientWith(addr, transport.New(transport.Config{}, nil),
			netnode.LocateOptions{RetryAfter: downTTL})
	}
	switch op {
	case "insert":
		if err := cl.Insert(name, []byte(data)); err != nil {
			fatal(err)
		}
		fmt.Printf("inserted %q\n", name)
	case "get":
		get := cl.Get
		if traced {
			get = cl.GetTraced
		}
		res, err := get(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("served by P(%d) in %d hops (v%d): %s\n", res.ServedBy, res.Hops, res.Version, res.Data)
		if traced {
			fmt.Printf("route: %s\n%s", trace.HopRoute(res.Path), trace.HopTable(res.Path))
		}
	case "locate":
		loc := cl.Locate
		if traced {
			loc = cl.LocateTraced
		}
		res, err := loc(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("held by P(%d) at %s (v%d) after %d hops\n", res.PID, res.Addr, res.Version, res.Hops)
		if traced {
			fmt.Printf("route: %s\n%s", trace.HopRoute(res.Path), trace.HopTable(res.Path))
		}
	case "update":
		if traced {
			n, path, err := cl.UpdateTraced(name, []byte(data))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("updated %d copies of %q\n", n, name)
			fmt.Printf("fan-out:\n%s", trace.HopTable(path))
			break
		}
		n, err := cl.Update(name, []byte(data))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("updated %d copies of %q\n", n, name)
	case "delete":
		if traced {
			n, path, err := cl.DeleteTraced(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("deleted %d copies of %q\n", n, name)
			fmt.Printf("fan-out:\n%s", trace.HopTable(path))
			break
		}
		n, err := cl.Delete(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("deleted %d copies of %q\n", n, name)
	case "stat":
		if asJSON {
			snap, err := cl.StatSnapshot()
			if err != nil {
				fatal(err)
			}
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
			return
		}
		out, err := cl.Stat()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	case "traces":
		snap, err := cl.Traces()
		if err != nil {
			fatal(err)
		}
		if asJSON {
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("trace ring: %d recorded, %d notable (slow >= %s)\n",
			snap.Recorded, snap.Noted, time.Duration(snap.SlowNS))
		for _, t := range append(append([]tracering.Trace(nil), snap.Recent...), snap.Notable...) {
			status := "ok"
			if t.Err != "" {
				status = "err: " + t.Err
			}
			fmt.Printf("\n%016x %-8s %-24s %8.3fms %s\n", t.ID, t.Kind, t.Name,
				float64(t.Dur)/1e6, status)
			if len(t.Hops) > 0 {
				fmt.Print(trace.HopTable(t.Hops))
			}
		}
	default:
		fatal(fmt.Errorf("unknown op %q", op))
	}
	if locate {
		st := cl.LocateStats()
		fmt.Printf("data plane: %d locates, %d hint hits, %d relays, %d downgrades\n",
			st.Locates.Load(), st.HintHits.Load(), st.Relays.Load(), st.Downgrades.Load())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lesslogd:", err)
	os.Exit(1)
}
