package main

// Kill-and-recover E2E at the binary level (docs/STORAGE.md): a real
// lesslogd process with -data-dir and -fsync always takes a write burst,
// dies by SIGKILL mid-burst, and restarts from the same directory. Every
// store the client saw acknowledged must come back at its version (ack ⇒
// fsynced ⇒ recovered; the torn tail is truncated, never served), and
// the restarted daemon re-announces its recovered inventory through the
// repair plane — the in-process bootstrap peer receives the copies it is
// the required holder for without any client re-insert.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/netnode"
)

var addrRe = regexp.MustCompile(`msg="serving after join".* addr=([0-9.]+:[0-9]+)`)

// startDaemon launches the built lesslogd and returns its process and
// bound address (parsed from the structured log).
func startDaemon(t *testing.T, bin, dataDir, bootstrap string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-pid", "0", "-m", "2",
		"-bootstrap", bootstrap,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-segment-size", "65536",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never logged its serving address")
		return nil, ""
	}
}

func TestLesslogdKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := filepath.Join(t.TempDir(), "lesslogd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// In-process bootstrap peer at PID 1: join target, repair partner,
	// and the observer for the re-announce assertion.
	boot, err := netnode.Listen(netnode.Config{PID: 1, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	boot.SetAddrs(map[bitops.PID]string{1: boot.Addr()})

	dataDir := filepath.Join(t.TempDir(), "data")
	daemon, addr := startDaemon(t, bin, dataDir, boot.Addr())
	defer daemon.Process.Kill()

	// Write burst straight at the daemon (KindStore places locally).
	// Everything acked before the SIGKILL must survive it.
	cl := netnode.NewClient(addr)
	type acked struct {
		name    string
		version uint64
	}
	var (
		mu   sync.Mutex
		acks []acked
	)
	stop := make(chan struct{})
	burstDone := make(chan struct{})
	go func() {
		defer close(burstDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("burst/%04d", i)
			v := uint64(i + 1)
			if err := cl.Store(name, []byte(strings.Repeat("x", 64)+name), v, false); err != nil {
				return // the kill landed mid-RPC; that write was never acked
			}
			mu.Lock()
			acks = append(acks, acked{name, v})
			mu.Unlock()
		}
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(acks)
		mu.Unlock()
		if n >= 400 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst stalled at %d acks", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// SIGKILL mid-burst: no flush, no goodbye.
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	close(stop)
	<-burstDone
	mu.Lock()
	final := append([]acked(nil), acks...)
	mu.Unlock()
	t.Logf("SIGKILL after %d acked stores", len(final))

	// Restart from the same directory; recovery must replay every acked
	// record (truncating whatever tail the kill tore).
	daemon2, addr2 := startDaemon(t, bin, dataDir, boot.Addr())
	defer daemon2.Process.Kill()
	cl2 := netnode.NewClient(addr2)
	for _, a := range final {
		res, err := cl2.Get(a.name)
		if err != nil {
			t.Fatalf("acked %s lost after kill -9: %v", a.name, err)
		}
		if res.Version != a.version {
			t.Fatalf("%s recovered at v%d, acked v%d", a.name, res.Version, a.version)
		}
	}

	// Restart warming: the daemon's background AnnounceInventory pushes
	// recovered copies to their required holders — the bootstrap peer must
	// end up holding the names it is primary for, with no client involved.
	var wantOnBoot []string
	for _, a := range final {
		if hashring.Default.Target(a.name, 2) == 1 {
			wantOnBoot = append(wantOnBoot, a.name)
		}
	}
	if len(wantOnBoot) == 0 {
		t.Fatal("burst produced no names targeting the bootstrap peer")
	}
	warmDeadline := time.Now().Add(20 * time.Second)
	for {
		missing := 0
		for _, name := range wantOnBoot {
			if !boot.HasFile(name) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(warmDeadline) {
			t.Fatalf("re-announce incomplete: %d/%d names never reached the bootstrap peer",
				missing, len(wantOnBoot))
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("restart recovered %d acked names and re-announced %d to their primary",
		len(final), len(wantOnBoot))

	// Graceful shutdown: SIGTERM flushes and exits zero.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- daemon2.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon hung on SIGTERM")
	}
	if _, err := os.Stat(dataDir); err != nil {
		t.Fatalf("data dir gone after graceful exit: %v", err)
	}
}
