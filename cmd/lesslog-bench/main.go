// Command lesslog-bench regenerates the paper's evaluation figures
// (Huang, Huang, Chou, "LessLog", IPDPS 2004, §6): the number of replicas
// each replication method creates to reach a load-balanced state.
//
//	lesslog-bench                 # all four figures, text tables
//	lesslog-bench -figure 5       # one figure
//	lesslog-bench -format csv     # machine-readable output
//	lesslog-bench -outdir results # also write figure<N>.csv files
//	lesslog-bench -evict          # the §6 counter-based removal demo
//	lesslog-bench -trials 5       # average more seeds per point
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lesslog/internal/experiments"
	"lesslog/internal/vis"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure to regenerate: 5, 6, 7, 8 or all")
		format  = flag.String("format", "table", "output format: table, csv or markdown")
		outdir  = flag.String("outdir", "", "directory to also write figure<N>.csv files into")
		trials  = flag.Int("trials", 3, "seeds averaged per sweep point")
		seed    = flag.Uint64("seed", 1, "base random seed")
		rateMin = flag.Float64("rate-min", 1000, "sweep start, requests/second")
		rateMax = flag.Float64("rate-max", 20000, "sweep end, requests/second")
		step    = flag.Float64("rate-step", 1000, "sweep step, requests/second")
		evict   = flag.Bool("evict", false, "run the counter-based eviction demonstration instead")
		hops    = flag.Bool("hops", false, "run the LessLog/Chord/CAN lookup-hop comparison instead")
		churn   = flag.Bool("churn", false, "run the availability-under-churn extension instead")
		sens    = flag.Bool("sensitivity", false, "run the system-size sensitivity sweep instead")
		plot    = flag.Bool("plot", false, "also draw each figure as an ASCII chart")
		pathlen = flag.Bool("pathlen", false, "run the hops-vs-replicas extension instead")
		multi   = flag.Bool("multifile", false, "run the multi-hot-file extension instead")
		logcost = flag.Bool("logcost", false, "run the client-access-log footprint comparison instead")
		upcost  = flag.Bool("updatecost", false, "run the update-broadcast cost sweep instead")
		flash   = flag.Bool("flash", false, "run the flash-crowd time-to-balance dynamics instead")
		ftcost  = flag.Bool("ftcost", false, "run the fault-tolerance-degree cost sweep instead")
		latency = flag.Bool("latency", false, "run the queueing-latency comparison instead")
	)
	flag.Parse()

	p := experiments.PaperParams()
	p.Trials = *trials
	p.Seed = *seed
	p.RateMin, p.RateMax, p.RateStep = *rateMin, *rateMax, *step

	switch {
	case *evict:
		runEviction(p)
		return
	case *hops:
		stats := experiments.HopComparison(10, 5000, *seed)
		fmt.Print(experiments.HopTable(stats, 10))
		return
	case *churn:
		rows, err := experiments.ChurnTable([]int{0, 1, 2}, []float64{0.5, 1, 2, 4}, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.ChurnTableString(rows))
		return
	case *sens:
		rows, err := experiments.SensitivityM([]int{6, 7, 8, 9, 10, 11, 12}, 10, 100, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.SensitivityTable(rows, 10, 100))
		return
	case *pathlen:
		pts, err := experiments.HopsVsReplicas(p, 20000, 32)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.HopsVsReplicasTable(pts))
		return
	case *multi:
		rows, err := experiments.MultiFile(p, 20000, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.MultiFileTable(rows, 20000))
		return
	case *logcost:
		rows, err := experiments.LogOverhead(p, []int{1000, 5000, 20000, 100000}, 1<<22)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.LogOverheadTable(rows))
		return
	case *upcost:
		rows, err := experiments.UpdateCost(p, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.UpdateCostTable(rows))
		return
	case *flash:
		rows, err := experiments.FlashCrowd(p, 12, 4, 100)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FlashCrowdTable(rows, 100))
		return
	case *ftcost:
		rows, err := experiments.FTCost(p, 20000, []int{0, 1, 2, 3, 4})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FTCostTable(rows, 20000))
		return
	case *latency:
		rows, err := experiments.Latency(p, []float64{80, 150, 300, 600}, 0.001)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.LatencyTable(rows))
		return
	}

	ids := []string{"5", "6", "7", "8"}
	if *figure != "all" {
		ids = []string{*figure}
	}
	for _, id := range ids {
		fig, err := experiments.ByID(id, p)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "table":
			fmt.Println(experiments.Table(fig))
		case "csv":
			fmt.Println(experiments.CSV(fig))
		case "markdown":
			fmt.Println(experiments.Markdown(fig))
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if *plot {
			series := make([]vis.Series, len(fig.Series))
			for i, s := range fig.Series {
				series[i] = vis.Series{Label: s.Label, Ys: s.Replicas}
			}
			fmt.Println(vis.Plot(fig.Title+" (replicas vs req/s)", fig.Rates, series, 64, 16))
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outdir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(experiments.CSV(fig)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func runEviction(p experiments.Params) {
	pts, err := experiments.Eviction(p, []float64{5000, 10000, 20000}, 2000, 20)
	if err != nil {
		fatal(err)
	}
	fmt.Println("counter-based replica removal after a rate collapse to 2000 req/s (§6)")
	fmt.Printf("%-14s%-16s%-10s%-14s\n", "balanced at", "holders before", "evicted", "holders after")
	for _, pt := range pts {
		fmt.Printf("%-14.0f%-16d%-10d%-14d\n", pt.HighRate, pt.HoldersAtHigh, pt.Removed, pt.HoldersAfter)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lesslog-bench:", err)
	os.Exit(1)
}
