// Command lesslog-sim runs a single load-balance simulation point with
// every knob exposed: the workload, the replication strategy, the dead
// fraction and the system parameters. It prints the replicas created and
// the final load distribution.
//
//	lesslog-sim -rate 20000 -strategy lesslog
//	lesslog-sim -rate 12000 -strategy random -dead 0.2 -locality
//	lesslog-sim -m 12 -b 2 -cap 50 -rate 5000 -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/dynsim"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/metrics"
	"lesslog/internal/replication"
	"lesslog/internal/vis"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

func main() {
	var (
		m        = flag.Int("m", 10, "identifier width (2^m slots)")
		b        = flag.Int("b", 0, "fault-tolerance bits")
		target   = flag.Uint("target", 4, "popular file's target PID")
		cap      = flag.Float64("cap", 100, "per-node load cap, requests/second")
		rate     = flag.Float64("rate", 20000, "total incoming request rate")
		dead     = flag.Float64("dead", 0, "fraction of dead nodes")
		locality = flag.Bool("locality", false, "use the 80/20 locality workload")
		hotShare = flag.Float64("hot-share", 0.8, "locality: request share of the hot region")
		hotFrac  = flag.Float64("hot-frac", 0.2, "locality: node fraction of the hot region")
		strategy = flag.String("strategy", "lesslog", "replication strategy: lesslog, random or log-based")
		seed     = flag.Uint64("seed", 1, "random seed")
		verbose  = flag.Bool("verbose", false, "print the per-holder load distribution")

		dyn         = flag.Bool("dyn", false, "run a dynamic discrete-event scenario instead (§8)")
		dynNodes    = flag.Int("dyn-nodes", 256, "dynamic: initial live nodes")
		dynFiles    = flag.Int("dyn-files", 50, "dynamic: files inserted at t=0")
		dynReqRate  = flag.Float64("dyn-req-rate", 200, "dynamic: get arrivals per second")
		dynChurn    = flag.Float64("dyn-churn", 1, "dynamic: membership events per second")
		dynDuration = flag.Float64("dyn-duration", 120, "dynamic: virtual seconds to simulate")
		dynZipf     = flag.Float64("dyn-zipf", 1.0, "dynamic: file popularity skew")
	)
	flag.Parse()

	if *dyn {
		sc := dynsim.DefaultScenario()
		sc.M, sc.B = *m, *b
		sc.InitialNodes = *dynNodes
		sc.Files = *dynFiles
		sc.RequestRate = *dynReqRate
		sc.ChurnRate = *dynChurn
		sc.Duration = *dynDuration
		sc.ZipfS = *dynZipf
		sc.Seed = *seed
		res, err := dynsim.Run(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dynamic scenario (m=%d b=%d, %g virtual seconds):\n%s\n",
			sc.M, sc.B, sc.Duration, res)
		fmt.Printf("engine stats: %+v\n", res.Stats)
		if len(res.Windows) >= 2 {
			xs := make([]float64, len(res.Windows))
			avail := make([]float64, len(res.Windows))
			nodes := make([]float64, len(res.Windows))
			for i, w := range res.Windows {
				xs[i] = float64(w.At)
				avail[i] = w.Availability * 100
				nodes[i] = float64(w.Nodes)
			}
			fmt.Println(vis.Plot("per-window availability (%) and live nodes over time", xs,
				[]vis.Series{{Label: "availability %", Ys: avail}, {Label: "live nodes", Ys: nodes}},
				64, 12))
		}
		return
	}

	var strat replication.Strategy
	switch *strategy {
	case "lesslog":
		strat = replication.LessLog{}
	case "random":
		strat = replication.Random{}
	case "log-based":
		strat = replication.LogBased{}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	rng := xrand.New(*seed)
	live := liveness.NewAllLive(*m, bitops.Slots(*m))
	if *dead > 0 {
		killed := workload.KillRandom(live, *dead, bitops.PID(^uint32(0)), rng.Fork())
		fmt.Printf("killed %d of %d nodes\n", len(killed), bitops.Slots(*m))
	}
	var rates workload.Rates
	if *locality {
		rates = workload.Locality(*rate, *hotShare, *hotFrac, live, rng.Fork())
	} else {
		rates = workload.Even(*rate, live)
	}

	sim := loadsim.New(loadsim.Config{
		M: *m, B: *b, Target: bitops.PID(*target), Cap: *cap,
		Live: live, Rates: rates, Seed: rng.Uint64(),
	})
	fmt.Printf("initial: %s\n", sim.Summary())
	res, err := sim.Balance(strat, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy=%s replicas=%d balanced=%v\n", res.Strategy, res.ReplicasCreated, res.Balanced)
	fmt.Printf("final: %s\n", res.Summary)

	if *verbose {
		loads := sim.Loads()
		holders := sim.Holders()
		sort.Slice(holders, func(i, j int) bool { return loads[holders[i]] > loads[holders[j]] })
		fmt.Println("\nper-holder serve rates (descending):")
		var samples []float64
		for _, h := range holders {
			fmt.Printf("  P(%4d)  %8.2f req/s\n", h, loads[h])
			samples = append(samples, loads[h])
		}
		q := metrics.Quantiles(samples, 0.5, 0.9, 0.99)
		fmt.Printf("load quantiles: p50=%.1f p90=%.1f p99=%.1f\n", q[0], q[1], q[2])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lesslog-sim:", err)
	os.Exit(1)
}
