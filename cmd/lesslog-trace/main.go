// Command lesslog-trace prints LessLog's lookup-tree structures and
// routing paths — a textual rendering of the paper's Figures 1–4 and its
// worked examples.
//
//	lesslog-trace -m 4 -virtual                  # Figure 1
//	lesslog-trace -m 4 -root 4                   # Figure 2
//	lesslog-trace -m 4 -root 4 -dead 0,5         # Figure 3
//	lesslog-trace -m 4 -root 4 -route 8          # P(8) → P(0) → P(4)
//	lesslog-trace -m 4 -root 4 -dead 0,5 -children 4
//	lesslog-trace -m 4 -root 4 -conversions 16   # the PID↔VID table
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/trace"
)

func main() {
	var (
		m        = flag.Int("m", 4, "identifier width")
		b        = flag.Int("b", 0, "fault-tolerance bits")
		root     = flag.Uint("root", 4, "root PID of the physical lookup tree")
		deadList = flag.String("dead", "", "comma-separated dead PIDs, e.g. 0,5")
		virtual  = flag.Bool("virtual", false, "print the virtual lookup tree instead")
		route    = flag.Int("route", -1, "trace a get from this origin PID")
		children = flag.Int("children", -1, "print the (expanded) children list of this PID")
		conv     = flag.Int("conversions", 0, "print the PID↔VID table for the first N PIDs")
		dot      = flag.Bool("dot", false, "emit the physical tree as Graphviz DOT")
	)
	flag.Parse()

	if *virtual {
		fmt.Print(trace.Virtual(*m))
		return
	}
	live := liveness.NewAllLive(*m, bitops.Slots(*m))
	if *deadList != "" {
		for _, part := range strings.Split(*deadList, ",") {
			pid, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || pid < 0 || pid >= bitops.Slots(*m) {
				fmt.Fprintf(os.Stderr, "lesslog-trace: bad dead PID %q\n", part)
				os.Exit(1)
			}
			live.SetDead(bitops.PID(pid))
		}
	}
	did := false
	if *dot {
		fmt.Print(trace.DOT(bitops.PID(*root), *m, live))
		did = true
	}
	if *route >= 0 {
		fmt.Println(trace.Route(bitops.PID(*route), bitops.PID(*root), live, *b))
		did = true
	}
	if *children >= 0 {
		fmt.Printf("children list of P(%d) in the tree of P(%d): %s\n",
			*children, *root, trace.ChildrenList(bitops.PID(*children), bitops.PID(*root), live, *b))
		did = true
	}
	if *conv > 0 {
		fmt.Print(trace.Conversions(bitops.PID(*root), *m, *conv))
		did = true
	}
	if !did {
		fmt.Print(trace.Physical(bitops.PID(*root), *m, live))
	}
}
