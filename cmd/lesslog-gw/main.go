// Command lesslog-gw runs a LessLog client gateway: the aggregation tier
// between client fleets and a networked peer fabric. It speaks the same
// wire protocol as a peer, so any client (`lesslogd -connect`,
// netnode.Client) points at the gateway unchanged and gains singleflight
// coalescing, a versioned read-through cache, health-aware entry-peer
// selection and admission control; see docs/GATEWAY.md.
//
// Gateway:
//
//	lesslog-gw -listen 127.0.0.1:7200 -peers 127.0.0.1:7100,127.0.0.1:7101
//	lesslog-gw -listen 127.0.0.1:7200 -peers 127.0.0.1:7100 \
//	    -cache-size 8192 -cache-ttl 2s -max-inflight 1024 -queue-timeout 100ms \
//	    -hint-size 8192 -hint-ttl 10s -admin 127.0.0.1:9200
//
// Cache misses resolve through the locate-then-fetch data plane (route
// hints plus one-hop direct fetches, docs/ROUTING.md); `-locate=false`
// relays payloads through the lookup path as pre-locate gateways did.
//
// Load generator (the §6 80/20 hot-key workload against any msg-speaking
// endpoint — a gateway to measure the edge, a bare peer for a baseline):
//
//	lesslog-gw -load 127.0.0.1:7200 -files 50 -clients 8 -duration 10s
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lesslog/internal/gateway"
	"lesslog/internal/netnode"
	"lesslog/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "gateway: client-facing listen address")
		peers    = flag.String("peers", "", "gateway: comma-separated fabric entry peer addresses")
		cacheSz  = flag.Int("cache-size", gateway.DefaultCacheSize, "gateway: read cache capacity in entries (-1 disables)")
		cacheTTL = flag.Duration("cache-ttl", gateway.DefaultCacheTTL, "gateway: max age served without revisiting the fabric")
		locate   = flag.Bool("locate", true, "gateway: serve misses through the locate-then-fetch data plane (false relays payloads)")
		hintSz   = flag.Int("hint-size", 0, "gateway: route-hint cache capacity in entries (0 selects the default)")
		hintTTL  = flag.Duration("hint-ttl", 0, "gateway: max age a route hint steers direct fetches (0 selects the default)")
		downTTL  = flag.Duration("downgrade-ttl", 0, "gateway: how long to stay on the relay path after an unknown-kind locate answer (0 selects the default)")
		maxInFl  = flag.Int("max-inflight", gateway.DefaultMaxInFlight, "gateway: admitted request cap (-1 unlimited)")
		queueTO  = flag.Duration("queue-timeout", gateway.DefaultQueueTimeout, "gateway: max wait for an admission slot before shedding")
		admin    = flag.String("admin", "", "gateway: admin HTTP address for /metrics, /healthz, /traces, /debug/pprof ('' disables)")
		trEvery  = flag.Int("trace-every", 0, "gateway: head-sample 1-in-N admitted requests into the edge trace ring (0 selects the default, <0 disables)")
		trSlow   = flag.Duration("trace-slow", 0, "gateway: tail-retain requests at least this slow even when unsampled (0 selects the default)")
		trRing   = flag.Int("trace-ring", 0, "gateway: edge trace ring capacity in traces (0 selects the default)")
		logLevel = flag.String("log-level", "info", "gateway: structured log threshold: debug, info, warn or error")
		dialTO   = flag.Duration("dial-timeout", transport.DefaultDialTimeout, "gateway: peer connection establishment deadline")
		rpcTO    = flag.Duration("rpc-timeout", transport.DefaultRPCTimeout, "gateway: per-RPC write+read deadline")
		retries  = flag.Int("retries", transport.DefaultRetries, "gateway: extra attempts for idempotent peer RPCs (-1 disables)")
		pool     = flag.Int("pool", transport.DefaultPoolSize, "gateway: idle connections kept per peer (-1 dials per call)")
		pipeWk   = flag.Int("pipeline-workers", transport.DefaultPipelineWorkers, "gateway: concurrent pipelined requests handled per client connection")
		load     = flag.String("load", "", "load generator: target address (runs the 80/20 workload instead of serving)")
		files    = flag.Int("files", 50, "load generator: working-set size (hot set is the first 20%)")
		clients  = flag.Int("clients", 8, "load generator: concurrent client connections")
		duration = flag.Duration("duration", 10*time.Second, "load generator: how long to run")
	)
	flag.Parse()

	if *load != "" {
		runLoad(*load, *files, *clients, *duration)
		return
	}

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(err)
	}
	if *peers == "" {
		fatal(fmt.Errorf("-peers is required (comma-separated fabric entry addresses)"))
	}
	var entry []string
	for _, a := range strings.Split(*peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			entry = append(entry, a)
		}
	}
	g, err := gateway.New(gateway.Config{
		Peers:            entry,
		CacheSize:        *cacheSz,
		CacheTTL:         *cacheTTL,
		DisableLocate:    !*locate,
		HintSize:         *hintSz,
		HintTTL:          *hintTTL,
		DowngradeTTL:     *downTTL,
		MaxInFlight:      *maxInFl,
		QueueTimeout:     *queueTO,
		PipelineWorkers:  *pipeWk,
		TraceSampleEvery: *trEvery,
		TraceSlow:        *trSlow,
		TraceRingSize:    *trRing,
		Logger:           logger,
		Transport: transport.Config{
			DialTimeout: *dialTO,
			RPCTimeout:  *rpcTO,
			Retries:     *retries,
			PoolSize:    *pool,
		},
	})
	if err != nil {
		fatal(err)
	}
	srv, err := g.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	log := logger.With("component", "lesslog-gw")
	if *admin != "" {
		adm, err := g.ServeAdmin(*admin)
		if err != nil {
			fatal(err)
		}
		defer adm.Close()
		log.Info("admin serving", "addr", adm.Addr())
	}
	log.Info("serving", "addr", srv.Addr(), "peers", len(entry))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Info("shutting down", "stats", g.StatLine())
	srv.Close()
	g.Close()
}

// runLoad drives the 80/20 hot-key read workload against addr and prints
// a throughput/hit-rate summary. The working set is (re)inserted first so
// the run is self-contained.
func runLoad(addr string, files, clients int, duration time.Duration) {
	if files < 5 {
		files = 5
	}
	hot := files / 5
	name := func(i int) string { return fmt.Sprintf("load/%04d", i) }

	setup := netnode.NewClient(addr)
	for i := 0; i < files; i++ {
		if err := setup.Insert(name(i), []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			fatal(fmt.Errorf("seed insert %s: %w", name(i), err))
		}
	}

	var ops, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := netnode.NewClient(addr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := hot + rng.Intn(files-hot)
				if rng.Intn(100) < 80 {
					n = rng.Intn(hot)
				}
				if _, err := cl.Get(name(n)); err != nil {
					errs.Add(1)
				}
				ops.Add(1)
			}
		}(int64(c + 1))
	}
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	total := ops.Load()
	fmt.Printf("80/20 hot-key load: %d clients, %d files (%d hot), %s\n",
		clients, files, hot, elapsed.Round(time.Millisecond))
	fmt.Printf("  %d gets, %.0f ops/sec, %d errors\n",
		total, float64(total)/elapsed.Seconds(), errs.Load())
	if line, err := setup.Stat(); err == nil {
		fmt.Printf("  target: %s\n", line)
	}
}

// newLogger builds the process logger at the requested threshold.
func newLogger(level string) (*slog.Logger, error) {
	var l slog.Level
	switch strings.ToLower(level) {
	case "debug":
		l = slog.LevelDebug
	case "info":
		l = slog.LevelInfo
	case "warn":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lesslog-gw:", err)
	os.Exit(1)
}
