package lesslog_test

// Full-stack integration: one scenario that exercises the whole public
// API surface in sequence — content management, load shedding, eviction,
// fault-tolerant churn, anti-entropy and deletion — with invariants
// checked between phases.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lesslog"
	"lesslog/internal/xrand"
)

func TestEndToEndScenario(t *testing.T) {
	sys, err := lesslog.New(lesslog.Options{M: 8, B: 1, InitialNodes: 220, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)

	// Phase 1: content. 80 files inserted from arbitrary origins, each
	// with 2^B = 2 authoritative copies.
	names := make([]string, 80)
	for i := range names {
		names[i] = fmt.Sprintf("content/%03d.bin", i)
		if _, err := sys.Insert(lesslog.PID(rng.Intn(220)), names[i], []byte(names[i])); err != nil {
			t.Fatalf("insert %s: %v", names[i], err)
		}
		if d := sys.FaultToleranceDegree(names[i]); d != 2 {
			t.Fatalf("%s degree = %d", names[i], d)
		}
	}
	mustInvariants(t, sys, "after inserts")

	// Phase 2: a flash crowd on one file; windows replicate until no
	// holder exceeds the cap.
	hot := names[7]
	const cap = 50
	for round := 0; round < 10; round++ {
		sys.ResetWindow()
		live := sys.Live().LivePIDs()
		for _, p := range live {
			if _, err := sys.Get(p, hot); err != nil {
				t.Fatalf("hot get: %v", err)
			}
		}
		if len(sys.ReplicateHot(cap)) == 0 {
			break
		}
	}
	maxServe := uint64(0)
	for _, h := range sys.HoldersOf(hot) {
		if c := sys.ServeCount(h, hot); c > maxServe {
			maxServe = c
		}
	}
	if maxServe > cap {
		t.Fatalf("hot file not balanced: max serve %d", maxServe)
	}
	holdersAtPeak := len(sys.HoldersOf(hot))
	if holdersAtPeak < 4 {
		t.Fatalf("expected a replica population, got %d", holdersAtPeak)
	}
	mustInvariants(t, sys, "after load balancing")

	// Phase 3: an update while replicated must reach every copy.
	if _, err := sys.Update(3, hot, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	for _, h := range sys.HoldersOf(hot) {
		res, err := sys.Get(h, hot)
		if err != nil || !bytes.Equal(res.File.Data, []byte("fresh")) {
			t.Fatalf("stale read at P(%d): %v %q", h, err, res.File.Data)
		}
	}

	// Phase 4: churn. 40 events of join/leave/fail with recovery; every
	// file keeps serving throughout.
	for ev := 0; ev < 40; ev++ {
		live := sys.Live().LivePIDs()
		switch rng.Intn(3) {
		case 0:
			for {
				p := lesslog.PID(rng.Intn(256))
				if !sys.Live().IsLive(p) {
					if err := sys.Join(p); err != nil {
						t.Fatalf("join: %v", err)
					}
					break
				}
			}
		case 1:
			if err := sys.Leave(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("leave: %v", err)
			}
		default:
			if err := sys.Fail(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("fail: %v", err)
			}
		}
		mustInvariants(t, sys, fmt.Sprintf("churn event %d", ev))
	}
	livePIDs := sys.Live().LivePIDs()
	for _, name := range names {
		if _, err := sys.Get(livePIDs[rng.Intn(len(livePIDs))], name); err != nil {
			t.Fatalf("%s lost in churn: %v", name, err)
		}
	}

	// Phase 5: the crowd is gone; eviction plus repair converge the
	// system, then deletion removes a file everywhere.
	sys.ResetWindow()
	sys.EvictCold(1)
	sys.RepairAll()
	mustInvariants(t, sys, "after eviction and repair")
	victim := names[13]
	if _, err := sys.Delete(livePIDs[0], victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Get(livePIDs[1], victim); !errors.Is(err, lesslog.ErrNotFound) {
		t.Fatalf("deleted file still served: %v", err)
	}
	for _, name := range names {
		if name == victim {
			continue
		}
		if _, err := sys.Get(livePIDs[rng.Intn(len(livePIDs))], name); err != nil {
			t.Fatalf("%s lost at the end: %v", name, err)
		}
	}
	st := sys.Stats()
	if st.Faults > 1 { // only the post-delete probe may fault
		t.Fatalf("unexpected faults: %+v", st)
	}
	t.Logf("scenario complete: %d nodes, stats %+v", sys.NodeCount(), st)
}

func mustInvariants(t *testing.T, sys *lesslog.System, phase string) {
	t.Helper()
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", phase, err)
	}
}
