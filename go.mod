module lesslog

go 1.22
