// Package lesslog is a Go implementation of LessLog, the logless file
// replication algorithm for peer-to-peer distributed systems of Huang,
// Huang and Chou (IPDPS 2004).
//
// A LessLog system assigns every node a physical identifier (PID) in
// [0, 2^m) and builds, from a single virtual binomial tree, one lookup
// tree per node using only XOR arithmetic. Lookups take O(m) = O(log N)
// hops. When a node is overloaded by requests for a popular file, it
// replicates the file to the head of its *children list* — the child with
// the most offspring — which provably halves its load under an even
// request distribution, all without keeping any client-access logs.
// Reserving b of the m identifier bits splits every lookup tree into 2^b
// independent subtrees and stores every file 2^b times for fault
// tolerance, and a self-organized mechanism migrates files when nodes
// join, leave or fail.
//
// # Quick start
//
//	sys, err := lesslog.New(lesslog.Options{M: 10, InitialNodes: 1024})
//	if err != nil { ... }
//	sys.Insert(0, "videos/cat.mpg", data)
//	res, err := sys.Get(517, "videos/cat.mpg")   // routed in ≤ 10 hops
//	sys.ReplicateFile(res.ServedBy, "videos/cat.mpg") // shed half the load
//
// The package is a facade over the engine in internal/core; the analytic
// simulator that reproduces the paper's evaluation figures is exercised
// through the benchmarks in this directory and cmd/lesslog-bench.
package lesslog

import (
	"lesslog/internal/bitops"
	"lesslog/internal/core"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/store"
)

// PID is a node's physical identifier, in [0, 2^m).
type PID = bitops.PID

// File is a stored file snapshot.
type File = store.File

// Hasher maps file names to target PIDs; see Options.Hasher.
type Hasher = hashring.Hasher

// GetResult reports how a Get was served: the file, the serving node, the
// hop count, and whether the §3 FINDLIVENODE fallback or a §4 subtree
// migration was needed.
type GetResult = core.GetResult

// InsertResult reports where an Insert placed its authoritative copies.
type InsertResult = core.InsertResult

// UpdateResult reports an Update's propagation.
type UpdateResult = core.UpdateResult

// DeleteResult reports a Delete's propagation.
type DeleteResult = core.DeleteResult

// Placement records one replica created by ReplicateHot.
type Placement = core.Placement

// Stats are the system's cumulative traffic counters.
type Stats = core.Stats

// Errors returned by System operations.
var (
	ErrNotFound   = core.ErrNotFound
	ErrDeadOrigin = core.ErrDeadOrigin
	ErrNoLiveNode = core.ErrNoLiveNode
	ErrPIDInUse   = core.ErrPIDInUse
	ErrPIDRange   = core.ErrPIDRange
	ErrNotLive    = core.ErrNotLive
)

// Options configures a System.
type Options struct {
	// M is the identifier width in bits: the system addresses 2^M nodes
	// and lookups take at most M hops. Required, 1..30.
	M int
	// B reserves the last B identifier bits for fault tolerance: every
	// file is stored in each of the 2^B lookup subtrees (paper §4).
	// 0 disables fault tolerance (the paper's evaluation setting).
	B int
	// InitialNodes bootstraps PIDs 0..InitialNodes-1 as live nodes.
	InitialNodes int
	// Hasher is ψ, mapping file names to target PIDs. Nil selects the
	// FNV-1a default.
	Hasher Hasher
	// Seed fixes the stream behind the advanced model's proportional
	// children-list choice, making runs reproducible.
	Seed uint64
}

// System is an in-process LessLog system: N simulated peers, their stores
// and status words, and the full §2–§5 protocol between them.
type System struct {
	c *core.Cluster
}

// New creates a system with opts.InitialNodes live nodes.
func New(opts Options) (*System, error) {
	c, err := core.New(core.Config{
		M: opts.M, B: opts.B,
		InitialNodes: opts.InitialNodes,
		Hasher:       opts.Hasher,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &System{c: c}, nil
}

// M returns the identifier width.
func (s *System) M() int { return s.c.M() }

// B returns the fault-tolerance bits.
func (s *System) B() int { return s.c.B() }

// NodeCount returns the number of live nodes.
func (s *System) NodeCount() int { return s.c.NodeCount() }

// Target returns ψ(name): the node a file is anchored at.
func (s *System) Target(name string) PID { return s.c.Target(name) }

// Insert stores a file, placing one authoritative copy per subtree
// (ADVANCEDINSERTFILE, §3/§4). Any live node may originate the request.
func (s *System) Insert(origin PID, name string, data []byte) (InsertResult, error) {
	return s.c.Insert(origin, name, data)
}

// Get resolves a file from origin's point of view, walking the target's
// lookup tree along live ancestors and stopping at the first copy
// (GETFILE, §2.2/§3/§4).
func (s *System) Get(origin PID, name string) (GetResult, error) {
	return s.c.Get(origin, name)
}

// Update rewrites a file and propagates the change to every replica
// top-down through the children lists (§2.2).
func (s *System) Update(origin PID, name string, data []byte) (UpdateResult, error) {
	return s.c.Update(origin, name, data)
}

// Delete erases a file from the system — the authoritative copies and
// every replica — via the same top-down broadcast Update uses.
func (s *System) Delete(origin PID, name string) (DeleteResult, error) {
	return s.c.Delete(origin, name)
}

// ReplicateFile sheds load from holder: one replica of name is placed on
// the first node of holder's children list without a copy (REPLICATEFILE,
// §2.2/§3). It returns where the replica landed.
func (s *System) ReplicateFile(holder PID, name string) (PID, error) {
	return s.c.ReplicateFile(holder, name)
}

// ReplicateHot scans all nodes and replicates the hottest file of every
// node whose serve count this window exceeds threshold. Pair with
// ResetWindow to run fixed observation windows.
func (s *System) ReplicateHot(threshold uint64) []Placement {
	return s.c.ReplicateHot(threshold)
}

// EvictCold removes replicas that served fewer than minHits gets this
// window — the paper's counter-based removal mechanism (§6).
func (s *System) EvictCold(minHits uint64) int { return s.c.EvictCold(minHits) }

// ResetWindow starts a new access-counting window on every node.
func (s *System) ResetWindow() { s.c.ResetWindow() }

// Join admits a new node at PID k and migrates to it the files it must
// now host (§5.1).
func (s *System) Join(k PID) error { return s.c.Join(k) }

// Leave retires node k gracefully, re-inserting its authoritative copies
// elsewhere and discarding its replicas (§5.2).
func (s *System) Leave(k PID) error { return s.c.Leave(k) }

// Fail kills node k abruptly. With B > 0 the surviving subtrees restore
// the lost copies (§5.3); with B == 0 its files are lost.
func (s *System) Fail(k PID) error { return s.c.Fail(k) }

// HoldersOf returns the nodes currently holding a copy of name.
func (s *System) HoldersOf(name string) []PID { return s.c.HoldersOf(name) }

// ServeCount returns how many gets node p served for name in the current
// window — the counter behind overload detection.
func (s *System) ServeCount(p PID, name string) uint64 {
	n, ok := s.c.Node(p)
	if !ok {
		return 0
	}
	return n.Store().Hits(name)
}

// FaultToleranceDegree returns how many subtrees hold an authoritative
// copy of name (at most 2^B).
func (s *System) FaultToleranceDegree(name string) int {
	return s.c.FaultToleranceDegreeOf(name)
}

// RepairResult reports an anti-entropy sweep.
type RepairResult = core.RepairResult

// Repair synchronizes every copy of name to the newest version and drops
// replicas whose authoritative copy is gone — the anti-entropy sweep that
// closes the stale-orphan gap churn can open (see internal/core).
func (s *System) Repair(name string) RepairResult { return s.c.Repair(name) }

// RepairAll sweeps every file in the system.
func (s *System) RepairAll() RepairResult { return s.c.RepairAll() }

// Live returns a snapshot of the status word.
func (s *System) Live() *liveness.Set { return s.c.Live() }

// Stats returns cumulative traffic counters.
func (s *System) Stats() Stats { return s.c.Stats() }

// CheckInvariants validates the system's structural invariants; see
// internal/core for the list. Intended for tests and debugging.
func (s *System) CheckInvariants() error { return s.c.CheckInvariants() }
