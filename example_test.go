package lesslog_test

import (
	"fmt"
	"log"

	"lesslog"
)

// Example builds the paper's 16-node system, inserts a file and resolves
// it from another node.
func Example() {
	sys, err := lesslog.New(lesslog.Options{M: 4, InitialNodes: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Insert(9, "readme.txt", []byte("hello")); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Get(3, "readme.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s in <= %d hops\n", res.File.Data, sys.M())
	// Output: hello in <= 4 hops
}

// ExampleSystem_ReplicateFile shows the logless load-shedding step: the
// replica lands on the head of the overloaded node's children list,
// chosen by bit arithmetic alone.
func ExampleSystem_ReplicateFile() {
	sys, _ := lesslog.New(lesslog.Options{M: 4, InitialNodes: 16, Seed: 1})
	ins, _ := sys.Insert(0, "hot.bin", []byte("x"))
	replica, err := sys.ReplicateFile(ins.Target, "hot.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(sys.HoldersOf("hot.bin")), "holders after replicating to", replica != ins.Target)
	// Output: 2 holders after replicating to true
}

// ExampleSystem_Fail demonstrates the fault-tolerant model: with B = 2
// every file has four copies, and the self-organized mechanism restores
// a copy lost to a failure.
func ExampleSystem_Fail() {
	sys, _ := lesslog.New(lesslog.Options{M: 6, B: 2, InitialNodes: 64, Seed: 1})
	ins, _ := sys.Insert(0, "ledger.db", []byte("state"))
	fmt.Println("copies:", len(ins.Holders))
	if err := sys.Fail(ins.Holders[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("degree after failure:", sys.FaultToleranceDegree("ledger.db"))
	// Output:
	// copies: 4
	// degree after failure: 4
}

// ExampleSystem_Update shows top-down propagation: one update rewrites
// the primary and every replica.
func ExampleSystem_Update() {
	sys, _ := lesslog.New(lesslog.Options{M: 4, InitialNodes: 16, Seed: 1})
	ins, _ := sys.Insert(0, "cfg", []byte("v1"))
	sys.ReplicateFile(ins.Target, "cfg")
	res, _ := sys.Update(7, "cfg", []byte("v2"))
	fmt.Println("copies updated:", res.CopiesUpdated)
	// Output: copies updated: 2
}
