# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-smoke transport-bench obs-bench obs-cluster-bench gw-bench peer-bench locate-bench repair-bench storage-bench stream-bench write-bench figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over every benchmark — catches bit-rotted bench code
# without measuring anything; CI runs this on every push.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Pooled vs dial-per-call RPC throughput; the recorded run lives in
# results/transport_bench.txt.
transport-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTransport' -benchmem ./internal/transport/ | tee results/transport_bench.txt

# Observability overhead: traced vs untraced wire-level gets plus the
# histogram hot path; the analysed run lives in results/obs_bench.txt.
obs-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGet(Traced)?OverTCP' -benchtime 2s -count 3 ./internal/netnode/
	$(GO) test -run '^$$' -bench 'BenchmarkHistogramObserve' -benchmem ./internal/metrics/

# Fleet aggregation end to end: an 8-peer fabric under traffic, scraped
# and merged the way `lesslog-top -json` does it, with the merged view
# checked against hand-merged per-peer snapshots and recorded to
# results/BENCH_obs_cluster.json (docs/OBSERVABILITY.md).
obs-cluster-bench:
	BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestFleetScrapeEightPeers' -count 1 -v ./internal/fleet/ | tee results/obs_cluster_bench.txt

# Gateway vs direct per-op clients on the §6 80/20 hot-key read workload;
# the recorded run lives in results/gateway_bench.txt (machine-readable
# twin: results/BENCH_gateway.json).
gw-bench:
	BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run '^$$' -bench 'BenchmarkHotKey' -benchtime 2s -count 3 ./internal/gateway/ | tee results/gateway_bench.txt

# Pipelined peer hot path: concurrent 80/20 gets over one persistent
# connection plus parallel broadcast fan-out; the before/after comparison
# lives in results/pipeline_bench.txt (machine-readable twin:
# results/BENCH_pipeline.json).
peer-bench:
	BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run '^$$' -bench 'BenchmarkConnConcurrent8020|BenchmarkBroadcast' -benchtime 2s -count 3 ./internal/netnode/ | tee -a results/pipeline_bench.txt

# Relay vs locate-then-fetch data plane: bytes on the wire and p50/p99
# latency per payload size, with the single-RPC / zero-relay properties
# asserted from the peer counters. The recorded comparison lives in
# results/locate_bench.txt (machine-readable twin:
# results/BENCH_locate.json).
locate-bench:
	LESSLOG_LOCATE_BENCH=1 BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestLocateBenchReport' -bench 'BenchmarkRelayGet|BenchmarkLocateGet' -benchtime 2s -v ./internal/netnode/ | tee results/locate_bench.txt

# Sustained-churn repair harness: the same crash/rejoin schedule with
# repair off (loses names) and on (loses none), recording loss
# probability and time-to-full-replication per disruption to
# results/BENCH_repair.json (docs/REPAIR.md).
repair-bench:
	BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestChurnRepairE2E' -count 1 -v ./internal/netnode/ | tee results/repair_bench.txt

# Durable storage engine: sustained write throughput under each fsync
# policy (never / interval / group-commit always) and cold recovery time
# at 1M names, recorded to results/BENCH_storage.json (docs/STORAGE.md).
storage-bench:
	LESSLOG_STORAGE_BENCH=1 BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestStorageBenchReport' -count 1 -v -timeout 600s ./internal/wal/ | tee results/storage_bench.txt

# Chunked streaming data plane: single-frame vs replica-striped chunked
# fetch latency at 1-64 MiB (above one frame only the chunked plane can
# serve at all) and aggregate hot-file throughput against replica count
# with holders modeled as serial servers, recorded to
# results/BENCH_stream.json (docs/ROUTING.md).
stream-bench:
	LESSLOG_STREAM_BENCH=1 BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestStreamBenchReport' -count 1 -v -timeout 600s ./internal/netnode/ | tee results/stream_bench.txt

# Chunked write plane: whole-frame vs staged chunked put latency at
# 1-64 MiB (above one frame only the chunked plane can write at all) and
# broadcast-tree payload bytes against replica count — push repeats the
# payload per copy, notify/pull keeps the tree payload-free — recorded to
# results/BENCH_write.json (docs/ROUTING.md "The write plane").
write-bench:
	LESSLOG_WRITE_BENCH=1 BENCH_JSON_DIR=$(CURDIR)/results $(GO) test -run 'TestWriteBenchReport' -count 1 -v -timeout 600s ./internal/netnode/ | tee results/write_bench.txt

# Regenerate every reproduced figure and extension table into results/.
figures: build
	$(GO) run ./cmd/lesslog-bench -trials 3 -outdir results
	$(GO) run ./cmd/lesslog-bench -evict
	$(GO) run ./cmd/lesslog-bench -hops
	$(GO) run ./cmd/lesslog-bench -churn
	$(GO) run ./cmd/lesslog-bench -sensitivity
	$(GO) run ./cmd/lesslog-bench -pathlen
	$(GO) run ./cmd/lesslog-bench -multifile
	$(GO) run ./cmd/lesslog-bench -logcost
	$(GO) run ./cmd/lesslog-bench -updatecost
	$(GO) run ./cmd/lesslog-bench -flash
	$(GO) run ./cmd/lesslog-bench -ftcost
	$(GO) run ./cmd/lesslog-bench -latency

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...

# Run every example end to end.
examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/churn
	$(GO) run ./examples/multifile
	$(GO) run ./examples/network
