// Loadbalance: reproduce the paper's core claim live — each logless
// replication halves the overloaded node's serve load under an even
// request distribution (§2.2), and repeated window-based replication
// drives a hot file to a balanced state without any client-access logs.
package main

import (
	"fmt"
	"log"

	"lesslog"
)

func main() {
	// The paper's evaluation scale: m = 10, 1024 nodes (§6).
	sys, err := lesslog.New(lesslog.Options{M: 10, InitialNodes: 1024, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	const name = "flashcrowd/video.mpg"
	ins, err := sys.Insert(0, name, []byte("hot content"))
	if err != nil {
		log.Fatal(err)
	}
	target := ins.Target
	fmt.Printf("popular file anchored at P(%d)\n", target)

	// One observation window = one get from every node (1024 req).
	window := func() {
		sys.ResetWindow()
		for p := lesslog.PID(0); p < 1024; p++ {
			if _, err := sys.Get(p, name); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Watch the halving: the hottest holder's serve count after each
	// replication round, against the paper's 100-requests cap.
	const cap = 100
	window()
	fmt.Printf("%-8s%-10s%-10s\n", "round", "holders", "max-load")
	for round := 0; ; round++ {
		maxLoad, holders := uint64(0), sys.HoldersOf(name)
		for _, h := range holders {
			if c := sys.ServeCount(h, name); c > maxLoad {
				maxLoad = c
			}
		}
		fmt.Printf("%-8d%-10d%-10d\n", round, len(holders), maxLoad)
		if maxLoad <= cap {
			fmt.Println("load balanced: no holder above the cap")
			break
		}
		// Every overloaded holder sheds once, loglessly.
		placed := sys.ReplicateHot(cap)
		if len(placed) == 0 {
			log.Fatal("overloaded but nothing replicated")
		}
		window()
	}

	// The flash crowd passes: a quiet window plus the counter-based
	// mechanism removes the now-cold replicas (§6).
	sys.ResetWindow()
	for p := lesslog.PID(0); p < 1024; p += 16 { // 64 requests only
		sys.Get(p, name)
	}
	evicted := sys.EvictCold(2)
	fmt.Printf("flash crowd over: evicted %d cold replicas, %d holders remain\n",
		evicted, len(sys.HoldersOf(name)))
}
