// Multifile: several files go hot at once. Each node's overload check
// looks only at its own serve counters — no coordination, no logs — yet
// the per-file children-list placements compose into a balanced system.
package main

import (
	"fmt"
	"log"
	"sort"

	"lesslog"
)

func main() {
	sys, err := lesslog.New(lesslog.Options{M: 9, InitialNodes: 512, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Four files with very different popularity.
	demand := map[string]int{ // gets per node per window, scaled by file
		"videos/blockbuster.mpg": 2,
		"news/frontpage.html":    1,
		"music/hit-single.mp3":   1,
		"docs/manual.pdf":        0, // cold: only every 8th node asks
	}
	for name := range demand {
		if _, err := sys.Insert(0, name, []byte(name)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s anchored at P(%d)\n", name, sys.Target(name))
	}

	// Observation windows: issue the demand, replicate over threshold.
	const cap = 100
	window := func() {
		sys.ResetWindow()
		for p := lesslog.PID(0); p < 512; p++ {
			for name, times := range demand {
				n := times
				if n == 0 && p%8 == 0 {
					n = 1
				}
				for i := 0; i < n; i++ {
					if _, err := sys.Get(p, name); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	names := make([]string, 0, len(demand))
	for name := range demand {
		names = append(names, name)
	}
	sort.Strings(names)

	for round := 0; round < 8; round++ {
		window()
		placed := sys.ReplicateHot(cap)
		over := 0
		for _, name := range names {
			for _, h := range sys.HoldersOf(name) {
				if sys.ServeCount(h, name) > cap {
					over++
				}
			}
		}
		fmt.Printf("window %d: placed %d replicas, %d holders still over the cap\n",
			round, len(placed), over)
		if len(placed) == 0 && over == 0 {
			break
		}
	}
	fmt.Println("\nfinal replica populations:")
	for _, name := range names {
		fmt.Printf("%-24s %3d holders\n", name, len(sys.HoldersOf(name)))
	}
}
