// Faulttolerance: the §4 model. With b = 2 bits reserved, every lookup
// tree splits into four independent subtrees and every file is stored
// four times. Requests resolve inside the requester's own subtree and
// migrate to a sibling subtree on a fault, so the system keeps answering
// while any of the four copies survives.
package main

import (
	"fmt"
	"log"

	"lesslog"
)

func main() {
	// 64 nodes, m = 6, b = 2: four 16-position subtrees per lookup tree.
	sys, err := lesslog.New(lesslog.Options{M: 6, B: 2, InitialNodes: 64, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	const name = "ledger/balances.db"
	ins, err := sys.Insert(0, name, []byte("critical state"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted with 2^b = %d copies at %v (degree %d)\n",
		len(ins.Holders), ins.Holders, sys.FaultToleranceDegree(name))

	// Kill holders one by one. After each failure the self-organized
	// mechanism (§5.3) restores the lost copy from a sibling subtree, so
	// the degree snaps back to 4 and every node keeps resolving.
	for i, victim := range ins.Holders[:3] {
		if err := sys.Fail(victim); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failure %d: killed holder P(%d); degree now %d, holders %v\n",
			i+1, victim, sys.FaultToleranceDegree(name), sys.HoldersOf(name))
		// Prove availability from a few scattered origins.
		for _, origin := range []lesslog.PID{1, 22, 45} {
			if !sys.Live().IsLive(origin) {
				continue
			}
			res, err := sys.Get(origin, name)
			if err != nil {
				log.Fatalf("file unavailable after failure: %v", err)
			}
			suffix := ""
			if res.Migrated {
				suffix = " (migrated to a sibling subtree)"
			}
			fmt.Printf("   get from P(%2d): served by P(%2d) in %d hops%s\n",
				origin, res.ServedBy, res.Hops, suffix)
		}
	}

	if err := sys.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants hold after three holder failures")
}
