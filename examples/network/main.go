// Network: a real TCP deployment on localhost — the paper's §8 future
// work at demonstration scale. Sixteen peers listen on their own sockets,
// requests hop between them over the wire protocol, and a replica
// hand-placed on a lookup path shortens it, all observable in the
// reported hop counts.
package main

import (
	"fmt"
	"log"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/netnode"
)

func main() {
	const m = 4
	// Boot 16 peers; ψ is pinned at P(4) so the demo walks the paper's
	// Figure 2 tree.
	peers := make(map[bitops.PID]*netnode.Peer, 16)
	addrs := make(map[bitops.PID]string, 16)
	for pid := bitops.PID(0); pid < 16; pid++ {
		p, err := netnode.Listen(netnode.Config{PID: pid, M: m, Hasher: hashring.Fixed(4)})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	fmt.Printf("16 peers listening; P(4) at %s\n", addrs[4])

	// Insert through an arbitrary peer; the copy lands on P(4).
	if err := netnode.NewClient(addrs[9]).Insert("hello.txt", []byte("over the wire")); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`inserted "hello.txt" via P(9)`)

	// The paper's routing chain, over real sockets: P(8) → P(0) → P(4).
	res, err := netnode.NewClient(addrs[8]).Get("hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get via P(8): served by P(%d) in %d hops: %q\n", res.ServedBy, res.Hops, res.Data)

	// Place a replica at P(0) — the midpoint of that path — and watch
	// the hop count drop.
	if err := netnode.NewClient(addrs[0]).Store("hello.txt", []byte("over the wire"), 1, true); err != nil {
		log.Fatal(err)
	}
	res, err = netnode.NewClient(addrs[8]).Get("hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after replica at P(0): served by P(%d) in %d hops\n", res.ServedBy, res.Hops)

	// Updates fan out through the children lists across the network.
	n, err := netnode.NewClient(addrs[13]).Update("hello.txt", []byte("updated everywhere"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update via P(13) rewrote %d copies\n", n)
	res, _ = netnode.NewClient(addrs[8]).Get("hello.txt")
	fmt.Printf("P(8) now reads: %q (served by P(%d))\n", res.Data, res.ServedBy)

	stat, _ := netnode.NewClient(addrs[4]).Stat()
	fmt.Println("target peer status:", stat)

	// Overload maintenance, distributed: hammer the target, then let its
	// own maintenance window replicate — placement decided by the same
	// bit arithmetic, copy-existence probed over the wire.
	for i := 0; i < 30; i++ {
		if _, err := netnode.NewClient(addrs[4]).Get("hello.txt"); err != nil {
			log.Fatal(err)
		}
	}
	if placed, ok := peers[4].MaintainOnce(20, 0); ok {
		fmt.Printf("maintenance replicated the hot file to P(%d)\n", placed)
	}

	// A 17th node joins the running system: it bootstraps the address
	// table from any member and registers itself everywhere. (The
	// identifier space is 16 slots, so first make room.)
	if err := peers[15].Leave(); err != nil {
		log.Fatal(err)
	}
	peers[15].Close()
	joiner, err := netnode.Listen(netnode.Config{PID: 15, M: m, Hasher: hashring.Fixed(4)})
	if err != nil {
		log.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(addrs[0]); err != nil {
		log.Fatal(err)
	}
	res, err = netnode.NewClient(joiner.Addr()).Get("hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rejoined P(15) reads %q via P(%d) in %d hops\n", res.Data, res.ServedBy, res.Hops)
}
