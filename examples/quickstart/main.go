// Quickstart: a 16-node LessLog system — the paper's Figure 2 world —
// exercising insert, lookup, replication and update through the public
// API.
package main

import (
	"fmt"
	"log"

	"lesslog"
)

func main() {
	// A complete 16-node system (m = 4). Lookups take at most 4 hops.
	sys, err := lesslog.New(lesslog.Options{M: 4, InitialNodes: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a file from node P(9). ψ picks the target node; the file's
	// authoritative copy lands there.
	name := "articles/lesslog.pdf"
	ins, err := sys.Insert(9, name, []byte("a logless file replication algorithm"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %q at its target P(%d)\n", name, ins.Target)

	// Every node can resolve the file by routing up the target's lookup
	// tree — O(log N) hops, no routing tables beyond the bitwise math.
	for _, origin := range []lesslog.PID{0, 7, 13} {
		res, err := sys.Get(origin, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("get from P(%2d): served by P(%d) in %d hops\n", origin, res.ServedBy, res.Hops)
	}

	// The target is getting popular: shed half its load with one logless
	// replication. No access logs were consulted — the placement is pure
	// bit arithmetic on the lookup tree.
	rep, err := sys.ReplicateFile(ins.Target, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated %q to P(%d), the head of the children list\n", name, rep)
	fmt.Printf("holders are now %v\n", sys.HoldersOf(name))

	// Updates propagate top-down through the children lists, so both
	// copies change together.
	if _, err := sys.Update(2, name, []byte("v2 of the paper")); err != nil {
		log.Fatal(err)
	}
	res, _ := sys.Get(rep, name)
	fmt.Printf("after update, replica serves: %q\n", res.File.Data)

	fmt.Printf("traffic: %+v\n", sys.Stats())
}
