// Churn: the §5 self-organized mechanism under continuous membership
// change. Nodes join, leave gracefully and fail abruptly while files are
// inserted and read; the system migrates authoritative copies so that
// every file stays exactly where the bitwise placement rule says it
// should be.
package main

import (
	"fmt"
	"log"

	"lesslog"
	"lesslog/internal/xrand"
)

func main() {
	sys, err := lesslog.New(lesslog.Options{M: 7, B: 1, InitialNodes: 96, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(2024)

	// Seed the system with content.
	var names []string
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("shard/%03d", i)
		if _, err := sys.Insert(lesslog.PID(i%96), name, []byte(name)); err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
	}
	fmt.Printf("seeded %d files on %d nodes\n", len(names), sys.NodeCount())

	// 60 churn events: joins, voluntary leaves and abrupt failures.
	joins, leaves, fails := 0, 0, 0
	for event := 0; event < 60; event++ {
		live := sys.Live()
		switch rng.Intn(3) {
		case 0: // join a free PID
			for {
				p := lesslog.PID(rng.Intn(128))
				if !live.IsLive(p) {
					if err := sys.Join(p); err != nil {
						log.Fatal(err)
					}
					joins++
					break
				}
			}
		case 1: // graceful leave
			pids := live.LivePIDs()
			if err := sys.Leave(pids[rng.Intn(len(pids))]); err != nil {
				log.Fatal(err)
			}
			leaves++
		default: // abrupt failure (B=1 recovery kicks in)
			pids := live.LivePIDs()
			if err := sys.Fail(pids[rng.Intn(len(pids))]); err != nil {
				log.Fatal(err)
			}
			fails++
		}
		if err := sys.CheckInvariants(); err != nil {
			log.Fatalf("event %d broke an invariant: %v", event, err)
		}
	}
	fmt.Printf("churn done: %d joins, %d leaves, %d failures; %d nodes remain\n",
		joins, leaves, fails, sys.NodeCount())

	// Every file is still served, from arbitrary origins.
	origins := sys.Live().LivePIDs()
	hops := 0
	for i, name := range names {
		res, err := sys.Get(origins[i%len(origins)], name)
		if err != nil {
			log.Fatalf("%s lost in churn: %v", name, err)
		}
		hops += res.Hops
	}
	fmt.Printf("all %d files survived; mean lookup %.2f hops; files migrated by the mechanism: %d\n",
		len(names), float64(hops)/float64(len(names)), sys.Stats().FilesMigrated)
}
