package workload

import (
	"math"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/xrand"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEven(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(3)
	r := Even(3000, live)
	if !approx(r.Total(), 3000, 1e-6) {
		t.Fatalf("total = %v", r.Total())
	}
	if r[3] != 0 {
		t.Fatal("dead node carries rate")
	}
	if !approx(r[0], 200, 1e-9) {
		t.Fatalf("per-node rate = %v, want 200", r[0])
	}
}

func TestEvenEmpty(t *testing.T) {
	r := Even(1000, liveness.New(4))
	if r.Total() != 0 {
		t.Fatal("empty system has rate")
	}
}

func TestLocalityShares(t *testing.T) {
	live := liveness.NewAllLive(10, 1024)
	rng := xrand.New(1)
	r := Locality(10000, 0.8, 0.2, live, rng)
	if !approx(r.Total(), 10000, 1e-6) {
		t.Fatalf("total = %v", r.Total())
	}
	// Exactly 20% of nodes must carry the hot rate, and they must carry
	// 80% of the total.
	hotCount, hotSum := 0, 0.0
	hotRate := 0.8 * 10000 / 205 // round(0.2*1024) = 205 hot nodes
	for _, v := range r {
		if approx(v, hotRate, 1e-9) {
			hotCount++
			hotSum += v
		}
	}
	if hotCount != 205 { // round(0.2*1024)
		t.Fatalf("hot nodes = %d, want 205", hotCount)
	}
	if !approx(hotSum, 8000, 1e-6) {
		t.Fatalf("hot share = %v, want 8000", hotSum)
	}
}

func TestLocalityDeterministicBySeed(t *testing.T) {
	live := liveness.NewAllLive(6, 64)
	a := Locality(640, 0.8, 0.2, live, xrand.New(7))
	b := Locality(640, 0.8, 0.2, live, xrand.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different hot sets")
		}
	}
	c := Locality(640, 0.8, 0.2, live, xrand.New(8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical hot sets")
	}
}

func TestLocalityAllHot(t *testing.T) {
	live := liveness.NewAllLive(3, 8)
	r := Locality(800, 0.8, 1.0, live, xrand.New(1))
	if !approx(r.Total(), 800, 1e-9) {
		t.Fatalf("total = %v", r.Total())
	}
	for p := 0; p < 8; p++ {
		if !approx(r[p], 100, 1e-9) {
			t.Fatalf("rate[%d] = %v", p, r[p])
		}
	}
}

func TestLocalityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad parameters did not panic")
		}
	}()
	Locality(1, 1.5, 0.2, liveness.NewAllLive(3, 8), xrand.New(1))
}

func TestZipf(t *testing.T) {
	live := liveness.NewAllLive(8, 256)
	r := Zipf(1000, 1.0, live, xrand.New(3))
	if !approx(r.Total(), 1000, 1e-6) {
		t.Fatalf("total = %v", r.Total())
	}
	// s=0 reduces to even.
	r0 := Zipf(1000, 0, live, xrand.New(3))
	for _, v := range r0 {
		if !approx(v, 1000.0/256, 1e-9) {
			t.Fatalf("zipf s=0 not even: %v", v)
		}
	}
}

func TestPoint(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	r := Point(500, 9, live)
	if r[9] != 500 || !approx(r.Total(), 500, 0) {
		t.Fatalf("point rates wrong: %v", r[9])
	}
	live.SetDead(9)
	r = Point(500, 9, live)
	if r.Total() != 0 {
		t.Fatal("dead origin carries rate")
	}
}

func TestKillRandom(t *testing.T) {
	live := liveness.NewAllLive(10, 1024)
	killed := KillRandom(live, 0.3, 4, xrand.New(11))
	if len(killed) != 307 { // round(0.3*1024)
		t.Fatalf("killed %d, want 307", len(killed))
	}
	if live.LiveCount() != 1024-307 {
		t.Fatalf("live count %d", live.LiveCount())
	}
	if !live.IsLive(4) {
		t.Fatal("protected node was killed")
	}
	for _, p := range killed {
		if live.IsLive(p) {
			t.Fatalf("killed node P(%d) still live", p)
		}
	}
}

func TestKillRandomAllButProtected(t *testing.T) {
	live := liveness.NewAllLive(3, 8)
	KillRandom(live, 0.99, 0, xrand.New(2))
	if !live.IsLive(0) {
		t.Fatal("protected node killed")
	}
	if live.LiveCount() < 1 {
		t.Fatal("everything died")
	}
}

func TestKillRandomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("frac=1 did not panic")
		}
	}()
	KillRandom(liveness.NewAllLive(3, 8), 1.0, bitops.PID(^uint32(0)), xrand.New(1))
}
