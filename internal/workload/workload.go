// Package workload generates the request-rate vectors driving the paper's
// experiments (§6): a total incoming request rate for one popular file,
// apportioned across the live nodes either evenly or under the 80/20
// locality model ("80% of the requests are received by 20% of the nodes").
// A Zipf generator is included for sensitivity studies beyond the paper.
//
// Rates are requests per second *originating* at each node — the rate at
// which clients hand that node a get request. Dead slots always carry rate
// zero.
package workload

import (
	"math"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/xrand"
)

// Rates maps each PID (by index) to its originating request rate in
// requests per second.
type Rates []float64

// Total returns the summed rate.
func (r Rates) Total() float64 {
	t := 0.0
	for _, v := range r {
		t += v
	}
	return t
}

// Even spreads total evenly across the live nodes (the Figure 5/6
// workload).
func Even(total float64, live *liveness.Set) Rates {
	rates := make(Rates, live.Slots())
	n := live.LiveCount()
	if n == 0 {
		return rates
	}
	per := total / float64(n)
	live.ForEachLive(func(p bitops.PID) { rates[p] = per })
	return rates
}

// Locality implements the Figure 7/8 workload: hotShare of the total rate
// is spread evenly over a uniformly random hotFrac of the live nodes (the
// "hot region"), and the remainder over the rest. The paper's setting is
// hotShare = 0.8, hotFrac = 0.2. rng selects the hot set; it must not be
// nil.
func Locality(total, hotShare, hotFrac float64, live *liveness.Set, rng *xrand.Rand) Rates {
	if hotShare < 0 || hotShare > 1 || hotFrac < 0 || hotFrac > 1 {
		panic("workload: locality parameters out of [0,1]")
	}
	rates := make(Rates, live.Slots())
	pids := live.LivePIDs()
	n := len(pids)
	if n == 0 {
		return rates
	}
	hot := int(math.Round(hotFrac * float64(n)))
	if hot <= 0 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	perm := rng.Perm(n)
	hotRate := total * hotShare / float64(hot)
	coldRate := 0.0
	if n > hot {
		coldRate = total * (1 - hotShare) / float64(n-hot)
	} else {
		// Everyone is hot; fold the cold share back in.
		hotRate = total / float64(hot)
	}
	for i, idx := range perm {
		if i < hot {
			rates[pids[idx]] = hotRate
		} else {
			rates[pids[idx]] = coldRate
		}
	}
	return rates
}

// Zipf spreads total across live nodes with probability proportional to
// rank^-s over a random rank assignment: a smooth knob between Even (s=0)
// and extreme skew. Not used by the paper's figures; used by the
// sensitivity benches.
func Zipf(total, s float64, live *liveness.Set, rng *xrand.Rand) Rates {
	rates := make(Rates, live.Slots())
	pids := live.LivePIDs()
	n := len(pids)
	if n == 0 {
		return rates
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		sum += weights[i]
	}
	perm := rng.Perm(n)
	for i, idx := range perm {
		rates[pids[idx]] = total * weights[i] / sum
	}
	return rates
}

// Point puts the entire rate on a single origin, the degenerate workload
// used by unit tests and the halving demonstration.
func Point(total float64, origin bitops.PID, live *liveness.Set) Rates {
	rates := make(Rates, live.Slots())
	if live.IsLive(origin) {
		rates[origin] = total
	}
	return rates
}

// KillRandom marks a uniformly random fraction of the currently live nodes
// dead — the paper's "10%, 20%, 30% dead nodes" configurations — and
// returns the PIDs it killed. The protected node, if live, is never killed
// (pass an out-of-range PID such as ^0 to protect nobody); experiments use
// it to keep at least one node alive.
func KillRandom(live *liveness.Set, frac float64, protect bitops.PID, rng *xrand.Rand) []bitops.PID {
	if frac < 0 || frac >= 1 {
		panic("workload: dead fraction out of [0,1)")
	}
	pids := live.LivePIDs()
	candidates := pids[:0]
	for _, p := range pids {
		if p != protect {
			candidates = append(candidates, p)
		}
	}
	kill := int(math.Round(frac * float64(len(pids))))
	if kill > len(candidates) {
		kill = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	killed := make([]bitops.PID, 0, kill)
	for i := 0; i < kill; i++ {
		p := candidates[perm[i]]
		live.SetDead(p)
		killed = append(killed, p)
	}
	return killed
}
