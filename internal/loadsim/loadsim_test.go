package loadsim

import (
	"math"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

func evenSim(m int, target bitops.PID, total, cap float64) *Sim {
	live := liveness.NewAllLive(m, bitops.Slots(m))
	return New(Config{
		M: m, B: 0, Target: target, Cap: cap,
		Live:  live,
		Rates: workload.Even(total, live),
		Seed:  1,
	})
}

func TestInitialLoadAllAtTarget(t *testing.T) {
	s := evenSim(4, 4, 1600, 100)
	loads := s.Loads()
	if len(loads) != 1 || math.Abs(loads[4]-1600) > 1e-6 {
		t.Fatalf("initial loads = %v, want all 1600 at P(4)", loads)
	}
	if p := s.Primaries(); len(p) != 1 || p[0] != 4 {
		t.Fatalf("primaries = %v", p)
	}
}

func TestLoadConservation(t *testing.T) {
	s := evenSim(6, 13, 6400, 100)
	for i := 0; i < 10; i++ {
		total := 0.0
		for _, l := range s.Loads() {
			total += l
		}
		if math.Abs(total-6400) > 1e-6 {
			t.Fatalf("step %d: total load %v, want 6400", i, total)
		}
		p, ok := replication.LessLog{}.Place(s, mustOverloaded(t, s))
		if !ok {
			break
		}
		s.AddReplica(p)
	}
}

func mustOverloaded(t *testing.T, s *Sim) bitops.PID {
	t.Helper()
	p, ok := s.mostOverloaded()
	if !ok {
		t.Fatal("expected an overloaded holder")
	}
	return p
}

func TestReplicationHalvesLoad(t *testing.T) {
	// §2.2's guarantee: with evenly distributed requests, replicating to
	// the first node of the children list halves the root's load (up to
	// the one request-source granularity).
	s := evenSim(10, 4, 20000, 100)
	before := s.LoadOf(4)
	p, ok := replication.LessLog{}.Place(s, 4)
	if !ok {
		t.Fatal("no placement")
	}
	s.AddReplica(p)
	after := s.LoadOf(4)
	perNode := 20000.0 / 1024
	if math.Abs(after-before/2) > perNode+1e-9 {
		t.Fatalf("load after one replication = %v, want ~%v", after, before/2)
	}
	// The replica carries the other half.
	if math.Abs(s.LoadOf(p)-before/2) > perNode+1e-9 {
		t.Fatalf("replica load = %v, want ~%v", s.LoadOf(p), before/2)
	}
}

func TestBalanceLessLogEven(t *testing.T) {
	s := evenSim(10, 4, 20000, 100)
	res, err := s.Balance(replication.LessLog{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced || res.Summary.Overloaded != 0 {
		t.Fatalf("not balanced: %+v", res)
	}
	// 20000 req/s at <=100 per holder needs at least 200 holders; the
	// binomial splitting should not need more than ~2.5x the lower bound.
	if res.ReplicasCreated < 199 || res.ReplicasCreated > 520 {
		t.Fatalf("lesslog replicas = %d, outside sane band", res.ReplicasCreated)
	}
	if res.Summary.MaxLoad > 100 {
		t.Fatalf("max load %v above cap", res.Summary.MaxLoad)
	}
}

func TestStrategyOrderingMatchesPaper(t *testing.T) {
	// Figure 5's qualitative result at one sweep point: random needs far
	// more replicas than LessLog; log-based needs no more than LessLog
	// (up to a small slack since our log-based is an oracle).
	run := func(strat replication.Strategy, seed uint64) int {
		live := liveness.NewAllLive(10, 1024)
		s := New(Config{
			M: 10, Target: 4, Cap: 100,
			Live:  live,
			Rates: workload.Even(10000, live),
			Seed:  seed,
		})
		res, err := s.Balance(strat, 0)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		return res.ReplicasCreated
	}
	ll := run(replication.LessLog{}, 1)
	rnd := run(replication.Random{}, 1)
	lb := run(replication.LogBased{}, 1)
	if !(rnd > ll) {
		t.Fatalf("random (%d) should need more replicas than lesslog (%d)", rnd, ll)
	}
	if lb > ll {
		t.Fatalf("oracle log-based (%d) should need at most lesslog's replicas (%d)", lb, ll)
	}
	t.Logf("replicas: log-based=%d lesslog=%d random=%d", lb, ll, rnd)
}

func TestDeadRootFallback(t *testing.T) {
	// §3 worked example: P(4), P(5) dead, target 4. Every request lands
	// on the primary P(6).
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	s := New(Config{
		M: 4, Target: 4, Cap: 100,
		Live:  live,
		Rates: workload.Even(1400, live),
		Seed:  1,
	})
	loads := s.Loads()
	if len(loads) != 1 || math.Abs(loads[6]-1400) > 1e-6 {
		t.Fatalf("loads = %v, want 1400 at P(6)", loads)
	}
}

func TestBalanceWithDeadNodes(t *testing.T) {
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		live := liveness.NewAllLive(10, 1024)
		workload.KillRandom(live, frac, bitops.PID(^uint32(0)), xrand.New(7))
		s := New(Config{
			M: 10, Target: 4, Cap: 100,
			Live:  live,
			Rates: workload.Even(15000, live),
			Seed:  2,
		})
		res, err := s.Balance(replication.LessLog{}, 0)
		if err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		if !res.Balanced {
			t.Fatalf("frac=%v not balanced", frac)
		}
		// Replicas only on live nodes.
		for _, h := range s.Holders() {
			if !live.IsLive(h) {
				t.Fatalf("holder P(%d) is dead", h)
			}
		}
	}
}

func TestLocalityBalance(t *testing.T) {
	live := liveness.NewAllLive(10, 1024)
	rates := workload.Locality(20000, 0.8, 0.2, live, xrand.New(3))
	s := New(Config{M: 10, Target: 4, Cap: 100, Live: live, Rates: rates, Seed: 3})
	res, err := s.Balance(replication.LessLog{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced {
		t.Fatal("locality workload not balanced")
	}
}

func TestFaultTolerantSubtreeRouting(t *testing.T) {
	// b=2: four independent subtrees, each with its own primary. Loads
	// must stay inside the origin's subtree.
	live := liveness.NewAllLive(6, 64)
	s := New(Config{
		M: 6, B: 2, Target: 9, Cap: 1000,
		Live:  live,
		Rates: workload.Even(6400, live),
		Seed:  1,
	})
	prims := s.Primaries()
	if len(prims) != 4 {
		t.Fatalf("primaries = %v, want 4", prims)
	}
	loads := s.Loads()
	if len(loads) != 4 {
		t.Fatalf("loads on %d holders, want 4", len(loads))
	}
	for _, l := range loads {
		if math.Abs(l-1600) > 1e-6 {
			t.Fatalf("subtree load %v, want 1600", l)
		}
	}
}

func TestFaultTolerantBalance(t *testing.T) {
	live := liveness.NewAllLive(8, 256)
	s := New(Config{
		M: 8, B: 2, Target: 77, Cap: 50,
		Live:  live,
		Rates: workload.Even(2560, live),
		Seed:  5,
	})
	res, err := s.Balance(replication.LessLog{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced {
		t.Fatal("b=2 system not balanced")
	}
}

func TestEvictCold(t *testing.T) {
	// Balance at a high rate, then drop the rate tenfold: most replicas
	// go cold and the counter-based mechanism removes them without
	// re-overloading anyone.
	live := liveness.NewAllLive(10, 1024)
	s := New(Config{M: 10, Target: 4, Cap: 100, Live: live,
		Rates: workload.Even(20000, live), Seed: 9})
	if _, err := s.Balance(replication.LessLog{}, 0); err != nil {
		t.Fatal(err)
	}
	holdersBefore := len(s.Holders())
	// Rate collapse.
	s.SetRates(workload.Even(2000, live))
	removed := s.EvictCold(20)
	if removed == 0 {
		t.Fatal("no cold replicas removed")
	}
	if _, over := s.mostOverloaded(); over {
		t.Fatal("eviction overloaded the system")
	}
	if len(s.Holders()) != holdersBefore-removed {
		t.Fatalf("holder bookkeeping wrong: %d -> %d after %d removals",
			holdersBefore, len(s.Holders()), removed)
	}
	t.Logf("evicted %d of %d holders after rate collapse", removed, holdersBefore)
}

func TestMeanHops(t *testing.T) {
	// Complete m=4 tree, single primary at the root: the mean path is
	// the mean VID depth, which is m/2 = 2 (half the 4 bits of a uniform
	// random VID are zeros).
	s := evenSim(4, 4, 1600, 1e9)
	if got := s.MeanHops(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("MeanHops = %v, want 2.0", got)
	}
	// A replica at the root's first child (subtree of 8) saves one hop
	// for its 8 members... except itself saves its full depth. Easier
	// invariant: adding any replica never lengthens the mean path.
	before := s.MeanHops()
	p, _ := (replication.LessLog{}).Place(s, 4)
	s.AddReplica(p)
	if after := s.MeanHops(); after > before {
		t.Fatalf("mean hops rose from %v to %v after replication", before, after)
	}
}

func TestRemoveReplicaRefusesPrimary(t *testing.T) {
	s := evenSim(4, 4, 100, 1000)
	if s.RemoveReplica(4) {
		t.Fatal("primary copy removed")
	}
	if s.RemoveReplica(7) {
		t.Fatal("removed a copy that does not exist")
	}
	s.AddReplica(7)
	if !s.RemoveReplica(7) {
		t.Fatal("failed to remove a replica")
	}
}

func TestAddReplicaPanicsOnDead(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(9)
	s := New(Config{M: 4, Target: 4, Cap: 100, Live: live,
		Rates: workload.Even(100, live), Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddReplica on dead node did not panic")
		}
	}()
	s.AddReplica(9)
}

func TestBudgetExhaustion(t *testing.T) {
	s := evenSim(10, 4, 20000, 100)
	_, err := s.Balance(replication.LessLog{}, 3)
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestStuckWhenOwnRateExceedsCap(t *testing.T) {
	// A single origin with rate above the cap can never be balanced:
	// after every node holds a copy the origin still serves its own
	// requests. The simulator must report ErrStuck, not loop.
	live := liveness.NewAllLive(3, 8)
	s := New(Config{M: 3, Target: 0, Cap: 10, Live: live,
		Rates: workload.Point(500, 5, live), Seed: 1})
	_, err := s.Balance(replication.LessLog{}, 0)
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestSummaryAndForwarded(t *testing.T) {
	s := evenSim(4, 4, 1600, 100)
	sum := s.Summary()
	if sum.Holders != 1 || sum.Overloaded != 1 || math.Abs(sum.TotalLoad-1600) > 1e-6 {
		t.Fatalf("summary = %+v", sum)
	}
	// The root's heaviest forwarder is its first child P(5) (subtree of
	// 8 positions including itself).
	f5 := s.ForwardedLoad(4, 5)
	if math.Abs(f5-800) > 1e-6 {
		t.Fatalf("forwarded via P(5) = %v, want 800", f5)
	}
	f6 := s.ForwardedLoad(4, 6)
	if math.Abs(f6-400) > 1e-6 {
		t.Fatalf("forwarded via P(6) = %v, want 400", f6)
	}
}
