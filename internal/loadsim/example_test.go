package loadsim_test

import (
	"fmt"

	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
)

// One point of the paper's Figure 5: 20,000 req/s spread evenly over
// 1024 nodes, balanced under the 100 req/s cap by the logless placement.
func Example() {
	live := liveness.NewAllLive(10, 1024)
	sim := loadsim.New(loadsim.Config{
		M: 10, Target: 4, Cap: 100,
		Live:  live,
		Rates: workload.Even(20000, live),
		Seed:  1,
	})
	res, err := sim.Balance(replication.LessLog{}, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("replicas=%d balanced=%v max-load=%.1f\n",
		res.ReplicasCreated, res.Balanced, res.Summary.MaxLoad)
	// Output: replicas=255 balanced=true max-load=78.1
}

// The §2.2 halving guarantee: one replication takes exactly half the
// overloaded root's load.
func ExampleSim_AddReplica() {
	live := liveness.NewAllLive(10, 1024)
	sim := loadsim.New(loadsim.Config{
		M: 10, Target: 4, Cap: 100,
		Live:  live,
		Rates: workload.Even(20000, live),
		Seed:  1,
	})
	before := sim.LoadOf(4)
	target, _ := (replication.LessLog{}).Place(sim, 4)
	sim.AddReplica(target)
	fmt.Printf("%.0f -> %.0f\n", before, sim.LoadOf(4))
	// Output: 20000 -> 10000
}
