// Package loadsim is the analytic load-balance simulator behind the
// paper's evaluation (§6). It models the steady state of a LessLog system
// serving one popular file: every live node originates get requests at a
// fixed rate, each request walks the file's lookup tree toward the target
// along live ancestors and is served by the first node holding a copy
// (falling back to the FINDLIVENODE primary when the walk ends at a dead
// root, §3), and a node serving more than the load cap is overloaded.
//
// Balance repeatedly lets the most-overloaded holder place one replica via
// a replication.Strategy until no holder exceeds the cap, counting the
// replicas created — exactly the quantity Figures 5–8 plot.
package loadsim

import (
	"errors"
	"fmt"
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/metrics"
	"lesslog/internal/ptree"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// Config parameterizes one simulation.
type Config struct {
	M      int            // identifier width; 2^M slots
	B      int            // fault-tolerance bits (0 in the paper's figures)
	Target bitops.PID     // ψ(f), the popular file's target node
	Cap    float64        // overload threshold in req/s (paper: 100)
	Live   *liveness.Set  // node liveness; not modified
	Rates  workload.Rates // per-origin request rates
	Seed   uint64         // randomness for strategies
}

// Sim is the mutable simulation state. It implements replication.Context.
type Sim struct {
	cfg  Config
	view ptree.View
	rng  *xrand.Rand

	copies    map[bitops.PID]bool
	primaries []bitops.PID // one per subtree that has any live node

	loads     map[bitops.PID]float64
	forwarded map[bitops.PID]map[bitops.PID]float64
	hopRate   float64 // sum over origins of rate × hops to the server
	dirty     bool
}

// New builds a simulation with the primary copies already inserted by
// ADVANCEDINSERTFILE: in each of the 2^B subtrees, the live node
// FINDLIVENODE selects. Subtrees with no live node hold no copy.
func New(cfg Config) *Sim {
	bitops.CheckSplit(cfg.M, cfg.B)
	if cfg.Live.M() != cfg.M {
		panic("loadsim: liveness width mismatch")
	}
	if len(cfg.Rates) != bitops.Slots(cfg.M) {
		panic("loadsim: rates length mismatch")
	}
	s := &Sim{
		cfg:    cfg,
		view:   ptree.NewView(cfg.Target, cfg.Live, cfg.B),
		rng:    xrand.New(cfg.Seed),
		copies: make(map[bitops.PID]bool),
		dirty:  true,
	}
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(cfg.B)); sid++ {
		if p, ok := s.view.PrimaryHolder(sid); ok {
			s.copies[p] = true
			s.primaries = append(s.primaries, p)
		}
	}
	return s
}

// View implements replication.Context.
func (s *Sim) View() ptree.View { return s.view }

// HasCopy implements replication.Context.
func (s *Sim) HasCopy(p bitops.PID) bool { return s.copies[p] }

// Rand implements replication.Context.
func (s *Sim) Rand() *xrand.Rand { return s.rng }

// ForwardedLoad implements replication.Context: the request rate entering
// holder through child as the last live hop before holder.
func (s *Sim) ForwardedLoad(holder, child bitops.PID) float64 {
	s.recompute()
	return s.forwarded[holder][child]
}

// Primaries returns the nodes holding the initially inserted copies.
func (s *Sim) Primaries() []bitops.PID { return append([]bitops.PID(nil), s.primaries...) }

// Holders returns the current copy holders (primaries plus replicas).
func (s *Sim) Holders() []bitops.PID {
	out := make([]bitops.PID, 0, len(s.copies))
	for p := range s.copies {
		out = append(out, p)
	}
	return out
}

// AddReplica places a copy at p. It panics if p is dead — replicas only
// ever land on live nodes.
func (s *Sim) AddReplica(p bitops.PID) {
	if !s.cfg.Live.IsLive(p) {
		panic(fmt.Sprintf("loadsim: replica on dead node P(%d)", p))
	}
	s.copies[p] = true
	s.dirty = true
}

// RemoveReplica drops the copy at p unless p holds a primary. It reports
// whether a copy was removed.
func (s *Sim) RemoveReplica(p bitops.PID) bool {
	for _, pr := range s.primaries {
		if pr == p {
			return false
		}
	}
	if !s.copies[p] {
		return false
	}
	delete(s.copies, p)
	s.dirty = true
	return true
}

// SetRates swaps the per-origin request rates, modeling a workload shift
// (the eviction experiment's rate collapse). The slice length must match
// the identifier space.
func (s *Sim) SetRates(r workload.Rates) {
	if len(r) != bitops.Slots(s.cfg.M) {
		panic("loadsim: rates length mismatch")
	}
	s.cfg.Rates = r
	s.dirty = true
}

// Loads returns the per-holder serve rates. The map is shared; callers
// must not modify it.
func (s *Sim) Loads() map[bitops.PID]float64 {
	s.recompute()
	return s.loads
}

// LoadOf returns one holder's serve rate.
func (s *Sim) LoadOf(p bitops.PID) float64 {
	s.recompute()
	return s.loads[p]
}

// Summary returns the current load summary.
func (s *Sim) Summary() metrics.LoadSummary {
	s.recompute()
	l := make(map[uint32]float64, len(s.loads))
	for p, v := range s.loads {
		l[uint32(p)] = v
	}
	return metrics.SummarizeLoads(l, s.cfg.Cap)
}

// recompute routes every origin's rate to its serving holder, rebuilding
// the load and forwarded-rate tables. Cost O(live · depth).
func (s *Sim) recompute() {
	if !s.dirty {
		return
	}
	s.loads = make(map[bitops.PID]float64, len(s.copies))
	s.forwarded = make(map[bitops.PID]map[bitops.PID]float64)
	s.hopRate = 0
	for p := range s.copies {
		s.loads[p] = 0
	}
	s.cfg.Live.ForEachLive(func(origin bitops.PID) {
		rate := s.cfg.Rates[origin]
		if rate == 0 {
			return
		}
		server, prev, hops := s.route(origin)
		s.loads[server] += rate
		s.hopRate += rate * float64(hops)
		if prev != server {
			m := s.forwarded[server]
			if m == nil {
				m = make(map[bitops.PID]float64)
				s.forwarded[server] = m
			}
			m[prev] += rate
		}
	})
	s.dirty = false
}

// route returns the holder serving a request from origin, the last live
// node visited before it (== server when the origin itself is served
// directly or the request arrived via the FINDLIVENODE fallback), and the
// number of forwarding hops taken.
func (s *Sim) route(origin bitops.PID) (server, prev bitops.PID, hops int) {
	prev = origin
	cur := origin
	if s.copies[cur] {
		return cur, cur, 0
	}
	for {
		next, ok := s.view.AliveAncestor(cur)
		if !ok {
			// Walk ended at a dead subtree root: §3's second step jumps
			// to the FINDLIVENODE primary directly.
			p, ok := s.view.PrimaryHolder(s.view.SubtreeID(origin))
			if !ok {
				// No live node in the subtree at all; unreachable for
				// origins, which are live by construction.
				panic("loadsim: origin in a dead subtree")
			}
			return p, p, hops + 1
		}
		hops++
		if s.copies[next] {
			return next, cur, hops
		}
		prev = cur
		cur = next
	}
}

// MeanHops returns the rate-weighted mean number of forwarding hops a
// request takes to reach its serving holder under the current replica
// placement. Replication shortens paths as a side effect of shedding
// load; the HopsVsReplicas extension experiment plots this.
func (s *Sim) MeanHops() float64 {
	s.recompute()
	total := s.cfg.Rates.Total()
	if total == 0 {
		return 0
	}
	return s.hopRate / total
}

// Result reports the outcome of Balance.
type Result struct {
	Strategy        string
	ReplicasCreated int
	Rounds          int
	Balanced        bool
	Summary         metrics.LoadSummary
}

// ErrStuck is returned when the strategy cannot place a replica while a
// holder is still overloaded.
var ErrStuck = errors.New("loadsim: strategy has no candidate but system is overloaded")

// ErrBudget is returned when maxReplicas placements did not balance the
// system.
var ErrBudget = errors.New("loadsim: replica budget exhausted before balance")

// Balance drives the system to a load-balanced state: while some holder
// serves more than the cap, the most-overloaded holder places one replica
// chosen by the strategy. It returns the number of replicas created.
// maxReplicas <= 0 means one per identifier slot, the natural ceiling.
//
// A holder whose strategy has no candidate left (its children list is
// saturated) is set aside and the next overloaded holder acts, exactly as
// the paper's REPLICATEFILE stops "until P(r) is not overloaded" runs out
// of list entries. When every overloaded holder is saturated — possible
// only when some node's own request origination exceeds the cap — Balance
// returns the replicas created so far together with ErrStuck and
// Balanced=false: the system is as balanced as replication can make it.
func (s *Sim) Balance(strategy replication.Strategy, maxReplicas int) (Result, error) {
	if maxReplicas <= 0 {
		maxReplicas = bitops.Slots(s.cfg.M)
	}
	res := Result{Strategy: strategy.Name()}
	saturated := make(map[bitops.PID]bool)
	for {
		s.recompute()
		over, ok := s.mostOverloadedExcept(saturated)
		if !ok {
			if _, stillOver := s.mostOverloadedExcept(nil); stillOver {
				res.Summary = s.Summary()
				return res, ErrStuck
			}
			res.Balanced = true
			res.Summary = s.Summary()
			return res, nil
		}
		if res.ReplicasCreated >= maxReplicas {
			res.Summary = s.Summary()
			return res, ErrBudget
		}
		target, ok := strategy.Place(s, over)
		if !ok {
			saturated[over] = true
			continue
		}
		if s.copies[target] {
			res.Summary = s.Summary()
			return res, fmt.Errorf("loadsim: %s placed a duplicate copy at P(%d)", strategy.Name(), target)
		}
		s.AddReplica(target)
		res.ReplicasCreated++
		res.Rounds++
		// A new copy can relieve a saturated holder's load; re-examine.
		clear(saturated)
	}
}

// mostOverloadedExcept returns the holder with the highest load above the
// cap that is not in skip, ties broken toward the lowest PID.
func (s *Sim) mostOverloadedExcept(skip map[bitops.PID]bool) (bitops.PID, bool) {
	s.recompute()
	var best bitops.PID
	var bestLoad float64
	found := false
	for p, l := range s.loads {
		if l <= s.cfg.Cap || skip[p] {
			continue
		}
		if !found || l > bestLoad || (l == bestLoad && p < best) {
			best, bestLoad, found = p, l, true
		}
	}
	return best, found
}

// mostOverloaded returns the holder with the highest load above the cap.
func (s *Sim) mostOverloaded() (bitops.PID, bool) {
	return s.mostOverloadedExcept(nil)
}

// EvictCold implements the §6 counter-based removal mechanism at the rate
// level: replicas serving strictly less than minRate are removed, coldest
// first, as long as removing them keeps every holder at or below the cap.
// It returns the number of replicas removed.
func (s *Sim) EvictCold(minRate float64) int {
	removed := 0
	for {
		s.recompute()
		// Candidates this pass: non-primary holders below the rate
		// threshold, coldest first (ties toward lower PID).
		var cands []bitops.PID
		for p, l := range s.loads {
			if !s.isPrimary(p) && l < minRate {
				cands = append(cands, p)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			li, lj := s.loads[cands[i]], s.loads[cands[j]]
			if li != lj {
				return li < lj
			}
			return cands[i] < cands[j]
		})
		progressed := false
		for _, p := range cands {
			if s.LoadOf(p) >= minRate { // may have warmed up after removals
				continue
			}
			s.RemoveReplica(p)
			s.recompute()
			if _, over := s.mostOverloaded(); over {
				s.AddReplica(p) // roll back: removal would overload
				continue
			}
			removed++
			progressed = true
		}
		if !progressed {
			return removed
		}
	}
}

func (s *Sim) isPrimary(p bitops.PID) bool {
	for _, pr := range s.primaries {
		if pr == p {
			return true
		}
	}
	return false
}
