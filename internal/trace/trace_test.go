package trace

import (
	"strings"
	"testing"

	"lesslog/internal/liveness"
	"lesslog/internal/msg"
)

func TestVirtual(t *testing.T) {
	out := Virtual(4)
	if !strings.HasPrefix(out, "1111\n") {
		t.Fatalf("virtual tree:\n%s", out)
	}
	if strings.Count(out, "\n") != 16 {
		t.Fatalf("expected 16 lines, got:\n%s", out)
	}
}

func TestPhysicalMarksDead(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(5)
	out := Physical(4, 4, live)
	if !strings.Contains(out, "P(4)") || !strings.Contains(out, "P(5) ✗dead") {
		t.Fatalf("physical tree:\n%s", out)
	}
	// Root line carries the all-ones VID and the root PID.
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(first, "1111") || !strings.Contains(first, "P(4)") {
		t.Fatalf("root line = %q", first)
	}
}

func TestRouteCompleteSystem(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	got := Route(8, 4, live, 0)
	if got != "P(8) → P(0) → P(4)" {
		t.Fatalf("route = %q", got)
	}
}

func TestRouteWithFallback(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	got := Route(7, 4, live, 0)
	if !strings.Contains(got, "P(7)") || !strings.Contains(got, "FINDLIVENODE") || !strings.Contains(got, "P(6)") {
		t.Fatalf("route = %q", got)
	}
}

func TestHopRouteArrowStyles(t *testing.T) {
	hops := []msg.Hop{
		{PID: 8, Action: msg.HopForward},
		{PID: 0, Action: msg.HopFallback},
		{PID: 4, Action: msg.HopMigrate},
		{PID: 12, Action: msg.HopServe},
	}
	if got := HopRoute(hops); got != "P(8) → P(0) ⇒ P(4) ↷ P(12)" {
		t.Fatalf("route = %q", got)
	}
	// A traced locate ends in the holder's locate hop — same arrows.
	locate := []msg.Hop{
		{PID: 8, Action: msg.HopForward},
		{PID: 0, Action: msg.HopLocate},
	}
	if got := HopRoute(locate); got != "P(8) → P(0)" {
		t.Fatalf("locate route = %q", got)
	}
	// A traced lookup that died carries its partial path with a terminal
	// fault marker.
	fault := []msg.Hop{
		{PID: 8, Action: msg.HopForward},
		{PID: 0, Action: msg.HopFault},
	}
	if got := HopRoute(fault); got != "P(8) → P(0)✗" {
		t.Fatalf("fault route = %q", got)
	}
}

func TestChildrenList(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	if got := ChildrenList(4, 4, live, 0); got != "(P(5), P(6), P(0), P(12))" {
		t.Fatalf("complete children list = %q", got)
	}
	live.SetDead(0)
	live.SetDead(5)
	if got := ChildrenList(4, 4, live, 0); got != "(P(6), P(7), P(1), P(12), P(13), P(8))" {
		t.Fatalf("expanded children list = %q", got)
	}
}

func TestDOT(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(5)
	out := DOT(4, 4, live)
	if !strings.HasPrefix(out, "digraph lesslog_tree_P4 {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("dot framing:\n%s", out)
	}
	// 16 node declarations, 15 edges, dead node dashed.
	if strings.Count(out, "label=") != 16 {
		t.Fatalf("node count wrong:\n%s", out)
	}
	if strings.Count(out, "->") != 15 {
		t.Fatalf("edge count wrong:\n%s", out)
	}
	if !strings.Contains(out, "P(5)}\", style=dashed") {
		t.Fatalf("dead node not dashed:\n%s", out)
	}
}

func TestConversions(t *testing.T) {
	out := Conversions(4, 4, 100) // n clamped to 16
	if !strings.Contains(out, "complement = 1011") {
		t.Fatalf("conversions:\n%s", out)
	}
	if strings.Count(out, "\n") != 18 { // header x2 + 16 rows
		t.Fatalf("row count wrong:\n%s", out)
	}
}
