// Package trace renders LessLog's lookup trees and routing paths as text
// — the tooling counterpart of the paper's Figures 1–4 — for the
// lesslog-trace command, examples and debugging sessions.
package trace

import (
	"fmt"
	"strings"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/vtree"
)

// Virtual renders the unique m-bit virtual lookup tree (Figure 1).
func Virtual(m int) string {
	return vtree.New(m).Render(nil)
}

// Physical renders the lookup tree of P(root) with each position labeled
// by its PID, marking dead positions (Figures 2 and 3). live may be nil
// for a complete system.
func Physical(root bitops.PID, m int, live *liveness.Set) string {
	t := vtree.New(m)
	return t.Render(func(v bitops.VID) string {
		p := bitops.PIDOf(v, root, m)
		if live != nil && !live.IsLive(p) {
			return fmt.Sprintf("  P(%d) ✗dead", p)
		}
		return fmt.Sprintf("  P(%d)", p)
	})
}

// Route formats the live stops a get from origin traverses in the lookup
// tree of target, e.g. "P(8) → P(0) → P(4)".
func Route(origin, target bitops.PID, live *liveness.Set, b int) string {
	v := ptree.NewView(target, live, b)
	stops := v.PathLiveStops(origin)
	parts := make([]string, 0, len(stops)+1)
	if len(stops) == 0 || stops[0] != origin {
		parts = append(parts, fmt.Sprintf("P(%d)✗", origin))
	}
	for _, s := range stops {
		parts = append(parts, fmt.Sprintf("P(%d)", s))
	}
	route := strings.Join(parts, " → ")
	if len(stops) == 0 || !liveIs(live, v, stops[len(stops)-1], target) {
		if p, ok := v.PrimaryHolder(v.SubtreeID(origin)); ok {
			route += fmt.Sprintf(" ⇒ P(%d) [FINDLIVENODE]", p)
		}
	}
	return route
}

// HopRoute formats the observed hop records of a traced wire-level get in
// the same arrow style as Route — "P(8) → P(0) → P(4)" — so the live route
// a request actually took reads exactly like the predicted one. The §3
// FINDLIVENODE step is drawn with "⇒", the §4 subtree migration with "↷".
// A terminal fault hop is marked "P(x)✗" — the stop where routing died on
// a traced lookup that ended in a fault.
func HopRoute(hops []msg.Hop) string {
	var b strings.Builder
	for i, h := range hops {
		if i > 0 {
			switch hops[i-1].Action {
			case msg.HopFallback:
				b.WriteString(" ⇒ ")
			case msg.HopMigrate:
				b.WriteString(" ↷ ")
			default:
				b.WriteString(" → ")
			}
		}
		fmt.Fprintf(&b, "P(%d)", h.PID)
		if h.Action == msg.HopFault {
			b.WriteString("✗")
		}
	}
	return b.String()
}

// HopTable formats the hop records one per line with action and per-stop
// latency — the detail view `lesslogd -op get -trace` prints under the
// route.
func HopTable(hops []msg.Hop) string {
	var b strings.Builder
	for i, h := range hops {
		fmt.Fprintf(&b, "%2d  P(%-3d) %-8s %s\n",
			i, h.PID, h.Action, h.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// liveIs reports whether last is the target's subtree root position —
// i.e. the walk completed without needing the fallback.
func liveIs(live *liveness.Set, v ptree.View, last, target bitops.PID) bool {
	return v.SubtreeVID(last) == bitops.Mask(live.M()-v.B)
}

// ChildrenList formats the (expanded) children list of p in the tree of
// target, e.g. "(P(6), P(7), P(1), P(12), P(13), P(8))" (§2.2, §3).
func ChildrenList(p, target bitops.PID, live *liveness.Set, b int) string {
	v := ptree.NewView(target, live, b)
	list := v.ExpandedChildrenList(p)
	parts := make([]string, len(list))
	for i, c := range list {
		parts[i] = fmt.Sprintf("P(%d)", c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// DOT renders the lookup tree of P(root) in Graphviz DOT format, with
// dead positions drawn dashed — paste into `dot -Tsvg` to regenerate the
// paper's figures graphically. live may be nil for a complete system.
func DOT(root bitops.PID, m int, live *liveness.Set) string {
	t := vtree.New(m)
	var b strings.Builder
	fmt.Fprintf(&b, "digraph lesslog_tree_P%d {\n", root)
	b.WriteString("  node [shape=record, fontname=\"monospace\"];\n")
	for _, v := range t.Preorder() {
		p := bitops.PIDOf(v, root, m)
		attrs := ""
		if live != nil && !live.IsLive(p) {
			attrs = ", style=dashed, color=gray"
		}
		fmt.Fprintf(&b, "  v%d [label=\"{%0*b|P(%d)}\"%s];\n", v, m, v, p, attrs)
		for _, c := range t.Children(v) {
			fmt.Fprintf(&b, "  v%d -> v%d;\n", v, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Conversions formats the PID↔VID table of one lookup tree for the first
// n slots, a study aid for Property 4.
func Conversions(target bitops.PID, m, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lookup tree of P(%d): complement = %0*b\n", target, m, bitops.Complement(target, m))
	fmt.Fprintf(&sb, "%6s  %s\n", "PID", "VID")
	if n > bitops.Slots(m) {
		n = bitops.Slots(m)
	}
	for p := 0; p < n; p++ {
		fmt.Fprintf(&sb, "%6d  %0*b\n", p, m, bitops.VIDOf(bitops.PID(p), target, m))
	}
	return sb.String()
}
