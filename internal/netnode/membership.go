package netnode

// Dynamic membership over the wire: the §5 self-organized mechanism
// distributed across real peers. A joining peer bootstraps the address
// table (the networked status word) from any member and registers itself;
// every member that held a file on the joiner's behalf detects the new
// placement locally — pure bit arithmetic, true to the paper — and hands
// the inserted copy over. Departures broadcast a dead registration; a
// graceful leaver first pushes its inserted copies to their new primaries,
// while after a failure the holders in sibling subtrees (B > 0) detect the
// lost copy and restore it.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/msg"
	"lesslog/internal/store"
)

// Join bootstraps this peer into an existing system: it fetches the
// address table from the peer at bootstrapAddr, installs it (plus
// itself), and broadcasts a live registration through the bootstrap peer,
// which triggers the §5.1 file handoff at every holder. Both exchanges go
// through the peer's own transport — the table fetch gets the deadline,
// retry and pooling treatment of any other idempotent RPC, instead of the
// bare package-default path a joining node used to bootstrap over.
func (p *Peer) Join(bootstrapAddr string) error {
	resp, err := p.tr.Do(bootstrapAddr, &msg.Request{Kind: msg.KindTable})
	if err != nil {
		return fmt.Errorf("netnode: join: fetch table: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("netnode: join: %s", resp.Err)
	}
	table, err := parseTable(string(resp.Data))
	if err != nil {
		return err
	}
	table[p.cfg.PID] = p.Addr()
	p.SetAddrs(table)
	reg := &msg.Request{
		Kind:   msg.KindRegister,
		Origin: uint32(p.cfg.PID),
		Data:   []byte(p.Addr()),
	}
	rresp, err := p.tr.Do(bootstrapAddr, reg)
	if err != nil {
		return fmt.Errorf("netnode: join: register: %w", err)
	}
	if !rresp.OK {
		return fmt.Errorf("netnode: join: register: %s", rresp.Err)
	}
	p.log.Info("joined system", "bootstrap", bootstrapAddr, "peers", len(table))
	// Restart warming: a peer rejoining with recovered state (or live
	// tombstones) re-announces it through the repair plane instead of
	// waiting for the steady-state loop to stumble across each name —
	// pushes restore lost placements, tombstones propagate deletions the
	// crash interrupted. Background, so Join returns at the same point it
	// always did; tests needing determinism call AnnounceInventory directly.
	if p.store.Len() > 0 || p.store.TombstoneCount() > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.AnnounceInventory()
		}()
	}
	return nil
}

// Leave retires this peer gracefully (§5.2): its inserted copies are
// pushed to the primaries that take over once it is gone, its replicas
// are discarded with it, and a dead registration is broadcast. The caller
// should Close the peer afterwards.
//
// Leave holds propMu's write side across the whole handoff, so an
// update/delete broadcast mid-fan-out at this peer finishes (or starts)
// atomically with respect to the copies moving out — without it, a copy
// handed to its new primary could miss the rewrite the in-flight
// broadcast was still applying locally.
//
// A handoff target that fails mid-leave does not abort the departure:
// the call is retried against a freshly computed primary (the failure
// feeds the detector, so a dead successor's liveness bit flips and the
// next attempt picks the §3 FINDLIVENODE fallback holder instead), and a
// copy that still cannot be placed is skipped — the B > 0 sibling
// subtrees keep serving it, and the repair loop re-establishes the
// missing placement. The old behavior (abort the leave) left the peer
// half-departed: marked dead locally, never broadcast, copies stranded.
func (p *Peer) Leave() error {
	p.propMu.Lock()
	defer p.propMu.Unlock()
	// Compute the post-departure placements against a view in which this
	// peer is already dead (snapshot swap, as in applyRegister).
	p.mutateRouting(func(addrs map[bitops.PID]string, live *liveness.Set) {
		live.SetDead(p.cfg.PID)
	})
	inserted := p.store.Names(store.Inserted)
	files := make([]store.File, 0, len(inserted))
	for _, name := range inserted {
		f, _ := p.store.Peek(name)
		files = append(files, f)
	}
	attempts := p.tr.Config().FailThreshold + 1
	skipped := 0
	for _, f := range files {
		target := p.hasher.Target(f.Name, p.cfg.M)
		sreq := &msg.Request{Kind: msg.KindStore, Name: f.Name, Data: f.Data, Version: f.Version}
		placed, tried := false, false
		for attempt := 0; attempt < attempts && !placed; attempt++ {
			// Fresh view each attempt: a failed call feeds the detector,
			// so once the dead successor's bit flips, PrimaryHolder picks
			// the next live holder in the subtree (§3 over the wire).
			v := p.view(target)
			h, ok := v.PrimaryHolder(v.SubtreeID(p.cfg.PID))
			if !ok {
				break // subtree dies with us; B > 0 siblings still serve
			}
			tried = true
			if resp, err := p.call(h, sreq); err == nil && resp.OK {
				placed = true
			}
		}
		if tried && !placed {
			skipped++
			p.log.Warn("leave: handoff skipped, no reachable successor", "name", f.Name)
		}
	}
	p.broadcastRegister(p.cfg.PID, nil, true)
	// Local state retires with the peer: replicas are discarded (§5.2) and
	// every handed-off inserted copy now lives at its new primary. The
	// discard is in-memory plus one durable barrier record — not one delete
	// record per name, which is pure write amplification on a WAL-backed
	// peer — so a later restart replays to empty instead of re-announcing
	// copies the fabric already re-homed. A skipped copy keeps the whole
	// store (and log) intact instead: the B > 0 siblings still serve it
	// live, and a warm restart re-announces the stranded placement rather
	// than losing the only authoritative record of it.
	if skipped == 0 {
		dropped := p.store.DiscardAll()
		if p.eng != nil {
			if err := p.eng.Retire(); err != nil {
				p.log.Warn("leave: retire barrier not logged", "err", err)
			}
		}
		p.log.Info("left system gracefully",
			"handed_off", len(files), "retired", dropped)
	} else {
		p.log.Info("left system gracefully",
			"handed_off", len(files)-skipped, "skipped", skipped)
	}
	return nil
}

// ReportFailure lets any surviving peer announce that pid crashed. The
// broadcast marks it dead everywhere and, with B > 0, holders in sibling
// subtrees restore the lost copies (§5.3).
func (p *Peer) ReportFailure(pid bitops.PID) {
	p.broadcastRegister(pid, nil, true)
}

// broadcastRegister delivers a registration to every known peer
// (including this one) as already-propagated messages.
func (p *Peer) broadcastRegister(pid bitops.PID, addr []byte, dead bool) {
	req := &msg.Request{
		Kind:   msg.KindRegister,
		Flags:  msg.FlagPropagate,
		Origin: uint32(pid),
		Data:   addr,
	}
	if dead {
		req.Flags |= msg.FlagDead
	}
	addrs := p.rt().addrs
	targets := make([]bitops.PID, 0, len(addrs))
	for q := range addrs {
		if q != pid {
			targets = append(targets, q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, q := range targets {
		if q == p.cfg.PID {
			p.applyRegister(req)
			continue
		}
		p.call(q, req) // best effort; a missed peer re-syncs on next table fetch
	}
}

// handleRegister processes a membership announcement; a non-propagated
// one (from the joining node itself) is relayed to every other peer.
func (p *Peer) handleRegister(req *msg.Request) *msg.Response {
	p.applyRegister(req)
	if req.Flags&msg.FlagPropagate == 0 {
		relay := *req
		relay.Flags |= msg.FlagPropagate
		addrs := p.rt().addrs
		targets := make([]bitops.PID, 0, len(addrs))
		for q := range addrs {
			if q != p.cfg.PID && q != bitops.PID(req.Origin) {
				targets = append(targets, q)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, q := range targets {
			p.call(q, &relay)
		}
	}
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID)}
}

// applyRegister updates the local table and runs the file-migration side
// of the §5 mechanism.
func (p *Peer) applyRegister(req *msg.Request) {
	pid := bitops.PID(req.Origin)
	// A registration supersedes the failure detector's observed history:
	// a rejoining peer starts with a clean slate, a registered death needs
	// no further counting.
	p.det.Reset(uint32(pid))
	p.log.Info("membership registration",
		"peer", uint32(pid), "dead", req.Flags&msg.FlagDead != 0)
	if req.Flags&msg.FlagDead != 0 {
		var addr string
		// Snapshot swap: views captured by in-flight requests keep an
		// immutable snapshot of the status word and address table.
		p.mutateRouting(func(addrs map[bitops.PID]string, live *liveness.Set) {
			addr = addrs[pid]
			delete(addrs, pid)
			live.SetDead(pid)
		})
		if addr != "" {
			p.tr.DropIdle(addr)
		}
		p.restoreAfterDeath(pid)
		return
	}
	newAddr := string(req.Data)
	p.mutateRouting(func(addrs map[bitops.PID]string, live *liveness.Set) {
		addrs[pid] = newAddr
		live.SetLive(pid)
	})
	p.handOffTo(pid)
}

// handOffTo implements the joining side of §5.1 at this holder: any
// inserted copy whose subtree placement now selects the joiner moves to
// it.
func (p *Peer) handOffTo(k bitops.PID) {
	if k == p.cfg.PID {
		return
	}
	inserted := p.store.Names(store.Inserted)
	for _, name := range inserted {
		target := p.hasher.Target(name, p.cfg.M)
		v := p.view(target)
		if v.SubtreeID(p.cfg.PID) != v.SubtreeID(k) {
			continue
		}
		h, ok := v.PrimaryHolder(v.SubtreeID(k))
		if !ok || h != k {
			continue
		}
		f, have := p.store.Peek(name)
		if !have {
			continue
		}
		sreq := &msg.Request{Kind: msg.KindStore, Name: f.Name, Data: f.Data, Version: f.Version}
		if resp, err := p.call(k, sreq); err == nil && resp.OK {
			p.store.Delete(name)
			p.stats.Stored.Add(1)
		}
	}
}

// restoreAfterDeath implements the §5.3 recovery at this holder: with
// B > 0, if the dead node was the primary of its subtree for one of our
// files and we hold a sibling-subtree copy, push a fresh copy to the
// subtree's new primary.
func (p *Peer) restoreAfterDeath(k bitops.PID) {
	if p.cfg.B == 0 {
		return
	}
	inserted := p.store.Names(store.Inserted)
	for _, name := range inserted {
		target := p.hasher.Target(name, p.cfg.M)
		v := p.view(target)
		sidK := v.SubtreeID(k)
		if v.SubtreeID(p.cfg.PID) == sidK {
			continue // we were in k's subtree; nothing to restore from here
		}
		h, ok := v.PrimaryHolder(sidK)
		if !ok || v.SubtreeVID(k) <= v.SubtreeVID(h) {
			continue // k was not that subtree's primary (or subtree is empty)
		}
		f, have := p.store.Peek(name)
		if !have {
			continue
		}
		sreq := &msg.Request{Kind: msg.KindStore, Name: f.Name, Data: f.Data, Version: f.Version}
		p.call(h, sreq) // idempotent: several siblings may push the same copy
	}
}

// handleTable serializes the PID→address table as "pid addr" lines.
func (p *Peer) handleTable() *msg.Response {
	addrs := p.rt().addrs
	pids := make([]bitops.PID, 0, len(addrs))
	for q := range addrs {
		pids = append(pids, q)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	var b strings.Builder
	for _, q := range pids {
		fmt.Fprintf(&b, "%d %s\n", q, addrs[q])
	}
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: []byte(b.String())}
}

// parseTable parses handleTable's format.
func parseTable(s string) (map[bitops.PID]string, error) {
	table := map[bitops.PID]string{}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("netnode: malformed table line %q", line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("netnode: malformed table PID %q", parts[0])
		}
		table[bitops.PID(id)] = parts[1]
	}
	return table, nil
}
