package netnode

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/store"
	"lesslog/internal/transport"
)

// TestConnFastGetsOvertakeSlowForward pins the tentpole behavior on a real
// peer: with one persistent connection, a get that must leave the node
// (and is held up downstream) no longer head-of-line-blocks gets the peer
// can answer from its local store. The slow get is issued first; every
// fast get must complete while it is still in flight.
func TestConnFastGetsOvertakeSlowForward(t *testing.T) {
	const forwardDelay = 500 * time.Millisecond

	// Delay every outbound get from the entry peer: "f" targets P(4)
	// under the pinned hasher, so its forwarded lookup stalls, while
	// locally held files never touch the transport.
	faults := transport.NewFaults().Add(transport.Rule{Kind: msg.KindGet, Delay: forwardDelay})
	peers := make(map[bitops.PID]*Peer, 16)
	addrs := make(map[bitops.PID]string, 16)
	for pid := bitops.PID(0); pid < 16; pid++ {
		cfg := Config{PID: pid, M: 4, Hasher: hashring.Fixed(4)}
		if pid == 8 {
			cfg.Faults = faults
		}
		p, err := Listen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	if err := NewClient(addrs[0]).Insert("f", []byte("remote")); err != nil {
		t.Fatal(err)
	}
	peers[8].store.Put(store.File{Name: "local", Data: []byte("here")}, store.Inserted)

	conn, err := DialConn(addrs[8])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var slowDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := conn.Get("f")
		slowDone.Store(true)
		if err != nil {
			t.Errorf("slow forwarded get: %v", err)
			return
		}
		if string(res.Data) != "remote" {
			t.Errorf("slow get data = %q", res.Data)
		}
	}()
	// Give the slow get's frame time to hit the wire first.
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 16; i++ {
		res, err := conn.Get("local")
		if err != nil {
			t.Fatalf("fast get %d: %v", i, err)
		}
		if string(res.Data) != "here" || res.ServedBy != 8 {
			t.Fatalf("fast get %d = %+v", i, res)
		}
	}
	if slowDone.Load() {
		t.Fatal("slow forwarded get finished before the fast local gets — nothing was pipelined")
	}
	wg.Wait()
	if !slowDone.Load() {
		t.Fatal("slow get never completed")
	}
}
