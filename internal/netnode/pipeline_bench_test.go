package netnode

// The acceptance benchmarks for the pipelined hot path (`make peer-bench`;
// the recorded before/after comparison lives in results/pipeline_bench.txt):
//
//   - BenchmarkConnConcurrent8020 drives the §6 80/20 hot-key read mix
//     through ONE client connection from many goroutines. With the
//     serialized serve loop the multi-hop forwards head-of-line-block
//     every request behind them; with per-connection pipelining they
//     overlap.
//   - BenchmarkBroadcastUpdate/Delete rewrite (erase) a file replicated on
//     every peer. With sequential deliver the wall time is the sum of all
//     per-copy RPCs; with parallel fan-out it tracks the tree depth.
//
// Every peer-to-peer RPC carries an injected benchRTT delay — loopback has
// no propagation time, so without it the benchmark measures only CPU and
// concurrency cannot show up in ops/sec. 500µs is a conservative same-rack
// round trip; the multiples below grow with real latency.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/transport"
)

// recordPipelineBench drops the measurement into BENCH_pipeline.json when
// a bench target exports BENCH_JSON_DIR.
func recordPipelineBench(b *testing.B, name string) {
	b.Helper()
	if err := benchjson.Record("pipeline", benchjson.Result{
		Name:    name,
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}); err != nil {
		b.Fatal(err)
	}
}

const benchRTT = 500 * time.Microsecond

// startBenchSystem boots peers whose outbound RPCs each cost benchRTT,
// modeling fabric propagation time on a loopback-only host.
func startBenchSystem(b *testing.B, m int, pids []bitops.PID, hasher hashring.Hasher) map[bitops.PID]*Peer {
	b.Helper()
	peers := make(map[bitops.PID]*Peer, len(pids))
	addrs := make(map[bitops.PID]string, len(pids))
	for _, pid := range pids {
		p, err := Listen(Config{
			PID: pid, M: m, Hasher: hasher,
			Faults: transport.NewFaults().Add(transport.Rule{Delay: benchRTT}),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

func BenchmarkConnConcurrent8020(b *testing.B) {
	peers := startBenchSystem(b, 4, allPIDs(16), hashring.Default)
	entry := peers[0]
	cl := NewClient(entry.Addr())

	// 50 files hashed across the identifier space: most gets leave the
	// entry peer and walk the lookup tree at benchRTT per hop, the rest
	// resolve on the entry peer itself.
	const files = 50
	hot := files / 5
	name := func(i int) string { return fmt.Sprintf("bench/%04d", i) }
	for i := 0; i < files; i++ {
		if err := cl.Insert(name(i), []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			b.Fatal(err)
		}
	}
	conn, err := DialConn(entry.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	var seq atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			n := hot + int(i)%(files-hot)
			if i%5 != 0 { // 80%: hot set
				n = int(i) % hot
			}
			if _, err := conn.Get(name(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	recordPipelineBench(b, "conn-concurrent-8020")
}

// replicateEverywhere places a copy of name on every peer so an update or
// delete broadcast has to touch every slot of the children lists. The
// direct stores bypass the fabric, so setup pays no injected RTT.
func replicateEverywhere(b *testing.B, peers map[bitops.PID]*Peer, name string) {
	b.Helper()
	for _, p := range peers {
		if err := NewClient(p.Addr()).Store(name, []byte("v0"), 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBroadcastUpdate(b *testing.B, m, copies int) {
	peers := startBenchSystem(b, m, allPIDs(copies), hashring.Fixed(4))
	replicateEverywhere(b, peers, "wide")
	cl := NewClient(peers[9].Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := cl.Update("wide", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		if n != copies {
			b.Fatalf("updated %d copies, want %d", n, copies)
		}
	}
	b.StopTimer()
	recordPipelineBench(b, fmt.Sprintf("broadcast-update/%d", copies))
}

// The 16- vs 32-copy pair shows what the update wall time scales with:
// sequential deliver doubles with the copy count, parallel fan-out grows
// only by the extra tree level.
func BenchmarkBroadcastUpdate(b *testing.B)   { benchBroadcastUpdate(b, 5, 32) }
func BenchmarkBroadcastUpdate16(b *testing.B) { benchBroadcastUpdate(b, 4, 16) }

func BenchmarkBroadcastDelete(b *testing.B) {
	peers := startBenchSystem(b, 5, allPIDs(32), hashring.Fixed(4))
	cl := NewClient(peers[9].Addr())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		replicateEverywhere(b, peers, "wide")
		b.StartTimer()
		n, err := cl.Delete("wide")
		if err != nil {
			b.Fatal(err)
		}
		if n != 32 {
			b.Fatalf("deleted %d copies, want 32", n)
		}
	}
	b.StopTimer()
	recordPipelineBench(b, "broadcast-delete/32")
}
