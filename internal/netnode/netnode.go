// Package netnode deploys a LessLog node over TCP using only the standard
// library — the paper's §8 future work ("implement LessLog in a
// large-scaled P2P system") at demonstration scale. Each Peer owns a local
// store and a status word and forwards requests along the lookup trees
// exactly as internal/core does in process, but across real sockets with
// the internal/msg wire protocol.
//
// Deployment model: peers are configured with the identifier width, the
// fault-tolerance bits and a PID→address table (the networked counterpart
// of the §5.1 status word; both are updated together by SetAddrs). File
// operations may be sent to any peer; gets hop peer-to-peer with the §3
// fallback and §4 subtree-migration state carried in the request frame.
// Update propagation fans out synchronously down the children lists, so a
// completed update response implies every reachable replica was rewritten.
package netnode

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/repair"
	"lesslog/internal/store"
	"lesslog/internal/stream"
	"lesslog/internal/tracering"
	"lesslog/internal/transport"
	"lesslog/internal/wal"
	"lesslog/internal/xrand"
)

// Config parameterizes one peer.
type Config struct {
	PID    bitops.PID
	M      int
	B      int
	Hasher hashring.Hasher // nil selects hashring.Default
	Addr   string          // listen address; "" means 127.0.0.1:0
	// DataDir, when set, makes the peer durable: every store mutation is
	// appended to a segmented write-ahead log in this directory
	// (internal/wal, docs/STORAGE.md), the store is rebuilt from it by
	// crash-recovery replay at startup, and Close flushes and fsyncs the
	// open segment. Empty keeps the peer memory-only.
	DataDir string
	// SegmentSize rotates the log's active segment at this many bytes;
	// <= 0 selects wal.DefaultSegmentSize. Ignored without DataDir.
	SegmentSize int64
	// Fsync is the log's durability policy (wal.FsyncAlways /
	// FsyncInterval / FsyncNever); the zero value is FsyncInterval.
	Fsync wal.Policy
	// FsyncEvery is the FsyncInterval flush period; <= 0 selects
	// wal.DefaultFsyncEvery.
	FsyncEvery time.Duration
	// Transport carries the RPC robustness knobs (deadlines, retries,
	// pooling, failure threshold); zero fields take transport defaults.
	Transport transport.Config
	// Faults, when set, injects deterministic faults into every outbound
	// RPC of this peer — the test hook for crashes, slowness, partitions.
	Faults *transport.Faults
	// Logger receives the peer's structured events (liveness flips,
	// membership changes, replica placements). Nil discards them, keeping
	// tests and embedded uses quiet; lesslogd passes a leveled handler.
	Logger *slog.Logger
	// PipelineWorkers caps concurrently handled pipelined requests per
	// accepted connection; <= 0 selects transport.DefaultPipelineWorkers.
	PipelineWorkers int
	// ServeDelay injects a fixed service time before handling each
	// request this peer serves; zero serves at full speed. Benches pair
	// it with PipelineWorkers=1 to model a holder of bounded capacity
	// (see transport.ServeLoopOptions.ServeDelay).
	ServeDelay time.Duration
	// FanoutWorkers caps concurrent RPC legs per update/delete broadcast
	// (each leg's subtree recursion runs on the remote peers, so the
	// effective parallelism cascades); <= 0 selects DefaultFanoutWorkers.
	FanoutWorkers int
	// DisableLocate makes the peer behave like a pre-locate build: KindLocate
	// is answered with the unknown-kind error and FlagLocalOnly is ignored
	// (legacy peers never rejected unknown flag bits, so a local-only get
	// forwards as an ordinary relay get). The version gate for rolling
	// upgrades, and the legacy end of the interop tests; see docs/ROUTING.md.
	DisableLocate bool
	// NotifyThreshold switches update broadcasts at or above this payload
	// size to pull-based propagation: the tree carries a payload-free
	// KindNotify and each holder pulls the body off the origin (or an
	// already-converged sibling), so tree bytes stay O(copies) instead of
	// O(copies × size). 0 selects DefaultNotifyThreshold; negative keeps
	// every update whole-frame on the tree (payloads over one frame still
	// propagate by notify — nothing else can carry them).
	NotifyThreshold int
	// TraceSampleEvery head-samples 1 in N entry requests (and repair
	// rounds) into the trace ring; 0 selects tracering.DefaultSampleEvery,
	// 1 traces everything, negative disables the trace plane entirely.
	TraceSampleEvery int
	// TraceSlow is the tail-retention threshold: entry requests at least
	// this slow (and all errored ones) are kept even when the head sampler
	// passed them by. 0 selects tracering.DefaultSlow.
	TraceSlow time.Duration
	// TraceRingSize bounds the in-memory trace ring; 0 selects
	// tracering.DefaultRingSize.
	TraceRingSize int
}

// DefaultFanoutWorkers bounds concurrent broadcast legs per propagation
// when Config.FanoutWorkers is unset; each broadcast's semaphore is sized
// min(FanoutWorkers, legs).
const DefaultFanoutWorkers = 8

// DefaultNotifyThreshold is the payload size at which update broadcasts
// switch to pull-based propagation when Config.NotifyThreshold is unset:
// 256 KiB keeps small updates on the one-RPC-per-leg fast path while
// moving bulk bytes off the tree well before they dominate fan-out cost.
const DefaultNotifyThreshold = 256 << 10

// Stats counts a peer's traffic with atomic counters.
type Stats struct {
	Requests  atomic.Uint64
	Forwards  atomic.Uint64
	Served    atomic.Uint64
	Faults    atomic.Uint64
	Stored    atomic.Uint64
	Updated   atomic.Uint64
	Broadcast atomic.Uint64
	// PeersDown / PeersUp count failure-detector liveness flips: a peer
	// declared dead after consecutive RPC failures, and one restored by a
	// later successful exchange or re-registration.
	PeersDown atomic.Uint64
	PeersUp   atomic.Uint64
	// ProtoErrors counts decode and write failures on served connections —
	// the drops that used to be silent.
	ProtoErrors atomic.Uint64
	// Locate-then-fetch data plane (docs/ROUTING.md). Located counts
	// KindLocate requests this peer answered as the holder; DirectServed /
	// DirectMisses count FlagLocalOnly gets served from the local store or
	// refused (a miss is a stale route hint, deliberately never forwarded).
	Located      atomic.Uint64
	DirectServed atomic.Uint64
	DirectMisses atomic.Uint64
	// Chunked data plane (docs/ROUTING.md). ChunksServed counts ranged
	// KindFetch chunks served from the local store, ChunkBytes their
	// payload bytes; ChunkRefusals counts version-pinned fetches refused
	// because the held copy moved on (the splice guard doing its job);
	// LocateSets counts replica-set locates answered as the holder.
	ChunksServed  atomic.Uint64
	ChunkBytes    atomic.Uint64
	ChunkRefusals atomic.Uint64
	LocateSets    atomic.Uint64
	// RelayedBytes counts file-payload bytes this peer relayed back through
	// a forwarded get — the wire cost the locate path exists to remove. A
	// multi-hop relay get of size S adds S at every intermediate peer; a
	// locate-then-fetch get adds zero.
	RelayedBytes atomic.Uint64
	// Chunked write plane (docs/ROUTING.md "write plane"). WriteChunks
	// counts staged KindPut chunks accepted, WriteBytes their payload
	// bytes; StagedAborts counts staging sessions discarded without a
	// commit (explicit abort, TTL expiry, or a failed commit check — every
	// path where staged bytes die unseen); NotifyPulls counts bodies this
	// peer pulled in response to a propagation notify; NotifyFallbacks
	// counts notify legs downgraded to a whole-frame update for a child
	// that predates the notify plane.
	WriteChunks     atomic.Uint64
	WriteBytes      atomic.Uint64
	StagedAborts    atomic.Uint64
	NotifyPulls     atomic.Uint64
	NotifyFallbacks atomic.Uint64
	// WritesAtHolder / WritesRemote split update and delete initiations by
	// whether the initiating peer already held a copy — the hint-guided
	// write entry's success measure: an initiation at a holder probes the
	// current version for free instead of paying a lookup walk.
	WritesAtHolder atomic.Uint64
	WritesRemote   atomic.Uint64
	// FanoutBytes counts request-payload bytes this peer pushed onto
	// broadcast-tree legs (update/delete/notify propagations). Whole-frame
	// propagation grows this O(copies × size); notify propagation keeps it
	// O(copies) — the write bench's bytes-on-tree measure.
	FanoutBytes atomic.Uint64
	// PipelineDepth gauges pipelined requests currently being handled
	// across this peer's served connections; FanoutActive gauges broadcast
	// RPC legs currently in flight. Both are instantaneous, not monotonic.
	PipelineDepth atomic.Int64
	FanoutActive  atomic.Int64
	// Anti-entropy repair loop (docs/REPAIR.md). RepairProbes counts
	// per-name liveness probes issued; Repaired counts copies this peer
	// pushed back onto a holder that had lost (or staled) them;
	// RepairPulled counts copies pulled in through a digest delta;
	// RepairErased counts local copies erased because a probe found the
	// name tombstoned (deleted) at a required holder; RepairSkipped
	// counts work deferred by the bandwidth budget or a legacy partner
	// (unknown-kind digest answer, version-less has answer). DigestBytes
	// counts digest frame bytes in both directions; RepairDeficit gauges
	// the byte shortfall at the budget's most recent denial (0 when
	// repair is keeping up).
	RepairProbes  atomic.Uint64
	Repaired      atomic.Uint64
	RepairPulled  atomic.Uint64
	RepairErased  atomic.Uint64
	RepairSkipped atomic.Uint64
	DigestBytes   atomic.Uint64
	RepairDeficit atomic.Int64
}

// routing is the peer's registration state — the PID→address table and
// the §5.1 status word — published as one immutable snapshot: readers
// (view, nextHop, IsLive, call) load it with a single atomic load and
// zero locks; mutators clone-and-swap under regMu.
type routing struct {
	addrs map[bitops.PID]string
	live  *liveness.Set
}

// Peer is one networked LessLog node.
type Peer struct {
	cfg    Config
	hasher hashring.Hasher
	ln     net.Listener
	tr     *transport.Transport
	det    *transport.Detector

	routing atomic.Pointer[routing]
	regMu   sync.Mutex // serializes routing clone-and-swap mutations

	// propMu serializes Leave's copy handoff (writer) against in-flight
	// update/delete propagations (readers): a leave that runs mid-fan-out
	// could hand a copy to its new primary and then have the still-running
	// broadcast rewrite the local copy it just gave away, losing the
	// update on the handed-off replica. Handlers take the read side once
	// at entry (propagation recursion stays on the same goroutine and
	// never re-locks); Leave holds the write side across handoff and the
	// dead registration.
	propMu sync.RWMutex

	store *store.Sharded
	eng   *wal.Engine   // nil without Config.DataDir
	clock atomic.Uint64 // Lamport clock; merged with CAS-max, ticked with Add

	pipelineWorkers int
	fanoutWorkers   int

	mu     sync.Mutex // lifecycle: closed flag, open conns, maintenance rng
	closed bool
	conns  map[net.Conn]struct{}
	rng    *xrand.Rand
	quit   chan struct{}

	wg    sync.WaitGroup
	stats Stats
	obs   peerObs
	log   *slog.Logger

	// Trace plane (docs/OBSERVABILITY.md): head sampler, bounded trace
	// ring, and the trace-ID sequence. ring == nil means tracing is off
	// (Config.TraceSampleEvery < 0); every trace-plane entry point checks
	// it once and degrades to the untraced fast path.
	sampler  *tracering.Sampler
	ring     *tracering.Ring
	traceSeq atomic.Uint64

	// ttfr tracks time-to-full-replication across repair rounds.
	ttfr repair.TTFR

	// Write plane (docs/ROUTING.md "write plane"): staged chunked uploads,
	// the commit outbox propagation pulls are served from, and the puller
	// that fetches notify bodies off converged siblings.
	uploads uploadTable
	outbox  outbox
	puller  *stream.Fetcher
}

// rt loads the current routing snapshot; never nil after Listen.
func (p *Peer) rt() *routing { return p.routing.Load() }

// mutateRouting applies f to a private clone of the routing state and
// publishes the result. In-flight readers keep the snapshot they loaded.
func (p *Peer) mutateRouting(f func(addrs map[bitops.PID]string, live *liveness.Set)) {
	p.regMu.Lock()
	defer p.regMu.Unlock()
	cur := p.routing.Load()
	addrs := make(map[bitops.PID]string, len(cur.addrs)+1)
	for pid, a := range cur.addrs {
		addrs[pid] = a
	}
	live := cur.live.Clone()
	f(addrs, live)
	p.routing.Store(&routing{addrs: addrs, live: live})
}

// mergeClock advances the Lamport clock to at least v (CAS-max).
func (p *Peer) mergeClock(v uint64) {
	for {
		cur := p.clock.Load()
		if v <= cur || p.clock.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Listen binds the peer's socket and starts serving connections. Call
// SetAddrs with the full peer table (including this peer) before issuing
// file operations.
func Listen(cfg Config) (*Peer, error) {
	bitops.CheckSplit(cfg.M, cfg.B)
	h := cfg.Hasher
	if h == nil {
		h = hashring.Default
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	st := store.NewSharded(0)
	var eng *wal.Engine
	if cfg.DataDir != "" {
		// Recovery replay rebuilds a plain Store from the log, then the
		// engine attaches as the sharded store's persister — strictly in
		// that order, so replayed state is not re-appended to the log.
		var restored *store.Store
		var err error
		eng, restored, err = wal.Open(wal.Options{
			Dir:         cfg.DataDir,
			SegmentSize: cfg.SegmentSize,
			Fsync:       cfg.Fsync,
			FsyncEvery:  cfg.FsyncEvery,
			TombstoneGC: repair.DefaultTombstoneTTL,
			Logger:      logger.With("pid", uint32(cfg.PID)),
		})
		if err != nil {
			return nil, fmt.Errorf("netnode: restore %s: %w", cfg.DataDir, err)
		}
		st = store.ShardedFrom(restored, 0)
		st.SetPersister(eng)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, err
	}
	p := &Peer{
		cfg:    cfg,
		hasher: h,
		ln:     ln,
		store:  st,
		eng:    eng,
		conns:  map[net.Conn]struct{}{},
		quit:   make(chan struct{}),
	}
	p.routing.Store(&routing{addrs: map[bitops.PID]string{}, live: liveness.New(cfg.M)})
	p.pipelineWorkers = cfg.PipelineWorkers
	if p.pipelineWorkers <= 0 {
		p.pipelineWorkers = transport.DefaultPipelineWorkers
	}
	p.fanoutWorkers = cfg.FanoutWorkers
	if p.fanoutWorkers <= 0 {
		p.fanoutWorkers = DefaultFanoutWorkers
	}
	if cfg.TraceSampleEvery >= 0 {
		slow := cfg.TraceSlow
		if slow <= 0 {
			slow = tracering.DefaultSlow
		}
		p.sampler = tracering.NewSampler(cfg.TraceSampleEvery)
		p.ring = tracering.NewRing(cfg.TraceRingSize, slow)
		p.traceSeq.Store(uint64(time.Now().UnixNano()) ^ uint64(cfg.PID)<<32)
	}
	p.log = logger.With("component", "netnode", "pid", uint32(cfg.PID))
	p.tr = transport.New(cfg.Transport, cfg.Faults)
	// The notify puller fetches propagation bodies as replica transfers:
	// FlagReplica keeps a pull from counting a §6 access at its source.
	p.puller = stream.New(p.tr, stream.Config{Replica: true})
	p.det = transport.NewDetector(p.tr.Config().FailThreshold, p.peerDown, p.peerUp)
	p.wg.Add(1)
	go p.acceptLoop()
	p.log.Debug("listening", "addr", p.Addr(), "m", cfg.M, "b", cfg.B)
	return p, nil
}

// peerDown is the failure-detector callback: consecutive RPC failures to
// pid crossed the threshold, so its liveness bit is cleared — from here on
// every view routes around it through the §5 expanded children lists, the
// same way a register-dead broadcast would. Idle pooled connections to the
// dead peer are dropped with it.
func (p *Peer) peerDown(pid uint32) {
	var addr string
	p.mutateRouting(func(addrs map[bitops.PID]string, live *liveness.Set) {
		addr = addrs[bitops.PID(pid)]
		live.SetDead(bitops.PID(pid))
	})
	if addr != "" {
		p.tr.DropIdle(addr)
	}
	p.stats.PeersDown.Add(1)
	p.log.Warn("peer declared down by failure detector", "peer", pid, "addr", addr)
}

// peerUp restores a detector-dead peer after a successful exchange — the
// transient-failure healing path; a full rejoin heals through the
// register-live broadcast instead.
func (p *Peer) peerUp(pid uint32) {
	p.mutateRouting(func(addrs map[bitops.PID]string, live *liveness.Set) {
		if _, known := addrs[bitops.PID(pid)]; known {
			live.SetLive(bitops.PID(pid))
		}
	})
	p.stats.PeersUp.Add(1)
	p.log.Info("peer restored by successful exchange", "peer", pid)
}

// Addr returns the peer's bound address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// SeedLocal places a copy directly into this peer's store, bypassing the
// wire — whose frames cap payloads at msg.MaxData, below the chunk
// plane's msg.MaxFileSize read ceiling. Tooling/test hook for building
// over-frame replica layouts; production writes go through the insert
// plane and are frame-capped at the edge.
func (p *Peer) SeedLocal(name string, data []byte, version uint64) {
	p.store.Put(store.File{Name: name, Data: data, Version: version}, store.Inserted)
}

// PID returns the peer's identifier.
func (p *Peer) PID() bitops.PID { return p.cfg.PID }

// Stats returns the peer's traffic counters.
func (p *Peer) Stats() *Stats { return &p.stats }

// IsLive reports whether this peer's status word currently marks pid live
// — the §5.1 bit the failure detector and registrations maintain. Safe for
// concurrent use; reads the routing snapshot without locking.
func (p *Peer) IsLive(pid bitops.PID) bool {
	return p.rt().live.IsLive(pid)
}

// HasFile reports whether the peer currently holds a copy of name,
// without counting an access. Safe for concurrent use.
func (p *Peer) HasFile(name string) bool {
	return p.store.Has(name)
}

// SetAddrs installs the PID→address table and marks exactly those PIDs
// live — the networked form of the status word. Failure-detector history
// is discarded: the new table is authoritative.
func (p *Peer) SetAddrs(addrs map[bitops.PID]string) {
	next := &routing{addrs: make(map[bitops.PID]string, len(addrs)), live: liveness.New(p.cfg.M)}
	for pid, a := range addrs {
		next.addrs[pid] = a
		next.live.SetLive(pid)
	}
	p.regMu.Lock()
	p.routing.Store(next)
	p.regMu.Unlock()
	p.det.ResetAll()
}

// Close stops the peer: the listener and every open connection are shut,
// then in-flight handlers are awaited.
func (p *Peer) Close() error {
	p.mu.Lock()
	if !p.closed {
		close(p.quit)
	}
	p.closed = true
	open := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		open = append(open, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range open {
		c.Close()
	}
	p.tr.Close()
	p.wg.Wait()
	if p.eng != nil {
		// All handlers have drained, so no store mutation can race the
		// engine shutdown; Close flushes and fsyncs the open segment and
		// surfaces any write failure the engine went degraded on.
		if cerr := p.eng.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Checkpoint compacts the peer's log down to its live state — one
// segment holding the latest version of every name plus unexpired
// tombstones. Recovery stays fast without it (segments replay at
// startup); this just caps the replay work.
func (p *Peer) Checkpoint() error {
	if p.eng == nil {
		return fmt.Errorf("netnode: peer has no data directory")
	}
	return p.eng.Checkpoint()
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				conn.Close()
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
			}()
			p.serveConn(conn)
		}()
	}
}

// serveConn serves one accepted connection through the pipelined serve
// loop: pipelined requests dispatch to a bounded worker pool and respond
// out of order, so one slow forwarded get no longer stalls the stream;
// legacy un-ID'd frames keep their strict FIFO ordering. Decode and write
// failures — previously silent connection drops — land in ProtoErrors.
func (p *Peer) serveConn(conn net.Conn) {
	transport.ServeLoop(conn, func(req *msg.Request) *msg.Response {
		p.stats.Requests.Add(1)
		return p.handle(req)
	}, transport.ServeLoopOptions{
		Workers:    p.pipelineWorkers,
		ServeDelay: p.cfg.ServeDelay,
		Depth:      &p.stats.PipelineDepth,
		OnProtoError: func(err error) {
			p.stats.ProtoErrors.Add(1)
			p.log.Debug("connection protocol error", "err", err)
		},
	})
}

// view returns the lookup-tree view of target under the current routing
// snapshot. Lock-free: the snapshot's live set is immutable, so the view
// stays consistent for as long as the caller holds it.
func (p *Peer) view(target bitops.PID) ptree.View {
	return ptree.NewView(target, p.rt().live, p.cfg.B)
}

// handle times and dispatches one decoded request; every handler's full
// latency — forwarded and fanned-out work included — lands in the
// per-kind histogram. Requests entering the fabric here are head-sampled
// into the trace plane (promoting them to traced so the downstream route
// cooperates), and finished entry requests land in the trace ring —
// sampled ones always, slow or errored ones regardless.
func (p *Peer) handle(req *msg.Request) *msg.Response {
	return p.handleTimed(req, true)
}

// handleSub is handle for batch sub-requests: same histograms, no entry
// sampling or recording — the batch frame is the entry request; its subs
// inherit whatever trace it carries.
func (p *Peer) handleSub(req *msg.Request) *msg.Response {
	return p.handleTimed(req, false)
}

func (p *Peer) handleTimed(req *msg.Request, entry bool) *msg.Response {
	start := time.Now()
	var sampled, promoted bool
	if entry {
		sampled, promoted = p.maybeSampleEntry(req)
	}
	resp := p.dispatch(req)
	elapsed := time.Since(start)
	p.obs.handleHist(req.Kind).ObserveDuration(elapsed)
	if entry {
		p.recordEntryTrace(req, resp, start, elapsed, sampled)
		if promoted {
			// The client never asked for a trace; the stamped route was for
			// the ring only.
			resp.Path = nil
		}
	}
	return resp
}

func (p *Peer) dispatch(req *msg.Request) *msg.Response {
	switch req.Kind {
	case msg.KindStore:
		return p.handleStore(req)
	case msg.KindGet:
		return p.handleGet(req)
	case msg.KindInsert:
		return p.handleInsert(req)
	case msg.KindUpdate:
		return p.handleUpdate(req)
	case msg.KindStat:
		return p.handleStat(req)
	case msg.KindRegister:
		return p.handleRegister(req)
	case msg.KindTable:
		return p.handleTable()
	case msg.KindHas:
		return p.handleHas(req)
	case msg.KindDelete:
		return p.handleDelete(req)
	case msg.KindBatch:
		return p.handleBatch(req)
	case msg.KindLocate:
		if p.cfg.DisableLocate {
			break // legacy emulation: answer unknown-kind like a pre-locate build
		}
		return p.handleLocate(req)
	case msg.KindDigest:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-repair build answers unknown-kind
		}
		return p.handleDigest(req)
	case msg.KindTraces:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-trace-plane build answers unknown-kind
		}
		return p.handleTraces()
	case msg.KindFetch:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-chunking build answers unknown-kind
		}
		return p.handleFetch(req)
	case msg.KindLocateSet:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-chunking build answers unknown-kind
		}
		return p.handleLocateSet(req)
	case msg.KindPut:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-chunking build answers unknown-kind
		}
		return p.handlePut(req)
	case msg.KindNotify:
		if p.cfg.DisableLocate {
			break // legacy emulation: a pre-chunking build answers unknown-kind
		}
		return p.handleNotify(req)
	}
	return &msg.Response{Err: msg.UnknownKindError(req.Kind)}
}

// handleBatch serves a pipelined frame: every sub-request runs through the
// ordinary handler (so forwarding, fan-out, stats and histograms all apply
// per sub-request) and the sub-responses travel back in one frame. The
// decoder rejects nested batches, so this cannot recurse. A traced batch
// spreads its trace onto every sub-request — each sub walks its own route
// under the shared TraceID — and the outer response concatenates the sub
// routes, so the assembled trace shows every lookup the batch fanned into.
func (p *Peer) handleBatch(req *msg.Request) *msg.Response {
	subs, err := msg.DecodeBatchRequests(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: batch decode: %v", err)}
	}
	traced := req.Flags&msg.FlagTrace != 0
	var col *hopCollector
	if traced {
		col = &hopCollector{}
	}
	resps := make([]*msg.Response, len(subs))
	for i, sub := range subs {
		if traced {
			sub.Flags |= msg.FlagTrace
			sub.TraceID = req.TraceID
			sub.Path = req.Path
		}
		resps[i] = p.handleSub(sub)
		if sp := resps[i].Path; traced && len(sp) > len(req.Path) {
			col.add(sp[len(req.Path):]...)
		}
	}
	data, err := msg.AppendBatchResponses(nil, resps)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: batch encode: %v", err)}
	}
	resp := &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
	if traced {
		resp.Path = append(append([]msg.Hop(nil), req.Path...), col.take()...)
	}
	return resp
}

// ErrTombstoned is the answer to a store of a name this peer has seen
// deleted at a version at least as new as the pushed copy. The response
// carries the tombstone version, so an insert racing a delete can merge
// it into its clock and restamp (handleInsert), while a repair push just
// learns its copy is deleted rather than missing.
const ErrTombstoned = "netnode: name deleted (tombstoned)"

// handleStore applies a direct copy placement through the version- and
// tombstone-gated PutNewer: a probe-then-push repair (or a leave handoff)
// races foreground updates and deletes, so a stale push must neither
// clobber a copy that went newer between the probe and the push, nor
// resurrect a name a delete broadcast erased. The response always carries
// the surviving version; a kept-newer copy still answers OK (the name is
// present at least as new — the push's goal holds), a tombstone refusal
// answers ErrTombstoned.
func (p *Peer) handleStore(req *msg.Request) *msg.Response {
	start := time.Now()
	kind := store.Inserted
	if req.Flags&msg.FlagReplica != 0 {
		kind = store.Replica
	}
	survived, res := p.store.PutNewer(store.File{Name: req.Name, Data: req.Data, Version: req.Version}, kind)
	p.mergeClock(req.Version)
	var resp *msg.Response
	switch res {
	case store.PutTombstoned:
		resp = &msg.Response{ServedBy: uint32(p.cfg.PID), Version: survived, Err: ErrTombstoned}
	case store.PutStale:
		resp = &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: survived}
	default:
		p.stats.Stored.Add(1)
		resp = &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: req.Version}
	}
	if req.Flags&msg.FlagTrace != 0 {
		// A traced placement (insert fan-out, repair push) records where
		// the copy landed, parented on the pushing peer's hop.
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, time.Since(start))
	}
	return resp
}

func (p *Peer) handleInsert(req *msg.Request) *msg.Response {
	start := time.Now()
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	version := p.clock.Add(1)
	stored := 0
	// A traced insert spreads its trace onto every placement leg: the
	// fan-out root here, one HopServe per holder that took the copy.
	col := newHopCollector(req)
	var rootPath []msg.Hop
	if col != nil {
		rootPath = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, 0)
	}
	// A tombstone refusal means the name was deleted at a version this
	// peer's clock has never seen (the deleting peer may never have talked
	// to us). Merge the tombstone version and restamp strictly above it,
	// then re-place everywhere, so the re-insert supersedes the delete at
	// every holder instead of landing below it at some and being erased by
	// anti-entropy later. Bounded retries cover a concurrent delete
	// landing an even newer tombstone mid-insert.
	for attempt := 0; attempt < 3; attempt++ {
		stored = 0
		var tombV uint64
		for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
			h, ok := v.PrimaryHolder(sid)
			if !ok {
				continue
			}
			sreq := &msg.Request{
				Kind: msg.KindStore, Origin: req.Origin,
				Version: version, Name: req.Name, Data: req.Data,
			}
			if col != nil {
				sreq.Flags |= msg.FlagTrace
				sreq.TraceID = req.TraceID
				sreq.Path = rootPath
			}
			var resp *msg.Response
			if h == p.cfg.PID {
				resp = p.handleStore(sreq)
			} else {
				var err error
				if resp, err = p.call(h, sreq); err != nil {
					continue
				}
			}
			switch {
			case resp.OK:
				stored++
			case resp.Err == ErrTombstoned && resp.Version > tombV:
				tombV = resp.Version
			}
			if len(resp.Path) > len(rootPath) {
				col.add(resp.Path[len(rootPath):]...)
			}
		}
		if tombV < version {
			break
		}
		p.mergeClock(tombV)
		version = p.clock.Add(1)
	}
	if stored == 0 {
		p.stats.Faults.Add(1)
		resp := &msg.Response{Err: "netnode: no live holder for insert"}
		if col != nil {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	resp := &msg.Response{OK: true, ServedBy: uint32(target), Version: version}
	if col != nil {
		root := appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, time.Since(start))
		resp.Path = append(root, col.take()...)
	}
	return resp
}

// ErrNotHolder is the answer to a local-only get at a peer that does not
// hold the file — the direct-fetch path's "your route hint is stale"
// signal. Clients match it to purge the hint and fall back to a locate.
const ErrNotHolder = msg.NotHolderError

// ErrOverFrame is the answer to a whole-frame get of a body larger than
// one wire frame (msg.MaxData): framing it would fail response encoding
// and tear down the pipelined connection under every other request in
// flight on it. Chunk-capable readers never see this — they fetch ranged
// — so it reaches only plain/relay gets and the repair pull, which
// retries through the chunk plane.
const ErrOverFrame = "netnode: body exceeds one frame; fetch it through the chunked plane"

func (p *Peer) handleGet(req *msg.Request) *msg.Response {
	start := time.Now()
	f, ok := p.store.Get(req.Name)
	if ok && len(f.Data) > msg.MaxData {
		resp := &msg.Response{Hops: req.Hops, Version: f.Version, Err: ErrOverFrame}
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	if ok {
		p.stats.Served.Add(1)
		if req.Flags&msg.FlagLocalOnly != 0 && !p.cfg.DisableLocate {
			p.stats.DirectServed.Add(1)
		}
		resp := &msg.Response{
			OK: true, ServedBy: uint32(p.cfg.PID), Hops: req.Hops,
			Version: f.Version, Data: f.Data,
		}
		elapsed := time.Since(start)
		p.obs.serve.ObserveDuration(elapsed)
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, elapsed)
		}
		return resp
	}
	if req.Flags&msg.FlagLocalOnly != 0 && !p.cfg.DisableLocate {
		// Direct fetch against a route hint: the holder either has the
		// file or the hint is stale. Forwarding here would silently turn
		// a one-hop data-plane fetch back into a payload relay, so refuse
		// and let the caller re-locate. (A DisableLocate peer ignores the
		// flag, exactly as a pre-locate build would, and relays.)
		p.stats.DirectMisses.Add(1)
		resp := &msg.Response{Hops: req.Hops, Err: ErrNotHolder}
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	defer func() { p.obs.forward.ObserveDuration(time.Since(start)) }()
	return p.forwardLookup(req, start)
}

// handleLocate resolves a name to its serving holder without moving the
// payload — the control-plane half of the locate-then-fetch data plane
// (docs/ROUTING.md). It walks the same lookup tree as a relay get — same
// live-ancestor hops, same §3 FINDLIVENODE fallback, same §4 subtree
// migration, same trace frames — but the holder answers with its identity
// (PID, listen address, copy version) instead of the file bytes, so no
// intermediate peer ever relays payload. Peek, not Get: a locate must not
// count a store access, or locate-then-fetch would double-count a file's
// popularity relative to one relay get.
func (p *Peer) handleLocate(req *msg.Request) *msg.Response {
	start := time.Now()
	if f, ok := p.store.Peek(req.Name); ok {
		p.stats.Located.Add(1)
		resp := &msg.Response{
			OK: true, ServedBy: uint32(p.cfg.PID), Hops: req.Hops,
			Version: f.Version, Data: []byte(p.Addr()),
		}
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopLocate, time.Since(start))
		}
		return resp
	}
	return p.forwardLookup(req, start)
}

// forwardLookup relays an unserved lookup along the lookup tree — shared
// by relay gets and locates, which walk identical hops and differ only in
// what the holder answers (payload vs location). A failed forward is not
// final: the failure feeds the detector, and once the dead hop's liveness
// bit flips, recomputing the next hop routes around it (§3/§5 over the
// wire) — so a lookup survives a silently crashed peer within a bounded
// number of RPC deadlines. The attempt budget guarantees at least one
// recomputation after the detector threshold is crossed.
func (p *Peer) forwardLookup(req *msg.Request, start time.Time) *msg.Response {
	attempts := p.tr.Config().FailThreshold + 1
	var lastErr error
	var lastHop bitops.PID
	for attempt := 0; attempt < attempts; attempt++ {
		next, flags, subtree, ok := p.nextHop(req)
		if !ok {
			return p.faultResponse(req, start, "netnode: file not found (fault)")
		}
		fwd := *req
		fwd.Hops++
		fwd.Flags = flags
		fwd.Subtree = subtree
		if req.Flags&msg.FlagTrace != 0 {
			// nextHop clears routing flags on a subtree migration; the
			// trace bit must survive every transition.
			fwd.Flags |= msg.FlagTrace
			fwd.Path = appendHop(req.Path, uint32(p.cfg.PID),
				hopAction(req, flags, subtree), time.Since(start))
		}
		p.stats.Forwards.Add(1)
		resp, err := p.call(next, &fwd)
		if err == nil {
			if resp.OK && req.Kind == msg.KindGet {
				p.stats.RelayedBytes.Add(uint64(len(resp.Data)))
			}
			return resp
		}
		lastErr, lastHop = err, next
	}
	return p.faultResponse(req, start,
		fmt.Sprintf("netnode: forward to P(%d) failed: %v", lastHop, lastErr))
}

// faultResponse finalizes a lookup this peer can neither serve nor
// forward. A traced fault carries the path accumulated so far, closed with
// a terminal fault hop — the partial route is exactly what an operator
// needs to see where routing died, and exactly what an OK response would
// have carried.
func (p *Peer) faultResponse(req *msg.Request, start time.Time, errStr string) *msg.Response {
	p.stats.Faults.Add(1)
	resp := &msg.Response{Hops: req.Hops, Err: errStr}
	if req.Flags&msg.FlagTrace != 0 {
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
	}
	return resp
}

// hopAction classifies the forward a traced get is about to take by how
// nextHop changed the request state: a new subtree is the §4 migration, a
// freshly-set fallback flag is the §3 FINDLIVENODE step, anything else is
// the ordinary live-ancestor walk.
func hopAction(req *msg.Request, flags uint8, subtree uint32) msg.HopAction {
	switch {
	case subtree != req.Subtree:
		return msg.HopMigrate
	case flags&msg.FlagFallback != 0 && req.Flags&msg.FlagFallback == 0:
		return msg.HopFallback
	}
	return msg.HopForward
}

// nextHop computes where an unserved get goes: the first live ancestor
// (§2.2/§3), then the FINDLIVENODE primary (§3 step two), then the next
// subtree (§4 migration), carrying the state in the request flags.
func (p *Peer) nextHop(req *msg.Request) (next bitops.PID, flags uint8, subtree uint32, ok bool) {
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	self := p.cfg.PID
	if req.Flags&msg.FlagFallback == 0 {
		if anc, live := v.AliveAncestor(self); live {
			return anc, req.Flags, req.Subtree, true
		}
		if prim, live := v.PrimaryHolder(v.SubtreeID(self)); live && prim != self {
			return prim, req.Flags | msg.FlagFallback, req.Subtree, true
		}
	}
	// Own subtree exhausted: migrate (§4).
	nTrees := uint32(bitops.SubtreeCount(p.cfg.B))
	if req.Subtree+1 >= nTrees {
		return 0, 0, 0, false
	}
	sid := (v.SubtreeID(self) + 1) & bitops.VID(nTrees-1)
	entry := v.PID(bitops.ComposeVID(v.SubtreeVID(self), sid, p.cfg.B))
	if !p.rt().live.IsLive(entry) {
		if anc, live := v.AliveAncestor(entry); live {
			entry = anc
		} else if prim, live := v.PrimaryHolder(sid); live {
			return prim, msg.FlagFallback, req.Subtree + 1, true
		} else {
			return 0, 0, 0, false
		}
	}
	return entry, 0, req.Subtree + 1, true
}

func (p *Peer) handleUpdate(req *msg.Request) *msg.Response {
	start := time.Now()
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	if req.Flags&msg.FlagPropagate != 0 {
		// Propagation delivery: apply if holding, then fan out. A traced
		// delivery answers with only its branch's new hops — the initiator
		// (or upstream parent) splices them into the assembled tree.
		col := newHopCollector(req)
		n := p.propagateUpdate(v, req, nil, col)
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID),
			Hops: uint32(n), Path: col.take()}
	}
	// Initiation: learn the file's current version through a lookup (the
	// initiating peer may never have seen the file), then stamp a
	// strictly newer one, Lamport-style, and start the top-down broadcast
	// at each subtree's root position (or its expanded children when
	// dead). A traced initiation roots the fan-out tree here: the HopFanout
	// record travels in prop.Path so every delivery parents correctly, and
	// the response carries the whole assembled tree. A holder initiating
	// its own broadcast reads the current version for free; the at-holder /
	// remote split is what the hint-guided write entry optimizes.
	if p.store.Has(req.Name) {
		p.stats.WritesAtHolder.Add(1)
	} else {
		p.stats.WritesRemote.Add(1)
	}
	if p.notifyEligible(len(req.Data)) {
		return p.initNotifyUpdate(req, v, start, target)
	}
	if version, ok := p.probeVersion(req.Name); ok {
		p.mergeClock(version)
	}
	version := p.clock.Add(1)
	prop := *req
	prop.Flags |= msg.FlagPropagate
	prop.Version = version
	col := newHopCollector(req)
	if col != nil {
		prop.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, 0)
	}
	updated := p.broadcast(v, &prop, nil, col)
	if updated == 0 {
		p.stats.Faults.Add(1)
		resp := &msg.Response{Err: "netnode: update found no copy"}
		if col != nil {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	p.stats.Updated.Add(1)
	resp := &msg.Response{OK: true, ServedBy: uint32(target), Hops: uint32(updated), Version: version}
	if col != nil {
		root := appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, time.Since(start))
		resp.Path = append(root, col.take()...)
	}
	return resp
}

// probeVersion learns name's current version for the Lamport stamp on an
// update. The locate path resolves it without relaying the payload back
// through every hop; when any hop is a pre-locate build (unknown-kind
// answer) — or this peer emulates one — it falls back to a full relay get.
func (p *Peer) probeVersion(name string) (uint64, bool) {
	if !p.cfg.DisableLocate {
		resp := p.handleLocate(&msg.Request{Kind: msg.KindLocate, Name: name})
		if resp.OK {
			return resp.Version, true
		}
		if !msg.IsUnknownKind(resp.Err) {
			return 0, false
		}
	}
	resp := p.handleGet(&msg.Request{Kind: msg.KindGet, Name: name})
	return resp.Version, resp.OK
}

// fanoutSem builds the bounded semaphore one broadcast's RPC legs share:
// min(FanoutWorkers, legs) slots. Slots are held only for the duration of
// a single RPC, never across a subtree recursion, so nested deliveries
// cannot deadlock on their ancestors' slots.
func (p *Peer) fanoutSem(legs int) chan struct{} {
	n := p.fanoutWorkers
	if legs < n {
		n = legs
	}
	if n < 1 {
		n = 1
	}
	return make(chan struct{}, n)
}

// broadcast starts the top-down children-list broadcast of a propagation
// request (update, delete, or notify) at each subtree's root position —
// or at the root's expanded children when it is dead — and returns copies
// touched. The per-subtree legs run concurrently through a bounded
// semaphore, and each remote delivery recurses in parallel on its own
// peer, so broadcast latency tracks the tree depth instead of the copy
// count. Update and delete share this path exactly, so neither can loop
// by delivering to itself over the wire where the other would not. fb is
// the optional whole-frame fallback leg for children that predate the
// notify plane (nil for whole-frame propagations, or when the payload is
// over one frame and no fallback exists).
func (p *Peer) broadcast(v ptree.View, prop *msg.Request, fb *msg.Request, col *hopCollector) int {
	// One immutable liveness snapshot covers every subtree-root check.
	live := p.rt().live
	var starts []bitops.PID
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
		rootPos := v.SubtreeRoot(sid)
		if live.IsLive(rootPos) {
			starts = append(starts, rootPos)
		} else {
			starts = append(starts, v.ExpandedChildrenList(rootPos)...)
		}
	}
	p.obs.fanout.Observe(uint64(len(starts)))
	return p.deliverAll(v, starts, prop, fb, p.fanoutSem(len(starts)), col)
}

// deliverAll delivers a propagation message to every target concurrently
// and returns the exact sum of copies touched. A single target is
// delivered inline — no goroutine for the common narrow case.
func (p *Peer) deliverAll(v ptree.View, targets []bitops.PID, prop *msg.Request, fb *msg.Request, sem chan struct{}, col *hopCollector) int {
	switch len(targets) {
	case 0:
		return 0
	case 1:
		return p.deliver(v, targets[0], prop, fb, sem, col)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t bitops.PID) {
			defer wg.Done()
			total.Add(int64(p.deliver(v, t, prop, fb, sem, col)))
		}(t)
	}
	wg.Wait()
	return int(total.Load())
}

// deliver sends a propagation message to pid (handling it locally when pid
// is this peer) and returns how many copies it touched downstream. The
// semaphore slot is held only around the RPC itself. When the RPC fails
// outright — the peer crashed without a register-dead — the broadcast
// would silently lose pid's whole branch, so it degrades by routing
// through pid's expanded children list (§3) instead; the failed call has
// already fed the detector, so the liveness bit catches up. A child that
// answers a notify leg with unknown-kind predates the notify plane; when
// fb carries the whole-frame form of the same propagation, the leg
// retries with it, so a mixed-version fabric converges on the broadcast
// instead of waiting for repair.
func (p *Peer) deliver(v ptree.View, pid bitops.PID, prop *msg.Request, fb *msg.Request, sem chan struct{}, col *hopCollector) int {
	if pid == p.cfg.PID {
		return p.propagateLocal(v, prop, sem, col)
	}
	p.stats.Broadcast.Add(1)
	p.stats.FanoutBytes.Add(uint64(len(prop.Data)))
	sem <- struct{}{}
	p.stats.FanoutActive.Add(1)
	resp, err := p.callTimeout(pid, prop, notifyDeadline(prop))
	p.stats.FanoutActive.Add(-1)
	<-sem
	if err == nil && !resp.OK && fb != nil && msg.IsUnknownKind(resp.Err) {
		p.stats.NotifyFallbacks.Add(1)
		p.stats.FanoutBytes.Add(uint64(len(fb.Data)))
		sem <- struct{}{}
		p.stats.FanoutActive.Add(1)
		resp, err = p.call(pid, fb)
		p.stats.FanoutActive.Add(-1)
		<-sem
	}
	if err == nil {
		if !resp.OK {
			return 0
		}
		// A traced delivery answers with its branch's new hops only;
		// splice them into this fan-out's assembly.
		col.add(resp.Path...)
		return int(resp.Hops)
	}
	kids := make([]bitops.PID, 0, 4)
	for _, c := range v.ExpandedChildrenList(pid) {
		if c != pid {
			kids = append(kids, c)
		}
	}
	return p.deliverAll(v, kids, prop, fb, sem, col)
}

// propagateLocal applies a propagation message at this peer.
func (p *Peer) propagateLocal(v ptree.View, prop *msg.Request, sem chan struct{}, col *hopCollector) int {
	switch prop.Kind {
	case msg.KindDelete:
		return p.propagateDelete(v, prop, sem, col)
	case msg.KindNotify:
		nr, err := msg.DecodeNotifyReq(prop.Data)
		if err != nil {
			return 0
		}
		return p.propagateNotify(v, prop, nr, sem, col)
	}
	return p.propagateUpdate(v, prop, sem, col)
}

// propagateUpdate applies a propagation message locally: a holder rewrites
// its copy and re-broadcasts to its expanded children list in parallel; a
// non-holder discards. Returns copies updated in this subtree branch. A
// nil sem sizes a fresh semaphore to this delivery's legs — the remote-
// delivery entry point, where this peer is the recursion's root. A traced
// holder contributes one HopDeliver record (parented on the upstream
// peer's hop, the tail of req.Path) and forwards with its own hop
// appended, so the collected records assemble into the fan-out tree.
func (p *Peer) propagateUpdate(v ptree.View, req *msg.Request, sem chan struct{}, col *hopCollector) int {
	// The local apply serializes against Leave (propMu): without it, a
	// leave racing this broadcast can snapshot the copy just before the
	// rewrite lands and hand the stale version to its successor — and the
	// fan-out below then finds the successor already holding a copy whose
	// version masks the loss. Held only around local store mutations,
	// never across an RPC, so a pending Leave cannot deadlock in-flight
	// deliveries. Leave's write side runs either wholly before (the
	// successor has no copy yet; our fan-out leg below installs the
	// update there) or wholly after (the handed-off copy carries it).
	start := time.Now()
	p.propMu.RLock()
	if !p.store.Has(req.Name) {
		p.propMu.RUnlock()
		return 0
	}
	applied := p.store.Update(req.Name, req.Data, req.Version)
	p.mergeClock(req.Version)
	p.propMu.RUnlock()
	kids := p.childTargets(v)
	if sem == nil {
		sem = p.fanoutSem(len(kids))
	}
	if col != nil {
		fwd := *req
		fwd.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopDeliver, time.Since(start))
		if len(fwd.Path) > len(req.Path) {
			col.add(fwd.Path[len(fwd.Path)-1])
		}
		req = &fwd
	}
	n := 0
	if applied {
		n = 1
	}
	return n + p.deliverAll(v, kids, req, nil, sem, col)
}

// childTargets is this peer's expanded children list minus itself — the
// downstream legs of a local propagation.
func (p *Peer) childTargets(v ptree.View) []bitops.PID {
	var kids []bitops.PID
	for _, c := range v.ExpandedChildrenList(p.cfg.PID) {
		if c != p.cfg.PID {
			kids = append(kids, c)
		}
	}
	return kids
}

func (p *Peer) handleDelete(req *msg.Request) *msg.Response {
	start := time.Now()
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	if req.Flags&msg.FlagPropagate != 0 {
		col := newHopCollector(req)
		n := p.propagateDelete(v, req, nil, col)
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID),
			Hops: uint32(n), Path: col.take()}
	}
	// Initiation: stamp the deletion strictly above the file's current
	// version, Lamport-style like an update, so every erased copy leaves a
	// tombstone that dominates it — the version anti-entropy compares
	// against before re-propagating a copy a partitioned peer brings back
	// (docs/REPAIR.md). Legacy initiators send Version 0; propagateDelete
	// then tombstones at the erased copy's own version instead.
	if p.store.Has(req.Name) {
		p.stats.WritesAtHolder.Add(1)
	} else {
		p.stats.WritesRemote.Add(1)
	}
	if version, ok := p.probeVersion(req.Name); ok {
		p.mergeClock(version)
	}
	prop := *req
	prop.Flags |= msg.FlagPropagate
	prop.Version = p.clock.Add(1)
	col := newHopCollector(req)
	if col != nil {
		prop.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, 0)
	}
	removed := p.broadcast(v, &prop, nil, col)
	if removed == 0 {
		p.stats.Faults.Add(1)
		resp := &msg.Response{Err: "netnode: delete found no copy"}
		if col != nil {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	resp := &msg.Response{OK: true, ServedBy: uint32(target), Hops: uint32(removed), Version: prop.Version}
	if col != nil {
		root := appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, time.Since(start))
		resp.Path = append(root, col.take()...)
	}
	return resp
}

// propagateDelete erases the local copy first — under propMu's read side
// and before the fan-out, so a racing Leave snapshots either the
// pre-delete copy or the fully post-delete state, never a copy the
// children have already erased (handing that to a successor would
// resurrect the name); non-holders discard without forwarding. The erase
// leaves a versioned tombstone behind, so a stale push cannot re-plant
// the copy and anti-entropy propagates the deletion rather than the
// corpse. Returns copies removed in this branch.
func (p *Peer) propagateDelete(v ptree.View, req *msg.Request, sem chan struct{}, col *hopCollector) int {
	start := time.Now()
	p.propMu.RLock() // serializes against Leave, as in propagateUpdate
	removed := p.store.Tombstone(req.Name, req.Version, time.Now())
	p.propMu.RUnlock()
	if !removed {
		return 0
	}
	p.mergeClock(req.Version)
	kids := p.childTargets(v)
	if sem == nil {
		sem = p.fanoutSem(len(kids))
	}
	if col != nil {
		fwd := *req
		fwd.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopDeliver, time.Since(start))
		if len(fwd.Path) > len(req.Path) {
			col.add(fwd.Path[len(fwd.Path)-1])
		}
		req = &fwd
	}
	return 1 + p.deliverAll(v, kids, req, nil, sem, col)
}

// handleStat serves the status snapshot: the legacy one-line "k=v" text by
// default, or — with FlagJSON — the structured StatSnapshot as JSON.
// FlagInventory additionally includes the full per-name inventory (the
// fleet scraper's replica-count and hot-name substrate), which is too
// large to ship on every stat poll.
func (p *Peer) handleStat(req *msg.Request) *msg.Response {
	if req != nil && req.Flags&msg.FlagJSON != 0 {
		data, err := json.Marshal(p.statSnapshot(req.Flags&msg.FlagInventory != 0))
		if err != nil {
			return &msg.Response{Err: fmt.Sprintf("netnode: stat snapshot: %v", err)}
		}
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
	}
	summary := fmt.Sprintf("pid=%d %s live=%d", p.cfg.PID, p.store, p.rt().live.LiveCount())
	summary += fmt.Sprintf(" detector-down=%d peers-down=%d peers-up=%d %s",
		p.det.DownCount(), p.stats.PeersDown.Load(), p.stats.PeersUp.Load(), p.tr.Counters())
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: []byte(summary)}
}

// call performs one request/response exchange with pid through the peer's
// transport (deadlines, retries, pooling) and feeds the outcome to the
// failure detector: enough consecutive failures clear pid's liveness bit,
// and a later success restores it.
func (p *Peer) call(pid bitops.PID, req *msg.Request) (*msg.Response, error) {
	return p.callTimeout(pid, req, 0)
}

// callTimeout is call with a per-exchange deadline floor (see
// transport.DoTimeout): notify deliveries block on the receiving holder
// pulling the whole body, so their deadline scales with the payload the
// notify describes instead of the flat RPC bound sized for control
// frames. rpcTO 0 keeps the transport's configured deadline.
func (p *Peer) callTimeout(pid bitops.PID, req *msg.Request, rpcTO time.Duration) (*msg.Response, error) {
	addr, ok := p.rt().addrs[pid]
	if !ok {
		return nil, fmt.Errorf("netnode: no address for P(%d)", pid)
	}
	resp, err := p.tr.DoTimeout(addr, req, rpcTO)
	if err != nil {
		p.det.Fail(uint32(pid))
		return nil, err
	}
	p.det.Ok(uint32(pid))
	return resp, nil
}

// Probe sends a lightweight stat exchange to pid, feeding the failure
// detector: a successful probe restores a peer the detector had declared
// dead (e.g. after a transient partition heals, without a full rejoin).
func (p *Peer) Probe(pid bitops.PID) error {
	_, err := p.call(pid, &msg.Request{Kind: msg.KindStat})
	return err
}

// Transport returns the peer's RPC transport, exposing its counters.
func (p *Peer) Transport() *transport.Transport { return p.tr }

// Detector returns the peer's failure detector.
func (p *Peer) Detector() *transport.Detector { return p.det }

// defaultTransport backs the package-level Call and NewClient: deadlines
// and retries but no pooling, so casual callers never hold sockets open.
var defaultTransport = sync.OnceValue(func() *transport.Transport {
	return transport.New(transport.Config{PoolSize: -1}, nil)
})

// Call performs one request/response exchange with the peer at addr under
// the default transport's deadlines.
func Call(addr string, req *msg.Request) (*msg.Response, error) {
	return defaultTransport().Do(addr, req)
}
