// Package netnode deploys a LessLog node over TCP using only the standard
// library — the paper's §8 future work ("implement LessLog in a
// large-scaled P2P system") at demonstration scale. Each Peer owns a local
// store and a status word and forwards requests along the lookup trees
// exactly as internal/core does in process, but across real sockets with
// the internal/msg wire protocol.
//
// Deployment model: peers are configured with the identifier width, the
// fault-tolerance bits and a PID→address table (the networked counterpart
// of the §5.1 status word; both are updated together by SetAddrs). File
// operations may be sent to any peer; gets hop peer-to-peer with the §3
// fallback and §4 subtree-migration state carried in the request frame.
// Update propagation fans out synchronously down the children lists, so a
// completed update response implies every reachable replica was rewritten.
package netnode

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/diskstore"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/store"
	"lesslog/internal/transport"
	"lesslog/internal/xrand"
)

// Config parameterizes one peer.
type Config struct {
	PID    bitops.PID
	M      int
	B      int
	Hasher hashring.Hasher // nil selects hashring.Default
	Addr   string          // listen address; "" means 127.0.0.1:0
	// DataDir, when set, makes the peer durable: the store is restored
	// from this directory at startup and checkpointed there on Close
	// (and whenever Checkpoint is called).
	DataDir string
	// Transport carries the RPC robustness knobs (deadlines, retries,
	// pooling, failure threshold); zero fields take transport defaults.
	Transport transport.Config
	// Faults, when set, injects deterministic faults into every outbound
	// RPC of this peer — the test hook for crashes, slowness, partitions.
	Faults *transport.Faults
	// Logger receives the peer's structured events (liveness flips,
	// membership changes, replica placements). Nil discards them, keeping
	// tests and embedded uses quiet; lesslogd passes a leveled handler.
	Logger *slog.Logger
}

// Stats counts a peer's traffic with atomic counters.
type Stats struct {
	Requests  atomic.Uint64
	Forwards  atomic.Uint64
	Served    atomic.Uint64
	Faults    atomic.Uint64
	Stored    atomic.Uint64
	Updated   atomic.Uint64
	Broadcast atomic.Uint64
	// PeersDown / PeersUp count failure-detector liveness flips: a peer
	// declared dead after consecutive RPC failures, and one restored by a
	// later successful exchange or re-registration.
	PeersDown atomic.Uint64
	PeersUp   atomic.Uint64
}

// Peer is one networked LessLog node.
type Peer struct {
	cfg    Config
	hasher hashring.Hasher
	ln     net.Listener
	tr     *transport.Transport
	det    *transport.Detector

	mu     sync.Mutex
	store  *store.Store
	live   *liveness.Set
	addrs  map[bitops.PID]string
	clock  uint64
	closed bool
	conns  map[net.Conn]struct{}
	rng    *xrand.Rand
	quit   chan struct{}

	wg    sync.WaitGroup
	stats Stats
	obs   peerObs
	log   *slog.Logger
}

// Listen binds the peer's socket and starts serving connections. Call
// SetAddrs with the full peer table (including this peer) before issuing
// file operations.
func Listen(cfg Config) (*Peer, error) {
	bitops.CheckSplit(cfg.M, cfg.B)
	h := cfg.Hasher
	if h == nil {
		h = hashring.Default
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	st := store.New()
	if cfg.DataDir != "" {
		restored, err := diskstore.Load(cfg.DataDir)
		if err != nil {
			return nil, fmt.Errorf("netnode: restore %s: %w", cfg.DataDir, err)
		}
		st = restored
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Peer{
		cfg:    cfg,
		hasher: h,
		ln:     ln,
		store:  st,
		live:   liveness.New(cfg.M),
		addrs:  map[bitops.PID]string{},
		conns:  map[net.Conn]struct{}{},
		quit:   make(chan struct{}),
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	p.log = logger.With("component", "netnode", "pid", uint32(cfg.PID))
	p.tr = transport.New(cfg.Transport, cfg.Faults)
	p.det = transport.NewDetector(p.tr.Config().FailThreshold, p.peerDown, p.peerUp)
	p.wg.Add(1)
	go p.acceptLoop()
	p.log.Debug("listening", "addr", p.Addr(), "m", cfg.M, "b", cfg.B)
	return p, nil
}

// peerDown is the failure-detector callback: consecutive RPC failures to
// pid crossed the threshold, so its liveness bit is cleared — from here on
// every view routes around it through the §5 expanded children lists, the
// same way a register-dead broadcast would. Idle pooled connections to the
// dead peer are dropped with it.
func (p *Peer) peerDown(pid uint32) {
	p.mu.Lock()
	next := p.live.Clone()
	next.SetDead(bitops.PID(pid))
	p.live = next
	addr := p.addrs[bitops.PID(pid)]
	p.mu.Unlock()
	if addr != "" {
		p.tr.DropIdle(addr)
	}
	p.stats.PeersDown.Add(1)
	p.log.Warn("peer declared down by failure detector", "peer", pid, "addr", addr)
}

// peerUp restores a detector-dead peer after a successful exchange — the
// transient-failure healing path; a full rejoin heals through the
// register-live broadcast instead.
func (p *Peer) peerUp(pid uint32) {
	p.mu.Lock()
	if _, known := p.addrs[bitops.PID(pid)]; known {
		next := p.live.Clone()
		next.SetLive(bitops.PID(pid))
		p.live = next
	}
	p.mu.Unlock()
	p.stats.PeersUp.Add(1)
	p.log.Info("peer restored by successful exchange", "peer", pid)
}

// Addr returns the peer's bound address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// PID returns the peer's identifier.
func (p *Peer) PID() bitops.PID { return p.cfg.PID }

// Stats returns the peer's traffic counters.
func (p *Peer) Stats() *Stats { return &p.stats }

// IsLive reports whether this peer's status word currently marks pid live
// — the §5.1 bit the failure detector and registrations maintain. Safe for
// concurrent use.
func (p *Peer) IsLive(pid bitops.PID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live.IsLive(pid)
}

// HasFile reports whether the peer currently holds a copy of name,
// without counting an access. Safe for concurrent use.
func (p *Peer) HasFile(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Has(name)
}

// SetAddrs installs the PID→address table and marks exactly those PIDs
// live — the networked form of the status word. Failure-detector history
// is discarded: the new table is authoritative.
func (p *Peer) SetAddrs(addrs map[bitops.PID]string) {
	p.mu.Lock()
	p.addrs = make(map[bitops.PID]string, len(addrs))
	p.live = liveness.New(p.cfg.M)
	for pid, a := range addrs {
		p.addrs[pid] = a
		p.live.SetLive(pid)
	}
	p.mu.Unlock()
	p.det.ResetAll()
}

// Close stops the peer: the listener and every open connection are shut,
// then in-flight handlers are awaited.
func (p *Peer) Close() error {
	p.mu.Lock()
	if !p.closed {
		close(p.quit)
	}
	p.closed = true
	open := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		open = append(open, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range open {
		c.Close()
	}
	p.tr.Close()
	p.wg.Wait()
	if p.cfg.DataDir != "" {
		if cerr := p.Checkpoint(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Checkpoint persists the peer's store to its data directory.
func (p *Peer) Checkpoint() error {
	if p.cfg.DataDir == "" {
		return fmt.Errorf("netnode: peer has no data directory")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return diskstore.Save(p.cfg.DataDir, p.store)
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				conn.Close()
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
			}()
			p.serveConn(conn)
		}()
	}
}

func (p *Peer) serveConn(conn net.Conn) {
	for {
		req, err := msg.ReadRequest(conn)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		p.stats.Requests.Add(1)
		resp := p.handle(req)
		if err := msg.WriteResponse(conn, resp); err != nil {
			return
		}
	}
}

// view returns the lookup-tree view of target under the current table.
// Callers hold no lock; the view captures the live set by reference, which
// only SetAddrs replaces wholesale.
func (p *Peer) view(target bitops.PID) ptree.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ptree.NewView(target, p.live, p.cfg.B)
}

// handle times and dispatches one decoded request; every handler's full
// latency — forwarded and fanned-out work included — lands in the
// per-kind histogram.
func (p *Peer) handle(req *msg.Request) *msg.Response {
	start := time.Now()
	resp := p.dispatch(req)
	p.obs.handleHist(req.Kind).ObserveDuration(time.Since(start))
	return resp
}

func (p *Peer) dispatch(req *msg.Request) *msg.Response {
	switch req.Kind {
	case msg.KindStore:
		return p.handleStore(req)
	case msg.KindGet:
		return p.handleGet(req)
	case msg.KindInsert:
		return p.handleInsert(req)
	case msg.KindUpdate:
		return p.handleUpdate(req)
	case msg.KindStat:
		return p.handleStat(req)
	case msg.KindRegister:
		return p.handleRegister(req)
	case msg.KindTable:
		return p.handleTable()
	case msg.KindHas:
		return p.handleHas(req)
	case msg.KindDelete:
		return p.handleDelete(req)
	case msg.KindBatch:
		return p.handleBatch(req)
	}
	return &msg.Response{Err: fmt.Sprintf("netnode: unknown kind %v", req.Kind)}
}

// handleBatch serves a pipelined frame: every sub-request runs through the
// ordinary handler (so forwarding, fan-out, stats and histograms all apply
// per sub-request) and the sub-responses travel back in one frame. The
// decoder rejects nested batches, so this cannot recurse.
func (p *Peer) handleBatch(req *msg.Request) *msg.Response {
	subs, err := msg.DecodeBatchRequests(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: batch decode: %v", err)}
	}
	resps := make([]*msg.Response, len(subs))
	for i, sub := range subs {
		resps[i] = p.handle(sub)
	}
	data, err := msg.AppendBatchResponses(nil, resps)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: batch encode: %v", err)}
	}
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
}

func (p *Peer) handleStore(req *msg.Request) *msg.Response {
	kind := store.Inserted
	if req.Flags&msg.FlagReplica != 0 {
		kind = store.Replica
	}
	p.mu.Lock()
	p.store.Put(store.File{Name: req.Name, Data: req.Data, Version: req.Version}, kind)
	if req.Version > p.clock {
		p.clock = req.Version
	}
	p.mu.Unlock()
	p.stats.Stored.Add(1)
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: req.Version}
}

func (p *Peer) handleInsert(req *msg.Request) *msg.Response {
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	p.mu.Lock()
	p.clock++
	version := p.clock
	p.mu.Unlock()
	stored := 0
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
		h, ok := v.PrimaryHolder(sid)
		if !ok {
			continue
		}
		sreq := &msg.Request{
			Kind: msg.KindStore, Origin: req.Origin,
			Version: version, Name: req.Name, Data: req.Data,
		}
		if h == p.cfg.PID {
			p.handleStore(sreq)
			stored++
			continue
		}
		if resp, err := p.call(h, sreq); err == nil && resp.OK {
			stored++
		}
	}
	if stored == 0 {
		p.stats.Faults.Add(1)
		return &msg.Response{Err: "netnode: no live holder for insert"}
	}
	return &msg.Response{OK: true, ServedBy: uint32(target), Version: version}
}

func (p *Peer) handleGet(req *msg.Request) *msg.Response {
	start := time.Now()
	p.mu.Lock()
	f, ok := p.store.Get(req.Name)
	p.mu.Unlock()
	if ok {
		p.stats.Served.Add(1)
		resp := &msg.Response{
			OK: true, ServedBy: uint32(p.cfg.PID), Hops: req.Hops,
			Version: f.Version, Data: f.Data,
		}
		elapsed := time.Since(start)
		p.obs.serve.ObserveDuration(elapsed)
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, elapsed)
		}
		return resp
	}
	// Forward along the lookup tree. A failed forward is not final: the
	// failure feeds the detector, and once the dead hop's liveness bit
	// flips, recomputing the next hop routes around it (§3/§5 over the
	// wire) — so a get survives a silently crashed peer within a bounded
	// number of RPC deadlines. The attempt budget guarantees at least one
	// recomputation after the detector threshold is crossed.
	defer func() { p.obs.forward.ObserveDuration(time.Since(start)) }()
	attempts := p.tr.Config().FailThreshold + 1
	var lastErr error
	var lastHop bitops.PID
	for attempt := 0; attempt < attempts; attempt++ {
		next, flags, subtree, ok := p.nextHop(req)
		if !ok {
			p.stats.Faults.Add(1)
			return &msg.Response{Hops: req.Hops, Err: "netnode: file not found (fault)"}
		}
		fwd := *req
		fwd.Hops++
		fwd.Flags = flags
		fwd.Subtree = subtree
		if req.Flags&msg.FlagTrace != 0 {
			// nextHop clears routing flags on a subtree migration; the
			// trace bit must survive every transition.
			fwd.Flags |= msg.FlagTrace
			fwd.Path = appendHop(req.Path, uint32(p.cfg.PID),
				hopAction(req, flags, subtree), time.Since(start))
		}
		p.stats.Forwards.Add(1)
		resp, err := p.call(next, &fwd)
		if err == nil {
			return resp
		}
		lastErr, lastHop = err, next
	}
	p.stats.Faults.Add(1)
	return &msg.Response{Hops: req.Hops,
		Err: fmt.Sprintf("netnode: forward to P(%d) failed: %v", lastHop, lastErr)}
}

// hopAction classifies the forward a traced get is about to take by how
// nextHop changed the request state: a new subtree is the §4 migration, a
// freshly-set fallback flag is the §3 FINDLIVENODE step, anything else is
// the ordinary live-ancestor walk.
func hopAction(req *msg.Request, flags uint8, subtree uint32) msg.HopAction {
	switch {
	case subtree != req.Subtree:
		return msg.HopMigrate
	case flags&msg.FlagFallback != 0 && req.Flags&msg.FlagFallback == 0:
		return msg.HopFallback
	}
	return msg.HopForward
}

// nextHop computes where an unserved get goes: the first live ancestor
// (§2.2/§3), then the FINDLIVENODE primary (§3 step two), then the next
// subtree (§4 migration), carrying the state in the request flags.
func (p *Peer) nextHop(req *msg.Request) (next bitops.PID, flags uint8, subtree uint32, ok bool) {
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	self := p.cfg.PID
	if req.Flags&msg.FlagFallback == 0 {
		if anc, live := v.AliveAncestor(self); live {
			return anc, req.Flags, req.Subtree, true
		}
		if prim, live := v.PrimaryHolder(v.SubtreeID(self)); live && prim != self {
			return prim, req.Flags | msg.FlagFallback, req.Subtree, true
		}
	}
	// Own subtree exhausted: migrate (§4).
	nTrees := uint32(bitops.SubtreeCount(p.cfg.B))
	if req.Subtree+1 >= nTrees {
		return 0, 0, 0, false
	}
	sid := (v.SubtreeID(self) + 1) & bitops.VID(nTrees-1)
	entry := v.PID(bitops.ComposeVID(v.SubtreeVID(self), sid, p.cfg.B))
	p.mu.Lock()
	entryLive := p.live.IsLive(entry)
	p.mu.Unlock()
	if !entryLive {
		if anc, live := v.AliveAncestor(entry); live {
			entry = anc
		} else if prim, live := v.PrimaryHolder(sid); live {
			return prim, msg.FlagFallback, req.Subtree + 1, true
		} else {
			return 0, 0, 0, false
		}
	}
	return entry, 0, req.Subtree + 1, true
}

func (p *Peer) handleUpdate(req *msg.Request) *msg.Response {
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	if req.Flags&msg.FlagPropagate != 0 {
		// Propagation delivery: apply if holding, then fan out.
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID),
			Hops: uint32(p.propagateUpdate(v, req))}
	}
	// Initiation: learn the file's current version through an ordinary
	// lookup (the initiating peer may never have seen the file), then
	// stamp a strictly newer one, Lamport-style, and start the top-down
	// broadcast at each subtree's root position (or its expanded
	// children when dead).
	if probe := p.handleGet(&msg.Request{Kind: msg.KindGet, Name: req.Name}); probe.OK {
		p.mu.Lock()
		if probe.Version > p.clock {
			p.clock = probe.Version
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.clock++
	version := p.clock
	p.mu.Unlock()
	prop := *req
	prop.Flags |= msg.FlagPropagate
	prop.Version = version
	updated := p.broadcast(v, &prop)
	if updated == 0 {
		p.stats.Faults.Add(1)
		return &msg.Response{Err: "netnode: update found no copy"}
	}
	p.stats.Updated.Add(1)
	return &msg.Response{OK: true, ServedBy: uint32(target), Hops: uint32(updated), Version: version}
}

// broadcast starts the top-down children-list broadcast of a propagation
// request (update or delete) at each subtree's root position — or at the
// root's expanded children when it is dead — and returns copies touched.
// Update and delete share this path exactly, so neither can loop by
// delivering to itself over the wire where the other would not.
func (p *Peer) broadcast(v ptree.View, prop *msg.Request) int {
	total, legs := 0, 0
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
		rootPos := v.SubtreeRoot(sid)
		starts := []bitops.PID{rootPos}
		p.mu.Lock()
		rootLive := p.live.IsLive(rootPos)
		p.mu.Unlock()
		if !rootLive {
			starts = v.ExpandedChildrenList(rootPos)
		}
		legs += len(starts)
		for _, s := range starts {
			total += p.deliver(v, s, prop)
		}
	}
	p.obs.fanout.Observe(uint64(legs))
	return total
}

// deliver sends a propagation message to pid (handling it locally when pid
// is this peer) and returns how many copies it touched downstream. When
// the RPC fails outright — the peer crashed without a register-dead — the
// broadcast would silently lose pid's whole branch, so it degrades by
// routing through pid's expanded children list (§3) instead; the failed
// call has already fed the detector, so the liveness bit catches up.
func (p *Peer) deliver(v ptree.View, pid bitops.PID, prop *msg.Request) int {
	if pid == p.cfg.PID {
		return p.propagateLocal(v, prop)
	}
	p.stats.Broadcast.Add(1)
	resp, err := p.call(pid, prop)
	if err == nil {
		if !resp.OK {
			return 0
		}
		return int(resp.Hops)
	}
	n := 0
	for _, c := range v.ExpandedChildrenList(pid) {
		if c == pid {
			continue
		}
		n += p.deliver(v, c, prop)
	}
	return n
}

// propagateLocal applies a propagation message at this peer.
func (p *Peer) propagateLocal(v ptree.View, prop *msg.Request) int {
	if prop.Kind == msg.KindDelete {
		return p.propagateDelete(v, prop)
	}
	return p.propagateUpdate(v, prop)
}

// propagateUpdate applies a propagation message locally: a holder rewrites
// its copy and re-broadcasts to its expanded children list; a non-holder
// discards. Returns copies updated in this subtree branch.
func (p *Peer) propagateUpdate(v ptree.View, req *msg.Request) int {
	p.mu.Lock()
	holds := p.store.Has(req.Name)
	applied := false
	if holds {
		applied = p.store.Update(req.Name, req.Data, req.Version)
		if req.Version > p.clock {
			p.clock = req.Version
		}
	}
	p.mu.Unlock()
	if !holds {
		return 0
	}
	n := 0
	if applied {
		n = 1
	}
	for _, c := range v.ExpandedChildrenList(p.cfg.PID) {
		if c == p.cfg.PID {
			continue
		}
		n += p.deliver(v, c, req)
	}
	return n
}

func (p *Peer) handleDelete(req *msg.Request) *msg.Response {
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	if req.Flags&msg.FlagPropagate != 0 {
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID),
			Hops: uint32(p.propagateDelete(v, req))}
	}
	prop := *req
	prop.Flags |= msg.FlagPropagate
	removed := p.broadcast(v, &prop)
	if removed == 0 {
		p.stats.Faults.Add(1)
		return &msg.Response{Err: "netnode: delete found no copy"}
	}
	return &msg.Response{OK: true, ServedBy: uint32(target), Hops: uint32(removed)}
}

// propagateDelete erases a local copy and fans out to the children list;
// non-holders discard. Returns copies removed downstream.
func (p *Peer) propagateDelete(v ptree.View, req *msg.Request) int {
	p.mu.Lock()
	holds := p.store.Has(req.Name)
	p.mu.Unlock()
	if !holds {
		return 0
	}
	n := 0
	for _, c := range v.ExpandedChildrenList(p.cfg.PID) {
		if c == p.cfg.PID {
			continue
		}
		n += p.deliver(v, c, req)
	}
	p.mu.Lock()
	if p.store.Delete(req.Name) {
		n++
	}
	p.mu.Unlock()
	return n
}

// handleStat serves the status snapshot: the legacy one-line "k=v" text by
// default, or — with FlagJSON — the structured StatSnapshot as JSON.
func (p *Peer) handleStat(req *msg.Request) *msg.Response {
	if req != nil && req.Flags&msg.FlagJSON != 0 {
		data, err := json.Marshal(p.StatSnapshot())
		if err != nil {
			return &msg.Response{Err: fmt.Sprintf("netnode: stat snapshot: %v", err)}
		}
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
	}
	p.mu.Lock()
	summary := fmt.Sprintf("pid=%d %s live=%d", p.cfg.PID, p.store, p.live.LiveCount())
	p.mu.Unlock()
	summary += fmt.Sprintf(" detector-down=%d peers-down=%d peers-up=%d %s",
		p.det.DownCount(), p.stats.PeersDown.Load(), p.stats.PeersUp.Load(), p.tr.Counters())
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: []byte(summary)}
}

// call performs one request/response exchange with pid through the peer's
// transport (deadlines, retries, pooling) and feeds the outcome to the
// failure detector: enough consecutive failures clear pid's liveness bit,
// and a later success restores it.
func (p *Peer) call(pid bitops.PID, req *msg.Request) (*msg.Response, error) {
	p.mu.Lock()
	addr, ok := p.addrs[pid]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netnode: no address for P(%d)", pid)
	}
	resp, err := p.tr.Do(addr, req)
	if err != nil {
		p.det.Fail(uint32(pid))
		return nil, err
	}
	p.det.Ok(uint32(pid))
	return resp, nil
}

// Probe sends a lightweight stat exchange to pid, feeding the failure
// detector: a successful probe restores a peer the detector had declared
// dead (e.g. after a transient partition heals, without a full rejoin).
func (p *Peer) Probe(pid bitops.PID) error {
	_, err := p.call(pid, &msg.Request{Kind: msg.KindStat})
	return err
}

// Transport returns the peer's RPC transport, exposing its counters.
func (p *Peer) Transport() *transport.Transport { return p.tr }

// Detector returns the peer's failure detector.
func (p *Peer) Detector() *transport.Detector { return p.det }

// defaultTransport backs the package-level Call and NewClient: deadlines
// and retries but no pooling, so casual callers never hold sockets open.
var defaultTransport = sync.OnceValue(func() *transport.Transport {
	return transport.New(transport.Config{PoolSize: -1}, nil)
})

// Call performs one request/response exchange with the peer at addr under
// the default transport's deadlines.
func Call(addr string, req *msg.Request) (*msg.Response, error) {
	return defaultTransport().Do(addr, req)
}
