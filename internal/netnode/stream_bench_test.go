package netnode

// The acceptance benchmarks for the chunked streaming data plane (`make
// stream-bench`; the recorded run lives in results/stream_bench.txt and
// results/BENCH_stream.json):
//
//   - BenchmarkChunkedGet keeps the striped fetch path under bench-smoke:
//     one warm multi-chunk get per iteration, zero relayed bytes.
//   - TestStreamBenchReport is the full comparison. Part one races the
//     single-frame fetch against the chunked fetch at 1–64 MiB payloads
//     (above msg.MaxData only the chunked plane can serve at all — that
//     is the headline: the read ceiling moved from one frame to
//     msg.MaxFileSize). Part two measures aggregate hot-file throughput
//     against replica count: every holder is modeled as a serial server
//     of bounded capacity (PipelineWorkers=1, one pooled stream per
//     address, ServeDelay per chunk), so read throughput is bounded by
//     how many copies the stripe can spread over — the §6 premise the
//     replica-striped fetch path exists to deliver.
//
// Every fabric RPC pays benchRTT (500µs) via injected transport faults,
// the same propagation model the relay/locate comparison uses.

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/routehint"
	"lesslog/internal/transport"
)

// startStreamFabric boots an n-peer fabric with B replication bits,
// benchRTT on every outbound RPC, and a per-connection pipeline worker
// cap (0 selects the default) — workers=1 plus a positive serveDelay
// models a serial holder with bounded service capacity, which sleeps
// (overlapping across holders) rather than burns CPU, so striping can
// show real scaling even on a single-core host.
func startStreamFabric(t testing.TB, m, b, n, workers int, serveDelay time.Duration, hasher hashring.Hasher) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, n)
	addrs := make(map[bitops.PID]string, n)
	for _, pid := range allPIDs(n) {
		p, err := Listen(Config{
			PID: pid, M: m, B: b, Hasher: hasher,
			PipelineWorkers: workers, ServeDelay: serveDelay,
			Faults: transport.NewFaults().Add(transport.Rule{Delay: benchRTT}),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

// BenchmarkChunkedGet measures a warm striped fetch of a multi-chunk
// payload; bench-smoke runs it at one iteration so the path cannot rot.
func BenchmarkChunkedGet(b *testing.B) {
	peers := startBenchSystem(b, 4, allPIDs(16), hashring.Fixed(4))
	payload := benchPayload(8 << 20)
	if err := NewClient(peers[8].Addr()).Insert("bench/stream", payload); err != nil {
		b.Fatal(err)
	}
	cl := NewLocateClientWith(peers[8].Addr(), benchClientTransport(b), LocateOptions{})
	if _, err := cl.Get("bench/stream"); err != nil { // cold: locate-set walk
		b.Fatal(err)
	}
	relayed0 := sumRelayed(peers)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Get("bench/stream"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := sumRelayed(peers) - relayed0; d != 0 {
		b.Fatalf("chunked gets relayed %d payload bytes, want 0", d)
	}
}

// streamBenchSizes are the payload sizes of the single-frame/chunked
// comparison. Above msg.MaxData the single-frame path cannot serve at
// all, so those rows carry the chunked numbers alone.
var streamBenchSizes = []struct {
	label  string
	n      int
	rounds int
}{
	{"1MiB", 1 << 20, 24},
	{"4MiB", 4 << 20, 24},
	{"16MiB", 16 << 20, 12},
	{"64MiB", 64 << 20, 6},
}

// TestStreamBenchReport is the acceptance run behind `make stream-bench`
// (gated by LESSLOG_STREAM_BENCH so plain `go test ./...` stays fast).
func TestStreamBenchReport(t *testing.T) {
	if os.Getenv("LESSLOG_STREAM_BENCH") == "" {
		t.Skip("set LESSLOG_STREAM_BENCH=1 (make stream-bench) to run the stream data-plane comparison")
	}
	// A subtest so the 16-peer latency fabric (holding payloads up to
	// 64 MiB) is torn down before the throughput phase boots its own.
	t.Run("latency", streamLatencyReport)
	streamThroughputReport(t)
}

// streamLatencyReport compares warm single-frame and chunked fetch
// latency per payload size, and proves the read ceiling moved: the
// 64 MiB row has no single-frame number to report.
func streamLatencyReport(t *testing.T) {
	peers := startStreamFabric(t, 4, 0, 16, 0, 0, hashring.Fixed(4))
	entry := peers[8].Addr()
	ctr := transport.New(transport.Config{},
		transport.NewFaults().Add(transport.Rule{Delay: benchRTT}))
	t.Cleanup(func() { ctr.Close() })

	for _, size := range streamBenchSizes {
		name := "bench/" + size.label
		payload := benchPayload(size.n)
		overFrame := size.n > msg.MaxData
		// Over-frame payloads insert through the chunked write plane like
		// everything else — the write ceiling is msg.MaxFileSize too.
		if err := NewClient(entry).Insert(name, payload); err != nil {
			t.Fatal(err)
		}

		run := func(cl *Client) []time.Duration {
			if _, err := cl.Get(name); err != nil { // cold: pays the locate walk
				t.Fatal(err)
			}
			lat := make([]time.Duration, 0, size.rounds)
			for i := 0; i < size.rounds; i++ {
				start := time.Now()
				res, err := cl.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Data) != size.n {
					t.Fatalf("%s: got %d bytes, want %d", size.label, len(res.Data), size.n)
				}
				lat = append(lat, time.Since(start))
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			return lat
		}

		relayed0 := sumRelayed(peers)
		chunkCl := NewLocateClientWith(entry, ctr, LocateOptions{})
		chunkLat := run(chunkCl)
		if d := sumRelayed(peers) - relayed0; d != 0 {
			t.Errorf("%s: chunked gets relayed %d payload bytes, want 0", size.label, d)
		}
		if got := chunkCl.LocateStats().ChunkedGets.Load(); got == 0 {
			t.Errorf("%s: no gets went through the chunk plane", size.label)
		}

		results := []benchjson.Result{{
			Name:    "report/chunked/" + size.label,
			NsPerOp: float64(chunkLat[len(chunkLat)/2].Nanoseconds()),
			Extra: map[string]float64{
				"p50_ms":     float64(chunkLat[len(chunkLat)/2].Nanoseconds()) / 1e6,
				"p99_ms":     float64(quantile(chunkLat, 0.99).Nanoseconds()) / 1e6,
				"over_frame": b2f(overFrame),
			},
		}}
		logLine := fmt.Sprintf("%s: chunked p50=%v p99=%v", size.label,
			chunkLat[len(chunkLat)/2], quantile(chunkLat, 0.99))

		if !overFrame {
			frameCl := NewLocateClientWith(entry, ctr, LocateOptions{DisableChunks: true})
			frameLat := run(frameCl)
			results = append(results, benchjson.Result{
				Name:    "report/single-frame/" + size.label,
				NsPerOp: float64(frameLat[len(frameLat)/2].Nanoseconds()),
				Extra: map[string]float64{
					"p50_ms": float64(frameLat[len(frameLat)/2].Nanoseconds()) / 1e6,
					"p99_ms": float64(quantile(frameLat, 0.99).Nanoseconds()) / 1e6,
				},
			})
			logLine += fmt.Sprintf(" | single-frame p50=%v p99=%v",
				frameLat[len(frameLat)/2], quantile(frameLat, 0.99))
		} else {
			logLine += " | single-frame: over the msg.MaxData frame ceiling"
		}
		if err := benchjson.Record("stream", results...); err != nil {
			t.Fatal(err)
		}
		t.Log(logLine)
	}
}

// benchServeDelay is the modeled per-chunk service time of a holder in
// the throughput comparison. Real chunk service on a loopback fabric is
// far cheaper than the client's own decode/CRC work (and the host may
// have a single core), so CPU cost cannot show capacity scaling; a
// slept service time can, because sleeps overlap across holders.
const benchServeDelay = 10 * time.Millisecond

// streamThroughputReport measures aggregate hot-file read throughput
// against replica count. Holders are modeled as serial servers of
// bounded capacity: one pipeline worker per connection, one pooled
// stream per address, benchServeDelay per chunk. With one copy every
// chunk of every reader queues behind one worker; with 2^b copies the
// stripe spreads the same load over 2^b queues.
func streamThroughputReport(t *testing.T) {
	const (
		hotSize = 8 << 20
		readers = 4
		fetches = 6
	)
	type row struct {
		replicas int
		mibps    float64
	}
	var rows []row
	for _, b := range []int{0, 1, 2} {
		replicas := 1 << b
		// A subtest per replica count so t.Cleanup tears each fabric down
		// before the next one boots — 16 fresh peers per configuration,
		// not an accumulating pile competing for the host.
		ok := t.Run(fmt.Sprintf("hotfile/replicas=%d", replicas), func(t *testing.T) {
			peers := startStreamFabric(t, 4, b, 16, 1, benchServeDelay, hashring.Fixed(4))
			entry := peers[8].Addr()
			payload := benchPayload(hotSize)
			if err := NewClient(entry).Insert("bench/hot", payload); err != nil {
				t.Fatal(err)
			}
			// One shared transport (one pooled stream per holder) and one
			// shared hint cache: every reader's chunks ride the same
			// per-holder connection, so holder capacity — not connection
			// count — is what replication has to beat.
			ctr := transport.New(transport.Config{PoolSize: 1},
				transport.NewFaults().Add(transport.Rule{Delay: benchRTT}))
			t.Cleanup(func() { ctr.Close() })
			hints := routehint.New(0, 0)
			// Warm with a window-1 client: its sequential cold fetch pays
			// the locate walk once (filling the shared hint cache) and
			// establishes the single pooled stream per holder. Concurrent
			// cold fetches would each dial their own connection and
			// silently widen every holder's serial queue.
			warm := NewLocateClientWith(entry, ctr, LocateOptions{Hints: hints, ChunkWindow: 1})
			if _, err := warm.Get("bench/hot"); err != nil {
				t.Fatal(err)
			}
			cls := make([]*Client, readers)
			for i := range cls {
				cls[i] = NewLocateClientWith(entry, ctr, LocateOptions{Hints: hints})
			}

			relayed0 := sumRelayed(peers)
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, readers)
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					for j := 0; j < fetches; j++ {
						res, err := cl.Get("bench/hot")
						if err != nil {
							errs <- err
							return
						}
						if len(res.Data) != hotSize {
							errs <- fmt.Errorf("short read: %d bytes", len(res.Data))
							return
						}
					}
				}(cls[i])
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			elapsed := time.Since(start)
			if d := sumRelayed(peers) - relayed0; d != 0 {
				t.Errorf("replicas=%d: hot gets relayed %d payload bytes, want 0", replicas, d)
			}
			width := cls[0].StreamStats().StripeWidth.Load()
			if int(width) > replicas {
				t.Errorf("replicas=%d: stripe width %d exceeds the replica set", replicas, width)
			}
			mibps := float64(readers*fetches*hotSize) / (1 << 20) / elapsed.Seconds()
			rows = append(rows, row{replicas, mibps})
			if err := benchjson.Record("stream", benchjson.Result{
				Name: fmt.Sprintf("report/hotfile/replicas=%d", replicas),
				Extra: map[string]float64{
					"throughput_mib_s": mibps,
					"stripe_width":     float64(width),
					"relayed_bytes":    0,
				},
			}); err != nil {
				t.Fatal(err)
			}
			t.Logf("replicas=%d: %.1f MiB/s aggregate (%d readers × %d fetches of %d MiB), stripe width %d",
				replicas, mibps, readers, fetches, hotSize>>20, width)
		})
		if !ok {
			t.Fatalf("replicas=%d configuration failed", replicas)
		}
	}
	base, quad := rows[0].mibps, rows[len(rows)-1].mibps
	if quad < 2*base {
		t.Errorf("hot-file throughput at 4 replicas = %.1f MiB/s, want >= 2x the 1-replica %.1f MiB/s",
			quad, base)
	}
	if err := benchjson.Record("stream", benchjson.Result{
		Name:    "report/hotfile/scaling",
		Speedup: quad / base,
	}); err != nil {
		t.Fatal(err)
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
