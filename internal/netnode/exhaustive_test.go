package netnode

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lesslog/internal/hashring"
)

// promFamilies parses the family names out of "# TYPE <name> <kind>"
// lines in a Prometheus exposition.
func promFamilies(t *testing.T, text string) []string {
	t.Helper()
	var fams []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			fams = append(fams, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("no # TYPE lines in Prometheus output")
	}
	return fams
}

// jsonKeys flattens a marshaled snapshot one level deep: top-level keys
// plus "<outer>.<inner>" for nested objects.
func jsonKeys(t *testing.T, v any) map[string]bool {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for k, inner := range m {
		keys[k] = true
		var nested map[string]json.RawMessage
		if json.Unmarshal(inner, &nested) == nil {
			for nk := range nested {
				keys[k+"."+nk] = true
			}
		}
	}
	return keys
}

// peerFamilyJSON maps every Prometheus family the peer emits to a JSON
// key of its stat snapshot carrying the same signal. A family missing
// from this table means someone added a counter to one surface and
// forgot the other — exactly the drift this test exists to catch.
var peerFamilyJSON = map[string]string{
	"lesslog_requests_total":              "requests",
	"lesslog_forwards_total":              "forwards",
	"lesslog_served_total":                "served",
	"lesslog_faults_total":                "faults",
	"lesslog_stored_total":                "stored",
	"lesslog_updated_total":               "updated",
	"lesslog_broadcast_legs_total":        "broadcast",
	"lesslog_detector_flips_total":        "peers_down",
	"lesslog_proto_errors_total":          "proto_errors",
	"lesslog_located_total":               "located",
	"lesslog_direct_gets_total":           "direct_served",
	"lesslog_relayed_payload_bytes_total": "relayed_bytes",
	"lesslog_chunks_served_total":         "chunks_served",
	"lesslog_chunk_payload_bytes_total":   "chunk_bytes",
	"lesslog_chunk_refusals_total":        "chunk_refusals",
	"lesslog_locate_sets_total":           "locate_sets",
	"lesslog_write_chunks_total":          "write_chunks",
	"lesslog_write_payload_bytes_total":   "write_bytes",
	"lesslog_staged_aborts_total":         "staged_aborts",
	"lesslog_notify_propagation_total":    "notify_pulls",
	"lesslog_write_entries_total":         "writes_at_holder",
	"lesslog_fanout_payload_bytes_total":  "fanout_bytes",
	"lesslog_repair_total":                "repaired",
	"lesslog_repair_probes_total":         "repair_probes",
	"lesslog_digest_bytes_total":          "digest_bytes",
	"lesslog_traces_total":                "trace_recorded",
	"lesslog_transport_events_total":      "transport",
	"lesslog_live_peers":                  "live_peers",
	"lesslog_detector_down_peers":         "detector_down",
	"lesslog_store_files":                 "inserted",
	"lesslog_pipeline_depth":              "pipeline_depth",
	"lesslog_fanout_active_legs":          "fanout_active",
	"lesslog_repair_deficit_bytes":        "repair_deficit",
	"lesslog_tombstones":                  "tombstones",
	"lesslog_repair_ttfr_seconds":         "repair_ttfr_ms",
	"lesslog_rpc_latency_seconds":         "rpc_latency_ms",
	"lesslog_handler_latency_seconds":     "handler_latency_ms",
	"lesslog_get_serve_latency_seconds":   "serve_latency_ms",
	"lesslog_get_forward_latency_seconds": "forward_latency_ms",
	"lesslog_broadcast_fanout_legs":       "broadcast_fanout",
}

// TestPeerMetricsExhaustive checks that every counter and gauge family
// the peer exports to Prometheus also appears in the JSON stat snapshot,
// and that the mapping table itself has no stale entries.
func TestPeerMetricsExhaustive(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(4), hashring.Fixed(2))
	p := peers[0]
	var buf bytes.Buffer
	p.WritePrometheus(&buf)
	fams := promFamilies(t, buf.String())
	keys := jsonKeys(t, p.StatSnapshot())

	seen := map[string]bool{}
	for _, fam := range fams {
		key, ok := peerFamilyJSON[fam]
		if !ok {
			t.Errorf("Prometheus family %s has no JSON stat-snapshot mapping — add it to both surfaces", fam)
			continue
		}
		if !keys[key] {
			t.Errorf("family %s maps to JSON key %q, absent from the snapshot", fam, key)
		}
		seen[fam] = true
	}
	for fam := range peerFamilyJSON {
		if !seen[fam] {
			t.Errorf("mapping table lists %s but WritePrometheus no longer emits it", fam)
		}
	}
}
