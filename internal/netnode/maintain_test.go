package netnode

import (
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
)

func TestMaintainOnceReplicatesHotFile(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("hot", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Hammer the target from its own subtree so only P(4) counts hits.
	for i := 0; i < 20; i++ {
		if _, err := NewClient(peers[4].Addr()).Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	placed, ok := peers[4].MaintainOnce(10, 0)
	if !ok {
		t.Fatal("overloaded peer did not replicate")
	}
	// §2.2: the first replica goes to the head of P(4)'s children list,
	// P(5).
	if placed != 5 {
		t.Fatalf("replica at P(%d), want P(5)", placed)
	}
	if !peers[5].store.Has("hot") {
		t.Fatal("replica not stored at P(5)")
	}
	// A second maintenance round places the next replica at P(6).
	for i := 0; i < 20; i++ {
		NewClient(peers[4].Addr()).Get("hot")
	}
	placed, ok = peers[4].MaintainOnce(10, 0)
	if !ok || placed != 6 {
		t.Fatalf("second replica at P(%d), %v; want P(6)", placed, ok)
	}
}

func TestMaintainOnceBelowThresholdDoesNothing(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	NewClient(peers[0].Addr()).Insert("f", []byte("x"))
	NewClient(peers[4].Addr()).Get("f")
	if _, ok := peers[4].MaintainOnce(10, 0); ok {
		t.Fatal("replicated below threshold")
	}
}

func TestMaintainEvictsColdReplicas(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	NewClient(peers[0].Addr()).Insert("f", []byte("x"))
	NewClient(peers[5].Addr()).Store("f", []byte("x"), 1, true)
	if !peers[5].store.Has("f") {
		t.Fatal("setup failed")
	}
	// The replica served nothing this window: evicted.
	peers[5].MaintainOnce(1000, 1)
	if peers[5].store.Has("f") {
		t.Fatal("cold replica survived maintenance")
	}
	// Inserted copies are never evicted.
	peers[4].MaintainOnce(1000, 1000)
	if !peers[4].store.Has("f") {
		t.Fatal("inserted copy evicted")
	}
}

func TestKindHasProbe(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	NewClient(peers[0].Addr()).Store("x", []byte("1"), 1, false)
	resp, err := Call(peers[0].Addr(), &msg.Request{Kind: msg.KindHas, Name: "x"})
	if err != nil || !resp.OK {
		t.Fatalf("has(x) = %+v, %v", resp, err)
	}
	resp, err = Call(peers[0].Addr(), &msg.Request{Kind: msg.KindHas, Name: "y"})
	if err != nil || resp.OK {
		t.Fatalf("has(y) = %+v, %v", resp, err)
	}
	// Probes must not count as accesses for the eviction counters.
	if peers[0].store.Hits("x") != 0 {
		t.Fatal("KindHas counted an access")
	}
}

func TestStartMaintenanceLoop(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	NewClient(peers[0].Addr()).Insert("hot", []byte("x"))
	stop := peers[4].StartMaintenance(5*time.Millisecond, 10, 0)
	defer stop()
	for i := 0; i < 20; i++ {
		NewClient(peers[4].Addr()).Get("hot")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if peers[5].HasFile("hot") {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("maintenance loop never replicated the hot file")
}

func TestDurablePeerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PID: 3, M: 4, Hasher: hashring.Fixed(3), DataDir: dir}
	p1, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1.SetAddrs(map[bitops.PID]string{3: p1.Addr()})
	if err := NewClient(p1.Addr()).Insert("persist-me", []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil { // checkpoint happens here
		t.Fatal(err)
	}
	// "Restart" the peer from the same directory.
	p2, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2.Close() })
	p2.SetAddrs(map[bitops.PID]string{3: p2.Addr()})
	res, err := NewClient(p2.Addr()).Get("persist-me")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != "still here" {
		t.Fatalf("restored data = %q", res.Data)
	}
}

func TestCheckpointWithoutDataDir(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	if err := peers[0].Checkpoint(); err == nil {
		t.Fatal("checkpoint without a data dir succeeded")
	}
}

func TestCloseStopsMaintenance(t *testing.T) {
	p, err := Listen(Config{PID: 1, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	p.SetAddrs(map[bitops.PID]string{1: p.Addr()})
	p.StartMaintenance(time.Hour, 1, 1) // never ticks; Close must not hang
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with a maintenance loop running")
	}
}
