package netnode

// Wire-level end-to-end scenario: a B=1 fault-tolerant system over real
// sockets goes through content, load, maintenance, join, graceful leave
// and an abrupt failure with recovery, and every file keeps serving.

import (
	"bytes"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
)

func TestEndToEndWireScenario(t *testing.T) {
	const m = 5 // 32 slots
	var pids []bitops.PID
	for i := 0; i < 28; i++ { // 4 slots free for the join phase
		pids = append(pids, bitops.PID(i))
	}
	peers := startSystem(t, m, 1, pids, hashring.FNV{})

	anyAddr := func() string {
		for _, p := range peers {
			return p.Addr()
		}
		t.Fatal("no peers")
		return ""
	}

	// Phase 1: content through arbitrary peers, 2 copies each (B=1).
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("wire/%02d", i)
		if err := NewClient(peers[pids[i%len(pids)]].Addr()).Insert(names[i], []byte(names[i])); err != nil {
			t.Fatalf("insert %s: %v", names[i], err)
		}
		holders := 0
		for _, p := range peers {
			if p.HasFile(names[i]) {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("%s has %d copies, want 2", names[i], holders)
		}
	}

	// Phase 2: load one file and let its holder's maintenance replicate.
	hot := names[3]
	var hotHolder bitops.PID
	for pid, p := range peers {
		if p.HasFile(hot) {
			hotHolder = pid
			break
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := NewClient(peers[hotHolder].Addr()).Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := peers[hotHolder].MaintainOnce(10, 0); !ok {
		t.Fatal("maintenance did not replicate the hot file")
	}

	// Phase 3: a node joins and inherits whatever now belongs to it.
	joiner, err := Listen(Config{PID: 30, M: m, B: 1, Hasher: hashring.FNV{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(anyAddr()); err != nil {
		t.Fatal(err)
	}
	peers[30] = joiner

	// Phase 4: a graceful leave hands copies over; an abrupt failure is
	// recovered from the sibling subtree.
	leaver := pids[5]
	if err := peers[leaver].Leave(); err != nil {
		t.Fatal(err)
	}
	peers[leaver].Close()
	delete(peers, leaver)

	victim := pids[11]
	peers[victim].Close()
	delete(peers, victim)
	for _, p := range peers {
		p.ReportFailure(victim)
		break
	}

	// Endgame: every file resolves from every surviving peer's viewpoint
	// with correct contents.
	for _, name := range names {
		for pid := range peers {
			res, err := NewClient(peers[pid].Addr()).Get(name)
			if err != nil {
				t.Fatalf("get %s via P(%d): %v", name, pid, err)
			}
			if !bytes.Equal(res.Data, []byte(name)) {
				t.Fatalf("get %s via P(%d): wrong data %q", name, pid, res.Data)
			}
		}
	}
}
