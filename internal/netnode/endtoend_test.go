package netnode

// Wire-level end-to-end scenario: a B=1 fault-tolerant system over real
// sockets goes through content, load, maintenance, join, graceful leave
// and an abrupt failure with recovery, and every file keeps serving.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/transport"
)

func TestEndToEndWireScenario(t *testing.T) {
	const m = 5 // 32 slots
	var pids []bitops.PID
	for i := 0; i < 28; i++ { // 4 slots free for the join phase
		pids = append(pids, bitops.PID(i))
	}
	peers := startSystem(t, m, 1, pids, hashring.FNV{})

	anyAddr := func() string {
		for _, p := range peers {
			return p.Addr()
		}
		t.Fatal("no peers")
		return ""
	}

	// Phase 1: content through arbitrary peers, 2 copies each (B=1).
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("wire/%02d", i)
		if err := NewClient(peers[pids[i%len(pids)]].Addr()).Insert(names[i], []byte(names[i])); err != nil {
			t.Fatalf("insert %s: %v", names[i], err)
		}
		holders := 0
		for _, p := range peers {
			if p.HasFile(names[i]) {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("%s has %d copies, want 2", names[i], holders)
		}
	}

	// Phase 2: load one file and let its holder's maintenance replicate.
	hot := names[3]
	var hotHolder bitops.PID
	for pid, p := range peers {
		if p.HasFile(hot) {
			hotHolder = pid
			break
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := NewClient(peers[hotHolder].Addr()).Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := peers[hotHolder].MaintainOnce(10, 0); !ok {
		t.Fatal("maintenance did not replicate the hot file")
	}

	// Phase 3: a node joins and inherits whatever now belongs to it.
	joiner, err := Listen(Config{PID: 30, M: m, B: 1, Hasher: hashring.FNV{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(anyAddr()); err != nil {
		t.Fatal(err)
	}
	peers[30] = joiner

	// Phase 4: a graceful leave hands copies over; an abrupt failure is
	// recovered from the sibling subtree.
	leaver := pids[5]
	if err := peers[leaver].Leave(); err != nil {
		t.Fatal(err)
	}
	peers[leaver].Close()
	delete(peers, leaver)

	victim := pids[11]
	peers[victim].Close()
	delete(peers, victim)
	for _, p := range peers {
		p.ReportFailure(victim)
		break
	}

	// Endgame: every file resolves from every surviving peer's viewpoint
	// with correct contents.
	for _, name := range names {
		for pid := range peers {
			res, err := NewClient(peers[pid].Addr()).Get(name)
			if err != nil {
				t.Fatalf("get %s via P(%d): %v", name, pid, err)
			}
			if !bytes.Equal(res.Data, []byte(name)) {
				t.Fatalf("get %s via P(%d): wrong data %q", name, pid, res.Data)
			}
		}
	}
}

// --- networked fault-path scenario matrix ---------------------------------
//
// Every scenario runs a real system whose peers share one fault-injection
// table (transport.Faults) and tight RPC deadlines, so dead, slow and
// flapping peers are scripted deterministically — no sleep-based killing,
// and timeouts are driven by short configured deadlines, not wall-clock
// guesswork.

// faultSystem is a wire system whose peers share a fault table and a tight
// transport configuration.
type faultSystem struct {
	peers  map[bitops.PID]*Peer
	faults *transport.Faults
	tcfg   transport.Config
}

func (s *faultSystem) addr(pid bitops.PID) string { return s.peers[pid].Addr() }

func (s *faultSystem) closeAll() {
	for _, p := range s.peers {
		p.Close()
	}
}

// startFaultSystem boots peers 0..n-1 sharing one fault table, with
// deadlines short enough that a blown one is cheap and a bound of 2× is
// still generous.
func startFaultSystem(t *testing.T, m, b, n int, hasher hashring.Hasher, tcfg transport.Config) *faultSystem {
	t.Helper()
	faults := transport.NewFaults()
	sys := &faultSystem{peers: map[bitops.PID]*Peer{}, faults: faults, tcfg: tcfg}
	addrs := map[bitops.PID]string{}
	for i := 0; i < n; i++ {
		pid := bitops.PID(i)
		p, err := Listen(Config{
			PID: pid, M: m, B: b, Hasher: hasher,
			Transport: tcfg, Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		sys.peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range sys.peers {
		p.SetAddrs(addrs)
	}
	return sys
}

// tightTransport is the scenario-default transport: no idempotent retries
// (so attempt counts are exact), a one-failure detector threshold (so a
// single blown deadline triggers the §5 fallback), and a short RPC
// deadline that bounds every injected hang.
func tightTransport() transport.Config {
	return transport.Config{
		DialTimeout:   500 * time.Millisecond,
		RPCTimeout:    150 * time.Millisecond,
		Retries:       -1,
		FailThreshold: 1,
		Seed:          1,
	}
}

func TestNetworkedFaultScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{name: "dead root: a silently crashed replica holder", run: func(t *testing.T) {
			// B=1: two copies, one per subtree. The holder in the origin's
			// subtree crashes without any registration; the get must still
			// succeed through the §3/§4 fallback, inside the deadline
			// budget, and the crash must show up in the status word.
			sys := startFaultSystem(t, 4, 1, 16, hashring.Fixed(4), tightTransport())
			if err := NewClient(sys.addr(2)).Insert("f", []byte("v")); err != nil {
				t.Fatal(err)
			}
			var holders []bitops.PID
			for pid, p := range sys.peers {
				if p.HasFile("f") {
					holders = append(holders, pid)
				}
			}
			if len(holders) != 2 {
				t.Fatalf("holders = %v, want one per subtree", holders)
			}
			victim := holders[0]
			sys.peers[victim].Close()
			delete(sys.peers, victim)

			start := time.Now()
			for pid := range sys.peers {
				res, err := NewClient(sys.addr(pid)).Get("f")
				if err != nil {
					t.Fatalf("get via P(%d) with dead holder P(%d): %v", pid, victim, err)
				}
				if !bytes.Equal(res.Data, []byte("v")) {
					t.Fatalf("get via P(%d): wrong data %q", pid, res.Data)
				}
			}
			// A crashed peer answers dials with a refusal, so the whole
			// sweep stays far inside one deadline per get.
			if elapsed := time.Since(start); elapsed > time.Duration(len(sys.peers))*2*sys.tcfg.RPCTimeout {
				t.Fatalf("fallback gets took %v", elapsed)
			}
			detected := false
			for _, p := range sys.peers {
				if !p.IsLive(victim) {
					detected = true
					break
				}
			}
			if !detected {
				t.Fatalf("no surviving peer's failure detector cleared P(%d)'s liveness bit", victim)
			}
		}},

		{name: "slow peer: a forwarding hop hangs until the deadline", run: func(t *testing.T) {
			// P(8)'s get path is P(8) → P(0) → P(4). P(0) hangs every get
			// for the full RPC deadline; the blown deadline must flip
			// P(0)'s bit and the same get must be re-routed and succeed
			// within 2× the configured deadline.
			sys := startFaultSystem(t, 4, 0, 16, hashring.Fixed(4), tightTransport())
			if err := NewClient(sys.addr(3)).Insert("f", []byte("v")); err != nil {
				t.Fatal(err)
			}
			sys.faults.Add(transport.Rule{Addr: sys.addr(0), Hang: true})
			start := time.Now()
			res, err := NewClient(sys.addr(8)).Get("f")
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("get past a hung hop: %v", err)
			}
			if res.ServedBy != 4 || !bytes.Equal(res.Data, []byte("v")) {
				t.Fatalf("get = %+v", res)
			}
			if elapsed > 2*sys.tcfg.RPCTimeout {
				t.Fatalf("get took %v, want < 2× the %v RPC deadline", elapsed, sys.tcfg.RPCTimeout)
			}
			if sys.peers[8].IsLive(0) {
				t.Fatal("blown deadline did not clear the hung peer's liveness bit")
			}
			if sys.peers[8].Transport().Counters().Timeouts.Value() == 0 {
				t.Fatal("timeout not counted by the transport")
			}
			if sys.peers[8].Stats().PeersDown.Load() == 0 {
				t.Fatal("peers-down counter not advanced")
			}
		}},

		{name: "dead child during update fan-out: branch re-routed, not dropped", run: func(t *testing.T) {
			// Copies on the chain P(4) → P(5) → P(7). P(5) is unreachable
			// for every kind: the update must re-route P(5)'s branch
			// through its expanded children list so P(7) is rewritten
			// instead of silently keeping the stale copy.
			sys := startFaultSystem(t, 4, 0, 16, hashring.Fixed(4), tightTransport())
			if err := NewClient(sys.addr(2)).Insert("f", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := NewClient(sys.addr(5)).Store("f", []byte("v1"), 1, true); err != nil {
				t.Fatal(err)
			}
			if err := NewClient(sys.addr(7)).Store("f", []byte("v1"), 1, true); err != nil {
				t.Fatal(err)
			}
			sys.faults.Add(transport.Rule{Addr: sys.addr(5), Drop: true})
			updated, err := NewClient(sys.addr(11)).Update("f", []byte("v2"))
			if err != nil {
				t.Fatal(err)
			}
			if updated != 2 {
				t.Fatalf("updated %d copies, want 2 (P(4) and re-routed P(7))", updated)
			}
			for _, pid := range []bitops.PID{4, 7} {
				f, ok := sys.peers[pid].store.Peek("f")
				if !ok || !bytes.Equal(f.Data, []byte("v2")) {
					t.Fatalf("P(%d) copy stale after fan-out around dead P(5): %+v", pid, f)
				}
			}
			// The unreachable peer's copy is the only stale one.
			if f, _ := sys.peers[5].store.Peek("f"); !bytes.Equal(f.Data, []byte("v1")) {
				t.Fatalf("P(5) should still hold v1, got %+v", f)
			}
		}},

		{name: "flapping peer: down after N failures, restored on recovery", run: func(t *testing.T) {
			// P(6) is unreachable for exactly threshold probes, then
			// answers again: the detector must declare it down once, and
			// the first successful exchange must restore its bit.
			tcfg := tightTransport()
			tcfg.FailThreshold = 2
			sys := startFaultSystem(t, 4, 0, 16, hashring.Fixed(4), tcfg)
			sys.faults.Add(transport.Rule{Addr: sys.addr(6), Drop: true, Times: 2})
			obs := sys.peers[2]
			if err := obs.Probe(6); err == nil {
				t.Fatal("first probe of a dropped peer succeeded")
			}
			if !obs.IsLive(6) {
				t.Fatal("one failure below threshold already cleared the bit")
			}
			if err := obs.Probe(6); err == nil {
				t.Fatal("second probe of a dropped peer succeeded")
			}
			if obs.IsLive(6) || !obs.Detector().Down(6) {
				t.Fatal("threshold failures did not clear the liveness bit")
			}
			// The fault budget is exhausted: the peer has recovered.
			if err := obs.Probe(6); err != nil {
				t.Fatalf("probe after recovery: %v", err)
			}
			if !obs.IsLive(6) || obs.Detector().Down(6) {
				t.Fatal("successful exchange did not restore the liveness bit")
			}
			if obs.Stats().PeersUp.Load() != 1 || obs.Stats().PeersDown.Load() != 1 {
				t.Fatalf("flip counters = down %d / up %d, want 1/1",
					obs.Stats().PeersDown.Load(), obs.Stats().PeersUp.Load())
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, sc.run)
	}
}

// TestKillPeerMidRunRejoinNoLeaks is the acceptance scenario: a replica
// holder is killed mid-run with no registration; (a) a get on the
// replicated file still succeeds via fallback within 2× the RPC deadline,
// (b) the failure detector clears the dead peer's liveness bit and a
// rejoin restores it, and (c) the whole exercise leaks no goroutines.
func TestKillPeerMidRunRejoinNoLeaks(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	func() {
		const m, b = 4, 1
		tcfg := tightTransport()
		faults := transport.NewFaults()
		peers := map[bitops.PID]*Peer{}
		addrs := map[bitops.PID]string{}
		for i := 0; i < 16; i++ {
			pid := bitops.PID(i)
			p, err := Listen(Config{PID: pid, M: m, B: b, Hasher: hashring.Fixed(4), Transport: tcfg, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			peers[pid] = p
			addrs[pid] = p.Addr()
		}
		defer func() {
			for _, p := range peers {
				p.Close()
			}
		}()
		for _, p := range peers {
			p.SetAddrs(addrs)
		}
		if err := NewClient(peers[1].Addr()).Insert("f", []byte("v")); err != nil {
			t.Fatal(err)
		}
		var holders []bitops.PID
		for pid, p := range peers {
			if p.HasFile("f") {
				holders = append(holders, pid)
			}
		}
		if len(holders) != 2 {
			t.Fatalf("holders = %v", holders)
		}

		// Kill one holder mid-run: no Leave, no ReportFailure.
		victim := holders[0]
		victimPeer := peers[victim]
		delete(peers, victim)
		victimPeer.Close()

		// (a) A get from the dead holder's own subtree succeeds via the
		// fallback within the deadline budget.
		v := peers[holders[1]].view(4)
		var origin bitops.PID
		for pid := range peers {
			if v.SubtreeID(pid) == v.SubtreeID(victim) {
				origin = pid
				break
			}
		}
		start := time.Now()
		res, err := NewClient(peers[origin].Addr()).Get("f")
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("get after killing P(%d): %v", victim, err)
		}
		if !bytes.Equal(res.Data, []byte("v")) {
			t.Fatalf("get = %+v", res)
		}
		if elapsed > 2*tcfg.RPCTimeout {
			t.Fatalf("fallback get took %v, want < 2× the %v deadline", elapsed, tcfg.RPCTimeout)
		}

		// (b) The failure detector cleared the bit on the peer that hit
		// the dead holder.
		detected := 0
		for _, p := range peers {
			if !p.IsLive(victim) {
				detected++
			}
		}
		if detected == 0 {
			t.Fatalf("no surviving peer cleared P(%d)'s liveness bit", victim)
		}

		// The peer rejoins under the same PID: the register-live broadcast
		// must restore the bit everywhere, superseding detector history.
		rejoined, err := Listen(Config{PID: victim, M: m, B: b, Hasher: hashring.Fixed(4), Transport: tcfg, Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		peers[victim] = rejoined
		if err := rejoined.Join(peers[holders[1]].Addr()); err != nil {
			t.Fatal(err)
		}
		for pid, p := range peers {
			if !p.IsLive(victim) {
				t.Fatalf("P(%d) still sees rejoined P(%d) as dead", pid, victim)
			}
		}
		// And the file still serves from everywhere, including the
		// rejoined peer.
		for pid := range peers {
			if _, err := NewClient(peers[pid].Addr()).Get("f"); err != nil {
				t.Fatalf("get via P(%d) after rejoin: %v", pid, err)
			}
		}
	}()

	// (c) Everything shut down: no goroutine may outlive its peer. Give
	// the runtime a moment to reap handler goroutines unblocked by the
	// closes above.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", baseline, g, buf[:runtime.Stack(buf, true)])
	}
}

// TestUpdateDeleteBroadcastSymmetry is the regression for the historical
// asymmetry between the update and delete fan-outs: update did not skip
// the peer's own PID in expanded children lists where delete did, so the
// two paths could diverge (self-RPC, double counting) when the broadcast
// started at a dead root's expanded children. Both now share one
// broadcast/deliver path; with the tree root dead and the initiator
// itself on the root's expanded children list, both must touch exactly
// the surviving copies, once each.
func TestUpdateDeleteBroadcastSymmetry(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Replica chain under the root: P(4) (inserted) → P(5) → P(7).
	NewClient(peers[5].Addr()).Store("f", []byte("v1"), 1, true)
	NewClient(peers[7].Addr()).Store("f", []byte("v1"), 1, true)

	// The tree root P(4) dies with a registration: every broadcast now
	// starts at its expanded children list, which includes P(5) — the
	// peer we initiate from, so the initiator delivers to itself locally.
	peers[4].Close()
	delete(peers, 4)
	peers[5].ReportFailure(4)

	updated, err := NewClient(peers[5].Addr()).Update("f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if updated != 2 {
		t.Fatalf("updated %d copies, want exactly 2 (P(5), P(7)) — no double count", updated)
	}
	for _, pid := range []bitops.PID{5, 7} {
		f, ok := peers[pid].store.Peek("f")
		if !ok || !bytes.Equal(f.Data, []byte("v2")) {
			t.Fatalf("P(%d) = %+v", pid, f)
		}
	}

	removed, err := NewClient(peers[5].Addr()).Delete("f")
	if err != nil {
		t.Fatal(err)
	}
	if removed != updated {
		t.Fatalf("delete removed %d, update touched %d — paths diverged", removed, updated)
	}
	for pid, p := range peers {
		if p.HasFile("f") {
			t.Fatalf("copy survived at P(%d)", pid)
		}
	}
}
