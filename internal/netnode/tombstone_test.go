package netnode

import (
	"bytes"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/store"
)

// deleteWithStraggler builds the resurrection shape: insert under B=1
// (two holders), delete cluster-wide, then re-plant the pre-delete copy
// on one holder — the peer that slept through the delete broadcast and
// rejoined with its old inventory (Put clears its own tombstone, exactly
// as a fresh process would have none). Returns the straggler, the other
// (tombstoned) holder, and the erased copy's version.
func deleteWithStraggler(t *testing.T, peers map[bitops.PID]*Peer) (straggler, tombstoned bitops.PID, oldVersion uint64) {
	t.Helper()
	cl := NewClient(peers[0].Addr())
	if err := cl.Insert("f", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	f0, _ := peers[holders[0]].store.Peek("f")
	if n, err := cl.Delete("f"); err != nil || n != 2 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	if left := holdersOf(peers, "f"); len(left) != 0 {
		t.Fatalf("copies survived the delete: %v", left)
	}
	tv, dead := peers[holders[1]].store.TombVersion("f")
	if !dead || tv <= f0.Version {
		t.Fatalf("tombstone at P(%d): version %d, %v; want > %d", holders[1], tv, dead, f0.Version)
	}
	peers[holders[0]].store.Put(store.File{Name: "f", Data: []byte("doomed"), Version: f0.Version}, store.Inserted)
	return holders[0], holders[1], f0.Version
}

func TestRepairErasesResurrectedCopy(t *testing.T) {
	// The straggler's own repair round probes the surviving holder, learns
	// the name was deleted at a version its copy does not supersede, and
	// erases the copy instead of pushing it back — no resurrection.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	straggler, _, _ := deleteWithStraggler(t, peers)

	var sampler repair.Sampler
	if n := peers[straggler].RepairOnce(&sampler, nil, -1); n != 1 {
		t.Fatalf("RepairOnce repaired %d, want 1 (the erase)", n)
	}
	if left := holdersOf(peers, "f"); len(left) != 0 {
		t.Fatalf("deleted name resurrected at %v", left)
	}
	if _, dead := peers[straggler].store.TombVersion("f"); !dead {
		t.Fatal("straggler did not adopt the tombstone")
	}
	if got := peers[straggler].Stats().RepairErased.Load(); got != 1 {
		t.Fatalf("RepairErased = %d, want 1", got)
	}
	if got := peers[straggler].Stats().Repaired.Load(); got != 0 {
		t.Fatalf("Repaired = %d, want 0 (the corpse must not be pushed)", got)
	}
	// Steady state: nothing left to repair, nothing comes back.
	if n := peers[straggler].RepairOnce(&sampler, nil, -1); n != 0 {
		t.Fatalf("second round repaired %d", n)
	}
}

func TestDigestSyncDoesNotResurrectDeletedName(t *testing.T) {
	// The other direction: the tombstoned holder digests against the
	// straggler, whose answer offers the stale copy. The tombstone must
	// win — pulling the corpse would undo the delete.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	straggler, tombstoned, _ := deleteWithStraggler(t, peers)

	if n := peers[tombstoned].DigestSync(straggler, nil, 32); n != 0 {
		t.Fatalf("digest pulled %d deleted copies", n)
	}
	if peers[tombstoned].store.Has("f") {
		t.Fatal("tombstoned holder pulled the deleted name back")
	}
	if _, dead := peers[tombstoned].store.TombVersion("f"); !dead {
		t.Fatal("tombstone lost during digest exchange")
	}
}

func TestStorePushIsVersionGated(t *testing.T) {
	// A KindStore behind the current copy (the probe-then-push TOCTOU:
	// repair probed, the copy went newer, the push lands late) must not
	// clobber. The holder answers OK with the surviving version — the
	// name is present at least as new, which is all the pusher wanted.
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[0].Addr())
	if err := cl.Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	old, _ := peers[4].store.Peek("f")
	if _, err := cl.Update("f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	cur, _ := peers[4].store.Peek("f")
	if cur.Version <= old.Version {
		t.Fatalf("precondition: update did not advance the version (%d -> %d)", old.Version, cur.Version)
	}

	resp, err := Call(peers[4].Addr(), &msg.Request{Kind: msg.KindStore, Name: "f", Data: []byte("stale"), Version: old.Version})
	if err != nil || !resp.OK {
		t.Fatalf("stale push: %+v, %v", resp, err)
	}
	if resp.Version != cur.Version {
		t.Fatalf("stale push answered version %d, want surviving %d", resp.Version, cur.Version)
	}
	f, _ := peers[4].store.Peek("f")
	if !bytes.Equal(f.Data, []byte("v2")) || f.Version != cur.Version {
		t.Fatalf("stale push clobbered the newer copy: %+v", f)
	}
	// A strictly newer push still applies.
	resp, err = Call(peers[4].Addr(), &msg.Request{Kind: msg.KindStore, Name: "f", Data: []byte("v3"), Version: cur.Version + 1})
	if err != nil || !resp.OK || resp.Version != cur.Version+1 {
		t.Fatalf("newer push: %+v, %v", resp, err)
	}
	f, _ = peers[4].store.Peek("f")
	if !bytes.Equal(f.Data, []byte("v3")) {
		t.Fatalf("newer push refused: %+v", f)
	}
}

func TestStorePushRefusedByTombstone(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[0].Addr())
	if err := cl.Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	old, _ := peers[4].store.Peek("f")
	if _, err := cl.Delete("f"); err != nil {
		t.Fatal(err)
	}

	resp, err := Call(peers[4].Addr(), &msg.Request{Kind: msg.KindStore, Name: "f", Data: []byte("corpse"), Version: old.Version})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Err != ErrTombstoned {
		t.Fatalf("stale push after delete: %+v", resp)
	}
	if resp.Version <= old.Version {
		t.Fatalf("tombstone refusal carried version %d, want > %d", resp.Version, old.Version)
	}
	if peers[4].store.Has("f") {
		t.Fatal("refused push still landed")
	}
	// A push stamped above the tombstone supersedes the deletion.
	resp, err = Call(peers[4].Addr(), &msg.Request{Kind: msg.KindStore, Name: "f", Data: []byte("reborn"), Version: resp.Version + 1})
	if err != nil || !resp.OK {
		t.Fatalf("superseding push: %+v, %v", resp, err)
	}
	if f, ok := peers[4].store.Peek("f"); !ok || !bytes.Equal(f.Data, []byte("reborn")) {
		t.Fatalf("superseding push not applied: %+v, %v", f, ok)
	}
}

func TestReinsertAfterDeleteFromLaggingPeer(t *testing.T) {
	// Re-insert through a peer whose Lamport clock never saw the delete
	// (it held no copy, so the broadcast never reached its clock). The
	// first placement attempt lands below the tombstone and is refused;
	// handleInsert must merge the refusal's version, restamp strictly
	// above it, and re-place — the new copy supersedes the delete at
	// every holder instead of being erased by anti-entropy later.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	cl := NewClient(peers[0].Addr())
	if err := cl.Insert("f", []byte("first")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	if _, err := cl.Delete("f"); err != nil {
		t.Fatal(err)
	}
	tombV, _ := peers[holders[0]].store.TombVersion("f")

	var lag bitops.PID
	found := false
	for pid := range peers {
		if pid == 0 || pid == holders[0] || pid == holders[1] {
			continue
		}
		lag, found = pid, true
		break
	}
	if !found {
		t.Fatal("no lagging peer available")
	}
	if err := NewClient(peers[lag].Addr()).Insert("f", []byte("second")); err != nil {
		t.Fatalf("re-insert through lagging P(%d): %v", lag, err)
	}
	if got := holdersOf(peers, "f"); len(got) != 2 {
		t.Fatalf("re-insert placed %d copies, want 2", len(got))
	}
	res, err := cl.Get("f")
	if err != nil || !bytes.Equal(res.Data, []byte("second")) {
		t.Fatalf("get after re-insert: %+v, %v", res, err)
	}
	if res.Version <= tombV {
		t.Fatalf("re-insert version %d not above tombstone %d", res.Version, tombV)
	}
}

func TestRepairSkipsVersionlessHasAnswer(t *testing.T) {
	// A pre-repair holder answers KindHas without a version (the legacy
	// frame shape). Existence is proven but staleness is not comparable:
	// treating Version 0 as "older than everything" would re-push the
	// same copy every round forever. The round must count a skip instead.
	legacy, err := Listen(Config{PID: 3, M: 4, B: 1, Hasher: hashring.FNV{}, DisableLocate: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { legacy.Close() })
	// PID 4 differs from 3 in its low bit, so under B=1 the two peers sit
	// in different subtrees for every lookup tree (SubtreeID is the low
	// bit of the VID, which XORs the shared root complement away).
	modern, err := Listen(Config{PID: 4, M: 4, B: 1, Hasher: hashring.FNV{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { modern.Close() })
	addrs := map[bitops.PID]string{3: legacy.Addr(), 4: modern.Addr()}
	legacy.SetAddrs(addrs)
	modern.SetAddrs(addrs)

	// Find a name whose lookup tree makes each peer the required holder
	// of its own subtree, so modern's repair round probes legacy.
	name := ""
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("k%d", i)
		v := modern.view(modern.hasher.Target(cand, 4))
		if requiredHolder(v, 3) && requiredHolder(v, 4) {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no name places both peers as required holders")
	}
	f := store.File{Name: name, Data: []byte("same"), Version: 3}
	legacy.store.Put(f, store.Inserted)
	modern.store.Put(f, store.Inserted)

	var sampler repair.Sampler
	for round := 0; round < 3; round++ {
		if n := modern.RepairOnce(&sampler, nil, -1); n != 0 {
			t.Fatalf("round %d against version-less holder repaired %d", round, n)
		}
	}
	if modern.Stats().RepairProbes.Load() == 0 {
		t.Fatal("precondition: no probe reached the legacy holder")
	}
	if modern.Stats().RepairSkipped.Load() == 0 {
		t.Fatal("version-less answers not counted as skipped")
	}
	if modern.Stats().Repaired.Load() != 0 {
		t.Fatal("repair re-pushed against a version-less holder")
	}
	if got, _ := legacy.store.Peek(name); got.Version != 3 {
		t.Fatalf("legacy copy disturbed: %+v", got)
	}
}
