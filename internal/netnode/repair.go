package netnode

// The anti-entropy repair loop (docs/REPAIR.md): §7's self-organization
// handles one polite leave or one detected failure, but under sustained
// churn the 2^b subtree copies silently erode — a crash during another
// crash's recovery leaves names under-replicated with nobody assigned to
// notice. This file makes every peer notice for itself: a background
// loop samples names the peer holds, verifies each required subtree
// still has a live copy (cheap version-carrying KindHas probes at the
// placement the bit arithmetic names), and re-inserts what is missing —
// all under a token-bucket byte budget so repair never starves
// foreground traffic. A digest exchange (msg.KindDigest) between subtree
// peers bounds the rejoin cost: a peer that comes back empty pulls only
// the delta its partner's bucket folds flag, instead of waiting for
// per-name probes to find every hole.

import (
	"hash/crc32"
	"sync"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/repair"
	"lesslog/internal/store"
	"lesslog/internal/stream"
)

// requiredHolder reports whether q is a required placement under view v
// — the primary holder of its own subtree for the viewed name's tree.
// This is the §2.2 placement rule run in reverse: repair pushes only to
// (and digests only cover) positions the insert path itself would pick.
func requiredHolder(v ptree.View, q bitops.PID) bool {
	h, ok := v.PrimaryHolder(v.SubtreeID(q))
	return ok && h == q
}

// RepairOnce runs one anti-entropy round: up to sample names from the
// local inventory are verified — for every subtree of their lookup tree,
// the current primary holder must hold a copy at least as new as ours —
// and divergence is repaired in whichever direction the versions say:
// missing or stale at the holder pushes our copy; newer at the holder
// pulls; tombstoned at the holder (deleted at a version our copy does
// not supersede) erases our copy, so a peer that slept through a delete
// broadcast propagates the deletion instead of resurrecting the name. A
// version-less has answer (a pre-repair responder) proves existence but
// cannot be compared, so only the existence half is enforced against it.
// Probes and pushes spend from budget; denied work is deferred to a
// later round. Returns the number of copies repaired (pushed, pulled or
// erased). Exposed for tests and tooling; StartRepair drives it.
func (p *Peer) RepairOnce(sampler *repair.Sampler, budget *repair.Budget, sample int) int {
	// Head-sample the whole round into the trace plane: every probe and
	// push this round carries the round's TraceID and the HopRepair root,
	// and each responder's hop comes back in its answer — assembling a
	// star rooted at this peer (docs/OBSERVABILITY.md).
	tr := p.newRepairTrace()
	repaired := 0
	for _, name := range sampler.Next(p.store.AllNames(), sample) {
		f, ok := p.store.Peek(name)
		if !ok {
			continue // evicted since sampling
		}
		target := p.hasher.Target(name, p.cfg.M)
		v := p.view(target)
	subtrees:
		for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
			h, live := v.PrimaryHolder(sid)
			if !live || h == p.cfg.PID {
				continue
			}
			if !budget.Allow(repair.ProbeCost) {
				p.stats.RepairSkipped.Add(1)
				continue
			}
			p.stats.RepairProbes.Add(1)
			probe := &msg.Request{Kind: msg.KindHas, Name: name}
			tr.stamp(probe)
			resp, err := p.call(h, probe)
			if err != nil {
				continue // detector fed; next round sees the updated view
			}
			tr.collect(resp)
			switch {
			case !resp.OK && resp.Version > 0 && resp.Version >= f.Version:
				// The holder tombstoned the name at a version our copy does
				// not supersede: the delete reached it but missed us. Apply
				// the deletion locally — push the tombstone on, not the corpse.
				if p.applyTombstone(name, resp.Version) {
					repaired++
				}
				break subtrees // the name is gone locally; stop probing its subtrees
			case !resp.OK, resp.Version > 0 && resp.Version < f.Version:
				// Missing at its required holder (or tombstoned older than
				// our copy — a re-insert the holder missed), or versioned
				// stale: push our copy. The holder re-gates the apply
				// (handleStore), so a copy that went newer between this
				// probe and the push survives.
				if !budget.Allow(len(f.Data)) {
					p.stats.RepairSkipped.Add(1)
					continue
				}
				sreq, serr := p.pushFrame(f)
				if serr != nil {
					continue
				}
				tr.stamp(sreq)
				if r, err := p.callTimeout(h, sreq, notifyDeadline(sreq)); err == nil {
					tr.collect(r)
					if r.OK && r.Version == f.Version {
						p.stats.Repaired.Add(1)
						repaired++
						p.log.Info("repair: re-established copy", "name", name, "on", uint32(h))
					}
				}
			case resp.OK && resp.Version == 0:
				// A pre-repair responder: the copy exists but carries no
				// version to compare. Pushing would re-push every round
				// (the answer never changes), so leave staleness to the
				// update broadcast and count the deferred comparison.
				p.stats.RepairSkipped.Add(1)
			case resp.Version > f.Version:
				// The holder is newer than us — we missed an update
				// broadcast. Pull rather than clobber.
				if p.pullCopy(name, h, budget) {
					repaired++
				}
			}
		}
	}
	p.stats.RepairDeficit.Store(budget.Deficit())
	// TTFR bookkeeping: a round that moved copies opens (or extends) a
	// divergence episode; a clean round closes it.
	p.ttfr.Note(repaired > 0, time.Now())
	tr.record(p, "repair", "")
	return repaired
}

// pushFrame shapes one repair push. A whole-frame body rides a KindStore
// carrying the copy directly. A body over the frame cap cannot — so it
// rides the write plane's direct-notify form instead: a payload-free
// KindNotify naming this peer as the only source, which the holder
// answers by pulling the body in chunks and applying it under the same
// version/tombstone gating as a store (notifyStore). A holder predating
// the notify plane refuses unknown-kind, exactly like a pre-repair
// holder refuses a probe — the copy stays deferred, never corrupted.
func (p *Peer) pushFrame(f store.File) (*msg.Request, error) {
	if len(f.Data) <= msg.MaxData {
		return &msg.Request{Kind: msg.KindStore, Name: f.Name, Data: f.Data, Version: f.Version}, nil
	}
	body, err := msg.AppendNotifyReq(nil, &msg.NotifyReq{
		TotalSize: uint64(len(f.Data)),
		FileCRC:   crc32.Checksum(f.Data, castagnoli),
		Sources:   []msg.Holder{{PID: uint32(p.cfg.PID), Addr: p.Addr(), Version: f.Version}},
	})
	if err != nil {
		return nil, err
	}
	return &msg.Request{Kind: msg.KindNotify, Name: f.Name, Version: f.Version, Data: body}, nil
}

// applyTombstone erases the local copy of name because a required holder
// reported it deleted at version; the local tombstone then propagates
// the deletion onward through this peer's own has answers. Serialized
// against Leave like every local store mutation on a propagation path.
func (p *Peer) applyTombstone(name string, version uint64) bool {
	p.propMu.RLock()
	removed := p.store.Tombstone(name, version, time.Now())
	p.propMu.RUnlock()
	if !removed {
		return false
	}
	p.mergeClock(version)
	p.stats.RepairErased.Add(1)
	p.log.Info("repair: erased deleted copy", "name", name, "version", version)
	return true
}

// pullCopy fetches name's payload directly from holder h (local-only
// get, the locate-then-fetch data plane's fetch half) and applies it
// locally: Update for an existing copy (strictly-newer semantics, so a
// concurrent broadcast cannot be clobbered by a stale pull) or a
// tombstone-gated inserted PutNewer when we hold nothing — a pull must
// not resurrect a name this peer saw deleted after the partner wrote its
// copy. The payload is charged to the budget after the fact with Spend
// (its size is only known on arrival): the bucket goes negative and
// repays itself from refill, so large pulls stall later rounds instead
// of riding free past the budget.
func (p *Peer) pullCopy(name string, h bitops.PID, budget *repair.Budget) bool {
	if !budget.Allow(repair.ProbeCost) {
		p.stats.RepairSkipped.Add(1)
		return false
	}
	resp, err := p.call(h, &msg.Request{Kind: msg.KindGet, Flags: msg.FlagLocalOnly, Name: name})
	if err != nil {
		return false
	}
	if !resp.OK {
		// A body over the frame cap cannot ride a whole-frame get
		// (ErrOverFrame): pull it through the chunk plane instead, pinned
		// to the version the refusal reported so a mid-pull update cannot
		// splice.
		if resp.Err != ErrOverFrame {
			return false
		}
		addr, ok := p.rt().addrs[h]
		if !ok {
			return false
		}
		data, ver, ferr := p.puller.Fetch(name, resp.Version,
			[]stream.Source{{PID: uint32(h), Addr: addr}})
		if ferr != nil {
			return false
		}
		resp = &msg.Response{OK: true, Version: ver, Data: data}
	}
	budget.Spend(len(resp.Data))
	p.propMu.RLock() // local apply serializes against Leave, as on broadcast paths
	applied := false
	if _, have := p.store.Peek(name); have {
		applied = p.store.Update(name, resp.Data, resp.Version)
	} else {
		_, res := p.store.PutNewer(store.File{Name: name, Data: resp.Data, Version: resp.Version}, store.Inserted)
		applied = res == store.PutApplied
	}
	p.propMu.RUnlock()
	if !applied {
		return false // a concurrent update or deletion already superseded the pull
	}
	p.mergeClock(resp.Version)
	p.stats.RepairPulled.Add(1)
	p.log.Info("repair: pulled newer copy", "name", name, "from", uint32(h))
	return true
}

// DigestSync runs one digest exchange with partner: our whole name-set,
// folded into width buckets, goes out in one KindDigest frame; the
// partner answers with the (name, version) entries it holds — restricted
// to names this peer is a required holder for — in buckets whose folds
// differ; we pull the ones we are missing or hold stale. Cost scales
// with divergence: identical inventories exchange width*8 bytes and stop.
// Returns copies pulled. A legacy partner (unknown-kind answer) is
// counted skipped and left for per-name probes to cover.
func (p *Peer) DigestSync(partner bitops.PID, budget *repair.Budget, width int) int {
	tr := p.newRepairTrace()
	digest := make([]uint64, width)
	for _, name := range p.store.AllNames() {
		if f, ok := p.store.Peek(name); ok {
			repair.Fold(digest, name, f.Version)
		}
	}
	data, err := msg.AppendDigest(nil, digest)
	if err != nil {
		return 0
	}
	if !budget.Allow(repair.ProbeCost + len(data)) {
		p.stats.RepairSkipped.Add(1)
		return 0
	}
	dreq := &msg.Request{Kind: msg.KindDigest, Origin: uint32(p.cfg.PID), Data: data}
	tr.stamp(dreq)
	resp, err := p.call(partner, dreq)
	if err != nil {
		return 0
	}
	tr.collect(resp)
	p.stats.DigestBytes.Add(uint64(len(data)))
	if !resp.OK {
		if msg.IsUnknownKind(resp.Err) {
			p.stats.RepairSkipped.Add(1) // pre-repair partner; probes still cover us
		}
		return 0
	}
	p.stats.DigestBytes.Add(uint64(len(resp.Data)))
	entries, err := msg.DecodeDigestEntries(resp.Data)
	if err != nil {
		p.log.Warn("digest: corrupt entry frame", "from", uint32(partner), "err", err)
		return 0
	}
	pulled := 0
	for _, e := range entries {
		// The responder filtered to names we should hold, but its view may
		// lag ours: re-check placement locally before storing, so a stale
		// responder cannot plant copies on a peer that no longer owns them.
		v := p.view(p.hasher.Target(e.Name, p.cfg.M))
		if !requiredHolder(v, p.cfg.PID) {
			continue
		}
		if f, have := p.store.Peek(e.Name); have && f.Version >= e.Version {
			continue
		}
		// A tombstone at least as new as the offer means this peer saw the
		// name deleted after the partner wrote that copy — a partner that
		// slept through the delete must not push the corpse back.
		if tv, dead := p.store.TombVersion(e.Name); dead && tv >= e.Version {
			continue
		}
		if p.pullCopy(e.Name, partner, budget) {
			pulled++
		}
	}
	p.stats.RepairDeficit.Store(budget.Deficit())
	if pulled > 0 {
		// Only divergence is noted here: convergence calls belong to the
		// per-name probe pass (RepairOnce), so a clean digest cannot close
		// an episode the probes still see open.
		p.ttfr.Note(true, time.Now())
	}
	tr.record(p, "digest", "")
	return pulled
}

// handleDigest answers a partner's digest exchange: fold our own
// holdings — restricted to names the requester is a required holder for —
// into the requester's bucket partition, and return the (name, version)
// entries in buckets whose folds differ. Restricting to the requester's
// required names is what makes the digest converge: without it, two
// peers with legitimately disjoint inventories would re-flag the same
// buckets forever.
func (p *Peer) handleDigest(req *msg.Request) *msg.Response {
	start := time.Now()
	remote, err := msg.DecodeDigest(req.Data)
	if err != nil {
		return &msg.Response{Err: "netnode: digest decode: " + err.Error()}
	}
	p.stats.DigestBytes.Add(uint64(len(req.Data)))
	requester := bitops.PID(req.Origin)
	type held struct {
		name    string
		version uint64
	}
	local := make([]uint64, len(remote))
	var candidates []held
	for _, name := range p.store.AllNames() {
		f, ok := p.store.Peek(name)
		if !ok {
			continue
		}
		v := p.view(p.hasher.Target(name, p.cfg.M))
		if !requiredHolder(v, requester) {
			continue
		}
		repair.Fold(local, name, f.Version)
		candidates = append(candidates, held{name: name, version: f.Version})
	}
	diff := repair.DiffBuckets(local, remote)
	if len(diff) == 0 {
		empty, _ := msg.AppendDigestEntries(nil, nil)
		resp := &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: empty}
		if req.Flags&msg.FlagTrace != 0 {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, time.Since(start))
		}
		return resp
	}
	inDiff := make(map[int]bool, len(diff))
	for _, b := range diff {
		inDiff[b] = true
	}
	var entries []msg.DigestEntry
	for _, c := range candidates {
		if !inDiff[repair.BucketOf(c.name, len(remote))] {
			continue
		}
		entries = append(entries, msg.DigestEntry{Name: c.name, Version: c.version})
		if len(entries) == msg.MaxDigestEntries {
			break // the rest rides a later round once these converge
		}
	}
	data, err := msg.AppendDigestEntries(nil, entries)
	if err != nil {
		return &msg.Response{Err: "netnode: digest encode: " + err.Error()}
	}
	p.stats.DigestBytes.Add(uint64(len(data)))
	resp := &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
	if req.Flags&msg.FlagTrace != 0 {
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, time.Since(start))
	}
	return resp
}

// AnnounceInventory pushes this peer's entire inventory through the
// repair plane in one pass — the restart-warming half of the durable
// storage engine (docs/STORAGE.md). A peer that recovered its store from
// the log rejoins holding names the rest of the system may have
// re-replicated, aged past, or deleted while it was down; one full
// unbudgeted RepairOnce round reconciles every name in both directions
// (push what the holders lost, pull what went newer, erase what was
// deleted — recovered tombstones propagate the same way), and a digest
// exchange with the next live partner pulls back anything this peer
// should hold but its log never saw. Returns copies repaired. Join runs
// this in the background after a rejoin with recovered state; the
// steady-state loop (StartRepair) then keeps the peer converged.
func (p *Peer) AnnounceInventory() int {
	budget := repair.NewBudget(-1, 0) // one-shot warming round: unbudgeted
	repaired := p.RepairOnce(&repair.Sampler{}, budget, -1)
	var cursor int
	if partner, ok := p.nextRepairPartner(&cursor); ok {
		repaired += p.DigestSync(partner, budget, repair.DefaultBuckets)
	}
	p.log.Info("announced recovered inventory",
		"names", p.store.Len(), "tombstones", p.store.TombstoneCount(), "repaired", repaired)
	return repaired
}

// StartRepair runs the anti-entropy loop every cfg.Interval until the
// peer closes: a digest exchange with the next live partner on round 0
// (so a rejoined peer warms up within one interval) and every
// cfg.DigestEvery rounds after, plus a RepairOnce probe pass each round.
// The returned stop function halts the loop early; calling it more than
// once is safe.
func (p *Peer) StartRepair(cfg repair.Config) (stop func()) {
	cfg = cfg.WithDefaults()
	budget := repair.NewBudget(cfg.Budget, 0)
	sampler := &repair.Sampler{}
	done := make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		round := 0
		var partnerCursor int
		for {
			select {
			case <-done:
				return
			case <-p.quit:
				return
			case <-ticker.C:
				if cfg.TombstoneTTL > 0 {
					// GC horizon: a deletion old enough to have reached every
					// replica no longer needs its tombstone (docs/REPAIR.md).
					p.store.PruneTombstones(time.Now().Add(-cfg.TombstoneTTL))
				}
				if cfg.DigestEvery > 0 && round%cfg.DigestEvery == 0 {
					if partner, ok := p.nextRepairPartner(&partnerCursor); ok {
						p.DigestSync(partner, budget, cfg.Buckets)
					}
				}
				p.RepairOnce(sampler, budget, cfg.SampleSize)
				round++
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// nextRepairPartner round-robins over the live peers this node knows,
// excluding itself. The cursor advances by PID order so every live peer
// is digested against within len(peers) digest rounds.
func (p *Peer) nextRepairPartner(cursor *int) (bitops.PID, bool) {
	rt := p.rt()
	var live []bitops.PID
	for q := range rt.addrs {
		if q != p.cfg.PID && rt.live.IsLive(q) {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	sortPIDs(live)
	q := live[*cursor%len(live)]
	*cursor++
	return q, true
}

// sortPIDs orders a PID slice ascending (insertion sort: partner lists
// are a handful of entries).
func sortPIDs(pids []bitops.PID) {
	for i := 1; i < len(pids); i++ {
		for j := i; j > 0 && pids[j] < pids[j-1]; j-- {
			pids[j], pids[j-1] = pids[j-1], pids[j]
		}
	}
}
