package netnode

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/store"
)

func TestJoinBootstrapsAndRegisters(t *testing.T) {
	peers := startSystem(t, 4, 0, []bitops.PID{0, 1, 2, 3}, nil)
	joiner, err := Listen(Config{PID: 9, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	// Every existing peer (and the joiner) now knows all five members.
	for pid, p := range peers {
		rt := p.rt()
		n := rt.live.LiveCount()
		addr := rt.addrs[9]
		if n != 5 {
			t.Fatalf("P(%d) sees %d live members, want 5", pid, n)
		}
		if addr != joiner.Addr() {
			t.Fatalf("P(%d) has wrong address for the joiner: %q", pid, addr)
		}
	}
	n := joiner.rt().live.LiveCount()
	if n != 5 {
		t.Fatalf("joiner sees %d members", n)
	}
}

func TestJoinTriggersFileHandoff(t *testing.T) {
	// The paper's §5.1 example over sockets: P(4) and P(5) absent, ψ(f)
	// targets P(4), so the file sits at P(6). When P(5) joins, P(6) must
	// hand the copy over — P(5)'s VID outranks P(6)'s in P(4)'s tree.
	var pids []bitops.PID
	for i := 0; i < 16; i++ {
		if i != 4 && i != 5 {
			pids = append(pids, bitops.PID(i))
		}
	}
	peers := startSystem(t, 4, 0, pids, hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !peers[6].store.Has("f") {
		t.Fatal("precondition: file not at P(6)")
	}
	joiner, err := Listen(Config{PID: 5, M: 4, Hasher: hashring.Fixed(4)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(peers[3].Addr()); err != nil {
		t.Fatal(err)
	}
	if peers[6].store.Has("f") {
		t.Fatal("P(6) kept the copy after handoff")
	}
	f, ok := joiner.store.Peek("f")
	if !ok || !bytes.Equal(f.Data, []byte("x")) {
		t.Fatalf("joiner copy = %+v, %v", f, ok)
	}
	if k, _ := joiner.store.KindOf("f"); k != store.Inserted {
		t.Fatal("handed-off copy lost its inserted kind")
	}
	// And gets now resolve at P(5).
	res, err := NewClient(peers[8].Addr()).Get("f")
	if err != nil || res.ServedBy != 5 {
		t.Fatalf("get = %+v, %v", res, err)
	}
}

func TestLeaveHandsOffInsertedFiles(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("f", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := peers[4].Leave(); err != nil {
		t.Fatal(err)
	}
	peers[4].Close()
	// The copy moved to the next primary, P(5) (VID 1110).
	if !peers[5].store.Has("f") {
		t.Fatal("copy not handed to P(5)")
	}
	// Everyone marked P(4) dead; gets keep working.
	res, err := NewClient(peers[11].Addr()).Get("f")
	if err != nil || res.ServedBy != 5 {
		t.Fatalf("get after leave = %+v, %v", res, err)
	}
}

func TestLeaveFallsBackWhenSuccessorIsDead(t *testing.T) {
	// Double failure during departure: P(4) leaves gracefully while its
	// §5.2 handoff successor P(5) (VID 1110 in P(4)'s tree) has already
	// crashed — silently, so P(4)'s first view still believes it live. The
	// failed handoff call must feed the detector and the retry's fresh
	// view must pick the §3 FINDLIVENODE fallback P(6) instead of
	// aborting the leave or stranding the copy.
	sys := startFaultSystem(t, 4, 0, 16, hashring.Fixed(4), tightTransport())
	if err := NewClient(sys.addr(2)).Insert("f", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if !sys.peers[4].store.Has("f") {
		t.Fatal("precondition: file not at P(4)")
	}
	five := sys.peers[5]
	delete(sys.peers, 5)
	five.Close() // crash, no registration broadcast
	if err := sys.peers[4].Leave(); err != nil {
		t.Fatalf("leave with dead successor: %v", err)
	}
	f, ok := sys.peers[6].store.Peek("f")
	if !ok || !bytes.Equal(f.Data, []byte("keep")) {
		t.Fatalf("fallback copy at P(6) = %+v, %v", f, ok)
	}
	if k, _ := sys.peers[6].store.KindOf("f"); k != store.Inserted {
		t.Fatal("fallback copy lost its inserted kind")
	}
	if sys.peers[4].rt().live.IsLive(5) {
		t.Fatal("failed handoff did not flip the dead successor's liveness bit")
	}
}

func TestLeaveDoesNotLoseRacingUpdate(t *testing.T) {
	// Leave vs an in-flight update broadcast (the propMu serialization):
	// a writer hammers rewrites of the one copy at P(4) while P(4) leaves.
	// Every update the client saw succeed must be reflected at the
	// successor — without the handoff/propagation serialization, Leave can
	// snapshot the copy just before a rewrite lands and hand the stale
	// bytes to P(5), which then silently masks the acknowledged write.
	// Run with -race: the window is also a pure data race on the store.
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[2].Addr())
	if err := cl.Insert("f", []byte("v0000")); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	lastOK := "v0000" // zero-padded: payload order is lexicographic order
	go func() {
		defer close(done)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data := fmt.Sprintf("v%04d", i)
			if _, err := cl.Update("f", []byte(data)); err == nil {
				lastOK = data
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the writer reach mid-broadcast
	if err := peers[4].Leave(); err != nil {
		t.Fatal(err)
	}
	peers[4].Close()
	close(stop)
	<-done
	f, ok := peers[5].store.Peek("f")
	if !ok {
		t.Fatal("copy did not survive the leave")
	}
	if string(f.Data) < lastOK {
		t.Fatalf("successor holds %q, older than acknowledged update %q", f.Data, lastOK)
	}
}

func TestFailureRecoveryAcrossSubtrees(t *testing.T) {
	// B = 1 over sockets: two copies. Kill one holder without warning;
	// ReportFailure from any peer restores the copy in the orphaned
	// subtree from the sibling holder.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[1].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var holders []bitops.PID
	for pid, p := range peers {
		if p.store.Has("f") {
			holders = append(holders, pid)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	victim := holders[0]
	peers[victim].Close()
	delete(peers, victim)
	var reporter *Peer
	for _, p := range peers {
		reporter = p
		break
	}
	reporter.ReportFailure(victim)
	// The orphaned subtree has a fresh primary holding the file again.
	v := reporter.view(4)
	sid := v.SubtreeID(victim)
	restored := false
	for pid, p := range peers {
		if v.SubtreeID(pid) == sid && p.store.Has("f") {
			restored = true
		}
	}
	if !restored {
		t.Fatal("no copy restored in the failed subtree")
	}
	// All origins still resolve.
	for pid := range peers {
		if _, err := NewClient(peers[pid].Addr()).Get("f"); err != nil {
			t.Fatalf("get from P(%d) after failure: %v", pid, err)
		}
	}
}

func TestParseTable(t *testing.T) {
	table, err := parseTable("0 a:1\n3 b:2\n")
	if err != nil || len(table) != 2 || table[3] != "b:2" {
		t.Fatalf("table = %v, %v", table, err)
	}
	if _, err := parseTable("junk"); err == nil {
		t.Fatal("malformed table accepted")
	}
	if _, err := parseTable("x y"); err == nil {
		t.Fatal("malformed PID accepted")
	}
	if table, err := parseTable("  \n"); err != nil || len(table) != 0 {
		t.Fatalf("blank table = %v, %v", table, err)
	}
}

func TestTableRoundTrip(t *testing.T) {
	peers := startSystem(t, 3, 0, []bitops.PID{0, 2, 5}, nil)
	resp, err := Call(peers[2].Addr(), &msg.Request{Kind: msg.KindTable})
	if err != nil || !resp.OK {
		t.Fatalf("table call: %+v, %v", resp, err)
	}
	table, err := parseTable(string(resp.Data))
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 3 || table[5] != peers[5].Addr() {
		t.Fatalf("table = %v", table)
	}
}
