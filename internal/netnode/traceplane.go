package netnode

// The peer half of the always-on trace plane (docs/OBSERVABILITY.md):
// every request entering the fabric here is head-sampled 1-in-N and, when
// sampled, carries the wire trace section through whatever plane serves
// it — the lookup walk, the update/delete broadcast fan-out, the repair
// exchanges. Finished traces land in a bounded tracering.Ring, with slow
// and errored requests tail-retained even when the head sampler passed
// them by. The ring is served over the wire (msg.KindTraces) and the
// admin endpoint (/traces).

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/tracering"
)

// isEntryRequest reports whether req entered the fabric at this peer: an
// operation a client (or gateway) initiated, not an internal leg. Only
// entry requests are sampled and recorded — forwarded gets (Hops > 0),
// broadcast legs (FlagPropagate), repair pushes and probes all belong to
// a trace rooted elsewhere.
func isEntryRequest(req *msg.Request) bool {
	if req.Hops != 0 || req.Flags&msg.FlagPropagate != 0 {
		return false
	}
	switch req.Kind {
	case msg.KindGet, msg.KindLocate, msg.KindInsert, msg.KindUpdate, msg.KindDelete, msg.KindBatch:
		return true
	}
	return false
}

// nextTraceID derives a fresh non-zero trace ID from the peer's sequence
// (splitmix64 finalizer — well-spread IDs without global lock contention).
func (p *Peer) nextTraceID() uint64 {
	x := p.traceSeq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// maybeSampleEntry decides whether req's trace should be recorded at this
// peer: client-traced entry requests always are, and untraced ones are
// promoted to traced when the head sampler picks them (stamping FlagTrace
// and a fresh TraceID, so the whole downstream route cooperates).
// promoted marks the latter — the caller strips the trace section off the
// response again, so sampling stays invisible to clients that never asked
// for a trace.
func (p *Peer) maybeSampleEntry(req *msg.Request) (sampled, promoted bool) {
	if p.ring == nil || !isEntryRequest(req) {
		return false, false
	}
	if req.Flags&msg.FlagTrace != 0 {
		return true, false
	}
	if !p.sampler.Sample() {
		return false, false
	}
	req.Flags |= msg.FlagTrace
	if req.TraceID == 0 {
		req.TraceID = p.nextTraceID()
	}
	return true, true
}

// recordEntryTrace retains a finished entry request in the trace ring:
// sampled requests always, unsampled ones only when slow or errored (the
// tail the head sampler must not lose — those land hop-less, since no
// trace section traveled with them).
func (p *Peer) recordEntryTrace(req *msg.Request, resp *msg.Response, start time.Time, d time.Duration, sampled bool) {
	if p.ring == nil {
		return
	}
	if !sampled && (!isEntryRequest(req) || (resp.Err == "" && d < p.ring.Slow())) {
		return
	}
	p.ring.Record(tracering.Trace{
		ID: req.TraceID, Kind: req.Kind.String(), Name: req.Name,
		Start: start, Dur: d, Err: resp.Err, Hops: resp.Path,
	})
}

// hopCollector gathers the Hop records of one fan-out's subtree as its
// concurrent legs return. Nil collectors (untraced propagation) drop
// silently, so the broadcast path branches once at the top, not per leg.
type hopCollector struct {
	mu   sync.Mutex
	hops []msg.Hop
}

// newHopCollector returns a collector when req is traced, nil otherwise.
func newHopCollector(req *msg.Request) *hopCollector {
	if req.Flags&msg.FlagTrace == 0 {
		return nil
	}
	return &hopCollector{}
}

// add appends hops, capping at the frame limit (a truncated trace beats a
// failed response).
func (c *hopCollector) add(hops ...msg.Hop) {
	if c == nil || len(hops) == 0 {
		return
	}
	c.mu.Lock()
	if room := msg.MaxHops - len(c.hops); room > 0 {
		if len(hops) > room {
			hops = hops[:room]
		}
		c.hops = append(c.hops, hops...)
	}
	c.mu.Unlock()
}

// take returns the collected hops; nil for a nil collector.
func (c *hopCollector) take() []msg.Hop {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hops
}

// repairTrace is one sampled anti-entropy round's trace under assembly: a
// HopRepair root at this peer, plus one responder hop per traced probe,
// push or digest exchange — a star rooted at the repairing peer.
type repairTrace struct {
	id    uint64
	start time.Time
	hops  []msg.Hop
}

// newRepairTrace head-samples one repair round (or digest sync). Nil when
// tracing is off or the sampler passes.
func (p *Peer) newRepairTrace() *repairTrace {
	if p.ring == nil || !p.sampler.Sample() {
		return nil
	}
	t := &repairTrace{id: p.nextTraceID(), start: time.Now()}
	t.hops = append(t.hops, msg.Hop{
		PID: uint32(p.cfg.PID), Parent: msg.NoParent, Action: msg.HopRepair,
	})
	return t
}

// stamp marks req as part of this trace; the request carries only the
// root hop, so every responder parents directly onto the repairing peer.
func (t *repairTrace) stamp(req *msg.Request) {
	if t == nil {
		return
	}
	req.Flags |= msg.FlagTrace
	req.TraceID = t.id
	req.Path = t.hops[:1:1]
}

// collect keeps the responder hops a traced exchange brought back.
func (t *repairTrace) collect(resp *msg.Response) {
	if t == nil || resp == nil || len(resp.Path) <= 1 {
		return
	}
	if room := msg.MaxHops - len(t.hops); room > 0 {
		extra := resp.Path[1:]
		if len(extra) > room {
			extra = extra[:room]
		}
		t.hops = append(t.hops, extra...)
	}
}

// record lands the assembled round in the ring under the given kind
// ("repair" or "digest"). Rounds that never traced an exchange (nothing
// to probe, or the budget denied everything) are dropped — an empty star
// says nothing.
func (t *repairTrace) record(p *Peer, kind string, errStr string) {
	if t == nil || len(t.hops) <= 1 {
		return
	}
	p.ring.Record(tracering.Trace{
		ID: t.id, Kind: kind, Start: t.start,
		Dur: time.Since(t.start), Err: errStr, Hops: t.hops,
	})
}

// handleTraces serves the trace ring over the wire: the ring snapshot as
// JSON, the same body /traces serves over HTTP.
func (p *Peer) handleTraces() *msg.Response {
	data, err := json.Marshal(p.ring.Snapshot())
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: traces snapshot: %v", err)}
	}
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Data: data}
}

// TraceSnapshot returns the peer's trace ring contents — empty when
// tracing is disabled.
func (p *Peer) TraceSnapshot() tracering.Snapshot { return p.ring.Snapshot() }
