package netnode

// Distributed REPLICATEFILE (§2.2/§3) and the counter-based replica
// removal (§6) over the wire: each peer watches its own serve counters
// and, when a file exceeds the window threshold, places one replica on
// the first node of its children list without a copy — discovering
// "without a copy" through KindHas probes, and the list itself through
// pure bit arithmetic on the status word. No access logs leave the node;
// the only state consulted is the peer's own hit counters, which LessLog
// needs anyway to notice it is overloaded.

import (
	"sync"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/replication"
	"lesslog/internal/xrand"
)

// netCtx adapts the networked copy-placement state to
// replication.Context: copy existence at remote peers is answered by
// KindHas probes.
type netCtx struct {
	p    *Peer
	v    ptree.View
	name string
	rng  *xrand.Rand
}

func (c netCtx) View() ptree.View { return c.v }

func (c netCtx) HasCopy(q bitops.PID) bool {
	if q == c.p.cfg.PID {
		return c.p.store.Has(c.name)
	}
	resp, err := c.p.call(q, &msg.Request{Kind: msg.KindHas, Name: c.name})
	return err == nil && resp.OK
}

func (c netCtx) ForwardedLoad(bitops.PID, bitops.PID) float64 { return 0 }
func (c netCtx) Rand() *xrand.Rand                            { return c.rng }

// handleHas answers copy-existence probes. The response carries the held
// copy's version (Peek — a probe must not count as an access), so the
// anti-entropy repair loop distinguishes "missing" from "stale" with the
// same frame REPLICATEFILE always used; pre-repair callers ignore the
// field. A missing name that carries a tombstone answers !OK with the
// tombstone's version — "deleted at v", not merely "absent" — which is
// what lets repair push the deletion instead of the stale copy. Version 0
// is the version-less sentinel (a pre-repair build never set the field,
// and live versions start at 1), so repair callers treat it as "cannot
// compare" rather than "older than everything"; a DisableLocate peer
// emulates that legacy shape.
func (p *Peer) handleHas(req *msg.Request) *msg.Response {
	start := time.Now()
	f, ok := p.store.Peek(req.Name)
	if p.cfg.DisableLocate {
		return &msg.Response{OK: ok, ServedBy: uint32(p.cfg.PID)}
	}
	version := f.Version
	if !ok {
		if tv, dead := p.store.TombVersion(req.Name); dead {
			version = tv
		}
	}
	resp := &msg.Response{OK: ok, ServedBy: uint32(p.cfg.PID), Version: version}
	if req.Flags&msg.FlagTrace != 0 {
		// A traced repair probe records the answering holder as one hop,
		// parented on the repairing peer's root (the tail of req.Path).
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, time.Since(start))
	}
	return resp
}

// MaintainOnce runs one §2.2/§6 maintenance window on this peer: if its
// hottest copy served more than threshold gets since the last window, one
// replica is placed on its children list; replicas that served fewer than
// evictBelow gets are dropped; then the counting window resets. It
// returns where a replica was placed, if any.
func (p *Peer) MaintainOnce(threshold, evictBelow uint64) (placed bitops.PID, ok bool) {
	var hotName string
	var hotHits uint64
	for _, name := range p.store.AllNames() {
		if h := p.store.Hits(name); h > hotHits {
			hotName, hotHits = name, h
		}
	}
	cold := p.store.ColdReplicas(evictBelow)
	for _, name := range cold {
		p.store.Delete(name)
	}
	var f fileSnapshot
	if hotHits > threshold {
		if file, have := p.store.Peek(hotName); have {
			f = fileSnapshot{name: file.Name, data: file.Data, version: file.Version, valid: true}
		}
	}
	p.store.ResetHits()
	rng := p.maintRNG()

	if !f.valid {
		return 0, false
	}
	v := p.view(p.hasher.Target(f.name, p.cfg.M))
	target, found := (replication.LessLog{}).Place(netCtx{p: p, v: v, name: f.name, rng: rng}, p.cfg.PID)
	if !found {
		return 0, false
	}
	resp, err := p.call(target, &msg.Request{
		Kind: msg.KindStore, Flags: msg.FlagReplica,
		Name: f.name, Data: f.data, Version: f.version,
	})
	if err != nil || !resp.OK {
		return 0, false
	}
	p.log.Info("replica placed by maintenance", "name", f.name, "on", uint32(target))
	return target, true
}

type fileSnapshot struct {
	name    string
	data    []byte
	version uint64
	valid   bool
}

// maintRNG lazily creates the peer's placement randomness (the §3
// proportional choice) under the lifecycle mutex.
func (p *Peer) maintRNG() *xrand.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = xrand.New(uint64(p.cfg.PID)*0x9e3779b9 + 1)
	}
	return p.rng
}

// StartMaintenance runs MaintainOnce every interval until the peer
// closes. The returned stop function halts the loop early; calling it
// more than once is safe.
func (p *Peer) StartMaintenance(interval time.Duration, threshold, evictBelow uint64) (stop func()) {
	done := make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-p.quit:
				return
			case <-ticker.C:
				p.MaintainOnce(threshold, evictBelow)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
