package netnode

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/tracering"
)

// startTracedSystem is startSystem with the trace-plane knobs pinned, so
// tests control exactly which requests the head sampler picks.
func startTracedSystem(t testing.TB, m, b int, pids []bitops.PID, hasher hashring.Hasher, every int) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, len(pids))
	addrs := make(map[bitops.PID]string, len(pids))
	for _, pid := range pids {
		p, err := Listen(Config{PID: pid, M: m, B: b, Hasher: hasher, TraceSampleEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

// hopSet collects the PIDs appearing in hops with the given action.
func hopSet(hops []msg.Hop, action msg.HopAction) map[uint32]bool {
	out := map[uint32]bool{}
	for _, h := range hops {
		if h.Action == action {
			out[h.PID] = true
		}
	}
	return out
}

// assertTree fails unless every hop's parent is NoParent (a root) or a
// PID that itself appears in the trace — the connectivity a fan-out trace
// must keep however its branches interleave.
func assertTree(t *testing.T, hops []msg.Hop) {
	t.Helper()
	pids := map[uint32]bool{}
	for _, h := range hops {
		pids[h.PID] = true
	}
	for _, h := range hops {
		if h.Parent != msg.NoParent && !pids[h.Parent] {
			t.Fatalf("hop %+v parents onto P(%d), absent from the trace %v", h, h.Parent, hops)
		}
	}
}

// TestTracedUpdateBroadcastTree drives a traced update through a fan-out
// over hand-placed holders and checks the assembled trace is the
// broadcast tree: one HopFanout root at the entry peer, one HopDeliver
// per live holder, every hop parented inside the trace.
func TestTracedUpdateBroadcastTree(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Replicas at P(5) (root's first child) and P(7) (child of P(5)) —
	// the canonical copy from the insert sits at P(4).
	NewClient(peers[5].Addr()).Store("f", []byte("v1"), 1, true)
	NewClient(peers[7].Addr()).Store("f", []byte("v1"), 1, true)

	n, path, err := NewClient(peers[3].Addr()).UpdateTraced("f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d copies, want 3", n)
	}
	if len(path) == 0 || path[0].Action != msg.HopFanout || path[0].PID != 3 || path[0].Parent != msg.NoParent {
		t.Fatalf("trace root = %+v, want HopFanout at P(3)", path)
	}
	delivered := hopSet(path, msg.HopDeliver)
	if len(delivered) != 3 || !delivered[4] || !delivered[5] || !delivered[7] {
		t.Fatalf("HopDeliver set = %v, want {4, 5, 7} — the live holder set", delivered)
	}
	assertTree(t, path)

	// The same shape for a traced delete: one deliver hop per erased copy.
	n, path, err = NewClient(peers[3].Addr()).DeleteTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("deleted %d copies, want 3", n)
	}
	if len(path) == 0 || path[0].Action != msg.HopFanout {
		t.Fatalf("delete trace root = %+v", path)
	}
	if erased := hopSet(path, msg.HopDeliver); len(erased) != 3 || !erased[4] || !erased[5] || !erased[7] {
		t.Fatalf("delete HopDeliver set = %v, want {4, 5, 7}", erased)
	}
	assertTree(t, path)

	// An untraced update of the same system carries no route.
	if err := NewClient(peers[2].Addr()).Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	resp, err := Call(peers[3].Addr(), &msg.Request{Kind: msg.KindUpdate, Name: "f", Data: []byte("v3")})
	if err != nil || !resp.OK {
		t.Fatalf("untraced update: %+v, %v", resp, err)
	}
	if resp.Path != nil {
		t.Fatalf("untraced update carried a route: %v", resp.Path)
	}
}

// TestTracedBatchSpreadsTrace sends a traced KindBatch frame and expects
// the sub-request routes spliced into the outer response under the
// batch's single trace ID.
func TestTracedBatchSpreadsTrace(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("tb/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	subs := []*msg.Request{
		{Kind: msg.KindGet, Name: "tb/f"},
		{Kind: msg.KindGet, Name: "tb/f"},
	}
	data, err := msg.AppendBatchRequests(nil, subs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Call(peers[9].Addr(), &msg.Request{
		Kind: msg.KindBatch, Data: data, Flags: msg.FlagTrace, TraceID: 42,
	})
	if err != nil || !resp.OK {
		t.Fatalf("traced batch: %+v, %v", resp, err)
	}
	serves := 0
	for _, h := range resp.Path {
		if h.Action == msg.HopServe {
			serves++
		}
	}
	if serves < 2 {
		t.Fatalf("traced batch route has %d serve hops, want one per sub-get: %v", serves, resp.Path)
	}
	assertTree(t, resp.Path)
}

// TestRepairRoundTraceStar samples one anti-entropy round and checks its
// trace is the star the repair plane produces: a HopRepair root at the
// repairing peer, every responder hop parented directly onto it, and the
// responder set drawn from the name's sibling holders.
func TestRepairRoundTraceStar(t *testing.T) {
	peers := startTracedSystem(t, 4, 1, allPIDs(16), hashring.FNV{}, 1)
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	lost, intact := holders[0], holders[1]
	peers[lost].store.Delete("f")

	var sampler repair.Sampler
	if n := peers[intact].RepairOnce(&sampler, nil, -1); n != 1 {
		t.Fatalf("RepairOnce repaired %d copies, want 1", n)
	}
	snap := peers[intact].TraceSnapshot()
	var star *tracering.Trace
	for i := range snap.Recent {
		if snap.Recent[i].Kind == "repair" {
			star = &snap.Recent[i]
		}
	}
	if star == nil {
		t.Fatalf("no repair trace in ring: %+v", snap.Recent)
	}
	root := star.Hops[0]
	if root.Action != msg.HopRepair || root.PID != uint32(intact) || root.Parent != msg.NoParent {
		t.Fatalf("repair trace root = %+v, want HopRepair at P(%d)", root, intact)
	}
	if len(star.Hops) < 2 {
		t.Fatal("repair star has no responder hops")
	}
	for _, h := range star.Hops[1:] {
		if h.Parent != uint32(intact) || h.Action != msg.HopServe {
			t.Fatalf("responder hop %+v, want HopServe parented on P(%d)", h, intact)
		}
		if h.PID != uint32(lost) {
			t.Fatalf("responder P(%d) outside the sibling holder set {%d}", h.PID, lost)
		}
	}

	// A second, clean round closes the divergence episode: the TTFR gauge
	// reports how long the fleet ran under-replicated.
	if n := peers[intact].RepairOnce(&sampler, nil, -1); n != 0 {
		t.Fatal("steady-state round still repaired")
	}
	if ttfr := peers[intact].StatSnapshot().RepairTTFRMS; ttfr <= 0 {
		t.Fatalf("RepairTTFRMS = %v after a completed episode, want > 0", ttfr)
	}
}

// TestTraceSamplingAndTailRetention pins the head sampler to 1-in-1000:
// the first request is the sampler's pick (and must stay invisible to the
// untraced client), later errored requests are tail-retained anyway, and
// healthy unsampled ones are not kept.
func TestTraceSamplingAndTailRetention(t *testing.T) {
	peers := startTracedSystem(t, 3, 0, allPIDs(8), hashring.Fixed(4), 1000)
	NewClient(peers[0].Addr()).Store("s/f", []byte("x"), 1, true)

	// Request 1: head-sampled (promoted). The client asked for no trace,
	// so no route may leak onto its response.
	res, err := NewClient(peers[0].Addr()).Get("s/f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != nil {
		t.Fatalf("promoted get leaked its route to the client: %v", res.Path)
	}
	// Request 2: unsampled but errored — tail-retained.
	if _, err := NewClient(peers[0].Addr()).Get("s/missing"); err == nil {
		t.Fatal("get of missing name succeeded")
	}
	// Request 3: unsampled, healthy, fast — dropped.
	if _, err := NewClient(peers[0].Addr()).Get("s/f"); err != nil {
		t.Fatal(err)
	}

	snap, err := NewClient(peers[0].Addr()).Traces()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Recorded != 2 || snap.Noted != 1 {
		t.Fatalf("ring totals = %d recorded / %d noted, want 2/1", snap.Recorded, snap.Noted)
	}
	if len(snap.Recent) != 2 || len(snap.Notable) != 1 {
		t.Fatalf("ring tiers = %d recent / %d notable, want 2/1", len(snap.Recent), len(snap.Notable))
	}
	// The promoted trace kept its route in the ring even though the
	// client never saw it.
	if got := snap.Recent[0]; got.ID == 0 || len(got.Hops) == 0 {
		t.Fatalf("promoted trace in ring = %+v, want a trace ID and hops", got)
	}
	if got := snap.Notable[0]; got.Err == "" {
		t.Fatalf("notable trace = %+v, want the errored get", got)
	}
}

// TestTracesAdminEndpoint scrapes /traces over HTTP and expects the same
// snapshot the wire kind serves.
func TestTracesAdminEndpoint(t *testing.T) {
	peers := startTracedSystem(t, 3, 0, allPIDs(8), hashring.Fixed(4), 1)
	NewClient(peers[0].Addr()).Store("a/f", []byte("x"), 1, true)
	if _, err := NewClient(peers[0].Addr()).Get("a/f"); err != nil {
		t.Fatal(err)
	}
	adm, err := peers[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap tracering.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Recorded == 0 || len(snap.Recent) == 0 {
		t.Fatalf("/traces snapshot = %+v, want the sampled get", snap)
	}
	if snap.SlowNS != int64(tracering.DefaultSlow) {
		t.Fatalf("slow threshold = %s, want the default", time.Duration(snap.SlowNS))
	}
}
