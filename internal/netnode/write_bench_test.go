package netnode

// The acceptance benchmarks for the chunked write plane (`make
// write-bench`; the recorded run lives in results/write_bench.txt and
// results/BENCH_write.json):
//
//   - BenchmarkChunkedPut keeps the staged upload path under bench-smoke:
//     one warm multi-chunk update commit per iteration.
//   - TestWriteBenchReport is the full comparison. Part one races the
//     whole-frame write against the staged chunked put at 1–64 MiB
//     payloads (above msg.MaxData only the chunked plane can write at
//     all — the headline: the write ceiling moved from one frame to
//     msg.MaxFileSize). Part two measures what the broadcast tree itself
//     carries per update against replica count: with payload-push every
//     remote leg repeats the payload, with notify/pull the tree carries
//     only transfer facts — so relayed broadcast bytes stop scaling with
//     the copy count.
//
// Every fabric RPC pays benchRTT (500µs) via injected transport faults,
// the same propagation model the stream and locate comparisons use.

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/stream"
	"lesslog/internal/transport"
)

// startWriteFabric boots an n-peer fabric with B replication bits,
// benchRTT on every outbound RPC, and the given notify threshold
// (0 default, negative pins in-frame updates to the whole-frame push).
func startWriteFabric(t testing.TB, m, b, n, notifyTh int, hasher hashring.Hasher) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, n)
	addrs := make(map[bitops.PID]string, n)
	for _, pid := range allPIDs(n) {
		p, err := Listen(Config{
			PID: pid, M: m, B: b, Hasher: hasher, NotifyThreshold: notifyTh,
			Faults: transport.NewFaults().Add(transport.Rule{Delay: benchRTT}),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

// BenchmarkChunkedPut measures a warm staged chunked update of a
// multi-chunk payload; bench-smoke runs it at one iteration so the write
// path cannot rot.
func BenchmarkChunkedPut(b *testing.B) {
	peers := startBenchSystem(b, 4, allPIDs(16), hashring.Fixed(4))
	payload := benchPayload(8 << 20)
	if err := NewClient(peers[8].Addr()).Insert("bench/put", payload); err != nil {
		b.Fatal(err)
	}
	up := stream.NewUploader(benchClientTransport(b), stream.Config{})
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := up.Put(peers[8].Addr(), "bench/put", payload, msg.PutUpdate); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBenchSizes are the payload sizes of the whole-frame/chunked write
// comparison. Above msg.MaxData the whole-frame path cannot write at
// all, so those rows carry the chunked numbers alone.
var writeBenchSizes = []struct {
	label  string
	n      int
	rounds int
}{
	{"1MiB", 1 << 20, 12},
	{"4MiB", 4 << 20, 12},
	{"16MiB", 16 << 20, 6},
	{"64MiB", 64 << 20, 3},
}

// TestWriteBenchReport is the acceptance run behind `make write-bench`
// (gated by LESSLOG_WRITE_BENCH so plain `go test ./...` stays fast).
func TestWriteBenchReport(t *testing.T) {
	if os.Getenv("LESSLOG_WRITE_BENCH") == "" {
		t.Skip("set LESSLOG_WRITE_BENCH=1 (make write-bench) to run the write-plane comparison")
	}
	t.Run("latency", writeLatencyReport)
	writePropagationReport(t)
}

// writeLatencyReport compares warm whole-frame and staged chunked update
// latency per payload size, and proves the write ceiling moved: the
// 64 MiB row has no whole-frame number to report.
func writeLatencyReport(t *testing.T) {
	peers := startWriteFabric(t, 4, 0, 16, 0, hashring.Fixed(4))
	entry := peers[8].Addr()
	ctr := transport.New(transport.Config{},
		transport.NewFaults().Add(transport.Rule{Delay: benchRTT}))
	t.Cleanup(func() { ctr.Close() })

	for _, size := range writeBenchSizes {
		name := "bench/w-" + size.label
		payload := benchPayload(size.n)
		overFrame := size.n > msg.MaxData
		if err := NewClientWith(entry, ctr).Insert(name, payload); err != nil {
			t.Fatal(err)
		}

		run := func(write func() error) []time.Duration {
			lat := make([]time.Duration, 0, size.rounds)
			for i := 0; i < size.rounds; i++ {
				start := time.Now()
				if err := write(); err != nil {
					t.Fatal(err)
				}
				lat = append(lat, time.Since(start))
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			return lat
		}

		up := stream.NewUploader(ctr, stream.Config{})
		chunkLat := run(func() error {
			_, err := up.Put(entry, name, payload, msg.PutUpdate)
			return err
		})

		results := []benchjson.Result{{
			Name:    "report/chunked/" + size.label,
			NsPerOp: float64(chunkLat[len(chunkLat)/2].Nanoseconds()),
			Extra: map[string]float64{
				"p50_ms":     float64(chunkLat[len(chunkLat)/2].Nanoseconds()) / 1e6,
				"p99_ms":     float64(quantile(chunkLat, 0.99).Nanoseconds()) / 1e6,
				"over_frame": b2f(overFrame),
			},
		}}
		logLine := fmt.Sprintf("%s: chunked p50=%v p99=%v", size.label,
			chunkLat[len(chunkLat)/2], quantile(chunkLat, 0.99))

		if !overFrame {
			cl := NewClientWith(entry, ctr)
			frameLat := run(func() error {
				_, err := cl.Update(name, payload)
				return err
			})
			results = append(results, benchjson.Result{
				Name:    "report/whole-frame/" + size.label,
				NsPerOp: float64(frameLat[len(frameLat)/2].Nanoseconds()),
				Extra: map[string]float64{
					"p50_ms": float64(frameLat[len(frameLat)/2].Nanoseconds()) / 1e6,
					"p99_ms": float64(quantile(frameLat, 0.99).Nanoseconds()) / 1e6,
				},
			})
			logLine += fmt.Sprintf(" | whole-frame p50=%v p99=%v",
				frameLat[len(frameLat)/2], quantile(frameLat, 0.99))
		} else {
			logLine += " | whole-frame: over the msg.MaxData frame ceiling"
		}
		if err := benchjson.Record("write", results...); err != nil {
			t.Fatal(err)
		}
		t.Log(logLine)
	}
}

// writePropagationReport measures what the broadcast tree itself carries
// per update — the sum of every peer's FanoutBytes, payload bytes put on
// remote broadcast legs — against replica count, for the payload-push
// form (notify disabled) and the notify/pull form. Push relays the
// payload once per remote copy, so its tree bytes scale with the replica
// count; notify legs carry only the transfer facts, so their tree bytes
// stay flat no matter how many copies pull.
func writePropagationReport(t *testing.T) {
	const payloadSize = 4 << 20
	payload := benchPayload(payloadSize)
	fanout := func(peers map[bitops.PID]*Peer) uint64 {
		return sumWriteStat(peers, func(s *Stats) uint64 { return s.FanoutBytes.Load() })
	}
	for _, b := range []int{0, 1, 2} {
		replicas := 1 << b
		var pushDelta, notifyDelta uint64
		ok := t.Run(fmt.Sprintf("propagation/replicas=%d", replicas), func(t *testing.T) {
			measure := func(notifyTh int) uint64 {
				peers := startWriteFabric(t, 4, b, 16, notifyTh, hashring.Fixed(4))
				cl := NewClient(peers[8].Addr())
				if err := cl.Insert("bench/prop", payload); err != nil {
					t.Fatal(err)
				}
				before := fanout(peers)
				if _, err := cl.Update("bench/prop", payload); err != nil {
					t.Fatal(err)
				}
				return fanout(peers) - before
			}
			pushDelta = measure(-1)  // payload rides every broadcast leg
			notifyDelta = measure(0) // tree carries transfer facts only
			// The notify tree's bytes must be independent of the payload —
			// and thereby of how many copies pull it.
			if notifyDelta >= payloadSize {
				t.Errorf("notify tree carried %d bytes for a %d-byte payload, want payload-free legs",
					notifyDelta, payloadSize)
			}
			if replicas > 1 && pushDelta < uint64(replicas)*payloadSize {
				t.Errorf("push tree carried %d bytes across %d copies, expected >= copies x payload = %d",
					pushDelta, replicas, uint64(replicas)*payloadSize)
			}
			if err := benchjson.Record("write", benchjson.Result{
				Name: fmt.Sprintf("report/propagation/replicas=%d", replicas),
				Extra: map[string]float64{
					"push_tree_bytes":   float64(pushDelta),
					"notify_tree_bytes": float64(notifyDelta),
					"payload_bytes":     payloadSize,
				},
			}); err != nil {
				t.Fatal(err)
			}
			t.Logf("replicas=%d: push tree carried %d bytes, notify tree %d bytes (payload %d)",
				replicas, pushDelta, notifyDelta, payloadSize)
		})
		if !ok {
			t.Fatalf("replicas=%d configuration failed", replicas)
		}
	}
}
