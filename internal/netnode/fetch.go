package netnode

// The peer side of the chunked data plane (docs/ROUTING.md): ranged
// KindFetch reads served straight from the sharded store, and KindLocateSet
// answers that carry the name's whole replica set instead of the one holder
// the lookup walk happened to reach. Both are serve-or-refuse on the data
// hop — a fetch is never forwarded (the client already resolved the
// holders) — while the locate-set control hop forwards along the lookup
// tree exactly like a single-holder locate.

import (
	"fmt"
	"hash/crc32"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/msg"
	"lesslog/internal/store"
)

// castagnoli is the CRC-32C table shared by chunk and whole-file
// checksums — the same polynomial the WAL's record checksums use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWrongVersion is the answer to a version-pinned fetch whose pin no
// longer matches the held copy: the file moved on (or this replica lags)
// between the transfer's head chunk and this range. The response carries
// the version actually held, so the client can decide between retrying the
// range on another replica and restarting the transfer at the new version.
// Matching this string is how a striped transfer guarantees it never
// splices bytes from two versions.
const ErrWrongVersion = msg.WrongVersionError

// handleFetch serves one ranged chunk of a local copy. Always local-only:
// a fetch that misses answers ErrNotHolder exactly like a FlagLocalOnly
// get, never forwards — the stale-hint miss must stay one cheap RPC. The
// head chunk (offset 0) counts the §6 store access so a chunked transfer
// weighs one serve, like a whole-frame get; later ranges peek. A
// FlagReplica fetch is a peer pulling a body for placement or notify
// propagation: it peeks even at offset 0 (replication is not popularity),
// and on a store miss or pin mismatch it may be served from the write
// outbox — the origin of a pull-based broadcast keeps the new version
// there until the tree has had time to pull, even if its own store copy
// is superseded again meanwhile.
func (p *Peer) handleFetch(req *msg.Request) *msg.Response {
	fr, err := msg.DecodeFetchReq(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: fetch decode: %v", err)}
	}
	replica := req.Flags&msg.FlagReplica != 0
	var f store.File
	var ok bool
	if fr.Offset == 0 && !replica {
		f, ok = p.store.Get(req.Name)
	} else {
		f, ok = p.store.Peek(req.Name)
	}
	if ok && req.Version != 0 && f.Version != req.Version && replica {
		// The store moved past the pin, but the pinned body may still sit
		// in the outbox for exactly this pull.
		if data, ver, boxed := p.outbox.get(req.Name, req.Version); boxed {
			f, ok = store.File{Name: req.Name, Data: data, Version: ver}, true
		}
	}
	if !ok && replica {
		if data, ver, boxed := p.outbox.get(req.Name, req.Version); boxed {
			f, ok = store.File{Name: req.Name, Data: data, Version: ver}, true
		}
	}
	if !ok {
		p.stats.DirectMisses.Add(1)
		return &msg.Response{Hops: req.Hops, Err: ErrNotHolder}
	}
	if req.Version != 0 && f.Version != req.Version {
		p.stats.ChunkRefusals.Add(1)
		return &msg.Response{ServedBy: uint32(p.cfg.PID), Version: f.Version, Err: ErrWrongVersion}
	}
	total := uint64(len(f.Data))
	if fr.Offset > total || (fr.Offset == total && total != 0) {
		return &msg.Response{ServedBy: uint32(p.cfg.PID), Version: f.Version,
			Err: fmt.Sprintf("netnode: fetch range at %d past total %d", fr.Offset, total)}
	}
	end := fr.Offset + uint64(fr.Length)
	if end > total {
		end = total // final chunk truncates at EOF
	}
	chunk := f.Data[fr.Offset:end]
	fresp := &msg.FetchResp{
		TotalSize: total,
		ChunkCRC:  crc32.Checksum(chunk, castagnoli),
		Chunk:     chunk,
	}
	if fr.Offset == 0 {
		// The whole-file CRC is O(total); computing it per chunk would make
		// an N-chunk transfer O(N·total). Only the head chunk carries it,
		// and the client always requests the head first to pin the shape.
		fresp.FileCRC = crc32.Checksum(f.Data, castagnoli)
	}
	data, err := msg.AppendFetchResp(nil, fresp)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: fetch encode: %v", err)}
	}
	p.stats.ChunksServed.Add(1)
	p.stats.ChunkBytes.Add(uint64(len(chunk)))
	p.stats.DirectServed.Add(1)
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Hops: req.Hops,
		Version: f.Version, Data: data}
}

// handleLocateSet resolves a name to its replica set: the same lookup-tree
// walk as a single-holder locate (forwardLookup carries misses onward with
// identical §3/§4 semantics), but the serving holder answers with every
// required holder it can name — itself first with the real version, then
// the live primary holder of each subtree placement (§2.2 run in reverse,
// exactly the set the repair plane probes), version 0 for the unprobed.
// Clients stripe chunk fetches across the set; a listed holder that turns
// out stale or missing just refuses its fetch and is purged client-side,
// so the set is advisory like every route hint.
func (p *Peer) handleLocateSet(req *msg.Request) *msg.Response {
	start := time.Now()
	f, ok := p.store.Peek(req.Name)
	if !ok {
		return p.forwardLookup(req, start)
	}
	p.stats.Located.Add(1)
	p.stats.LocateSets.Add(1)
	rt := p.rt()
	v := p.view(p.hasher.Target(req.Name, p.cfg.M))
	hs := []msg.Holder{{PID: uint32(p.cfg.PID), Addr: p.Addr(), Version: f.Version}}
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
		h, live := v.PrimaryHolder(sid)
		if !live || h == p.cfg.PID {
			continue
		}
		addr, known := rt.addrs[h]
		if !known || len(hs) >= msg.MaxHolders {
			continue
		}
		hs = append(hs, msg.Holder{PID: uint32(h), Addr: addr})
	}
	data, err := msg.AppendHolders(nil, hs)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: locate-set encode: %v", err)}
	}
	resp := &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Hops: req.Hops,
		Version: f.Version, Data: data}
	if req.Flags&msg.FlagTrace != 0 {
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopLocate, time.Since(start))
	}
	return resp
}
