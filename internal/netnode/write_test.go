package netnode

// End-to-end tests for the chunked write plane (docs/ROUTING.md "The
// write plane"): over-frame inserts streamed through staged puts,
// hint-guided write entry, notify/pull update propagation, crash safety
// of the staging table, mixed-fabric whole-frame fallback, fault-driven
// pull loss converging through the repair plane, and the traced notify
// fan-out tree.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"hash/crc32"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/stream"
	"lesslog/internal/transport"
)

// sumWriteStat folds one write-plane counter across the fleet.
func sumWriteStat(peers map[bitops.PID]*Peer, read func(*Stats) uint64) uint64 {
	var n uint64
	for _, p := range peers {
		n += read(p.Stats())
	}
	return n
}

// TestChunkedInsertEndToEnd is the acceptance path: a payload at the
// msg.MaxFileSize ceiling — four times the single-frame cap — inserts
// through the ordinary client, lands one copy per subtree, and reads
// back sha256-identical through the chunked data plane.
func TestChunkedInsertEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("moves a 64 MiB payload through the fabric")
	}
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4))
	data := chunkPayload(msg.MaxFileSize, 31)
	want := sha256.Sum256(data)

	cl := NewClient(peers[2].Addr())
	if err := cl.Insert("w/huge", data); err != nil {
		t.Fatal(err)
	}
	if got := cl.LocateStats().ChunkedPuts.Load(); got != 1 {
		t.Fatalf("chunked puts = %d, want 1", got)
	}
	var holders []bitops.PID
	for pid, p := range peers {
		if p.store.Has("w/huge") {
			holders = append(holders, pid)
			f, _ := p.store.Peek("w/huge")
			if sha256.Sum256(f.Data) != want {
				t.Fatalf("copy at P(%d) corrupted (%d bytes)", pid, len(f.Data))
			}
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want one per subtree", holders)
	}
	res, err := NewLocateClient(peers[9].Addr()).Get("w/huge")
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(res.Data) != want {
		t.Fatalf("readback of %d bytes is not sha256-identical", len(res.Data))
	}
}

// TestNotifyUpdatePropagation drives an update past the notify threshold
// across hand-placed replicas: every copy converges, the replicas pull
// the body instead of receiving it, and the broadcast tree itself moves
// payload-independent bytes — the O(copies × size) → O(copies) claim.
func TestNotifyUpdatePropagation(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("w/n", chunkPayload(1<<10, 40)); err != nil {
		t.Fatal(err)
	}
	NewClient(peers[5].Addr()).Store("w/n", chunkPayload(1<<10, 40), 1, true)
	NewClient(peers[7].Addr()).Store("w/n", chunkPayload(1<<10, 40), 1, true)

	// 512 KiB: over DefaultNotifyThreshold, far under one frame — the
	// payload could ride the tree, and must not.
	v2 := chunkPayload(512<<10, 41)
	fanout0 := sumWriteStat(peers, func(s *Stats) uint64 { return s.FanoutBytes.Load() })
	n, err := NewClient(peers[3].Addr()).Update("w/n", v2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d copies, want 3", n)
	}
	for _, pid := range []bitops.PID{4, 5, 7} {
		f, ok := peers[pid].store.Peek("w/n")
		if !ok || !bytes.Equal(f.Data, v2) {
			t.Fatalf("P(%d) did not converge (ok=%v, %d bytes)", pid, ok, len(f.Data))
		}
	}
	if pulls := sumWriteStat(peers, func(s *Stats) uint64 { return s.NotifyPulls.Load() }); pulls == 0 {
		t.Fatal("no replica pulled the body; the payload rode the tree")
	}
	// The tree carried notify frames (tens of bytes each), not 512 KiB
	// per leg: total broadcast payload stays under one payload copy.
	fanout := sumWriteStat(peers, func(s *Stats) uint64 { return s.FanoutBytes.Load() }) - fanout0
	if fanout >= uint64(len(v2)) {
		t.Fatalf("broadcast legs carried %d payload bytes for a %d-byte update", fanout, len(v2))
	}
}

// TestCrashMidUploadLeavesNoPartial stages part of an upload at a
// durable peer, crashes it, and proves the partial is neither served nor
// replayed from the log; the retried upload then converges and survives
// a further restart.
func TestCrashMidUploadLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	peers := startDurableSystem(t, 2, 0, 4, hashring.Fixed(0), dir)
	data := chunkPayload(64<<10, 50)
	fileCRC := crc32.Checksum(data, castagnoli)

	// Open a staging session and send half the payload, no commit.
	open, err := msg.AppendPutReq(nil, &msg.PutReq{
		Op: msg.PutData, TotalSize: uint64(len(data)), FileCRC: fileCRC,
		ChunkCRC: crc32.Checksum(data[:32<<10], castagnoli), Chunk: data[:32<<10],
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Call(peers[0].Addr(), &msg.Request{Kind: msg.KindPut, Name: "w/partial", Data: open})
	if err != nil || !resp.OK || resp.Version == 0 {
		t.Fatalf("open frame: %+v, %v", resp, err)
	}
	if peers[0].store.Has("w/partial") {
		t.Fatal("staged bytes are visible before commit")
	}
	if _, err := NewClient(peers[1].Addr()).Get("w/partial"); err == nil {
		t.Fatal("mid-upload get served a partial version")
	}

	// Crash/restart: staging is memory-only, so the log replays nothing.
	p0 := restartPeer(t, peers[0], peers[1])
	if p0.store.Has("w/partial") {
		t.Fatal("restart replayed a partial upload from the log")
	}

	// The retried upload (full, chunked) commits and becomes durable.
	tr := transport.New(transport.Config{}, nil)
	t.Cleanup(func() { tr.Close() })
	up := stream.NewUploader(tr, stream.Config{ChunkSize: 4 << 10})
	if _, err := up.Put(p0.Addr(), "w/partial", data, msg.PutInsert); err != nil {
		t.Fatal(err)
	}
	res, err := NewClient(peers[1].Addr()).Get("w/partial")
	if err != nil || !bytes.Equal(res.Data, data) {
		t.Fatalf("post-retry get: %d bytes, %v", len(res.Data), err)
	}
	p0 = restartPeer(t, p0, peers[1])
	if f, ok := p0.store.Peek("w/partial"); !ok || !bytes.Equal(f.Data, data) {
		t.Fatal("committed upload did not survive the restart")
	}
}

// TestWriteEntryAtHolder covers hint-guided write entry: a locate-mode
// client's update starts the broadcast at the holder (refreshing the
// hint off the ack), a hintless locate client resolves the holder with
// one walk, and a pre-locate client still enters at its configured peer.
func TestWriteEntryAtHolder(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	tr := transport.New(transport.Config{}, nil)
	t.Cleanup(func() { tr.Close() })
	cl := NewLocateClientWith(peers[2].Addr(), tr, LocateOptions{})
	if err := cl.Insert("w/entry", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("w/entry"); err != nil { // warm the hint
		t.Fatal(err)
	}
	locates := cl.LocateStats().Locates.Load()
	if _, err := cl.Update("w/entry", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := peers[4].Stats().WritesAtHolder.Load(); got != 1 {
		t.Fatalf("holder-entry writes at P(4) = %d, want 1", got)
	}
	if cl.LocateStats().Locates.Load() != locates {
		t.Fatal("hinted update paid a locate walk")
	}
	if got := cl.LocateStats().HintRefreshes.Load(); got != 1 {
		t.Fatalf("hint refreshes = %d, want 1", got)
	}

	// A fresh locate client has no hint: one walk resolves the holder and
	// the write still enters there.
	cold := NewLocateClientWith(peers[9].Addr(), tr, LocateOptions{})
	if _, err := cold.Update("w/entry", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got := peers[4].Stats().WritesAtHolder.Load(); got != 2 {
		t.Fatalf("holder-entry writes after locate-walk update = %d, want 2", got)
	}
	if cold.LocateStats().Locates.Load() != 1 {
		t.Fatalf("cold update locates = %d, want 1", cold.LocateStats().Locates.Load())
	}

	// The pre-locate client enters at its peer; P(2) holds no copy, so the
	// entry is counted remote and the walk finds the holder as ever.
	if _, err := NewClient(peers[2].Addr()).Update("w/entry", []byte("v4")); err != nil {
		t.Fatal(err)
	}
	if got := peers[2].Stats().WritesRemote.Load(); got == 0 {
		t.Fatal("relay-entry update not counted at the entry peer")
	}
}

// TestMixedFabricWholeFrameFallback runs the interop gates: on a fabric
// where a replica holder predates the write plane, a notify-eligible
// update falls back to one whole-frame delivery for that holder and
// still converges everywhere; a chunked put aimed at a legacy peer
// downgrades to the typed one-frame refusal.
func TestMixedFabricWholeFrameFallback(t *testing.T) {
	legacy := func(pid bitops.PID) bool { return pid >= 8 }
	peers := startMixedSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4), legacy)
	if err := NewClient(peers[2].Addr()).Insert("w/mix", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	var holders []bitops.PID
	for pid, p := range peers {
		if p.store.Has("w/mix") {
			holders = append(holders, pid)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want one per subtree", holders)
	}

	v2 := chunkPayload(512<<10, 60) // notify-eligible, one frame
	n, err := NewClient(peers[2].Addr()).Update("w/mix", v2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("updated %d copies, want 2", n)
	}
	for _, pid := range holders {
		f, ok := peers[pid].store.Peek("w/mix")
		if !ok || !bytes.Equal(f.Data, v2) {
			t.Fatalf("P(%d) did not converge (ok=%v)", pid, ok)
		}
	}
	if fb := sumWriteStat(peers, func(s *Stats) uint64 { return s.NotifyFallbacks.Load() }); fb == 0 {
		t.Fatal("no whole-frame fallback despite the legacy subtree")
	}

	// An over-frame write against a legacy peer: the put probe answers
	// unknown-kind, the client latches and refuses with the typed error
	// naming the one-frame cap.
	cl := NewClient(peers[9].Addr())
	big := chunkPayload(msg.MaxData+1, 61)
	if err := cl.Insert("w/mix2", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("legacy chunked insert err = %v, want ErrTooLarge", err)
	}
	if got := cl.LocateStats().PutDowngrades.Load(); got != 1 {
		t.Fatalf("put downgrades = %d, want 1", got)
	}
}

// TestNotifyPullLossConvergesViaRepair scripts the propagation fault the
// pull design must survive: the notify leg to one replica holder is
// dropped, the broadcast completes without it, and the anti-entropy
// repair plane converges the skipped copy afterwards.
func TestNotifyPullLossConvergesViaRepair(t *testing.T) {
	sys := startFaultSystem(t, 4, 1, 16, hashring.Fixed(4), tightTransport())
	if err := NewClient(sys.addr(2)).Insert("w/loss", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	var holders []bitops.PID
	for pid, p := range sys.peers {
		if p.store.Has("w/loss") {
			holders = append(holders, pid)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want one per subtree", holders)
	}
	victim := holders[0]
	if victim == 4 {
		victim = holders[1]
	}
	cancel := sys.faults.AddCancel(transport.Rule{
		Addr: sys.addr(victim), Kind: msg.KindNotify, Drop: true,
	})

	v2 := chunkPayload(512<<10, 70)
	if _, err := NewClient(sys.addr(2)).Update("w/loss", v2); err != nil {
		t.Fatal(err)
	}
	if f, _ := sys.peers[victim].store.Peek("w/loss"); bytes.Equal(f.Data, v2) {
		t.Fatal("setup: the dropped notify leg converged anyway")
	}
	cancel()

	// One repair round at the converged holder pushes the newer version.
	for _, pid := range holders {
		if pid != victim {
			sys.peers[pid].RepairOnce(&repair.Sampler{}, repair.NewBudget(-1, 0), -1)
		}
	}
	f, ok := sys.peers[victim].store.Peek("w/loss")
	if !ok || !bytes.Equal(f.Data, v2) {
		t.Fatalf("repair did not converge the skipped replica (ok=%v, %d bytes)", ok, len(f.Data))
	}
}

// TestTracedNotifyUpdateTree: a traced notify-eligible update assembles
// the same broadcast-tree shape as a payload-carrying one — one
// HopFanout root at the entry peer, one HopDeliver per holder, every
// hop parented inside the trace.
func TestTracedNotifyUpdateTree(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("w/trace", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	NewClient(peers[5].Addr()).Store("w/trace", []byte("v1"), 1, true)
	NewClient(peers[7].Addr()).Store("w/trace", []byte("v1"), 1, true)

	v2 := chunkPayload(512<<10, 80)
	n, path, err := NewClient(peers[3].Addr()).UpdateTraced("w/trace", v2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("updated %d copies, want 3", n)
	}
	if sumWriteStat(peers, func(s *Stats) uint64 { return s.NotifyPulls.Load() }) == 0 {
		t.Fatal("traced update did not go through the notify plane")
	}
	if len(path) == 0 || path[0].Action != msg.HopFanout || path[0].PID != 3 || path[0].Parent != msg.NoParent {
		t.Fatalf("trace root = %+v, want HopFanout at P(3)", path)
	}
	delivered := hopSet(path, msg.HopDeliver)
	if len(delivered) != 3 || !delivered[4] || !delivered[5] || !delivered[7] {
		t.Fatalf("HopDeliver set = %v, want {4, 5, 7}", delivered)
	}
	assertTree(t, path)
}
