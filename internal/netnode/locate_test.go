package netnode

// Tests for the locate-then-fetch data plane: locate walks, local-only
// fetches, route-hint reuse, legacy interop/downgrade, traced fault paths,
// and the full nextHop fallback chain exercised through both the relay and
// the locate lookup.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
)

// startMixedSystem boots a fabric where legacy(pid) selects the peers that
// emulate a pre-locate build (Config.DisableLocate).
func startMixedSystem(t testing.TB, m, b int, pids []bitops.PID, hasher hashring.Hasher, legacy func(bitops.PID) bool) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, len(pids))
	addrs := make(map[bitops.PID]string, len(pids))
	for _, pid := range pids {
		p, err := Listen(Config{PID: pid, M: m, B: b, Hasher: hasher, DisableLocate: legacy(pid)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

// markDeadEverywhere clears victim's liveness bit on every peer through
// the failure detector — routing routes around it immediately, with no
// register-dead recovery replication muddying replica placement.
func markDeadEverywhere(peers map[bitops.PID]*Peer, victim bitops.PID) {
	for _, p := range peers {
		th := p.Transport().Config().FailThreshold
		for i := 0; i < th; i++ {
			p.Detector().Fail(uint32(victim))
		}
	}
}

func TestLocateResolvesHolder(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Locate from P(8): the same P(8) → P(0) → P(4) walk a get takes, but
	// the answer is the holder's identity, not the payload.
	res, err := NewClient(peers[8].Addr()).Locate("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.PID != 4 || res.Addr != peers[4].Addr() || res.Hops != 2 {
		t.Fatalf("locate = %+v, want holder P(4) at %s after 2 hops", res, peers[4].Addr())
	}
	if res.Version == 0 {
		t.Fatal("locate lost the copy version")
	}
	if got := peers[4].Stats().Located.Load(); got != 1 {
		t.Fatalf("holder Located = %d, want 1", got)
	}
	// A locate must not count a store access — replication heuristics see
	// one access per get, however the get was served.
	if hits := peers[4].store.Hits("f"); hits != 0 {
		t.Fatalf("locate counted %d store accesses", hits)
	}

	tr, err := NewClient(peers[8].Addr()).LocateTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Path) != 3 || tr.Path[2].Action != msg.HopLocate || tr.Path[2].PID != 4 {
		t.Fatalf("traced locate path = %+v", tr.Path)
	}
}

func TestLocateClientWarmHintSingleRPC(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	cl := NewLocateClient(peers[8].Addr())

	// Cold: one locate walk, then the direct fetch.
	res, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || !bytes.Equal(res.Data, []byte("hello")) {
		t.Fatalf("cold locate get = %+v", res)
	}
	if cl.LocateStats().Locates.Load() != 1 {
		t.Fatalf("locates = %d, want 1", cl.LocateStats().Locates.Load())
	}

	// Warm: the hint sends the fetch straight to the holder — exactly one
	// fabric request total, zero payload bytes relayed.
	req0, relay0 := sumRequests(peers), sumRelayed(peers)
	res, err = cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || !bytes.Equal(res.Data, []byte("hello")) {
		t.Fatalf("warm locate get = %+v", res)
	}
	if d := sumRequests(peers) - req0; d != 1 {
		t.Fatalf("warm-hint get cost %d fabric requests, want 1", d)
	}
	if d := sumRelayed(peers) - relay0; d != 0 {
		t.Fatalf("warm-hint get relayed %d payload bytes, want 0", d)
	}
	if cl.LocateStats().HintHits.Load() != 1 {
		t.Fatalf("hint hits = %d, want 1", cl.LocateStats().HintHits.Load())
	}
	if cl.LocateStats().Locates.Load() != 1 {
		t.Fatalf("warm get re-located: locates = %d", cl.LocateStats().Locates.Load())
	}
	if peers[4].Stats().DirectServed.Load() != 2 {
		t.Fatalf("holder DirectServed = %d, want 2", peers[4].Stats().DirectServed.Load())
	}
}

func TestLocalOnlyGetNeverForwards(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// At a non-holder a local-only get is refused, never relayed.
	fwd0 := peers[8].Stats().Forwards.Load()
	resp, err := Call(peers[8].Addr(), &msg.Request{Kind: msg.KindGet, Flags: msg.FlagLocalOnly, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Err != ErrNotHolder {
		t.Fatalf("local-only get at non-holder = %+v", resp)
	}
	if d := peers[8].Stats().Forwards.Load() - fwd0; d != 0 {
		t.Fatalf("local-only get forwarded %d times", d)
	}
	if peers[8].Stats().DirectMisses.Load() != 1 {
		t.Fatalf("DirectMisses = %d, want 1", peers[8].Stats().DirectMisses.Load())
	}
	// At the holder it serves.
	resp, err = Call(peers[4].Addr(), &msg.Request{Kind: msg.KindGet, Flags: msg.FlagLocalOnly, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.ServedBy != 4 || !bytes.Equal(resp.Data, []byte("x")) {
		t.Fatalf("local-only get at holder = %+v", resp)
	}
	if peers[4].Stats().DirectServed.Load() != 1 {
		t.Fatalf("DirectServed = %d, want 1", peers[4].Stats().DirectServed.Load())
	}
}

func TestHintInvalidatedByWrites(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewLocateClient(peers[8].Addr())
	if err := cl.Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("f"); err != nil { // warms the hint
		t.Fatal(err)
	}
	if _, err := cl.Update("f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The update entered at the hinted holder and its ack refreshed the
	// hint in place — the read-after-write get serves directly off it, no
	// re-locate, and still must see the acknowledged write.
	if cl.LocateStats().HintRefreshes.Load() != 1 {
		t.Fatalf("HintRefreshes = %d, want 1", cl.LocateStats().HintRefreshes.Load())
	}
	locates0 := cl.LocateStats().Locates.Load()
	res, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("v2")) {
		t.Fatalf("post-update get = %q, want v2", res.Data)
	}
	if cl.LocateStats().Locates.Load() != locates0 {
		t.Fatal("post-update get re-located despite the refreshed hint")
	}
	// Delete purges too: the re-located get faults.
	if _, err := cl.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("f"); !errors.Is(err, ErrFault) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestLocateLegacyInterop(t *testing.T) {
	// Every peer emulates a pre-locate build: locate answers unknown-kind
	// and the client downgrades to the relay path, latched.
	peers := startMixedSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4),
		func(bitops.PID) bool { return true })
	cl := NewLocateClient(peers[8].Addr())
	if err := cl.Insert("f", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || !bytes.Equal(res.Data, []byte("legacy")) {
		t.Fatalf("get against legacy fabric = %+v", res)
	}
	st := cl.LocateStats()
	// Two probe RPCs on the first cold get — locate-set for the chunk
	// plane, then locate one level down — and both downgrades latch.
	if st.Locates.Load() != 2 || st.Downgrades.Load() != 1 || st.ChunkDowngrades.Load() != 1 || st.Relays.Load() != 1 {
		t.Fatalf("downgrade counters: locates=%d downgrades=%d chunk-downgrades=%d relays=%d, want 2/1/1/1",
			st.Locates.Load(), st.Downgrades.Load(), st.ChunkDowngrades.Load(), st.Relays.Load())
	}
	// The latches hold: the next get relays without probing either plane.
	if _, err := cl.Get("f"); err != nil {
		t.Fatal(err)
	}
	if st.Locates.Load() != 2 || st.Relays.Load() != 2 {
		t.Fatalf("latched counters: locates=%d relays=%d, want 2/2",
			st.Locates.Load(), st.Relays.Load())
	}
	// Peer-side: nothing located, nothing served directly — pure relay.
	for pid, p := range peers {
		if p.Stats().Located.Load() != 0 || p.Stats().DirectServed.Load() != 0 {
			t.Fatalf("legacy P(%d) touched the locate data plane", pid)
		}
	}
	// A legacy peer ignores the local-only bit and relays, exactly like a
	// build that predates the flag.
	resp, err := Call(peers[8].Addr(), &msg.Request{Kind: msg.KindGet, Flags: msg.FlagLocalOnly, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.ServedBy != 4 {
		t.Fatalf("legacy local-only get = %+v, want relayed serve from P(4)", resp)
	}
}

func TestLocateMixedFabricDowngrade(t *testing.T) {
	// Only the middle hop P(0) of the P(8) → P(0) → P(4) walk is legacy:
	// the forwarded locate dies there with unknown-kind, the client
	// downgrades, and the relay get still resolves through P(0).
	peers := startMixedSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4),
		func(pid bitops.PID) bool { return pid == 0 })
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("mixed")); err != nil {
		t.Fatal(err)
	}
	cl := NewLocateClient(peers[8].Addr())
	res, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || !bytes.Equal(res.Data, []byte("mixed")) {
		t.Fatalf("get across mixed fabric = %+v", res)
	}
	st := cl.LocateStats()
	if st.Downgrades.Load() != 1 || st.Relays.Load() != 1 {
		t.Fatalf("mixed-fabric counters: downgrades=%d relays=%d, want 1/1",
			st.Downgrades.Load(), st.Relays.Load())
	}
}

func TestTracedLookupFaultReturnsPath(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	// No such file anywhere: the traced get faults, and the error result
	// still carries the route walked, closed by a terminal fault hop.
	res, err := NewClient(peers[8].Addr()).GetTraced("missing")
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want fault", err)
	}
	if len(res.Path) == 0 {
		t.Fatal("traced fault returned no path")
	}
	last := res.Path[len(res.Path)-1]
	if last.Action != msg.HopFault {
		t.Fatalf("terminal hop = %+v, want fault", last)
	}
	if res.Path[0].PID != 8 {
		t.Fatalf("path starts at P(%d), want the entry peer P(8)", res.Path[0].PID)
	}
	// Locate faults identically.
	lres, lerr := NewClient(peers[8].Addr()).LocateTraced("missing")
	if lerr == nil {
		t.Fatal("locate of a missing file succeeded")
	}
	if len(lres.Path) == 0 || lres.Path[len(lres.Path)-1].Action != msg.HopFault {
		t.Fatalf("traced locate fault path = %+v", lres.Path)
	}
}

// TestLookupFallbackChain drives the full nextHop chain — live-ancestor
// walk exhausted (every ancestor dead), §3 FINDLIVENODE fallback to a
// primary without the copy, §4 migration into the sibling subtree — and
// asserts the relay and locate lookups walk the identical route.
func TestLookupFallbackChain(t *testing.T) {
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[1].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var holders []bitops.PID
	for pid, p := range peers {
		if p.store.Has("f") {
			holders = append(holders, pid)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want one per subtree", holders)
	}
	v := peers[holders[0]].view(4)
	sid := v.SubtreeID(holders[0])
	survivor := holders[1]

	// The origin: a peer in holders[0]'s subtree with a real ancestor
	// chain to kill.
	var origin bitops.PID
	var chain []bitops.PID
	for pid := range peers {
		if v.SubtreeID(pid) != sid || pid == holders[0] {
			continue
		}
		chain = chain[:0]
		for p := pid; ; {
			anc, ok := v.AliveAncestor(p)
			if !ok {
				break
			}
			chain = append(chain, anc)
			p = anc
		}
		if len(chain) >= 2 {
			origin = pid
			break
		}
	}
	if len(chain) < 2 {
		t.Fatalf("no origin with an ancestor chain found (subtree %d)", sid)
	}

	// Stage the fault: the origin's subtree loses its copy, and every
	// ancestor on the origin's walk dies.
	peers[holders[0]].store.Delete("f")
	for _, victim := range chain {
		markDeadEverywhere(peers, victim)
	}
	v2 := peers[origin].view(4)
	if _, ok := v2.AliveAncestor(origin); ok {
		t.Fatal("setup: origin still has a live ancestor")
	}
	prim, ok := v2.PrimaryHolder(v2.SubtreeID(origin))
	if !ok || prim == origin {
		t.Fatalf("setup: no distinct live primary (prim=%v ok=%v)", prim, ok)
	}

	assertChain := func(path []msg.Hop, terminal msg.HopAction) []uint32 {
		t.Helper()
		var actions []msg.HopAction
		var pids []uint32
		for _, h := range path {
			actions = append(actions, h.Action)
			pids = append(pids, h.PID)
		}
		if len(path) < 3 {
			t.Fatalf("path too short: %v", actions)
		}
		if path[0].PID != uint32(origin) || path[0].Action != msg.HopFallback {
			t.Fatalf("first hop = %+v, want FINDLIVENODE fallback out of P(%d); path %v", path[0], origin, actions)
		}
		if path[1].PID != uint32(prim) || path[1].Action != msg.HopMigrate {
			t.Fatalf("second hop = %+v, want migration at primary P(%d); path %v", path[1], prim, actions)
		}
		last := path[len(path)-1]
		if last.Action != terminal || last.PID != uint32(survivor) {
			t.Fatalf("terminal hop = %+v, want %v at P(%d)", last, terminal, survivor)
		}
		return pids
	}

	res, err := NewClient(peers[origin].Addr()).GetTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != uint32(survivor) || !bytes.Equal(res.Data, []byte("x")) {
		t.Fatalf("relay get = %+v, want serve from P(%d)", res, survivor)
	}
	relayRoute := assertChain(res.Path, msg.HopServe)

	lres, err := NewClient(peers[origin].Addr()).LocateTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if lres.PID != uint32(survivor) || lres.Addr != peers[survivor].Addr() {
		t.Fatalf("locate = %+v, want holder P(%d)", lres, survivor)
	}
	locateRoute := assertChain(lres.Path, msg.HopLocate)

	if fmt.Sprint(relayRoute) != fmt.Sprint(locateRoute) {
		t.Fatalf("locate route %v diverged from relay route %v", locateRoute, relayRoute)
	}

	// Second stage: the whole subtree dies except the origin — no
	// fallback primary left, so the lookup migrates straight out, through
	// both lookups again.
	for pid := range peers {
		if v.SubtreeID(pid) == sid && pid != origin {
			markDeadEverywhere(peers, pid)
		}
	}
	res, err = NewClient(peers[origin].Addr()).GetTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != uint32(survivor) {
		t.Fatalf("post-collapse relay get served by P(%d), want P(%d)", res.ServedBy, survivor)
	}
	if res.Path[0].Action != msg.HopMigrate {
		t.Fatalf("post-collapse first hop = %+v, want direct migration", res.Path[0])
	}
	lres, err = NewClient(peers[origin].Addr()).LocateTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if lres.PID != uint32(survivor) || lres.Path[0].Action != msg.HopMigrate {
		t.Fatalf("post-collapse locate = %+v path %+v", lres, lres.Path)
	}
}

// TestLocateClientConcurrentConsistency hammers one shared locate client
// with concurrent reads and writes — hint fills, purges and direct fetches
// race under -race — and then asserts the final acknowledged write is what
// every path serves.
func TestLocateClientConcurrentConsistency(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(8), hashring.Fixed(4))
	cl := NewLocateClient(peers[3].Addr())
	if err := cl.Insert("f", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	const writers, readers, rounds = 2, 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := cl.Update("f", []byte(fmt.Sprintf("w%d-%d", w, i)))
				// A concurrently superseded update applies nowhere and
				// reports "found no copy" — it lost the Lamport race, the
				// file is fine.
				if err != nil && !strings.Contains(err.Error(), "found no copy") {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < rounds*2; i++ {
				res, err := cl.Get("f")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", res.Version, lastVersion)
					return
				}
				lastVersion = res.Version
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiesced: one more write, then every read path must serve it.
	if _, err := cl.Update("f", []byte("final")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("f") // re-locates (hint purged by the update)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("final")) {
		t.Fatalf("locate get after final update = %q", res.Data)
	}
	res, err = cl.Get("f") // warm hint
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("final")) {
		t.Fatalf("warm-hint get after final update = %q", res.Data)
	}
}
