package netnode

// The peer-side observability layer: per-handler latency histograms, the
// serve/forward split on the get path, broadcast fan-out sizes, a
// structured stats snapshot (the JSON form of the stat line), and the
// Prometheus text exposition the admin endpoint serves. The paper's whole
// point is that the lookup tree replaces access logs; this file is what
// makes that visible on a live system — no logs are consulted, only the
// counters and distributions the node updates as it routes.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lesslog/internal/metrics"
	"lesslog/internal/msg"
	"lesslog/internal/store"
	"lesslog/internal/transport"
)

// peerObs bundles the peer's distributions. All fields are lock-free
// histograms, observed directly on the request path.
type peerObs struct {
	// handle is the full handler latency per request kind, measured from
	// decode to response — forwarded work included.
	handle [msg.KindCount]metrics.Histogram
	// serve is the latency of gets answered from the local store; forward
	// is the latency of gets that had to leave the node (downstream time
	// included). Their split is the live form of the paper's local-hit
	// versus tree-walk distinction.
	serve   metrics.Histogram
	forward metrics.Histogram
	// fanout records the number of delivery legs each update/delete
	// broadcast initiated at this peer.
	fanout metrics.Histogram
}

// handleHist returns the handler histogram for kind k.
func (o *peerObs) handleHist(k msg.Kind) *metrics.Histogram {
	if int(k) >= 1 && int(k) < msg.KindCount {
		return &o.handle[k]
	}
	return &o.handle[0]
}

// DistStat summarizes one distribution for the JSON stats snapshot.
// Latency distributions report milliseconds; the fan-out distribution
// reports legs.
type DistStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// distStat converts a snapshot, scaling samples by scale (1e-6 turns
// nanoseconds into milliseconds; 1 leaves counts alone).
func distStat(s metrics.HistogramSnapshot, scale float64) DistStat {
	return DistStat{
		Count: s.Count,
		Mean:  s.Mean() * scale,
		P50:   s.Quantile(0.5) * scale,
		P95:   s.Quantile(0.95) * scale,
		P99:   s.Quantile(0.99) * scale,
		Max:   float64(s.Max) * scale,
	}
}

const nsToMS = 1e-6

// StatSnapshot is the structured form of the stat line: everything the
// one-line summary says, plus the latency distributions, as one
// JSON-serializable value. Clients fetch it with KindStat + FlagJSON
// (Client.StatSnapshot, `lesslogd -op stat -json`).
type StatSnapshot struct {
	PID          uint32   `json:"pid"`
	Addr         string   `json:"addr"`
	M            int      `json:"m"`
	B            int      `json:"b"`
	Inserted     int      `json:"inserted"`
	Replicas     int      `json:"replicas"`
	LivePeers    int      `json:"live_peers"`
	KnownPeers   int      `json:"known_peers"`
	DetectorDown []uint32 `json:"detector_down"`

	Requests    uint64 `json:"requests"`
	Forwards    uint64 `json:"forwards"`
	Served      uint64 `json:"served"`
	Faults      uint64 `json:"faults"`
	Stored      uint64 `json:"stored"`
	Updated     uint64 `json:"updated"`
	Broadcast   uint64 `json:"broadcast"`
	PeersDown   uint64 `json:"peers_down"`
	PeersUp     uint64 `json:"peers_up"`
	ProtoErrors uint64 `json:"proto_errors"`

	// Locate-then-fetch data plane (docs/ROUTING.md): locates answered as
	// holder, local-only gets served/refused, and payload bytes relayed
	// through forwarded gets — the cost the locate path removes.
	Located      uint64 `json:"located"`
	DirectServed uint64 `json:"direct_served"`
	DirectMisses uint64 `json:"direct_misses"`
	RelayedBytes uint64 `json:"relayed_bytes"`

	// Chunked data plane (docs/ROUTING.md): ranged chunks served and their
	// payload bytes, version-pinned fetches refused (splice guard), and
	// replica-set locates answered as holder.
	ChunksServed  uint64 `json:"chunks_served"`
	ChunkBytes    uint64 `json:"chunk_bytes"`
	ChunkRefusals uint64 `json:"chunk_refusals"`
	LocateSets    uint64 `json:"locate_sets"`

	// Chunked write plane (docs/ROUTING.md "write plane"): upload chunks
	// staged and their payload bytes, staging sessions aborted (client
	// abort, TTL expiry, or a failed commit check), bodies pulled for a
	// notify delivery, notify legs retried whole-frame for pre-notify
	// children, broadcast initiations split by whether this peer already
	// held the name (the hint-guided entry measure), and request payload
	// bytes this peer pushed onto broadcast-tree legs (the bytes-on-tree
	// measure pull propagation keeps flat as copies grow).
	WriteChunks     uint64 `json:"write_chunks"`
	WriteBytes      uint64 `json:"write_bytes"`
	StagedAborts    uint64 `json:"staged_aborts"`
	NotifyPulls     uint64 `json:"notify_pulls"`
	NotifyFallbacks uint64 `json:"notify_fallbacks"`
	WritesAtHolder  uint64 `json:"writes_at_holder"`
	WritesRemote    uint64 `json:"writes_remote"`
	FanoutBytes     uint64 `json:"fanout_bytes"`

	// PipelineDepth is the number of pipelined requests currently being
	// handled across this peer's connections; FanoutActive is the number of
	// broadcast RPC legs currently in flight. Both are instantaneous gauges.
	PipelineDepth int64 `json:"pipeline_depth"`
	FanoutActive  int64 `json:"fanout_active"`

	// Anti-entropy repair (docs/REPAIR.md): probes issued, copies pushed
	// back / pulled in, local copies erased after a tombstone answer
	// (deletion propagated by repair), work deferred by the budget or a
	// legacy partner, digest frame bytes, and the budget's current byte
	// shortfall (gauge; 0 = keeping up).
	RepairProbes  uint64 `json:"repair_probes"`
	Repaired      uint64 `json:"repaired"`
	RepairPulled  uint64 `json:"repair_pulled"`
	RepairErased  uint64 `json:"repair_erased"`
	RepairSkipped uint64 `json:"repair_skipped"`
	DigestBytes   uint64 `json:"digest_bytes"`
	RepairDeficit int64  `json:"repair_deficit"`

	// Tombstones gauges live delete tombstones (deletion debt not yet
	// pruned); RepairTTFRMS is the last completed time-to-full-replication
	// episode — how long the inventory stayed divergent before
	// anti-entropy converged it (0 until an episode completes).
	Tombstones   int     `json:"tombstones"`
	RepairTTFRMS float64 `json:"repair_ttfr_ms"`

	// Trace plane (docs/OBSERVABILITY.md): entry requests and repair
	// rounds recorded into the trace ring, and how many of those were
	// retained as notable (slow or errored).
	TraceRecorded uint64 `json:"trace_recorded"`
	TraceNoted    uint64 `json:"trace_noted"`

	Transport transport.CountersSnapshot `json:"transport"`

	// RPCLatencyMS is the outbound per-kind RPC latency seen by this
	// peer's transport; HandlerLatencyMS is the inbound per-kind handler
	// latency. ServeLatencyMS/ForwardLatencyMS split the get path;
	// BroadcastFanout counts legs, not milliseconds.
	RPCLatencyMS     map[string]DistStat `json:"rpc_latency_ms"`
	HandlerLatencyMS map[string]DistStat `json:"handler_latency_ms"`
	ServeLatencyMS   DistStat            `json:"serve_latency_ms"`
	ForwardLatencyMS DistStat            `json:"forward_latency_ms"`
	BroadcastFanout  DistStat            `json:"broadcast_fanout"`

	// HandlerLatencyHist is the raw per-kind handler histogram — unlike
	// the DistStat summaries above, raw bucket vectors merge exactly
	// across peers, which is what lesslog-top aggregates into
	// cluster-wide percentiles (internal/fleet).
	HandlerLatencyHist map[string]metrics.HistogramSnapshot `json:"handler_latency_hist"`

	// HotNames is the top of the per-name §6 serve-counter table — the
	// store's hottest copies this counting window, at most hotNamesTopK
	// rows. Inventory is the full per-name table, included only when the
	// stat request carried msg.FlagInventory.
	HotNames  []store.Record `json:"hot_names,omitempty"`
	Inventory []store.Record `json:"inventory,omitempty"`
}

// hotNamesTopK bounds the HotNames list every JSON stat snapshot carries.
const hotNamesTopK = 16

// StatSnapshot captures the peer's current observable state.
func (p *Peer) StatSnapshot() StatSnapshot { return p.statSnapshot(false) }

func (p *Peer) statSnapshot(withInventory bool) StatSnapshot {
	rt := p.rt()
	inserted := len(p.store.Names(store.Inserted))
	total := p.store.Len()
	live := rt.live.LiveCount()
	known := len(rt.addrs)

	s := StatSnapshot{
		PID:           uint32(p.cfg.PID),
		Addr:          p.Addr(),
		M:             p.cfg.M,
		B:             p.cfg.B,
		Inserted:      inserted,
		Replicas:      total - inserted,
		LivePeers:     live,
		KnownPeers:    known,
		DetectorDown:  p.det.DownIDs(),
		Requests:      p.stats.Requests.Load(),
		Forwards:      p.stats.Forwards.Load(),
		Served:        p.stats.Served.Load(),
		Faults:        p.stats.Faults.Load(),
		Stored:        p.stats.Stored.Load(),
		Updated:       p.stats.Updated.Load(),
		Broadcast:     p.stats.Broadcast.Load(),
		PeersDown:     p.stats.PeersDown.Load(),
		PeersUp:       p.stats.PeersUp.Load(),
		ProtoErrors:   p.stats.ProtoErrors.Load(),
		Located:       p.stats.Located.Load(),
		DirectServed:  p.stats.DirectServed.Load(),
		DirectMisses:  p.stats.DirectMisses.Load(),
		RelayedBytes:  p.stats.RelayedBytes.Load(),
		ChunksServed:  p.stats.ChunksServed.Load(),
		ChunkBytes:    p.stats.ChunkBytes.Load(),
		ChunkRefusals: p.stats.ChunkRefusals.Load(),
		LocateSets:    p.stats.LocateSets.Load(),

		WriteChunks:     p.stats.WriteChunks.Load(),
		WriteBytes:      p.stats.WriteBytes.Load(),
		StagedAborts:    p.stats.StagedAborts.Load(),
		NotifyPulls:     p.stats.NotifyPulls.Load(),
		NotifyFallbacks: p.stats.NotifyFallbacks.Load(),
		WritesAtHolder:  p.stats.WritesAtHolder.Load(),
		WritesRemote:    p.stats.WritesRemote.Load(),
		FanoutBytes:     p.stats.FanoutBytes.Load(),

		PipelineDepth: p.stats.PipelineDepth.Load(),
		FanoutActive:  p.stats.FanoutActive.Load(),
		RepairProbes:  p.stats.RepairProbes.Load(),
		Repaired:      p.stats.Repaired.Load(),
		RepairPulled:  p.stats.RepairPulled.Load(),
		RepairErased:  p.stats.RepairErased.Load(),
		RepairSkipped: p.stats.RepairSkipped.Load(),
		DigestBytes:   p.stats.DigestBytes.Load(),
		RepairDeficit: p.stats.RepairDeficit.Load(),
		Tombstones:    p.store.TombstoneCount(),
		RepairTTFRMS:  float64(p.ttfr.Last()) * nsToMS,
		TraceRecorded: p.ring.Recorded(),
		TraceNoted:    p.ring.Noted(),
		Transport:     p.tr.Counters().Snapshot(),

		RPCLatencyMS:       map[string]DistStat{},
		HandlerLatencyMS:   map[string]DistStat{},
		HandlerLatencyHist: map[string]metrics.HistogramSnapshot{},
		ServeLatencyMS:     distStat(p.obs.serve.Snapshot(), nsToMS),
		ForwardLatencyMS:   distStat(p.obs.forward.Snapshot(), nsToMS),
		BroadcastFanout:    distStat(p.obs.fanout.Snapshot(), 1),
	}
	for kind, snap := range p.tr.LatencySnapshots() {
		s.RPCLatencyMS[kind] = distStat(snap, nsToMS)
	}
	for i := 1; i < msg.KindCount; i++ {
		if p.obs.handle[i].Count() == 0 {
			continue
		}
		snap := p.obs.handle[i].Snapshot()
		s.HandlerLatencyMS[msg.Kind(i).String()] = distStat(snap, nsToMS)
		s.HandlerLatencyHist[msg.Kind(i).String()] = snap
	}
	records := p.store.Records()
	s.HotNames = hotNames(records, hotNamesTopK)
	if withInventory {
		s.Inventory = records
	}
	return s
}

// hotNames returns the top-k records by hits (ties by name for
// determinism), skipping cold copies — an all-zero window yields nothing.
func hotNames(records []store.Record, k int) []store.Record {
	hot := make([]store.Record, 0, len(records))
	for _, r := range records {
		if r.Hits > 0 {
			hot = append(hot, r)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Hits != hot[j].Hits {
			return hot[i].Hits > hot[j].Hits
		}
		return hot[i].Name < hot[j].Name
	})
	if len(hot) > k {
		hot = hot[:k]
	}
	return hot
}

// WritePrometheus writes the peer's metrics in Prometheus text format —
// the /metrics page of the admin endpoint. Metric names and labels are
// documented in docs/OBSERVABILITY.md.
func (p *Peer) WritePrometheus(w io.Writer) {
	s := p.StatSnapshot()
	self := fmt.Sprintf(`pid="%d"`, s.PID)

	metrics.PrometheusFamily(w, "lesslog_requests_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Requests)})
	metrics.PrometheusFamily(w, "lesslog_forwards_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Forwards)})
	metrics.PrometheusFamily(w, "lesslog_served_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Served)})
	metrics.PrometheusFamily(w, "lesslog_faults_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Faults)})
	metrics.PrometheusFamily(w, "lesslog_stored_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Stored)})
	metrics.PrometheusFamily(w, "lesslog_updated_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Updated)})
	metrics.PrometheusFamily(w, "lesslog_broadcast_legs_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Broadcast)})
	metrics.PrometheusFamily(w, "lesslog_detector_flips_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `direction="down"`), Value: float64(s.PeersDown)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `direction="up"`), Value: float64(s.PeersUp)})
	metrics.PrometheusFamily(w, "lesslog_proto_errors_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.ProtoErrors)})
	metrics.PrometheusFamily(w, "lesslog_located_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.Located)})
	metrics.PrometheusFamily(w, "lesslog_direct_gets_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="served"`), Value: float64(s.DirectServed)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="miss"`), Value: float64(s.DirectMisses)})
	metrics.PrometheusFamily(w, "lesslog_relayed_payload_bytes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.RelayedBytes)})
	metrics.PrometheusFamily(w, "lesslog_chunks_served_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.ChunksServed)})
	metrics.PrometheusFamily(w, "lesslog_chunk_payload_bytes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.ChunkBytes)})
	metrics.PrometheusFamily(w, "lesslog_chunk_refusals_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.ChunkRefusals)})
	metrics.PrometheusFamily(w, "lesslog_locate_sets_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.LocateSets)})
	metrics.PrometheusFamily(w, "lesslog_write_chunks_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.WriteChunks)})
	metrics.PrometheusFamily(w, "lesslog_write_payload_bytes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.WriteBytes)})
	metrics.PrometheusFamily(w, "lesslog_staged_aborts_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.StagedAborts)})
	metrics.PrometheusFamily(w, "lesslog_notify_propagation_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="pulled"`), Value: float64(s.NotifyPulls)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="fallback"`), Value: float64(s.NotifyFallbacks)})
	metrics.PrometheusFamily(w, "lesslog_write_entries_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `entry="holder"`), Value: float64(s.WritesAtHolder)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `entry="remote"`), Value: float64(s.WritesRemote)})
	metrics.PrometheusFamily(w, "lesslog_fanout_payload_bytes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.FanoutBytes)})
	metrics.PrometheusFamily(w, "lesslog_repair_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="pushed"`), Value: float64(s.Repaired)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="pulled"`), Value: float64(s.RepairPulled)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="erased"`), Value: float64(s.RepairErased)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `outcome="skipped"`), Value: float64(s.RepairSkipped)})
	metrics.PrometheusFamily(w, "lesslog_repair_probes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.RepairProbes)})
	metrics.PrometheusFamily(w, "lesslog_digest_bytes_total", "counter",
		metrics.LabeledValue{Labels: self, Value: float64(s.DigestBytes)})
	metrics.PrometheusFamily(w, "lesslog_traces_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `class="recorded"`), Value: float64(s.TraceRecorded)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `class="noted"`), Value: float64(s.TraceNoted)})

	tc := s.Transport
	metrics.PrometheusFamily(w, "lesslog_transport_events_total", "counter",
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="dial"`), Value: float64(tc.Dials)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="pool_hit"`), Value: float64(tc.Reuses)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="retry"`), Value: float64(tc.Retries)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="timeout"`), Value: float64(tc.Timeouts)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="reconnect"`), Value: float64(tc.Reconnects)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="failure"`), Value: float64(tc.Failures)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `event="fault_injected"`), Value: float64(tc.Faults)})

	metrics.PrometheusFamily(w, "lesslog_live_peers", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(s.LivePeers)})
	metrics.PrometheusFamily(w, "lesslog_detector_down_peers", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(len(s.DetectorDown))})
	metrics.PrometheusFamily(w, "lesslog_store_files", "gauge",
		metrics.LabeledValue{Labels: mergePromLabels(self, `kind="inserted"`), Value: float64(s.Inserted)},
		metrics.LabeledValue{Labels: mergePromLabels(self, `kind="replica"`), Value: float64(s.Replicas)})
	metrics.PrometheusFamily(w, "lesslog_pipeline_depth", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(s.PipelineDepth)})
	metrics.PrometheusFamily(w, "lesslog_fanout_active_legs", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(s.FanoutActive)})
	metrics.PrometheusFamily(w, "lesslog_repair_deficit_bytes", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(s.RepairDeficit)})
	metrics.PrometheusFamily(w, "lesslog_tombstones", "gauge",
		metrics.LabeledValue{Labels: self, Value: float64(s.Tombstones)})
	metrics.PrometheusFamily(w, "lesslog_repair_ttfr_seconds", "gauge",
		metrics.LabeledValue{Labels: self, Value: s.RepairTTFRMS / 1e3})

	var rpc []metrics.LabeledHistogram
	for kind, snap := range p.tr.LatencySnapshots() {
		rpc = append(rpc, metrics.LabeledHistogram{
			Labels: mergePromLabels(self, fmt.Sprintf(`kind="%s"`, kind)), Snap: snap,
		})
	}
	metrics.PrometheusHistogram(w, "lesslog_rpc_latency_seconds", 1e-9, rpc...)

	var handlers []metrics.LabeledHistogram
	for i := 1; i < msg.KindCount; i++ {
		if p.obs.handle[i].Count() == 0 {
			continue
		}
		handlers = append(handlers, metrics.LabeledHistogram{
			Labels: mergePromLabels(self, fmt.Sprintf(`kind="%s"`, msg.Kind(i))),
			Snap:   p.obs.handle[i].Snapshot(),
		})
	}
	metrics.PrometheusHistogram(w, "lesslog_handler_latency_seconds", 1e-9, handlers...)

	metrics.PrometheusHistogram(w, "lesslog_get_serve_latency_seconds", 1e-9,
		metrics.LabeledHistogram{Labels: self, Snap: p.obs.serve.Snapshot()})
	metrics.PrometheusHistogram(w, "lesslog_get_forward_latency_seconds", 1e-9,
		metrics.LabeledHistogram{Labels: self, Snap: p.obs.forward.Snapshot()})
	metrics.PrometheusHistogram(w, "lesslog_broadcast_fanout_legs", 1,
		metrics.LabeledHistogram{Labels: self, Snap: p.obs.fanout.Snapshot()})
}

// mergePromLabels joins two non-empty label bodies.
func mergePromLabels(a, b string) string { return a + "," + b }

// appendHop extends a traced route with this stop's record, copying so
// retries and downstream appends never alias the caller's slice. The new
// hop's parent is the path's tail — on a linear walk that reproduces the
// old implicit ordering; on a fan-out each branch carries its parent's
// hop at the tail, so concurrently collected records still assemble into
// the right tree. A path already at the frame limit is passed through
// unchanged — the route stays truncated rather than failing the request.
func appendHop(path []msg.Hop, pid uint32, action msg.HopAction, d time.Duration) []msg.Hop {
	if len(path) >= msg.MaxHops {
		return path
	}
	parent := msg.NoParent
	if len(path) > 0 {
		parent = path[len(path)-1].PID
	}
	out := make([]msg.Hop, len(path), len(path)+1)
	copy(out, path)
	return append(out, msg.Hop{PID: pid, Parent: parent, Action: action, Dur: d})
}
