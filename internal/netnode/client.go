package netnode

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/routehint"
	"lesslog/internal/stream"
	"lesslog/internal/tracering"
	"lesslog/internal/transport"
)

// ErrFault is returned by Client operations when no copy of the file could
// be located — the paper's "fault".
var ErrFault = errors.New("netnode: file not found (fault)")

// ErrTooLarge rejects a write whose payload exceeds the system-wide file
// size cap (msg.MaxFileSize, 64 MiB) — or, against a fabric that predates
// the chunked write plane, the single wire frame's data cap (msg.MaxData).
// Caught at the client edge so the caller gets a typed, actionable error
// instead of a mid-stream failure after the bytes already started moving.
var ErrTooLarge = errors.New("netnode: payload exceeds the write size cap")

// DefaultLocateRetryAfter is how long a locate-mode client stays
// downgraded to the relay path after a peer answers locate with the
// unknown-kind error, before probing again — bounds the per-get cost of a
// mixed-version fabric without freezing the downgrade across a rolling
// upgrade.
const DefaultLocateRetryAfter = 30 * time.Second

// Client issues file operations against any peer of a networked LessLog
// system. The zero value is unusable; construct with NewClient or
// NewClientWith — or NewLocateClient for the locate-then-fetch data plane.
type Client struct {
	addr string
	tr   *transport.Transport

	// Locate mode (docs/ROUTING.md): gets resolve the holder through the
	// hint cache or a locate RPC and fetch the payload in one direct hop;
	// locateDown latches the relay fallback (unix-nanos until which locate
	// is considered unsupported by the fabric). The chunk plane stacks on
	// top: fetcher stripes ranged chunk fetches across the hinted replica
	// set, and chunkDown latches its own downgrade independently — a fabric
	// that speaks locate but not chunked fetch degrades one level (to
	// whole-frame direct fetches), not two (to relays).
	locate     bool
	hints      *routehint.Cache
	retryAfter time.Duration
	locateDown atomic.Int64
	fetcher    *stream.Fetcher
	chunkDown  atomic.Int64
	lstats     LocateStats

	// Chunked write plane (docs/ROUTING.md "write plane"): payloads over
	// one frame stream to the entry peer as a staged upload and commit
	// into the normal insert/update path there. Every client carries an
	// uploader — unlike the read-side chunk plane it needs no locate
	// support, just a put-speaking entry peer; putDown latches the
	// whole-frame fallback when the fabric answers unknown-kind.
	uploader *stream.Uploader
	putDown  atomic.Int64
}

// LocateStats counts a locate-mode client's data-plane outcomes.
type LocateStats struct {
	HintHits   atomic.Uint64 // gets served by a direct fetch off a cached hint
	HintStale  atomic.Uint64 // cached hints that failed and were invalidated
	Locates    atomic.Uint64 // locate RPCs issued
	Relays     atomic.Uint64 // gets that fell back to the relay path
	Downgrades atomic.Uint64 // unknown-kind answers that latched locate off

	ChunkedGets     atomic.Uint64 // gets served by the striped chunk plane
	ChunkDowngrades atomic.Uint64 // unknown-kind answers that latched chunking off
	OversizeRejects atomic.Uint64 // writes rejected at the edge for exceeding the size cap

	HintRefreshes atomic.Uint64 // write acks that refreshed the entry hint in place
	ChunkedPuts   atomic.Uint64 // writes streamed through the staged put plane
	PutDowngrades atomic.Uint64 // unknown-kind answers that latched chunked puts off
}

// LocateOptions configure a locate-mode client.
type LocateOptions struct {
	// Hints is the route-hint cache; nil gives the client a private cache
	// with routehint defaults. Pass a shared cache to pool hints across
	// clients of the same fabric.
	Hints *routehint.Cache
	// RetryAfter bounds how long the client stays downgraded after an
	// unknown-kind answer; <= 0 selects DefaultLocateRetryAfter. Covers
	// both latches: locate→relay and chunked→whole-frame.
	RetryAfter time.Duration
	// ChunkSize and ChunkWindow tune the striped chunk plane (bytes per
	// ranged fetch, in-flight chunks per transfer); <= 0 selects the
	// stream package defaults.
	ChunkSize   int
	ChunkWindow int
	// DisableChunks turns the chunk plane off entirely: every get uses
	// single-holder whole-frame fetches, as before PR 9.
	DisableChunks bool
}

// NewClient returns a client that contacts the peer at addr through the
// package default transport: deadlines and idempotent retries, no pooling.
func NewClient(addr string) *Client { return NewClientWith(addr, defaultTransport()) }

// NewClientWith returns a client that contacts the peer at addr through
// tr — e.g. a pooled transport shared across many clients, or one with a
// fault-injection table for tests.
func NewClientWith(addr string, tr *transport.Transport) *Client {
	return &Client{addr: addr, tr: tr, uploader: stream.NewUploader(tr, stream.Config{})}
}

// NewLocateClient returns a client whose gets use the locate-then-fetch
// data plane with default options and the default transport.
func NewLocateClient(addr string) *Client {
	return NewLocateClientWith(addr, defaultTransport(), LocateOptions{})
}

// NewLocateClientWith returns a locate-mode client over tr. Gets consult
// the route-hint cache and fetch directly at the holder; misses pay one
// locate walk; fabrics that answer locate with unknown-kind downgrade to
// the relay path for RetryAfter.
func NewLocateClientWith(addr string, tr *transport.Transport, opts LocateOptions) *Client {
	hints := opts.Hints
	if hints == nil {
		hints = routehint.New(0, 0)
	}
	retry := opts.RetryAfter
	if retry <= 0 {
		retry = DefaultLocateRetryAfter
	}
	c := &Client{addr: addr, tr: tr, locate: true, hints: hints, retryAfter: retry}
	c.uploader = stream.NewUploader(tr, stream.Config{
		ChunkSize: opts.ChunkSize,
		Window:    opts.ChunkWindow,
	})
	if !opts.DisableChunks {
		c.fetcher = stream.New(tr, stream.Config{
			ChunkSize: opts.ChunkSize,
			Window:    opts.ChunkWindow,
			// A transport-dead holder loses every hint it appears in; a
			// not-holder refusal only loses this name's hint there.
			Evict: func(name, addr string, hard bool) {
				if hard {
					hints.PurgeHolder(addr)
				} else {
					hints.PurgeFrom(name, addr)
				}
			},
		})
	}
	return c
}

// LocateStats returns the client's data-plane counters; zero-valued (and
// static) unless the client is in locate mode.
func (c *Client) LocateStats() *LocateStats { return &c.lstats }

// StreamStats exposes the chunk plane's transfer counters; nil when the
// client is not in locate mode or chunking is disabled.
func (c *Client) StreamStats() *stream.Stats {
	if c.fetcher == nil {
		return nil
	}
	return c.fetcher.Stats()
}

// Insert stores a file in the system. Payloads over one wire frame
// (msg.MaxData) stream to the entry peer as a staged chunked upload and
// commit into the normal insert path there; the hard cap is
// msg.MaxFileSize.
func (c *Client) Insert(name string, data []byte) error {
	if len(data) > msg.MaxFileSize {
		c.lstats.OversizeRejects.Add(1)
		return fmt.Errorf("%w: insert %q is %d bytes, cap %d", ErrTooLarge, name, len(data), msg.MaxFileSize)
	}
	if len(data) > msg.MaxData {
		_, _, err := c.chunkedWrite(msg.KindInsert, name, data)
		return err
	}
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	c.purgeHint(name)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}

// purgeHint invalidates name's route hint after any write attempt — the
// holder set or version may have moved, and a later get must not serve an
// older copy off a hint than the acknowledged write produced. No-op
// outside locate mode.
func (c *Client) purgeHint(name string) {
	if c.hints != nil {
		c.hints.Purge(name)
	}
}

// GetResult reports how a networked get was served.
type GetResult struct {
	Data     []byte
	Version  uint64
	ServedBy uint32
	Hops     int
	// Path is the observed wire-level route of a traced get (GetTraced):
	// one Hop per stop, the serving node last. Nil for untraced gets.
	Path []msg.Hop
}

// Get fetches a file, reporting which peer served it and the hop count.
// In locate mode the payload travels one direct hop from the holder
// whenever a hint or locate resolves it; otherwise it relays back through
// the lookup path.
func (c *Client) Get(name string) (GetResult, error) {
	req := &msg.Request{Kind: msg.KindGet, Name: name}
	if c.locate {
		return c.getLocate(req)
	}
	return c.get(req)
}

// GetTraced fetches a file with route tracing: every peer the request
// visits appends a hop record, and the result's Path holds the actual
// route — the live counterpart of internal/trace.Route's prediction. A
// locate-mode trace shows the locate walk followed by the direct fetch's
// serve hop; a failed traced get returns the partial Path alongside the
// error, ending in the fault hop.
func (c *Client) GetTraced(name string) (GetResult, error) {
	req := &msg.Request{
		Kind: msg.KindGet, Flags: msg.FlagTrace,
		Name: name, TraceID: rand.Uint64(),
	}
	if c.locate {
		return c.getLocate(req)
	}
	return c.get(req)
}

func (c *Client) get(req *msg.Request) (GetResult, error) {
	resp, err := c.tr.Do(c.addr, req)
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		// A traced fault still carries the route walked so far — hand the
		// partial path back with the error so the operator sees where
		// routing died.
		return GetResult{Hops: int(resp.Hops), Path: resp.Path},
			fmt.Errorf("%w: %s", ErrFault, req.Name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops), Path: resp.Path,
	}, nil
}

// getLocate is the locate-then-fetch get: warm hints go straight to the
// holder(s); cold names pay one locate walk, then fetch directly; fabrics
// that do not speak locate downgrade to the relay path. When the chunk
// plane is up, fetches are ranged and striped across the hinted replica
// set (getLocateChunked); traced gets stay on the whole-frame plane so the
// hop path remains a single coherent walk.
func (c *Client) getLocate(req *msg.Request) (GetResult, error) {
	chunked := c.fetcher != nil && req.Flags&msg.FlagTrace == 0 &&
		time.Now().UnixNano() >= c.chunkDown.Load()
	if chunked {
		if set, ok := c.hints.GetSet(req.Name); ok {
			if res, err := c.chunkFetch(req, set); err == nil {
				c.lstats.HintHits.Add(1)
				return res, nil
			}
			c.lstats.HintStale.Add(1)
			// A fully-legacy hint set latches the downgrade mid-flight.
			chunked = time.Now().UnixNano() >= c.chunkDown.Load()
		}
	} else if h, ok := c.hints.Get(req.Name); ok {
		if res, ok := c.directFetch(req, h); ok {
			c.lstats.HintHits.Add(1)
			return res, nil
		}
		c.lstats.HintStale.Add(1)
	}
	if time.Now().UnixNano() < c.locateDown.Load() {
		c.lstats.Relays.Add(1)
		return c.get(req)
	}
	if chunked {
		if res, handled, err := c.getLocateChunked(req); handled {
			return res, err
		}
		// Not handled: the fabric answered unknown-kind for the chunk
		// plane. The downgrade is latched; fall through to the
		// single-holder locate below — one level down, not two.
	}
	c.lstats.Locates.Add(1)
	resp, err := c.tr.Do(c.addr, &msg.Request{
		Kind: msg.KindLocate, Name: req.Name,
		Flags: req.Flags & msg.FlagTrace, TraceID: req.TraceID,
	})
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		if msg.IsUnknownKind(resp.Err) {
			// The entry peer (or a hop on the walk) predates locate:
			// latch the relay path instead of paying a wasted RPC per
			// get, and re-probe after the latch expires.
			c.lstats.Downgrades.Add(1)
			c.locateDown.Store(time.Now().Add(c.retryAfter).UnixNano())
			c.lstats.Relays.Add(1)
			return c.get(req)
		}
		return GetResult{Hops: int(resp.Hops), Path: resp.Path},
			fmt.Errorf("%w: %s", ErrFault, req.Name)
	}
	h := routehint.Hint{PID: resp.ServedBy, Addr: string(resp.Data), Version: resp.Version}
	freq := req
	if req.Flags&msg.FlagTrace != 0 {
		fr := *req
		fr.Path = resp.Path // the fetch trace continues where the locate ended
		freq = &fr
	}
	if res, ok := c.directFetch(freq, h); ok {
		return res, nil
	}
	// The located holder lost the file — or died — between locate and
	// fetch; serve this get through the relay path and let the next one
	// re-locate.
	c.lstats.Relays.Add(1)
	return c.get(req)
}

// directFetch is the one-hop data-plane fetch: a local-only get at h's
// address. On success the hint is refreshed; on refusal or transport
// failure the stale hint state is invalidated — per name, or per holder
// when the holder itself is unreachable — and ok is false so the caller
// re-resolves.
func (c *Client) directFetch(req *msg.Request, h routehint.Hint) (GetResult, bool) {
	freq := *req
	freq.Kind = msg.KindGet
	freq.Flags |= msg.FlagLocalOnly
	resp, err := c.tr.Do(h.Addr, &freq)
	if err != nil {
		c.hints.PurgeHolder(h.Addr)
		return GetResult{}, false
	}
	if !resp.OK {
		c.hints.Purge(req.Name)
		return GetResult{}, false
	}
	res := GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops), Path: resp.Path,
	}
	if resp.ServedBy != h.PID {
		// Served, but not by the hinted holder: a pre-locate peer ignored
		// the local-only bit and relayed. The data is good; the hint is not.
		c.hints.Purge(req.Name)
		return res, true
	}
	c.hints.Put(req.Name, routehint.Hint{PID: h.PID, Addr: h.Addr, Version: resp.Version})
	return res, true
}

// chunkFetch runs one striped chunked transfer across the hinted replica
// set. An all-legacy set latches the chunk-plane downgrade; every other
// failure is just reported (stale hints were already purged by the
// fetcher's evict callback).
func (c *Client) chunkFetch(req *msg.Request, set []routehint.Hint) (GetResult, error) {
	srcs := make([]stream.Source, len(set))
	for i, h := range set {
		srcs[i] = stream.Source{PID: h.PID, Addr: h.Addr}
	}
	data, ver, err := c.fetcher.Fetch(req.Name, 0, srcs)
	if err != nil {
		if errors.Is(err, stream.ErrUnsupported) {
			c.lstats.ChunkDowngrades.Add(1)
			c.chunkDown.Store(time.Now().Add(c.retryAfter).UnixNano())
		}
		return GetResult{}, err
	}
	c.lstats.ChunkedGets.Add(1)
	// A striped transfer has no single server; report the set's primary
	// (the holder the locate walk reached) as the representative.
	return GetResult{Data: data, Version: ver, ServedBy: set[0].PID}, nil
}

// getLocateChunked is the chunk plane's cold path: one locate-set walk
// resolves the name to its replica set, the set is cached, and the payload
// is fetched chunked and striped. handled=false means the entry peer
// answered unknown-kind — the chunk downgrade is latched and the caller
// should fall back to the single-holder locate plane. A transfer that
// loses its pinned version to a concurrent write re-locates once (the new
// version's set may differ) before giving up to the relay path.
func (c *Client) getLocateChunked(req *msg.Request) (res GetResult, handled bool, err error) {
	for attempt := 0; attempt < 2; attempt++ {
		c.lstats.Locates.Add(1)
		resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindLocateSet, Name: req.Name})
		if err != nil {
			return GetResult{}, true, err
		}
		if !resp.OK {
			if msg.IsUnknownKind(resp.Err) {
				c.lstats.ChunkDowngrades.Add(1)
				c.chunkDown.Store(time.Now().Add(c.retryAfter).UnixNano())
				return GetResult{}, false, nil
			}
			return GetResult{Hops: int(resp.Hops)}, true,
				fmt.Errorf("%w: %s", ErrFault, req.Name)
		}
		hs, derr := msg.DecodeHolders(resp.Data)
		if derr != nil {
			return GetResult{}, true, fmt.Errorf("netnode: locate-set %q: %v", req.Name, derr)
		}
		set := make([]routehint.Hint, len(hs))
		for i, h := range hs {
			set[i] = routehint.Hint{PID: h.PID, Addr: h.Addr, Version: h.Version}
		}
		c.hints.PutSet(req.Name, set)
		res, ferr := c.chunkFetch(req, set)
		if ferr == nil {
			return res, true, nil
		}
		if errors.Is(ferr, stream.ErrVersionGone) && attempt == 0 {
			continue
		}
		if errors.Is(ferr, stream.ErrUnsupported) {
			return GetResult{}, false, nil
		}
		break
	}
	// The set resolved but no replica could serve the transfer (churn,
	// faults mid-stripe): relay this get and let the next one re-locate.
	c.lstats.Relays.Add(1)
	res, err = c.get(req)
	return res, true, err
}

// LocateResult reports where a file lives: the serving holder's identity
// and the copy version it held at locate time.
type LocateResult struct {
	PID     uint32
	Addr    string
	Version uint64
	Hops    int
	// Path is the observed locate route (LocateTraced), the holder's
	// locate hop last. Nil for untraced locates.
	Path []msg.Hop
}

// Locate resolves name to its serving holder without moving the payload.
func (c *Client) Locate(name string) (LocateResult, error) {
	return c.locateReq(&msg.Request{Kind: msg.KindLocate, Name: name})
}

// LocateTraced resolves name with route tracing; the result's Path is the
// locate walk, one hop per stop.
func (c *Client) LocateTraced(name string) (LocateResult, error) {
	return c.locateReq(&msg.Request{
		Kind: msg.KindLocate, Flags: msg.FlagTrace,
		Name: name, TraceID: rand.Uint64(),
	})
}

func (c *Client) locateReq(req *msg.Request) (LocateResult, error) {
	resp, err := c.tr.Do(c.addr, req)
	if err != nil {
		return LocateResult{}, err
	}
	if !resp.OK {
		if msg.IsUnknownKind(resp.Err) {
			return LocateResult{}, fmt.Errorf("netnode: locate %q: %s", req.Name, resp.Err)
		}
		return LocateResult{Hops: int(resp.Hops), Path: resp.Path},
			fmt.Errorf("%w: %s", ErrFault, req.Name)
	}
	return LocateResult{
		PID: resp.ServedBy, Addr: string(resp.Data), Version: resp.Version,
		Hops: int(resp.Hops), Path: resp.Path,
	}, nil
}

// Update rewrites a file everywhere it is replicated. The returned count
// is the number of copies rewritten.
func (c *Client) Update(name string, data []byte) (int, error) {
	n, _, err := c.write(msg.KindUpdate, name, data, false)
	return n, err
}

// UpdateTraced rewrites a file everywhere with route tracing: the
// returned path is the assembled broadcast fan-out tree — the initiator's
// HopFanout root, one HopDeliver per holder reached, each hop carrying
// its parent's PID.
func (c *Client) UpdateTraced(name string, data []byte) (int, []msg.Hop, error) {
	return c.write(msg.KindUpdate, name, data, true)
}

// Delete erases a file everywhere. The returned count is the number of
// copies removed.
func (c *Client) Delete(name string) (int, error) {
	n, _, err := c.write(msg.KindDelete, name, nil, false)
	return n, err
}

// DeleteTraced erases a file everywhere with route tracing; the returned
// path is the delete broadcast's fan-out tree, like UpdateTraced's.
func (c *Client) DeleteTraced(name string) (int, []msg.Hop, error) {
	return c.write(msg.KindDelete, name, nil, true)
}

func (c *Client) write(kind msg.Kind, name string, data []byte, traced bool) (int, []msg.Hop, error) {
	if len(data) > msg.MaxFileSize {
		c.lstats.OversizeRejects.Add(1)
		return 0, nil, fmt.Errorf("%w: %s %q is %d bytes, cap %d", ErrTooLarge, kind, name, len(data), msg.MaxFileSize)
	}
	if len(data) > msg.MaxData {
		return c.chunkedWrite(kind, name, data)
	}
	// Hint-guided entry: start the broadcast at a holder when the hint
	// cache (or one locate walk) can name one, so initiation skips the
	// lookup hops the read path already eliminated.
	addr, hint := c.writeEntry(name)
	req := &msg.Request{Kind: kind, Name: name, Data: data}
	if traced {
		req.Flags = msg.FlagTrace
		req.TraceID = rand.Uint64()
	}
	resp, err := c.tr.Do(addr, req)
	if err != nil && hint != nil {
		// The hinted holder is unreachable: purge everything it hinted at
		// and retry once at the home peer, like a stale-hint read.
		c.hints.PurgeHolder(addr)
		hint = nil
		resp, err = c.tr.Do(c.addr, req)
	}
	if err != nil {
		c.purgeHint(name)
		return 0, nil, err
	}
	if !resp.OK {
		c.purgeHint(name)
		return 0, resp.Path, fmt.Errorf("netnode: %s %q: %s", kind, name, resp.Err)
	}
	c.noteWriteAck(kind, name, hint, resp.Version)
	return int(resp.Hops), resp.Path, nil
}

// writeEntry resolves where a broadcast write should enter the fabric: the
// hinted holder when the cache has one, else one locate walk (cached for
// the next write or read), else the home peer. Outside locate mode — or
// while the locate downgrade latch is set — writes enter at the home peer
// exactly as before the write plane.
func (c *Client) writeEntry(name string) (string, *routehint.Hint) {
	if !c.locate || time.Now().UnixNano() < c.locateDown.Load() {
		return c.addr, nil
	}
	if h, ok := c.hints.Get(name); ok {
		return h.Addr, &h
	}
	c.lstats.Locates.Add(1)
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindLocate, Name: name})
	if err != nil || !resp.OK {
		if err == nil && msg.IsUnknownKind(resp.Err) {
			c.lstats.Downgrades.Add(1)
			c.locateDown.Store(time.Now().Add(c.retryAfter).UnixNano())
		}
		// Unlocatable (e.g. a first write racing the insert): enter at the
		// home peer; the write path handles the miss like it always has.
		return c.addr, nil
	}
	h := routehint.Hint{PID: resp.ServedBy, Addr: string(resp.Data), Version: resp.Version}
	c.hints.Put(name, h)
	return h.Addr, &h
}

// noteWriteAck settles the hint state after an acknowledged write. An
// update that entered at a hinted holder refreshes that entry in place
// with the acked version — the holder just applied the broadcast, so the
// read-after-write path skips a locate instead of paying one to
// rediscover the same holder. Every other ack invalidates, as before:
// the holder set or version moved in a way the client cannot name.
func (c *Client) noteWriteAck(kind msg.Kind, name string, hint *routehint.Hint, version uint64) {
	if c.hints == nil {
		return
	}
	if kind != msg.KindUpdate || hint == nil {
		c.hints.Purge(name)
		return
	}
	c.hints.Put(name, routehint.Hint{PID: hint.PID, Addr: hint.Addr, Version: version})
	c.lstats.HintRefreshes.Add(1)
}

// chunkedWrite streams an over-frame payload to the entry peer as a
// staged upload committing into kind's write path. A fabric that answers
// the opening frame unknown-kind predates the put plane: the downgrade
// latch pins later over-frame writes to the typed edge rejection (the
// pre-chunking behavior) until RetryAfter expires.
func (c *Client) chunkedWrite(kind msg.Kind, name string, data []byte) (int, []msg.Hop, error) {
	op := msg.PutInsert
	if kind == msg.KindUpdate {
		op = msg.PutUpdate
	}
	if time.Now().UnixNano() < c.putDown.Load() {
		c.lstats.OversizeRejects.Add(1)
		return 0, nil, fmt.Errorf("%w: %s %q is %d bytes, frame cap %d on a fabric predating chunked writes",
			ErrTooLarge, kind, name, len(data), msg.MaxData)
	}
	addr := c.addr
	var hint *routehint.Hint
	if kind == msg.KindUpdate {
		addr, hint = c.writeEntry(name)
	}
	resp, err := c.uploader.Put(addr, name, data, op)
	if err != nil && hint != nil && !errors.Is(err, stream.ErrUnsupported) {
		c.hints.PurgeHolder(addr)
		hint = nil
		resp, err = c.uploader.Put(c.addr, name, data, op)
	}
	if err != nil {
		c.purgeHint(name)
		if errors.Is(err, stream.ErrUnsupported) {
			c.lstats.PutDowngrades.Add(1)
			c.lstats.OversizeRejects.Add(1)
			c.putDown.Store(time.Now().Add(c.retryAfter).UnixNano())
			return 0, nil, fmt.Errorf("%w: %s %q is %d bytes, frame cap %d on a fabric predating chunked writes",
				ErrTooLarge, kind, name, len(data), msg.MaxData)
		}
		return 0, nil, err
	}
	c.lstats.ChunkedPuts.Add(1)
	c.noteWriteAck(kind, name, hint, resp.Version)
	return int(resp.Hops), resp.Path, nil
}

// Store places a copy directly on the contacted peer; test and tooling
// hook for building replica layouts by hand.
func (c *Client) Store(name string, data []byte, version uint64, replica bool) error {
	var flags uint8
	if replica {
		flags |= msg.FlagReplica
	}
	resp, err := c.tr.Do(c.addr, &msg.Request{
		Kind: msg.KindStore, Flags: flags, Name: name, Data: data, Version: version,
	})
	c.purgeHint(name)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: store %q: %s", name, resp.Err)
	}
	return nil
}

// Stat returns the contacted peer's one-line status summary.
func (c *Client) Stat() (string, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindStat})
	if err != nil {
		return "", err
	}
	return string(resp.Data), nil
}

// StatSnapshot returns the contacted peer's structured stats snapshot —
// the JSON form behind `lesslogd -op stat -json`.
func (c *Client) StatSnapshot() (StatSnapshot, error) {
	return c.statSnapshot(msg.FlagJSON)
}

// StatSnapshotFull returns the stats snapshot with the peer's full
// per-name inventory included — the fleet scraper's request shape
// (FlagInventory), too heavy for routine stat polls.
func (c *Client) StatSnapshotFull() (StatSnapshot, error) {
	return c.statSnapshot(msg.FlagJSON | msg.FlagInventory)
}

func (c *Client) statSnapshot(flags uint8) (StatSnapshot, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindStat, Flags: flags})
	if err != nil {
		return StatSnapshot{}, err
	}
	if !resp.OK {
		return StatSnapshot{}, fmt.Errorf("netnode: stat: %s", resp.Err)
	}
	var s StatSnapshot
	if err := json.Unmarshal(resp.Data, &s); err != nil {
		return StatSnapshot{}, fmt.Errorf("netnode: stat: decode snapshot: %w", err)
	}
	return s, nil
}

// Traces returns the contacted peer's sampled trace ring — the wire form
// of the admin endpoint's /traces page. Peers predating the trace plane
// answer unknown-kind, surfaced as an error.
func (c *Client) Traces() (tracering.Snapshot, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindTraces})
	if err != nil {
		return tracering.Snapshot{}, err
	}
	if !resp.OK {
		return tracering.Snapshot{}, fmt.Errorf("netnode: traces: %s", resp.Err)
	}
	var s tracering.Snapshot
	if err := json.Unmarshal(resp.Data, &s); err != nil {
		return tracering.Snapshot{}, fmt.Errorf("netnode: traces: decode snapshot: %w", err)
	}
	return s, nil
}
