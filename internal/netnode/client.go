package netnode

import (
	"errors"
	"fmt"

	"lesslog/internal/msg"
	"lesslog/internal/transport"
)

// ErrFault is returned by Client operations when no copy of the file could
// be located — the paper's "fault".
var ErrFault = errors.New("netnode: file not found (fault)")

// Client issues file operations against any peer of a networked LessLog
// system. The zero value is unusable; construct with NewClient or
// NewClientWith.
type Client struct {
	addr string
	tr   *transport.Transport
}

// NewClient returns a client that contacts the peer at addr through the
// package default transport: deadlines and idempotent retries, no pooling.
func NewClient(addr string) *Client { return &Client{addr: addr, tr: defaultTransport()} }

// NewClientWith returns a client that contacts the peer at addr through
// tr — e.g. a pooled transport shared across many clients, or one with a
// fault-injection table for tests.
func NewClientWith(addr string, tr *transport.Transport) *Client {
	return &Client{addr: addr, tr: tr}
}

// Insert stores a file in the system.
func (c *Client) Insert(name string, data []byte) error {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}

// GetResult reports how a networked get was served.
type GetResult struct {
	Data     []byte
	Version  uint64
	ServedBy uint32
	Hops     int
}

// Get fetches a file, reporting which peer served it and the hop count.
func (c *Client) Get(name string) (GetResult, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindGet, Name: name})
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		return GetResult{}, fmt.Errorf("%w: %s", ErrFault, name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops),
	}, nil
}

// Update rewrites a file everywhere it is replicated. The returned count
// is the number of copies rewritten.
func (c *Client) Update(name string, data []byte) (int, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindUpdate, Name: name, Data: data})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("netnode: update %q: %s", name, resp.Err)
	}
	return int(resp.Hops), nil
}

// Delete erases a file everywhere. The returned count is the number of
// copies removed.
func (c *Client) Delete(name string) (int, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindDelete, Name: name})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("netnode: delete %q: %s", name, resp.Err)
	}
	return int(resp.Hops), nil
}

// Store places a copy directly on the contacted peer; test and tooling
// hook for building replica layouts by hand.
func (c *Client) Store(name string, data []byte, version uint64, replica bool) error {
	var flags uint8
	if replica {
		flags |= msg.FlagReplica
	}
	resp, err := c.tr.Do(c.addr, &msg.Request{
		Kind: msg.KindStore, Flags: flags, Name: name, Data: data, Version: version,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: store %q: %s", name, resp.Err)
	}
	return nil
}

// Stat returns the contacted peer's one-line status summary.
func (c *Client) Stat() (string, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindStat})
	if err != nil {
		return "", err
	}
	return string(resp.Data), nil
}
