package netnode

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"

	"lesslog/internal/msg"
	"lesslog/internal/transport"
)

// ErrFault is returned by Client operations when no copy of the file could
// be located — the paper's "fault".
var ErrFault = errors.New("netnode: file not found (fault)")

// Client issues file operations against any peer of a networked LessLog
// system. The zero value is unusable; construct with NewClient or
// NewClientWith.
type Client struct {
	addr string
	tr   *transport.Transport
}

// NewClient returns a client that contacts the peer at addr through the
// package default transport: deadlines and idempotent retries, no pooling.
func NewClient(addr string) *Client { return &Client{addr: addr, tr: defaultTransport()} }

// NewClientWith returns a client that contacts the peer at addr through
// tr — e.g. a pooled transport shared across many clients, or one with a
// fault-injection table for tests.
func NewClientWith(addr string, tr *transport.Transport) *Client {
	return &Client{addr: addr, tr: tr}
}

// Insert stores a file in the system.
func (c *Client) Insert(name string, data []byte) error {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}

// GetResult reports how a networked get was served.
type GetResult struct {
	Data     []byte
	Version  uint64
	ServedBy uint32
	Hops     int
	// Path is the observed wire-level route of a traced get (GetTraced):
	// one Hop per stop, the serving node last. Nil for untraced gets.
	Path []msg.Hop
}

// Get fetches a file, reporting which peer served it and the hop count.
func (c *Client) Get(name string) (GetResult, error) {
	return c.get(&msg.Request{Kind: msg.KindGet, Name: name})
}

// GetTraced fetches a file with route tracing: every peer the request
// visits appends a hop record, and the result's Path holds the actual
// route — the live counterpart of internal/trace.Route's prediction.
func (c *Client) GetTraced(name string) (GetResult, error) {
	return c.get(&msg.Request{
		Kind: msg.KindGet, Flags: msg.FlagTrace,
		Name: name, TraceID: rand.Uint64(),
	})
}

func (c *Client) get(req *msg.Request) (GetResult, error) {
	resp, err := c.tr.Do(c.addr, req)
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		return GetResult{}, fmt.Errorf("%w: %s", ErrFault, req.Name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops), Path: resp.Path,
	}, nil
}

// Update rewrites a file everywhere it is replicated. The returned count
// is the number of copies rewritten.
func (c *Client) Update(name string, data []byte) (int, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindUpdate, Name: name, Data: data})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("netnode: update %q: %s", name, resp.Err)
	}
	return int(resp.Hops), nil
}

// Delete erases a file everywhere. The returned count is the number of
// copies removed.
func (c *Client) Delete(name string) (int, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindDelete, Name: name})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("netnode: delete %q: %s", name, resp.Err)
	}
	return int(resp.Hops), nil
}

// Store places a copy directly on the contacted peer; test and tooling
// hook for building replica layouts by hand.
func (c *Client) Store(name string, data []byte, version uint64, replica bool) error {
	var flags uint8
	if replica {
		flags |= msg.FlagReplica
	}
	resp, err := c.tr.Do(c.addr, &msg.Request{
		Kind: msg.KindStore, Flags: flags, Name: name, Data: data, Version: version,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: store %q: %s", name, resp.Err)
	}
	return nil
}

// Stat returns the contacted peer's one-line status summary.
func (c *Client) Stat() (string, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindStat})
	if err != nil {
		return "", err
	}
	return string(resp.Data), nil
}

// StatSnapshot returns the contacted peer's structured stats snapshot —
// the JSON form behind `lesslogd -op stat -json`.
func (c *Client) StatSnapshot() (StatSnapshot, error) {
	resp, err := c.tr.Do(c.addr, &msg.Request{Kind: msg.KindStat, Flags: msg.FlagJSON})
	if err != nil {
		return StatSnapshot{}, err
	}
	if !resp.OK {
		return StatSnapshot{}, fmt.Errorf("netnode: stat: %s", resp.Err)
	}
	var s StatSnapshot
	if err := json.Unmarshal(resp.Data, &s); err != nil {
		return StatSnapshot{}, fmt.Errorf("netnode: stat: decode snapshot: %w", err)
	}
	return s, nil
}
