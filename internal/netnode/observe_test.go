package netnode

// End-to-end tests of the observability layer: wire-level route tracing
// checked against the ptree prediction, the structured stat snapshot, the
// admin HTTP endpoint, and the traced-get overhead benchmarks behind
// results/obs_bench.txt.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
)

// hopPIDs projects the observed hop records onto the PID sequence that
// PathLiveStops predicts.
func hopPIDs(hops []msg.Hop) []bitops.PID {
	out := make([]bitops.PID, len(hops))
	for i, h := range hops {
		out[i] = bitops.PID(h.PID)
	}
	return out
}

func pidsEqual(a, b []bitops.PID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTracedGetMatchesPrediction boots the paper's 16-node system, runs a
// traced get and checks the observed wire-level route is exactly the route
// internal/ptree predicts for the same liveness state — the paper path
// P(8) → P(0) → P(4).
func TestTracedGetMatchesPrediction(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	res, err := NewClient(peers[8].Addr()).GetTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	want := ptree.NewView(4, liveness.NewAllLive(4, 16), 0).PathLiveStops(8)
	if got := hopPIDs(res.Path); !pidsEqual(got, want) {
		t.Fatalf("traced route %v, ptree predicts %v", got, want)
	}
	last := res.Path[len(res.Path)-1]
	if last.Action != msg.HopServe || last.PID != res.ServedBy {
		t.Fatalf("last hop = %+v, want HopServe at P(%d)", last, res.ServedBy)
	}
	for _, h := range res.Path[:len(res.Path)-1] {
		if h.Action != msg.HopForward {
			t.Fatalf("mid-route hop = %+v, want HopForward", h)
		}
	}
	if len(res.Path) != res.Hops+1 {
		t.Fatalf("%d hop records for a %d-hop get", len(res.Path), res.Hops)
	}
	// An untraced get of the same file carries no route.
	plain, err := NewClient(peers[8].Addr()).Get("f")
	if err != nil || plain.Path != nil {
		t.Fatalf("untraced get path = %v, err = %v", plain.Path, err)
	}
}

// TestTracedGetFallbackRoute reruns the §3 dead-target example traced: with
// P(4) and P(5) dead the route must end in a FINDLIVENODE hop, and the
// stops up to it must match PathLiveStops for the same liveness state.
func TestTracedGetFallbackRoute(t *testing.T) {
	var pids []bitops.PID
	for i := 0; i < 16; i++ {
		if i == 4 || i == 5 {
			continue
		}
		pids = append(pids, bitops.PID(i))
	}
	peers := startSystem(t, 4, 0, pids, hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := NewClient(peers[8].Addr()).GetTraced("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 6 {
		t.Fatalf("served by P(%d), want the fallback holder P(6)", res.ServedBy)
	}
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	want := ptree.NewView(4, live, 0).PathLiveStops(8)
	walked := hopPIDs(res.Path)
	if !pidsEqual(walked[:len(want)], want) {
		t.Fatalf("traced walk %v does not start with predicted stops %v", walked, want)
	}
	var sawFallback bool
	for _, h := range res.Path {
		if h.Action == msg.HopFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatalf("no FINDLIVENODE hop in traced route %v", res.Path)
	}
	if last := res.Path[len(res.Path)-1]; last.Action != msg.HopServe || last.PID != 6 {
		t.Fatalf("last hop = %+v, want HopServe at P(6)", last)
	}
}

// TestStatSnapshotOverWire exercises the structured replacement for the
// free-text stat: the JSON snapshot must carry the same facts the one-line
// form prints, plus the latency distributions.
func TestStatSnapshotOverWire(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[9].Addr())
	if err := cl.Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(peers[8].Addr()).Get("f"); err != nil {
		t.Fatal(err)
	}
	snap, err := NewClient(peers[8].Addr()).StatSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.PID != 8 || snap.M != 4 || snap.LivePeers != 16 {
		t.Fatalf("snapshot identity = %+v", snap)
	}
	if snap.Requests == 0 || snap.Forwards == 0 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if d, ok := snap.RPCLatencyMS["get"]; !ok || d.Count == 0 || d.P95 <= 0 {
		t.Fatalf("rpc get latency = %+v", snap.RPCLatencyMS)
	}
	if d, ok := snap.HandlerLatencyMS["get"]; !ok || d.Count == 0 {
		t.Fatalf("handler get latency = %+v", snap.HandlerLatencyMS)
	}
	if snap.ForwardLatencyMS.Count == 0 {
		t.Fatalf("forward latency = %+v", snap.ForwardLatencyMS)
	}
	// The serving peer records serve latency instead.
	srv, err := NewClient(peers[4].Addr()).StatSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if srv.ServeLatencyMS.Count == 0 || srv.Served == 0 {
		t.Fatalf("serving peer snapshot = %+v", srv)
	}
	// The legacy one-line form still works alongside.
	line, err := NewClient(peers[8].Addr()).Stat()
	if err != nil || !strings.Contains(line, "pid=8") {
		t.Fatalf("one-line stat = %q, %v", line, err)
	}
}

// TestAdminEndpoint drives every route of the admin HTTP server against a
// live system that has served a traced get.
func TestAdminEndpoint(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(peers[8].Addr()).GetTraced("f"); err != nil {
		t.Fatal(err)
	}
	adm, err := peers[8].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + adm.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE lesslog_rpc_latency_seconds histogram",
		`lesslog_rpc_latency_seconds_count{pid="8",kind="get"}`,
		`lesslog_requests_total{pid="8"}`,
		`lesslog_live_peers{pid="8"} 16`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, `lesslog_rpc_latency_seconds_count{pid="8",kind="get"} 0`) {
		t.Fatal("/metrics reports a zero-count get histogram after a get")
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var h adminHealth
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz body %q: %v", body, err)
	}
	if h.Status != "ok" || h.PID != 8 || h.LivePeers != 16 || h.KnownPeers != 16 {
		t.Fatalf("/healthz = %+v", h)
	}

	code, body = get("/trees")
	if code != http.StatusOK || !strings.Contains(body, "P(8)") {
		t.Fatalf("/trees = %d, %q", code, body)
	}
	code, body = get("/trees?root=4")
	if code != http.StatusOK || !strings.Contains(body, "lookup tree of P(4)") {
		t.Fatalf("/trees?root=4 = %d, %q", code, body)
	}
	if code, _ = get("/trees?root=99"); code != http.StatusBadRequest {
		t.Fatalf("/trees?root=99 = %d, want 400", code)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// /checkpoint is POST-only and 409s on a peer without a data dir (the
	// durable-peer happy path lives in durable_test.go).
	if code, _ = get("/checkpoint"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint = %d, want 405", code)
	}
	resp, err := http.Post("http://"+adm.Addr()+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /checkpoint without data dir = %d, want 409", resp.StatusCode)
	}
}

// benchSystem boots a 16-node system holding one file at P(4) for the
// traced-vs-untraced overhead comparison.
func benchSystem(b *testing.B) *Client {
	peers := startSystem(b, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[9].Addr()).Insert("bench", []byte("payload")); err != nil {
		b.Fatal(err)
	}
	return NewClient(peers[8].Addr())
}

func BenchmarkGetOverTCP(b *testing.B) {
	cl := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetTracedOverTCP(b *testing.B) {
	cl := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.GetTraced("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
