package netnode

// The peer side of the chunked write plane (docs/ROUTING.md "write
// plane"): staged uploads (KindPut) assemble a payload chunk by chunk in
// an in-memory table that is deliberately outside the store — the
// Persister/WAL hook fires only when the commit lands the assembled file
// through the normal insert/update paths, so a partial upload is never
// visible to reads and never durable across a crash. Pull-based
// propagation (KindNotify) is the update broadcast's payload-free twin:
// the tree carries only the transfer facts (size, checksum, pull
// sources), each delivered holder pulls the body over the chunked data
// plane from the origin or an already-converged sibling, and the origin
// keeps the committed bytes in a short-lived outbox so it can serve the
// pulls even when it is not itself a holder.

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/msg"
	"lesslog/internal/ptree"
	"lesslog/internal/store"
	"lesslog/internal/stream"
)

// Staging and outbox bounds. The caps bound a peer's write-plane memory:
// staging at the worst case of maxUploadSessions full-size transfers, the
// outbox at the committed payloads still being pulled by in-flight
// broadcasts. The TTLs reclaim sessions whose uploader died mid-transfer
// and outbox entries every pull has had ample time to fetch.
const (
	maxUploadSessions = 64
	maxStagedBytes    = 256 << 20
	uploadTTL         = 2 * time.Minute
	maxOutboxBytes    = 256 << 20
	outboxTTL         = 2 * time.Minute
)

// upload is one staging session: the declared transfer shape and the
// buffer being assembled. got maps chunk offsets to lengths so a
// retransmitted chunk (same offset, same length) counts its bytes once,
// while a contradictory one kills the session rather than splice payloads.
type upload struct {
	name     string
	total    uint64
	fileCRC  uint32
	buf      []byte
	got      map[uint64]int
	gotBytes uint64
	deadline time.Time
}

// uploadTable holds a peer's open staging sessions, keyed by token.
// Tokens start at 1 — the zero token is the wire protocol's "open a new
// session" marker. Expired sessions are pruned lazily under the same
// lock every access takes; the returned prune count feeds StagedAborts.
type uploadTable struct {
	mu    sync.Mutex
	seq   uint64
	m     map[uint64]*upload
	bytes uint64
}

// prune drops expired sessions. Caller holds mu.
func (t *uploadTable) prune(now time.Time) uint64 {
	var n uint64
	for tok, u := range t.m {
		if now.After(u.deadline) {
			t.bytes -= u.total
			delete(t.m, tok)
			n++
		}
	}
	return n
}

// stage applies one PutData frame: opens a session on token 0, otherwise
// verifies the frame against the opened shape and copies the chunk in.
func (t *uploadTable) stage(name string, pr *msg.PutReq) (token uint64, pruned uint64, err error) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	pruned = t.prune(now)
	if pr.Token == 0 {
		if pr.Offset != 0 {
			return 0, pruned, fmt.Errorf("netnode: upload must open at offset 0")
		}
		if len(t.m) >= maxUploadSessions || t.bytes+pr.TotalSize > maxStagedBytes {
			return 0, pruned, fmt.Errorf("netnode: upload staging full")
		}
		if t.m == nil {
			t.m = make(map[uint64]*upload)
		}
		t.seq++
		token = t.seq
		u := &upload{
			name: name, total: pr.TotalSize, fileCRC: pr.FileCRC,
			buf: make([]byte, pr.TotalSize), got: make(map[uint64]int),
		}
		t.m[token] = u
		t.bytes += pr.TotalSize
		return token, pruned + t.stageChunk(u, token, pr, now), nil
	}
	u, ok := t.m[pr.Token]
	if !ok {
		return 0, pruned, fmt.Errorf("netnode: unknown upload session")
	}
	if u.name != name || u.total != pr.TotalSize || u.fileCRC != pr.FileCRC {
		t.dropLocked(pr.Token)
		return 0, pruned + 1, fmt.Errorf("netnode: put frame contradicts opened session")
	}
	return pr.Token, pruned + t.stageChunk(u, pr.Token, pr, now), nil
}

// stageChunk copies one verified chunk into the session buffer. Caller
// holds mu. A same-offset same-length frame is an idempotent retry; a
// same-offset different-length frame can only splice two transfers, so
// the session dies (returned as a prune for the abort counter) and err
// stays nil — the caller surfaces the contradiction on the next frame.
func (t *uploadTable) stageChunk(u *upload, token uint64, pr *msg.PutReq, now time.Time) uint64 {
	if prev, dup := u.got[pr.Offset]; dup {
		if prev == len(pr.Chunk) {
			copy(u.buf[pr.Offset:], pr.Chunk)
			u.deadline = now.Add(uploadTTL)
			return 0
		}
		t.dropLocked(token)
		return 1
	}
	copy(u.buf[pr.Offset:], pr.Chunk)
	u.got[pr.Offset] = len(pr.Chunk)
	u.gotBytes += uint64(len(pr.Chunk))
	u.deadline = now.Add(uploadTTL)
	return 0
}

// dropLocked removes one session. Caller holds mu.
func (t *uploadTable) dropLocked(token uint64) bool {
	u, ok := t.m[token]
	if !ok {
		return false
	}
	t.bytes -= u.total
	delete(t.m, token)
	return true
}

// drop removes one session (PutAbort), reporting whether it existed.
func (t *uploadTable) drop(token uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropLocked(token)
}

// take removes and returns the session a commit addresses.
func (t *uploadTable) take(token uint64) (*upload, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pruned := t.prune(time.Now())
	u := t.m[token]
	if u != nil {
		t.dropLocked(token)
	}
	return u, pruned
}

// outEntry is one committed payload parked for pull-based propagation.
type outEntry struct {
	version uint64
	crc     uint32
	data    []byte
	expires time.Time
}

// outbox parks the bytes of a pull-propagated write at its origin until
// the broadcast tree has pulled them — the origin may not be a holder
// itself, and even a holder's store copy can be superseded again while
// slow legs are still fetching this version. Bounded by evicting the
// entries closest to expiry; a pull that misses falls back to the other
// listed sources and, past those, to the repair plane.
type outbox struct {
	mu      sync.Mutex
	entries map[string]*outEntry
	bytes   uint64
}

func (o *outbox) put(name string, version uint64, crc uint32, data []byte) {
	now := time.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.entries == nil {
		o.entries = make(map[string]*outEntry)
	}
	if e, ok := o.entries[name]; ok {
		if version < e.version {
			return
		}
		o.bytes -= uint64(len(e.data))
		delete(o.entries, name)
	}
	for o.bytes+uint64(len(data)) > maxOutboxBytes && len(o.entries) > 0 {
		var victim string
		var soonest time.Time
		for n, e := range o.entries {
			if victim == "" || e.expires.Before(soonest) {
				victim, soonest = n, e.expires
			}
		}
		o.bytes -= uint64(len(o.entries[victim].data))
		delete(o.entries, victim)
	}
	o.entries[name] = &outEntry{version: version, crc: crc, data: data, expires: now.Add(outboxTTL)}
	o.bytes += uint64(len(data))
}

// get answers name's parked payload when it matches the pin (0 accepts
// any version).
func (o *outbox) get(name string, pin uint64) ([]byte, uint64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.entries[name]
	if !ok || time.Now().After(e.expires) || (pin != 0 && e.version != pin) {
		return nil, 0, false
	}
	return e.data, e.version, true
}

// handlePut is the staged-upload entry point: data frames stage, abort
// drops, insert/update commits route the assembled payload through the
// normal write paths. Always a direct client↔peer exchange, never
// forwarded — the client already chose its entry peer.
func (p *Peer) handlePut(req *msg.Request) *msg.Response {
	pr, err := msg.DecodePutReq(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: put decode: %v", err)}
	}
	switch pr.Op {
	case msg.PutData:
		return p.putStage(req, pr)
	case msg.PutAbort:
		if p.uploads.drop(pr.Token) {
			p.stats.StagedAborts.Add(1)
		}
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID)}
	default:
		return p.putCommit(req, pr)
	}
}

// putStage verifies and stages one chunk. The chunk CRC check happens
// before the table touch so a corrupted frame leaves the session intact
// for the uploader's retry. The session token rides the response Version
// field.
func (p *Peer) putStage(req *msg.Request, pr *msg.PutReq) *msg.Response {
	if crc32.Checksum(pr.Chunk, castagnoli) != pr.ChunkCRC {
		return &msg.Response{Err: "netnode: put chunk failed CRC"}
	}
	token, pruned, err := p.uploads.stage(req.Name, pr)
	p.stats.StagedAborts.Add(pruned)
	if err != nil {
		return &msg.Response{Err: err.Error()}
	}
	p.stats.WriteChunks.Add(1)
	p.stats.WriteBytes.Add(uint64(len(pr.Chunk)))
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: token}
}

// putCommit completes a staged upload: the whole-file CRC over the
// assembled buffer is the authoritative completeness check (unfilled
// ranges are zeros and cannot match), then the payload enters the normal
// insert or update path — which is where versions are stamped and the
// store's Persister/WAL hook fires, making this the first durable moment
// of the transfer.
func (p *Peer) putCommit(req *msg.Request, pr *msg.PutReq) *msg.Response {
	u, pruned := p.uploads.take(pr.Token)
	p.stats.StagedAborts.Add(pruned)
	if u == nil {
		return &msg.Response{Err: "netnode: unknown upload session"}
	}
	if u.name != req.Name || u.total != pr.TotalSize || u.fileCRC != pr.FileCRC ||
		u.gotBytes != u.total || crc32.Checksum(u.buf, castagnoli) != u.fileCRC {
		p.stats.StagedAborts.Add(1)
		return &msg.Response{Err: "netnode: upload incomplete or corrupt"}
	}
	inner := &msg.Request{
		Origin: req.Origin, Flags: req.Flags &^ msg.FlagPropagate,
		Name: req.Name, Data: u.buf, TraceID: req.TraceID, Path: req.Path,
	}
	if pr.Op == msg.PutInsert {
		if len(u.buf) <= msg.MaxData {
			inner.Kind = msg.KindInsert
			return p.handleInsert(inner)
		}
		return p.insertPull(inner)
	}
	inner.Kind = msg.KindUpdate
	if len(u.buf) > msg.MaxData {
		// Over one frame, the whole-frame broadcast cannot carry the
		// payload at all: pull-based propagation is the only shape.
		start := time.Now()
		target := p.hasher.Target(req.Name, p.cfg.M)
		if p.store.Has(req.Name) {
			p.stats.WritesAtHolder.Add(1)
		} else {
			p.stats.WritesRemote.Add(1)
		}
		return p.initNotifyUpdate(inner, p.view(target), start, target)
	}
	return p.handleUpdate(inner)
}

// notifyEligible decides whether an update of n bytes propagates by
// notify/pull instead of pushing the payload down every broadcast leg.
// Over-frame payloads always do — no single frame can carry them; under
// that, the configured threshold governs (NotifyThreshold 0 selects
// DefaultNotifyThreshold, negative pins every in-frame update to the
// whole-frame push). A DisableLocate peer predates the chunked planes
// the pulls ride on.
func (p *Peer) notifyEligible(n int) bool {
	if p.cfg.DisableLocate {
		return false
	}
	if n > msg.MaxData {
		return true
	}
	th := p.cfg.NotifyThreshold
	if th == 0 {
		th = DefaultNotifyThreshold
	}
	return th > 0 && n >= th
}

// initNotifyUpdate initiates an update broadcast in pull form: stamp the
// version exactly like handleUpdate, park the payload in the outbox, and
// fan out a payload-free notify naming this peer as the pull source.
// When the payload fits one frame, the whole-frame propagate request
// rides along as the per-leg fallback for children that predate the
// notify plane.
func (p *Peer) initNotifyUpdate(req *msg.Request, v ptree.View, start time.Time, target bitops.PID) *msg.Response {
	if version, ok := p.probeVersion(req.Name); ok {
		p.mergeClock(version)
	}
	version := p.clock.Add(1)
	crc := crc32.Checksum(req.Data, castagnoli)
	p.outbox.put(req.Name, version, crc, req.Data)
	body, err := msg.AppendNotifyReq(nil, &msg.NotifyReq{
		TotalSize: uint64(len(req.Data)), FileCRC: crc,
		Sources: []msg.Holder{{PID: uint32(p.cfg.PID), Addr: p.Addr(), Version: version}},
	})
	if err != nil {
		return p.faultResponse(req, start, fmt.Sprintf("netnode: notify encode: %v", err))
	}
	prop := &msg.Request{
		Kind: msg.KindNotify, Origin: req.Origin, Name: req.Name,
		Version: version, Flags: req.Flags | msg.FlagPropagate,
		TraceID: req.TraceID, Data: body,
	}
	var fb *msg.Request
	if len(req.Data) <= msg.MaxData {
		f := *req
		f.Flags |= msg.FlagPropagate
		f.Version = version
		fb = &f
	}
	col := newHopCollector(req)
	if col != nil {
		prop.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, 0)
		if fb != nil {
			fb.Path = prop.Path
		}
	}
	updated := p.broadcast(v, prop, fb, col)
	if updated == 0 {
		p.stats.Faults.Add(1)
		resp := &msg.Response{Err: "netnode: update found no copy"}
		if col != nil {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	p.stats.Updated.Add(1)
	resp := &msg.Response{OK: true, ServedBy: uint32(target), Hops: uint32(updated), Version: version}
	if col != nil {
		root := appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, time.Since(start))
		resp.Path = append(root, col.take()...)
	}
	return resp
}

// handleNotify serves KindNotify: the propagate form is one delivery leg
// of a pull-based update broadcast, the direct form a single placement
// pull (the over-frame insert's KindStore twin).
func (p *Peer) handleNotify(req *msg.Request) *msg.Response {
	nr, err := msg.DecodeNotifyReq(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: notify decode: %v", err)}
	}
	if req.Flags&msg.FlagPropagate == 0 {
		return p.notifyStore(req, nr)
	}
	v := p.view(p.hasher.Target(req.Name, p.cfg.M))
	col := newHopCollector(req)
	n := p.propagateNotify(v, req, nr, nil, col)
	return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID),
		Hops: uint32(n), Path: col.take()}
}

// propagateNotify applies one pull-propagation delivery: a holder whose
// copy is behind pulls the body from the listed sources, applies it under
// the same propMu/versions discipline as propagateUpdate, appends itself
// to the source list (so later legs stripe across converged siblings),
// and fans out to its expanded children. Non-holders discard without
// forwarding, exactly like a whole-frame propagate. A failed pull skips
// only the local apply — the fan-out still runs so the branch below pulls
// from the upstream sources, and this replica converges via the repair
// plane instead of silently cutting its whole subtree off the broadcast.
func (p *Peer) propagateNotify(v ptree.View, req *msg.Request, nr *msg.NotifyReq, sem chan struct{}, col *hopCollector) int {
	start := time.Now()
	f, held := p.store.Peek(req.Name)
	if !held {
		return 0
	}
	applied := false
	fwd := *req
	var fb *msg.Request
	if f.Version < req.Version {
		if data, err := p.pullBody(req.Name, req.Version, nr); err == nil {
			// Same propMu discipline as propagateUpdate: the lock is held
			// only around the local store mutation, never across the pull
			// RPCs above or the fan-out below.
			p.propMu.RLock()
			if p.store.Has(req.Name) {
				applied = p.store.Update(req.Name, data, req.Version)
			}
			p.mergeClock(req.Version)
			p.propMu.RUnlock()
			if applied && len(nr.Sources) < msg.MaxHolders {
				srcs := append(append([]msg.Holder(nil), nr.Sources...),
					msg.Holder{PID: uint32(p.cfg.PID), Addr: p.Addr(), Version: req.Version})
				if body, err := msg.AppendNotifyReq(nil, &msg.NotifyReq{
					TotalSize: nr.TotalSize, FileCRC: nr.FileCRC, Sources: srcs,
				}); err == nil {
					fwd.Data = body
				}
			}
			if len(data) <= msg.MaxData {
				fb = &msg.Request{
					Kind: msg.KindUpdate, Origin: req.Origin, Name: req.Name,
					Version: req.Version, Flags: req.Flags, TraceID: req.TraceID,
					Data: data,
				}
			}
		}
	} else {
		p.mergeClock(req.Version)
	}
	kids := p.childTargets(v)
	if sem == nil {
		sem = p.fanoutSem(len(kids))
	}
	if col != nil {
		fwd.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopDeliver, time.Since(start))
		if len(fwd.Path) > len(req.Path) {
			col.add(fwd.Path[len(fwd.Path)-1])
		}
		if fb != nil {
			fb.Path = fwd.Path
		}
	}
	n := 0
	if applied {
		n = 1
	}
	return n + p.deliverAll(v, kids, &fwd, fb, sem, col)
}

// notifyStore applies a direct placement pull: the over-frame insert's
// per-subtree leg, mirroring handleStore's version/tombstone semantics
// with the payload pulled instead of pushed. A copy already at or past
// the notified version answers OK with the surviving version, like a
// stale push — the placement's goal (name present at least as new)
// holds.
func (p *Peer) notifyStore(req *msg.Request, nr *msg.NotifyReq) *msg.Response {
	start := time.Now()
	if f, ok := p.store.Peek(req.Name); ok && f.Version >= req.Version {
		p.mergeClock(req.Version)
		return &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: f.Version}
	}
	data, err := p.pullBody(req.Name, req.Version, nr)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("netnode: notify pull: %v", err)}
	}
	survived, res := p.store.PutNewer(store.File{Name: req.Name, Data: data, Version: req.Version}, store.Inserted)
	p.mergeClock(req.Version)
	var resp *msg.Response
	switch res {
	case store.PutTombstoned:
		resp = &msg.Response{ServedBy: uint32(p.cfg.PID), Version: survived, Err: ErrTombstoned}
	case store.PutStale:
		resp = &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: survived}
	default:
		p.stats.Stored.Add(1)
		resp = &msg.Response{OK: true, ServedBy: uint32(p.cfg.PID), Version: req.Version}
	}
	if req.Flags&msg.FlagTrace != 0 {
		resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopServe, time.Since(start))
	}
	return resp
}

// insertPull places an over-frame insert: handleInsert's per-subtree
// placement and tombstone-restamp loop, with each leg a payload-free
// KindNotify the holder answers by pulling the body from this peer's
// outbox. A remote holder that predates the notify plane refuses
// unknown-kind and its subtree is skipped — over one frame there is no
// whole-frame form to fall back to.
func (p *Peer) insertPull(req *msg.Request) *msg.Response {
	start := time.Now()
	target := p.hasher.Target(req.Name, p.cfg.M)
	v := p.view(target)
	version := p.clock.Add(1)
	crc := crc32.Checksum(req.Data, castagnoli)
	col := newHopCollector(req)
	var rootPath []msg.Hop
	if col != nil {
		rootPath = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, 0)
	}
	var holders []bitops.PID
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(p.cfg.B)); sid++ {
		if h, ok := v.PrimaryHolder(sid); ok {
			holders = append(holders, h)
		}
	}
	pullTO := stream.PullDeadline(uint64(len(req.Data)))
	stored := 0
	for attempt := 0; attempt < 3; attempt++ {
		stored = 0
		var tombV uint64
		p.outbox.put(req.Name, version, crc, req.Data)
		nr := &msg.NotifyReq{
			TotalSize: uint64(len(req.Data)), FileCRC: crc,
			Sources: []msg.Holder{{PID: uint32(p.cfg.PID), Addr: p.Addr(), Version: version}},
		}
		body, err := msg.AppendNotifyReq(nil, nr)
		if err != nil {
			return p.faultResponse(req, start, fmt.Sprintf("netnode: notify encode: %v", err))
		}
		// The placement legs run concurrently, like a broadcast's subtree
		// fan-out: each holder's pull of the body proceeds in parallel, so
		// commit latency tracks the slowest subtree instead of their sum.
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		for _, h := range holders {
			sreq := &msg.Request{
				Kind: msg.KindNotify, Origin: req.Origin,
				Version: version, Name: req.Name, Data: body,
			}
			if col != nil {
				sreq.Flags |= msg.FlagTrace
				sreq.TraceID = req.TraceID
				sreq.Path = rootPath
			}
			wg.Add(1)
			go func(h bitops.PID, sreq *msg.Request) {
				defer wg.Done()
				var resp *msg.Response
				if h == p.cfg.PID {
					resp = p.notifyStore(sreq, nr)
				} else {
					var err error
					if resp, err = p.callTimeout(h, sreq, pullTO); err != nil {
						return
					}
				}
				mu.Lock()
				switch {
				case resp.OK:
					stored++
				case resp.Err == ErrTombstoned && resp.Version > tombV:
					tombV = resp.Version
				}
				mu.Unlock()
				if len(resp.Path) > len(rootPath) {
					col.add(resp.Path[len(rootPath):]...)
				}
			}(h, sreq)
		}
		wg.Wait()
		if tombV < version {
			break
		}
		p.mergeClock(tombV)
		version = p.clock.Add(1)
	}
	if stored == 0 {
		p.stats.Faults.Add(1)
		resp := &msg.Response{Err: "netnode: no live holder for insert"}
		if col != nil {
			resp.Path = appendHop(req.Path, uint32(p.cfg.PID), msg.HopFault, time.Since(start))
		}
		return resp
	}
	resp := &msg.Response{OK: true, ServedBy: uint32(target), Version: version}
	if col != nil {
		root := appendHop(req.Path, uint32(p.cfg.PID), msg.HopFanout, time.Since(start))
		resp.Path = append(root, col.take()...)
	}
	return resp
}

// notifyDeadline sizes the delivery RPC bound for one pull-propagation
// leg: the receiving holder pulls the notify's whole body (and its
// subtree recurses) before answering, so the exchange deadline scales
// with the payload the notify describes. Non-notify legs — and a notify
// frame that fails to decode, which the receiver will refuse quickly —
// keep the transport's flat deadline.
func notifyDeadline(prop *msg.Request) time.Duration {
	if prop.Kind != msg.KindNotify {
		return 0
	}
	nr, err := msg.DecodeNotifyReq(prop.Data)
	if err != nil {
		return 0
	}
	return stream.PullDeadline(nr.TotalSize)
}

// pullBody fetches the body a notify describes: the local outbox/store
// first when this peer is itself listed (the origin applying its own
// broadcast), then a striped chunked fetch across the remote sources. The
// notify's size and whole-file CRC gate acceptance either way — a pull
// can never apply bytes that do not match the broadcast's declared shape.
func (p *Peer) pullBody(name string, version uint64, nr *msg.NotifyReq) ([]byte, error) {
	srcs := make([]stream.Source, 0, len(nr.Sources))
	for _, h := range nr.Sources {
		if bitops.PID(h.PID) == p.cfg.PID {
			if data, ver, ok := p.fetchLocal(name, version); ok && ver == version &&
				uint64(len(data)) == nr.TotalSize && crc32.Checksum(data, castagnoli) == nr.FileCRC {
				return data, nil
			}
			continue
		}
		srcs = append(srcs, stream.Source{PID: h.PID, Addr: h.Addr})
	}
	data, _, err := p.puller.Fetch(name, version, srcs)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) != nr.TotalSize || crc32.Checksum(data, castagnoli) != nr.FileCRC {
		return nil, fmt.Errorf("netnode: pulled body does not match notify shape")
	}
	p.stats.NotifyPulls.Add(1)
	return data, nil
}

// fetchLocal answers name's bytes from this peer itself: the write outbox
// first (it can be ahead of the store mid-broadcast), then the store.
func (p *Peer) fetchLocal(name string, pin uint64) ([]byte, uint64, bool) {
	if data, ver, ok := p.outbox.get(name, pin); ok {
		return data, ver, true
	}
	if f, ok := p.store.Peek(name); ok && (pin == 0 || f.Version == pin) {
		return f.Data, f.Version, true
	}
	return nil, 0, false
}
