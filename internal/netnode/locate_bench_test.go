package netnode

// The acceptance benchmarks for the locate-then-fetch data plane (`make
// locate-bench`; the recorded comparison lives in results/locate_bench.txt
// and results/BENCH_locate.json):
//
//   - BenchmarkRelayGet fetches a payload through the pre-locate path: the
//     entry peer walks the lookup tree and the file bytes relay back
//     through every hop. Wire cost grows with path length × payload size.
//   - BenchmarkLocateGet fetches the same payload through a warm route
//     hint: one direct RPC at the holder, zero relayed payload bytes.
//
// Both paths pay benchRTT per RPC — including the client's own leg, via a
// fault-injected client transport, so the warm-hint win is measured
// against a relay path that also gets its first hop "free" on loopback.
// TestLocateBenchReport (run by `make locate-bench`) drives both paths,
// asserts the single-RPC / zero-relay properties via the peer counters,
// and records p50/p99 latencies and bytes-on-wire through benchjson.

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/transport"
	"lesslog/internal/xrand"
)

// benchSizes are the payload sizes the data-plane comparison covers.
var benchSizes = []struct {
	label string
	n     int
}{
	{"4KiB", 4 << 10}, {"64KiB", 64 << 10}, {"1MiB", 1 << 20},
}

// benchClientTransport pays benchRTT on every client-issued RPC, matching
// the fabric's injected propagation delay.
func benchClientTransport(b *testing.B) *transport.Transport {
	b.Helper()
	tr := transport.New(transport.Config{},
		transport.NewFaults().Add(transport.Rule{Delay: benchRTT}))
	b.Cleanup(func() { tr.Close() })
	return tr
}

// benchPayload builds a deterministic payload of n bytes.
func benchPayload(n int) []byte {
	data := make([]byte, n)
	r := xrand.New(uint64(n))
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	return data
}

// sumRelayed totals the relayed payload bytes across the fabric.
func sumRelayed(peers map[bitops.PID]*Peer) uint64 {
	var n uint64
	for _, p := range peers {
		n += p.Stats().RelayedBytes.Load()
	}
	return n
}

// sumRequests totals requests handled across the fabric.
func sumRequests(peers map[bitops.PID]*Peer) uint64 {
	var n uint64
	for _, p := range peers {
		n += p.Stats().Requests.Load()
	}
	return n
}

// startLocateBenchSystem boots the comparison fabric: 16 peers, lookup
// trees pinned to target P(4), entry at P(8) — a guaranteed multi-hop
// route (P(8) → P(0) → P(4)) so the relay path has bytes to relay.
func startLocateBenchSystem(b *testing.B, name string, payload []byte) (map[bitops.PID]*Peer, string) {
	b.Helper()
	peers := startBenchSystem(b, 4, allPIDs(16), hashring.Fixed(4))
	entry := peers[8].Addr()
	if err := NewClient(entry).Insert(name, payload); err != nil {
		b.Fatal(err)
	}
	return peers, entry
}

func BenchmarkRelayGet(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.label, func(b *testing.B) {
			peers, entry := startLocateBenchSystem(b, "bench/payload", benchPayload(size.n))
			cl := NewClientWith(entry, benchClientTransport(b))
			if _, err := cl.Get("bench/payload"); err != nil {
				b.Fatal(err)
			}
			relayed0 := sumRelayed(peers)
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get("bench/payload"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perOp := (sumRelayed(peers) - relayed0) / uint64(b.N)
			if err := benchjson.Record("locate", benchjson.Result{
				Name:        "relay/" + size.label,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				BytesOnWire: uint64(size.n) + perOp,
				Extra:       map[string]float64{"relayed_bytes_per_op": float64(perOp)},
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkLocateGet(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.label, func(b *testing.B) {
			peers, entry := startLocateBenchSystem(b, "bench/payload", benchPayload(size.n))
			cl := NewLocateClientWith(entry, benchClientTransport(b), LocateOptions{})
			// Warm the route hint: the first get pays the locate walk.
			if _, err := cl.Get("bench/payload"); err != nil {
				b.Fatal(err)
			}
			relayed0 := sumRelayed(peers)
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get("bench/payload"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if d := sumRelayed(peers) - relayed0; d != 0 {
				b.Fatalf("warm-hint gets relayed %d payload bytes, want 0", d)
			}
			if err := benchjson.Record("locate", benchjson.Result{
				Name:        "locate/" + size.label,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				BytesOnWire: uint64(size.n),
				Extra:       map[string]float64{"relayed_bytes_per_op": 0},
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// quantile returns the q-quantile of the sorted sample set.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// TestLocateBenchReport is the acceptance run behind `make locate-bench`
// (gated by LESSLOG_LOCATE_BENCH so plain `go test ./...` stays fast). For
// each payload size it drives the relay and warm-hint paths side by side
// and asserts the data-plane properties the counters expose:
//
//   - a warm-hint get is a single fabric RPC (requests delta == gets);
//   - warm-hint gets relay zero payload bytes, while the relay path moves
//     size × (path length) extra bytes across the fabric;
//
// then records p50/p99 and the speedup per size through benchjson.
func TestLocateBenchReport(t *testing.T) {
	if os.Getenv("LESSLOG_LOCATE_BENCH") == "" {
		t.Skip("set LESSLOG_LOCATE_BENCH=1 (make locate-bench) to run the data-plane comparison")
	}
	const rounds = 40
	for _, size := range benchSizes {
		name := fmt.Sprintf("bench/%s", size.label)
		peers := func() map[bitops.PID]*Peer {
			// startBenchSystem wants *testing.B only for Cleanup/Fatal;
			// reuse startSystem and inject the RTT by hand.
			peers := make(map[bitops.PID]*Peer, 16)
			addrs := make(map[bitops.PID]string, 16)
			for _, pid := range allPIDs(16) {
				p, err := Listen(Config{
					PID: pid, M: 4, Hasher: hashring.Fixed(4),
					Faults: transport.NewFaults().Add(transport.Rule{Delay: benchRTT}),
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { p.Close() })
				peers[pid] = p
				addrs[pid] = p.Addr()
			}
			for _, p := range peers {
				p.SetAddrs(addrs)
			}
			return peers
		}()
		entry := peers[8].Addr()
		payload := benchPayload(size.n)
		if err := NewClient(entry).Insert(name, payload); err != nil {
			t.Fatal(err)
		}
		ctr := transport.New(transport.Config{},
			transport.NewFaults().Add(transport.Rule{Delay: benchRTT}))
		t.Cleanup(func() { ctr.Close() })

		run := func(get func() error) (lat []time.Duration, relayed, reqs uint64) {
			r0, q0 := sumRelayed(peers), sumRequests(peers)
			for i := 0; i < rounds; i++ {
				start := time.Now()
				if err := get(); err != nil {
					t.Fatal(err)
				}
				lat = append(lat, time.Since(start))
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			return lat, sumRelayed(peers) - r0, sumRequests(peers) - q0
		}

		relayCl := NewClientWith(entry, ctr)
		relayLat, relayBytes, _ := run(func() error { _, err := relayCl.Get(name); return err })

		locCl := NewLocateClientWith(entry, ctr, LocateOptions{})
		if _, err := locCl.Get(name); err != nil { // cold: locate walk + fetch
			t.Fatal(err)
		}
		locLat, locBytes, locReqs := run(func() error { _, err := locCl.Get(name); return err })

		if locBytes != 0 {
			t.Errorf("%s: warm-hint gets relayed %d payload bytes, want 0", size.label, locBytes)
		}
		if locReqs != rounds {
			t.Errorf("%s: warm-hint gets cost %d fabric requests for %d gets, want one each",
				size.label, locReqs, rounds)
		}
		if relayBytes == 0 {
			t.Errorf("%s: relay path relayed no payload bytes; entry peer should not hold %s",
				size.label, name)
		}
		hits := locCl.LocateStats().HintHits.Load()
		if hits != rounds {
			t.Errorf("%s: hint hits = %d, want %d", size.label, hits, rounds)
		}

		speedup := float64(relayLat[len(relayLat)/2]) / float64(locLat[len(locLat)/2])
		if err := benchjson.Record("locate",
			benchjson.Result{
				Name:        "report/relay/" + size.label,
				NsPerOp:     float64(relayLat[len(relayLat)/2].Nanoseconds()),
				BytesOnWire: uint64(size.n) + relayBytes/rounds,
				Extra: map[string]float64{
					"p50_ms":               float64(relayLat[len(relayLat)/2].Nanoseconds()) / 1e6,
					"p99_ms":               float64(quantile(relayLat, 0.99).Nanoseconds()) / 1e6,
					"relayed_bytes_per_op": float64(relayBytes) / rounds,
				},
			},
			benchjson.Result{
				Name:        "report/locate/" + size.label,
				NsPerOp:     float64(locLat[len(locLat)/2].Nanoseconds()),
				BytesOnWire: uint64(size.n),
				Speedup:     speedup,
				Extra: map[string]float64{
					"p50_ms":               float64(locLat[len(locLat)/2].Nanoseconds()) / 1e6,
					"p99_ms":               float64(quantile(locLat, 0.99).Nanoseconds()) / 1e6,
					"relayed_bytes_per_op": 0,
				},
			},
		); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: relay p50=%v p99=%v relayed=%dB/op | locate p50=%v p99=%v relayed=0B/op | speedup=%.2fx",
			size.label,
			relayLat[len(relayLat)/2], quantile(relayLat, 0.99), relayBytes/rounds,
			locLat[len(locLat)/2], quantile(locLat, 0.99), speedup)
	}
}
