package netnode

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
)

func TestConnPipelinesRequests(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	conn, err := DialConn(peers[8].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Insert("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := conn.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, []byte("1")) || res.ServedBy != 4 {
			t.Fatalf("get %d = %+v", i, res)
		}
	}
	if _, err := conn.Get("missing"); !errors.Is(err, ErrFault) {
		t.Fatalf("fault not surfaced: %v", err)
	}
	// The peer served everything over one accepted connection.
	if got := peers[8].Stats().Requests.Load(); got < 52 {
		t.Fatalf("requests = %d", got)
	}
}

func TestConnConcurrentUse(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), nil)
	conn, err := DialConn(peers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 8; i++ {
		if err := conn.Insert(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			for i := 0; i < 25; i++ {
				if _, err := conn.Get(fmt.Sprintf("k%d", (w+i)%8)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConnClosedPeer(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	conn, err := DialConn(peers[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	peers[1].Close()
	if _, err := conn.Get("x"); err == nil {
		t.Fatal("request over a dead peer's connection succeeded")
	}
	conn.Close()
}

// TestForwardFailureSelfHeals injects a mid-path failure without a
// registration: the forwarding peer's failure detector must flip the dead
// hop's liveness bit and the very same get must succeed through the
// recomputed route — no explicit ReportFailure needed.
func TestForwardFailureSelfHeals(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[3].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Kill P(0), the middle hop of P(8) -> P(0) -> P(4), silently.
	peers[0].Close()
	res, err := NewClient(peers[8].Addr()).Get("f")
	if err != nil {
		t.Fatalf("get through a crashed hop did not self-heal: %v", err)
	}
	if res.ServedBy != 4 {
		t.Fatalf("served by P(%d), want P(4)", res.ServedBy)
	}
	if !peers[8].Detector().Down(0) {
		t.Fatal("failure detector did not declare the crashed hop down")
	}
	if peers[8].Stats().PeersDown.Load() == 0 {
		t.Fatal("peers-down counter not advanced")
	}
}

func BenchmarkConnGetThroughput(b *testing.B) {
	var peers []*Peer
	addrs := map[bitops.PID]string{}
	for pid := bitops.PID(0); pid < 16; pid++ {
		p, err := Listen(Config{PID: pid, M: 4, Hasher: hashring.Fixed(4)})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	conn, err := DialConn(addrs[4])
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Insert("bench", []byte("payload")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
