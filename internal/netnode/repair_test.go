package netnode

import (
	"bytes"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/store"
)

// holdersOf returns the PIDs currently holding name, sorted order not
// guaranteed.
func holdersOf(peers map[bitops.PID]*Peer, name string) []bitops.PID {
	var out []bitops.PID
	for pid, p := range peers {
		if p.store.Has(name) {
			out = append(out, pid)
		}
	}
	return out
}

func TestHasCarriesVersion(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, ok := peers[4].store.Peek("f")
	if !ok {
		t.Fatal("precondition: no copy at P(4)")
	}
	resp, err := Call(peers[4].Addr(), &msg.Request{Kind: msg.KindHas, Name: "f"})
	if err != nil || !resp.OK {
		t.Fatalf("has: %+v, %v", resp, err)
	}
	if resp.Version != f.Version {
		t.Fatalf("has version = %d, want %d", resp.Version, f.Version)
	}
	// A probe must not count as an access (Peek, not Get).
	if h := peers[4].store.Hits("f"); h != 0 {
		t.Fatalf("has probe counted %d accesses", h)
	}
	// Missing name: not OK, version zero.
	resp, err = Call(peers[4].Addr(), &msg.Request{Kind: msg.KindHas, Name: "nope"})
	if err != nil || resp.OK || resp.Version != 0 {
		t.Fatalf("has miss: %+v, %v", resp, err)
	}
}

func TestRepairOnceRestoresLostCopy(t *testing.T) {
	// B=1: two copies per name, one per subtree. Silently delete one
	// holder's copy — the erosion §7 never notices — and let the sibling
	// holder's repair round re-establish it.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	lost, intact := holders[0], holders[1]
	peers[lost].store.Delete("f")

	var sampler repair.Sampler
	n := peers[intact].RepairOnce(&sampler, nil, -1)
	if n != 1 {
		t.Fatalf("RepairOnce repaired %d copies, want 1", n)
	}
	f, ok := peers[lost].store.Peek("f")
	if !ok || !bytes.Equal(f.Data, []byte("payload")) {
		t.Fatalf("copy not restored at P(%d): %+v, %v", lost, f, ok)
	}
	if got := peers[intact].Stats().Repaired.Load(); got != 1 {
		t.Fatalf("Repaired counter = %d, want 1", got)
	}
	if got := peers[intact].Stats().RepairProbes.Load(); got == 0 {
		t.Fatal("RepairProbes counter did not move")
	}
	// A second round finds nothing to do.
	if n := peers[intact].RepairOnce(&sampler, nil, -1); n != 0 {
		t.Fatalf("steady-state RepairOnce repaired %d copies", n)
	}
}

func TestRepairOnceHealsStaleCopy(t *testing.T) {
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	stale, fresh := holders[0], holders[1]
	// Wind one holder forward, as if the other missed an update broadcast.
	f, _ := peers[fresh].store.Peek("f")
	peers[fresh].store.Update("f", []byte("v2"), f.Version+1)

	// The fresh holder probes, sees the stale version, pushes.
	var sampler repair.Sampler
	if n := peers[fresh].RepairOnce(&sampler, nil, -1); n != 1 {
		t.Fatalf("fresh holder repaired %d, want 1", n)
	}
	got, _ := peers[stale].store.Peek("f")
	if !bytes.Equal(got.Data, []byte("v2")) || got.Version != f.Version+1 {
		t.Fatalf("stale copy not healed: %+v", got)
	}

	// Reverse direction: stale holder probes a newer one and pulls.
	peers[fresh].store.Update("f", []byte("v3"), f.Version+2)
	var sampler2 repair.Sampler
	if n := peers[stale].RepairOnce(&sampler2, nil, -1); n != 1 {
		t.Fatalf("stale holder pulled %d, want 1", n)
	}
	got, _ = peers[stale].store.Peek("f")
	if !bytes.Equal(got.Data, []byte("v3")) {
		t.Fatalf("pull did not heal: %+v", got)
	}
	if peers[stale].Stats().RepairPulled.Load() != 1 {
		t.Fatal("RepairPulled counter did not move")
	}
}

// Over-frame bodies cannot ride a whole-frame KindStore push or a
// whole-frame get pull — both would fail response framing. Repair moves
// them through the write plane instead: pushes as a direct payload-free
// KindNotify the holder answers by pulling chunks, pulls through the
// chunk fetcher after the whole-frame get's typed ErrOverFrame refusal.
func TestRepairMovesOverFrameBodies(t *testing.T) {
	if testing.Short() {
		t.Skip("over-frame payloads in -short")
	}
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	payload := make([]byte, msg.MaxData+3)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := NewClient(peers[0].Addr()).Insert("huge", payload); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "huge")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	lost, intact := holders[0], holders[1]

	// A whole-frame get of the body is refused with the typed error — not
	// served into a response the framing layer would reject.
	resp, err := Call(peers[intact].Addr(), &msg.Request{Kind: msg.KindGet, Name: "huge"})
	if err != nil {
		t.Fatalf("over-frame get: transport error %v (connection torn down?)", err)
	}
	if resp.OK || resp.Err != ErrOverFrame {
		t.Fatalf("over-frame get answered %+v, want ErrOverFrame refusal", resp)
	}

	// Push direction: the copy silently lost at one holder comes back via
	// the direct-notify push (the holder pulls the chunks from the pusher).
	peers[lost].store.Delete("huge")
	var sampler repair.Sampler
	if n := peers[intact].RepairOnce(&sampler, nil, -1); n != 1 {
		t.Fatalf("RepairOnce repaired %d copies, want 1", n)
	}
	f, ok := peers[lost].store.Peek("huge")
	if !ok || !bytes.Equal(f.Data, payload) {
		t.Fatalf("over-frame copy not restored at P(%d) (held=%v, %d bytes)", lost, ok, len(f.Data))
	}

	// Pull direction: one holder misses an over-frame update; its probe
	// sees the newer sibling and pulls through the chunk plane.
	upd := make([]byte, msg.MaxData+7)
	for i := range upd {
		upd[i] = byte(i*13 + 1)
	}
	peers[intact].store.Update("huge", upd, f.Version+1)
	var sampler2 repair.Sampler
	if n := peers[lost].RepairOnce(&sampler2, nil, -1); n != 1 {
		t.Fatalf("stale holder pulled %d, want 1", n)
	}
	got, _ := peers[lost].store.Peek("huge")
	if !bytes.Equal(got.Data, upd) || got.Version != f.Version+1 {
		t.Fatalf("over-frame pull did not heal: version %d, %d bytes", got.Version, len(got.Data))
	}
}

func TestRepairBudgetDefersWork(t *testing.T) {
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	lost, intact := holders[0], holders[1]
	peers[lost].store.Delete("f")

	// A bone-dry budget: everything defers, nothing moves.
	budget := repair.NewBudget(1, 1) // 1 B/s, 1 B burst: ProbeCost never fits
	var sampler repair.Sampler
	if n := peers[intact].RepairOnce(&sampler, budget, -1); n != 0 {
		t.Fatalf("dry budget still repaired %d copies", n)
	}
	if peers[lost].store.Has("f") {
		t.Fatal("copy restored despite dry budget")
	}
	st := peers[intact].Stats()
	if st.RepairSkipped.Load() == 0 {
		t.Fatal("RepairSkipped did not count deferred work")
	}
	if st.RepairDeficit.Load() <= 0 {
		t.Fatalf("deficit gauge = %d, want > 0", st.RepairDeficit.Load())
	}
	// With the budget lifted the same round heals.
	if n := peers[intact].RepairOnce(&sampler, nil, -1); n != 1 {
		t.Fatal("unlimited budget did not heal")
	}
	if st.RepairDeficit.Load() != 0 {
		t.Fatal("deficit gauge not cleared after a granted round")
	}
}

func TestDigestSyncWarmsEmptiedPeer(t *testing.T) {
	// The rejoin shape: one holder loses its whole inventory (fresh disk)
	// while its sibling-subtree partner still holds everything. One digest
	// exchange pulls exactly the delta — every name the emptied peer is a
	// required holder for.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	cl := NewClient(peers[0].Addr())
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range names {
		if err := cl.Insert(n, []byte("data-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a peer that holds something and empty it.
	var victim bitops.PID
	var lost []string
	for pid, p := range peers {
		if all := p.store.AllNames(); len(all) > 0 {
			victim, lost = pid, all
			break
		}
	}
	for _, n := range lost {
		peers[victim].store.Delete(n)
	}
	// Digest against every other live peer, as the repair loop's partner
	// rotation would; each exchange pulls the slice that partner holds.
	pulled := 0
	for pid := range peers {
		if pid == victim {
			continue
		}
		pulled += peers[victim].DigestSync(pid, nil, 32)
	}
	for _, n := range lost {
		f, ok := peers[victim].store.Peek(n)
		if !ok || !bytes.Equal(f.Data, []byte("data-"+n)) {
			t.Fatalf("name %q not pulled back (%v)", n, ok)
		}
		if k, _ := peers[victim].store.KindOf(n); k != store.Inserted {
			t.Fatalf("pulled copy %q is %v, want inserted", n, k)
		}
	}
	if pulled != len(lost) {
		t.Fatalf("pulled %d names, lost %d", pulled, len(lost))
	}
	if peers[victim].Stats().DigestBytes.Load() == 0 {
		t.Fatal("DigestBytes did not count the exchange")
	}
	// Steady state: the same rotation now transfers zero entries.
	for pid := range peers {
		if pid == victim {
			continue
		}
		if n := peers[victim].DigestSync(pid, nil, 32); n != 0 {
			t.Fatalf("in-sync digest against P(%d) pulled %d", pid, n)
		}
	}
}

func TestDigestRestrictsToRequesterNames(t *testing.T) {
	// A digest answer must only cover names the requester is a required
	// holder for — otherwise two peers with legitimately disjoint
	// inventories would flag the same buckets forever and re-transfer on
	// every round.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	cl := NewClient(peers[0].Addr())
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if err := cl.Insert(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Every (requester, responder) pair in steady state: zero entries.
	for qid := range peers {
		for rid, r := range peers {
			if qid == rid {
				continue
			}
			digest := make([]uint64, 16)
			for _, name := range peers[qid].store.AllNames() {
				f, _ := peers[qid].store.Peek(name)
				repair.Fold(digest, name, f.Version)
			}
			data, _ := msg.AppendDigest(nil, digest)
			resp := r.handleDigest(&msg.Request{Kind: msg.KindDigest, Origin: uint32(qid), Data: data})
			if !resp.OK {
				t.Fatalf("digest P(%d)->P(%d): %s", qid, rid, resp.Err)
			}
			entries, err := msg.DecodeDigestEntries(resp.Data)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				// Anything offered must be a name the requester should hold
				// but doesn't hold at this version.
				v := r.view(r.hasher.Target(e.Name, 4))
				if !requiredHolder(v, qid) {
					t.Fatalf("P(%d) offered P(%d) name %q it does not own", rid, qid, e.Name)
				}
				if f, ok := peers[qid].store.Peek(e.Name); ok && f.Version >= e.Version {
					t.Fatalf("P(%d) offered P(%d) in-sync name %q", rid, qid, e.Name)
				}
			}
			if len(entries) != 0 {
				t.Fatalf("steady-state digest P(%d)->P(%d) carried %d entries", qid, rid, len(entries))
			}
		}
	}
}

func TestDigestAgainstLegacyPeer(t *testing.T) {
	// A pre-repair partner answers unknown-kind; the caller skips and
	// counts it, leaving coverage to the per-name probes.
	legacy, err := Listen(Config{PID: 3, M: 4, B: 1, Hasher: hashring.FNV{}, DisableLocate: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { legacy.Close() })
	modern, err := Listen(Config{PID: 5, M: 4, B: 1, Hasher: hashring.FNV{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { modern.Close() })
	addrs := map[bitops.PID]string{3: legacy.Addr(), 5: modern.Addr()}
	legacy.SetAddrs(addrs)
	modern.SetAddrs(addrs)

	if n := modern.DigestSync(3, nil, 16); n != 0 {
		t.Fatalf("digest against legacy peer pulled %d", n)
	}
	if modern.Stats().RepairSkipped.Load() != 1 {
		t.Fatal("legacy partner not counted as skipped")
	}
}

func TestDigestRejectsCorruptPayload(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	resp, err := Call(peers[0].Addr(), &msg.Request{Kind: msg.KindDigest, Data: []byte{0xFF, 0xFF}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Err == "" {
		t.Fatalf("corrupt digest accepted: %+v", resp)
	}
}

func TestStartRepairLoopHealsInBackground(t *testing.T) {
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.FNV{})
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(peers, "f")
	lost, intact := holders[0], holders[1]
	peers[lost].store.Delete("f")

	stop := peers[intact].StartRepair(repair.Config{Interval: 5 * time.Millisecond, SampleSize: -1})
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for !peers[lost].store.Has("f") {
		if time.Now().After(deadline) {
			t.Fatal("repair loop did not restore the copy in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
