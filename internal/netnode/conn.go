package netnode

// Conn is a persistent client connection: unlike Client, which dials per
// operation, a Conn pipelines every request over one TCP stream — the
// shape a real client library would use against a home peer, and what the
// throughput benchmark measures.

import (
	"fmt"
	"net"
	"sync"

	"lesslog/internal/msg"
)

// Conn is a persistent connection to one peer. Safe for concurrent use;
// requests are serialized over the single stream.
type Conn struct {
	mu   sync.Mutex
	tcp  net.Conn
	addr string
}

// DialConn opens a persistent connection to the peer at addr.
func DialConn(addr string) (*Conn, error) {
	tcp, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{tcp: tcp, addr: addr}, nil
}

// Close shuts the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tcp.Close()
}

// Do performs one request/response exchange.
func (c *Conn) Do(req *msg.Request) (*msg.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := msg.WriteRequest(c.tcp, req); err != nil {
		return nil, err
	}
	return msg.ReadResponse(c.tcp)
}

// Get fetches a file over the persistent stream.
func (c *Conn) Get(name string) (GetResult, error) {
	resp, err := c.Do(&msg.Request{Kind: msg.KindGet, Name: name})
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		return GetResult{}, fmt.Errorf("%w: %s", ErrFault, name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops),
	}, nil
}

// Insert stores a file over the persistent stream.
func (c *Conn) Insert(name string, data []byte) error {
	resp, err := c.Do(&msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}
