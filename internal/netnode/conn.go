package netnode

// Conn is a persistent client connection: unlike Client, which dials per
// operation, a Conn pipelines every request over one TCP stream — the
// shape a real client library would use against a home peer, and what the
// throughput benchmark measures.

import (
	"fmt"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/transport"
)

// Conn is a persistent connection to one peer. Safe for concurrent use;
// requests are pipelined over the single stream and correlated back by
// request ID, so concurrent callers overlap instead of queueing behind
// each other. Every exchange is bounded by an RPC deadline, so a hung
// peer cannot wedge the caller.
type Conn struct {
	cc *transport.ClientConn
}

// DialConn opens a persistent connection to the peer at addr with the
// default dial and RPC deadlines.
func DialConn(addr string) (*Conn, error) {
	return DialConnTimeout(addr, transport.DefaultDialTimeout, transport.DefaultRPCTimeout)
}

// DialConnTimeout opens a persistent connection with explicit deadlines:
// dial bounds connection establishment, rpc bounds each Do exchange
// (0 means no exchange deadline).
func DialConnTimeout(addr string, dial, rpc time.Duration) (*Conn, error) {
	cc, err := transport.DialMuxConn(addr, dial, rpc)
	if err != nil {
		return nil, err
	}
	return &Conn{cc: cc}, nil
}

// Close shuts the connection; in-flight exchanges fail.
func (c *Conn) Close() error { return c.cc.Close() }

// Do performs one pipelined request/response exchange under the RPC
// deadline.
func (c *Conn) Do(req *msg.Request) (*msg.Response, error) {
	return c.cc.Do(req)
}

// Get fetches a file over the persistent stream.
func (c *Conn) Get(name string) (GetResult, error) {
	resp, err := c.Do(&msg.Request{Kind: msg.KindGet, Name: name})
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		return GetResult{}, fmt.Errorf("%w: %s", ErrFault, name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops),
	}, nil
}

// Insert stores a file over the persistent stream.
func (c *Conn) Insert(name string, data []byte) error {
	resp, err := c.Do(&msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}
