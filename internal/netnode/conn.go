package netnode

// Conn is a persistent client connection: unlike Client, which dials per
// operation, a Conn pipelines every request over one TCP stream — the
// shape a real client library would use against a home peer, and what the
// throughput benchmark measures.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/transport"
)

// Conn is a persistent connection to one peer. Safe for concurrent use;
// requests are serialized over the single stream. Every exchange is
// bounded by an RPC deadline, so a hung peer cannot wedge the caller.
type Conn struct {
	mu      sync.Mutex
	tcp     net.Conn
	addr    string
	timeout time.Duration
}

// DialConn opens a persistent connection to the peer at addr with the
// default dial and RPC deadlines.
func DialConn(addr string) (*Conn, error) {
	return DialConnTimeout(addr, transport.DefaultDialTimeout, transport.DefaultRPCTimeout)
}

// DialConnTimeout opens a persistent connection with explicit deadlines:
// dial bounds connection establishment, rpc bounds each Do exchange
// (0 means no exchange deadline).
func DialConnTimeout(addr string, dial, rpc time.Duration) (*Conn, error) {
	tcp, err := net.DialTimeout("tcp", addr, dial)
	if err != nil {
		return nil, err
	}
	return &Conn{tcp: tcp, addr: addr, timeout: rpc}, nil
}

// Close shuts the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tcp.Close()
}

// Do performs one request/response exchange under the RPC deadline.
func (c *Conn) Do(req *msg.Request) (*msg.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.tcp.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	if err := msg.WriteRequest(c.tcp, req); err != nil {
		return nil, err
	}
	resp, err := msg.ReadResponse(c.tcp)
	if err != nil {
		return nil, err
	}
	if c.timeout > 0 {
		c.tcp.SetDeadline(time.Time{})
	}
	return resp, nil
}

// Get fetches a file over the persistent stream.
func (c *Conn) Get(name string) (GetResult, error) {
	resp, err := c.Do(&msg.Request{Kind: msg.KindGet, Name: name})
	if err != nil {
		return GetResult{}, err
	}
	if !resp.OK {
		return GetResult{}, fmt.Errorf("%w: %s", ErrFault, name)
	}
	return GetResult{
		Data: resp.Data, Version: resp.Version,
		ServedBy: resp.ServedBy, Hops: int(resp.Hops),
	}, nil
}

// Insert stores a file over the persistent stream.
func (c *Conn) Insert(name string, data []byte) error {
	resp, err := c.Do(&msg.Request{Kind: msg.KindInsert, Name: name, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: insert %q: %s", name, resp.Err)
	}
	return nil
}
