package netnode

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
)

// startSystem boots peers for the given PIDs in an m-bit space with ψ
// pinned at target, wires the address tables and registers cleanup.
func startSystem(t testing.TB, m, b int, pids []bitops.PID, hasher hashring.Hasher) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, len(pids))
	addrs := make(map[bitops.PID]string, len(pids))
	for _, pid := range pids {
		p, err := Listen(Config{PID: pid, M: m, B: b, Hasher: hasher})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[pid] = p
		addrs[pid] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

func allPIDs(n int) []bitops.PID {
	out := make([]bitops.PID, n)
	for i := range out {
		out[i] = bitops.PID(i)
	}
	return out
}

func TestInsertGetOverTCP(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[9].Addr())
	if err := cl.Insert("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// The copy must be at P(4).
	n4, _ := peers[4], 0
	if !n4.store.Has("f") {
		t.Fatal("target peer does not hold the file")
	}
	// Get from P(8): the paper path P(8) -> P(0) -> P(4), two hops.
	res, err := NewClient(peers[8].Addr()).Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || res.Hops != 2 || !bytes.Equal(res.Data, []byte("hello")) {
		t.Fatalf("get = %+v", res)
	}
	// Get at the target itself: zero hops.
	res, err = NewClient(peers[4].Addr()).Get("f")
	if err != nil || res.Hops != 0 {
		t.Fatalf("get at target = %+v, %v", res, err)
	}
}

func TestGetFaultOverTCP(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	_, err := NewClient(peers[0].Addr()).Get("ghost")
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicaShortensPath(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[3].Addr())
	if err := cl.Insert("f", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Hand-place a replica at P(0), which is on P(8)'s path.
	if err := NewClient(peers[0].Addr()).Store("f", []byte("v"), 1, true); err != nil {
		t.Fatal(err)
	}
	res, err := NewClient(peers[8].Addr()).Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 0 || res.Hops != 1 {
		t.Fatalf("get = %+v, want served by P(0) in 1 hop", res)
	}
}

func TestUpdatePropagatesOverTCP(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[2].Addr()).Insert("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Replicas at P(5) (root's first child) and P(7) (child of P(5)).
	NewClient(peers[5].Addr()).Store("f", []byte("v1"), 1, true)
	NewClient(peers[7].Addr()).Store("f", []byte("v1"), 1, true)
	updated, err := NewClient(peers[11].Addr()).Update("f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if updated != 3 {
		t.Fatalf("updated %d copies, want 3", updated)
	}
	for _, pid := range []bitops.PID{4, 5, 7} {
		f, ok := peers[pid].store.Peek("f")
		if !ok || !bytes.Equal(f.Data, []byte("v2")) {
			t.Fatalf("P(%d) copy stale: %+v", pid, f)
		}
	}
	// A non-holder never received a copy.
	if peers[9].store.Has("f") {
		t.Fatal("update created a copy on a non-holder")
	}
}

func TestDeleteOverTCP(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[9].Addr())
	if err := cl.Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	NewClient(peers[5].Addr()).Store("f", []byte("x"), 1, true)
	NewClient(peers[7].Addr()).Store("f", []byte("x"), 1, true)
	removed, err := cl.Delete("f")
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed %d of 3", removed)
	}
	for pid, p := range peers {
		if p.HasFile("f") {
			t.Fatalf("copy survived at P(%d)", pid)
		}
	}
	if _, err := cl.Get("f"); !errors.Is(err, ErrFault) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := cl.Delete("f"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestDeleteOverTCPFaultTolerant(t *testing.T) {
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4))
	cl := NewClient(peers[2].Addr())
	if err := cl.Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	removed, err := cl.Delete("f")
	if err != nil || removed != 2 {
		t.Fatalf("removed %d, %v; want both subtree copies", removed, err)
	}
}

func TestSubtreeMigrationOverTCP(t *testing.T) {
	// b=1: two subtrees. Remove the copy from one subtree; a get from
	// that subtree must migrate and still succeed.
	peers := startSystem(t, 4, 1, allPIDs(16), hashring.Fixed(4))
	if err := NewClient(peers[1].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var holders []bitops.PID
	for pid, p := range peers {
		if p.store.Has("f") {
			holders = append(holders, pid)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2 (one per subtree)", holders)
	}
	peers[holders[0]].store.Delete("f")
	// Any origin in the now-empty subtree must still resolve.
	v := peers[holders[0]].view(4)
	var origin bitops.PID
	for pid := range peers {
		if v.SubtreeID(pid) == v.SubtreeID(holders[0]) && pid != holders[0] {
			origin = pid
			break
		}
	}
	res, err := NewClient(peers[origin].Addr()).Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != uint32(holders[1]) {
		t.Fatalf("served by P(%d), want the other subtree's holder P(%d)", res.ServedBy, holders[1])
	}
}

func TestPartialSystemWithDeadSlots(t *testing.T) {
	// Only 14 of 16 slots are populated (P(4), P(5) missing): the §3
	// example over real sockets. ψ targets the dead P(4); the insert
	// must land on P(6) and gets must fall back to it.
	var pids []bitops.PID
	for i := 0; i < 16; i++ {
		if i == 4 || i == 5 {
			continue
		}
		pids = append(pids, bitops.PID(i))
	}
	peers := startSystem(t, 4, 0, pids, hashring.Fixed(4))
	if err := NewClient(peers[0].Addr()).Insert("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !peers[6].store.Has("f") {
		t.Fatal("insert with dead target did not land on P(6)")
	}
	for _, origin := range []bitops.PID{0, 7, 8, 15} {
		res, err := NewClient(peers[origin].Addr()).Get("f")
		if err != nil {
			t.Fatalf("get from P(%d): %v", origin, err)
		}
		if res.ServedBy != 6 {
			t.Fatalf("get from P(%d) served by P(%d), want P(6)", origin, res.ServedBy)
		}
	}
}

func TestStatAndStats(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	cl := NewClient(peers[3].Addr())
	if err := cl.Insert("s", []byte("x")); err != nil {
		t.Fatal(err)
	}
	out, err := cl.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pid=3") || !strings.Contains(out, "live=8") {
		t.Fatalf("stat = %q", out)
	}
	if peers[3].Stats().Requests.Load() < 2 {
		t.Fatal("request counter not advancing")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	resp, err := Call(peers[0].Addr(), &msg.Request{Kind: msg.Kind(42), Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "unknown kind") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), nil)
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%d", i)
		if err := NewClient(peers[bitops.PID(i%16)].Addr()).Insert(names[i], []byte(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			for i := 0; i < 25; i++ {
				name := names[(w*25+i)%len(names)]
				res, err := NewClient(peers[bitops.PID((w+i)%16)].Addr()).Get(name)
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(res.Data, []byte(name)) {
					errc <- fmt.Errorf("wrong data for %s", name)
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
