package netnode

// The admin endpoint: a small stdlib-only HTTP server a peer can expose
// beside its wire port (`lesslogd -admin addr`). It serves the operator
// surface of the observability layer:
//
//	/metrics        Prometheus text format (counters + latency histograms)
//	/healthz        JSON liveness view: status word + failure-detector state
//	/trees          the physical lookup tree of this (or ?root=N) node,
//	                dead positions marked — Figures 2/3 for the live system
//	/traces         the sampled trace ring as JSON (docs/OBSERVABILITY.md)
//	/checkpoint     POST: compact the durable log to its live state
//	                (docs/STORAGE.md; 409 without -data-dir)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// Everything read here is lock-free or briefly locked; scraping cannot
// stall the request path (checkpoint compaction runs off it too).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/trace"
)

// Admin is a running admin HTTP server bound to one peer.
type Admin struct {
	p   *Peer
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin starts the peer's admin HTTP server on addr ("127.0.0.1:0"
// picks a free port; Addr reports it). Close the returned Admin when done;
// closing the peer does not close it.
func (p *Peer) ServeAdmin(addr string) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: admin listen %s: %w", addr, err)
	}
	a := &Admin{p: p, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/healthz", a.healthz)
	mux.HandleFunc("/trees", a.trees)
	mux.HandleFunc("/traces", a.traces)
	mux.HandleFunc("/checkpoint", a.checkpoint)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln)
	p.log.Info("admin endpoint listening", "addr", ln.Addr().String())
	return a, nil
}

// Addr returns the admin server's bound address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin server down immediately.
func (a *Admin) Close() error { return a.srv.Close() }

func (a *Admin) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.p.WritePrometheus(w)
}

// traces serves the peer's sampled trace ring: recent traces oldest
// first, plus the notable (slow/errored) retention tier. Empty when the
// trace plane is disabled.
func (a *Admin) traces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(a.p.TraceSnapshot())
}

// checkpoint compacts the durable log down to live state on demand —
// the operator's "shrink the data dir now" button. POST only (it
// rewrites disk); peers without a data directory answer 409.
func (a *Admin) checkpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := a.p.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	sealed, active := a.p.eng.Segments()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"checkpointed": true, "sealed_segments": sealed, "active_bytes": active,
	})
}

// adminHealth is the /healthz body.
type adminHealth struct {
	Status       string   `json:"status"`
	PID          uint32   `json:"pid"`
	Addr         string   `json:"addr"`
	M            int      `json:"m"`
	B            int      `json:"b"`
	LivePeers    int      `json:"live_peers"`
	KnownPeers   int      `json:"known_peers"`
	DetectorDown []uint32 `json:"detector_down"`
}

func (a *Admin) healthz(w http.ResponseWriter, _ *http.Request) {
	p := a.p
	rt := p.rt()
	live := rt.live.LiveCount()
	known := len(rt.addrs)
	h := adminHealth{
		Status: "ok", PID: uint32(p.cfg.PID), Addr: p.Addr(),
		M: p.cfg.M, B: p.cfg.B, LivePeers: live, KnownPeers: known,
		DetectorDown: p.det.DownIDs(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// trees renders the physical lookup tree (Figures 2/3) for this peer's
// PID, or for ?root=N, against the live status word — dead positions are
// marked exactly as the offline internal/trace tooling marks them.
func (a *Admin) trees(w http.ResponseWriter, r *http.Request) {
	p := a.p
	root := p.cfg.PID
	if q := r.URL.Query().Get("root"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 || n >= bitops.Slots(p.cfg.M) {
			http.Error(w, fmt.Sprintf("bad root %q (want 0..%d)", q, bitops.Slots(p.cfg.M)-1),
				http.StatusBadRequest)
			return
		}
		root = bitops.PID(n)
	}
	live := p.rt().live // immutable snapshot; safe to read unlocked
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "physical lookup tree of P(%d) (m=%d b=%d, %d live)\n\n",
		root, p.cfg.M, p.cfg.B, live.LiveCount())
	fmt.Fprint(w, trace.Physical(root, p.cfg.M, live))
}
