package netnode

// Sustained-churn end-to-end harness (docs/REPAIR.md): the same
// crash/rejoin schedule runs twice over a real B=1 wire system — once
// with the anti-entropy repair loop off (the control: §5's one-at-a-time
// self-organization, which sustained churn defeats) and once with every
// peer repairing in the background. The control run must lose names; the
// repair run must lose none and re-reach full replication inside a
// bounded window after every disruption, including a correlated
// same-parity double-crash with scripted repair-RPC loss driven through
// transport.Churn. Measured time-to-full-replication and loss counts are
// recorded to BENCH_repair.json when BENCH_JSON_DIR is set (make
// repair-bench); plain `go test` still asserts the invariants.

import (
	"fmt"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/transport"
)

// churnConfig is the repair tuning the harness runs every peer with:
// fast rounds so convergence is measured in tens of milliseconds, whole
// inventory per round, no bandwidth cap (budget behavior has its own
// tests), a digest exchange every other round.
func churnConfig() repair.Config {
	return repair.Config{
		Interval:    20 * time.Millisecond,
		SampleSize:  -1,
		Budget:      -1,
		DigestEvery: 2,
	}
}

// churnHarness wraps a faultSystem with the operations a churn schedule
// is made of: silent process crashes that lose the local store, empty
// rejoins, and replication polling.
type churnHarness struct {
	t      *testing.T
	sys    *faultSystem
	names  []string
	repair bool
	stops  map[bitops.PID]func()
}

func newChurnHarness(t *testing.T, withRepair bool) *churnHarness {
	t.Helper()
	h := &churnHarness{
		t:      t,
		sys:    startFaultSystem(t, 4, 1, 16, hashring.FNV{}, tightTransport()),
		repair: withRepair,
		stops:  map[bitops.PID]func(){},
	}
	cl := NewClient(h.sys.addr(0))
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("churn/%02d", i)
		if err := cl.Insert(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
		h.names = append(h.names, name)
	}
	if withRepair {
		for pid, p := range h.sys.peers {
			h.stops[pid] = p.StartRepair(churnConfig())
		}
	}
	return h
}

// holders returns the PIDs currently holding name.
func (h *churnHarness) holders(name string) []bitops.PID {
	var out []bitops.PID
	for pid, p := range h.sys.peers {
		if p.store.Has(name) {
			out = append(out, pid)
		}
	}
	return out
}

// lost returns the names with no surviving copy anywhere.
func (h *churnHarness) lost() []string {
	var out []string
	for _, name := range h.names {
		if len(h.holders(name)) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// wipe crashes pid silently — no failure report, the store dies with the
// process — and rejoins it as an empty peer under the same PID, the §8
// churn shape one polite §5.2 handoff at a time cannot see coming.
func (h *churnHarness) wipe(pid bitops.PID) {
	h.t.Helper()
	old := h.sys.peers[pid]
	old.Close()
	bootstrap := ""
	for q, p := range h.sys.peers {
		if q != pid {
			bootstrap = p.Addr()
			break
		}
	}
	np, err := Listen(Config{
		PID: pid, M: 4, B: 1, Hasher: hashring.FNV{},
		Transport: h.sys.tcfg, Faults: h.sys.faults,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { np.Close() })
	if err := np.Join(bootstrap); err != nil {
		h.t.Fatal(err)
	}
	h.sys.peers[pid] = np
	if h.repair {
		h.stops[pid] = np.StartRepair(churnConfig())
	}
}

// awaitFullReplication polls until every name has both subtree copies
// again, returning how long that took and whether it happened before the
// deadline.
func (h *churnHarness) awaitFullReplication(deadline time.Duration) (time.Duration, bool) {
	start := time.Now()
	for {
		short := 0
		for _, name := range h.names {
			if len(h.holders(name)) < 2 {
				short++
			}
		}
		if short == 0 {
			return time.Since(start), true
		}
		if time.Since(start) > deadline {
			return time.Since(start), false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// repairTotals sums the repair counters across the current peer set.
func (h *churnHarness) repairTotals() map[string]float64 {
	out := map[string]float64{}
	for _, p := range h.sys.peers {
		out["repaired"] += float64(p.stats.Repaired.Load())
		out["repair_pulled"] += float64(p.stats.RepairPulled.Load())
		out["repair_probes"] += float64(p.stats.RepairProbes.Load())
		out["digest_bytes"] += float64(p.stats.DigestBytes.Load())
		out["repair_skipped"] += float64(p.stats.RepairSkipped.Load())
	}
	return out
}

func TestChurnRepairE2E(t *testing.T) {
	const convergeWithin = 8 * time.Second

	// The schedule wipes, in turn, both holders of the first file: its
	// lookup-tree primaries, one per subtree. Every name sharing either
	// holder erodes too; any name sharing both is guaranteed lost in the
	// control run.
	victimsOf := func(h *churnHarness) [2]bitops.PID {
		hs := h.holders(h.names[0])
		if len(hs) != 2 {
			t.Fatalf("holders(%s) = %v, want one per subtree", h.names[0], hs)
		}
		return [2]bitops.PID{hs[0], hs[1]}
	}

	// Control: no repair. Wiping one holder leaves the name on a single
	// copy nobody is responsible for noticing; wiping the second loses it.
	control := newChurnHarness(t, false)
	cv := victimsOf(control)
	control.wipe(cv[0])
	control.wipe(cv[1])
	controlLost := control.lost()
	if len(controlLost) == 0 {
		t.Fatal("control run lost nothing; the schedule is not harsh enough to prove repair matters")
	}
	control.sys.closeAll()

	// Repair on: the identical wipe sequence, plus a correlated
	// double-crash of two same-parity peers (B=1 parity puts them in the
	// same subtree of every tree, so both copies of a name are never dark
	// at once) with scripted loss of in-flight repair probes.
	h := newChurnHarness(t, true)
	rv := victimsOf(h)
	var ttfr [3]time.Duration
	var ok bool
	h.wipe(rv[0])
	if ttfr[0], ok = h.awaitFullReplication(convergeWithin); !ok {
		t.Fatalf("replication not restored %v after first wipe; lost=%v", ttfr[0], h.lost())
	}
	h.wipe(rv[1])
	if ttfr[1], ok = h.awaitFullReplication(convergeWithin); !ok {
		t.Fatalf("replication not restored %v after second wipe; lost=%v", ttfr[1], h.lost())
	}

	even := [2]bitops.PID{(rv[0] &^ 1) ^ 2, (rv[0] &^ 1) ^ 4} // same parity as each other, never both holders
	churn := transport.NewChurn(h.sys.faults, []transport.ChurnEvent{
		{
			Crash:     []string{h.sys.addr(even[0]), h.sys.addr(even[1])},
			LoseKind:  msg.KindHas,
			LoseTimes: 25,
		},
		{Rejoin: []string{h.sys.addr(even[0]), h.sys.addr(even[1])}},
	})
	defer churn.Reset()
	churn.Advance()
	time.Sleep(150 * time.Millisecond) // repair grinds against the partition
	churn.Advance()
	if ttfr[2], ok = h.awaitFullReplication(convergeWithin); !ok {
		t.Fatalf("replication not restored %v after correlated crash; lost=%v", ttfr[2], h.lost())
	}

	if lost := h.lost(); len(lost) != 0 {
		t.Fatalf("repair run lost %v", lost)
	}
	totals := h.repairTotals()
	if totals["repaired"]+totals["repair_pulled"] == 0 {
		t.Fatal("zero copies repaired; the run did not exercise the repair path")
	}
	if totals["digest_bytes"] == 0 {
		t.Fatal("no digest traffic; the run did not exercise the digest path")
	}

	maxTTFR := ttfr[0]
	for _, d := range ttfr[1:] {
		if d > maxTTFR {
			maxTTFR = d
		}
	}
	if err := benchjson.Record("repair",
		benchjson.Result{
			Name: "churn/control",
			Extra: map[string]float64{
				"files":            float64(len(control.names)),
				"lost_names":       float64(len(controlLost)),
				"loss_probability": float64(len(controlLost)) / float64(len(control.names)),
			},
		},
		benchjson.Result{
			Name: "churn/repair",
			Extra: map[string]float64{
				"files":            float64(len(h.names)),
				"lost_names":       0,
				"loss_probability": 0,
				"ttfr_wipe1_ms":    float64(ttfr[0].Nanoseconds()) / 1e6,
				"ttfr_wipe2_ms":    float64(ttfr[1].Nanoseconds()) / 1e6,
				"ttfr_corr_ms":     float64(ttfr[2].Nanoseconds()) / 1e6,
				"ttfr_max_ms":      float64(maxTTFR.Nanoseconds()) / 1e6,
				"repaired":         totals["repaired"],
				"repair_pulled":    totals["repair_pulled"],
				"repair_probes":    totals["repair_probes"],
				"repair_skipped":   totals["repair_skipped"],
				"digest_bytes":     totals["digest_bytes"],
			},
		},
	); err != nil {
		t.Fatal(err)
	}
	t.Logf("control lost %d/%d names; repair lost 0, ttfr wipe1=%v wipe2=%v corr=%v",
		len(controlLost), len(control.names), ttfr[0], ttfr[1], ttfr[2])
}
