package netnode

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"lesslog/internal/msg"
)

// sendBatch frames subs into one KindBatch exchange with addr and returns
// the decoded sub-responses.
func sendBatch(t *testing.T, addr string, subs []*msg.Request) []*msg.Response {
	t.Helper()
	data, err := msg.AppendBatchRequests(nil, subs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Call(addr, &msg.Request{Kind: msg.KindBatch, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("batch rejected: %s", resp.Err)
	}
	out, err := msg.DecodeBatchResponses(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBatchServesMixedSubRequests(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), nil)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("batch/%d", i)
		if err := NewClient(peers[0].Addr()).Insert(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	subs := []*msg.Request{
		{Kind: msg.KindGet, Name: "batch/0"},
		{Kind: msg.KindGet, Name: "batch/3"},
		{Kind: msg.KindGet, Name: "batch/missing"},
		{Kind: msg.KindHas, Name: "batch/1"},
	}
	out := sendBatch(t, peers[5].Addr(), subs)
	if len(out) != len(subs) {
		t.Fatalf("got %d sub-responses, want %d", len(out), len(subs))
	}
	if !out[0].OK || !bytes.Equal(out[0].Data, []byte("batch/0")) {
		t.Fatalf("sub-response 0 = %+v", out[0])
	}
	if !out[1].OK || !bytes.Equal(out[1].Data, []byte("batch/3")) {
		t.Fatalf("sub-response 1 = %+v", out[1])
	}
	if out[2].OK {
		t.Fatalf("missing file served through batch: %+v", out[2])
	}
}

func TestBatchRejectsCorruptPayload(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	resp, err := Call(peers[0].Addr(), &msg.Request{Kind: msg.KindBatch, Data: []byte{0xFF, 0xFF}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "batch decode") {
		t.Fatalf("corrupt batch accepted: %+v", resp)
	}
}

// TestEveryKindHasHandler iterates the whole kind space: each declared
// kind must reach a real handler arm — never the "unknown kind" default —
// so adding a kind (as KindBatch was) cannot silently miss the dispatch
// switch. One past the last kind must still be rejected.
func TestEveryKindHasHandler(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(8), nil)
	addr := peers[0].Addr()
	if err := NewClient(addr).Insert("seed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	emptyBatch, err := msg.AppendBatchRequests(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	emptyDigest, err := msg.AppendDigest(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	headRange, err := msg.AppendFetchReq(nil, msg.FetchReq{Offset: 0, Length: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	putOpen, err := msg.AppendPutReq(nil, &msg.PutReq{
		Op: msg.PutData, TotalSize: 1, FileCRC: crc32.Checksum([]byte("p"), castagnoli),
		ChunkCRC: crc32.Checksum([]byte("p"), castagnoli), Chunk: []byte("p"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A direct notify for a name already held at least as new: the fast
	// path answers OK without pulling anything.
	notifyHeld, err := msg.AppendNotifyReq(nil, &msg.NotifyReq{
		TotalSize: 1, FileCRC: 1,
		Sources: []msg.Holder{{PID: 1, Addr: peers[1].Addr(), Version: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[msg.Kind]*msg.Request{
		msg.KindInsert: {Kind: msg.KindInsert, Name: "k/insert", Data: []byte("v")},
		msg.KindGet:    {Kind: msg.KindGet, Name: "seed"},
		msg.KindUpdate: {Kind: msg.KindUpdate, Name: "seed", Data: []byte("v2")},
		msg.KindStore:  {Kind: msg.KindStore, Name: "k/store", Data: []byte("v"), Version: 1},
		msg.KindStat:   {Kind: msg.KindStat},
		// Propagated registration of a peer that is already live: applied
		// locally, no relays, no membership change.
		msg.KindRegister: {Kind: msg.KindRegister, Flags: msg.FlagPropagate,
			Origin: 1, Data: []byte(peers[1].Addr())},
		msg.KindTable:     {Kind: msg.KindTable},
		msg.KindHas:       {Kind: msg.KindHas, Name: "seed"},
		msg.KindDelete:    {Kind: msg.KindDelete, Name: "k/store"},
		msg.KindBatch:     {Kind: msg.KindBatch, Data: emptyBatch},
		msg.KindLocate:    {Kind: msg.KindLocate, Name: "seed"},
		msg.KindDigest:    {Kind: msg.KindDigest, Origin: 1, Data: emptyDigest},
		msg.KindTraces:    {Kind: msg.KindTraces},
		msg.KindFetch:     {Kind: msg.KindFetch, Name: "seed", Data: headRange},
		msg.KindLocateSet: {Kind: msg.KindLocateSet, Name: "seed"},
		msg.KindPut:       {Kind: msg.KindPut, Name: "k/put", Data: putOpen},
		msg.KindNotify:    {Kind: msg.KindNotify, Name: "seed", Version: 1, Data: notifyHeld},
	}
	for k := 1; k < msg.KindCount; k++ {
		kind := msg.Kind(k)
		req, covered := reqs[kind]
		if !covered {
			t.Errorf("kind %v (%d) has no probe request; extend this test with the new kind", kind, k)
			continue
		}
		resp, err := Call(addr, req)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if strings.Contains(resp.Err, "unknown kind") {
			t.Errorf("kind %v fell through to the unknown-kind default; extend dispatch", kind)
		}
	}
	resp, err := Call(addr, &msg.Request{Kind: msg.Kind(msg.KindCount), Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "unknown kind") {
		t.Fatalf("kind KindCount should be rejected, got %+v", resp)
	}
}
