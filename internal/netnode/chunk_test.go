package netnode

// E2E tests for the chunked data plane: ranged fetches, locate-set replica
// resolution, striping across holders, anti-splice under concurrent
// updates, the over-frame read ceiling, and legacy whole-frame fallback.

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"sync"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/store"
	"lesslog/internal/stream"
	"lesslog/internal/transport"
)

func chunkPayload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestChunkedGetRoundTrip is the acceptance path: a file larger than one
// chunk inserted through the normal write plane round-trips through a
// chunked, striped get with the checksum verified.
func TestChunkedGetRoundTrip(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	cl := NewLocateClientWith(peers[8].Addr(), peers[8].Transport(), LocateOptions{
		ChunkSize: 4 << 10, ChunkWindow: 4,
	})
	data := chunkPayload(64<<10, 1) // 16 chunks at 4 KiB
	if err := cl.Insert("big", data); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("chunked get returned %d bytes, payload mismatch", len(res.Data))
	}
	st := cl.LocateStats()
	if st.ChunkedGets.Load() != 1 || st.Relays.Load() != 0 {
		t.Fatalf("chunked=%d relays=%d, want 1/0", st.ChunkedGets.Load(), st.Relays.Load())
	}
	ss := cl.StreamStats()
	if ss.ChunksFetched.Load() < 16 {
		t.Fatalf("chunks fetched = %d, want >= 16", ss.ChunksFetched.Load())
	}
	// The transfer moved zero relayed bytes: every chunk rode the direct hop.
	var relayed uint64
	for _, p := range peers {
		relayed += p.Stats().RelayedBytes.Load()
	}
	if relayed != 0 {
		t.Fatalf("relayed %d payload bytes on the direct chunk path, want 0", relayed)
	}
	// Warm-hint repeat: no further locate walks.
	locates := st.Locates.Load()
	if _, err := cl.Get("big"); err != nil {
		t.Fatal(err)
	}
	if st.Locates.Load() != locates || st.HintHits.Load() != 1 {
		t.Fatalf("warm get: locates=%d (was %d), hint hits=%d",
			st.Locates.Load(), locates, st.HintHits.Load())
	}
}

// TestChunkedGetStripesAcrossReplicas verifies the locate-set answer lists
// the replica set and the transfer actually spreads chunk serves across
// more than one holder.
func TestChunkedGetStripesAcrossReplicas(t *testing.T) {
	peers := startSystem(t, 4, 2, allPIDs(16), hashring.Fixed(4)) // b=2: 4 replicas
	cl := NewLocateClientWith(peers[9].Addr(), peers[9].Transport(), LocateOptions{
		ChunkSize: 2 << 10, ChunkWindow: 8,
	})
	data := chunkPayload(64<<10, 2) // 32 chunks
	if err := cl.Insert("hot", data); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("payload mismatch")
	}
	servers := 0
	for _, p := range peers {
		if p.Stats().ChunksServed.Load() > 0 {
			servers++
		}
	}
	if servers < 2 {
		t.Fatalf("chunks served by %d holders, want striping across >= 2", servers)
	}
	if w := cl.StreamStats().StripeWidth.Load(); w < 2 {
		t.Fatalf("stripe width %d, want >= 2", w)
	}
}

// TestChunkedReadCeiling proves the read path's ceiling is msg.MaxFileSize,
// not one frame: a copy larger than msg.MaxData (placed directly into the
// holder stores, bypassing the write plane) is readable via the chunk
// plane, checksum intact.
func TestChunkedReadCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("seeds a >16 MiB payload per holder")
	}
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	data := chunkPayload(msg.MaxData+(1<<20), 3) // 17 MiB: over one frame's cap
	for _, pid := range []bitops.PID{4, 8} {
		peers[pid].store.Put(store.File{Name: "huge", Data: data, Version: 1}, store.Inserted)
	}
	cl := NewLocateClientWith(peers[2].Addr(), peers[2].Transport(), LocateOptions{})
	res, err := cl.Get("huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("over-frame read returned %d bytes, want %d intact", len(res.Data), len(data))
	}
}

// TestOversizeInsertRejected is the write-plane edge guard: an insert (or
// update) larger than the system-wide file cap (msg.MaxFileSize — one
// wire frame stopped being the ceiling when writes went chunked) fails
// fast with the typed error and bumps the counter — no bytes move.
func TestOversizeInsertRejected(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(4), hashring.Fixed(2))
	cl := NewLocateClientWith(peers[0].Addr(), peers[0].Transport(), LocateOptions{})
	big := make([]byte, msg.MaxFileSize+1)
	if err := cl.Insert("big", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize insert err = %v, want ErrTooLarge", err)
	}
	if _, err := cl.Update("big", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize update err = %v, want ErrTooLarge", err)
	}
	if n := cl.LocateStats().OversizeRejects.Load(); n != 2 {
		t.Fatalf("oversize counter = %d, want 2", n)
	}
	for _, p := range peers {
		if p.Stats().Requests.Load() != 0 {
			t.Fatal("oversize write reached the wire")
		}
	}
}

// TestChunkedNoSpliceUnderUpdate is the race E2E: a chunked read running
// concurrently with updates must return exactly one version's bytes —
// version-pinned ranges make a splice impossible. Run under -race in CI.
func TestChunkedNoSpliceUnderUpdate(t *testing.T) {
	peers := startSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4))
	mkv := func(v byte) []byte {
		b := bytes.Repeat([]byte{v}, 32<<10)
		return b
	}
	wcl := NewClient(peers[3].Addr())
	if err := wcl.Insert("contested", mkv(1)); err != nil {
		t.Fatal(err)
	}
	rcl := NewLocateClientWith(peers[8].Addr(), peers[8].Transport(), LocateOptions{
		ChunkSize: 1 << 10, ChunkWindow: 4,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := byte(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := wcl.Update("contested", mkv(v)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		res, err := rcl.Get("contested")
		if err != nil {
			// Sustained write pressure can exhaust the re-locate retry and
			// relay; both outcomes must still be splice-free, a fault is not.
			t.Fatal(err)
		}
		first := res.Data[0]
		if !bytes.Equal(res.Data, bytes.Repeat([]byte{first}, len(res.Data))) {
			t.Fatalf("spliced read: starts with %d, mixed bytes follow", first)
		}
	}
	close(stop)
	wg.Wait()
}

// TestChunkedLegacyFallback: a fabric that predates the chunk plane
// triggers the unknown-kind downgrade and the get falls back to the
// whole-frame relay path — data still served, latch held.
func TestChunkedLegacyFallback(t *testing.T) {
	peers := startMixedSystem(t, 4, 0, allPIDs(16), hashring.Fixed(4),
		func(bitops.PID) bool { return true })
	cl := NewLocateClientWith(peers[8].Addr(), peers[8].Transport(), LocateOptions{})
	if err := cl.Insert("f", []byte("legacy bytes")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("legacy bytes")) {
		t.Fatalf("legacy fallback get = %q", res.Data)
	}
	st := cl.LocateStats()
	if st.ChunkDowngrades.Load() != 1 || st.Downgrades.Load() != 1 {
		t.Fatalf("chunk-downgrades=%d locate-downgrades=%d, want 1/1",
			st.ChunkDowngrades.Load(), st.Downgrades.Load())
	}
	if st.ChunkedGets.Load() != 0 {
		t.Fatal("chunked get against a legacy fabric")
	}
}

// TestFetchWireSemantics exercises the raw KindFetch handler: range math,
// per-chunk CRC, head-only file CRC, version-pin refusal, and the
// serve-or-refuse miss.
func TestFetchWireSemantics(t *testing.T) {
	peers := startSystem(t, 3, 0, allPIDs(4), hashring.Fixed(2))
	data := chunkPayload(10_000, 4)
	peers[1].store.Put(store.File{Name: "f", Data: data, Version: 3}, store.Inserted)
	table := crc32.MakeTable(crc32.Castagnoli)

	fetch := func(offset uint64, length uint32, pin uint64) (*msg.Response, *msg.FetchResp) {
		raw, err := msg.AppendFetchReq(nil, msg.FetchReq{Offset: offset, Length: length})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := Call(peers[1].Addr(), &msg.Request{
			Kind: msg.KindFetch, Name: "f", Version: pin, Data: raw,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			return resp, nil
		}
		fr, err := msg.DecodeFetchResp(resp.Data)
		if err != nil {
			t.Fatal(err)
		}
		return resp, fr
	}

	// Head chunk: file CRC present, chunk CRC covers the range.
	resp, fr := fetch(0, 4096, 0)
	if !resp.OK || fr.TotalSize != 10_000 || len(fr.Chunk) != 4096 {
		t.Fatalf("head chunk: ok=%v total=%d len=%d", resp.OK, fr.TotalSize, len(fr.Chunk))
	}
	if fr.FileCRC != crc32.Checksum(data, table) || fr.ChunkCRC != crc32.Checksum(data[:4096], table) {
		t.Fatal("head chunk checksums wrong")
	}
	// Body chunk: no file CRC; EOF truncates the final range.
	if _, fr = fetch(8192, 4096, 3); fr.FileCRC != 0 || len(fr.Chunk) != 10_000-8192 {
		t.Fatalf("tail chunk: fileCRC=%d len=%d", fr.FileCRC, len(fr.Chunk))
	}
	// Version pin mismatch refuses with the held version.
	if resp, _ = fetch(0, 4096, 99); resp.OK || resp.Err != msg.WrongVersionError || resp.Version != 3 {
		t.Fatalf("pin mismatch = %+v", resp)
	}
	// Range past total refuses.
	if resp, _ = fetch(10_000, 1, 0); resp.OK {
		t.Fatal("range at total served")
	}
	// Serve-or-refuse: a fetch for an unheld name answers not-holder, no
	// forwarding (hops stay zero).
	raw, _ := msg.AppendFetchReq(nil, msg.FetchReq{Offset: 0, Length: 64})
	resp, err := Call(peers[1].Addr(), &msg.Request{Kind: msg.KindFetch, Name: "absent", Data: raw})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Err != ErrNotHolder || resp.Hops != 0 {
		t.Fatalf("fetch miss = %+v, want not-holder refusal with 0 hops", resp)
	}
	if peers[1].Stats().ChunksServed.Load() != 2 || peers[1].Stats().ChunkRefusals.Load() != 1 {
		t.Fatalf("holder counters: served=%d refusals=%d",
			peers[1].Stats().ChunksServed.Load(), peers[1].Stats().ChunkRefusals.Load())
	}
}

// TestLocateSetAnswer checks the replica-set locate: the holder lists
// itself with the real version plus the other live required holders, and
// the walk forwards a miss exactly like a single-holder locate.
func TestLocateSetAnswer(t *testing.T) {
	peers := startSystem(t, 4, 2, allPIDs(16), hashring.Fixed(4)) // b=2: 4 replicas
	if err := NewClient(peers[3].Addr()).Insert("f", []byte("set")); err != nil {
		t.Fatal(err)
	}
	// Ask a non-holder: the walk must forward to a holder, whose answer
	// lists every live replica.
	resp, err := Call(peers[8].Addr(), &msg.Request{Kind: msg.KindLocateSet, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("locate-set: %s", resp.Err)
	}
	hs, err := msg.DecodeHolders(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) < 2 {
		t.Fatalf("locate-set answered %d holders, want the replica set", len(hs))
	}
	if hs[0].PID != resp.ServedBy || hs[0].Version == 0 {
		t.Fatalf("first holder %+v, want the serving peer with its real version", hs[0])
	}
	for _, h := range hs {
		if h.Addr == "" {
			t.Fatalf("holder %d listed without an address", h.PID)
		}
	}
	// Every listed holder actually serves the head chunk.
	raw, _ := msg.AppendFetchReq(nil, msg.FetchReq{Offset: 0, Length: 1 << 10})
	for _, h := range hs {
		r, err := Call(h.Addr, &msg.Request{Kind: msg.KindFetch, Name: "f", Data: raw})
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			t.Fatalf("listed holder P(%d) refused the fetch: %s", h.PID, r.Err)
		}
	}
	// Unknown name faults through the walk like any locate.
	resp, err = Call(peers[8].Addr(), &msg.Request{Kind: msg.KindLocateSet, Name: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("locate-set for an absent name answered OK")
	}
}

// TestChunkedGetSurvivesHolderDeath kills one listed replica mid-warm and
// verifies the stripe retries ranges on the survivors.
func TestChunkedGetSurvivesHolderDeath(t *testing.T) {
	peers := startSystem(t, 4, 2, allPIDs(16), hashring.Fixed(4)) // b=2: 4 replicas
	cl := NewLocateClientWith(peers[8].Addr(), peers[8].Transport(), LocateOptions{
		ChunkSize: 2 << 10, ChunkWindow: 4,
	})
	data := chunkPayload(48<<10, 5)
	if err := cl.Insert("f", data); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("f"); err != nil { // warm the replica-set hint
		t.Fatal(err)
	}
	// Find a hinted holder that is NOT the entry peer and kill it.
	res, err := Call(peers[8].Addr(), &msg.Request{Kind: msg.KindLocateSet, Name: "f"})
	if err != nil || !res.OK {
		t.Fatalf("locate-set: %v %s", err, res.Err)
	}
	hs, _ := msg.DecodeHolders(res.Data)
	var victim bitops.PID
	for _, h := range hs[1:] {
		victim = bitops.PID(h.PID)
		break
	}
	if victim == 0 && hs[0].PID != 0 {
		t.Skip("single-holder layout; nothing to kill")
	}
	peers[victim].Close()
	got, err := cl.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("payload mismatch after holder death")
	}
	if cl.StreamStats().ChunkRetries.Load() == 0 && cl.LocateStats().Relays.Load() == 0 {
		t.Fatal("holder death neither retried a chunk nor relayed")
	}
}

// Interface check: the pooled peer transport satisfies the stream
// package's Doer without adaptation.
var _ stream.Doer = (*transport.Transport)(nil)
