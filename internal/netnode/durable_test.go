package netnode

// Restart-warming and tombstone-persistence regressions for the durable
// storage engine (docs/STORAGE.md): a peer that restarts from its log
// must re-announce recovered copies through the repair plane, and a
// crash/restart between propagateDelete and tombstone-TTL expiry must
// not resurrect the deleted name.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/msg"
	"lesslog/internal/repair"
	"lesslog/internal/store"
	"lesslog/internal/wal"
)

// startDurableSystem is startSystem with a data directory for pid 0.
func startDurableSystem(t *testing.T, m, b int, n int, hasher hashring.Hasher, dir string) map[bitops.PID]*Peer {
	t.Helper()
	peers := make(map[bitops.PID]*Peer, n)
	addrs := make(map[bitops.PID]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{PID: bitops.PID(i), M: m, B: b, Hasher: hasher}
		if i == 0 {
			cfg.DataDir = dir
			cfg.Fsync = wal.FsyncAlways
		}
		p, err := Listen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers[bitops.PID(i)] = p
		addrs[bitops.PID(i)] = p.Addr()
	}
	for _, p := range peers {
		p.SetAddrs(addrs)
	}
	return peers
}

// restartPeer closes p and brings it back from the same data directory,
// rejoining through bootstrap (which re-broadcasts the new address).
func restartPeer(t *testing.T, p *Peer, bootstrap *Peer) *Peer {
	t.Helper()
	cfg := p.cfg
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2.Close() })
	if err := p2.Join(bootstrap.Addr()); err != nil {
		t.Fatal(err)
	}
	return p2
}

// A crash/restart between the delete broadcast and tombstone-TTL expiry
// must not resurrect the name: the tombstone is replayed from the log,
// refuses stale pushes, and propagates the deletion through repair to a
// peer that slept through the broadcast holding an old copy.
func TestTombstoneSurvivesRestartAndBlocksResurrection(t *testing.T) {
	dir := t.TempDir()
	peers := startDurableSystem(t, 2, 0, 4, hashring.Fixed(0), dir)

	if err := NewClient(peers[1].Addr()).Insert("doomed", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if !peers[0].store.Has("doomed") {
		t.Fatal("setup: copy not at its target")
	}
	if _, err := NewClient(peers[1].Addr()).Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	tv, dead := peers[0].store.TombVersion("doomed")
	if !dead {
		t.Fatal("setup: delete left no tombstone")
	}
	// Peer 3 slept through the delete while holding a pre-delete copy.
	peers[3].store.Put(store.File{Name: "doomed", Data: []byte("data"), Version: 1}, store.Inserted)

	// Crash/restart the deleting peer before the tombstone TTL expires.
	p0 := restartPeer(t, peers[0], peers[1])
	if v, ok := p0.store.TombVersion("doomed"); !ok || v != tv {
		t.Fatalf("tombstone after restart = (%d, %v), want (%d, true)", v, ok, tv)
	}
	if p0.store.Has("doomed") {
		t.Fatal("restart resurrected the deleted copy")
	}

	// A stale push at the restarted peer is refused by the replayed
	// tombstone, not applied.
	resp, err := Call(p0.Addr(), &msg.Request{Kind: msg.KindStore, Name: "doomed", Data: []byte("data"), Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || p0.store.Has("doomed") {
		t.Fatalf("stale push after restart accepted: %+v", resp)
	}

	// The sleeper's own repair round probes the restarted primary, learns
	// of the deletion, and erases its copy instead of re-pushing it.
	peers[3].RepairOnce(&repair.Sampler{}, repair.NewBudget(-1, 0), -1)
	if peers[3].store.Has("doomed") {
		t.Fatal("repair re-established a deleted name against a restarted tombstone")
	}
	if _, dead := peers[3].store.TombVersion("doomed"); !dead {
		t.Fatal("deletion did not propagate to the sleeper")
	}
	if peers[3].Stats().RepairErased.Load() == 0 {
		t.Fatal("erase not counted")
	}
}

// A durable peer's graceful Leave retires its log with one barrier
// record — not one delete per handed-off name (the write-amplification
// fix) — and a restart from the same directory replays to empty instead
// of re-announcing copies the fabric already re-homed.
func TestLeaveRetiresDurableStore(t *testing.T) {
	dir := t.TempDir()
	peers := startDurableSystem(t, 2, 0, 4, hashring.Fixed(0), dir)
	cl := NewClient(peers[1].Addr())
	for i := 0; i < 8; i++ {
		if err := cl.Insert(fmt.Sprintf("ret/%d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if peers[0].store.Len() != 8 {
		t.Fatalf("setup: durable peer holds %d copies, want 8", peers[0].store.Len())
	}
	appends := peers[0].eng.Stats().Appends.Load()
	if err := peers[0].Leave(); err != nil {
		t.Fatal(err)
	}
	if peers[0].store.Len() != 0 || peers[0].store.TombstoneCount() != 0 {
		t.Fatalf("leave kept local state: %s", peers[0].store.String())
	}
	if got := peers[0].eng.Stats().Appends.Load() - appends; got != 1 {
		t.Fatalf("leave appended %d records, want the single retire barrier", got)
	}
	// The handed-off copies still serve from their new primaries.
	if res, err := cl.Get("ret/3"); err != nil || res.ServedBy == 0 {
		t.Fatalf("post-leave get = %+v, %v", res, err)
	}
	if err := peers[0].Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same log: replay honors the barrier.
	p0, err := Listen(peers[0].cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	if p0.store.Len() != 0 || p0.store.TombstoneCount() != 0 {
		t.Fatalf("restart past the retire barrier recovered %s", p0.store.String())
	}
}

// POST /checkpoint on a durable peer compacts its log to live state and
// reports the resulting segment shape.
func TestAdminCheckpointCompactsDurablePeer(t *testing.T) {
	peers := startDurableSystem(t, 2, 0, 4, hashring.Fixed(0), t.TempDir())

	// Many superseded versions of one name: plenty for compaction to drop.
	cl := NewClient(peers[1].Addr())
	if err := cl.Insert("hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 40; v++ {
		if _, err := cl.Update("hot", []byte(fmt.Sprintf("v%d", v))); err != nil {
			t.Fatal(err)
		}
	}
	adm, err := peers[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Post("http://"+adm.Addr()+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint = %d", resp.StatusCode)
	}
	var body struct {
		Checkpointed   bool  `json:"checkpointed"`
		SealedSegments int   `json:"sealed_segments"`
		ActiveBytes    int64 `json:"active_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Checkpointed || body.SealedSegments != 1 || body.ActiveBytes != 0 {
		t.Fatalf("checkpoint response = %+v", body)
	}
	if f, ok := peers[0].store.Peek("hot"); !ok || f.Version != 40 {
		t.Fatalf("post-checkpoint copy = %+v, %v", f, ok)
	}
}

// A restarting peer replays its log and re-announces the recovered
// inventory through the repair plane: copies the fabric lost while it
// was down are pushed back without any client re-insert.
func TestRestartWarmRejoinReannouncesInventory(t *testing.T) {
	dir := t.TempDir()
	peers := startDurableSystem(t, 2, 1, 4, hashring.Fixed(0), dir)

	if err := NewClient(peers[1].Addr()).Insert("warm", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// b=1: the insert placed a second copy at the sibling subtree's
	// primary; find which peer that is.
	var sib *Peer
	for pid, p := range peers {
		if pid != 0 && p.store.Has("warm") {
			sib = p
		}
	}
	if !peers[0].store.Has("warm") || sib == nil {
		t.Fatal("setup: expected copies at peer 0 and one sibling-subtree primary")
	}

	// The sibling holder loses its copy while peer 0 is down — the
	// correlated-failure case §5.3 cannot see (nobody was up to notice).
	p0 := restartPeer(t, peers[0], peers[1])
	sib.store.Delete("warm")

	if !p0.store.Has("warm") {
		t.Fatal("restart lost the recovered copy")
	}
	// Join already announces in the background; call it directly for a
	// deterministic assertion.
	p0.AnnounceInventory()
	if !sib.store.Has("warm") {
		t.Fatal("warm rejoin did not re-establish the sibling copy")
	}
	f, _ := sib.store.Peek("warm")
	if string(f.Data) != "payload" {
		t.Fatalf("re-established copy = %q", f.Data)
	}

	// And the background announce from Join itself converges too: lose the
	// copy again, restart again, and wait for the async warming round.
	sib.store.Delete("warm")
	restartPeer(t, p0, peers[1])
	deadline := time.Now().Add(5 * time.Second)
	for !sib.store.Has("warm") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !sib.store.Has("warm") {
		t.Fatal("background announce after Join never re-established the copy")
	}
}
