package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lesslog/internal/store"
)

// openT opens an engine in dir, failing the test on error.
func openT(t *testing.T, opts Options) (*Engine, *store.Store) {
	t.Helper()
	e, st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, st
}

// sameState fails unless got holds exactly want's copies (data, version,
// kind) and tombstones (version).
func sameState(t *testing.T, got, want *store.Store) {
	t.Helper()
	gn, wn := got.AllNames(), want.AllNames()
	if len(gn) != len(wn) {
		t.Fatalf("names = %v, want %v", gn, wn)
	}
	for i := range wn {
		if gn[i] != wn[i] {
			t.Fatalf("names = %v, want %v", gn, wn)
		}
		w, _ := want.Peek(wn[i])
		g, _ := got.Peek(wn[i])
		if !bytes.Equal(g.Data, w.Data) || g.Version != w.Version {
			t.Fatalf("%s: got %+v, want %+v", wn[i], g, w)
		}
		wk, _ := want.KindOf(wn[i])
		gk, _ := got.KindOf(wn[i])
		if wk != gk {
			t.Fatalf("%s: kind %v, want %v", wn[i], gk, wk)
		}
	}
	gt, wt := got.Tombstones(), want.Tombstones()
	if len(gt) != len(wt) {
		t.Fatalf("tombstones = %v, want %v", gt, wt)
	}
	for i := range wt {
		if gt[i].Name != wt[i].Name || gt[i].Version != wt[i].Version {
			t.Fatalf("tombstone %d = %+v, want %+v", i, gt[i], wt[i])
		}
	}
}

// Round trip (migrated from the retired diskstore round-trip test): every
// mutation class through the persister hook survives a reopen.
func TestOpenCloseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir})
	live := store.New()
	live.SetPersister(e)
	live.Put(store.File{Name: "a/b.txt", Data: []byte("alpha"), Version: 3}, store.Inserted)
	live.Put(store.File{Name: "c", Data: []byte("gamma"), Version: 1}, store.Replica)
	live.Put(store.File{Name: "empty", Data: nil, Version: 9}, store.Replica)
	live.Put(store.File{Name: "drop", Data: []byte("x"), Version: 1}, store.Inserted)
	live.Delete("drop") // local-only removal: gone, no tombstone
	live.Put(store.File{Name: "dead", Data: []byte("y"), Version: 2}, store.Inserted)
	live.Tombstone("dead", 5, time.Unix(100, 0))
	live.Put(store.File{Name: "promo", Data: []byte("z"), Version: 1}, store.Replica)
	live.Promote("promo")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, recovered := openT(t, Options{Dir: dir})
	defer e2.Close()
	sameState(t, recovered, live)
	if k, _ := recovered.KindOf("promo"); k != store.Inserted {
		t.Fatalf("promotion lost across restart: kind %v", k)
	}
	if v, ok := recovered.TombVersion("dead"); !ok || v != 5 {
		t.Fatalf("tombstone = (%d, %v), want (5, true)", v, ok)
	}
	if recovered.Has("drop") {
		t.Fatal("deleted copy resurrected")
	}
}

// A missing directory is an empty engine, not an error (migrated from the
// diskstore missing-dir test; the engine creates it).
func TestOpenMissingDirIsEmpty(t *testing.T) {
	e, st := openT(t, Options{Dir: filepath.Join(t.TempDir(), "nope")})
	defer e.Close()
	if st.Len() != 0 || st.TombstoneCount() != 0 {
		t.Fatalf("missing dir not empty: %v", st.AllNames())
	}
}

// Foreign files in the data directory are ignored (migrated).
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "lost+found"), []byte("hi"), 0o644)
	e, st := openT(t, Options{Dir: dir})
	defer e.Close()
	if st.Len() != 0 {
		t.Fatalf("foreign files broke open: %v", st.AllNames())
	}
}

// Oversize records are rejected at append, never silently truncated
// (migrated from the diskstore oversize test).
func TestAppendRejectsOversize(t *testing.T) {
	e, _ := openT(t, Options{Dir: t.TempDir()})
	defer e.Close()
	if err := e.append(record{op: opPut, name: "big", data: make([]byte, maxData+1), version: 1}); err == nil {
		t.Fatal("oversize payload accepted")
	}
	if err := e.append(record{op: opPut, name: strings.Repeat("n", maxName+1), version: 1}); err == nil {
		t.Fatal("oversize name accepted")
	}
	if e.Err() != nil {
		t.Fatalf("caller bug marked engine degraded: %v", e.Err())
	}
}

// Checkpoint cycles across restarts keep exactly the latest state
// (migrated from the diskstore checkpoint-cycle test).
func TestCheckpointCycleSurvivesRestarts(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 5; round++ {
		e, st := openT(t, Options{Dir: dir})
		if round > 0 {
			f, _ := st.Peek("counter")
			if f.Version != uint64(round) || f.Data[0] != byte(round-1) {
				t.Fatalf("round %d recovered %+v", round, f)
			}
		}
		st.SetPersister(e)
		st.Put(store.File{Name: "counter", Data: []byte{byte(round)}, Version: uint64(round + 1)}, store.Inserted)
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	e, st := openT(t, Options{Dir: dir})
	defer e.Close()
	f, _ := st.Peek("counter")
	if f.Version != 5 || f.Data[0] != 4 {
		t.Fatalf("final state %+v", f)
	}
}

// encodedLen is the on-disk size of r.
func encodedLen(r record) int64 {
	n := int64(recHeader + bodyHeader + len(r.name))
	if r.op == opPut {
		n += int64(4 + len(r.data))
	}
	return n
}

// randomRecord draws one op over a small name space so puts, updates,
// deletes and tombstones all collide on the same names.
func randomRecord(rng *rand.Rand) record {
	name := string(rune('a' + rng.Intn(8)))
	switch rng.Intn(10) {
	case 0:
		return record{op: opDelete, name: name}
	case 1:
		return record{op: opTombstone, name: name, version: uint64(rng.Intn(50)), at: int64(rng.Intn(1000))}
	default:
		kind := store.Inserted
		if rng.Intn(2) == 0 {
			kind = store.Replica
		}
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		return record{op: opPut, kind: kind, name: name, version: uint64(rng.Intn(50)), data: data}
	}
}

// Crash-recovery property test (satellite): write N random ops, corrupt
// the file at a random offset — truncation or a bit flip — and assert
// the replayed index equals exactly the longest valid record prefix.
// A flip early in the file is the torn-multi-record case: every record
// at or after it must vanish, however many had been acked.
func TestRecoveryTruncatesAtFirstCorruption(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		e, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever, CompactAfter: -1})
		n := 20 + rng.Intn(100)
		recs := make([]record, n)
		ends := make([]int64, n) // ends[i]: file offset after record i
		var off int64
		for i := range recs {
			recs[i] = randomRecord(rng)
			if err := e.append(recs[i]); err != nil {
				t.Fatal(err)
			}
			off += encodedLen(recs[i])
			ends[i] = off
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		path := segPath(dir, 1)
		if info, _ := os.Stat(path); info.Size() != off {
			t.Fatalf("seed %d: file %d bytes, computed %d", seed, info.Size(), off)
		}

		// Corrupt at a random offset; survivors are exactly the records
		// that end at or before it.
		cut := rng.Int63n(off)
		if rng.Intn(2) == 0 {
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
		} else {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[cut] ^= 1 << uint(rng.Intn(8))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		keep := 0
		for keep < n && ends[keep] <= cut {
			keep++
		}

		want := store.New()
		for _, r := range recs[:keep] {
			r.apply(want)
		}
		e2, got := openT(t, Options{Dir: dir, CompactAfter: -1})
		sameState(t, got, want)
		if tr := e2.Stats().Truncated.Load(); tr != uint64(off-ends2(ends, keep)) && tr == 0 && keep < n {
			t.Fatalf("seed %d: nothing truncated, kept %d/%d", seed, keep, n)
		}
		// The truncated tail must stay gone: append after recovery, reopen,
		// and the tail's records must not resurface.
		if err := e2.append(record{op: opPut, kind: store.Inserted, name: "post", version: 99, data: []byte("p")}); err != nil {
			t.Fatal(err)
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		want.Put(store.File{Name: "post", Data: []byte("p"), Version: 99}, store.Inserted)
		e3, again := openT(t, Options{Dir: dir, CompactAfter: -1})
		sameState(t, again, want)
		e3.Close()
	}
}

// ends2 returns the end offset of the kept prefix (0 when empty).
func ends2(ends []int64, keep int) int64 {
	if keep == 0 {
		return 0
	}
	return ends[keep-1]
}

// Corruption in an early segment drops every later segment: records past
// a tear have no reliable ordering context, so recovery keeps the longest
// valid prefix of the whole log, not of each file.
func TestRecoveryDropsSegmentsAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, SegmentSize: 128, Fsync: FsyncNever, CompactAfter: -1})
	var recs []record
	for i := 0; i < 40; i++ {
		r := record{op: opPut, kind: store.Inserted, name: string(rune('a' + i%8)),
			version: uint64(i + 1), data: bytes.Repeat([]byte{byte(i)}, 32)}
		if err := e.append(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := e.listSegments()
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v (%v)", segs, err)
	}
	// Count the records in segment 1, then flip a bit in its second record.
	var inFirst int
	replayFile(segPath(dir, segs[0]), func(record) { inFirst++ })
	if inFirst < 2 {
		t.Fatalf("first segment holds %d records", inFirst)
	}
	b, _ := os.ReadFile(segPath(dir, segs[0]))
	b[encodedLen(recs[0])+recHeader+2] ^= 0xff
	os.WriteFile(segPath(dir, segs[0]), b, 0o644)

	e2, got := openT(t, Options{Dir: dir, CompactAfter: -1})
	defer e2.Close()
	want := store.New()
	recs[0].apply(want)
	sameState(t, got, want)
	left, err := e2.listSegments()
	if err != nil || len(left) != 1 {
		t.Fatalf("later segments survived corruption: %v", left)
	}
}

// Checkpoint compacts the log to live state: superseded versions and
// local deletes disappear, the directory holds one segment, and the
// recovered state is unchanged.
func TestCheckpointDropsSupersededVersions(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, SegmentSize: 256, Fsync: FsyncNever, CompactAfter: -1})
	live := store.New()
	live.SetPersister(e)
	for i := 0; i < 50; i++ {
		live.Put(store.File{Name: "hot", Data: bytes.Repeat([]byte{byte(i)}, 64), Version: uint64(i + 1)}, store.Inserted)
	}
	live.Put(store.File{Name: "cold", Data: []byte("keep"), Version: 1}, store.Replica)
	live.Put(store.File{Name: "gone", Data: []byte("temp"), Version: 1}, store.Replica)
	live.Delete("gone")
	live.Tombstone("hot", 100, time.Now())
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One compacted segment plus the fresh (empty) active segment.
	segs, err := e.listSegments()
	if err != nil || len(segs) != 2 {
		t.Fatalf("post-checkpoint segments = %v", segs)
	}
	if sealed, activeBytes := e.Segments(); sealed != 1 || activeBytes != 0 {
		t.Fatalf("sealed = %d, active bytes = %d", sealed, activeBytes)
	}
	var kept int
	for _, s := range segs {
		replayFile(segPath(dir, s), func(record) { kept++ })
	}
	if kept != 2 { // cold put + hot tombstone
		t.Fatalf("checkpoint kept %d records, want 2", kept)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, got := openT(t, Options{Dir: dir})
	defer e2.Close()
	sameState(t, got, live)
}

// Compaction drops tombstones past the GC horizon and keeps younger ones.
func TestCheckpointGCsExpiredTombstones(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, TombstoneGC: time.Hour, CompactAfter: -1})
	e.PersistTombstone("old", 3, time.Now().Add(-2*time.Hour))
	e.PersistTombstone("fresh", 4, time.Now())
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, got := openT(t, Options{Dir: dir})
	defer e2.Close()
	if _, ok := got.TombVersion("old"); ok {
		t.Fatal("expired tombstone survived compaction")
	}
	if v, ok := got.TombVersion("fresh"); !ok || v != 4 {
		t.Fatalf("fresh tombstone = (%d, %v), want (4, true)", v, ok)
	}
}

// A crash between writing the checkpoint and removing the segments it
// supersedes is finished by the next Open: the .cpt wins, the stale
// segments go. A leftover .tmp (crash mid-checkpoint-write) is discarded.
func TestOpenFinishesInterruptedCompaction(t *testing.T) {
	dir := t.TempDir()
	// Stale segment 1: the pre-compaction state.
	stale, err := appendRecord(nil, record{op: opPut, kind: store.Inserted, name: "x", version: 1, data: []byte("old")})
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(segPath(dir, 1), stale, 0o644)
	// Completed checkpoint covering segment 1 with newer state.
	cpt, err := appendRecord(nil, record{op: opPut, kind: store.Inserted, name: "x", version: 2, data: []byte("new")})
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(cptPath(dir, 1), cpt, 0o644)
	// And a half-written temp from an even later, unfinished compaction.
	os.WriteFile(cptPath(dir, 1)+".tmp", []byte("garbage"), 0o644)

	e, st := openT(t, Options{Dir: dir})
	defer e.Close()
	f, ok := st.Peek("x")
	if !ok || f.Version != 2 || string(f.Data) != "new" {
		t.Fatalf("recovered %+v, want the checkpointed v2", f)
	}
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") || strings.HasSuffix(ent.Name(), ".cpt") {
			t.Fatalf("leftover %s survived open", ent.Name())
		}
	}
}

// Background compaction kicks in as sealed segments accumulate and the
// state survives it intact.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, SegmentSize: 128, CompactAfter: 2, Fsync: FsyncNever})
	live := store.New()
	live.SetPersister(e)
	for i := 0; i < 60; i++ {
		live.Put(store.File{Name: string(rune('a' + i%4)), Data: bytes.Repeat([]byte{byte(i)}, 40), Version: uint64(i + 1)}, store.Inserted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Compactions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if e.Stats().Compactions.Load() == 0 {
		t.Fatal("no background compaction ran")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, got := openT(t, Options{Dir: dir})
	defer e2.Close()
	sameState(t, got, live)
}

// Group commit under FsyncAlways: concurrent appenders share fsyncs, and
// everything acked is on disk after a reopen.
func TestGroupCommitFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways})
	const writers, each = 8, 25
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			var err error
			for i := 0; i < each && err == nil; i++ {
				err = e.append(record{op: opPut, kind: store.Inserted,
					name: string(rune('a'+w)) + "/" + string(rune('a'+i)), version: 1, data: []byte{byte(i)}})
			}
			done <- err
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	appends, syncs := e.Stats().Appends.Load(), e.Stats().Syncs.Load()
	if appends != writers*each {
		t.Fatalf("appends = %d", appends)
	}
	if syncs > appends {
		t.Fatalf("group commit degenerated: %d syncs for %d appends", syncs, appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs", appends, syncs)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, got := openT(t, Options{Dir: dir})
	defer e2.Close()
	if got.Len() != writers*each {
		t.Fatalf("recovered %d names, want %d", got.Len(), writers*each)
	}
}

// The sharded store's live semantics and the replayed log agree: a random
// workload driven through every Sharded mutator recovers to the exact
// live state, including PutNewer refusals and tombstone merges.
func TestShardedWorkloadReplaysToSameState(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		e, recovered := openT(t, Options{Dir: dir, CompactAfter: -1})
		live := store.ShardedFrom(recovered, 0)
		live.SetPersister(e)
		for i := 0; i < 300; i++ {
			name := string(rune('a' + rng.Intn(6)))
			v := uint64(rng.Intn(40))
			switch rng.Intn(12) {
			case 0:
				live.Delete(name)
			case 1, 2:
				live.Tombstone(name, v, time.Unix(int64(i), 0))
			case 3:
				live.Update(name, []byte{byte(i)}, v)
			case 4:
				live.Promote(name)
			case 5, 6, 7:
				live.PutNewer(store.File{Name: name, Data: []byte{byte(i), byte(v)}, Version: v}, store.Replica)
			default:
				kind := store.Inserted
				if rng.Intn(2) == 0 {
					kind = store.Replica
				}
				live.Put(store.File{Name: name, Data: []byte{byte(i)}, Version: v}, kind)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		e2, got := openT(t, Options{Dir: dir})
		sameState(t, got, live.Snapshot())
		e2.Close()
	}
}

// A degraded engine (write failure) reports the error on later appends,
// Err and Close — never a silent volatile run.
func TestEngineDegradesStickyOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir, Fsync: FsyncNever})
	if err := e.append(record{op: opPut, kind: store.Inserted, name: "a", version: 1}); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.active.Close() // simulate the disk going away under the engine
	e.mu.Unlock()
	if err := e.append(record{op: opPut, kind: store.Inserted, name: "b", version: 1}); err == nil {
		t.Fatal("append to closed file succeeded")
	}
	if e.Err() == nil {
		t.Fatal("engine not marked degraded")
	}
	if err := e.Close(); err == nil {
		t.Fatal("Close hid the degradation")
	}
}
