package wal

// Kill-and-recover harness: a child process (this test binary re-execed
// into TestKillNineChild) appends records under FsyncAlways and prints
// each sequence number only after its append returned — i.e. after the
// group commit fsynced it. The parent SIGKILLs the child mid-burst, then
// replays the directory and checks every acked record is present at the
// right version. This is the engine's core durability contract, exercised
// with a real dead process instead of a simulated one: ack ⇒ durable,
// whatever instant the crash lands on; an un-acked torn tail may vanish
// but can never surface corrupt.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"lesslog/internal/store"
)

const killDirEnv = "LESSLOG_WAL_KILL_DIR"

// TestKillNineChild is the re-execed writer; it only runs when the parent
// sets the data-dir env var, and it never returns — the parent kills it.
func TestKillNineChild(t *testing.T) {
	dir := os.Getenv(killDirEnv)
	if dir == "" {
		t.Skip("child mode; driven by TestKillNineRecoversAckedRecords")
	}
	e, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SegmentSize: 8 << 10})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	for i := 0; ; i++ {
		r := record{op: opPut, kind: store.Inserted,
			name:    fmt.Sprintf("name-%04d", i%512), // overwrites: versions advance
			version: uint64(i + 1),
			data:    []byte(fmt.Sprintf("payload-%d", i)),
		}
		if err := e.append(r); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "ACK %d\n", i)
		w.Flush()
	}
}

func TestKillNineRecoversAckedRecords(t *testing.T) {
	if os.Getenv(killDirEnv) != "" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestKillNineChild$", "-test.v")
	cmd.Env = append(os.Environ(), killDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Collect acks until the burst is well under way — across at least one
	// segment rotation — then kill without warning.
	sc := bufio.NewScanner(stdout)
	lastAck := -1
	for sc.Scan() {
		line := sc.Text()
		var n int
		if _, err := fmt.Sscanf(line, "ACK %d", &n); err == nil {
			lastAck = n
			if n >= 700 {
				break
			}
			continue
		}
		if len(line) > 3 && line[:3] == "ERR" {
			t.Fatalf("child failed: %s", line)
		}
	}
	if lastAck < 700 {
		t.Fatalf("child died early; last ack %d", lastAck)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// Drain remaining acks already in flight through the pipe: anything
	// the child printed before dying counts as acked.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			var n int
			if _, err := fmt.Sscanf(sc.Text(), "ACK %d", &n); err == nil {
				lastAck = n
			}
		}
	}()
	cmd.Wait()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("stdout never closed after SIGKILL")
	}

	e, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer e.Close()
	// Every acked write must have survived: name i%512 was last acked at
	// the highest acked iteration that touched it, and the recovered copy
	// must be at least that new (a newer un-acked overwrite may also have
	// landed — that's allowed; loss is not).
	wantVersion := map[string]uint64{}
	for i := 0; i <= lastAck; i++ {
		wantVersion[fmt.Sprintf("name-%04d", i%512)] = uint64(i + 1)
	}
	for name, v := range wantVersion {
		f, ok := st.Peek(name)
		if !ok {
			t.Fatalf("acked name %s lost (last ack %d)", name, lastAck)
		}
		if f.Version < v {
			t.Fatalf("%s recovered at v%d, acked v%d", name, f.Version, v)
		}
	}
	t.Logf("SIGKILL at ack %d: recovered %d names, %d records replayed, %d bytes torn tail truncated",
		lastAck, st.Len(), e.Stats().Recovered.Load(), e.Stats().Truncated.Load())
}
