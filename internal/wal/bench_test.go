package wal

// Storage engine measurements (make storage-bench): sustained write
// throughput under each fsync policy — the cost of the durability you
// pick with -fsync — and cold recovery time at 1M names, the figure that
// says whether restart-warming is actually warm. The full report is
// env-gated (LESSLOG_STORAGE_BENCH=1) because it writes ~100MB and runs
// seconds; results land in results/BENCH_storage.json via benchjson.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"lesslog/internal/benchjson"
	"lesslog/internal/store"
)

// BenchmarkAppend keeps the hot path honest in `make bench-smoke`.
func BenchmarkAppend(b *testing.B) {
	e, _, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	data := make([]byte, 256)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := record{op: opPut, kind: store.Inserted, name: "bench/name", version: uint64(i + 1), data: data}
		if err := e.append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBurst drives writers concurrent appenders until total records are
// in, returning the wall time — group commit means FsyncAlways batches
// across them the way a pipelined peer's handler pool would.
func writeBurst(t *testing.T, e *Engine, writers, total, payload int) time.Duration {
	t.Helper()
	var wg sync.WaitGroup
	data := make([]byte, payload)
	start := time.Now()
	per := total / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := record{op: opPut, kind: store.Inserted,
					name: fmt.Sprintf("w%02d/%06d", w, i), version: 1, data: data}
				if err := e.append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

func TestStorageBenchReport(t *testing.T) {
	if os.Getenv("LESSLOG_STORAGE_BENCH") == "" {
		t.Skip("set LESSLOG_STORAGE_BENCH=1 (make storage-bench) to run")
	}
	const (
		writers = 16
		payload = 1024
	)
	var results []benchjson.Result

	// Sustained write throughput per fsync policy, same concurrent burst.
	for _, tc := range []struct {
		policy Policy
		total  int
	}{
		{FsyncNever, 64_000},
		{FsyncInterval, 64_000},
		{FsyncAlways, 16_000}, // every ack waits a (shared) fsync
	} {
		e, _, err := Open(Options{Dir: t.TempDir(), Fsync: tc.policy})
		if err != nil {
			t.Fatal(err)
		}
		dur := writeBurst(t, e, writers, tc.total, payload)
		syncs := e.Stats().Syncs.Load()
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		opsPerSec := float64(tc.total) / dur.Seconds()
		mbPerSec := opsPerSec * float64(payload) / (1 << 20)
		t.Logf("fsync=%-8s %7d records in %8.1fms: %9.0f rec/s, %7.1f MB/s, %d fsyncs",
			tc.policy, tc.total, float64(dur.Milliseconds()), opsPerSec, mbPerSec, syncs)
		results = append(results, benchjson.Result{
			Name:    "wal_write_fsync_" + tc.policy.String(),
			NsPerOp: float64(dur.Nanoseconds()) / float64(tc.total),
			Extra: map[string]float64{
				"records_per_s":     opsPerSec,
				"mb_per_s":          mbPerSec,
				"fsyncs":            float64(syncs),
				"records":           float64(tc.total),
				"payload_bytes":     payload,
				"writer_goroutines": writers,
			},
		})
	}

	// Cold recovery at 1M names: write the log, reopen, time the replay.
	const names = 1_000_000
	dir := t.TempDir()
	e, _, err := Open(Options{Dir: dir, Fsync: FsyncNever, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16)
	for i := 0; i < names; i++ {
		r := record{op: opPut, kind: store.Inserted,
			name: fmt.Sprintf("n/%07d", i), version: 1, data: data}
		if err := e.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	e2, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recovery := time.Since(start)
	if st.Len() != names {
		t.Fatalf("recovered %d names, want %d", st.Len(), names)
	}
	replayed := e2.Stats().Recovered.Load()
	e2.Close()
	t.Logf("recovery: %d names in %.2fs (%.0f names/s)",
		names, recovery.Seconds(), float64(names)/recovery.Seconds())
	results = append(results, benchjson.Result{
		Name:    "wal_recovery_1m_names",
		NsPerOp: float64(recovery.Nanoseconds()) / float64(names),
		Extra: map[string]float64{
			"names":            names,
			"records_replayed": float64(replayed),
			"recovery_ms":      float64(recovery.Milliseconds()),
			"names_per_s":      float64(names) / recovery.Seconds(),
		},
	})

	if err := benchjson.Record("storage", results...); err != nil {
		t.Fatal(err)
	}
}
