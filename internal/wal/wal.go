// Package wal is the durable storage engine behind a networked peer's
// sharded store (docs/STORAGE.md): segmented append-only files of
// CRC32C-checksummed records, an in-memory index rebuilt by crash-recovery
// replay that truncates at the first torn or corrupt record, checkpoint
// compaction that rewrites the live state and drops superseded versions
// and GC'd tombstones, and group-commit fsync batching so the pipelined
// write hot path keeps its throughput under `-fsync always`.
//
// "Logless" in the paper's sense (§1) means no client-access log; it does
// not mean volatile peers. This engine is what turns the §7 rejoin path
// from a full data-loss + re-replication event into a cache-warm one: a
// restarting peer replays its segments and re-announces the recovered
// inventory through the anti-entropy plane (docs/REPAIR.md).
//
// The engine deliberately holds no index of its own: the sharded memory
// store *is* the index, and the engine is its ordered durability tail.
// It implements store.Persister, so attaching it to a store.Sharded
// makes every mutation durable with no changes at the call sites.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/store"
)

// Policy selects when appended records reach stable storage.
type Policy uint8

const (
	// FsyncInterval (the default) fsyncs the active segment on a timer
	// (Options.FsyncEvery): bounded loss window, near-FsyncNever speed.
	FsyncInterval Policy = iota
	// FsyncAlways fsyncs before every append acknowledges. Concurrent
	// appenders share fsyncs through group commit: one flush covers every
	// record written before it, so throughput scales with batch size
	// instead of collapsing to one sync per write.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache and segment seals.
	// A process crash (kill -9) loses nothing — the kernel still holds
	// the writes — but a machine crash loses the unsynced tail.
	FsyncNever
)

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// Defaults for Options fields left zero.
const (
	DefaultSegmentSize  = 64 << 20
	DefaultFsyncEvery   = 100 * time.Millisecond
	DefaultCompactAfter = 4
)

// Options configures one engine.
type Options struct {
	// Dir is the data directory; created if missing. One engine owns it.
	Dir string
	// SegmentSize rotates the active segment once it reaches this many
	// bytes. 0 selects DefaultSegmentSize.
	SegmentSize int64
	// Fsync is the durability policy (see Policy).
	Fsync Policy
	// FsyncEvery is the FsyncInterval flush period. 0 selects
	// DefaultFsyncEvery.
	FsyncEvery time.Duration
	// CompactAfter triggers background compaction once that many sealed
	// segments accumulate. 0 selects DefaultCompactAfter; negative
	// disables automatic compaction (Checkpoint still compacts).
	CompactAfter int
	// TombstoneGC lets compaction drop tombstones older than this — the
	// same horizon the repair loop uses live (repair.Config.TombstoneTTL).
	// 0 keeps every tombstone until a checkpoint after the live prune.
	TombstoneGC time.Duration
	// Logger receives recovery and compaction events; nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.CompactAfter == 0 {
		o.CompactAfter = DefaultCompactAfter
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Stats are the engine's cumulative counters, readable while running.
type Stats struct {
	Appends     atomic.Uint64 // records appended
	Syncs       atomic.Uint64 // fsync calls issued
	Compactions atomic.Uint64 // completed compactions
	Recovered   atomic.Uint64 // records replayed at Open
	Truncated   atomic.Uint64 // bytes cut from a torn tail at Open
}

// Engine is one peer's write-ahead log. Safe for concurrent use.
type Engine struct {
	opts Options

	mu         sync.Mutex // serializes appends, rotation, close
	active     *os.File
	activeSeq  uint64
	activeSize int64
	writeSeq   uint64   // records written (monotonic)
	sealed     []uint64 // sealed segment numbers, ascending
	closed     bool
	failed     error // sticky first write/sync failure; engine is degraded

	// Group commit: syncedSeq is the highest writeSeq known durable;
	// one flusher at a time syncs on behalf of every waiter behind it.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedSeq uint64
	syncErr   error
	syncing   bool

	compacting atomic.Bool
	wg         sync.WaitGroup
	quit       chan struct{}

	stats Stats
	log   *slog.Logger
}

// segPath names segment n inside dir.
func segPath(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.seg", n))
}

// cptPath names the compacted-replacement file for segment n.
func cptPath(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.cpt", n))
}

// parseSeq extracts the segment number from a ".seg" or ".cpt" file name.
func parseSeq(name string) (uint64, bool) {
	if len(name) != 16+4 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:16], 16, 64)
	return n, err == nil
}

// Open recovers the log in opts.Dir and returns the engine plus the
// replayed store state. Recovery replays every segment in order and stops
// at the first torn or corrupt record: that segment is truncated to its
// last valid record and any later segments are removed, so the rebuilt
// index is exactly the longest valid prefix of the log — an acked-but-
// torn tail is dropped whole, never half-applied. A missing directory
// yields an empty engine.
func Open(opts Options) (*Engine, *store.Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	e := &Engine{opts: opts, quit: make(chan struct{}), log: opts.Logger.With("component", "wal")}
	e.syncCond = sync.NewCond(&e.syncMu)
	if err := e.cleanupDir(); err != nil {
		return nil, nil, err
	}
	st, err := e.replayAll()
	if err != nil {
		return nil, nil, err
	}
	if err := e.openActive(); err != nil {
		return nil, nil, err
	}
	if e.opts.Fsync == FsyncInterval {
		e.wg.Add(1)
		go e.flushLoop()
	}
	return e, st, nil
}

// cleanupDir finishes any compaction the previous process died inside:
// temp files are dropped, and a completed ".cpt" file supersedes every
// segment at or below its number (the compactor wrote it durably before
// touching the originals), so it is promoted to a ".seg" after they go.
func (e *Engine) cleanupDir() error {
	entries, err := os.ReadDir(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var cpts []uint64
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(e.opts.Dir, name)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if strings.HasSuffix(name, ".cpt") {
			if n, ok := parseSeq(name); ok {
				cpts = append(cpts, n)
			}
		}
	}
	if len(cpts) == 0 {
		return nil
	}
	// At most one compaction runs at a time, but be safe: promote the
	// newest checkpoint; older ones are themselves superseded by it.
	sort.Slice(cpts, func(i, j int) bool { return cpts[i] < cpts[j] })
	top := cpts[len(cpts)-1]
	for _, n := range cpts[:len(cpts)-1] {
		if err := os.Remove(cptPath(e.opts.Dir, n)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	segs, err := e.listSegments()
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n <= top {
			if err := os.Remove(segPath(e.opts.Dir, n)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	if err := os.Rename(cptPath(e.opts.Dir, top), segPath(e.opts.Dir, top)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	e.log.Info("promoted interrupted checkpoint", "segment", top)
	return e.syncDir()
}

// listSegments returns the ".seg" numbers in e.opts.Dir, ascending.
// Foreign files are ignored, so a README or lost+found never breaks open.
func (e *Engine) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(e.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".seg") {
			continue
		}
		if n, ok := parseSeq(ent.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// replayAll rebuilds the store from every segment in order, applying the
// truncate-at-first-corruption rule, and leaves e.sealed/e.activeSeq set.
func (e *Engine) replayAll() (*store.Store, error) {
	segs, err := e.listSegments()
	if err != nil {
		return nil, err
	}
	st := store.New()
	for i, n := range segs {
		path := segPath(e.opts.Dir, n)
		valid, torn, err := replayFile(path, func(r record) {
			r.apply(st)
			e.stats.Recovered.Add(1)
			e.writeSeq++
		})
		if err != nil {
			return nil, err
		}
		if !torn {
			continue
		}
		// Torn or corrupt record: the longest valid prefix ends here.
		// Truncate this segment to it and drop every later segment —
		// records past a corruption have no reliable ordering context.
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		e.stats.Truncated.Add(uint64(info.Size() - valid))
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		dropped := segs[i+1:]
		for _, d := range dropped {
			e.stats.Truncated.Add(segSize(segPath(e.opts.Dir, d)))
			if err := os.Remove(segPath(e.opts.Dir, d)); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
		}
		e.log.Warn("recovery truncated torn tail",
			"segment", n, "valid_bytes", valid, "segments_dropped", len(dropped))
		segs = segs[:i+1]
		break
	}
	if len(segs) == 0 {
		e.activeSeq = 1
	} else {
		e.activeSeq = segs[len(segs)-1]
		e.sealed = segs[:len(segs)-1]
	}
	e.log.Info("recovery complete",
		"records", e.stats.Recovered.Load(), "names", st.Len(),
		"tombstones", st.TombstoneCount(), "segments", len(segs))
	return st, nil
}

func segSize(path string) uint64 {
	if info, err := os.Stat(path); err == nil {
		return uint64(info.Size())
	}
	return 0
}

// openActive opens (or creates) the active segment for appending.
func (e *Engine) openActive() error {
	f, err := os.OpenFile(segPath(e.opts.Dir, e.activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	e.active = f
	e.activeSize = info.Size()
	return e.syncDir()
}

// syncDir fsyncs the data directory so renames and creates are durable.
// Directory fsync is best effort: some filesystems reject it (EINVAL),
// and on those the rename itself is the strongest ordering available.
func (e *Engine) syncDir() error {
	d, err := os.Open(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		e.log.Debug("directory fsync unsupported", "err", err)
	}
	return nil
}

// replayFile streams path's records through apply. It returns the byte
// offset of the last valid record boundary and whether the file was torn
// there (CRC mismatch, impossible length, truncated read — anything that
// says "the log ends here").
func replayFile(path string, apply func(record)) (valid int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	header := make([]byte, recHeader)
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			// Clean EOF at a record boundary ends the segment; a partial
			// header is a torn write.
			return off, !errors.Is(err, io.EOF), nil
		}
		length := int(binary.BigEndian.Uint32(header[:4]))
		crc := binary.BigEndian.Uint32(header[4:8])
		if length < bodyHeader || length > maxBody {
			return off, true, nil
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return off, true, nil
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return off, true, nil
		}
		rec, err := decodeBody(body)
		if err != nil {
			return off, true, nil
		}
		apply(rec)
		off += int64(recHeader + length)
	}
}

// append encodes and writes one record, rotating segments as needed, and
// honors the fsync policy before acknowledging. It is the single funnel
// every Persist* method feeds. A failed write or sync marks the engine
// degraded: the error is returned now and by every later append, so the
// owner can surface it rather than silently running volatile.
func (e *Engine) append(r record) error {
	buf, err := appendRecord(nil, r)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("wal: engine closed")
	}
	if e.failed != nil {
		err := e.failed
		e.mu.Unlock()
		return err
	}
	if e.activeSize >= e.opts.SegmentSize {
		if err := e.rotateLocked(); err != nil {
			e.failed = err
			e.mu.Unlock()
			return err
		}
	}
	if _, err := e.active.Write(buf); err != nil {
		e.failed = fmt.Errorf("wal: append: %w", err)
		err := e.failed
		e.mu.Unlock()
		e.log.Error("append failed; engine degraded", "err", err)
		return err
	}
	e.activeSize += int64(len(buf))
	e.writeSeq++
	seq := e.writeSeq
	e.mu.Unlock()
	e.stats.Appends.Add(1)
	if e.opts.Fsync == FsyncAlways {
		return e.waitDurable(seq)
	}
	return nil
}

// waitDurable blocks until every record up to seq is fsynced — the group
// commit. The first waiter to find no flush in flight becomes the leader:
// it snapshots the current write frontier, syncs once, publishes the new
// durable frontier and wakes everyone. Waiters whose records that flush
// covered return immediately; later writers elect the next leader. One
// fsync therefore covers every record that landed while the previous
// fsync was on disk — batch size grows with load, which is exactly when
// per-record syncing would fall over.
func (e *Engine) waitDurable(seq uint64) error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	for e.syncedSeq < seq {
		if e.syncErr != nil {
			return e.syncErr
		}
		if e.syncing {
			e.syncCond.Wait()
			continue
		}
		e.syncing = true
		e.syncMu.Unlock()

		e.mu.Lock()
		target := e.writeSeq
		f := e.active
		e.mu.Unlock()
		var err error
		if f != nil {
			err = f.Sync()
			e.stats.Syncs.Add(1)
		}

		e.syncMu.Lock()
		e.syncing = false
		if err != nil && !errors.Is(err, os.ErrClosed) {
			e.syncErr = fmt.Errorf("wal: fsync: %w", err)
			e.log.Error("fsync failed; engine degraded", "err", e.syncErr)
		} else if target > e.syncedSeq {
			e.syncedSeq = target
		}
		e.syncCond.Broadcast()
	}
	return e.syncErr
}

// noteSynced publishes that records up to seq are durable (used by
// rotation and the interval flusher, which sync outside the group path).
func (e *Engine) noteSynced(seq uint64) {
	e.syncMu.Lock()
	if seq > e.syncedSeq {
		e.syncedSeq = seq
	}
	e.syncCond.Broadcast()
	e.syncMu.Unlock()
}

// rotateLocked seals the active segment (sync + close) and opens the
// next. Callers hold e.mu. Sealing syncs unconditionally — whatever the
// policy, a sealed segment is immutable and durable, which is what lets
// compaction treat sealed files as ground truth.
func (e *Engine) rotateLocked() error {
	if err := e.active.Sync(); err != nil {
		return fmt.Errorf("wal: seal segment %d: %w", e.activeSeq, err)
	}
	e.stats.Syncs.Add(1)
	e.noteSynced(e.writeSeq)
	if err := e.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	e.sealed = append(e.sealed, e.activeSeq)
	e.activeSeq++
	f, err := os.OpenFile(segPath(e.opts.Dir, e.activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	e.active = f
	e.activeSize = 0
	if err := e.syncDir(); err != nil {
		return err
	}
	if e.opts.CompactAfter > 0 && len(e.sealed) >= e.opts.CompactAfter {
		e.startCompaction(append([]uint64(nil), e.sealed...))
	}
	return nil
}

// flushLoop is the FsyncInterval policy's timer: the active segment is
// synced every FsyncEvery until close.
func (e *Engine) flushLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.FsyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-ticker.C:
			e.Sync()
		}
	}
}

// Sync forces an fsync of the active segment now, whatever the policy.
func (e *Engine) Sync() error {
	e.mu.Lock()
	f := e.active
	seq := e.writeSeq
	closed := e.closed
	e.mu.Unlock()
	if closed || f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil // lost a race with rotation, which synced before closing
		}
		return fmt.Errorf("wal: fsync: %w", err)
	}
	e.stats.Syncs.Add(1)
	e.noteSynced(seq)
	return nil
}

// startCompaction spawns the background compactor over the given sealed
// segments, at most one at a time. Callers hold e.mu.
func (e *Engine) startCompaction(segs []uint64) {
	if len(segs) == 0 || !e.compacting.CompareAndSwap(false, true) {
		return
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.compacting.Store(false)
		if err := e.compact(segs); err != nil {
			e.log.Warn("compaction failed; segments kept", "err", err)
		}
	}()
}

// compact rewrites sealed segments into one checkpoint segment holding
// only live state: the latest version of every name (superseded versions
// drop out) and tombstones younger than the GC horizon. Only immutable
// sealed files are touched, so appends continue concurrently. The dance
// is crash-safe at every step:
//
//  1. replay the sealed segments offline into a scratch store
//  2. write the compacted records to <top>.cpt.tmp, fsync, rename to
//     <top>.cpt, fsync dir    — the checkpoint now exists durably
//  3. remove the sealed segments (the .cpt supersedes them)
//  4. rename <top>.cpt → <top>.seg, fsync dir
//
// A crash inside 2 leaves a .tmp that Open deletes; inside 3 or 4, Open
// finds the .cpt and finishes the promotion itself (cleanupDir). Replay
// order is preserved because the checkpoint takes the highest compacted
// segment number, sorting exactly where the data it replaces ended.
func (e *Engine) compact(segs []uint64) error {
	st := store.New()
	var replayed uint64
	for _, n := range segs {
		_, torn, err := replayFile(segPath(e.opts.Dir, n), func(r record) {
			r.apply(st)
			replayed++
		})
		if err != nil {
			return err
		}
		if torn {
			// Sealed segments are synced whole; a torn one means outside
			// interference. Leave the log alone rather than compact a lie.
			return fmt.Errorf("wal: sealed segment %d is corrupt", n)
		}
	}
	top := segs[len(segs)-1]
	tmp := cptPath(e.opts.Dir, top) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var kept uint64
	var buf []byte
	writeRec := func(r record) error {
		buf, err = appendRecord(buf[:0], r)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}
	for _, name := range st.AllNames() {
		fl, _ := st.Peek(name)
		kind, _ := st.KindOf(name)
		if err := writeRec(record{op: opPut, kind: kind, version: fl.Version, name: fl.Name, data: fl.Data}); err != nil {
			f.Close()
			return err
		}
		kept++
	}
	horizon := time.Time{}
	if e.opts.TombstoneGC > 0 {
		horizon = time.Now().Add(-e.opts.TombstoneGC)
	}
	for _, t := range st.Tombstones() {
		if !horizon.IsZero() && t.At.Before(horizon) {
			continue // the deletion has reached every replica by now
		}
		if err := writeRec(record{op: opTombstone, version: t.Version, at: t.At.UnixNano(), name: t.Name}); err != nil {
			f.Close()
			return err
		}
		kept++
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, cptPath(e.opts.Dir, top)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := e.syncDir(); err != nil {
		return err
	}
	for _, n := range segs {
		if err := os.Remove(segPath(e.opts.Dir, n)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := os.Rename(cptPath(e.opts.Dir, top), segPath(e.opts.Dir, top)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := e.syncDir(); err != nil {
		return err
	}
	// Replace the compacted range in the sealed list with the checkpoint.
	e.mu.Lock()
	var next []uint64
	for _, n := range e.sealed {
		if n > top {
			next = append(next, n)
		}
	}
	e.sealed = append([]uint64{top}, next...)
	e.mu.Unlock()
	e.stats.Compactions.Add(1)
	e.log.Info("compacted segments",
		"segments", len(segs), "records_in", replayed, "records_out", kept)
	return nil
}

// Checkpoint seals the active segment and compacts every sealed segment
// synchronously — the explicit snapshot point (Peer.Checkpoint). The
// resulting single segment holds exactly the live state.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("wal: engine closed")
	}
	if e.failed != nil {
		err := e.failed
		e.mu.Unlock()
		return err
	}
	if e.activeSize > 0 {
		if err := e.rotateLocked(); err != nil {
			e.failed = err
			e.mu.Unlock()
			return err
		}
	}
	segs := append([]uint64(nil), e.sealed...)
	e.mu.Unlock()
	if len(segs) == 0 {
		return nil
	}
	// Serialize with any background compaction the rotation spawned.
	for !e.compacting.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	defer e.compacting.Store(false)
	e.mu.Lock()
	segs = append(segs[:0], e.sealed...)
	e.mu.Unlock()
	if len(segs) == 0 {
		return nil
	}
	return e.compact(segs)
}

// Close flushes and fsyncs the active segment, stops the background
// flusher and any compaction, and closes the engine. The returned error
// reports the first write or sync failure of the engine's lifetime, so a
// degraded engine cannot shut down looking healthy.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.quit)
	f := e.active
	seq := e.writeSeq
	err := e.failed
	e.mu.Unlock()
	e.wg.Wait()
	if f != nil {
		if serr := f.Sync(); serr != nil && err == nil && !errors.Is(serr, os.ErrClosed) {
			err = fmt.Errorf("wal: close sync: %w", serr)
		}
		e.stats.Syncs.Add(1)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
	}
	// Wake any group-commit waiters; their records are synced (or the
	// engine failed, which syncErr already carries).
	e.syncMu.Lock()
	if e.syncErr == nil && err != nil {
		e.syncErr = err
	}
	if seq > e.syncedSeq && e.syncErr == nil {
		e.syncedSeq = seq
	}
	e.syncCond.Broadcast()
	e.syncMu.Unlock()
	return err
}

// Err returns the engine's sticky failure, if any — non-nil means the
// log is degraded and acks are no longer durable.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed
}

// Stats exposes the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Segments reports (sealed, activeBytes) — observability for tests and
// status lines.
func (e *Engine) Segments() (sealed int, activeBytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sealed), e.activeSize
}

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.opts.Dir }

// --- store.Persister ---
//
// The engine plugs straight into store.Sharded: every mutation the store
// applies is appended here before the shard lock is released, so the log
// order matches the apply order per name, and — under FsyncAlways — a
// handler that has the mutation applied also has it durable before it
// can acknowledge. Errors are sticky in the engine (Err, Close) rather
// than propagated through the store's void-returning mutators.

// PersistPut logs a copy placement or overwrite.
func (e *Engine) PersistPut(f store.File, kind store.Kind) {
	_ = e.append(record{op: opPut, kind: kind, version: f.Version, name: f.Name, data: f.Data})
}

// PersistTombstone logs a versioned deletion marker.
func (e *Engine) PersistTombstone(name string, version uint64, at time.Time) {
	_ = e.append(record{op: opTombstone, version: version, at: at.UnixNano(), name: name})
}

// PersistDelete logs a local-only removal (no tombstone).
func (e *Engine) PersistDelete(name string) {
	_ = e.append(record{op: opDelete, name: name})
}

// Retire appends the departure barrier (§5.2): one record marking every
// copy and tombstone logged before it as retired. A graceful Leave calls
// this instead of logging one delete per migrated name — the write-
// amplification fix — after discarding its store in memory, so replay
// rebuilds an empty store and a restarted peer does not re-announce
// copies the fabric already re-homed. Compaction absorbs the barrier
// naturally: replaying it empties the scratch store, and the checkpoint
// writes only what is live after it.
func (e *Engine) Retire() error {
	return e.append(record{op: opRetire, at: time.Now().UnixNano()})
}
