// Record codec for the write-ahead log (docs/STORAGE.md). Every durable
// mutation of a peer's store is one length-prefixed, CRC32C-checksummed
// record appended to the active segment:
//
//	length  uint32  body length in bytes (big endian, like the wire codec)
//	crc     uint32  CRC32C (Castagnoli) of the body
//	body:
//	  op      uint8   opPut / opTombstone / opDelete / opRetire
//	  kind    uint8   store.Inserted / store.Replica (put only, else 0)
//	  version uint64  copy or tombstone version (delete: 0)
//	  at      int64   tombstone record time, unix nanoseconds (else 0)
//	  nameLen uint16, name bytes
//	  dataLen uint32, data bytes (put only; absent otherwise)
//
// The checksum is what makes crash recovery honest: a torn tail write
// fails the CRC (or the length runs past EOF) and replay truncates there,
// so the rebuilt index is exactly the longest valid record prefix — no
// half-applied mutation is ever served.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"lesslog/internal/store"
)

// op discriminates the mutation a record carries.
type op uint8

const (
	// opPut stores (or overwrites) a copy: name, data, version, kind.
	opPut op = 1
	// opTombstone erases a copy and records a versioned delete marker
	// that survives restart, so a crash cannot resurrect a deleted name.
	opTombstone op = 2
	// opDelete removes a copy locally with no tombstone — the replica
	// eviction / post-handoff cleanup path (store.Delete semantics).
	opDelete op = 3
	// opRetire is the departure barrier (§5.2 Leave): everything logged
	// before it — copies and tombstones alike — is retired. One record
	// replaces the per-name opDelete flood a graceful leave would
	// otherwise append, and replay honors it by clearing the rebuilt
	// store, so a retired peer restarts empty instead of re-announcing
	// copies the fabric already re-homed. It carries no name or data,
	// just the departure time.
	opRetire op = 4
)

// Size limits mirror the wire protocol's (internal/msg): nothing larger
// can arrive over the network, so nothing larger belongs in the log.
const (
	maxName = 4 << 10
	maxData = 16 << 20
)

// bodyHeader is the fixed prefix of every record body:
// op(1) + kind(1) + version(8) + at(8) + nameLen(2).
const bodyHeader = 1 + 1 + 8 + 8 + 2

// recHeader is the length + crc prefix before every body.
const recHeader = 4 + 4

// maxBody bounds a plausible record body; replay treats anything larger
// as corruption rather than attempting the allocation.
const maxBody = bodyHeader + maxName + 4 + maxData

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded log entry.
type record struct {
	op      op
	kind    store.Kind
	version uint64
	at      int64 // unix nanoseconds; tombstones only
	name    string
	data    []byte
}

// errCorrupt marks a record replay must stop at.
var errCorrupt = errors.New("wal: corrupt record")

// appendRecord encodes r (header + crc + body) onto b and returns the
// extended slice. Oversize names or payloads are a caller bug surfaced as
// an error, never a silently truncated record.
func appendRecord(b []byte, r record) ([]byte, error) {
	if len(r.name) > maxName {
		return nil, fmt.Errorf("wal: name %.40q... exceeds %d bytes", r.name, maxName)
	}
	if len(r.data) > maxData {
		return nil, fmt.Errorf("wal: payload of %q exceeds %d bytes", r.name, maxData)
	}
	bodyLen := bodyHeader + len(r.name)
	if r.op == opPut {
		bodyLen += 4 + len(r.data)
	}
	start := len(b)
	b = binary.BigEndian.AppendUint32(b, uint32(bodyLen))
	b = binary.BigEndian.AppendUint32(b, 0) // crc backfilled below
	bodyStart := len(b)
	b = append(b, byte(r.op), byte(r.kind))
	b = binary.BigEndian.AppendUint64(b, r.version)
	b = binary.BigEndian.AppendUint64(b, uint64(r.at))
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.name)))
	b = append(b, r.name...)
	if r.op == opPut {
		b = binary.BigEndian.AppendUint32(b, uint32(len(r.data)))
		b = append(b, r.data...)
	}
	crc := crc32.Checksum(b[bodyStart:], castagnoli)
	binary.BigEndian.PutUint32(b[start+4:], crc)
	return b, nil
}

// decodeBody parses one record body (already CRC-verified).
func decodeBody(body []byte) (record, error) {
	if len(body) < bodyHeader {
		return record{}, errCorrupt
	}
	r := record{
		op:      op(body[0]),
		kind:    store.Kind(body[1]),
		version: binary.BigEndian.Uint64(body[2:10]),
		at:      int64(binary.BigEndian.Uint64(body[10:18])),
	}
	nameLen := int(binary.BigEndian.Uint16(body[18:20]))
	rest := body[bodyHeader:]
	if nameLen > maxName || nameLen > len(rest) {
		return record{}, errCorrupt
	}
	r.name = string(rest[:nameLen])
	rest = rest[nameLen:]
	switch r.op {
	case opPut:
		if r.kind != store.Inserted && r.kind != store.Replica {
			return record{}, errCorrupt
		}
		if len(rest) < 4 {
			return record{}, errCorrupt
		}
		dataLen := int(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if dataLen > maxData || dataLen != len(rest) {
			return record{}, errCorrupt
		}
		r.data = make([]byte, dataLen)
		copy(r.data, rest)
	case opTombstone, opDelete:
		if len(rest) != 0 {
			return record{}, errCorrupt
		}
	case opRetire:
		if nameLen != 0 || len(rest) != 0 {
			return record{}, errCorrupt
		}
	default:
		return record{}, errCorrupt
	}
	return r, nil
}

// apply replays one record into st — the recovery half of the engine.
// Replay order is log order, so a plain Put is correct (later records
// supersede earlier ones the same way they did live). Tombstones restore
// unconditionally: after compaction a tombstone may be the only record a
// name has, and store.Tombstone would drop it as a no-op.
func (r record) apply(st *store.Store) {
	switch r.op {
	case opPut:
		st.Put(store.File{Name: r.name, Data: r.data, Version: r.version}, r.kind)
	case opTombstone:
		st.RestoreTombstone(r.name, r.version, time.Unix(0, r.at))
	case opDelete:
		st.Delete(r.name)
	case opRetire:
		st.DiscardAll()
	}
}
