package wal

// The departure barrier (opRetire): one record retires everything logged
// before it, replacing the per-name delete flood a graceful Leave would
// otherwise append — replay honors it, compaction absorbs it.

import (
	"encoding/binary"
	"testing"
	"time"

	"lesslog/internal/store"
)

// A retire barrier replays to an empty store: copies and tombstones
// logged before it are gone, records after it survive.
func TestRetireBarrierReplaysToEmpty(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir})
	live := store.New()
	live.SetPersister(e)
	for _, n := range []string{"r/a", "r/b", "r/c"} {
		live.Put(store.File{Name: n, Data: []byte(n), Version: 1}, store.Inserted)
	}
	live.Put(store.File{Name: "r/dead", Data: []byte("x"), Version: 1}, store.Replica)
	live.Tombstone("r/dead", 2, time.Unix(50, 0))
	appends := e.Stats().Appends.Load()
	if err := e.Retire(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Appends.Load() - appends; got != 1 {
		t.Fatalf("retire appended %d records, want exactly 1", got)
	}
	// Life after the barrier: a rejoining peer's fresh state replays on top.
	live.DiscardAll()
	live.Put(store.File{Name: "r/new", Data: []byte("fresh"), Version: 7}, store.Inserted)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, recovered := openT(t, Options{Dir: dir})
	defer e2.Close()
	sameState(t, recovered, live)
	if recovered.TombstoneCount() != 0 {
		t.Fatalf("tombstones crossed the retire barrier: %v", recovered.Tombstones())
	}
}

// Checkpoint compaction absorbs the barrier: replaying it empties the
// scratch store, so the checkpoint holds only post-barrier state and no
// retire record itself.
func TestCheckpointAbsorbsRetireBarrier(t *testing.T) {
	dir := t.TempDir()
	e, _ := openT(t, Options{Dir: dir})
	live := store.New()
	live.SetPersister(e)
	for i := 0; i < 20; i++ {
		live.Put(store.File{Name: "bulk", Data: make([]byte, 256), Version: uint64(i + 1)}, store.Inserted)
	}
	if err := e.Retire(); err != nil {
		t.Fatal(err)
	}
	live.DiscardAll()
	live.Put(store.File{Name: "after", Data: []byte("kept"), Version: 1}, store.Inserted)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, recovered := openT(t, Options{Dir: dir})
	defer e2.Close()
	sameState(t, recovered, live)
	// The compacted log is exactly the live state: one put record, with
	// the barrier and the 20 retired versions dropped, not rewritten.
	if got := e2.Stats().Recovered.Load(); got != 1 {
		t.Fatalf("compacted log replays %d records, want 1", got)
	}
}

// The barrier's codec: carries no name or data, round-trips, and rejects
// trailing bytes or a name like any other malformed body.
func TestRetireRecordCodec(t *testing.T) {
	buf, err := appendRecord(nil, record{op: opRetire, at: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != recHeader+bodyHeader {
		t.Fatalf("barrier record is %d bytes, want %d", len(buf), recHeader+bodyHeader)
	}
	r, err := decodeBody(buf[recHeader:])
	if err != nil || r.op != opRetire || r.at != 12345 || r.name != "" || r.data != nil {
		t.Fatalf("round trip = %+v, %v", r, err)
	}
	// Trailing bytes after the fixed header are corruption.
	if _, err := decodeBody(append(buf[recHeader:len(buf):len(buf)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A named barrier is corruption too.
	bad := append([]byte(nil), buf[recHeader:]...)
	binary.BigEndian.PutUint16(bad[18:20], 1)
	bad = append(bad, 'x')
	if _, err := decodeBody(bad); err == nil {
		t.Fatal("named barrier accepted")
	}
}
