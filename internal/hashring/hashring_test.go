package hashring

import (
	"testing"

	"lesslog/internal/bitops"
)

func TestFNVInRange(t *testing.T) {
	for _, m := range []int{1, 4, 10, 20} {
		for i := 0; i < 1000; i++ {
			p := FNV{}.Target("file-"+itoa(i), m)
			if p >= bitops.PID(bitops.Slots(m)) {
				t.Fatalf("m=%d target %d out of range", m, p)
			}
		}
	}
}

func TestFNVDeterministic(t *testing.T) {
	a := FNV{}.Target("hello", 10)
	b := FNV{}.Target("hello", 10)
	if a != b {
		t.Fatal("hash not deterministic")
	}
}

func TestFNVSpread(t *testing.T) {
	// At m=10, 10k distinct names must hit a large fraction of the 1024
	// slots: a collapsed fold would fail this immediately.
	const m = 10
	hit := map[bitops.PID]bool{}
	for i := 0; i < 10000; i++ {
		hit[FNV{}.Target("object/"+itoa(i), m)] = true
	}
	if len(hit) < 1000 {
		t.Fatalf("only %d of 1024 slots hit", len(hit))
	}
}

func TestFixed(t *testing.T) {
	h := Fixed(42)
	if h.Target("anything", 10) != 42 || h.Target("else", 4) != 42 {
		t.Fatal("Fixed hasher not fixed")
	}
}

func TestPreimage(t *testing.T) {
	const m = 6
	for target := bitops.PID(0); target < 64; target += 13 {
		name := Preimage(FNV{}, target, m, "probe")
		if got := (FNV{}).Target(name, m); got != target {
			t.Fatalf("Preimage(%d) hashes to %d", target, got)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		v    int
		want string
	}{{0, "0"}, {7, "7"}, {10, "10"}, {987654, "987654"}} {
		if got := itoa(c.v); got != c.want {
			t.Fatalf("itoa(%d) = %q", c.v, got)
		}
	}
}

func BenchmarkFNV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FNV{}.Target("some/shared/file/name.bin", 10)
	}
}
