// Package hashring implements ψ, the hash function of paper §2.1: it maps
// the unique information of a file (its name or URL) to a target PID in
// [0, 2^m). The default is 64-bit FNV-1a folded to m bits; any Hasher can
// be substituted, and tests use fixed-target hashers to steer files at
// specific nodes.
package hashring

import (
	"hash/fnv"

	"lesslog/internal/bitops"
)

// Hasher maps file names to target PIDs for a given identifier width.
type Hasher interface {
	// Target returns ψ(name) in [0, 2^m).
	Target(name string, m int) bitops.PID
}

// FNV is the default Hasher: FNV-1a(name) XOR-folded down to m bits, which
// spreads the 64-bit avalanche across the short identifier space instead of
// just truncating it.
type FNV struct{}

// Target implements Hasher.
func (FNV) Target(name string, m int) bitops.PID {
	h := fnv.New64a()
	h.Write([]byte(name)) // never fails
	x := h.Sum64()
	x ^= x >> 32
	x ^= x >> 16
	return bitops.PID(bitops.VID(x) & bitops.Mask(m))
}

// Default is the hasher used when none is configured.
var Default Hasher = FNV{}

// Fixed is a Hasher that sends every name to the same target; experiments
// use it to recreate the paper's single-popular-file workload with a chosen
// target node.
type Fixed bitops.PID

// Target implements Hasher.
func (f Fixed) Target(string, int) bitops.PID { return bitops.PID(f) }

// Preimage searches names of the form prefix#<i> until one hashes to
// target under h, and returns it. It lets examples place a *real* hashed
// name at a chosen node. It panics if no preimage is found within 2^m * 64
// attempts, which for a uniform hash is vanishingly unlikely.
func Preimage(h Hasher, target bitops.PID, m int, prefix string) string {
	limit := bitops.Slots(m) * 64
	for i := 0; i < limit; i++ {
		name := prefix + "#" + itoa(i)
		if h.Target(name, m) == target {
			return name
		}
	}
	panic("hashring: no preimage found; hasher is not close to uniform")
}

// itoa is a tiny strconv.Itoa replacement for non-negative ints, keeping
// the package dependency-light.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
