package stream

// The write half of the chunked data plane: a staged upload streams one
// payload to a single entry peer as ranged KindPut frames under a bounded
// in-flight window, then closes with exactly one commit frame that routes
// the assembled bytes into the normal insert/update path at the peer.
// Unlike the read side there is no striping — the staging session lives
// at one peer — but the same windowing keeps a 64 MiB upload from
// pinning a pipeline worker per transfer, and the per-chunk CRC plus the
// commit's whole-file CRC give the peer the same never-splice guarantee
// the fetch path has.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
)

// UploadStats counts an uploader's traffic with atomic counters.
type UploadStats struct {
	// Uploads counts committed transfers; ChunksSent the staged data
	// frames acknowledged; BytesSent their payload bytes; Aborts transfers
	// abandoned after a mid-stream failure (best-effort PutAbort sent).
	Uploads    atomic.Uint64
	ChunksSent atomic.Uint64
	BytesSent  atomic.Uint64
	Aborts     atomic.Uint64
}

// Uploader runs staged chunked uploads over one transport. Safe for
// concurrent use.
type Uploader struct {
	tr    Doer
	cfg   Config
	stats UploadStats
}

// NewUploader returns an Uploader issuing requests through tr. The
// Config's ChunkSize and Window apply exactly as on the fetch side;
// chunks additionally cap at msg.MaxPutChunkBytes to leave room for the
// put framing.
func NewUploader(tr Doer, cfg Config) *Uploader {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.ChunkSize > msg.MaxPutChunkBytes {
		cfg.ChunkSize = msg.MaxPutChunkBytes
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	return &Uploader{tr: tr, cfg: cfg}
}

// Stats exposes the uploader's counters.
func (u *Uploader) Stats() *UploadStats { return &u.stats }

// putFrame sends one KindPut frame and classifies the answer. rpcTO > 0
// stretches the exchange deadline when the transport supports it: data
// frames scale it with the chunk they carry, and the commit frame with
// the whole payload — its handler drives every subtree holder's pull of
// the assembled body before answering.
func (u *Uploader) putFrame(addr, name string, pr *msg.PutReq, rpcTO time.Duration) (*msg.Response, error) {
	data, err := msg.AppendPutReq(nil, pr)
	if err != nil {
		return nil, err
	}
	req := &msg.Request{Kind: msg.KindPut, Name: name, Data: data}
	var resp *msg.Response
	if td, ok := u.tr.(TimeoutDoer); ok && rpcTO > 0 {
		resp, err = td.DoTimeout(addr, req, rpcTO)
	} else {
		resp, err = u.tr.Do(addr, req)
	}
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

// Put streams data to addr as a staged upload and commits it with op
// (msg.PutInsert or msg.PutUpdate), returning the commit's response. An
// entry peer that predates the put plane fails the opening frame with
// unknown-kind, surfaced as ErrUnsupported so the caller can latch its
// downgrade and fall back to whole-frame writes. Any mid-stream failure
// sends a best-effort PutAbort — nothing staged is ever visible — and
// returns the failing frame's error.
func (u *Uploader) Put(addr, name string, data []byte, op msg.PutOp) (*msg.Response, error) {
	if op != msg.PutInsert && op != msg.PutUpdate {
		return nil, fmt.Errorf("stream: put op %d is not a commit op", op)
	}
	total := uint64(len(data))
	fileCRC := crc32.Checksum(data, castagnoli)
	chunk := uint64(u.cfg.ChunkSize)

	// Opening frame alone: it creates the session and returns the token
	// the rest of the transfer rides under.
	headLen := chunk
	if headLen > total {
		headLen = total
	}
	head := data[:headLen]
	resp, err := u.putFrame(addr, name, &msg.PutReq{
		Op: msg.PutData, TotalSize: total, FileCRC: fileCRC,
		ChunkCRC: crc32.Checksum(head, castagnoli), Chunk: head,
	}, PullDeadline(headLen))
	if err != nil {
		if msg.IsUnknownKind(err.Error()) {
			return nil, ErrUnsupported
		}
		return nil, err
	}
	token := resp.Version
	u.stats.ChunksSent.Add(1)
	u.stats.BytesSent.Add(headLen)

	type rng struct {
		off uint64
		ln  uint64
	}
	var ranges []rng
	for off := headLen; off < total; off += chunk {
		ln := chunk
		if off+ln > total {
			ln = total - off
		}
		ranges = append(ranges, rng{off, ln})
	}

	// Bounded in-flight window, mirroring Fetch: Window workers drain the
	// range list, each chunk an independent pipelined frame.
	workers := u.cfg.Window
	if len(ranges) < workers {
		workers = len(ranges)
	}
	var (
		wg      sync.WaitGroup
		cursor  atomic.Uint64
		failErr error
		failMu  sync.Mutex
		failed  atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(cursor.Add(1) - 1)
				if i >= len(ranges) {
					return
				}
				c := data[ranges[i].off : ranges[i].off+ranges[i].ln]
				_, err := u.putFrame(addr, name, &msg.PutReq{
					Op: msg.PutData, Token: token, Offset: ranges[i].off,
					TotalSize: total, FileCRC: fileCRC,
					ChunkCRC: crc32.Checksum(c, castagnoli), Chunk: c,
				}, PullDeadline(ranges[i].ln))
				if err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = err
					}
					failMu.Unlock()
					failed.Store(true)
					return
				}
				u.stats.ChunksSent.Add(1)
				u.stats.BytesSent.Add(ranges[i].ln)
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		u.stats.Aborts.Add(1)
		u.putFrame(addr, name, &msg.PutReq{Op: msg.PutAbort, Token: token}, 0)
		return nil, failErr
	}

	commit, err := u.putFrame(addr, name, &msg.PutReq{
		Op: op, Token: token, TotalSize: total, FileCRC: fileCRC,
	}, PullDeadline(total))
	if err != nil {
		return nil, err
	}
	u.stats.Uploads.Add(1)
	return commit, nil
}
