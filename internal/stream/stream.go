// Package stream is the client half of the chunked data plane
// (docs/ROUTING.md): it splits one large transfer into ranged KindFetch
// requests on the direct client↔holder hop, stripes the ranges round-robin
// across the file's replica set, and reassembles + checksum-verifies the
// result. Each in-flight chunk is an independent request-ID frame over the
// shared pipelined streams, so a 64 MiB transfer occupies a holder's
// pipeline workers one bounded chunk at a time instead of pinning one
// worker for the whole file, and a hot file's read bandwidth scales with
// its copy count instead of re-hammering one holder.
//
// Correctness under concurrent writes rests on the version pin: the head
// chunk (offset 0) fixes the transfer's version, every later range carries
// it, and a holder whose copy moved on refuses with msg.WrongVersionError
// rather than serve bytes from another version — so a reassembled payload
// can never splice two versions. A refused range retries on the other
// replicas; when the pinned version is gone everywhere, the transfer fails
// with ErrVersionGone and the caller re-locates and restarts.
package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
)

// Defaults for consumers that do not care.
const (
	// DefaultChunkSize is the range length per fetch: 1 MiB balances
	// per-chunk RPC overhead against pipeline-worker hold time and stripe
	// granularity.
	DefaultChunkSize = 1 << 20
	// DefaultWindow bounds in-flight chunk requests per transfer.
	DefaultWindow = 8
)

// Sentinel errors the fetch path classifies on.
var (
	// ErrUnsupported: every listed holder answered unknown-kind — a
	// pre-chunking fleet. The caller latches its downgrade timestamp and
	// falls back to whole-frame fetches.
	ErrUnsupported = errors.New("stream: holders do not speak chunked fetch")
	// ErrNotFound: every listed holder refused the head chunk as a
	// non-holder — the whole hint set was stale. The caller re-locates.
	ErrNotFound = errors.New("stream: no listed holder holds the file")
	// ErrVersionGone: the pinned version vanished from every replica
	// mid-transfer (a concurrent update or delete landed). The caller
	// restarts the transfer; the partial buffer is discarded, never served.
	ErrVersionGone = errors.New("stream: pinned version no longer held by any replica")
	// ErrChecksum: reassembly completed but the whole-file CRC-32C did not
	// match the holder-declared one. Never served; the caller refetches.
	ErrChecksum = errors.New("stream: reassembled payload failed checksum")
)

// castagnoli matches the holder side's chunk and whole-file checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Source is one replica-set member a transfer may fetch from.
type Source struct {
	PID  uint32
	Addr string
}

// Doer is the transport dependency: one request/response exchange.
// Satisfied by *transport.Transport; concurrent calls to the same address
// ride the pooled pipelined connections as independent request-ID frames.
type Doer interface {
	Do(addr string, req *msg.Request) (*msg.Response, error)
}

// TimeoutDoer is the optional deadline-bearing side of a Doer. The
// uploader stretches each exchange's deadline with PullDeadline — the
// commit frame's handler moves the whole payload to every subtree holder
// before it answers; data frames scale with their chunk — while a Doer
// without the method just runs under its flat configured deadline.
type TimeoutDoer interface {
	DoTimeout(addr string, req *msg.Request, rpcTO time.Duration) (*msg.Response, error)
}

// PullDeadline sizes the RPC deadline for an exchange whose handler must
// move total payload bytes before it can answer: a staged data frame
// (one chunk buffered), a chunked-put commit (the entry peer drives
// every subtree holder's pull of the assembled body), or a notify
// delivery (the holder pulls the body once). The rate
// floor is deliberately pessimistic — 2 MiB/s plus a flat base — because
// this deadline is a stuck-peer bound, not a latency target: a healthy
// transfer finishes orders of magnitude sooner, and transports configured
// with a longer flat RPCTimeout keep it (DoTimeout floors at the config).
func PullDeadline(total uint64) time.Duration {
	return 10*time.Second + time.Duration(total>>20)*500*time.Millisecond
}

// Config tunes a Fetcher.
type Config struct {
	ChunkSize int // bytes per ranged request; <= 0 selects DefaultChunkSize
	Window    int // in-flight chunks per transfer; <= 0 selects DefaultWindow
	// Evict, when set, reports a holder the transfer gave up on: hard means
	// a transport failure (purge every hint at that address), soft a
	// not-holder refusal (purge just this name's hint there).
	Evict func(name, addr string, hard bool)
	// Replica marks every ranged fetch as a replication transfer
	// (msg.FlagReplica): the serving holder answers from Peek instead of
	// Get, so a peer pulling a body for placement or notify propagation
	// does not inflate the file's §6 access count the way a client read
	// would. Legacy holders ignore the flag bit.
	Replica bool
}

// Stats counts a fetcher's traffic with atomic counters.
type Stats struct {
	// Transfers counts completed chunked fetches; ChunksFetched the ranged
	// requests that returned a verified chunk; ChunkRetries ranges that had
	// to move to another replica after a failure or refusal.
	Transfers     atomic.Uint64
	ChunksFetched atomic.Uint64
	ChunkRetries  atomic.Uint64
	// InFlight gauges transfers currently being assembled; StripeWidth is
	// the number of distinct replicas the most recent transfer actually
	// fetched from.
	InFlight    atomic.Int64
	StripeWidth atomic.Int64
}

// Fetcher runs chunked striped fetches over one transport. Safe for
// concurrent use.
type Fetcher struct {
	tr    Doer
	cfg   Config
	stats Stats
}

// New returns a Fetcher issuing requests through tr.
func New(tr Doer, cfg Config) *Fetcher {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.ChunkSize > msg.MaxChunkBytes {
		cfg.ChunkSize = msg.MaxChunkBytes
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	return &Fetcher{tr: tr, cfg: cfg}
}

// Stats exposes the fetcher's counters.
func (f *Fetcher) Stats() *Stats { return &f.stats }

// transfer is the per-fetch state shared by the chunk workers.
type transfer struct {
	f       *Fetcher
	name    string
	version uint64 // pinned after the head chunk
	sources []Source
	dead    []atomic.Bool // per-source: hard-failed or refused this transfer
	used    []atomic.Bool // per-source: served at least one chunk
	next    atomic.Uint64 // round-robin stripe cursor
	gone    atomic.Bool   // a holder reported the pinned version superseded
}

// evict reports a holder the transfer dropped, if the caller cares.
func (t *transfer) evict(i int, hard bool) {
	t.dead[i].Store(true)
	if t.f.cfg.Evict != nil {
		t.f.cfg.Evict(t.name, t.sources[i].Addr, hard)
	}
}

// fetchRange performs one ranged request against source i, returning the
// decoded chunk and the version the holder served it at.
func (t *transfer) fetchRange(i int, offset uint64, length uint32) (*msg.FetchResp, uint64, error) {
	data, err := msg.AppendFetchReq(nil, msg.FetchReq{Offset: offset, Length: length})
	if err != nil {
		return nil, 0, err
	}
	var flags uint8
	if t.f.cfg.Replica {
		flags = msg.FlagReplica
	}
	resp, err := t.f.tr.Do(t.sources[i].Addr, &msg.Request{
		Kind: msg.KindFetch, Name: t.name, Version: t.version, Flags: flags, Data: data,
	})
	if err != nil {
		return nil, 0, err
	}
	if !resp.OK {
		return nil, 0, errors.New(resp.Err)
	}
	fr, err := msg.DecodeFetchResp(resp.Data)
	if err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(fr.Chunk, castagnoli) != fr.ChunkCRC {
		return nil, 0, fmt.Errorf("stream: chunk at %d failed CRC", offset)
	}
	return fr, resp.Version, nil
}

// runRange fetches one range with retry-on-other-replica: starting at the
// stripe cursor's replica, every live source is tried at most once. A
// wrong-version refusal poisons the whole transfer (the pin is gone there;
// if it is gone everywhere the transfer fails version-gone) but still
// retries elsewhere — a lagging replica may simply not have caught up.
func (t *transfer) runRange(offset uint64, length uint32) (*msg.FetchResp, error) {
	n := len(t.sources)
	start := int(t.next.Add(1)-1) % n
	var lastErr error
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if t.dead[i].Load() {
			continue
		}
		if k > 0 {
			t.f.stats.ChunkRetries.Add(1)
		}
		fr, _, err := t.fetchRange(i, offset, length)
		if err == nil {
			t.used[i].Store(true)
			t.f.stats.ChunksFetched.Add(1)
			return fr, nil
		}
		lastErr = err
		switch {
		case msg.IsUnknownKind(err.Error()):
			t.dead[i].Store(true) // legacy holder; never retry chunks there
		case err.Error() == msg.WrongVersionError:
			t.gone.Store(true)
			t.dead[i].Store(true)
		case err.Error() == msg.NotHolderError:
			t.evict(i, false)
		default:
			t.evict(i, true)
		}
	}
	if lastErr == nil {
		lastErr = ErrVersionGone
	}
	return nil, lastErr
}

// Fetch retrieves name from the replica set in sources, chunking and
// striping as needed, and returns the reassembled payload with the version
// served. pin 0 accepts whatever version the head chunk answers (the usual
// read); a non-zero pin demands exactly that version.
//
// The error classifies the failure: ErrUnsupported (downgrade to
// whole-frame fetches), ErrNotFound (stale hint set; re-locate),
// ErrVersionGone (concurrent write; re-locate and retry), ErrChecksum, or
// the last transport error when every replica failed.
func (f *Fetcher) Fetch(name string, pin uint64, sources []Source) ([]byte, uint64, error) {
	if len(sources) == 0 {
		return nil, 0, ErrNotFound
	}
	f.stats.InFlight.Add(1)
	defer f.stats.InFlight.Add(-1)
	t := &transfer{
		f: f, name: name, version: pin, sources: sources,
		dead: make([]atomic.Bool, len(sources)),
		used: make([]atomic.Bool, len(sources)),
	}

	// Head chunk first, alone: it pins the version, total size and
	// whole-file CRC the rest of the transfer is verified against.
	head, err := t.headChunk()
	if err != nil {
		return nil, 0, err
	}
	total := head.TotalSize
	if uint64(len(head.Chunk)) == total {
		// Single-chunk transfer: the chunk CRC already covered every byte;
		// the file CRC re-checks the same range.
		if crc32.Checksum(head.Chunk, castagnoli) != head.FileCRC {
			return nil, 0, ErrChecksum
		}
		f.noteDone(t)
		return head.Chunk, t.version, nil
	}

	buf := make([]byte, total)
	copy(buf, head.Chunk)
	chunk := uint64(f.cfg.ChunkSize)
	type rng struct {
		off uint64
		ln  uint32
	}
	var ranges []rng
	for off := uint64(len(head.Chunk)); off < total; off += chunk {
		ln := chunk
		if off+ln > total {
			ln = total - off
		}
		ranges = append(ranges, rng{off, uint32(ln)})
	}

	// Bounded in-flight window: Window workers drain the range list, each
	// chunk an independent pipelined frame striped across the live sources.
	workers := f.cfg.Window
	if len(ranges) < workers {
		workers = len(ranges)
	}
	var (
		wg      sync.WaitGroup
		cursor  atomic.Uint64
		failErr error
		failMu  sync.Mutex
		failed  atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(cursor.Add(1) - 1)
				if i >= len(ranges) {
					return
				}
				fr, err := t.runRange(ranges[i].off, ranges[i].ln)
				if err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = err
					}
					failMu.Unlock()
					failed.Store(true)
					return
				}
				if fr.TotalSize != total || uint64(len(fr.Chunk)) != uint64(ranges[i].ln) {
					failMu.Lock()
					if failErr == nil {
						failErr = fmt.Errorf("stream: range at %d answered %d bytes of total %d, want %d of %d",
							ranges[i].off, len(fr.Chunk), fr.TotalSize, ranges[i].ln, total)
					}
					failMu.Unlock()
					failed.Store(true)
					return
				}
				copy(buf[ranges[i].off:], fr.Chunk)
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		if t.gone.Load() && (failErr.Error() == msg.WrongVersionError || allDead(t)) {
			return nil, 0, ErrVersionGone
		}
		return nil, 0, failErr
	}
	if crc32.Checksum(buf, castagnoli) != head.FileCRC {
		return nil, 0, ErrChecksum
	}
	f.noteDone(t)
	return buf, t.version, nil
}

// headChunk fetches offset 0 from the first willing source, pinning the
// transfer's version. Classification differs from body ranges: a fleet
// that is entirely unknown-kind is ErrUnsupported (downgrade), entirely
// not-holder is ErrNotFound (re-locate); a wrong-version refusal under a
// caller pin is ErrVersionGone.
func (t *transfer) headChunk() (*msg.FetchResp, error) {
	n := len(t.sources)
	start := int(t.next.Add(1)-1) % n
	var sawHolderErr, sawMiss bool
	var lastErr error
	legacy := 0
	for k := 0; k < n; k++ {
		i := (start + k) % n
		fr, ver, err := t.fetchRange(i, 0, uint32(t.f.cfg.ChunkSize))
		if err == nil {
			// Pin: zero-pin callers adopt the head's version; every body
			// range (and head retries against other replicas under a caller
			// pin) must match it exactly.
			if t.version == 0 {
				t.version = ver
			}
			t.used[i].Store(true)
			t.f.stats.ChunksFetched.Add(1)
			return fr, nil
		}
		if k > 0 {
			t.f.stats.ChunkRetries.Add(1)
		}
		lastErr = err
		switch {
		case msg.IsUnknownKind(err.Error()):
			legacy++
			t.dead[i].Store(true)
		case err.Error() == msg.WrongVersionError:
			t.gone.Store(true)
			sawHolderErr = true
			t.dead[i].Store(true)
		case err.Error() == msg.NotHolderError:
			sawMiss = true
			t.evict(i, false)
		default:
			sawHolderErr = true
			t.evict(i, true)
		}
	}
	switch {
	case legacy == n:
		return nil, ErrUnsupported
	case t.gone.Load():
		return nil, ErrVersionGone
	case sawMiss && !sawHolderErr:
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("stream: head chunk failed at every replica: %w", lastErr)
}

// allDead reports whether every source was marked dead this transfer.
func allDead(t *transfer) bool {
	for i := range t.dead {
		if !t.dead[i].Load() {
			return false
		}
	}
	return true
}

// noteDone finalizes a successful transfer's stats.
func (f *Fetcher) noteDone(t *transfer) {
	f.stats.Transfers.Add(1)
	width := 0
	for i := range t.used {
		if t.used[i].Load() {
			width++
		}
	}
	f.stats.StripeWidth.Store(int64(width))
}
