package stream

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"lesslog/internal/msg"
)

// fakeHolder mimics the netnode fetch handler over one file copy.
type fakeHolder struct {
	mu      sync.Mutex
	data    []byte
	version uint64
	missing bool // answers not-holder
	legacy  bool // answers unknown-kind (pre-chunking peer)
	fail    bool // transport error
	served  atomic.Uint64
}

// fakeNet routes Do calls to fakeHolders by address.
type fakeNet struct {
	holders map[string]*fakeHolder
}

func (n *fakeNet) Do(addr string, req *msg.Request) (*msg.Response, error) {
	h, ok := n.holders[addr]
	if !ok {
		return nil, fmt.Errorf("no route to %s", addr)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fail {
		return nil, errors.New("connection refused")
	}
	if h.legacy {
		return &msg.Response{Err: msg.UnknownKindError(req.Kind)}, nil
	}
	if h.missing {
		return &msg.Response{Err: msg.NotHolderError}, nil
	}
	fr, err := msg.DecodeFetchReq(req.Data)
	if err != nil {
		return &msg.Response{Err: err.Error()}, nil
	}
	if req.Version != 0 && req.Version != h.version {
		return &msg.Response{Version: h.version, Err: msg.WrongVersionError}, nil
	}
	total := uint64(len(h.data))
	if fr.Offset > total || (fr.Offset == total && total != 0) {
		return &msg.Response{Err: "range past total"}, nil
	}
	end := fr.Offset + uint64(fr.Length)
	if end > total {
		end = total
	}
	chunk := h.data[fr.Offset:end]
	fresp := &msg.FetchResp{
		TotalSize: total,
		ChunkCRC:  crc32.Checksum(chunk, castagnoli),
		Chunk:     chunk,
	}
	if fr.Offset == 0 {
		fresp.FileCRC = crc32.Checksum(h.data, castagnoli)
	}
	out, err := msg.AppendFetchResp(nil, fresp)
	if err != nil {
		return &msg.Response{Err: err.Error()}, nil
	}
	h.served.Add(1)
	return &msg.Response{OK: true, Version: h.version, Data: out}, nil
}

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func replicaNet(data []byte, version uint64, n int) (*fakeNet, []Source) {
	net := &fakeNet{holders: map[string]*fakeHolder{}}
	var srcs []Source
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("holder-%d", i)
		net.holders[addr] = &fakeHolder{data: data, version: version}
		srcs = append(srcs, Source{PID: uint32(i + 1), Addr: addr})
	}
	return net, srcs
}

func TestFetchSingleChunk(t *testing.T) {
	data := payload(1000, 1)
	net, srcs := replicaNet(data, 7, 1)
	f := New(net, Config{ChunkSize: 4096, Window: 4})
	got, ver, err := f.Fetch("a", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || ver != 7 {
		t.Fatalf("got %d bytes v%d, want %d bytes v7", len(got), ver, len(data))
	}
	if f.Stats().Transfers.Load() != 1 || f.Stats().ChunksFetched.Load() != 1 {
		t.Fatalf("stats: transfers=%d chunks=%d", f.Stats().Transfers.Load(), f.Stats().ChunksFetched.Load())
	}
}

func TestFetchEmptyFile(t *testing.T) {
	net, srcs := replicaNet(nil, 3, 1)
	f := New(net, Config{ChunkSize: 4096})
	got, ver, err := f.Fetch("a", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || ver != 3 {
		t.Fatalf("got %d bytes v%d, want empty v3", len(got), ver)
	}
}

func TestFetchMultiChunkStriped(t *testing.T) {
	data := payload(100_000, 2)
	net, srcs := replicaNet(data, 9, 4)
	f := New(net, Config{ChunkSize: 8192, Window: 4})
	got, ver, err := f.Fetch("big", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || ver != 9 {
		t.Fatalf("payload mismatch: %d bytes v%d", len(got), ver)
	}
	// Every replica should have served at least one chunk: 13 ranges over
	// 4 holders round-robin.
	width := 0
	for _, h := range net.holders {
		if h.served.Load() > 0 {
			width++
		}
	}
	if width != 4 {
		t.Fatalf("stripe width %d, want 4", width)
	}
	if f.Stats().StripeWidth.Load() != 4 {
		t.Fatalf("stats stripe width %d, want 4", f.Stats().StripeWidth.Load())
	}
}

func TestFetchRetryOnDeadReplica(t *testing.T) {
	data := payload(50_000, 3)
	net, srcs := replicaNet(data, 5, 3)
	net.holders["holder-1"].fail = true
	var evictedAddr string
	var evictedHard bool
	f := New(net, Config{ChunkSize: 4096, Window: 2,
		Evict: func(name, addr string, hard bool) { evictedAddr, evictedHard = addr, hard }})
	got, _, err := f.Fetch("x", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch after replica failure")
	}
	if evictedAddr != "holder-1" || !evictedHard {
		t.Fatalf("evict = (%q, %v), want (holder-1, true)", evictedAddr, evictedHard)
	}
	if f.Stats().ChunkRetries.Load() == 0 {
		t.Fatal("expected chunk retries after holder failure")
	}
}

func TestFetchStaleHintSoftEvict(t *testing.T) {
	data := payload(30_000, 4)
	net, srcs := replicaNet(data, 5, 3)
	net.holders["holder-0"].missing = true
	var soft int
	f := New(net, Config{ChunkSize: 4096,
		Evict: func(name, addr string, hard bool) {
			if !hard && addr == "holder-0" {
				soft++
			}
		}})
	got, _, err := f.Fetch("x", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	if soft != 1 {
		t.Fatalf("soft evictions = %d, want 1", soft)
	}
}

func TestFetchAllLegacyUnsupported(t *testing.T) {
	net, srcs := replicaNet(payload(10, 5), 1, 3)
	for _, h := range net.holders {
		h.legacy = true
	}
	f := New(net, Config{})
	if _, _, err := f.Fetch("x", 0, srcs); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestFetchMixedLegacyStillWorks(t *testing.T) {
	data := payload(40_000, 6)
	net, srcs := replicaNet(data, 2, 3)
	net.holders["holder-0"].legacy = true
	f := New(net, Config{ChunkSize: 4096})
	got, _, err := f.Fetch("x", 0, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch with one legacy replica")
	}
	if net.holders["holder-0"].served.Load() != 0 {
		t.Fatal("legacy holder should never serve chunks")
	}
}

func TestFetchAllMissingNotFound(t *testing.T) {
	net, srcs := replicaNet(payload(10, 7), 1, 2)
	for _, h := range net.holders {
		h.missing = true
	}
	f := New(net, Config{})
	if _, _, err := f.Fetch("x", 0, srcs); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFetchVersionPinRefused(t *testing.T) {
	net, srcs := replicaNet(payload(10, 8), 4, 2)
	f := New(net, Config{})
	if _, _, err := f.Fetch("x", 3, srcs); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("err = %v, want ErrVersionGone", err)
	}
}

// TestFetchNoSpliceUnderUpdate is the anti-splice guarantee: the head
// chunk pins version 1; before the body ranges run, every holder is
// swapped to version 2 with different bytes. The transfer must fail
// version-gone — never return a mix of v1 and v2 bytes.
func TestFetchNoSpliceUnderUpdate(t *testing.T) {
	v1 := payload(60_000, 9)
	v2 := payload(60_000, 10)
	net, srcs := replicaNet(v1, 1, 3)
	headDone := false
	inner := net
	swapping := doerFunc(func(addr string, req *msg.Request) (*msg.Response, error) {
		resp, err := inner.Do(addr, req)
		if !headDone && err == nil && resp.OK {
			// After the head chunk lands, land the concurrent update.
			headDone = true
			for _, h := range inner.holders {
				h.mu.Lock()
				h.data, h.version = v2, 2
				h.mu.Unlock()
			}
		}
		return resp, err
	})
	f := New(swapping, Config{ChunkSize: 4096, Window: 1})
	if _, _, err := f.Fetch("x", 0, srcs); !errors.Is(err, ErrVersionGone) {
		t.Fatalf("err = %v, want ErrVersionGone (spliced read must not succeed)", err)
	}
}

type doerFunc func(addr string, req *msg.Request) (*msg.Response, error)

func (fn doerFunc) Do(addr string, req *msg.Request) (*msg.Response, error) { return fn(addr, req) }

// TestFetchChecksumDetectsCorruption flips one byte in a chunk body while
// keeping the per-chunk CRC consistent, so only the whole-file CRC can
// catch it.
func TestFetchChecksumDetectsCorruption(t *testing.T) {
	data := payload(20_000, 11)
	net, srcs := replicaNet(data, 1, 1)
	corrupt := doerFunc(func(addr string, req *msg.Request) (*msg.Response, error) {
		resp, err := net.Do(addr, req)
		if err != nil || !resp.OK {
			return resp, err
		}
		fr, derr := msg.DecodeFetchResp(resp.Data)
		if derr != nil {
			return resp, err
		}
		frq, _ := msg.DecodeFetchReq(req.Data)
		if frq.Offset != 0 {
			// Corrupt a body chunk but re-seal its chunk CRC: only the
			// whole-file checksum can now catch the damage.
			fr.Chunk = append([]byte(nil), fr.Chunk...)
			fr.Chunk[0] ^= 0xff
			fr.ChunkCRC = crc32.Checksum(fr.Chunk, castagnoli)
			resp.Data, _ = msg.AppendFetchResp(nil, fr)
		}
		return resp, err
	})
	f := New(corrupt, Config{ChunkSize: 4096, Window: 1})
	if _, _, err := f.Fetch("x", 0, srcs); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestFetchNoSources(t *testing.T) {
	f := New(&fakeNet{}, Config{})
	if _, _, err := f.Fetch("x", 0, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestFetchConcurrent runs many transfers at once to exercise the shared
// stats and per-transfer state under the race detector.
func TestFetchConcurrent(t *testing.T) {
	data := payload(80_000, 12)
	net, srcs := replicaNet(data, 6, 4)
	f := New(net, Config{ChunkSize: 8192, Window: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := f.Fetch("hot", 0, srcs)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Error("payload mismatch")
			}
		}()
	}
	wg.Wait()
	if f.Stats().Transfers.Load() != 8 {
		t.Fatalf("transfers = %d, want 8", f.Stats().Transfers.Load())
	}
	if f.Stats().InFlight.Load() != 0 {
		t.Fatalf("in-flight gauge = %d, want 0", f.Stats().InFlight.Load())
	}
}
