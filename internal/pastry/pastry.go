// Package pastry implements the prefix-routing lookup layer shared by the
// Plaxton mesh, Pastry and Tapestry — the remaining family of related
// systems the paper cites (§7, refs [6], [8], [11]). Identifiers are
// strings of base-2^bits digits; each node keeps a routing table with one
// row per matched-prefix length and, per row, one entry per next digit,
// plus a leaf set of numerically adjacent nodes. A hop extends the shared
// prefix by at least one digit, so lookups take O(log_{2^bits} N) hops.
//
// Only the lookup layer is built (as with chord and can): the paper notes
// these systems replicate by analyzing client-access history, which is
// the approach LessLog replaces, so only the routing cost is compared.
package pastry

import (
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
)

// Mesh is a fully built prefix-routing overlay over the live nodes of a
// status word.
type Mesh struct {
	m      int // identifier bits
	bits   int // bits per digit
	digits int // identifier length in digits, m/bits rounded up
	nodes  []bitops.PID
	// table[n][row][col] is the node whose identifier shares the first
	// `row` digits with n and has digit value `col` at position `row`;
	// ^0 marks an empty slot.
	table map[bitops.PID][][]bitops.PID
	// leaves[n] holds the numerically nearest neighbors on each side.
	leaves map[bitops.PID][]bitops.PID
}

const empty = bitops.PID(^uint32(0))

// leafSetSize is the per-side leaf-set size (Pastry uses |L|/2 = 8 for
// b=4; a smaller set suffices at simulation scale).
const leafSetSize = 4

// New builds the mesh for identifier width m with 2^bits-ary digits.
func New(m, bits int, live *liveness.Set) *Mesh {
	bitops.CheckWidth(m)
	if bits < 1 || bits > m {
		panic("pastry: digit bits out of range")
	}
	digits := (m + bits - 1) / bits
	mesh := &Mesh{
		m: m, bits: bits, digits: digits,
		nodes:  live.LivePIDs(),
		table:  map[bitops.PID][][]bitops.PID{},
		leaves: map[bitops.PID][]bitops.PID{},
	}
	sort.Slice(mesh.nodes, func(i, j int) bool { return mesh.nodes[i] < mesh.nodes[j] })
	for _, n := range mesh.nodes {
		mesh.build(n)
	}
	return mesh
}

// digit returns the i-th digit (0 = most significant) of id.
func (ms *Mesh) digit(id bitops.PID, i int) uint32 {
	shift := uint((ms.digits - 1 - i) * ms.bits)
	return (uint32(id) >> shift) & (1<<uint(ms.bits) - 1)
}

// sharedPrefix returns how many leading digits a and b share.
func (ms *Mesh) sharedPrefix(a, b bitops.PID) int {
	for i := 0; i < ms.digits; i++ {
		if ms.digit(a, i) != ms.digit(b, i) {
			return i
		}
	}
	return ms.digits
}

// build fills node n's routing table and leaf set from the global view —
// the steady state Pastry's join protocol converges to.
func (ms *Mesh) build(n bitops.PID) {
	cols := 1 << uint(ms.bits)
	t := make([][]bitops.PID, ms.digits)
	for r := range t {
		t[r] = make([]bitops.PID, cols)
		for c := range t[r] {
			t[r][c] = empty
		}
	}
	for _, q := range ms.nodes {
		if q == n {
			continue
		}
		r := ms.sharedPrefix(n, q)
		if r == ms.digits {
			continue // duplicate identifier; impossible with unique PIDs
		}
		c := ms.digit(q, r)
		// Keep the numerically closest candidate per slot, Pastry's
		// proximity heuristic degenerated to identifier distance.
		if cur := t[r][c]; cur == empty || absDiff(q, n) < absDiff(cur, n) {
			t[r][c] = q
		}
	}
	ms.table[n] = t

	// Leaf set: the leafSetSize nearest live nodes on each side of n on
	// the identifier ring.
	idx := sort.Search(len(ms.nodes), func(i int) bool { return ms.nodes[i] >= n })
	var leaves []bitops.PID
	for d := 1; d <= leafSetSize; d++ {
		leaves = append(leaves,
			ms.nodes[(idx+d)%len(ms.nodes)],
			ms.nodes[(idx-d+len(ms.nodes)*2)%len(ms.nodes)])
	}
	ms.leaves[n] = leaves
}

func absDiff(a, b bitops.PID) uint32 {
	if a > b {
		return uint32(a - b)
	}
	return uint32(b - a)
}

// closer reports whether a is strictly closer to key than b under the
// total order "smaller numeric distance, ties toward the smaller PID" —
// used by both Owner and the routing steps so they agree on tie keys.
func closer(a, b, key bitops.PID) bool {
	da, db := absDiff(a, key), absDiff(b, key)
	return da < db || (da == db && a < b)
}

// Owner returns the live node numerically closest to key, Pastry's root
// for that identifier (ties toward the smaller PID).
func (ms *Mesh) Owner(key bitops.PID) bitops.PID {
	best := ms.nodes[0]
	for _, n := range ms.nodes[1:] {
		if closer(n, best, key) {
			best = n
		}
	}
	return best
}

// isOwner reports whether cur is the key's root by local knowledge: no
// node in its leaf set is closer. Because every node's leaf set contains
// its immediate sorted neighbors, and the global owner is the closest of
// all nodes, local and global ownership coincide.
func (ms *Mesh) isOwner(cur, key bitops.PID) bool {
	for _, l := range ms.leaves[cur] {
		if closer(l, cur, key) {
			return false
		}
	}
	return true
}

// closestLeaf returns the leaf of cur closest to key (possibly cur).
func (ms *Mesh) closestLeaf(cur, key bitops.PID) bitops.PID {
	best := cur
	for _, l := range ms.leaves[cur] {
		if closer(l, best, key) {
			best = l
		}
	}
	return best
}

// Lookup routes from node `from` toward key and returns the owning node
// and the hop count: prefix-extending routing-table hops while they
// exist, finished (or rescued, when a prefix slot is empty or a hop
// revisits a node) by a numeric walk through the leaf sets, which always
// makes strict progress because each leaf set contains the node's
// immediate sorted neighbors.
func (ms *Mesh) Lookup(from bitops.PID, key bitops.PID) (owner bitops.PID, hops int) {
	cur := from
	visited := map[bitops.PID]bool{}
	for !ms.isOwner(cur, key) {
		visited[cur] = true
		next := cur
		r := ms.sharedPrefix(cur, key)
		if r < ms.digits {
			if e := ms.table[cur][r][ms.digit(key, r)]; e != empty && !visited[e] {
				next = e
			}
		}
		if next == cur {
			next = ms.closestLeaf(cur, key)
		}
		if next == cur || (visited[next] && !closer(next, cur, key)) {
			// Degenerate: fall back to the pure numeric leaf walk.
			for !ms.isOwner(cur, key) {
				cur = ms.closestLeaf(cur, key)
				hops++
			}
			return cur, hops
		}
		cur = next
		hops++
	}
	return cur, hops
}
