package pastry

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

func TestDigits(t *testing.T) {
	live := liveness.NewAllLive(8, 256)
	ms := New(8, 2, live)
	if ms.digits != 4 {
		t.Fatalf("digits = %d", ms.digits)
	}
	// 0b10110100 in base-4 digits: 2,3,1,0.
	id := bitops.PID(0b10110100)
	want := []uint32{2, 3, 1, 0}
	for i, w := range want {
		if got := ms.digit(id, i); got != w {
			t.Fatalf("digit(%d) = %d, want %d", i, got, w)
		}
	}
	if ms.sharedPrefix(0b10110100, 0b10110011) != 2 {
		t.Fatalf("sharedPrefix = %d", ms.sharedPrefix(0b10110100, 0b10110011))
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	live := liveness.New(6)
	for _, p := range []bitops.PID{10, 20, 40} {
		live.SetLive(p)
	}
	ms := New(6, 2, live)
	cases := []struct {
		key  bitops.PID
		want bitops.PID
	}{{10, 10}, {14, 10}, {16, 20}, {29, 20}, {31, 40}, {63, 40}, {0, 10}}
	for _, c := range cases {
		if got := ms.Owner(c.key); got != c.want {
			t.Fatalf("Owner(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestLookupFindsOwnerEverywhere(t *testing.T) {
	rng := xrand.New(3)
	for _, cfg := range []struct{ m, bits int }{{8, 2}, {10, 2}, {10, 4}} {
		live := liveness.NewAllLive(cfg.m, bitops.Slots(cfg.m))
		workload.KillRandom(live, 0.5, bitops.PID(^uint32(0)), rng.Fork())
		ms := New(cfg.m, cfg.bits, live)
		pids := live.LivePIDs()
		for trial := 0; trial < 300; trial++ {
			from := pids[rng.Intn(len(pids))]
			key := bitops.PID(rng.Intn(bitops.Slots(cfg.m)))
			owner, hops := ms.Lookup(from, key)
			if want := ms.Owner(key); owner != want {
				t.Fatalf("m=%d bits=%d: Lookup(%d from %d) = %d, want %d",
					cfg.m, cfg.bits, key, from, owner, want)
			}
			if hops > 3*ms.digits+2*leafSetSize {
				t.Fatalf("m=%d bits=%d: %d hops", cfg.m, cfg.bits, hops)
			}
		}
	}
}

func TestLookupSelf(t *testing.T) {
	live := liveness.NewAllLive(6, 64)
	ms := New(6, 2, live)
	owner, hops := ms.Lookup(17, 17)
	if owner != 17 || hops != 0 {
		t.Fatalf("self lookup = %d in %d hops", owner, hops)
	}
}

func TestHopsLogarithmic(t *testing.T) {
	// Full 1024-node mesh, base-16 digits (Pastry's b = 4): expected
	// path length ~ log16(1024) = 2.5.
	live := liveness.NewAllLive(10, 1024)
	ms := New(10, 4, live)
	rng := xrand.New(7)
	total, trials := 0, 2000
	for i := 0; i < trials; i++ {
		_, hops := ms.Lookup(bitops.PID(rng.Intn(1024)), bitops.PID(rng.Intn(1024)))
		total += hops
	}
	avg := float64(total) / float64(trials)
	if avg < 1 || avg > 4 {
		t.Fatalf("average hops %.2f outside the log16 band", avg)
	}
	t.Logf("pastry b=4, N=1024: average %.2f hops", avg)
}

func TestBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bits=0 accepted")
		}
	}()
	New(8, 0, liveness.NewAllLive(8, 256))
}

func BenchmarkPastryLookup(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	ms := New(10, 4, live)
	rng := xrand.New(1)
	froms := make([]bitops.PID, 256)
	keys := make([]bitops.PID, 256)
	for i := range froms {
		froms[i] = bitops.PID(rng.Intn(1024))
		keys[i] = bitops.PID(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Lookup(froms[i&255], keys[i&255])
	}
}
