package dynsim

import (
	"math"
	"reflect"
	"testing"

	"lesslog/internal/xrand"
)

func TestRunDefaultScenario(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 30
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 1000 {
		t.Fatalf("too few requests simulated: %+v", res)
	}
	// B=1 with modest churn keeps availability high.
	if res.Availability < 0.95 {
		t.Fatalf("availability %.4f below 0.95: %s", res.Availability, res)
	}
	if res.MeanHops <= 0 || res.MeanHops > float64(sc.M) {
		t.Fatalf("mean hops %v outside (0, m]", res.MeanHops)
	}
	t.Logf("%s", res)
}

func TestDeterministicBySeed(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 10
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	sc.Seed = 999
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results")
	}
	// The time series covers the run at the maintenance cadence.
	wantWindows := int(sc.Duration / sc.MaintenanceEvery)
	if len(a.Windows) < wantWindows-1 || len(a.Windows) > wantWindows+1 {
		t.Fatalf("windows = %d, want ~%d", len(a.Windows), wantWindows)
	}
	for i, w := range a.Windows {
		if w.Availability < 0 || w.Availability > 1 || w.Nodes < 1 {
			t.Fatalf("window %d invalid: %+v", i, w)
		}
		if i > 0 && w.At <= a.Windows[i-1].At {
			t.Fatalf("window times not increasing")
		}
	}
}

func TestFaultToleranceImprovesAvailability(t *testing.T) {
	// Under failure-heavy churn, B=1 must beat B=0: the headline value
	// of the §4 model in the dynamic setting.
	base := DefaultScenario()
	base.Duration = 60
	base.ChurnRate = 3
	base.JoinFrac, base.LeaveFrac, base.FailFrac = 1, 0, 2
	run := func(b int) float64 {
		sc := base
		sc.B = b
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("B=%d: %s", b, res)
		return res.Availability
	}
	a0 := run(0)
	a1 := run(1)
	if a1 < a0 {
		t.Fatalf("B=1 availability %.4f below B=0 %.4f", a1, a0)
	}
	if a1 < 0.99 {
		t.Fatalf("B=1 availability %.4f unexpectedly low", a1)
	}
}

func TestNoChurnPerfectAvailability(t *testing.T) {
	sc := DefaultScenario()
	sc.ChurnRate = 0
	sc.Duration = 20
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 || res.Availability != 1 {
		t.Fatalf("static system faulted: %s", res)
	}
	if res.Joins+res.Leaves+res.Fails != 0 {
		t.Fatal("churn events without a churn process")
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := DefaultScenario()
	sc.RequestRate = 0
	if _, err := Run(sc); err == nil {
		t.Fatal("zero request rate accepted")
	}
	sc = DefaultScenario()
	sc.JoinFrac, sc.LeaveFrac, sc.FailFrac = 0, 0, 0
	if _, err := Run(sc); err == nil {
		t.Fatal("all-zero churn mix accepted")
	}
}

func TestZipfCDF(t *testing.T) {
	cdf := zipfCDF(5, 1)
	if math.Abs(cdf[4]-1) > 1e-12 {
		t.Fatalf("cdf tail = %v", cdf[4])
	}
	for i := 1; i < 5; i++ {
		if cdf[i] <= cdf[i-1] {
			t.Fatalf("cdf not increasing: %v", cdf)
		}
	}
	// Rank 1 must dominate under s=1: H(5) ≈ 2.283, so p1 ≈ 0.438.
	if cdf[0] < 0.4 || cdf[0] > 0.48 {
		t.Fatalf("p(rank1) = %v", cdf[0])
	}
	// Uniform at s=0.
	u := zipfCDF(4, 0)
	for i, want := range []float64{0.25, 0.5, 0.75, 1} {
		if math.Abs(u[i]-want) > 1e-12 {
			t.Fatalf("uniform cdf = %v", u)
		}
	}
}

func TestPickCDF(t *testing.T) {
	cdf := []float64{0.5, 0.8, 1}
	cases := []struct {
		u    float64
		want int
	}{{0, 0}, {0.49, 0}, {0.5, 0}, {0.51, 1}, {0.8, 1}, {0.99, 2}, {1, 2}}
	for _, c := range cases {
		if got := pickCDF(cdf, c.u); got != c.want {
			t.Fatalf("pickCDF(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	rng := xrand.New(1)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		d := float64(exp(rng, 10))
		if d < 0 {
			t.Fatal("negative interarrival")
		}
		sum += d
	}
	if mean := sum / 10000; mean < 0.08 || mean > 0.12 {
		t.Fatalf("mean interarrival %v, want ~0.1", mean)
	}
}
