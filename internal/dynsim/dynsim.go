// Package dynsim runs the paper's §8 future work: "implement LessLog in a
// large-scaled P2P system and obtain performance data in a real-world
// scenario where nodes dynamically join and leave the system." It drives
// the operational engine (internal/core) from a discrete-event scenario:
// Poisson request arrivals over a Zipf file popularity, a Poisson churn
// process mixing joins, graceful leaves and abrupt failures, and periodic
// maintenance windows running the logless overload check and the
// counter-based replica eviction.
//
// The scenario is fully seeded and replayable; EXPERIMENTS.md reports the
// availability-under-churn table produced by experiments.ChurnTable on
// top of this package (clearly marked as an extension beyond the paper's
// own figures).
package dynsim

import (
	"fmt"
	"math"

	"lesslog/internal/bitops"
	"lesslog/internal/core"
	"lesslog/internal/sim"
	"lesslog/internal/xrand"
)

// Scenario parameterizes one dynamic run.
type Scenario struct {
	M            int     // identifier width
	B            int     // fault-tolerance bits
	InitialNodes int     // live nodes at t=0
	Files        int     // files inserted at t=0
	ZipfS        float64 // file popularity skew (0 = uniform)

	RequestRate float64 // get arrivals per virtual second
	ChurnRate   float64 // membership events per virtual second
	JoinFrac    float64 // churn mix; fractions normalized internally
	LeaveFrac   float64
	FailFrac    float64
	MinNodes    int // churn never shrinks the system below this

	MaintenanceEvery  float64 // seconds between maintenance windows
	OverloadThreshold uint64  // window serve count that triggers replication
	EvictBelow        uint64  // window serve count below which replicas die

	Duration float64 // virtual seconds
	Seed     uint64
}

// DefaultScenario returns a moderate 256-node, B=1 configuration.
func DefaultScenario() Scenario {
	return Scenario{
		M: 8, B: 1, InitialNodes: 256, Files: 50, ZipfS: 1.0,
		RequestRate: 200, ChurnRate: 1, JoinFrac: 1, LeaveFrac: 1, FailFrac: 1,
		MinNodes: 32, MaintenanceEvery: 5, OverloadThreshold: 100, EvictBelow: 3,
		Duration: 120, Seed: 1,
	}
}

// WindowSample is one maintenance window's snapshot.
type WindowSample struct {
	At           sim.Time
	Nodes        int
	Requests     uint64  // cumulative
	Availability float64 // within this window
}

// Result aggregates one run.
type Result struct {
	Requests     uint64
	Faults       uint64
	Availability float64 // served / requests
	MeanHops     float64
	Joins        int
	Leaves       int
	Fails        int
	FinalNodes   int
	Stats        core.Stats
	Windows      []WindowSample // one per maintenance window
}

// String formats the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("requests=%d faults=%d availability=%.4f mean-hops=%.2f churn(j/l/f)=%d/%d/%d nodes=%d",
		r.Requests, r.Faults, r.Availability, r.MeanHops, r.Joins, r.Leaves, r.Fails, r.FinalNodes)
}

// Run executes the scenario to completion.
func Run(sc Scenario) (Result, error) {
	if sc.RequestRate <= 0 || sc.Duration <= 0 {
		return Result{}, fmt.Errorf("dynsim: request rate and duration must be positive")
	}
	if sc.MinNodes < 1 {
		sc.MinNodes = 1
	}
	cluster, err := core.New(core.Config{
		M: sc.M, B: sc.B, InitialNodes: sc.InitialNodes, Seed: sc.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	rng := xrand.New(sc.Seed)

	// Seed content.
	names := make([]string, sc.Files)
	for i := range names {
		names[i] = fmt.Sprintf("dyn/%04d", i)
		origin := bitops.PID(rng.Intn(sc.InitialNodes))
		if _, err := cluster.Insert(origin, names[i], []byte(names[i])); err != nil {
			return Result{}, err
		}
	}
	popCDF := zipfCDF(sc.Files, sc.ZipfS)

	var (
		eng    sim.Engine
		res    Result
		hopSum uint64
	)

	// Request arrival process.
	reqRNG := rng.Fork()
	var nextRequest func()
	nextRequest = func() {
		live := cluster.Live().LivePIDs()
		origin := live[reqRNG.Intn(len(live))]
		name := names[pickCDF(popCDF, reqRNG.Float64())]
		res.Requests++
		if g, err := cluster.Get(origin, name); err != nil {
			res.Faults++
		} else {
			hopSum += uint64(g.Hops)
		}
		eng.Schedule(exp(reqRNG, sc.RequestRate), nextRequest)
	}
	eng.Schedule(exp(reqRNG, sc.RequestRate), nextRequest)

	// Churn process.
	if sc.ChurnRate > 0 {
		churnRNG := rng.Fork()
		mix := sc.JoinFrac + sc.LeaveFrac + sc.FailFrac
		if mix <= 0 {
			return Result{}, fmt.Errorf("dynsim: churn mix is all zero")
		}
		var nextChurn func()
		nextChurn = func() {
			u := churnRNG.Float64() * mix
			switch {
			case u < sc.JoinFrac:
				if p, ok := randomDead(cluster, churnRNG); ok {
					if err := cluster.Join(p); err == nil {
						res.Joins++
					}
				}
			case u < sc.JoinFrac+sc.LeaveFrac:
				if cluster.NodeCount() > sc.MinNodes {
					live := cluster.Live().LivePIDs()
					if err := cluster.Leave(live[churnRNG.Intn(len(live))]); err == nil {
						res.Leaves++
					}
				}
			default:
				if cluster.NodeCount() > sc.MinNodes {
					live := cluster.Live().LivePIDs()
					if err := cluster.Fail(live[churnRNG.Intn(len(live))]); err == nil {
						res.Fails++
					}
				}
			}
			eng.Schedule(exp(churnRNG, sc.ChurnRate), nextChurn)
		}
		eng.Schedule(exp(churnRNG, sc.ChurnRate), nextChurn)
	}

	// Maintenance window: logless overload replication plus the
	// counter-based eviction, then a fresh counting window, with one
	// time-series sample per window.
	if sc.MaintenanceEvery > 0 {
		var prevReq, prevFaults uint64
		var maintain func()
		maintain = func() {
			cluster.ReplicateHot(sc.OverloadThreshold)
			cluster.EvictCold(sc.EvictBelow)
			cluster.ResetWindow()
			windowReq := res.Requests - prevReq
			windowFaults := res.Faults - prevFaults
			avail := 1.0
			if windowReq > 0 {
				avail = float64(windowReq-windowFaults) / float64(windowReq)
			}
			res.Windows = append(res.Windows, WindowSample{
				At:           eng.Now(),
				Nodes:        cluster.NodeCount(),
				Requests:     res.Requests,
				Availability: avail,
			})
			prevReq, prevFaults = res.Requests, res.Faults
			eng.Schedule(sim.Time(sc.MaintenanceEvery), maintain)
		}
		eng.Schedule(sim.Time(sc.MaintenanceEvery), maintain)
	}

	eng.RunUntil(sim.Time(sc.Duration))

	served := res.Requests - res.Faults
	if res.Requests > 0 {
		res.Availability = float64(served) / float64(res.Requests)
	}
	if served > 0 {
		res.MeanHops = float64(hopSum) / float64(served)
	}
	res.FinalNodes = cluster.NodeCount()
	res.Stats = cluster.Stats()
	return res, nil
}

// exp draws an exponential interarrival time with the given rate.
func exp(rng *xrand.Rand, rate float64) sim.Time {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return sim.Time(-math.Log(u) / rate)
}

// zipfCDF returns the cumulative popularity distribution of n files with
// exponent s (rank 1 most popular).
func zipfCDF(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / sum
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against rounding
	return cdf
}

// pickCDF returns the first index whose cumulative mass covers u.
func pickCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// randomDead samples a dead PID, or reports none within a bounded search.
func randomDead(c *core.Cluster, rng *xrand.Rand) (bitops.PID, bool) {
	live := c.Live()
	if live.LiveCount() == live.Slots() {
		return 0, false
	}
	for i := 0; i < 64; i++ {
		p := bitops.PID(rng.Intn(live.Slots()))
		if !live.IsLive(p) {
			return p, true
		}
	}
	// Dense systems: fall back to a scan.
	for p := 0; p < live.Slots(); p++ {
		if !live.IsLive(bitops.PID(p)) {
			return bitops.PID(p), true
		}
	}
	return 0, false
}
