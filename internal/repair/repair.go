// Package repair holds the policy pieces of the anti-entropy replica
// repair loop (docs/REPAIR.md): a token-bucket bandwidth budget so
// background repair never starves foreground traffic, the bucket-fold
// digest arithmetic behind msg.KindDigest, and a round-robin sampler
// that walks a peer's inventory a slice at a time. The loop itself lives
// in internal/netnode (it needs the routing view and the transport);
// everything here is deterministic, single-node, and testable without a
// network — the same split internal/hashring and internal/trace use.
package repair

import (
	"sort"
	"sync"
	"time"
)

// Defaults for Config fields left zero; see WithDefaults.
const (
	DefaultInterval     = 2 * time.Second
	DefaultSampleSize   = 32
	DefaultBudget       = 256 << 10 // bytes/sec of repair traffic
	DefaultBuckets      = 64
	DefaultDigestEvery  = 4
	DefaultTombstoneTTL = 10 * time.Minute
)

// ProbeCost is the bytes-equivalent charge for one repair probe (a
// KindHas or digest frame): the real frames are tiny, but charging a
// fixed floor keeps a probe storm inside the same budget that bounds
// payload pushes.
const ProbeCost = 64

// Config tunes one peer's repair loop. The zero value means "defaults";
// explicit zero-disables go through the value -1 where meaningful.
type Config struct {
	// Interval between repair rounds.
	Interval time.Duration
	// SampleSize is how many held names one round verifies. 0 means
	// DefaultSampleSize; negative means the whole inventory every round.
	SampleSize int
	// Budget is the repair bandwidth in bytes/second (probes are charged
	// ProbeCost). 0 means DefaultBudget; negative means unlimited.
	Budget int
	// Buckets is the digest partition width. More buckets localize
	// divergence better per round at 8 bytes of frame each.
	Buckets int
	// DigestEvery runs a digest exchange every Nth round (round 0 always
	// digests, so a rejoined peer warms up within one interval). 0 means
	// DefaultDigestEvery; negative disables digest exchange.
	DigestEvery int
	// TombstoneTTL is the GC horizon for delete tombstones: each round
	// prunes tombstones older than this, on the assumption the deletion
	// has reached every replica by then. Longer horizons tolerate longer
	// partitions before a deleted name can be resurrected by a returning
	// stale copy. 0 means DefaultTombstoneTTL; negative keeps tombstones
	// until the peer restarts.
	TombstoneTTL time.Duration
}

// WithDefaults returns c with zero fields replaced by the defaults.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.SampleSize == 0 {
		c.SampleSize = DefaultSampleSize
	}
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = DefaultDigestEvery
	}
	if c.TombstoneTTL == 0 {
		c.TombstoneTTL = DefaultTombstoneTTL
	}
	return c
}

// Budget is a token-bucket rate limiter in bytes: repair work calls
// Allow(n) before each wire exchange and skips the exchange (to retry a
// later round) when the bucket is dry. Non-blocking by design — repair
// has no deadline, so waiting would only pin goroutines; the loop's
// ticker is the retry timer.
type Budget struct {
	mu      sync.Mutex
	rate    float64 // tokens (bytes) added per second; <= 0 means unlimited
	burst   float64 // bucket capacity
	tokens  float64
	last    time.Time
	deficit int64 // shortfall at the most recent denial; 0 after a grant
}

// NewBudget returns a bucket refilling at bytesPerSec with the given
// burst capacity (<= 0 defaults to one second of rate). bytesPerSec <= 0
// disables limiting: every Allow succeeds.
func NewBudget(bytesPerSec, burst int) *Budget {
	if burst <= 0 {
		burst = bytesPerSec
	}
	b := &Budget{rate: float64(bytesPerSec), burst: float64(burst)}
	b.tokens = b.burst
	b.last = time.Now()
	return b
}

// Allow spends n bytes if the bucket holds them and reports whether it
// did. A denial records the shortfall, readable via Deficit until the
// next grant.
//
// A job larger than the bucket's own capacity can never save up for
// itself, so requiring n tokens would starve it forever — a copy bigger
// than one second of budget would simply never be repaired. Such a job
// is instead granted as an overdraft from any non-negative bucket: the
// tokens go deep negative and refill repays them before anything else is
// granted (the Spend discipline), so oversized copies move at the
// configured average rate instead of not at all.
func (b *Budget) Allow(n int) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if float64(n) > b.tokens && !(float64(n) > b.burst && b.tokens >= 0) {
		b.deficit = int64(float64(n) - b.tokens)
		return false
	}
	b.tokens -= float64(n)
	b.deficit = 0
	return true
}

// Spend unconditionally debits n bytes, letting the bucket go negative —
// the after-the-fact charge for bytes already on the wire (a pulled
// payload's size is only known once it arrives). The overdraft is repaid
// by refill before any further Allow succeeds, so repeated large pulls
// cannot bypass the budget the way a denied Allow (which leaves tokens
// untouched) would.
func (b *Budget) Spend(n int) {
	if b == nil || b.rate <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
}

// Deficit returns the byte shortfall of the most recent denied Allow, or
// 0 if the last call was granted — the gauge the repair loop exports so
// a starved budget is visible in /metrics.
func (b *Budget) Deficit() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deficit
}

// fnv1a64 is the 64-bit FNV-1a hash, the fold primitive of the digest.
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// entryHash folds one (name, version) pair into a single word. Version
// participates so a stale copy diverges the same way a missing one does.
func entryHash(name string, version uint64) uint64 {
	h := fnv1a64(name)
	// Mix the version through one more round of FNV so (name, v) and
	// (name, v+1) land far apart.
	for i := 0; i < 8; i++ {
		h ^= version >> (8 * i) & 0xFF
		h *= 1099511628211
	}
	return h
}

// BucketOf maps name to its digest bucket in an n-bucket partition.
// Buckets partition by name only (not version), so the same copy lands
// in the same bucket on both sides regardless of staleness.
func BucketOf(name string, n int) int {
	if n <= 0 {
		return 0
	}
	return int(fnv1a64(name) % uint64(n))
}

// Fold XOR-accumulates the entry hash of (name, version) into the
// digest vector d. XOR makes the fold order-independent and incremental:
// two peers holding the same (name, version) sets produce identical
// vectors however they iterated.
func Fold(d []uint64, name string, version uint64) {
	if len(d) == 0 {
		return
	}
	d[BucketOf(name, len(d))] ^= entryHash(name, version)
}

// DiffBuckets reports which buckets differ between a local digest and a
// remote one. Vectors of different lengths (peers configured with
// different widths) diff as "everything" — correctness over thrift.
func DiffBuckets(local, remote []uint64) []int {
	if len(local) != len(remote) {
		all := make([]int, len(remote))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var diff []int
	for i := range local {
		if local[i] != remote[i] {
			diff = append(diff, i)
		}
	}
	return diff
}

// TTFR tracks time-to-full-replication: how long the peer's inventory
// stayed divergent before anti-entropy converged it. Each repair round
// reports whether it moved any copies (Note(true)) or found nothing to do
// (Note(false)); a run of divergent rounds closed by a clean one is an
// episode, and the last episode's length is the gauge operators read. A
// clean round with no preceding divergence keeps the gauge untouched —
// steady state is "last repair took X", not zero.
type TTFR struct {
	mu    sync.Mutex
	since time.Time     // start of the current divergent episode; zero when converged
	last  time.Duration // length of the last completed episode
}

// Note records one repair round's outcome at time now.
func (t *TTFR) Note(divergent bool, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if divergent {
		if t.since.IsZero() {
			t.since = now
		}
		return
	}
	if !t.since.IsZero() {
		t.last = now.Sub(t.since)
		t.since = time.Time{}
	}
}

// Last returns the length of the last completed divergence episode, 0 if
// none has completed yet.
func (t *TTFR) Last() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// Repairing returns how long the current episode has been open as of now,
// or 0 when the peer is converged.
func (t *TTFR) Repairing(now time.Time) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.since.IsZero() {
		return 0
	}
	return now.Sub(t.since)
}

// Sampler walks an inventory in sorted order a slice at a time,
// remembering its cursor across rounds so every held name is verified
// within inventory/sampleSize rounds even as the inventory changes.
type Sampler struct {
	mu     sync.Mutex
	cursor string // last name handed out; "" restarts from the top
}

// Next returns up to n names from the sorted inventory, resuming after
// the previous round's cursor and wrapping at the end. n <= 0 returns
// the whole inventory. Names that vanished since the last round are
// skipped naturally (the cursor is a name, not an index).
func (s *Sampler) Next(inventory []string, n int) []string {
	if len(inventory) == 0 {
		return nil
	}
	if n <= 0 || n >= len(inventory) {
		return inventory
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// First name strictly after the cursor, wrapping to 0.
	start := sort.SearchStrings(inventory, s.cursor)
	if start < len(inventory) && inventory[start] == s.cursor {
		start++
	}
	if start >= len(inventory) {
		start = 0
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, inventory[(start+i)%len(inventory)])
	}
	s.cursor = out[len(out)-1]
	return out
}
