package repair

import (
	"testing"
	"time"
)

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Interval != DefaultInterval || c.SampleSize != DefaultSampleSize ||
		c.Budget != DefaultBudget || c.Buckets != DefaultBuckets || c.DigestEvery != DefaultDigestEvery ||
		c.TombstoneTTL != DefaultTombstoneTTL {
		t.Fatalf("zero config did not default: %+v", c)
	}
	c = Config{Interval: time.Minute, SampleSize: -1, Budget: -1, Buckets: 8, DigestEvery: -1, TombstoneTTL: -1}.WithDefaults()
	if c.Interval != time.Minute || c.SampleSize != -1 || c.Budget != -1 || c.Buckets != 8 || c.DigestEvery != -1 ||
		c.TombstoneTTL != -1 {
		t.Fatalf("explicit config was overridden: %+v", c)
	}
}

func TestBudgetSpendAndRefill(t *testing.T) {
	b := NewBudget(1000, 100) // 1000 B/s, 100 B burst
	if !b.Allow(100) {
		t.Fatal("full bucket denied its burst")
	}
	if b.Allow(100) {
		t.Fatal("empty bucket granted a burst immediately")
	}
	if d := b.Deficit(); d <= 0 || d > 100 {
		t.Fatalf("deficit after denial = %d, want in (0, 100]", d)
	}
	// ~50ms refills ~50 tokens at 1000 B/s.
	time.Sleep(60 * time.Millisecond)
	if !b.Allow(40) {
		t.Fatal("refilled bucket denied an affordable spend")
	}
	if d := b.Deficit(); d != 0 {
		t.Fatalf("deficit after grant = %d, want 0", d)
	}
}

func TestBudgetSpendOverdrafts(t *testing.T) {
	b := NewBudget(1000, 100)
	// An after-the-fact charge larger than the bucket drives it negative;
	// the overdraft must gate subsequent Allow calls (a denied Allow alone
	// would have left the tokens untouched and let every pull through).
	b.Spend(50_000)
	if b.Allow(1) {
		t.Fatal("overdrafted bucket granted a spend")
	}
	if d := b.Deficit(); d <= 0 {
		t.Fatalf("deficit after overdraft denial = %d, want > 0", d)
	}
}

func TestBudgetOversizeOverdrafts(t *testing.T) {
	b := NewBudget(1000, 100)
	// A job larger than the bucket's capacity could never save up for
	// itself; it must be granted as an overdraft from a non-negative
	// bucket instead of being starved forever.
	if !b.Allow(50_000) {
		t.Fatal("oversize job denied by a full bucket")
	}
	// The overdraft gates everything — small or oversize — until refill
	// repays it, so the long-run rate stays at the configured budget.
	if b.Allow(1) {
		t.Fatal("overdrafted bucket granted a small spend")
	}
	if b.Allow(50_000) {
		t.Fatal("overdrafted bucket granted a second oversize job")
	}
	if d := b.Deficit(); d <= 0 {
		t.Fatalf("deficit after overdraft denial = %d, want > 0", d)
	}
}

func TestBudgetSpendUnlimited(t *testing.T) {
	for _, b := range []*Budget{nil, NewBudget(-1, 0)} {
		b.Spend(1 << 30) // must be a no-op, not a panic or an overdraft
		if !b.Allow(1 << 20) {
			t.Fatal("unlimited budget denied a spend after Spend")
		}
	}
}

func TestBudgetUnlimited(t *testing.T) {
	for _, b := range []*Budget{nil, NewBudget(-1, 0), NewBudget(0, 0)} {
		for i := 0; i < 100; i++ {
			if !b.Allow(1 << 20) {
				t.Fatalf("unlimited budget %+v denied a spend", b)
			}
		}
		if b.Deficit() != 0 {
			t.Fatalf("unlimited budget reported a deficit")
		}
	}
}

func TestFoldOrderIndependent(t *testing.T) {
	a := make([]uint64, 16)
	b := make([]uint64, 16)
	Fold(a, "x", 1)
	Fold(a, "y", 2)
	Fold(a, "z", 3)
	Fold(b, "z", 3)
	Fold(b, "x", 1)
	Fold(b, "y", 2)
	if len(DiffBuckets(a, b)) != 0 {
		t.Fatal("same set folded in different orders diverged")
	}
}

func TestFoldDetectsDivergence(t *testing.T) {
	base := make([]uint64, 16)
	Fold(base, "common", 1)

	// A missing name diverges.
	more := make([]uint64, 16)
	Fold(more, "common", 1)
	Fold(more, "extra", 1)
	diff := DiffBuckets(base, more)
	if len(diff) != 1 || diff[0] != BucketOf("extra", 16) {
		t.Fatalf("missing name: diff = %v, want [%d]", diff, BucketOf("extra", 16))
	}

	// A stale version diverges in the same bucket as the name.
	stale := make([]uint64, 16)
	Fold(stale, "common", 2)
	diff = DiffBuckets(base, stale)
	if len(diff) != 1 || diff[0] != BucketOf("common", 16) {
		t.Fatalf("stale version: diff = %v, want [%d]", diff, BucketOf("common", 16))
	}

	// Width mismatch diffs as everything.
	if got := DiffBuckets(make([]uint64, 8), make([]uint64, 16)); len(got) != 16 {
		t.Fatalf("width mismatch: %d buckets flagged, want 16", len(got))
	}
}

func TestSamplerCoversInventory(t *testing.T) {
	inv := []string{"a", "b", "c", "d", "e"}
	var s Sampler
	seen := map[string]int{}
	for round := 0; round < 5; round++ {
		for _, name := range s.Next(inv, 2) {
			seen[name]++
		}
	}
	// 5 rounds × 2 names over 5 items: every name exactly twice.
	for _, name := range inv {
		if seen[name] != 2 {
			t.Fatalf("uneven coverage: %v", seen)
		}
	}
}

func TestSamplerHandlesChurnAndEdges(t *testing.T) {
	var s Sampler
	if got := s.Next(nil, 4); got != nil {
		t.Fatalf("empty inventory returned %v", got)
	}
	inv := []string{"a", "b", "c"}
	if got := s.Next(inv, -1); len(got) != 3 {
		t.Fatalf("n<0 should return all: %v", got)
	}
	if got := s.Next(inv, 10); len(got) != 3 {
		t.Fatalf("n>len should return all: %v", got)
	}
	// Cursor survives the sampled name vanishing.
	s.Next(inv, 1) // cursor = "a"
	shrunk := []string{"b", "c"}
	if got := s.Next(shrunk, 1); len(got) != 1 || got[0] != "b" {
		t.Fatalf("cursor after churn: %v, want [b]", got)
	}
}

func TestTTFREpisodes(t *testing.T) {
	var tr TTFR
	t0 := time.Unix(100, 0)
	if tr.Last() != 0 || tr.Repairing(t0) != 0 {
		t.Fatal("zero TTFR not zero")
	}
	// Clean rounds before any divergence leave the gauge untouched.
	tr.Note(false, t0)
	if tr.Last() != 0 {
		t.Fatal("clean round completed an episode")
	}
	// Three divergent rounds, then convergence: episode spans first
	// divergence to the closing clean round.
	tr.Note(true, t0.Add(1*time.Second))
	tr.Note(true, t0.Add(3*time.Second))
	if got := tr.Repairing(t0.Add(4 * time.Second)); got != 3*time.Second {
		t.Fatalf("Repairing = %v", got)
	}
	tr.Note(false, t0.Add(5*time.Second))
	if got := tr.Last(); got != 4*time.Second {
		t.Fatalf("Last = %v", got)
	}
	if tr.Repairing(t0.Add(6*time.Second)) != 0 {
		t.Fatal("converged TTFR still repairing")
	}
	// Steady state keeps the last episode readable.
	tr.Note(false, t0.Add(7*time.Second))
	if got := tr.Last(); got != 4*time.Second {
		t.Fatalf("steady-state Last = %v", got)
	}
	// Nil receiver is inert.
	var nilT *TTFR
	nilT.Note(true, t0)
	if nilT.Last() != 0 || nilT.Repairing(t0) != 0 {
		t.Fatal("nil TTFR not inert")
	}
}
