// Package liveness implements the status word of paper §5.1: a bitmap with
// one bit per identifier slot indicating whether the corresponding node is
// live. Every live node maintains a copy and updates it from the
// register-live / register-dead broadcasts.
//
// The package also hosts the liveness-dependent query at the heart of
// FINDLIVENODE (paper §3): the largest VID at or below a bound whose node
// is alive, in the lookup tree identified by a complement value. Because
// offspring count is monotone in VID (Property 3), that node is exactly
// "the live node with the most offspring nodes" the algorithm asks for.
// Two implementations are provided — a straightforward descending scan and
// a word-at-a-time scan exploiting the fact that XOR by a constant permutes
// bits *within* 64-bit words once the high bits are handled per-block — and
// the tests prove them equivalent. The word scan is what makes join/leave
// recovery cheap at large m.
package liveness

import (
	"fmt"
	"math/bits"

	"lesslog/internal/bitops"
)

// Set is a status word over the 2^m identifier slots. The zero Set is
// unusable; construct with New.
type Set struct {
	m     int
	words []uint64
	count int
}

// New returns a status word for width m with every slot dead.
func New(m int) *Set {
	bitops.CheckWidth(m)
	n := bitops.Slots(m)
	return &Set{m: m, words: make([]uint64, (n+63)/64)}
}

// NewAllLive returns a status word with slots 0..n-1 live, the usual
// bootstrap for an n-node system (n <= 2^m).
func NewAllLive(m, n int) *Set {
	s := New(m)
	if n < 0 || n > bitops.Slots(m) {
		panic("liveness: node count out of range")
	}
	for p := 0; p < n; p++ {
		s.SetLive(bitops.PID(p))
	}
	return s
}

// M returns the identifier width.
func (s *Set) M() int { return s.m }

// Slots returns the number of identifier slots.
func (s *Set) Slots() int { return bitops.Slots(s.m) }

// SetLive marks p live. Idempotent.
func (s *Set) SetLive(p bitops.PID) {
	w, b := int(p)>>6, uint(p)&63
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// SetDead marks p dead. Idempotent.
func (s *Set) SetDead(p bitops.PID) {
	w, b := int(p)>>6, uint(p)&63
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// IsLive reports whether p is live.
func (s *Set) IsLive(p bitops.PID) bool {
	return s.words[int(p)>>6]&(1<<(uint(p)&63)) != 0
}

// LiveCount returns the number of live slots.
func (s *Set) LiveCount() int { return s.count }

// Clone returns an independent copy, as exchanged when a joining node
// fetches the status word from a neighbor (§5.1).
func (s *Set) Clone() *Set {
	return &Set{m: s.m, words: append([]uint64(nil), s.words...), count: s.count}
}

// Equal reports whether two status words agree slot-for-slot.
func (s *Set) Equal(o *Set) bool {
	if s.m != o.m {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEachLive calls fn for every live PID in ascending order.
func (s *Set) ForEachLive(fn func(p bitops.PID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(bitops.PID(wi<<6 + b))
			w &= w - 1
		}
	}
}

// LivePIDs returns all live PIDs ascending.
func (s *Set) LivePIDs() []bitops.PID {
	out := make([]bitops.PID, 0, s.count)
	s.ForEachLive(func(p bitops.PID) { out = append(out, p) })
	return out
}

// String summarizes the set for debugging.
func (s *Set) String() string {
	return fmt.Sprintf("liveness{m=%d live=%d/%d}", s.m, s.count, s.Slots())
}

// MaxLiveVIDScan returns the largest VID v <= atMost whose node
// PID = v XOR comp is live, by a plain descending scan. It reports false
// when no live node exists at or below the bound. This is the reference
// implementation of the FINDLIVENODE loop (paper §3).
func (s *Set) MaxLiveVIDScan(comp bitops.VID, atMost bitops.VID) (bitops.VID, bool) {
	for v := int64(atMost); v >= 0; v-- {
		if s.IsLive(bitops.PID(bitops.VID(v) ^ comp)) {
			return bitops.VID(v), true
		}
	}
	return 0, false
}

// MaxLiveVID is the word-at-a-time equivalent of MaxLiveVIDScan.
//
// Split a VID into a block index (bits 6..m-1) and a 6-bit offset. Within
// one block, PID = (block XOR compHigh) || (offset XOR compLow): the block
// maps to a single status-word word whose bits are permuted by XOR with the
// low 6 complement bits. xorPermute applies that permutation with masked
// shifts, after which the maximum live offset is a leading-zeros count.
func (s *Set) MaxLiveVID(comp bitops.VID, atMost bitops.VID) (bitops.VID, bool) {
	compLow := uint(comp) & 63
	compHigh := int(comp) >> 6
	topBlock := int(atMost) >> 6
	for block := topBlock; block >= 0; block-- {
		w := s.words[block^compHigh]
		if w == 0 {
			continue
		}
		w = xorPermute(w, compLow)
		if block == topBlock {
			keep := uint(atMost) & 63
			if keep != 63 {
				w &= 1<<(keep+1) - 1
			}
			if w == 0 {
				continue
			}
		}
		off := 63 - bits.LeadingZeros64(w)
		return bitops.VID(block<<6 + off), true
	}
	return 0, false
}

// xorPermute returns w' with bit i of w' equal to bit (i XOR k) of w, for
// k < 64, using a butterfly of masked swaps — one level per set bit of k.
func xorPermute(w uint64, k uint) uint64 {
	if k&1 != 0 {
		w = (w&0x5555555555555555)<<1 | (w&0xAAAAAAAAAAAAAAAA)>>1
	}
	if k&2 != 0 {
		w = (w&0x3333333333333333)<<2 | (w&0xCCCCCCCCCCCCCCCC)>>2
	}
	if k&4 != 0 {
		w = (w&0x0F0F0F0F0F0F0F0F)<<4 | (w&0xF0F0F0F0F0F0F0F0)>>4
	}
	if k&8 != 0 {
		w = (w&0x00FF00FF00FF00FF)<<8 | (w&0xFF00FF00FF00FF00)>>8
	}
	if k&16 != 0 {
		w = (w&0x0000FFFF0000FFFF)<<16 | (w&0xFFFF0000FFFF0000)>>16
	}
	if k&32 != 0 {
		w = w<<32 | w>>32
	}
	return w
}

// MaxLiveSubtreeVID returns, within the 2^b-way subtree split of §4, the
// largest subtree VID sv <= atMost in subtree sid whose node is live, in
// the tree with the given complement. It reports false when the subtree
// has no live node at or below the bound.
func (s *Set) MaxLiveSubtreeVID(comp bitops.VID, sid bitops.VID, atMost bitops.VID, b int) (bitops.VID, bool) {
	bitops.CheckSplit(s.m, b)
	for sv := int64(atMost); sv >= 0; sv-- {
		v := bitops.ComposeVID(bitops.VID(sv), sid, b)
		if s.IsLive(bitops.PID(v ^ comp)) {
			return bitops.VID(sv), true
		}
	}
	return 0, false
}
