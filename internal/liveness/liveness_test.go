package liveness

import (
	"testing"
	"testing/quick"

	"lesslog/internal/bitops"
	"lesslog/internal/xrand"
)

func TestSetClearCount(t *testing.T) {
	s := New(10)
	if s.LiveCount() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.SetLive(5)
	s.SetLive(5) // idempotent
	s.SetLive(1000)
	if s.LiveCount() != 2 || !s.IsLive(5) || !s.IsLive(1000) || s.IsLive(6) {
		t.Fatalf("unexpected state: %v", s)
	}
	s.SetDead(5)
	s.SetDead(5)
	if s.LiveCount() != 1 || s.IsLive(5) {
		t.Fatalf("clear failed: %v", s)
	}
}

func TestNewAllLive(t *testing.T) {
	s := NewAllLive(4, 14)
	if s.LiveCount() != 14 {
		t.Fatalf("LiveCount = %d", s.LiveCount())
	}
	for p := bitops.PID(0); p < 14; p++ {
		if !s.IsLive(p) {
			t.Fatalf("P(%d) should be live", p)
		}
	}
	if s.IsLive(14) || s.IsLive(15) {
		t.Fatal("P(14)/P(15) should be dead")
	}
}

func TestNewAllLivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAllLive(4, 17) did not panic")
		}
	}()
	NewAllLive(4, 17)
}

func TestCloneAndEqual(t *testing.T) {
	s := NewAllLive(6, 40)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone differs")
	}
	c.SetDead(3)
	if s.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if !s.IsLive(3) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestForEachLiveAscending(t *testing.T) {
	s := New(8)
	want := []bitops.PID{0, 7, 63, 64, 65, 200, 255}
	for _, p := range want {
		s.SetLive(p)
	}
	got := s.LivePIDs()
	if len(got) != len(want) {
		t.Fatalf("LivePIDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LivePIDs = %v, want %v", got, want)
		}
	}
}

func TestMaxLiveVIDAgainstScan(t *testing.T) {
	r := xrand.New(99)
	for _, m := range []int{1, 3, 6, 7, 10} {
		for trial := 0; trial < 50; trial++ {
			s := New(m)
			for p := 0; p < bitops.Slots(m); p++ {
				if r.Bool(0.4) {
					s.SetLive(bitops.PID(p))
				}
			}
			comp := bitops.VID(r.Intn(bitops.Slots(m)))
			for probe := 0; probe < 20; probe++ {
				atMost := bitops.VID(r.Intn(bitops.Slots(m)))
				v1, ok1 := s.MaxLiveVIDScan(comp, atMost)
				v2, ok2 := s.MaxLiveVID(comp, atMost)
				if ok1 != ok2 || v1 != v2 {
					t.Fatalf("m=%d comp=%b atMost=%b: scan (%b,%v) vs word (%b,%v)",
						m, comp, atMost, v1, ok1, v2, ok2)
				}
			}
		}
	}
}

func TestMaxLiveVIDEmptyAndFull(t *testing.T) {
	s := New(6)
	if _, ok := s.MaxLiveVID(13, bitops.Mask(6)); ok {
		t.Fatal("empty set reported a live VID")
	}
	full := NewAllLive(6, 64)
	v, ok := full.MaxLiveVID(13, bitops.Mask(6))
	if !ok || v != bitops.Mask(6) {
		t.Fatalf("full set max VID = %b, %v", v, ok)
	}
	v, ok = full.MaxLiveVID(13, 17)
	if !ok || v != 17 {
		t.Fatalf("bounded max VID = %b, want 17", v)
	}
}

func TestXorPermute(t *testing.T) {
	f := func(w uint64, rawK uint8) bool {
		k := uint(rawK) & 63
		got := xorPermute(w, k)
		for i := uint(0); i < 64; i++ {
			bit := (w >> (i ^ k)) & 1
			if (got>>i)&1 != bit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLiveSubtreeVID(t *testing.T) {
	// m=4, b=2: subtree sid holds VIDs {sv<<2 | sid}. Verify against a
	// brute-force search for random liveness patterns.
	const m, b = 4, 2
	r := xrand.New(5)
	for trial := 0; trial < 200; trial++ {
		s := New(m)
		for p := 0; p < bitops.Slots(m); p++ {
			if r.Bool(0.5) {
				s.SetLive(bitops.PID(p))
			}
		}
		comp := bitops.VID(r.Intn(bitops.Slots(m)))
		sid := bitops.VID(r.Intn(4))
		atMost := bitops.VID(r.Intn(4))
		wantOK := false
		var want bitops.VID
		for sv := int(atMost); sv >= 0; sv-- {
			v := bitops.ComposeVID(bitops.VID(sv), sid, b)
			if s.IsLive(bitops.PID(v ^ comp)) {
				want, wantOK = bitops.VID(sv), true
				break
			}
		}
		got, ok := s.MaxLiveSubtreeVID(comp, sid, atMost, b)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("trial %d: got (%b,%v), want (%b,%v)", trial, got, ok, want, wantOK)
		}
	}
}

func BenchmarkMaxLiveVIDScan(b *testing.B) {
	benchMaxLive(b, func(s *Set, comp, atMost bitops.VID) (bitops.VID, bool) {
		return s.MaxLiveVIDScan(comp, atMost)
	})
}

func BenchmarkMaxLiveVIDWord(b *testing.B) {
	benchMaxLive(b, func(s *Set, comp, atMost bitops.VID) (bitops.VID, bool) {
		return s.MaxLiveVID(comp, atMost)
	})
}

func benchMaxLive(b *testing.B, fn func(*Set, bitops.VID, bitops.VID) (bitops.VID, bool)) {
	const m = 16
	r := xrand.New(1)
	s := New(m)
	// Sparse liveness makes the search walk far: 1/1024 slots live.
	for p := 0; p < bitops.Slots(m); p += 1024 {
		s.SetLive(bitops.PID(p))
	}
	comps := make([]bitops.VID, 256)
	for i := range comps {
		comps[i] = bitops.VID(r.Intn(bitops.Slots(m)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(s, comps[i&255], bitops.Mask(m))
	}
}
