package liveness

// Model-based property test: the bitmap must track a reference
// map[PID]bool through arbitrary set/clear sequences, and its queries
// must agree with brute-force scans of the model.

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/xrand"
)

func TestSetMatchesModel(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 30; trial++ {
		m := 3 + rng.Intn(6)
		n := bitops.Slots(m)
		s := New(m)
		model := map[bitops.PID]bool{}
		for step := 0; step < 500; step++ {
			p := bitops.PID(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				s.SetLive(p)
				model[p] = true
			case 1:
				s.SetDead(p)
				delete(model, p)
			case 2:
				if s.IsLive(p) != model[p] {
					t.Fatalf("IsLive(%d) mismatch", p)
				}
			}
			if s.LiveCount() != len(model) {
				t.Fatalf("step %d: LiveCount=%d model=%d", step, s.LiveCount(), len(model))
			}
			if step%29 == 0 {
				// Full agreement including iteration order.
				var got []bitops.PID
				s.ForEachLive(func(q bitops.PID) { got = append(got, q) })
				if len(got) != len(model) {
					t.Fatalf("iteration covers %d of %d", len(got), len(model))
				}
				for i, q := range got {
					if !model[q] {
						t.Fatalf("iterated dead PID %d", q)
					}
					if i > 0 && got[i-1] >= q {
						t.Fatal("iteration not ascending")
					}
				}
				// Max-live-VID agrees with a model scan.
				comp := bitops.VID(rng.Intn(n))
				atMost := bitops.VID(rng.Intn(n))
				wantOK := false
				var want bitops.VID
				for v := int(atMost); v >= 0; v-- {
					if model[bitops.PID(bitops.VID(v)^comp)] {
						want, wantOK = bitops.VID(v), true
						break
					}
				}
				got2, ok2 := s.MaxLiveVID(comp, atMost)
				if ok2 != wantOK || (ok2 && got2 != want) {
					t.Fatalf("MaxLiveVID=(%v,%v) model=(%v,%v)", got2, ok2, want, wantOK)
				}
			}
		}
	}
}
