package ptree

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/xrand"
)

// randomView builds a view with random root, b and liveness.
func randomView(rng *xrand.Rand, m int) (View, *liveness.Set) {
	live := liveness.New(m)
	for p := 0; p < bitops.Slots(m); p++ {
		if rng.Bool(0.6) {
			live.SetLive(bitops.PID(p))
		}
	}
	b := rng.Intn(m) // 0..m-1
	root := bitops.PID(rng.Intn(bitops.Slots(m)))
	return NewView(root, live, b), live
}

func TestPropertyHasLiveGreaterVID(t *testing.T) {
	rng := xrand.New(21)
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(5)
		v, live := randomView(rng, m)
		for p := bitops.PID(0); p < bitops.PID(bitops.Slots(m)); p++ {
			want := false
			for q := bitops.PID(0); q < bitops.PID(bitops.Slots(m)); q++ {
				if live.IsLive(q) && v.SubtreeID(q) == v.SubtreeID(p) &&
					v.SubtreeVID(q) > v.SubtreeVID(p) {
					want = true
					break
				}
			}
			if got := v.HasLiveGreaterVID(p); got != want {
				t.Fatalf("trial %d m=%d b=%d: HasLiveGreaterVID(P(%d)) = %v, want %v",
					trial, m, v.B, p, got, want)
			}
		}
	}
}

func TestPropertyFindLiveNodeIsSubtreeMax(t *testing.T) {
	rng := xrand.New(22)
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(5)
		v, live := randomView(rng, m)
		for s := bitops.PID(0); s < bitops.PID(bitops.Slots(m)); s++ {
			got, ok := v.FindLiveNode(s)
			// Brute force: the live node with the largest subtree VID at
			// or below s's, within s's subtree.
			want, wantOK := bitops.PID(0), false
			for q := bitops.PID(0); q < bitops.PID(bitops.Slots(m)); q++ {
				if !live.IsLive(q) || v.SubtreeID(q) != v.SubtreeID(s) {
					continue
				}
				if v.SubtreeVID(q) > v.SubtreeVID(s) {
					continue
				}
				if !wantOK || v.SubtreeVID(q) > v.SubtreeVID(want) {
					want, wantOK = q, true
				}
			}
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("trial %d m=%d b=%d: FindLiveNode(P(%d)) = (P(%d),%v), want (P(%d),%v)",
					trial, m, v.B, s, got, ok, want, wantOK)
			}
		}
	}
}

func TestPropertyRouteStaysInSubtreeAndBounded(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(5)
		v, live := randomView(rng, m)
		live.ForEachLive(func(origin bitops.PID) {
			stops := v.PathLiveStops(origin)
			if len(stops) == 0 || stops[0] != origin {
				t.Fatalf("path from live P(%d) must start there: %v", origin, stops)
			}
			if len(stops)-1 > m {
				t.Fatalf("path longer than m: %v", stops)
			}
			prev := v.SubtreeVID(origin)
			for i, s := range stops {
				if !live.IsLive(s) {
					t.Fatalf("dead stop P(%d) on path %v", s, stops)
				}
				if v.SubtreeID(s) != v.SubtreeID(origin) {
					t.Fatalf("path escaped the subtree: %v", stops)
				}
				if i > 0 {
					if sv := v.SubtreeVID(s); sv <= prev {
						t.Fatalf("path not strictly ascending in VID: %v", stops)
					} else {
						prev = sv
					}
				}
			}
		})
	}
}

func TestPropertyPrimaryHolderConsistent(t *testing.T) {
	// The primary holder must equal FindLiveNode from the subtree root
	// position, and HasLiveGreaterVID(primary) must always be false.
	rng := xrand.New(24)
	for trial := 0; trial < 300; trial++ {
		m := 3 + rng.Intn(5)
		v, live := randomView(rng, m)
		_ = live
		for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(v.B)); sid++ {
			h, ok := v.PrimaryHolder(sid)
			root := v.SubtreeRoot(sid)
			h2, ok2 := v.FindLiveNode(root)
			if ok != ok2 || (ok && h != h2) {
				t.Fatalf("trial %d: PrimaryHolder(%b)=(%d,%v) vs FindLiveNode(root)=(%d,%v)",
					trial, sid, h, ok, h2, ok2)
			}
			if ok && v.HasLiveGreaterVID(h) {
				t.Fatalf("trial %d: a live node outranks the primary P(%d)", trial, h)
			}
		}
	}
}

func TestPropertyExpandedListDisjointSubtrees(t *testing.T) {
	// Members of an expanded children list head disjoint subtrees: no
	// member is an ancestor of another (in subtree terms). This is what
	// makes the update broadcast visit each holder exactly once.
	rng := xrand.New(25)
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(4)
		v, _ := randomView(rng, m)
		for p := bitops.PID(0); p < bitops.PID(bitops.Slots(m)); p++ {
			list := v.ExpandedChildrenList(p)
			mb := v.M() - v.B
			for i, a := range list {
				for j, b := range list {
					if i == j {
						continue
					}
					if bitops.IsAncestor(v.SubtreeVID(a), v.SubtreeVID(b), mb) {
						t.Fatalf("trial %d: P(%d) is ancestor of P(%d) in list %v",
							trial, a, b, list)
					}
				}
			}
		}
	}
}
