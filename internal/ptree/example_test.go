package ptree_test

import (
	"fmt"

	"lesslog/internal/liveness"
	"lesslog/internal/ptree"
)

// The paper's §2.2 example: the children list of P(4) in a complete
// 16-node system.
func ExampleView_ExpandedChildrenList() {
	live := liveness.NewAllLive(4, 16)
	v := ptree.NewView(4, live, 0)
	fmt.Println(v.ExpandedChildrenList(4))

	// With P(0) and P(5) dead (the paper's Figure 3), dead children are
	// recursively replaced by their own children lists.
	live.SetDead(0)
	live.SetDead(5)
	fmt.Println(v.ExpandedChildrenList(4))
	// Output:
	// [5 6 0 12]
	// [6 7 1 12 13 8]
}

// The §2.1 routing chain: a request at P(8) for a file anchored at P(4)
// forwards P(8) → P(0) → P(4).
func ExampleView_PathLiveStops() {
	live := liveness.NewAllLive(4, 16)
	v := ptree.NewView(4, live, 0)
	fmt.Println(v.PathLiveStops(8))
	// Output: [8 0 4]
}

// FINDLIVENODE from §3: with the target P(4) and its best stand-in P(5)
// dead, the file's placement falls to P(6), the live node with the most
// offspring in P(4)'s lookup tree.
func ExampleView_FindLiveNode() {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	v := ptree.NewView(4, live, 0)
	p, ok := v.FindLiveNode(4)
	fmt.Println(p, ok)
	// Output: 6 true
}
