package ptree

import (
	"reflect"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/xrand"
)

// fullView returns the tree of P(root) in a complete 16-node system.
func fullView(root bitops.PID) View {
	return NewView(root, liveness.NewAllLive(4, 16), 0)
}

// fig3View returns the paper's Figure 3 world: the tree of P(4) in a
// 14-node system where P(0) and P(5) are dead.
func fig3View() View {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(0)
	live.SetDead(5)
	return NewView(4, live, 0)
}

func TestPaperFigure2Routing(t *testing.T) {
	v := fullView(4)
	// P(8) -> P(0) -> P(4), the §2.1 forwarding chain.
	p, ok := v.AliveAncestor(8)
	if !ok || p != 0 {
		t.Fatalf("parent of P(8) = P(%d), want P(0)", p)
	}
	p, ok = v.AliveAncestor(0)
	if !ok || p != 4 {
		t.Fatalf("parent of P(0) = P(%d), want P(4)", p)
	}
	if _, ok = v.AliveAncestor(4); ok {
		t.Fatal("root must have no ancestor")
	}
	stops := v.PathLiveStops(8)
	want := []bitops.PID{8, 0, 4}
	if !reflect.DeepEqual(stops, want) {
		t.Fatalf("path from P(8) = %v, want %v", stops, want)
	}
}

func TestPaperChildrenListComplete(t *testing.T) {
	// §2.2: the children list of P(4) in a complete 16-node system is
	// (P(5), P(6), P(0), P(12)).
	v := fullView(4)
	got := v.ExpandedChildrenList(4)
	want := []bitops.PID{5, 6, 0, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("children list of P(4) = %v, want %v", got, want)
	}
}

func TestPaperFigure3ChildrenList(t *testing.T) {
	// §3: with P(0) and P(5) dead, the children list of P(4) is
	// (P(6), P(7), P(1), P(12), P(13), P(8)), sorted by VID.
	v := fig3View()
	got := v.ExpandedChildrenList(4)
	want := []bitops.PID{6, 7, 1, 12, 13, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("children list of P(4) = %v, want %v", got, want)
	}
}

func TestPaperSection3ReplicationExample(t *testing.T) {
	// §3: P(4) and P(5) dead, 4 = ψ(f). Every request for f is forwarded
	// to P(6): P(6) must be the primary holder, and no live node has a
	// larger VID than P(6) in the tree of P(4).
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	v := NewView(4, live, 0)
	h, ok := v.PrimaryHolder(0)
	if !ok || h != 6 {
		t.Fatalf("primary holder = P(%d), want P(6)", h)
	}
	if v.HasLiveGreaterVID(6) {
		t.Fatal("no live node should outrank P(6)")
	}
	if !v.HasLiveGreaterVID(7) {
		t.Fatal("P(6) outranks P(7)")
	}
	// §5.1 join example: P(5) joining has VID 1110 > VID(P(6)) = 1101.
	if v.VID(5) != 0b1110 || v.VID(6) != 0b1101 {
		t.Fatalf("VIDs: P(5)=%04b P(6)=%04b", v.VID(5), v.VID(6))
	}
}

func TestFindLiveNode(t *testing.T) {
	v := fig3View()
	// A live start returns itself.
	if p, ok := v.FindLiveNode(7); !ok || p != 7 {
		t.Fatalf("FindLiveNode(7) = %d, %v", p, ok)
	}
	// Dead P(5) (VID 1110): the next live VID below is 1101 -> P(6).
	if p, ok := v.FindLiveNode(5); !ok || p != 6 {
		t.Fatalf("FindLiveNode(5) = P(%d), want P(6)", p)
	}
	// Dead P(0) (VID 1011): next live below is 1010 -> P(1).
	if p, ok := v.FindLiveNode(0); !ok || p != 1 {
		t.Fatalf("FindLiveNode(0) = P(%d), want P(1)", p)
	}
	// All-dead system.
	dead := liveness.New(4)
	dv := NewView(4, dead, 0)
	if _, ok := dv.FindLiveNode(4); ok {
		t.Fatal("FindLiveNode on a dead system must fail")
	}
}

func TestAliveAncestorBypassesDead(t *testing.T) {
	v := fig3View()
	// In the tree of P(4): P(8) has VID 0011, parent VID 1011 = P(0),
	// which is dead; grandparent 1111 = P(4), alive.
	p, ok := v.AliveAncestor(8)
	if !ok || p != 4 {
		t.Fatalf("AliveAncestor(P(8)) = P(%d), want P(4)", p)
	}
	// Path skips the dead node entirely.
	want := []bitops.PID{8, 4}
	if got := v.PathLiveStops(8); !reflect.DeepEqual(got, want) {
		t.Fatalf("path = %v, want %v", got, want)
	}
}

func TestRouteToFirstStopsAtCopy(t *testing.T) {
	v := fullView(4)
	holders := map[bitops.PID]bool{0: true}
	stop, found := v.RouteToFirst(8, func(q bitops.PID) bool { return holders[q] })
	if !found || stop != 0 {
		t.Fatalf("route stopped at P(%d), found=%v; want P(0)", stop, found)
	}
	// Origin holding a copy stops immediately.
	holders[8] = true
	stop, found = v.RouteToFirst(8, func(q bitops.PID) bool { return holders[q] })
	if !found || stop != 8 {
		t.Fatalf("route stopped at P(%d), want P(8)", stop)
	}
}

func TestVIDPIDRoundTrip(t *testing.T) {
	v := fullView(11)
	for p := bitops.PID(0); p < 16; p++ {
		if v.PID(v.VID(p)) != p {
			t.Fatalf("round trip failed for P(%d)", p)
		}
	}
	if v.VID(11) != bitops.RootVID(4) {
		t.Fatal("root must occupy the all-ones VID")
	}
}

func TestForEachDescendantMatchesBruteForce(t *testing.T) {
	r := xrand.New(3)
	for _, cfg := range []struct{ m, b int }{{4, 0}, {5, 0}, {6, 2}, {8, 3}} {
		live := liveness.NewAllLive(cfg.m, bitops.Slots(cfg.m))
		root := bitops.PID(r.Intn(bitops.Slots(cfg.m)))
		v := NewView(root, live, cfg.b)
		for p := bitops.PID(0); p < bitops.PID(bitops.Slots(cfg.m)); p++ {
			got := map[bitops.PID]bool{}
			v.ForEachDescendant(p, func(q bitops.PID) {
				if got[q] {
					t.Fatalf("descendant P(%d) visited twice", q)
				}
				got[q] = true
			})
			// Brute force: walk subtree children recursively.
			want := map[bitops.PID]bool{}
			var walk func(q bitops.PID)
			walk = func(q bitops.PID) {
				for _, c := range v.Children(q) {
					want[c] = true
					walk(c)
				}
			}
			walk(p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("m=%d b=%d root=%d p=%d: descendants %v, want %v",
					cfg.m, cfg.b, root, p, got, want)
			}
		}
	}
}

func TestLiveDescendantsAndProportions(t *testing.T) {
	v := fig3View()
	// P(6) has VID 1101 in the tree of P(4): subtree {1101, 1001, 0101,
	// 0001} -> PIDs {6, 2, 14, 10}, descendants {2, 14, 10}, all live.
	if got := v.LiveDescendants(6); got != 3 {
		t.Fatalf("LiveDescendants(P(6)) = %d, want 3", got)
	}
	// Root P(4): 15 positions below, 2 dead.
	if got := v.LiveDescendants(4); got != 13 {
		t.Fatalf("LiveDescendants(P(4)) = %d, want 13", got)
	}
	if got := v.LiveInSubtree(0); got != 14 {
		t.Fatalf("LiveInSubtree = %d, want 14", got)
	}
}

func TestSubtreeSplitOperations(t *testing.T) {
	// Figure 4's world: the tree of P(4) in a complete 16-node system
	// with b = 2 -> four 4-position subtrees.
	live := liveness.NewAllLive(4, 16)
	v := NewView(4, live, 2)
	seen := map[bitops.VID]int{}
	for p := bitops.PID(0); p < 16; p++ {
		seen[v.SubtreeID(p)]++
	}
	if len(seen) != 4 {
		t.Fatalf("subtree IDs = %v", seen)
	}
	for sid, n := range seen {
		if n != 4 {
			t.Fatalf("subtree %02b has %d members", sid, n)
		}
	}
	// Each subtree root has subtree VID 11 and no parent.
	for sid := bitops.VID(0); sid < 4; sid++ {
		r := v.SubtreeRoot(sid)
		if v.SubtreeVID(r) != 0b11 {
			t.Fatalf("subtree %02b root svid = %b", sid, v.SubtreeVID(r))
		}
		if _, ok := v.Parent(r); ok {
			t.Fatalf("subtree root P(%d) must have no parent", r)
		}
		if h, ok := v.PrimaryHolder(sid); !ok || h != r {
			t.Fatalf("primary holder of full subtree %02b = P(%d), want P(%d)", sid, h, r)
		}
	}
	// Routing never leaves the subtree.
	for p := bitops.PID(0); p < 16; p++ {
		sid := v.SubtreeID(p)
		for _, stop := range v.PathLiveStops(p) {
			if v.SubtreeID(stop) != sid {
				t.Fatalf("path from P(%d) escaped subtree %02b", p, sid)
			}
		}
	}
}

func TestSubtreePrimaryWithDeadRoot(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	v := NewView(4, live, 2)
	sid := v.SubtreeID(4) // the root's own subtree
	live.SetDead(4)
	h, ok := v.PrimaryHolder(sid)
	if !ok {
		t.Fatal("subtree with live members reported dead")
	}
	if !live.IsLive(h) || v.SubtreeID(h) != sid {
		t.Fatalf("primary holder P(%d) invalid", h)
	}
	// It must be the max live subtree VID.
	for p := bitops.PID(0); p < 16; p++ {
		if live.IsLive(p) && v.SubtreeID(p) == sid && v.SubtreeVID(p) > v.SubtreeVID(h) {
			t.Fatalf("P(%d) outranks claimed primary P(%d)", p, h)
		}
	}
}

func TestExpandedChildrenListProperties(t *testing.T) {
	// Randomized: the expanded children list must (1) contain only live
	// nodes, (2) be sorted by descending VID, (3) cover exactly the live
	// nodes whose first live *strict* ancestor is p (when p is the walk
	// base), for live p.
	r := xrand.New(17)
	for trial := 0; trial < 100; trial++ {
		m := 3 + r.Intn(4)
		live := liveness.New(m)
		for q := 0; q < bitops.Slots(m); q++ {
			if r.Bool(0.7) {
				live.SetLive(bitops.PID(q))
			}
		}
		root := bitops.PID(r.Intn(bitops.Slots(m)))
		v := NewView(root, live, 0)
		p := bitops.PID(r.Intn(bitops.Slots(m)))
		list := v.ExpandedChildrenList(p)
		seen := map[bitops.PID]bool{}
		for i, c := range list {
			if !live.IsLive(c) {
				t.Fatalf("dead node P(%d) in children list", c)
			}
			if seen[c] {
				t.Fatalf("duplicate P(%d) in children list", c)
			}
			seen[c] = true
			if i > 0 && v.VID(list[i-1]) <= v.VID(c) {
				t.Fatalf("children list not VID-descending: %v", list)
			}
		}
		// Membership: live q is in the list iff q is a proper descendant
		// of p and every node strictly between q and p is dead.
		vm := v.M()
		for q := bitops.PID(0); q < bitops.PID(bitops.Slots(m)); q++ {
			if !live.IsLive(q) || q == p {
				continue
			}
			if !bitops.IsAncestor(v.VID(p), v.VID(q), vm) {
				if seen[q] {
					t.Fatalf("non-descendant P(%d) in children list", q)
				}
				continue
			}
			between := true // all strictly-between nodes dead
			x := v.VID(q)
			for {
				pv, _ := bitops.ParentVID(x, vm)
				if pv == v.VID(p) {
					break
				}
				if live.IsLive(v.PID(pv)) {
					between = false
					break
				}
				x = pv
			}
			if seen[q] != between {
				t.Fatalf("membership of P(%d) = %v, want %v (trial %d)", q, seen[q], between, trial)
			}
		}
	}
}

func BenchmarkExpandedChildrenList(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	r := xrand.New(8)
	for i := 0; i < 300; i++ {
		live.SetDead(bitops.PID(r.Intn(1024)))
	}
	v := NewView(4, live, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.ExpandedChildrenList(4)
	}
}

func BenchmarkAliveAncestor(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	v := NewView(4, live, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AliveAncestor(bitops.PID(i & 1023))
	}
}
