// Package ptree provides views of the physical lookup trees of a LessLog
// system (paper §2.1, §3 and §4): the image of the virtual binomial tree
// under XOR with the root's complement, combined with a liveness status
// word and, for the fault-tolerant model, a 2^b-way subtree split.
//
// A View answers every tree-shaped question the file operations need:
// parent routing with dead-node bypass (the augmented FP of §3), the
// FINDLIVENODE search, the expanded children list used by replication, and
// the live-population counts behind the proportional children-list choice.
// All operations work *within a subtree*; with b = 0 there is exactly one
// subtree — the whole tree — and the view reduces to the basic/advanced
// models of §2 and §3.
package ptree

import (
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
)

// View is a read-only view of the physical lookup tree rooted at Root,
// split into 2^B subtrees, with liveness supplied by Live. Views are cheap
// value types: create them on the fly per target node.
type View struct {
	Root bitops.PID
	Live *liveness.Set
	B    int

	m    int
	comp bitops.VID
}

// NewView returns the view of the lookup tree rooted at root. b is the
// number of fault-tolerance bits (0 for the basic and advanced models).
func NewView(root bitops.PID, live *liveness.Set, b int) View {
	m := live.M()
	bitops.CheckSplit(m, b) // b == 0 is always valid since m >= 1
	return View{Root: root, Live: live, B: b, m: m, comp: bitops.Complement(root, m)}
}

// M returns the identifier width.
func (v View) M() int { return v.m }

// VID returns p's virtual identifier in this tree (Property 4).
func (v View) VID(p bitops.PID) bitops.VID { return bitops.VID(p) ^ v.comp }

// PID returns the node occupying virtual position vid (Property 4).
func (v View) PID(vid bitops.VID) bitops.PID { return bitops.PID(vid ^ v.comp) }

// SubtreeID returns the subtree identifier of p: the last B bits of its
// VID (§4). With B == 0 every node is in subtree 0.
func (v View) SubtreeID(p bitops.PID) bitops.VID {
	return bitops.SubtreeID(v.VID(p), v.B)
}

// SubtreeVID returns p's position within its subtree.
func (v View) SubtreeVID(p bitops.PID) bitops.VID {
	return bitops.SubtreeVID(v.VID(p), v.B)
}

// SubtreeRoot returns the node at the root position of subtree sid,
// regardless of liveness.
func (v View) SubtreeRoot(sid bitops.VID) bitops.PID {
	return v.PID(bitops.SubtreeRootVID(sid, v.m, v.B))
}

// Parent returns p's parent within its subtree (Property 2 on the subtree
// VID) and whether p has one, ignoring liveness.
func (v View) Parent(p bitops.PID) (bitops.PID, bool) {
	pv, ok := bitops.SubtreeParentVID(v.VID(p), v.m, v.B)
	if !ok {
		return 0, false
	}
	return v.PID(pv), true
}

// AliveAncestor implements the augmented FP of §3: the first *live* proper
// ancestor of p within its subtree. It reports false when every remaining
// ancestor up to the subtree root is dead.
func (v View) AliveAncestor(p bitops.PID) (bitops.PID, bool) {
	vid := v.VID(p)
	for {
		pv, ok := bitops.SubtreeParentVID(vid, v.m, v.B)
		if !ok {
			return 0, false
		}
		if q := v.PID(pv); v.Live.IsLive(q) {
			return q, true
		}
		vid = pv
	}
}

// Children returns p's children within its subtree in descending VID order,
// ignoring liveness.
func (v View) Children(p bitops.PID) []bitops.PID {
	vids := bitops.AppendSubtreeChildrenVIDs(nil, v.VID(p), v.m, v.B)
	out := make([]bitops.PID, len(vids))
	for i, cv := range vids {
		out[i] = v.PID(cv)
	}
	return out
}

// FindLiveNode implements FINDLIVENODE(s, r) from §3, restricted to s's
// subtree as §4 prescribes: if P(s) is alive it is returned; otherwise the
// live node with the largest subtree VID strictly below s's. By Property 3
// that is the live node with the most offspring, the node ADVANCEDINSERTFILE
// targets. It reports false when the subtree has no live node at or below
// s's position.
func (v View) FindLiveNode(s bitops.PID) (bitops.PID, bool) {
	if v.Live.IsLive(s) {
		return s, true
	}
	sv := v.SubtreeVID(s)
	if sv == 0 {
		return 0, false
	}
	return v.maxLiveAtOrBelow(v.SubtreeID(s), sv-1)
}

// PrimaryHolder returns the node that holds the primary copy of a file
// targeted at this tree's root, within subtree sid: the root if alive,
// else the live node with the largest subtree VID. False when the subtree
// is entirely dead.
func (v View) PrimaryHolder(sid bitops.VID) (bitops.PID, bool) {
	return v.maxLiveAtOrBelow(sid, bitops.Mask(v.m-v.B))
}

// maxLiveAtOrBelow finds the live node with the largest subtree VID at or
// below bound in subtree sid, using the word-scanned status-word query when
// the whole tree is one subtree.
func (v View) maxLiveAtOrBelow(sid, bound bitops.VID) (bitops.PID, bool) {
	if v.B == 0 {
		vid, ok := v.Live.MaxLiveVID(v.comp, bound)
		if !ok {
			return 0, false
		}
		return v.PID(vid), true
	}
	sv, ok := v.Live.MaxLiveSubtreeVID(v.comp, sid, bound, v.B)
	if !ok {
		return 0, false
	}
	return v.PID(bitops.ComposeVID(sv, sid, v.B)), true
}

// HasLiveGreaterVID reports whether some live node in p's subtree has a
// strictly larger subtree VID than p — the predicate the advanced model's
// replication and the join/leave rules test (§3, §5). p's own liveness is
// irrelevant to the answer.
func (v View) HasLiveGreaterVID(p bitops.PID) bool {
	q, ok := v.maxLiveAtOrBelow(v.SubtreeID(p), bitops.Mask(v.m-v.B))
	return ok && v.SubtreeVID(q) > v.SubtreeVID(p)
}

// ExpandedChildrenList returns the children list of §3: p's live children
// together with the (recursively expanded) children lists of p's dead
// children, the whole list sorted by descending VID — which by Property 3
// is descending offspring count. With no dead nodes this is exactly the
// §2.2 children list. The worked example of §3 — the children list of
// P(4) with P(0) and P(5) dead being (P(6), P(7), P(1), P(12), P(13),
// P(8)) — is reproduced in the tests.
func (v View) ExpandedChildrenList(p bitops.PID) []bitops.PID {
	list := v.appendExpanded(nil, v.VID(p))
	sort.Slice(list, func(i, j int) bool { return v.VID(list[i]) > v.VID(list[j]) })
	return list
}

func (v View) appendExpanded(dst []bitops.PID, vid bitops.VID) []bitops.PID {
	for _, cv := range bitops.AppendSubtreeChildrenVIDs(nil, vid, v.m, v.B) {
		if c := v.PID(cv); v.Live.IsLive(c) {
			dst = append(dst, c)
		} else {
			dst = v.appendExpanded(dst, cv)
		}
	}
	return dst
}

// ForEachDescendant calls fn for every position in p's proper descendant
// set within its subtree, live or dead. The descendant positions of a node
// whose subtree VID is R·0·x (R the leading-ones run) are exactly Y·0·x for
// all Y, so the walk enumerates 2^LeadingOnes - 1 positions directly.
func (v View) ForEachDescendant(p bitops.PID, fn func(q bitops.PID)) {
	sv := v.SubtreeVID(p)
	sid := v.SubtreeID(p)
	mb := v.m - v.B
	lo := bitops.LeadingOnes(sv, mb)
	if lo == 0 {
		return
	}
	tail := sv &^ (bitops.Mask(mb) << uint(mb-lo)) // bits below the run
	for y := bitops.VID(0); y < bitops.VID(1)<<uint(lo); y++ {
		dsv := y<<uint(mb-lo) | tail
		if dsv == sv {
			continue
		}
		fn(v.PID(bitops.ComposeVID(dsv, sid, v.B)))
	}
}

// LiveDescendants counts the live proper descendants of p within its
// subtree — the "offspring nodes of P(k)" side of the proportional choice
// in §3's replication rule.
func (v View) LiveDescendants(p bitops.PID) int {
	n := 0
	v.ForEachDescendant(p, func(q bitops.PID) {
		if v.Live.IsLive(q) {
			n++
		}
	})
	return n
}

// LiveInSubtree counts the live nodes in subtree sid.
func (v View) LiveInSubtree(sid bitops.VID) int {
	if v.B == 0 {
		return v.Live.LiveCount()
	}
	n := 0
	mask := bitops.VID(1)<<uint(v.B) - 1
	v.Live.ForEachLive(func(p bitops.PID) {
		if v.VID(p)&mask == sid {
			n++
		}
	})
	return n
}

// RouteToFirst walks the §3 getting-file path from origin toward the
// subtree root: origin itself, then successive live ancestors. It calls
// visit at each live stop and stops early when visit returns true (a copy
// was found). It returns the PID where the walk stopped and whether visit
// ever returned true. Dead positions are bypassed exactly as the augmented
// FP prescribes.
func (v View) RouteToFirst(origin bitops.PID, visit func(q bitops.PID) bool) (bitops.PID, bool) {
	cur := origin
	if v.Live.IsLive(cur) && visit(cur) {
		return cur, true
	}
	for {
		next, ok := v.AliveAncestor(cur)
		if !ok {
			return cur, false
		}
		cur = next
		if visit(cur) {
			return cur, true
		}
	}
}

// PathLiveStops returns the sequence of live nodes a request issued at
// origin traverses (origin first if live), ending at the subtree root or
// the last live ancestor. Used for hop accounting and by the simulator.
func (v View) PathLiveStops(origin bitops.PID) []bitops.PID {
	var stops []bitops.PID
	v.RouteToFirst(origin, func(q bitops.PID) bool {
		stops = append(stops, q)
		return false
	})
	return stops
}
