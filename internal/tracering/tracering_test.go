package tracering

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"lesslog/internal/msg"
)

func TestSamplerRate(t *testing.T) {
	s := NewSampler(8)
	hits := 0
	for i := 0; i < 800; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-8 sampler hit %d of 800", hits)
	}
}

func TestSamplerEveryOne(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !s.Sample() {
			t.Fatal("every=1 sampler skipped a request")
		}
	}
}

func TestNilSamplerAndRing(t *testing.T) {
	var s *Sampler
	if s.Sample() {
		t.Fatal("nil sampler sampled")
	}
	var r *Ring
	r.Record(Trace{ID: 1}) // must not panic
	if snap := r.Snapshot(); snap.Recorded != 0 || len(snap.Recent) != 0 {
		t.Fatalf("nil ring snapshot = %+v", snap)
	}
}

func TestRingBoundedFIFO(t *testing.T) {
	r := NewRing(4, time.Second)
	for i := 0; i < 10; i++ {
		r.Record(Trace{ID: uint64(i)})
	}
	snap := r.Snapshot()
	if snap.Recorded != 10 || snap.Noted != 0 {
		t.Fatalf("recorded=%d noted=%d", snap.Recorded, snap.Noted)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent len = %d", len(snap.Recent))
	}
	for i, tr := range snap.Recent {
		if tr.ID != uint64(6+i) { // oldest first: 6,7,8,9
			t.Fatalf("recent[%d].ID = %d", i, tr.ID)
		}
	}
}

func TestNotableRetention(t *testing.T) {
	// One slow trace early, then a flood of healthy ones: the recent ring
	// forgets it, the notable ring must not.
	r := NewRing(8, 10*time.Millisecond)
	r.Record(Trace{ID: 42, Dur: 50 * time.Millisecond})
	r.Record(Trace{ID: 43, Err: "boom"})
	for i := 0; i < 100; i++ {
		r.Record(Trace{ID: uint64(1000 + i), Dur: time.Millisecond})
	}
	snap := r.Snapshot()
	if snap.Noted != 2 {
		t.Fatalf("noted = %d", snap.Noted)
	}
	ids := map[uint64]bool{}
	for _, tr := range snap.Notable {
		ids[tr.ID] = true
	}
	if !ids[42] || !ids[43] {
		t.Fatalf("notable lost the tail: %v", ids)
	}
	for _, tr := range snap.Recent {
		if tr.ID == 42 {
			t.Fatal("recent ring kept a 100-trace-old entry; bound broken")
		}
	}
}

func TestNotableEvictsAmongItself(t *testing.T) {
	r := NewRing(4, time.Millisecond) // notable capacity 2
	for i := 0; i < 5; i++ {
		r.Record(Trace{ID: uint64(i), Err: "e"})
	}
	snap := r.Snapshot()
	if len(snap.Notable) != 2 || snap.Notable[0].ID != 3 || snap.Notable[1].ID != 4 {
		t.Fatalf("notable = %+v", snap.Notable)
	}
}

func TestSnapshotJSONCarriesHops(t *testing.T) {
	r := NewRing(4, time.Second)
	r.Record(Trace{
		ID: 7, Kind: "update", Name: "f",
		Hops: []msg.Hop{
			{PID: 3, Parent: msg.NoParent, Action: msg.HopFanout, Dur: 10},
			{PID: 4, Parent: 3, Action: msg.HopDeliver, Dur: 5},
		},
	})
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Recent) != 1 || len(back.Recent[0].Hops) != 2 || back.Recent[0].Hops[1].Parent != 3 {
		t.Fatalf("round trip = %s", b)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Trace{ID: uint64(g*1000 + i), Err: fmt.Sprint(i % 2)})
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Recorded(); got != 1600 {
		t.Fatalf("recorded = %d", got)
	}
}
