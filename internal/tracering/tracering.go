// Package tracering keeps the always-on trace plane affordable: every
// node head-samples 1-in-N of the requests entering it (stamping the
// trace section the wire protocol already carries) and retains the
// finished traces in a bounded in-memory ring. Two tiers protect the
// interesting tail: the recent ring holds whatever finished last, while
// the notable ring holds slow and errored traces only, so a burst of
// healthy traffic cannot evict the one trace an operator actually needs.
// Log-structured systems buy this visibility with access logs (paper §1);
// LessLog gets it from sampling — no log is ever written.
//
// Everything here is node-local and allocation-bounded: a Ring costs
// O(capacity) memory, Sampler.Sample is one atomic add, and recording a
// trace takes one short critical section. Snapshots are plain values that
// serialize to JSON for the /traces admin endpoint and `-op traces`.
package tracering

import (
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
)

// Defaults for the sampling knobs. 1-in-128 keeps tracing overhead to a
// rounding error at bench rates while a busy peer still lands several
// traces per second; 25ms is far above a healthy in-process RPC chain and
// far below a timeout, so "slow" means "worth keeping".
const (
	DefaultSampleEvery = 128
	DefaultSlow        = 25 * time.Millisecond
	DefaultRingSize    = 256
)

// Sampler decides which entering requests get a trace stamped: plain
// 1-in-N head sampling on an atomic counter, so concurrent entry points
// share one budget. N=1 traces everything (tests, debugging); the zero
// value samples nothing until configured.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a head sampler stamping one trace per every
// requests. every <= 0 selects DefaultSampleEvery.
func NewSampler(every int) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this request is the 1-in-N winner.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 1 || s.every == 1
}

// Trace is one finished, assembled trace: the identifiers a client or
// scraper needs to correlate it, the outcome, and the hop tree the wire
// carried back. Hops may be empty for tail-retained traces (a slow or
// errored request that was not head-sampled still lands here, hop-less —
// the outcome is the evidence, the route is gone).
type Trace struct {
	ID    uint64        `json:"id"`
	Kind  string        `json:"kind"`
	Name  string        `json:"name,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Err   string        `json:"err,omitempty"`
	Hops  []msg.Hop     `json:"hops,omitempty"`
}

// Slow reports whether the trace took at least threshold.
func (t *Trace) Slow(threshold time.Duration) bool {
	return threshold > 0 && t.Dur >= threshold
}

// ring is one bounded FIFO of traces.
type ring struct {
	buf  []Trace
	next int
	full bool
}

func (r *ring) add(t Trace) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// snapshot returns the ring's contents, oldest first.
func (r *ring) snapshot() []Trace {
	if !r.full {
		return append([]Trace(nil), r.buf[:r.next]...)
	}
	out := make([]Trace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Ring retains finished traces in two bounded tiers: recent (every
// recorded trace, evicted FIFO) and notable (slow or errored traces only,
// evicted FIFO among themselves — healthy traffic never pushes them out).
// Safe for concurrent use.
type Ring struct {
	slow time.Duration

	mu      sync.Mutex
	recent  ring
	notable ring

	recorded atomic.Uint64 // traces recorded in total
	noted    atomic.Uint64 // of those, slow or errored
}

// NewRing returns a trace ring keeping size recent traces and size/2
// notable ones. size <= 0 selects DefaultRingSize; slow <= 0 selects
// DefaultSlow.
func NewRing(size int, slow time.Duration) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	if slow <= 0 {
		slow = DefaultSlow
	}
	notable := size / 2
	if notable < 1 {
		notable = 1
	}
	return &Ring{
		slow:    slow,
		recent:  ring{buf: make([]Trace, size)},
		notable: ring{buf: make([]Trace, notable)},
	}
}

// Slow returns the ring's slow-trace threshold.
func (r *Ring) Slow() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// Record retains one finished trace. Nil rings drop silently, so callers
// can leave tracing unconfigured without branching.
func (r *Ring) Record(t Trace) {
	if r == nil {
		return
	}
	notable := t.Err != "" || t.Slow(r.slow)
	r.recorded.Add(1)
	if notable {
		r.noted.Add(1)
	}
	r.mu.Lock()
	r.recent.add(t)
	if notable {
		r.notable.add(t)
	}
	r.mu.Unlock()
}

// Snapshot is the JSON shape of a ring: totals plus both tiers, oldest
// first. SlowNS carries the threshold so readers can interpret Notable.
type Snapshot struct {
	Recorded uint64  `json:"recorded"`
	Noted    uint64  `json:"noted"`
	SlowNS   int64   `json:"slow_ns"`
	Recent   []Trace `json:"recent"`
	Notable  []Trace `json:"notable"`
}

// Snapshot copies the ring's current contents. Nil rings snapshot empty.
func (r *Ring) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Snapshot{
		Recorded: r.recorded.Load(),
		Noted:    r.noted.Load(),
		SlowNS:   int64(r.slow),
		Recent:   r.recent.snapshot(),
		Notable:  r.notable.snapshot(),
	}
}

// Recorded returns the total traces recorded so far.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.recorded.Load()
}

// Noted returns the slow-or-errored traces recorded so far.
func (r *Ring) Noted() uint64 {
	if r == nil {
		return 0
	}
	return r.noted.Load()
}
