// Package replication implements the three replica-placement methods the
// paper evaluates (§6):
//
//   - LessLog — the paper's contribution: logless placement onto the
//     overloaded node's children list (§2.2), extended with the advanced
//     model's dead-node handling and proportional children-list choice (§3).
//   - Random — the baseline that replicates to a uniformly random live
//     node without a copy.
//   - LogBased — the log-analysis method, implemented as an oracle with
//     perfect knowledge of per-child forwarded request rates, i.e. the
//     strongest possible version of that baseline.
//
// Strategies are pure decision procedures over a Context supplied by the
// caller (the analytic simulator or the cluster engine), so they can be
// unit-tested in isolation and swapped per experiment.
package replication

import (
	"lesslog/internal/bitops"
	"lesslog/internal/ptree"
	"lesslog/internal/xrand"
)

// Context is the state a Strategy consults to choose a placement.
type Context interface {
	// View returns the lookup-tree view of the popular file's target.
	View() ptree.View
	// HasCopy reports whether p already holds a copy of the popular file.
	HasCopy(p bitops.PID) bool
	// ForwardedLoad returns the request rate (req/s) entering holder
	// through child on the lookup path — the quantity a log-based method
	// mines from its access logs. Implementations may return 0 for pairs
	// that never appear on any path.
	ForwardedLoad(holder, child bitops.PID) float64
	// Rand returns the deterministic random stream for tie-breaking and
	// the proportional choice.
	Rand() *xrand.Rand
}

// Strategy decides where an overloaded holder places its next replica.
type Strategy interface {
	// Name identifies the strategy in reports ("lesslog", "random",
	// "log-based").
	Name() string
	// Place returns the node to receive a replica when overloaded sheds
	// load, and reports whether any candidate exists.
	Place(ctx Context, overloaded bitops.PID) (bitops.PID, bool)
}

// LessLog is the paper's logless placement. REPLICATEFILE: the first node
// in the overloaded node's (expanded) children list without a copy. When
// the overloaded node is the live maximum of its subtree but not the root
// position — the case where FINDLIVENODE funnels the whole subtree's
// requests into it — the §3 proportional rule chooses between its own
// children list and the root's, weighted by the live offspring count
// against the rest of the subtree.
type LessLog struct{}

// Name implements Strategy.
func (LessLog) Name() string { return "lesslog" }

// Place implements Strategy.
func (LessLog) Place(ctx Context, k bitops.PID) (bitops.PID, bool) {
	v := ctx.View()
	rootVID := bitops.Mask(v.M() - v.B)
	atRoot := v.SubtreeVID(k) == rootVID
	if atRoot || v.HasLiveGreaterVID(k) {
		// Requests reaching k came up k's own subtree: shed to C_k.
		return firstWithoutCopy(ctx, v.ExpandedChildrenList(k))
	}
	// k is the subtree's live maximum (the FINDLIVENODE target): requests
	// may come from its offspring or from anywhere else. Choose between
	// the two children lists proportionally (§3).
	sid := v.SubtreeID(k)
	off := v.LiveDescendants(k)
	rest := v.LiveInSubtree(sid) - off - 1
	if rest < 0 {
		rest = 0
	}
	own := v.ExpandedChildrenList(k)
	other := v.ExpandedChildrenList(v.SubtreeRoot(sid))
	first, second := own, other
	if off+rest == 0 || !pickOwn(ctx.Rand(), off, rest) {
		first, second = other, own
	}
	if p, ok := firstWithoutCopy(ctx, first); ok {
		return p, ok
	}
	return firstWithoutCopy(ctx, second)
}

// pickOwn draws the proportional choice: true selects the overloaded
// node's own children list with probability off/(off+rest).
func pickOwn(rng *xrand.Rand, off, rest int) bool {
	if off+rest == 0 {
		return true
	}
	return rng.Float64() < float64(off)/float64(off+rest)
}

// firstWithoutCopy returns the first listed node lacking a copy.
func firstWithoutCopy(ctx Context, list []bitops.PID) (bitops.PID, bool) {
	for _, p := range list {
		if !ctx.HasCopy(p) {
			return p, true
		}
	}
	return 0, false
}

// Random is the random-replication baseline of §6: a uniformly random live
// node of the overloaded node's subtree that has no copy yet.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Place implements Strategy.
func (Random) Place(ctx Context, k bitops.PID) (bitops.PID, bool) {
	v := ctx.View()
	sid := v.SubtreeID(k)
	var candidates []bitops.PID
	v.Live.ForEachLive(func(p bitops.PID) {
		if p != k && v.SubtreeID(p) == sid && !ctx.HasCopy(p) {
			candidates = append(candidates, p)
		}
	})
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[ctx.Rand().Intn(len(candidates))], true
}

// LogBased is the log-analysis baseline of §6 as an oracle: it replicates
// to the child (of the overloaded node, in the expanded children list)
// that forwards the highest request rate. Ties and the no-forwarding case
// fall back to children-list order, which preserves progress.
type LogBased struct{}

// Name implements Strategy.
func (LogBased) Name() string { return "log-based" }

// Place implements Strategy.
func (LogBased) Place(ctx Context, k bitops.PID) (bitops.PID, bool) {
	v := ctx.View()
	list := v.ExpandedChildrenList(k)
	best, bestLoad, found := bitops.PID(0), -1.0, false
	for _, c := range list {
		if ctx.HasCopy(c) {
			continue
		}
		if l := ctx.ForwardedLoad(k, c); l > bestLoad {
			best, bestLoad, found = c, l, true
		}
	}
	if found {
		return best, true
	}
	// Every child holds a copy already (or there are none): fall back to
	// the same proportional escape hatch LessLog uses, so the baseline is
	// never artificially stuck in the advanced model.
	if !v.HasLiveGreaterVID(k) && v.SubtreeVID(k) != bitops.Mask(v.M()-v.B) {
		return firstWithoutCopy(ctx, v.ExpandedChildrenList(v.SubtreeRoot(v.SubtreeID(k))))
	}
	return 0, false
}
