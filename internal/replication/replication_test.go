package replication

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/ptree"
	"lesslog/internal/xrand"
)

// fakeCtx is a minimal Context for strategy unit tests.
type fakeCtx struct {
	view    ptree.View
	copies  map[bitops.PID]bool
	forward map[[2]bitops.PID]float64
	rng     *xrand.Rand
}

func (f *fakeCtx) View() ptree.View          { return f.view }
func (f *fakeCtx) HasCopy(p bitops.PID) bool { return f.copies[p] }
func (f *fakeCtx) Rand() *xrand.Rand         { return f.rng }
func (f *fakeCtx) ForwardedLoad(h, c bitops.PID) float64 {
	return f.forward[[2]bitops.PID{h, c}]
}

func newCtx(root bitops.PID, live *liveness.Set, b int) *fakeCtx {
	return &fakeCtx{
		view:    ptree.NewView(root, live, b),
		copies:  map[bitops.PID]bool{},
		forward: map[[2]bitops.PID]float64{},
		rng:     xrand.New(1),
	}
}

func TestLessLogBasicChildrenListOrder(t *testing.T) {
	// §2.2: P(4) overloaded in a complete 16-node system replicates to
	// its children list (P(5), P(6), P(0), P(12)) in order.
	ctx := newCtx(4, liveness.NewAllLive(4, 16), 0)
	ctx.copies[4] = true
	want := []bitops.PID{5, 6, 0, 12}
	for _, w := range want {
		got, ok := LessLog{}.Place(ctx, 4)
		if !ok || got != w {
			t.Fatalf("Place = P(%d), %v; want P(%d)", got, ok, w)
		}
		ctx.copies[got] = true
	}
	if _, ok := (LessLog{}).Place(ctx, 4); ok {
		t.Fatal("Place succeeded with every child already holding a copy")
	}
}

func TestLessLogAdvancedUsesExpandedList(t *testing.T) {
	// Figure 3: P(0), P(5) dead. The root P(4)'s expanded children list
	// is (6, 7, 1, 12, 13, 8).
	live := liveness.NewAllLive(4, 16)
	live.SetDead(0)
	live.SetDead(5)
	ctx := newCtx(4, live, 0)
	ctx.copies[4] = true
	got, ok := LessLog{}.Place(ctx, 4)
	if !ok || got != 6 {
		t.Fatalf("Place = P(%d), want P(6)", got)
	}
}

func TestLessLogProportionalChoice(t *testing.T) {
	// §3 example: P(4), P(5) dead, target P(4). P(6) is the live max and
	// holds the file; it must choose between its own children list and
	// the root's proportionally. Over many draws both lists are used.
	live := liveness.NewAllLive(4, 16)
	live.SetDead(4)
	live.SetDead(5)
	view := ptree.NewView(4, live, 0)
	ownFirst, otherFirst := 0, 0
	// P(6)'s own children list heads vs the root list head.
	ownSet := map[bitops.PID]bool{}
	for _, p := range view.ExpandedChildrenList(6) {
		ownSet[p] = true
	}
	for seed := uint64(0); seed < 200; seed++ {
		ctx := newCtx(4, live, 0)
		ctx.rng = xrand.New(seed)
		ctx.copies[6] = true
		got, ok := LessLog{}.Place(ctx, 6)
		if !ok {
			t.Fatal("no placement")
		}
		if ownSet[got] {
			ownFirst++
		} else {
			otherFirst++
		}
	}
	if ownFirst == 0 || otherFirst == 0 {
		t.Fatalf("proportional choice degenerate: own=%d other=%d", ownFirst, otherFirst)
	}
	// P(6) has 3 live descendants of 13 total live nodes: the "own"
	// branch should be the rare one (3/12 vs 9/12).
	if ownFirst > otherFirst {
		t.Fatalf("own list chosen more often than rest: own=%d other=%d", ownFirst, otherFirst)
	}
}

func TestRandomPlacesOnLiveNonHolders(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	live.SetDead(3)
	ctx := newCtx(4, live, 0)
	ctx.copies[4] = true
	seen := map[bitops.PID]bool{}
	for i := 0; i < 300; i++ {
		p, ok := Random{}.Place(ctx, 4)
		if !ok {
			t.Fatal("no candidate")
		}
		if p == 4 || p == 3 {
			t.Fatalf("random placed on holder or dead node P(%d)", p)
		}
		seen[p] = true
	}
	if len(seen) < 10 {
		t.Fatalf("random placement hit only %d nodes", len(seen))
	}
}

func TestRandomExhaustion(t *testing.T) {
	live := liveness.NewAllLive(2, 4)
	ctx := newCtx(0, live, 0)
	for p := bitops.PID(0); p < 4; p++ {
		ctx.copies[p] = true
	}
	if _, ok := (Random{}).Place(ctx, 0); ok {
		t.Fatal("placement succeeded with all nodes holding copies")
	}
}

func TestLogBasedPicksHeaviestForwarder(t *testing.T) {
	ctx := newCtx(4, liveness.NewAllLive(4, 16), 0)
	ctx.copies[4] = true
	// Children list of P(4) is (5, 6, 0, 12); make P(0) the heaviest
	// forwarder.
	ctx.forward[[2]bitops.PID{4, 5}] = 10
	ctx.forward[[2]bitops.PID{4, 6}] = 30
	ctx.forward[[2]bitops.PID{4, 0}] = 90
	got, ok := LogBased{}.Place(ctx, 4)
	if !ok || got != 0 {
		t.Fatalf("Place = P(%d), want P(0)", got)
	}
	// With P(0) holding a copy, the next heaviest wins.
	ctx.copies[0] = true
	got, _ = LogBased{}.Place(ctx, 4)
	if got != 6 {
		t.Fatalf("Place = P(%d), want P(6)", got)
	}
}

func TestLogBasedFallsBackToListOrder(t *testing.T) {
	// No forwarding data at all: children-list order keeps progress.
	ctx := newCtx(4, liveness.NewAllLive(4, 16), 0)
	ctx.copies[4] = true
	got, ok := LogBased{}.Place(ctx, 4)
	if !ok || got != 5 {
		t.Fatalf("Place = P(%d), want P(5)", got)
	}
}

func TestNames(t *testing.T) {
	if (LessLog{}).Name() != "lesslog" || (Random{}).Name() != "random" || (LogBased{}).Name() != "log-based" {
		t.Fatal("strategy names changed; reports depend on them")
	}
}

func TestPickOwnProbability(t *testing.T) {
	rng := xrand.New(42)
	own := 0
	for i := 0; i < 10000; i++ {
		if pickOwn(rng, 3, 9) {
			own++
		}
	}
	if own < 2200 || own > 2800 {
		t.Fatalf("pickOwn(3,9) frequency %d/10000, want ~2500", own)
	}
	if !pickOwn(rng, 0, 0) {
		t.Fatal("pickOwn with no population must default to own")
	}
}
