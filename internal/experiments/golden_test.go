package experiments

// Golden regression pins: exact replica counts at fixed seeds for one
// sweep point per strategy. These guard the reproduced figures against
// silent algorithmic drift — any change to placement order, routing or
// the balance loop that alters the evaluation shows up here first, with
// a much faster signal than the full-figure shape tests.

import (
	"testing"

	"lesslog/internal/replication"
)

func TestGoldenFigurePoints(t *testing.T) {
	p := PaperParams()
	cases := []struct {
		name     string
		strat    replication.Strategy
		rate     float64
		deadFrac float64
		locality bool
		want     int
	}{
		{"lesslog-even-10k", replication.LessLog{}, 10000, 0, false, 127},
		{"logbased-even-10k", replication.LogBased{}, 10000, 0, false, 127},
		{"lesslog-even-20k", replication.LessLog{}, 20000, 0, false, 255},
		{"random-even-10k", replication.Random{}, 10000, 0, false, goldenRandomEven10k},
		{"lesslog-locality-10k", replication.LessLog{}, 10000, 0, true, goldenLessLogLocality10k},
		{"lesslog-even-20pc-dead-10k", replication.LessLog{}, 10000, 0.2, false, goldenLessLogDead10k},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := RunPoint(p, c.strat, c.rate, c.deadFrac, c.locality, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("replicas = %d, golden value %d (seed 1); if this change is"+
					" intentional, update the golden and re-run EXPERIMENTS.md",
					got, c.want)
			}
		})
	}
}

// Golden values measured at seed 1 on the pinned SplitMix64 stream; the
// deterministic LessLog/log-based points above need no constants because
// the even workload admits closed forms (2^k - 1 plateaus).
const (
	goldenRandomEven10k      = 787
	goldenLessLogLocality10k = 150
	goldenLessLogDead10k     = 149
)
