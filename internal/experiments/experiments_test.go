package experiments

import (
	"strings"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/replication"
)

// quickParams shrinks the sweep so figure tests stay fast while keeping
// the paper's m=10 system.
func quickParams() Params {
	p := PaperParams()
	p.RateMin = 4000
	p.RateMax = 16000
	p.RateStep = 4000
	p.Trials = 1
	return p
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.M != 10 || p.Cap != 100 || p.RateMin != 1000 || p.RateMax != 20000 {
		t.Fatalf("paper params drifted: %+v", p)
	}
	rates := p.Rates()
	if len(rates) != 20 || rates[0] != 1000 || rates[19] != 20000 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestRunPointDeterministicBySeed(t *testing.T) {
	p := quickParams()
	a, err := RunPoint(p, replication.Random{}, 8000, 0.2, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint(p, replication.Random{}, 8000, 0.2, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %d and %d replicas", a, b)
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckShape(fig, 0.35); err != nil {
		t.Fatal(err)
	}
	// Replica counts grow with the request rate for every method.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Replicas); i++ {
			if s.Replicas[i] < s.Replicas[i-1]*0.7 {
				t.Fatalf("series %s not increasing: %v", s.Label, s.Replicas)
			}
		}
	}
	// Random should be *far* worse at the top rate (the paper's
	// "significantly fewer replicas" claim): at least 1.5x LessLog.
	var ll, rnd float64
	for _, s := range fig.Series {
		last := s.Replicas[len(s.Replicas)-1]
		switch s.Label {
		case "lesslog":
			ll = last
		case "random":
			rnd = last
		}
	}
	if rnd < 1.5*ll {
		t.Fatalf("random (%v) not significantly above lesslog (%v)", rnd, ll)
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// "A similar number of replicas are created in all three
	// configurations": pairwise gaps bounded.
	for _, pair := range [][2]string{{"10% dead", "20% dead"}, {"10% dead", "30% dead"}} {
		gap, err := MaxSeriesGap(fig, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if gap > 0.5 {
			t.Fatalf("gap between %s and %s = %.2f, not 'similar'", pair[0], pair[1], gap)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	fig, err := Figure7(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckShape(fig, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8Shape(t *testing.T) {
	fig, err := Figure8(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.Replicas) != len(fig.Rates) {
			t.Fatalf("series %s length mismatch", s.Label)
		}
		for _, v := range s.Replicas {
			if v <= 0 {
				t.Fatalf("series %s has nonpositive point %v", s.Label, v)
			}
		}
	}
}

func TestSweepParallelismInvariant(t *testing.T) {
	// The same figure at parallelism 1 and 8 must be bit-identical:
	// every sweep point is independently seeded.
	p := quickParams()
	p.Parallelism = 1
	serial, err := Figure5(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	parallel, err := Figure5(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Series {
		for j := range serial.Series[i].Replicas {
			if serial.Series[i].Replicas[j] != parallel.Series[i].Replicas[j] {
				t.Fatalf("series %s point %d differs: %v vs %v",
					serial.Series[i].Label, j,
					serial.Series[i].Replicas[j], parallel.Series[i].Replicas[j])
			}
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	// A broken strategy (places duplicate copies) makes Balance fail;
	// the worker pool must surface that error.
	p := quickParams()
	if _, err := sweep(p, "dup", duplicateStrategy{}, 0, false); err == nil {
		t.Fatal("sweep swallowed the strategy error")
	}
}

// duplicateStrategy always proposes the target node itself, which already
// holds the primary copy — an invalid placement Balance must reject.
type duplicateStrategy struct{}

func (duplicateStrategy) Name() string { return "dup" }
func (duplicateStrategy) Place(ctx replication.Context, k bitops.PID) (bitops.PID, bool) {
	return k, true
}

func TestByID(t *testing.T) {
	p := quickParams()
	p.RateMax = p.RateMin // single point, keep it quick
	for _, id := range []string{"5", "figure6", "7", "figure8"} {
		fig, err := ByID(id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
	}
	if _, err := ByID("9", p); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRenderers(t *testing.T) {
	fig := Figure{
		ID: "figure5", Title: "t", XLabel: "x",
		Rates: []float64{1000, 2000},
		Series: []Series{
			{Label: "lesslog", Replicas: []float64{3, 6}},
			{Label: "random", Replicas: []float64{9, 18}},
		},
	}
	tab := Table(fig)
	if !strings.Contains(tab, "lesslog") || !strings.Contains(tab, "1000") {
		t.Fatalf("table:\n%s", tab)
	}
	csv := CSV(fig)
	if !strings.HasPrefix(csv, "rate,lesslog,random\n1000,3.00,9.00\n") {
		t.Fatalf("csv:\n%s", csv)
	}
	md := Markdown(fig)
	if !strings.Contains(md, "| 1000 | 3.0 | 9.0 |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestCheckShapeRejects(t *testing.T) {
	bad := Figure{
		ID:    "x",
		Rates: []float64{1},
		Series: []Series{
			{Label: "log-based", Replicas: []float64{10}},
			{Label: "lesslog", Replicas: []float64{5}},
			{Label: "random", Replicas: []float64{2}},
		},
	}
	if err := CheckShape(bad, 0.2); err == nil {
		t.Fatal("shape violation not detected")
	}
	if err := CheckShape(Figure{ID: "y"}, 0.2); err == nil {
		t.Fatal("missing series not detected")
	}
}

func TestEviction(t *testing.T) {
	p := quickParams()
	pts, err := Eviction(p, []float64{8000}, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %v", pts)
	}
	pt := pts[0]
	if pt.Removed == 0 {
		t.Fatal("eviction removed nothing after an 8x rate collapse")
	}
	if pt.HoldersAfter != pt.HoldersAtHigh-pt.Removed {
		t.Fatalf("holder accounting wrong: %+v", pt)
	}
}

func TestMaxSeriesGapErrors(t *testing.T) {
	if _, err := MaxSeriesGap(Figure{}, "a", "b"); err == nil {
		t.Fatal("missing series not reported")
	}
}
