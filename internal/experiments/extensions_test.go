package experiments

import (
	"strings"
	"testing"

	"lesslog/internal/accesslog"
	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/ptree"
	"lesslog/internal/workload"
)

func TestHopComparison(t *testing.T) {
	stats := HopComparison(8, 500, 1)
	if len(stats) != 4 {
		t.Fatalf("schemes = %d", len(stats))
	}
	byName := map[string]HopStats{}
	for _, s := range stats {
		if s.Lookups != 500 {
			t.Fatalf("%s ran %d lookups", s.Scheme, s.Lookups)
		}
		byName[s.Scheme] = s
	}
	// LessLog and Chord are logarithmic; CAN (d=2) is polynomial and
	// must be clearly worse at N=256.
	if byName["lesslog"].Mean > 8 || byName["lesslog"].Max > 8 {
		t.Fatalf("lesslog hops exceed m: %+v", byName["lesslog"])
	}
	if byName["chord"].Mean > 8 {
		t.Fatalf("chord hops unreasonable: %+v", byName["chord"])
	}
	if byName["can-d2"].Mean < byName["lesslog"].Mean {
		t.Fatalf("CAN (%.2f) beat lesslog (%.2f) at N=256, implausible",
			byName["can-d2"].Mean, byName["lesslog"].Mean)
	}
	// Histograms account for every lookup.
	for _, s := range stats {
		total := 0
		for _, c := range s.Hist {
			total += c
		}
		if total != s.Lookups {
			t.Fatalf("%s histogram covers %d of %d", s.Scheme, total, s.Lookups)
		}
	}
	out := HopTable(stats, 8)
	if !strings.Contains(out, "lesslog") || !strings.Contains(out, "can-d2") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestChurnTable(t *testing.T) {
	rows, err := ChurnTable([]int{0, 1}, []float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	var a0, a1 float64
	for _, r := range rows {
		switch r.B {
		case 0:
			a0 = r.Availability
		case 1:
			a1 = r.Availability
		}
	}
	if a1 < a0 {
		t.Fatalf("b=1 availability %.4f below b=0 %.4f", a1, a0)
	}
	out := ChurnTableString(rows)
	if !strings.Contains(out, "availability") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestLatency(t *testing.T) {
	p := PaperParams()
	rows, err := Latency(p, []float64{300}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	// Past the service rate, the single-copy p99 must be orders of
	// magnitude above the balanced p99.
	if r.SingleP99 < 10*r.BalancedP99 {
		t.Fatalf("queueing collapse not visible: %+v", r)
	}
	if r.BalancedP99 > 0.5 {
		t.Fatalf("balanced p99 = %vs, too slow", r.BalancedP99)
	}
	out := LatencyTable(rows)
	if !strings.Contains(out, "balanced p99") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestFTCost(t *testing.T) {
	p := PaperParams()
	rows, err := FTCost(p, 12000, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Copies != 1 || rows[1].Copies != 4 {
		t.Fatalf("copies = %+v", rows)
	}
	// Total holders (copies+replicas) is workload-determined, so extra
	// authoritative copies displace replicas one for one or better.
	if rows[1].Replicas > rows[0].Replicas {
		t.Fatalf("b=2 needed more replicas than b=0: %+v", rows)
	}
	out := FTCostTable(rows, 12000)
	if !strings.Contains(out, "mean hops") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestFlashCrowd(t *testing.T) {
	p := PaperParams()
	rows, err := FlashCrowd(p, 6, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The hottest holder's serve count halves every crowd window until
	// it is at or below the threshold, in ceil(log2(1024/100)) = 4 steps.
	if rows[0].MaxServe != 1024 || rows[0].Holders != 1 {
		t.Fatalf("first window = %+v", rows[0])
	}
	for i := 1; i < 4; i++ {
		if rows[i].MaxServe != rows[i-1].MaxServe/2 {
			t.Fatalf("window %d did not halve: %+v -> %+v", i, rows[i-1], rows[i])
		}
	}
	balancedAt := -1
	for i, r := range rows[:6] {
		if r.MaxServe <= 100 {
			balancedAt = i
			break
		}
	}
	if balancedAt != 4 {
		t.Fatalf("balanced at window %d, want 4", balancedAt)
	}
	// The quiet phase evicts replicas.
	totalEvicted := 0
	for _, r := range rows[6:] {
		totalEvicted += r.Evicted
	}
	if totalEvicted == 0 {
		t.Fatal("no eviction after the crowd left")
	}
	out := FlashCrowdTable(rows, 100)
	if !strings.Contains(out, "max serve") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestUpdateCost(t *testing.T) {
	p := PaperParams()
	rows, err := UpdateCost(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Holders != 1 {
		t.Fatalf("first row = %+v", rows[0])
	}
	for i, r := range rows {
		if r.Updated != r.Holders {
			t.Fatalf("row %d: stale copies: %+v", i, r)
		}
		// The broadcast visits each holder plus its direct children: far
		// below system size for small replica sets.
		if r.Messages >= bitops.Slots(p.M) {
			t.Fatalf("row %d: broadcast touched the whole system: %+v", i, r)
		}
		if i > 0 && r.Holders < rows[i-1].Holders {
			t.Fatalf("holders shrank: %+v", rows)
		}
	}
	out := UpdateCostTable(rows)
	if !strings.Contains(out, "messages") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestLogOverhead(t *testing.T) {
	p := PaperParams()
	rows, err := LogOverhead(p, []int{1024, 4096}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// With an uncapped log every request is retained; LessLog keeps
	// nothing.
	if rows[0].Entries != 1024 || rows[1].Entries != 4096 {
		t.Fatalf("entries = %+v", rows)
	}
	if rows[0].Bytes == 0 || rows[0].LessLogBytes != 0 {
		t.Fatalf("bytes = %+v", rows[0])
	}
	out := LogOverheadTable(rows)
	if !strings.Contains(out, "lesslog bytes") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestLogAnalysisMatchesOracle(t *testing.T) {
	// The LogBased strategy's oracle ForwardedLoad must agree with what
	// genuine log analysis computes: replay one request per node, then
	// compare the log's hottest forwarder at the target against the
	// oracle's pick.
	p := PaperParams()
	live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
	v := ptree.NewView(p.Target, live, 0)
	rec := accesslog.NewRecorder(1 << 20)
	for i := 0; i < bitops.Slots(p.M); i++ {
		origin := bitops.PID(i)
		stops := v.PathLiveStops(origin)
		server := stops[len(stops)-1]
		forwarder := origin
		if len(stops) >= 2 {
			forwarder = stops[len(stops)-2]
		}
		rec.Record(server, "hot", accesslog.Entry{Origin: origin, Forwarder: forwarder})
	}
	hot, ok := rec.Log(p.Target, "hot").HottestForwarder()
	if !ok {
		t.Fatal("no log at the target")
	}
	// The oracle: the analytic simulator's heaviest forwarding child.
	sim := loadsim.New(loadsim.Config{
		M: p.M, Target: p.Target, Cap: p.Cap, Live: live,
		Rates: workload.Even(float64(bitops.Slots(p.M)), live), Seed: 1,
	})
	var want bitops.PID
	best := -1.0
	for _, c := range v.ExpandedChildrenList(p.Target) {
		if l := sim.ForwardedLoad(p.Target, c); l > best {
			want, best = c, l
		}
	}
	if hot != want {
		t.Fatalf("log analysis picked P(%d), oracle picked P(%d)", hot, want)
	}
}

func TestMultiFile(t *testing.T) {
	p := PaperParams()
	rows, err := MultiFile(p, 12000, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Files != 1 || rows[1].Files != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Replicas <= 0 || r.Holders <= r.Files {
			t.Fatalf("row %+v implausible", r)
		}
	}
	out := MultiFileTable(rows, 12000)
	if !strings.Contains(out, "files") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestHopsVsReplicas(t *testing.T) {
	p := PaperParams()
	pts, err := HopsVsReplicas(p, 20000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("points = %+v", pts)
	}
	// With no replicas, the mean path is the mean depth of the binomial
	// tree: m/2 = 5 hops at m=10.
	if pts[0].Replicas != 0 || pts[0].MeanHops < 4.9 || pts[0].MeanHops > 5.1 {
		t.Fatalf("initial point = %+v", pts[0])
	}
	// Mean hops must be non-increasing as replicas spread, and the
	// balanced end state must be clearly shorter.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanHops > pts[i-1].MeanHops+1e-9 {
			t.Fatalf("mean hops increased: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.MeanHops > 3.5 || last.MaxLoad > p.Cap {
		t.Fatalf("final point = %+v", last)
	}
	out := HopsVsReplicasTable(pts)
	if !strings.Contains(out, "mean hops") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestSensitivityM(t *testing.T) {
	rows, err := SensitivityM([]int{6, 8, 10}, 10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// Constant per-node rate: replicas must grow with system size.
	for i := 1; i < len(rows); i++ {
		if rows[i].Replicas <= rows[i-1].Replicas {
			t.Fatalf("replicas not growing with m: %+v", rows)
		}
	}
	out := SensitivityTable(rows, 10, 100)
	if !strings.Contains(out, "1024") {
		t.Fatalf("table:\n%s", out)
	}
}
