package experiments

// Extensions beyond the paper's own figures, each tied to a claim the
// paper makes but does not plot:
//
//   - HopComparison — §1/§7: LessLog's O(log N) lookup bound against the
//     Chord and CAN baselines it cites.
//   - ChurnTable — §8 future work: availability under dynamic churn for
//     increasing fault-tolerance degrees (b), via the discrete-event
//     scenario simulator.
//   - SensitivityM — how the replica count of Figure 5 scales with the
//     identifier width m at a fixed request rate.
//
// EXPERIMENTS.md marks these as extensions, not reproductions.

import (
	"fmt"
	"strings"

	"lesslog/internal/accesslog"
	"lesslog/internal/bitops"
	"lesslog/internal/can"
	"lesslog/internal/chord"
	"lesslog/internal/core"
	"lesslog/internal/dynsim"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/multisim"
	"lesslog/internal/pastry"
	"lesslog/internal/ptree"
	"lesslog/internal/queuesim"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// HopStats summarizes one lookup scheme's path lengths.
type HopStats struct {
	Scheme  string
	Mean    float64
	Max     int
	Hist    []int // hop count -> lookups
	Lookups int
}

// HopComparison measures lookup hops for LessLog, Chord and CAN (d=2)
// over the same n-node population at width m, with `lookups` random
// (origin, key) pairs each.
func HopComparison(m, lookups int, seed uint64) []HopStats {
	n := bitops.Slots(m)
	live := liveness.NewAllLive(m, n)
	out := make([]HopStats, 0, 3)

	// LessLog: route along live ancestors to a random target's root.
	rng := xrand.New(seed)
	ll := HopStats{Scheme: "lesslog"}
	for i := 0; i < lookups; i++ {
		target := bitops.PID(rng.Intn(n))
		origin := bitops.PID(rng.Intn(n))
		v := ptree.NewView(target, live, 0)
		hops := len(v.PathLiveStops(origin)) - 1
		ll.observe(hops)
	}
	out = append(out, ll)

	// Chord finger routing.
	ring := chord.New(m, live)
	rng = xrand.New(seed)
	ch := HopStats{Scheme: "chord"}
	for i := 0; i < lookups; i++ {
		key := uint32(rng.Intn(n))
		origin := bitops.PID(rng.Intn(n))
		_, hops := ring.Lookup(origin, key)
		ch.observe(hops)
	}
	out = append(out, ch)

	// Pastry/Tapestry-style prefix routing with base-16 digits.
	mesh := pastry.New(m, 4, live)
	rng = xrand.New(seed)
	pa := HopStats{Scheme: "pastry-b4"}
	for i := 0; i < lookups; i++ {
		key := bitops.PID(rng.Intn(n))
		origin := bitops.PID(rng.Intn(n))
		_, hops := mesh.Lookup(origin, key)
		pa.observe(hops)
	}
	out = append(out, pa)

	// CAN greedy routing in two dimensions.
	nw := can.New(2, n, seed)
	rng = xrand.New(seed)
	cn := HopStats{Scheme: "can-d2"}
	for i := 0; i < lookups; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		_, hops := nw.Lookup(rng.Intn(n), p)
		cn.observe(hops)
	}
	out = append(out, cn)
	return out
}

func (h *HopStats) observe(hops int) {
	h.Lookups++
	h.Mean += (float64(hops) - h.Mean) / float64(h.Lookups)
	if hops > h.Max {
		h.Max = hops
	}
	for len(h.Hist) <= hops {
		h.Hist = append(h.Hist, 0)
	}
	h.Hist[hops]++
}

// HopTable renders a hop comparison.
func HopTable(stats []HopStats, m int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lookup hops, N = %d nodes (m = %d)\n", bitops.Slots(m), m)
	fmt.Fprintf(&b, "%-10s%10s%8s\n", "scheme", "mean", "max")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-10s%10.2f%8d\n", s.Scheme, s.Mean, s.Max)
	}
	return b.String()
}

// ChurnRow is one availability measurement.
type ChurnRow struct {
	B            int
	ChurnRate    float64
	Availability float64
	MeanHops     float64
	Fails        int
}

// ChurnTable measures availability under failure-heavy churn for each
// fault-tolerance degree and churn rate — the §8 "real-world scenario".
func ChurnTable(bs []int, churnRates []float64, seed uint64) ([]ChurnRow, error) {
	var rows []ChurnRow
	for _, b := range bs {
		for _, cr := range churnRates {
			sc := dynsim.DefaultScenario()
			sc.B = b
			sc.ChurnRate = cr
			sc.JoinFrac, sc.LeaveFrac, sc.FailFrac = 1, 0, 2
			sc.Duration = 60
			sc.Seed = seed
			res, err := dynsim.Run(sc)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ChurnRow{
				B: b, ChurnRate: cr,
				Availability: res.Availability,
				MeanHops:     res.MeanHops,
				Fails:        res.Fails,
			})
		}
	}
	return rows, nil
}

// ChurnTableString renders the churn table.
func ChurnTableString(rows []ChurnRow) string {
	var b strings.Builder
	b.WriteString("availability under failure-heavy churn (join:fail = 1:2, 60 virtual seconds)\n")
	fmt.Fprintf(&b, "%-4s%-12s%-14s%-12s%-8s\n", "b", "churn/s", "availability", "mean hops", "fails")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d%-12.1f%-14.4f%-12.2f%-8d\n",
			r.B, r.ChurnRate, r.Availability, r.MeanHops, r.Fails)
	}
	return b.String()
}

// HopsPoint is one sample of the path-length side effect of replication.
type HopsPoint struct {
	Replicas int
	MeanHops float64
	MaxLoad  float64
}

// HopsVsReplicas balances an even workload with LessLog one replica at a
// time, sampling the rate-weighted mean lookup path length as copies
// spread — replication halves load *and* shortens paths, a side effect
// the paper does not plot. Sampled every `every` replicas (plus the
// initial and final states).
func HopsVsReplicas(p Params, rate float64, every int) ([]HopsPoint, error) {
	if every < 1 {
		every = 1
	}
	live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
	sim := loadsim.New(loadsim.Config{
		M: p.M, Target: p.Target, Cap: p.Cap,
		Live: live, Rates: workload.Even(rate, live), Seed: p.Seed,
	})
	strat := replication.LessLog{}
	var out []HopsPoint
	sample := func(replicas int) {
		out = append(out, HopsPoint{
			Replicas: replicas,
			MeanHops: sim.MeanHops(),
			MaxLoad:  sim.Summary().MaxLoad,
		})
	}
	sample(0)
	for replicas := 0; ; {
		sum := sim.Summary()
		if sum.Overloaded == 0 {
			sample(replicas)
			return out, nil
		}
		// Shed from the heaviest holder.
		var over bitops.PID
		best := -1.0
		for h, l := range sim.Loads() {
			if l > best {
				over, best = h, l
			}
		}
		target, ok := strat.Place(sim, over)
		if !ok {
			return out, fmt.Errorf("experiments: stuck at %d replicas", replicas)
		}
		sim.AddReplica(target)
		replicas++
		if replicas%every == 0 {
			sample(replicas)
		}
	}
}

// HopsVsReplicasTable renders the path-length samples.
func HopsVsReplicasTable(pts []HopsPoint) string {
	var b strings.Builder
	b.WriteString("lookup path length vs replicas (even workload, LessLog placement)\n")
	fmt.Fprintf(&b, "%-10s%-12s%-10s\n", "replicas", "mean hops", "max load")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%-10d%-12.3f%-10.1f\n", pt.Replicas, pt.MeanHops, pt.MaxLoad)
	}
	return b.String()
}

// LatencyRow compares response times before and after balancing at one
// arrival rate.
type LatencyRow struct {
	Rate                     float64
	Holders                  int
	SingleP50, SingleP99     float64
	BalancedP50, BalancedP99 float64
}

// Latency runs the queueing model (internal/queuesim) at each total
// arrival rate: once with only the primary copy and once with the
// LessLog-balanced placement, translating the paper's replica counts into
// the response times they buy. Service time is 1/cap seconds (so "100
// requests per second" is literally the node's service capacity) and
// each forwarding hop costs hopLatency seconds one way.
func Latency(p Params, rates []float64, hopLatency float64) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, rate := range rates {
		live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
		qcfg := queuesim.Config{
			M: p.M, Target: p.Target, Live: live,
			Rates:      workload.Even(rate, live),
			HopLatency: hopLatency, ServiceTime: 1 / p.Cap,
			Duration: 30, WarmUp: 5, Seed: p.Seed,
		}
		qcfg.Holders = []bitops.PID{p.Target}
		single, err := queuesim.Run(qcfg)
		if err != nil {
			return nil, fmt.Errorf("rate=%v single: %w", rate, err)
		}
		sim := loadsim.New(loadsim.Config{
			M: p.M, Target: p.Target, Cap: p.Cap,
			Live: live, Rates: workload.Even(rate, live), Seed: p.Seed,
		})
		if _, err := sim.Balance(replication.LessLog{}, 0); err != nil {
			return nil, fmt.Errorf("rate=%v balance: %w", rate, err)
		}
		qcfg.Holders = sim.Holders()
		balanced, err := queuesim.Run(qcfg)
		if err != nil {
			return nil, fmt.Errorf("rate=%v balanced: %w", rate, err)
		}
		rows = append(rows, LatencyRow{
			Rate: rate, Holders: len(qcfg.Holders),
			SingleP50: single.P50, SingleP99: single.P99,
			BalancedP50: balanced.P50, BalancedP99: balanced.P99,
		})
	}
	return rows, nil
}

// LatencyTable renders the latency comparison in milliseconds.
func LatencyTable(rows []LatencyRow) string {
	var b strings.Builder
	b.WriteString("response times: single copy vs LessLog-balanced placement (ms)\n")
	fmt.Fprintf(&b, "%-10s%-10s%-14s%-14s%-14s%-14s\n",
		"req/s", "holders", "single p50", "single p99", "balanced p50", "balanced p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.0f%-10d%-14.1f%-14.1f%-14.1f%-14.1f\n",
			r.Rate, r.Holders, r.SingleP50*1e3, r.SingleP99*1e3, r.BalancedP50*1e3, r.BalancedP99*1e3)
	}
	return b.String()
}

// FTCostRow reports the load-balancing cost of one fault-tolerance
// degree.
type FTCostRow struct {
	B        int
	Copies   int // initial authoritative copies, 2^b
	Replicas int // additional replicas to balance
	MeanHops float64
}

// FTCost measures what the §4 fault-tolerant model costs and buys at the
// load level: with b bits reserved, a file starts with 2^b copies in 2^b
// independent subtrees, so the same total request rate starts spread
// b-ways and needs fewer load replicas, served over shorter subtree
// paths.
func FTCost(p Params, rate float64, bs []int) ([]FTCostRow, error) {
	var rows []FTCostRow
	for _, b := range bs {
		live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
		sim := loadsim.New(loadsim.Config{
			M: p.M, B: b, Target: p.Target, Cap: p.Cap,
			Live: live, Rates: workload.Even(rate, live), Seed: p.Seed,
		})
		res, err := sim.Balance(replication.LessLog{}, 0)
		if err != nil {
			return nil, fmt.Errorf("b=%d: %w", b, err)
		}
		rows = append(rows, FTCostRow{
			B: b, Copies: len(sim.Primaries()),
			Replicas: res.ReplicasCreated,
			MeanHops: sim.MeanHops(),
		})
	}
	return rows, nil
}

// FTCostTable renders the fault-tolerance cost sweep.
func FTCostTable(rows []FTCostRow, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-tolerance degree vs balancing cost (%d req/s, LessLog)\n", int(rate))
	fmt.Fprintf(&b, "%-4s%-10s%-10s%-12s\n", "b", "copies", "replicas", "mean hops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d%-10d%-10d%-12.2f\n", r.B, r.Copies, r.Replicas, r.MeanHops)
	}
	return b.String()
}

// FlashRow is one observation window of the flash-crowd experiment.
type FlashRow struct {
	Window   int
	Holders  int
	MaxServe uint64 // hottest holder's serve count in the window
	Evicted  int
}

// FlashCrowd measures how quickly the logless mechanism reacts: a file
// is served quietly, then a flash crowd raises demand to one get per node
// per window; each window every overloaded holder replicates once. After
// crowdWindows the crowd leaves (demand drops to one get per 16 nodes)
// and the counter-based eviction reclaims replicas. The returned rows are
// the per-window hottest-holder serve counts — the engine-level dynamics
// of Figure 5's end state.
func FlashCrowd(p Params, crowdWindows, quietWindows int, threshold uint64) ([]FlashRow, error) {
	c, err := core.New(core.Config{M: p.M, InitialNodes: bitops.Slots(p.M),
		Hasher: hashring.Fixed(p.Target), Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	if _, err := c.Insert(0, "flash", []byte("x")); err != nil {
		return nil, err
	}
	n := bitops.Slots(p.M)
	var rows []FlashRow
	window := func(w int, stride int, evictBelow uint64) error {
		c.ResetWindow()
		for q := 0; q < n; q += stride {
			if _, err := c.Get(bitops.PID(q), "flash"); err != nil {
				return err
			}
		}
		var maxServe uint64
		holders := c.HoldersOf("flash")
		for _, h := range holders {
			nd, _ := c.Node(h)
			if hits := nd.Store().Hits("flash"); hits > maxServe {
				maxServe = hits
			}
		}
		c.ReplicateHot(threshold)
		evicted := 0
		if evictBelow > 0 {
			evicted = c.EvictCold(evictBelow)
		}
		rows = append(rows, FlashRow{
			Window: w, Holders: len(holders), MaxServe: maxServe, Evicted: evicted,
		})
		return nil
	}
	w := 0
	for i := 0; i < crowdWindows; i++ {
		if err := window(w, 1, 0); err != nil {
			return nil, err
		}
		w++
	}
	for i := 0; i < quietWindows; i++ {
		if err := window(w, 16, 2); err != nil {
			return nil, err
		}
		w++
	}
	return rows, nil
}

// FlashCrowdTable renders the flash-crowd dynamics.
func FlashCrowdTable(rows []FlashRow, threshold uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flash-crowd dynamics (one get/node/window during the crowd, threshold %d)\n", threshold)
	fmt.Fprintf(&b, "%-8s%-10s%-12s%-10s\n", "window", "holders", "max serve", "evicted")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%-10d%-12d%-10d\n", r.Window, r.Holders, r.MaxServe, r.Evicted)
	}
	return b.String()
}

// UpdateCostRow reports the §2.2 top-down update broadcast's cost at one
// replica population.
type UpdateCostRow struct {
	Holders  int // copies in the system when the update ran
	Updated  int // copies rewritten (must equal Holders)
	Messages int // broadcast messages delivered
}

// UpdateCost grows a hot file's replica set through engine-level overload
// windows (one get per node, replicate over threshold) and measures the
// messages each top-down update broadcast costs. The §2.2 design keeps
// the broadcast proportional to the number of *holders plus their direct
// children*, not the system size; this experiment puts numbers on that.
func UpdateCost(p Params, rounds int) ([]UpdateCostRow, error) {
	c, err := core.New(core.Config{M: p.M, InitialNodes: bitops.Slots(p.M),
		Hasher: hashring.Fixed(p.Target), Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	if _, err := c.Insert(0, "hot", []byte("v0")); err != nil {
		return nil, err
	}
	n := bitops.Slots(p.M)
	var rows []UpdateCostRow
	for round := 0; round <= rounds; round++ {
		res, err := c.Update(bitops.PID(round%n), "hot", []byte(fmt.Sprintf("v%d", round+1)))
		if err != nil {
			return nil, err
		}
		holders := len(c.HoldersOf("hot"))
		if res.CopiesUpdated != holders {
			return nil, fmt.Errorf("update reached %d of %d copies", res.CopiesUpdated, holders)
		}
		rows = append(rows, UpdateCostRow{
			Holders: holders, Updated: res.CopiesUpdated, Messages: res.Messages,
		})
		// Grow the replica population: one observation window, then an
		// overload check at a threshold that halves each round.
		c.ResetWindow()
		for q := 0; q < n; q++ {
			if _, err := c.Get(bitops.PID(q), "hot"); err != nil {
				return nil, err
			}
		}
		c.ReplicateHot(uint64(n) >> uint(round+1))
	}
	return rows, nil
}

// UpdateCostTable renders the update-broadcast cost sweep.
func UpdateCostTable(rows []UpdateCostRow) string {
	var b strings.Builder
	b.WriteString("top-down update broadcast cost as replicas spread (§2.2)\n")
	fmt.Fprintf(&b, "%-10s%-10s%-12s\n", "holders", "updated", "messages")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d%-10d%-12d\n", r.Holders, r.Updated, r.Messages)
	}
	return b.String()
}

// LogOverheadRow reports the bookkeeping a log-based replication method
// carries to make one placement decision, against LessLog's zero.
type LogOverheadRow struct {
	Requests     int
	Entries      int // retained log entries across the system
	Bytes        int // memory footprint of those logs
	LessLogBytes int // always 0: the point of the paper
}

// LogOverhead quantifies the §1 motivation: it replays request batches of
// growing size through the lookup tree, recording at the serving node the
// (origin, forwarder) entries a log-based system must retain to make its
// placement decision, and reports the footprint. logCap bounds each
// per-file ring as a real deployment would; pass a cap at least as large
// as the biggest batch to model unbounded logs.
func LogOverhead(p Params, requestCounts []int, logCap int) ([]LogOverheadRow, error) {
	live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
	v := ptree.NewView(p.Target, live, 0)
	n := bitops.Slots(p.M)
	var rows []LogOverheadRow
	for _, reqs := range requestCounts {
		rec := accesslog.NewRecorder(logCap)
		for i := 0; i < reqs; i++ {
			origin := bitops.PID(i % n)
			stops := v.PathLiveStops(origin)
			server := stops[len(stops)-1]
			forwarder := origin
			if len(stops) >= 2 {
				forwarder = stops[len(stops)-2]
			}
			rec.Record(server, "hot", accesslog.Entry{Origin: origin, Forwarder: forwarder})
		}
		entries, bytes := rec.Footprint()
		rows = append(rows, LogOverheadRow{
			Requests: reqs, Entries: entries, Bytes: bytes,
		})
	}
	return rows, nil
}

// LogOverheadTable renders the log-footprint comparison.
func LogOverheadTable(rows []LogOverheadRow) string {
	var b strings.Builder
	b.WriteString("client-access-log footprint for one placement decision (log-based vs LessLog)\n")
	fmt.Fprintf(&b, "%-12s%-18s%-16s%-14s\n", "requests", "log entries kept", "log bytes", "lesslog bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d%-18d%-16d%-14d\n", r.Requests, r.Entries, r.Bytes, r.LessLogBytes)
	}
	return b.String()
}

// MultiFileRow reports one multi-file balance configuration.
type MultiFileRow struct {
	Files    int
	Replicas int
	Holders  int
}

// MultiFile generalizes Figure 5 to several concurrently hot files
// sharing a fixed total rate, balanced under the aggregate per-node cap
// (internal/multisim). The paper evaluates a single file; this extension
// shows the logless placement composes across files.
func MultiFile(p Params, total float64, ks []int) ([]MultiFileRow, error) {
	var rows []MultiFileRow
	for _, k := range ks {
		live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
		sim := multisim.New(multisim.Config{
			M: p.M, Cap: p.Cap, Live: live,
			Files: multisim.EvenSplit(k, total, p.M, live),
			Seed:  p.Seed,
		})
		res, err := sim.Balance(replication.LessLog{}, 0)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		rows = append(rows, MultiFileRow{
			Files:    k,
			Replicas: res.ReplicasCreated,
			Holders:  res.Summary.Holders,
		})
	}
	return rows, nil
}

// MultiFileTable renders the multi-file sweep.
func MultiFileTable(rows []MultiFileRow, total float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replicas to balance %d req/s split across K hot files (LessLog)\n", int(total))
	fmt.Fprintf(&b, "%-8s%-10s%-10s\n", "files", "replicas", "holders")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%-10d%-10d\n", r.Files, r.Replicas, r.Holders)
	}
	return b.String()
}

// SensitivityRow reports replicas-to-balance at one identifier width.
type SensitivityRow struct {
	M        int
	Nodes    int
	Replicas int
}

// SensitivityM sweeps the identifier width at a fixed total request rate
// and per-node cap, with the rate scaled so the per-node origination is
// constant across widths.
func SensitivityM(ms []int, perNodeRate, cap float64, seed uint64) ([]SensitivityRow, error) {
	var rows []SensitivityRow
	for _, m := range ms {
		n := bitops.Slots(m)
		live := liveness.NewAllLive(m, n)
		sim := loadsim.New(loadsim.Config{
			M: m, Target: bitops.PID(4 % n), Cap: cap,
			Live:  live,
			Rates: workload.Even(perNodeRate*float64(n), live),
			Seed:  seed,
		})
		res, err := sim.Balance(replication.LessLog{}, 0)
		if err != nil {
			return nil, fmt.Errorf("m=%d: %w", m, err)
		}
		rows = append(rows, SensitivityRow{M: m, Nodes: n, Replicas: res.ReplicasCreated})
	}
	return rows, nil
}

// SensitivityTable renders the width sweep.
func SensitivityTable(rows []SensitivityRow, perNodeRate, cap float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replicas to balance vs system size (%.1f req/s per node, cap %.0f)\n", perNodeRate, cap)
	fmt.Fprintf(&b, "%-4s%-8s%-10s\n", "m", "nodes", "replicas")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d%-8d%-10d\n", r.M, r.Nodes, r.Replicas)
	}
	return b.String()
}
