// Package experiments reproduces the paper's evaluation (§6): the number
// of replicas each replication method creates to reach a load-balanced
// state, swept over the total incoming request rate, for the four figures:
//
//	Figure 5 — evenly distributed requests; log-based vs LessLog vs random
//	Figure 6 — evenly distributed requests; LessLog with 10/20/30% dead
//	Figure 7 — 80/20 locality; log-based vs LessLog vs random
//	Figure 8 — 80/20 locality; LessLog with 10/20/30% dead
//
// Paper parameters: m = 10 (1024 identifier slots), b = 0, per-node load
// cap 100 req/s, one popular file, rates 1,000–20,000 req/s in 1,000
// steps. Randomized inputs (dead sets, hot sets, the random baseline) are
// averaged over Trials seeds.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// Params configures a sweep. The zero value is unusable; start from
// PaperParams.
type Params struct {
	M        int        // identifier width
	Target   bitops.PID // ψ(f) of the popular file
	Cap      float64    // overload threshold, req/s
	RateMin  float64    // sweep start (inclusive)
	RateMax  float64    // sweep end (inclusive)
	RateStep float64    // sweep step
	HotShare float64    // locality: share of requests on the hot region
	HotFrac  float64    // locality: fraction of nodes in the hot region
	Trials   int        // seeds averaged per point
	Seed     uint64     // base seed
	// Parallelism bounds the number of sweep points simulated
	// concurrently; 0 means GOMAXPROCS. Every point is seeded
	// independently, so results are identical at any parallelism.
	Parallelism int
}

// PaperParams returns the §6 configuration.
func PaperParams() Params {
	return Params{
		M:        10,
		Target:   4,
		Cap:      100,
		RateMin:  1000,
		RateMax:  20000,
		RateStep: 1000,
		HotShare: 0.8,
		HotFrac:  0.2,
		Trials:   3,
		Seed:     1,
	}
}

// Rates returns the swept x-axis values.
func (p Params) Rates() []float64 {
	var out []float64
	for r := p.RateMin; r <= p.RateMax+1e-9; r += p.RateStep {
		out = append(out, r)
	}
	return out
}

// Series is one curve of a figure.
type Series struct {
	Label    string
	Replicas []float64 // mean replicas created, aligned with Figure.Rates
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Rates  []float64
	Series []Series
}

// RunPoint simulates one (strategy, rate, deadFrac, locality) point with
// one seed and returns the replicas created. An error means the system
// could not be balanced, which does not occur in the paper's ranges.
func RunPoint(p Params, strat replication.Strategy, rate, deadFrac float64, locality bool, seed uint64) (int, error) {
	rng := xrand.New(seed)
	live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
	if deadFrac > 0 {
		workload.KillRandom(live, deadFrac, bitops.PID(^uint32(0)), rng.Fork())
	}
	var rates workload.Rates
	if locality {
		rates = workload.Locality(rate, p.HotShare, p.HotFrac, live, rng.Fork())
	} else {
		rates = workload.Even(rate, live)
	}
	sim := loadsim.New(loadsim.Config{
		M: p.M, B: 0, Target: p.Target, Cap: p.Cap,
		Live: live, Rates: rates, Seed: rng.Uint64(),
	})
	res, err := sim.Balance(strat, 0)
	if errors.Is(err, loadsim.ErrStuck) {
		// At extreme dead-fraction/locality combinations a hot node's own
		// request origination exceeds the cap, so no replica placement can
		// relieve it; the methods replicate until nothing more helps and
		// the replica count — the figures' metric — is still well defined.
		return res.ReplicasCreated, nil
	}
	if err != nil {
		return res.ReplicasCreated, fmt.Errorf("rate=%v dead=%v locality=%v: %w",
			rate, deadFrac, locality, err)
	}
	return res.ReplicasCreated, nil
}

// meanPoint averages RunPoint over p.Trials seeds.
func meanPoint(p Params, strat replication.Strategy, rate, deadFrac float64, locality bool) (float64, error) {
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		n, err := RunPoint(p, strat, rate, deadFrac, locality, p.Seed+uint64(t)*7919)
		if err != nil {
			return 0, err
		}
		sum += float64(n)
	}
	return sum / float64(trials), nil
}

// sweep builds one Series, simulating the sweep points concurrently on a
// bounded worker pool. Points are independent seeded simulations, so the
// series is identical at any parallelism.
func sweep(p Params, label string, strat replication.Strategy, deadFrac float64, locality bool) (Series, error) {
	rates := p.Rates()
	s := Series{Label: label, Replicas: make([]float64, len(rates))}
	workers := p.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rates) {
					return
				}
				v, err := meanPoint(p, strat, rates[i], deadFrac, locality)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				s.Replicas[i] = v
			}
		}()
	}
	wg.Wait()
	return s, firstErr
}

// methodSeries builds the three-strategy comparison of Figures 5 and 7.
func methodSeries(p Params, locality bool) ([]Series, error) {
	specs := []struct {
		label string
		strat replication.Strategy
	}{
		{"log-based", replication.LogBased{}},
		{"lesslog", replication.LessLog{}},
		{"random", replication.Random{}},
	}
	var out []Series
	for _, sp := range specs {
		s, err := sweep(p, sp.label, sp.strat, 0, locality)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// deadSeries builds the dead-fraction comparison of Figures 6 and 8.
func deadSeries(p Params, locality bool) ([]Series, error) {
	var out []Series
	for _, frac := range []float64{0.1, 0.2, 0.3} {
		s, err := sweep(p, fmt.Sprintf("%d%% dead", int(frac*100)), replication.LessLog{}, frac, locality)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure5 reproduces "An evenly-distributed load".
func Figure5(p Params) (Figure, error) {
	series, err := methodSeries(p, false)
	return Figure{
		ID:     "figure5",
		Title:  "Replicas to balance an evenly-distributed load",
		XLabel: "incoming requests/s",
		Rates:  p.Rates(),
		Series: series,
	}, err
}

// Figure6 reproduces "An evenly-distributed load on LessLog" (dead nodes).
func Figure6(p Params) (Figure, error) {
	series, err := deadSeries(p, false)
	return Figure{
		ID:     "figure6",
		Title:  "LessLog under an evenly-distributed load with dead nodes",
		XLabel: "incoming requests/s",
		Rates:  p.Rates(),
		Series: series,
	}, err
}

// Figure7 reproduces "A locality model".
func Figure7(p Params) (Figure, error) {
	series, err := methodSeries(p, true)
	return Figure{
		ID:     "figure7",
		Title:  "Replicas to balance an 80/20 locality load",
		XLabel: "incoming requests/s",
		Rates:  p.Rates(),
		Series: series,
	}, err
}

// Figure8 reproduces "A locality model on LessLog" (dead nodes).
func Figure8(p Params) (Figure, error) {
	series, err := deadSeries(p, true)
	return Figure{
		ID:     "figure8",
		Title:  "LessLog under an 80/20 locality load with dead nodes",
		XLabel: "incoming requests/s",
		Rates:  p.Rates(),
		Series: series,
	}, err
}

// ByID dispatches on "figure5".."figure8" or "5".."8".
func ByID(id string, p Params) (Figure, error) {
	switch strings.TrimPrefix(id, "figure") {
	case "5":
		return Figure5(p)
	case "6":
		return Figure6(p)
	case "7":
		return Figure7(p)
	case "8":
		return Figure8(p)
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
}

// Table renders the figure as an aligned text table, one row per rate.
func Table(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%14s", s.Label)
	}
	b.WriteByte('\n')
	for i, r := range f.Rates {
		fmt.Fprintf(&b, "%-12.0f", r)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%14.1f", s.Replicas[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as a comma-separated table with a header row.
func CSV(f Figure) string {
	var b strings.Builder
	b.WriteString("rate")
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for i, r := range f.Rates {
		fmt.Fprintf(&b, "%.0f", r)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.2f", s.Replicas[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the figure as a GitHub-flavored markdown table.
func Markdown(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s** — %s\n\n", f.ID, f.Title)
	b.WriteString("| rate (req/s) |")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Label)
	}
	b.WriteString("\n|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, r := range f.Rates {
		fmt.Fprintf(&b, "| %.0f |", r)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %.1f |", s.Replicas[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckShape verifies the qualitative claims the paper draws from a
// three-method figure: at every sweep point random needs the most replicas
// and the oracle log-based needs no more than LessLog plus slack (LessLog
// is allowed to use "slightly more"). It returns a descriptive error on
// the first violated point.
func CheckShape(f Figure, slackFrac float64) error {
	idx := map[string]int{}
	for i, s := range f.Series {
		idx[s.Label] = i
	}
	li, ok1 := idx["lesslog"]
	ri, ok2 := idx["random"]
	gi, ok3 := idx["log-based"]
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("experiments: figure %s lacks the three method series", f.ID)
	}
	for i, rate := range f.Rates {
		ll := f.Series[li].Replicas[i]
		rnd := f.Series[ri].Replicas[i]
		lb := f.Series[gi].Replicas[i]
		if rnd < ll {
			return fmt.Errorf("%s rate=%.0f: random (%.1f) below lesslog (%.1f)", f.ID, rate, rnd, ll)
		}
		if lb > ll*(1+slackFrac)+1 {
			return fmt.Errorf("%s rate=%.0f: log-based (%.1f) above lesslog (%.1f) beyond slack", f.ID, rate, lb, ll)
		}
	}
	return nil
}

// EvictionPoint reports the §6 counter-based removal mechanism: balance at
// highRate, collapse to lowRate, evict replicas serving below minRate.
type EvictionPoint struct {
	HighRate, LowRate float64
	HoldersAtHigh     int
	Removed           int
	HoldersAfter      int
}

// Eviction runs the eviction demonstration for a set of high rates.
func Eviction(p Params, highRates []float64, lowRate, minRate float64) ([]EvictionPoint, error) {
	var out []EvictionPoint
	for _, hr := range highRates {
		live := liveness.NewAllLive(p.M, bitops.Slots(p.M))
		sim := loadsim.New(loadsim.Config{
			M: p.M, Target: p.Target, Cap: p.Cap,
			Live: live, Rates: workload.Even(hr, live), Seed: p.Seed,
		})
		if _, err := sim.Balance(replication.LessLog{}, 0); err != nil {
			return nil, err
		}
		before := len(sim.Holders())
		sim.SetRates(workload.Even(lowRate, live))
		removed := sim.EvictCold(minRate)
		out = append(out, EvictionPoint{
			HighRate: hr, LowRate: lowRate,
			HoldersAtHigh: before, Removed: removed,
			HoldersAfter: len(sim.Holders()),
		})
	}
	return out, nil
}

// MaxSeriesGap returns the largest pointwise relative gap between two
// labeled series of a figure — used to assert Figure 6/8's "a similar
// number of replicas in all three configurations".
func MaxSeriesGap(f Figure, a, b string) (float64, error) {
	var sa, sb *Series
	for i := range f.Series {
		switch f.Series[i].Label {
		case a:
			sa = &f.Series[i]
		case b:
			sb = &f.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("experiments: series %q or %q not found", a, b)
	}
	gap := 0.0
	for i := range sa.Replicas {
		den := math.Max(sa.Replicas[i], 1)
		g := math.Abs(sa.Replicas[i]-sb.Replicas[i]) / den
		if g > gap {
			gap = g
		}
	}
	return gap, nil
}
