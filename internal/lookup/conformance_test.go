package lookup

// Conformance suite: every routing scheme must find the key's owner from
// any live origin, within its declared hop bound, deterministically, and
// with zero hops when the origin already owns the key.

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// schemesFor builds every scheme over the same population. CAN manages
// its own population, so it only joins the fully-live configurations.
func schemesFor(m int, live *liveness.Set, full bool) []Scheme {
	out := []Scheme{
		NewLessLog(m, live),
		NewChord(m, live),
		NewPastry(m, live),
	}
	if full {
		out = append(out, NewCAN(m, 7))
	}
	return out
}

func TestConformanceFullyLive(t *testing.T) {
	const m = 8
	live := liveness.NewAllLive(m, bitops.Slots(m))
	rng := xrand.New(1)
	for _, s := range schemesFor(m, live, true) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 400; trial++ {
				key := uint32(rng.Intn(bitops.Slots(m)))
				from := bitops.PID(rng.Intn(bitops.Slots(m)))
				owner, hops := s.Lookup(from, key)
				if want := s.Owner(key); owner != want {
					t.Fatalf("Lookup(%d from %d) = %d, want %d", key, from, owner, want)
				}
				if bound := s.MaxHops(); bound > 0 && hops > bound {
					t.Fatalf("hops %d above declared bound %d", hops, bound)
				}
				// Repeatability.
				o2, h2 := s.Lookup(from, key)
				if o2 != owner || h2 != hops {
					t.Fatalf("lookup not deterministic")
				}
			}
			// Owner-origin lookups cost nothing.
			for trial := 0; trial < 50; trial++ {
				key := uint32(rng.Intn(bitops.Slots(m)))
				owner := s.Owner(key)
				o, hops := s.Lookup(owner, key)
				if o != owner || hops != 0 {
					t.Fatalf("self lookup = (%d,%d), want (%d,0)", o, hops, owner)
				}
			}
		})
	}
}

func TestConformanceSparsePopulation(t *testing.T) {
	// Half the identifier slots dead: the identifier-space schemes must
	// still agree with their own Owner everywhere.
	const m = 8
	rng := xrand.New(2)
	live := liveness.NewAllLive(m, bitops.Slots(m))
	workload.KillRandom(live, 0.5, bitops.PID(^uint32(0)), rng.Fork())
	pids := live.LivePIDs()
	for _, s := range schemesFor(m, live, false) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 400; trial++ {
				key := uint32(rng.Intn(bitops.Slots(m)))
				from := pids[rng.Intn(len(pids))]
				owner, hops := s.Lookup(from, key)
				if want := s.Owner(key); owner != want {
					t.Fatalf("Lookup(%d from %d) = %d, want %d", key, from, owner, want)
				}
				if !live.IsLive(owner) {
					t.Fatalf("owner P(%d) is dead", owner)
				}
				if bound := s.MaxHops(); bound > 0 && hops > bound {
					t.Fatalf("hops %d above bound %d", hops, bound)
				}
			}
		})
	}
}

func TestLessLogOwnerIsFindLiveNode(t *testing.T) {
	// The LessLog adapter's notion of ownership must match the paper's
	// placement rule exactly: the target when alive, else the live node
	// with the most offspring in the target's tree.
	const m = 6
	rng := xrand.New(3)
	live := liveness.NewAllLive(m, 64)
	workload.KillRandom(live, 0.4, bitops.PID(^uint32(0)), rng.Fork())
	s := NewLessLog(m, live)
	for key := uint32(0); key < 64; key++ {
		owner := s.Owner(key)
		if live.IsLive(bitops.PID(key)) && owner != bitops.PID(key) {
			t.Fatalf("live target %d not its own owner (got %d)", key, owner)
		}
	}
}
