// Package lookup gives the four routing substrates of this repository —
// LessLog's binomial trees, Chord's finger tables, the Pastry/Tapestry
// prefix mesh and CAN's coordinate zones — one common interface, so the
// hop-comparison experiments and the conformance test-suite can treat
// them uniformly. Every scheme answers the same question: starting from
// a live node, which node owns this key and how many forwarding hops does
// reaching it take?
package lookup

import (
	"lesslog/internal/bitops"
	"lesslog/internal/can"
	"lesslog/internal/chord"
	"lesslog/internal/liveness"
	"lesslog/internal/pastry"
	"lesslog/internal/ptree"
	"lesslog/internal/xrand"
)

// Scheme is a routed key-ownership structure over a fixed live set.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Owner returns the node responsible for key.
	Owner(key uint32) bitops.PID
	// Lookup routes from a live node toward key, returning the owner and
	// the forwarding hop count.
	Lookup(from bitops.PID, key uint32) (bitops.PID, int)
	// MaxHops returns the scheme's worst-case hop bound for this
	// population, for conformance checking (0 = unbounded/unknown).
	MaxHops() int
}

// LessLog adapts the paper's lookup trees: the owner of key k is the
// FINDLIVENODE placement in the tree of target k, and routing is the
// live-ancestor walk with the §3 fallback.
type LessLog struct {
	m    int
	live *liveness.Set
}

// NewLessLog builds the adapter.
func NewLessLog(m int, live *liveness.Set) *LessLog {
	return &LessLog{m: m, live: live}
}

// Name implements Scheme.
func (l *LessLog) Name() string { return "lesslog" }

// MaxHops implements Scheme: at most m live-ancestor hops plus the
// fallback jump.
func (l *LessLog) MaxHops() int { return l.m + 1 }

// Owner implements Scheme.
func (l *LessLog) Owner(key uint32) bitops.PID {
	v := ptree.NewView(bitops.PID(key)&bitops.PID(bitops.Mask(l.m)), l.live, 0)
	p, ok := v.PrimaryHolder(0)
	if !ok {
		panic("lookup: no live node")
	}
	return p
}

// Lookup implements Scheme.
func (l *LessLog) Lookup(from bitops.PID, key uint32) (bitops.PID, int) {
	target := bitops.PID(key) & bitops.PID(bitops.Mask(l.m))
	v := ptree.NewView(target, l.live, 0)
	stops := v.PathLiveStops(from)
	if len(stops) > 0 {
		last := stops[len(stops)-1]
		if last == target {
			return last, len(stops) - 1
		}
	}
	// Dead target: §3 second step.
	p, ok := v.PrimaryHolder(0)
	if !ok {
		panic("lookup: no live node")
	}
	hops := len(stops) // walk hops (len-1) plus the fallback jump
	if len(stops) > 0 && stops[len(stops)-1] == p {
		hops = len(stops) - 1 // the walk already ended at the primary
	}
	return p, hops
}

// Chord adapts the finger-table ring.
type Chord struct {
	m    int
	ring *chord.Ring
}

// NewChord builds the adapter.
func NewChord(m int, live *liveness.Set) *Chord {
	return &Chord{m: m, ring: chord.New(m, live)}
}

// Name implements Scheme.
func (c *Chord) Name() string { return "chord" }

// MaxHops implements Scheme: the ring guarantee is O(log N) w.h.p.; the
// deterministic bound used for conformance is 2m.
func (c *Chord) MaxHops() int { return 2 * c.m }

// Owner implements Scheme.
func (c *Chord) Owner(key uint32) bitops.PID { return c.ring.Successor(key) }

// Lookup implements Scheme.
func (c *Chord) Lookup(from bitops.PID, key uint32) (bitops.PID, int) {
	return c.ring.Lookup(from, key)
}

// Pastry adapts the prefix-routing mesh with base-16 digits.
type Pastry struct {
	m    int
	mesh *pastry.Mesh
}

// NewPastry builds the adapter.
func NewPastry(m int, live *liveness.Set) *Pastry {
	bits := 4
	if bits > m {
		bits = m
	}
	return &Pastry{m: m, mesh: pastry.New(m, bits, live)}
}

// Name implements Scheme.
func (p *Pastry) Name() string { return "pastry" }

// MaxHops implements Scheme: digits plus the leaf walk margin.
func (p *Pastry) MaxHops() int { return 3*p.m + 8 }

// Owner implements Scheme.
func (p *Pastry) Owner(key uint32) bitops.PID {
	return p.mesh.Owner(bitops.PID(key) & bitops.PID(bitops.Mask(p.m)))
}

// Lookup implements Scheme.
func (p *Pastry) Lookup(from bitops.PID, key uint32) (bitops.PID, int) {
	return p.mesh.Lookup(from, bitops.PID(key)&bitops.PID(bitops.Mask(p.m)))
}

// CAN adapts the 2-d coordinate network: keys map to torus points by a
// seeded hash, and node identifiers are zone indices (CAN has no PID
// space of its own, so the adapter requires a dense population:
// zone i == PID i).
type CAN struct {
	m  int
	nw *can.Network
}

// NewCAN builds a CAN over 2^m zones. CAN constructs its own population,
// so unlike the other adapters it ignores liveness patterns; use it only
// with fully-live sets.
func NewCAN(m int, seed uint64) *CAN {
	return &CAN{m: m, nw: can.New(2, bitops.Slots(m), seed)}
}

// Name implements Scheme.
func (c *CAN) Name() string { return "can-d2" }

// MaxHops implements Scheme: the d·N^(1/d) scaling with generous slack
// for the skewed zones random splits produce.
func (c *CAN) MaxHops() int {
	n := bitops.Slots(c.m)
	root := 1
	for root*root < n {
		root++
	}
	return 16 * root
}

// point maps a key to a torus point deterministically.
func (c *CAN) point(key uint32) []float64 {
	r := xrand.New(uint64(key)*0x9e3779b97f4a7c15 + 1)
	return []float64{r.Float64(), r.Float64()}
}

// Owner implements Scheme.
func (c *CAN) Owner(key uint32) bitops.PID {
	p := c.point(key)
	// The zone containing the point; lookup from zone 0 finds it.
	owner, _ := c.nw.Lookup(0, p)
	return bitops.PID(owner)
}

// Lookup implements Scheme.
func (c *CAN) Lookup(from bitops.PID, key uint32) (bitops.PID, int) {
	owner, hops := c.nw.Lookup(int(from), c.point(key))
	return bitops.PID(owner), hops
}
