package vtree

import (
	"strings"
	"testing"
	"testing/quick"

	"lesslog/internal/bitops"
)

func TestValidateAgainstClosedForms(t *testing.T) {
	for m := 1; m <= 12; m++ {
		if err := New(m).Validate(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

func TestPaperFigure1Structure(t *testing.T) {
	// The 16-node virtual lookup tree of Figure 1: root 1111 has four
	// children; 1110 has 7 offspring and 1100 has 3.
	tr := New(4)
	root := tr.Root()
	if root != 0b1111 {
		t.Fatalf("root = %04b", root)
	}
	kids := tr.Children(root)
	want := []bitops.VID{0b1110, 0b1101, 0b1011, 0b0111}
	if len(kids) != 4 {
		t.Fatalf("root children = %v", kids)
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("root children = %v, want %v", kids, want)
		}
	}
	if tr.Offspring(0b1110) != 7 || tr.Offspring(0b1100) != 3 {
		t.Fatalf("offspring(1110)=%d offspring(1100)=%d, want 7 and 3",
			tr.Offspring(0b1110), tr.Offspring(0b1100))
	}
	// Property 2 example: parent of 0110 is 1110.
	if p, ok := tr.Parent(0b0110); !ok || p != 0b1110 {
		t.Fatalf("parent(0110) = %04b", p)
	}
}

func TestPreorderCoversAll(t *testing.T) {
	for _, m := range []int{1, 4, 8} {
		tr := New(m)
		pre := tr.Preorder()
		if len(pre) != tr.Slots() {
			t.Fatalf("m=%d preorder has %d of %d", m, len(pre), tr.Slots())
		}
		seen := make([]bool, tr.Slots())
		for _, v := range pre {
			if seen[v] {
				t.Fatalf("m=%d preorder repeats %b", m, v)
			}
			seen[v] = true
		}
		if pre[0] != tr.Root() {
			t.Fatalf("m=%d preorder does not start at root", m)
		}
		// Parents precede children in preorder.
		pos := make([]int, tr.Slots())
		for i, v := range pre {
			pos[v] = i
		}
		for _, v := range pre {
			if p, ok := tr.Parent(v); ok && pos[p] >= pos[v] {
				t.Fatalf("m=%d parent %b after child %b", m, p, v)
			}
		}
	}
}

func TestChildrenListEqualsOffspringSort(t *testing.T) {
	// The §2.2 children list (descending offspring) must coincide with
	// the descending-VID child order for every node.
	for _, m := range []int{2, 4, 10} {
		tr := New(m)
		for v := bitops.VID(0); v < bitops.VID(tr.Slots()); v++ {
			kids := tr.ChildrenList(v)
			sorted := tr.SortedByOffspring(kids)
			for i := range kids {
				if kids[i] != sorted[i] {
					t.Fatalf("m=%d children list of %b not offspring-sorted: %v vs %v",
						m, v, kids, sorted)
				}
			}
		}
	}
}

func TestDepthBound(t *testing.T) {
	tr := New(10)
	for v := bitops.VID(0); v < bitops.VID(tr.Slots()); v++ {
		if tr.Depth(v) > 10 {
			t.Fatalf("depth(%b) = %d exceeds m", v, tr.Depth(v))
		}
	}
	if tr.Depth(0) != 10 {
		t.Fatalf("depth of all-zeros VID = %d, want m", tr.Depth(0))
	}
}

func TestRender(t *testing.T) {
	tr := New(2)
	got := tr.Render(nil)
	// 4-node tree: root 11 with children 10 (which has child 00) and 01.
	want := "11\n├── 10\n│   └── 00\n└── 01\n"
	if got != want {
		t.Fatalf("Render:\n%s\nwant:\n%s", got, want)
	}
	// With labels.
	labeled := tr.Render(func(v bitops.VID) string { return " <" + string('a'+byte(v)) + ">" })
	if !strings.Contains(labeled, "11 <d>") || !strings.Contains(labeled, "00 <a>") {
		t.Fatalf("labeled render missing labels:\n%s", labeled)
	}
}

func TestQuickSubtreeSizes(t *testing.T) {
	f := func(rawM uint8, rawV uint32) bool {
		m := int(rawM)%10 + 1
		tr := New(m)
		v := bitops.VID(rawV) & bitops.Mask(m)
		return tr.Offspring(v)+1 == bitops.SubtreeSize(v, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewM10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(10)
	}
}
