// Package vtree materializes the unique virtual binomial lookup tree of an
// m-bit LessLog system (paper §2.1, Figure 1).
//
// All routing in the reproduction uses the closed-form bit arithmetic in
// internal/bitops; this package exists to build the same tree explicitly
// from Property 1, so tests can prove the closed forms and the explicit
// construction agree node-for-node, and so the CLI tools can render the
// trees the paper draws. It also precomputes per-VID tables (parents,
// depths, offspring counts, preorder) that the analytic simulator reuses to
// avoid recomputing bit walks in its inner loop.
package vtree

import (
	"fmt"
	"sort"
	"strings"

	"lesslog/internal/bitops"
)

// Tree is a fully materialized m-bit virtual lookup tree.
type Tree struct {
	m         int
	parent    []bitops.VID   // parent[v]; parent[root] == root
	children  [][]bitops.VID // children[v], descending VID order
	depth     []int
	offspring []int
	preorder  []bitops.VID // root-first traversal, children in list order
}

// New builds the virtual lookup tree for identifier width m by direct
// application of Property 1 from the root downward.
func New(m int) *Tree {
	bitops.CheckWidth(m)
	n := bitops.Slots(m)
	t := &Tree{
		m:         m,
		parent:    make([]bitops.VID, n),
		children:  make([][]bitops.VID, n),
		depth:     make([]int, n),
		offspring: make([]int, n),
		preorder:  make([]bitops.VID, 0, n),
	}
	root := bitops.RootVID(m)
	t.parent[root] = root
	t.build(root, 0)
	return t
}

// build expands v per Property 1 and records the derived tables. It
// returns the size of v's subtree.
func (t *Tree) build(v bitops.VID, depth int) int {
	t.depth[v] = depth
	t.preorder = append(t.preorder, v)
	kids := bitops.ChildrenVIDs(v, t.m)
	t.children[v] = kids
	size := 1
	for _, c := range kids {
		t.parent[c] = v
		size += t.build(c, depth+1)
	}
	t.offspring[v] = size - 1
	return size
}

// M returns the identifier width.
func (t *Tree) M() int { return t.m }

// Slots returns the number of VIDs, 2^m.
func (t *Tree) Slots() int { return len(t.parent) }

// Root returns the root VID (all ones).
func (t *Tree) Root() bitops.VID { return bitops.RootVID(t.m) }

// Parent returns the parent of v and whether v has one.
func (t *Tree) Parent(v bitops.VID) (bitops.VID, bool) {
	p := t.parent[v]
	return p, p != v
}

// Children returns v's children in descending VID (= descending offspring)
// order. The returned slice is shared; callers must not modify it.
func (t *Tree) Children(v bitops.VID) []bitops.VID { return t.children[v] }

// Depth returns the number of edges between v and the root.
func (t *Tree) Depth(v bitops.VID) int { return t.depth[v] }

// Offspring returns the number of proper descendants of v.
func (t *Tree) Offspring(v bitops.VID) int { return t.offspring[v] }

// Preorder returns a root-first traversal with children visited in
// children-list order. The returned slice is shared; callers must not
// modify it.
func (t *Tree) Preorder() []bitops.VID { return t.preorder }

// ChildrenList returns v's children sorted by descending offspring count,
// the order REPLICATEFILE consumes (§2.2). For the virtual tree this is
// identical to Children; the method exists to document the equivalence and
// is verified against an explicit sort in the tests.
func (t *Tree) ChildrenList(v bitops.VID) []bitops.VID { return t.children[v] }

// Validate re-derives every stored relation from the bitops closed forms
// and returns an error describing the first disagreement, if any. It is
// the bridge between the paper's constructive definition (Property 1) and
// the bit arithmetic the system actually routes with.
func (t *Tree) Validate() error {
	for v := bitops.VID(0); v < bitops.VID(t.Slots()); v++ {
		p, ok := bitops.ParentVID(v, t.m)
		sp, sok := t.Parent(v)
		if ok != sok || (ok && p != sp) {
			return fmt.Errorf("vtree: parent(%0*b) stored %0*b, closed form %0*b",
				t.m, v, t.m, sp, t.m, p)
		}
		if got, want := t.Offspring(v), bitops.OffspringCount(v, t.m); got != want {
			return fmt.Errorf("vtree: offspring(%0*b) stored %d, closed form %d",
				t.m, v, got, want)
		}
		if got, want := t.Depth(v), bitops.Depth(v, t.m); got != want {
			return fmt.Errorf("vtree: depth(%0*b) stored %d, closed form %d",
				t.m, v, got, want)
		}
		kids := bitops.ChildrenVIDs(v, t.m)
		if len(kids) != len(t.children[v]) {
			return fmt.Errorf("vtree: children(%0*b) stored %d, closed form %d",
				t.m, v, len(t.children[v]), len(kids))
		}
		for i := range kids {
			if kids[i] != t.children[v][i] {
				return fmt.Errorf("vtree: children(%0*b)[%d] stored %0*b, closed form %0*b",
					t.m, v, i, t.m, t.children[v][i], t.m, kids[i])
			}
		}
	}
	return nil
}

// Render draws the tree in an indented outline, one node per line, with
// binary VIDs — the textual equivalent of the paper's Figure 1. If label
// is non-nil its result is appended to each line (the physical-tree
// renderer passes PIDs).
func (t *Tree) Render(label func(v bitops.VID) string) string {
	var b strings.Builder
	var walk func(v bitops.VID, prefix string, last bool)
	walk = func(v bitops.VID, prefix string, last bool) {
		connector, childPrefix := "├── ", prefix+"│   "
		if last {
			connector, childPrefix = "└── ", prefix+"    "
		}
		if v == t.Root() {
			connector, childPrefix = "", ""
		}
		fmt.Fprintf(&b, "%s%s%0*b", prefix, connector, t.m, v)
		if label != nil {
			b.WriteString(label(v))
		}
		b.WriteByte('\n')
		kids := t.children[v]
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	walk(t.Root(), "", true)
	return b.String()
}

// SortedByOffspring returns the given VIDs sorted by descending offspring
// count, breaking ties by descending VID. Used by tests to confirm the
// children-list order claim.
func (t *Tree) SortedByOffspring(vs []bitops.VID) []bitops.VID {
	out := append([]bitops.VID(nil), vs...)
	sort.Slice(out, func(i, j int) bool {
		oi, oj := t.offspring[out[i]], t.offspring[out[j]]
		if oi != oj {
			return oi > oj
		}
		return out[i] > out[j]
	})
	return out
}
