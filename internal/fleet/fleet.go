// Package fleet is the cluster half of the observability plane
// (docs/OBSERVABILITY.md): it scrapes every peer's structured stat
// snapshot over the wire and merges them into one cluster view — the
// engine behind `lesslog-top`. Per-peer DistStat summaries cannot be
// combined (quantiles do not add), so aggregation works on the raw
// per-kind histogram bucket vectors each snapshot carries
// (HandlerLatencyHist): bucket vectors merge exactly, and the fleet
// percentiles fall out of the merged distribution with the same error
// bound a single peer reports. Replica spread and the hot-name ranking
// come from the per-name inventories (§6 serve counters), summed across
// holders.
package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"lesslog/internal/benchjson"
	"lesslog/internal/metrics"
	"lesslog/internal/netnode"
)

// PeerStat is one scraped peer: its address, its snapshot, and the
// scrape error if it could not be reached (Stat is zero then).
type PeerStat struct {
	Addr string
	Stat netnode.StatSnapshot
	Err  error
}

// Scrape fetches every peer's full stat snapshot (inventory included)
// concurrently. The result preserves addr order; unreachable peers carry
// their error rather than failing the sweep — a fleet view with a hole
// beats no view during an outage.
func Scrape(addrs []string) []PeerStat {
	out := make([]PeerStat, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i].Addr = addr
			out[i].Stat, out[i].Err = netnode.NewClient(addr).StatSnapshotFull()
		}(i, addr)
	}
	wg.Wait()
	return out
}

// Dist is one merged fleet distribution, milliseconds for latencies.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

const nsToMS = 1e-6

func distOf(s metrics.HistogramSnapshot, scale float64) Dist {
	return Dist{
		Count: s.Count,
		Mean:  s.Mean() * scale,
		P50:   s.Quantile(0.5) * scale,
		P95:   s.Quantile(0.95) * scale,
		P99:   s.Quantile(0.99) * scale,
		Max:   float64(s.Max) * scale,
	}
}

// HotName is one row of the fleet-wide hot-name ranking: §6 serve
// counters summed across every holder, plus how many copies the fleet
// holds.
type HotName struct {
	Name   string `json:"name"`
	Hits   uint64 `json:"hits"`
	Copies int    `json:"copies"`
}

// Gauge is a min/mean/max spread of one instantaneous per-peer gauge.
type Gauge struct {
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	Total int64   `json:"total"`
}

// Cluster is the merged fleet view.
type Cluster struct {
	Peers       int      `json:"peers"`
	Unreachable []string `json:"unreachable,omitempty"`
	LivePeers   int      `json:"live_peers"` // max over peers' own views

	// Store totals and the copies-per-name spread (replica counts from
	// the scraped inventories; key = copies held, value = names).
	Inserted    int         `json:"inserted"`
	Replicas    int         `json:"replicas"`
	ReplicaDist map[int]int `json:"replica_dist"`

	// Summed lifetime counters.
	Requests  uint64 `json:"requests"`
	Forwards  uint64 `json:"forwards"`
	Served    uint64 `json:"served"`
	Faults    uint64 `json:"faults"`
	Stored    uint64 `json:"stored"`
	Updated   uint64 `json:"updated"`
	Broadcast uint64 `json:"broadcast"`

	// Repair plane totals: counters summed, deficit and tombstones summed
	// gauges, TTFR the worst last-completed episode any peer reports.
	RepairProbes    uint64  `json:"repair_probes"`
	Repaired        uint64  `json:"repaired"`
	RepairPulled    uint64  `json:"repair_pulled"`
	RepairErased    uint64  `json:"repair_erased"`
	RepairSkipped   uint64  `json:"repair_skipped"`
	RepairDeficit   int64   `json:"repair_deficit"`
	Tombstones      int     `json:"tombstones"`
	RepairTTFRMSMax float64 `json:"repair_ttfr_ms_max"`

	// Chunked data plane totals (docs/ROUTING.md): ranged chunks served
	// across the fleet, payload bytes they moved, version-pin refusals,
	// and replica-set locate answers.
	ChunksServed  uint64 `json:"chunks_served"`
	ChunkBytes    uint64 `json:"chunk_bytes"`
	ChunkRefusals uint64 `json:"chunk_refusals"`
	LocateSets    uint64 `json:"locate_sets"`

	// Write plane totals (docs/ROUTING.md): staged upload chunks and
	// bytes, abandoned staging sessions, notify-driven replica pulls and
	// whole-frame fallbacks, hint-guided write entries, and the payload
	// bytes broadcast trees actually carried.
	WriteChunks     uint64 `json:"write_chunks"`
	WriteBytes      uint64 `json:"write_bytes"`
	StagedAborts    uint64 `json:"staged_aborts"`
	NotifyPulls     uint64 `json:"notify_pulls"`
	NotifyFallbacks uint64 `json:"notify_fallbacks"`
	WritesAtHolder  uint64 `json:"writes_at_holder"`
	WritesRemote    uint64 `json:"writes_remote"`
	FanoutBytes     uint64 `json:"fanout_bytes"`

	// Trace plane totals.
	TraceRecorded uint64 `json:"trace_recorded"`
	TraceNoted    uint64 `json:"trace_noted"`

	// PipelineDepth and FanoutActive spread the instantaneous per-peer
	// gauges — a skewed max against a low mean is the overload signature.
	PipelineDepth Gauge `json:"pipeline_depth"`
	FanoutActive  Gauge `json:"fanout_active"`

	// HandlerLatencyMS is the per-kind handler latency of the whole
	// fleet: every peer's raw histogram merged, then quantiled.
	HandlerLatencyMS map[string]Dist `json:"handler_latency_ms"`

	// TopNames ranks the fleet's hottest names by summed serve counters.
	TopNames []HotName `json:"top_names,omitempty"`
}

// Aggregate merges scraped snapshots into one cluster view, ranking at
// most topK hot names (topK <= 0 selects 10). Unreachable peers are
// listed and skipped.
func Aggregate(stats []PeerStat, topK int) Cluster {
	if topK <= 0 {
		topK = 10
	}
	c := Cluster{
		ReplicaDist:      map[int]int{},
		HandlerLatencyMS: map[string]Dist{},
	}
	merged := map[string]metrics.HistogramSnapshot{}
	copies := map[string]int{}
	hits := map[string]uint64{}
	first := true
	for _, ps := range stats {
		if ps.Err != nil {
			c.Unreachable = append(c.Unreachable, ps.Addr)
			continue
		}
		s := ps.Stat
		c.Peers++
		if s.LivePeers > c.LivePeers {
			c.LivePeers = s.LivePeers
		}
		c.Inserted += s.Inserted
		c.Replicas += s.Replicas
		c.Requests += s.Requests
		c.Forwards += s.Forwards
		c.Served += s.Served
		c.Faults += s.Faults
		c.Stored += s.Stored
		c.Updated += s.Updated
		c.Broadcast += s.Broadcast
		c.RepairProbes += s.RepairProbes
		c.Repaired += s.Repaired
		c.RepairPulled += s.RepairPulled
		c.RepairErased += s.RepairErased
		c.RepairSkipped += s.RepairSkipped
		c.RepairDeficit += s.RepairDeficit
		c.Tombstones += s.Tombstones
		if s.RepairTTFRMS > c.RepairTTFRMSMax {
			c.RepairTTFRMSMax = s.RepairTTFRMS
		}
		c.ChunksServed += s.ChunksServed
		c.ChunkBytes += s.ChunkBytes
		c.ChunkRefusals += s.ChunkRefusals
		c.LocateSets += s.LocateSets
		c.WriteChunks += s.WriteChunks
		c.WriteBytes += s.WriteBytes
		c.StagedAborts += s.StagedAborts
		c.NotifyPulls += s.NotifyPulls
		c.NotifyFallbacks += s.NotifyFallbacks
		c.WritesAtHolder += s.WritesAtHolder
		c.WritesRemote += s.WritesRemote
		c.FanoutBytes += s.FanoutBytes
		c.TraceRecorded += s.TraceRecorded
		c.TraceNoted += s.TraceNoted
		c.PipelineDepth = c.PipelineDepth.fold(s.PipelineDepth, first)
		c.FanoutActive = c.FanoutActive.fold(s.FanoutActive, first)
		first = false
		for kind, snap := range s.HandlerLatencyHist {
			m := merged[kind]
			m.Merge(&snap)
			merged[kind] = m
		}
		for _, r := range s.Inventory {
			copies[r.Name]++
			hits[r.Name] += r.Hits
		}
	}
	if c.Peers > 0 {
		c.PipelineDepth.Mean = float64(c.PipelineDepth.Total) / float64(c.Peers)
		c.FanoutActive.Mean = float64(c.FanoutActive.Total) / float64(c.Peers)
	}
	for kind, snap := range merged {
		c.HandlerLatencyMS[kind] = distOf(snap, nsToMS)
	}
	for _, n := range copies {
		c.ReplicaDist[n]++
	}
	for name, h := range hits {
		if h == 0 {
			continue
		}
		c.TopNames = append(c.TopNames, HotName{Name: name, Hits: h, Copies: copies[name]})
	}
	sort.Slice(c.TopNames, func(i, j int) bool {
		if c.TopNames[i].Hits != c.TopNames[j].Hits {
			return c.TopNames[i].Hits > c.TopNames[j].Hits
		}
		return c.TopNames[i].Name < c.TopNames[j].Name
	})
	if len(c.TopNames) > topK {
		c.TopNames = c.TopNames[:topK]
	}
	return c
}

// fold accumulates one peer's gauge value into the spread.
func (g Gauge) fold(v int64, first bool) Gauge {
	if first || v < g.Min {
		g.Min = v
	}
	if first || v > g.Max {
		g.Max = v
	}
	g.Total += v
	return g
}

// RecordBench lands the merged view in BENCH_obs_cluster.json through
// internal/benchjson when BENCH_JSON_DIR is set (no-op otherwise) — the
// machine-readable artifact the obs-cluster bench target commits.
func RecordBench(c Cluster) error {
	extra := map[string]float64{
		"peers":           float64(c.Peers),
		"inserted":        float64(c.Inserted),
		"replicas":        float64(c.Replicas),
		"requests":        float64(c.Requests),
		"served":          float64(c.Served),
		"faults":          float64(c.Faults),
		"repair_probes":   float64(c.RepairProbes),
		"tombstones":      float64(c.Tombstones),
		"chunks_served":   float64(c.ChunksServed),
		"chunk_bytes":     float64(c.ChunkBytes),
		"trace_recorded":  float64(c.TraceRecorded),
		"trace_noted":     float64(c.TraceNoted),
		"repair_ttfr_max": c.RepairTTFRMSMax,
	}
	for kind, d := range c.HandlerLatencyMS {
		extra[kind+"_p50_ms"] = d.P50
		extra[kind+"_p95_ms"] = d.P95
		extra[kind+"_p99_ms"] = d.P99
	}
	return benchjson.Record("obs_cluster", benchjson.Result{
		Name:  "cluster_merge",
		Extra: extra,
	})
}

// Render writes the terminal view of a cluster — the lesslog-top screen
// body.
func Render(w io.Writer, c Cluster) {
	fmt.Fprintf(w, "lesslog cluster: %d peers up", c.Peers)
	if len(c.Unreachable) > 0 {
		fmt.Fprintf(w, ", %d unreachable %v", len(c.Unreachable), c.Unreachable)
	}
	fmt.Fprintf(w, "  (fabric view: %d live)\n", c.LivePeers)
	fmt.Fprintf(w, "files: %d inserted  %d replicas  replica spread:", c.Inserted, c.Replicas)
	var ns []int
	for n := range c.ReplicaDist {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		fmt.Fprintf(w, " %dx=%d", n, c.ReplicaDist[n])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "traffic: req=%d fwd=%d served=%d faults=%d stored=%d updated=%d bcast-legs=%d\n",
		c.Requests, c.Forwards, c.Served, c.Faults, c.Stored, c.Updated, c.Broadcast)
	fmt.Fprintf(w, "repair: probes=%d pushed=%d pulled=%d erased=%d skipped=%d deficit=%dB tombstones=%d ttfr-max=%.1fms\n",
		c.RepairProbes, c.Repaired, c.RepairPulled, c.RepairErased, c.RepairSkipped,
		c.RepairDeficit, c.Tombstones, c.RepairTTFRMSMax)
	fmt.Fprintf(w, "chunks: served=%d bytes=%d refused=%d locate-sets=%d\n",
		c.ChunksServed, c.ChunkBytes, c.ChunkRefusals, c.LocateSets)
	fmt.Fprintf(w, "writes: chunks=%d bytes=%d aborts=%d at-holder=%d remote=%d notify-pulls=%d fallbacks=%d fanout-bytes=%d\n",
		c.WriteChunks, c.WriteBytes, c.StagedAborts, c.WritesAtHolder, c.WritesRemote,
		c.NotifyPulls, c.NotifyFallbacks, c.FanoutBytes)
	fmt.Fprintf(w, "traces: recorded=%d noted=%d   pipeline depth: min=%d mean=%.1f max=%d   fanout legs: min=%d mean=%.1f max=%d\n",
		c.TraceRecorded, c.TraceNoted,
		c.PipelineDepth.Min, c.PipelineDepth.Mean, c.PipelineDepth.Max,
		c.FanoutActive.Min, c.FanoutActive.Mean, c.FanoutActive.Max)

	fmt.Fprintf(w, "\n%-10s %10s %10s %10s %10s %10s\n", "handler", "count", "p50ms", "p95ms", "p99ms", "maxms")
	var kinds []string
	for k := range c.HandlerLatencyMS {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		d := c.HandlerLatencyMS[k]
		fmt.Fprintf(w, "%-10s %10d %10.3f %10.3f %10.3f %10.3f\n", k, d.Count, d.P50, d.P95, d.P99, d.Max)
	}
	if len(c.TopNames) > 0 {
		fmt.Fprintf(w, "\n%-32s %10s %7s\n", "hot name", "hits", "copies")
		for _, h := range c.TopNames {
			fmt.Fprintf(w, "%-32s %10d %7d\n", h.Name, h.Hits, h.Copies)
		}
	}
}
