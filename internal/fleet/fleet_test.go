package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lesslog/internal/benchjson"
	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/metrics"
	"lesslog/internal/netnode"
	"lesslog/internal/store"
)

// snapOf builds one peer's worth of latency samples as a snapshot.
func snapOf(samples ...uint64) metrics.HistogramSnapshot {
	var h metrics.Histogram
	for _, v := range samples {
		h.Observe(v)
	}
	return h.Snapshot()
}

// TestAggregateMergesHistograms checks the core claim of the package:
// fleet percentiles computed from merged bucket vectors equal the
// percentiles of one histogram that observed every peer's samples.
func TestAggregateMergesHistograms(t *testing.T) {
	// Two peers with deliberately skewed distributions: peer A fast,
	// peer B slow. Neither peer's own p99 is the fleet p99.
	a := []uint64{1e6, 2e6, 2e6, 3e6}           // 1–3 ms
	b := []uint64{40e6, 50e6, 60e6, 80e6, 90e6} // 40–90 ms
	stats := []PeerStat{
		{Addr: "a", Stat: netnode.StatSnapshot{
			Served:             4,
			ChunksServed:       3,
			ChunkBytes:         3 << 20,
			LocateSets:         2,
			WriteChunks:        2,
			NotifyPulls:        1,
			FanoutBytes:        1 << 20,
			HandlerLatencyHist: map[string]metrics.HistogramSnapshot{"get": snapOf(a...)},
		}},
		{Addr: "b", Stat: netnode.StatSnapshot{
			Served:             5,
			ChunksServed:       5,
			ChunkBytes:         5 << 20,
			ChunkRefusals:      1,
			LocateSets:         1,
			WriteChunks:        4,
			NotifyPulls:        2,
			FanoutBytes:        2 << 20,
			HandlerLatencyHist: map[string]metrics.HistogramSnapshot{"get": snapOf(b...)},
		}},
		{Addr: "down", Err: errors.New("connection refused")},
	}

	c := Aggregate(stats, 0)
	if c.Peers != 2 || len(c.Unreachable) != 1 || c.Unreachable[0] != "down" {
		t.Fatalf("peers = %d, unreachable = %v", c.Peers, c.Unreachable)
	}
	if c.Served != 9 {
		t.Fatalf("summed served = %d, want 9", c.Served)
	}
	if c.ChunksServed != 8 || c.ChunkBytes != 8<<20 || c.ChunkRefusals != 1 || c.LocateSets != 3 {
		t.Fatalf("chunk plane merge = served %d bytes %d refused %d locate-sets %d, want 8/%d/1/3",
			c.ChunksServed, c.ChunkBytes, c.ChunkRefusals, c.LocateSets, 8<<20)
	}
	if c.WriteChunks != 6 || c.NotifyPulls != 3 || c.FanoutBytes != 3<<20 {
		t.Fatalf("write plane merge = chunks %d pulls %d fanout %d, want 6/3/%d",
			c.WriteChunks, c.NotifyPulls, c.FanoutBytes, 3<<20)
	}

	want := snapOf(append(append([]uint64{}, a...), b...)...)
	got, ok := c.HandlerLatencyMS["get"]
	if !ok {
		t.Fatalf("no merged get distribution: %v", c.HandlerLatencyMS)
	}
	if got.Count != want.Count {
		t.Fatalf("merged count = %d, want %d", got.Count, want.Count)
	}
	for _, q := range []struct {
		q    float64
		have float64
	}{{0.5, got.P50}, {0.95, got.P95}, {0.99, got.P99}} {
		if wantQ := want.Quantile(q.q) * nsToMS; q.have != wantQ {
			t.Fatalf("merged p%g = %v ms, hand-merged histogram says %v ms", q.q*100, q.have, wantQ)
		}
	}
	if got.Max != float64(want.Max)*nsToMS {
		t.Fatalf("merged max = %v, want %v", got.Max, float64(want.Max)*nsToMS)
	}
}

// TestAggregateInventoryViews checks the inventory-derived views: the
// replica-count distribution and the hit-ranked top-K with summed
// per-holder serve counters.
func TestAggregateInventoryViews(t *testing.T) {
	inv := func(recs ...store.Record) netnode.StatSnapshot {
		return netnode.StatSnapshot{Inventory: recs}
	}
	stats := []PeerStat{
		{Addr: "a", Stat: inv(
			store.Record{Name: "hot", Hits: 70},
			store.Record{Name: "warm", Hits: 9},
			store.Record{Name: "cold", Hits: 0},
		)},
		{Addr: "b", Stat: inv(
			store.Record{Name: "hot", Hits: 30},
			store.Record{Name: "warm", Hits: 2},
		)},
	}
	c := Aggregate(stats, 2)
	// hot and warm at 2 copies, cold at 1.
	if c.ReplicaDist[2] != 2 || c.ReplicaDist[1] != 1 {
		t.Fatalf("replica dist = %v, want 2x=2 1x=1", c.ReplicaDist)
	}
	if len(c.TopNames) != 2 {
		t.Fatalf("topK=2 ranked %d names: %v", len(c.TopNames), c.TopNames)
	}
	if c.TopNames[0] != (HotName{Name: "hot", Hits: 100, Copies: 2}) {
		t.Fatalf("top name = %+v, want hot with summed hits 100", c.TopNames[0])
	}
	if c.TopNames[1] != (HotName{Name: "warm", Hits: 11, Copies: 2}) {
		t.Fatalf("second name = %+v, want warm with summed hits 11", c.TopNames[1])
	}
}

// startCluster brings up n live peers sharing one address book.
func startCluster(t testing.TB, n, m int) ([]string, []*netnode.Peer) {
	t.Helper()
	addrs := make(map[bitops.PID]string, n)
	peers := make([]*netnode.Peer, 0, n)
	for i := 0; i < n; i++ {
		p, err := netnode.Listen(netnode.Config{PID: bitops.PID(i), M: m, Hasher: hashring.FNV{}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		addrs[bitops.PID(i)] = p.Addr()
	}
	flat := make([]string, n)
	for i, p := range peers {
		p.SetAddrs(addrs)
		flat[i] = addrs[bitops.PID(i)]
	}
	return flat, peers
}

// TestFleetScrapeEightPeers drives traffic through a live 8-peer fabric,
// scrapes it, and checks the merged view against snapshots fetched by
// hand — the lesslog-top acceptance path, including the BENCH artifact.
func TestFleetScrapeEightPeers(t *testing.T) {
	addrs, _ := startCluster(t, 8, 3)

	cl := netnode.NewClient(addrs[0])
	names := []string{"e2e/a", "e2e/b", "e2e/c", "e2e/hot"}
	for _, n := range names {
		if err := cl.Insert(n, []byte("payload-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	// Make one name hot: serve it repeatedly from rotating entry peers.
	for i := 0; i < 12; i++ {
		if _, err := netnode.NewClient(addrs[i%len(addrs)]).Get("e2e/hot"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Update("e2e/b", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Delete("e2e/c"); err != nil {
		t.Fatal(err)
	}

	scraped := Scrape(addrs)
	c := Aggregate(scraped, 3)
	if c.Peers != 8 || len(c.Unreachable) != 0 {
		t.Fatalf("scrape reached %d/8 peers, unreachable %v", c.Peers, c.Unreachable)
	}

	// Hand-merge the same snapshots and compare the derived views.
	var served, requests uint64
	handMerged := metrics.HistogramSnapshot{}
	for _, ps := range scraped {
		if ps.Err != nil {
			t.Fatalf("scrape of %s: %v", ps.Addr, ps.Err)
		}
		served += ps.Stat.Served
		requests += ps.Stat.Requests
		if snap, ok := ps.Stat.HandlerLatencyHist["get"]; ok {
			handMerged.Merge(&snap)
		}
	}
	if c.Served != served || c.Requests != requests {
		t.Fatalf("merged served/requests = %d/%d, hand-merged = %d/%d",
			c.Served, c.Requests, served, requests)
	}
	got := c.HandlerLatencyMS["get"]
	if got.Count != handMerged.Count ||
		got.P50 != handMerged.Quantile(0.5)*nsToMS ||
		got.P95 != handMerged.Quantile(0.95)*nsToMS ||
		got.P99 != handMerged.Quantile(0.99)*nsToMS {
		t.Fatalf("merged get dist %+v disagrees with hand-merged histogram (count %d)",
			got, handMerged.Count)
	}
	if len(c.TopNames) == 0 || c.TopNames[0].Name != "e2e/hot" {
		t.Fatalf("top names = %+v, want e2e/hot ranked first", c.TopNames)
	}
	if c.TopNames[0].Hits < 12 {
		t.Fatalf("hot name summed hits = %d, want >= the 12 gets", c.TopNames[0].Hits)
	}

	// Render must not panic and should mention the hot name.
	var buf bytes.Buffer
	Render(&buf, c)
	if !bytes.Contains(buf.Bytes(), []byte("e2e/hot")) {
		t.Fatalf("rendered view misses the hot name:\n%s", buf.String())
	}

	// The one-shot JSON mode's bench artifact. `make obs-cluster-bench`
	// points BENCH_JSON_DIR at results/ to commit the emitted file; a
	// plain `go test` lands it in a scratch dir and only checks the shape.
	dir := os.Getenv(benchjson.EnvDir)
	if dir == "" {
		dir = t.TempDir()
		t.Setenv(benchjson.EnvDir, dir)
	}
	if err := RecordBench(c); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_obs_cluster.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Name  string             `json:"name"`
		Extra map[string]float64 `json:"extra"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	merge, ok := doc["cluster_merge"]
	if !ok || len(doc) != 1 {
		t.Fatalf("bench doc = %s", raw)
	}
	extra := merge.Extra
	if extra["peers"] != 8 || extra["served"] != float64(served) {
		t.Fatalf("bench extras = %v", extra)
	}
	if _, ok := extra["get_p99_ms"]; !ok {
		t.Fatalf("bench extras missing merged percentile keys: %v", extra)
	}
}
