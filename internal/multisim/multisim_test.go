package multisim

import (
	"math"
	"testing"

	"lesslog/internal/liveness"
	"lesslog/internal/replication"
)

func evenSim(t *testing.T, k int, total, cap float64) *Sim {
	t.Helper()
	live := liveness.NewAllLive(10, 1024)
	return New(Config{
		M: 10, Cap: cap, Live: live,
		Files: EvenSplit(k, total, 10, live),
		Seed:  1,
	})
}

func TestAggregateLoadConservation(t *testing.T) {
	s := evenSim(t, 4, 8000, 100)
	total := 0.0
	for _, l := range s.NodeLoads() {
		total += l
	}
	if math.Abs(total-8000) > 1e-6 {
		t.Fatalf("aggregate load %v, want 8000", total)
	}
	sum := s.Summary()
	if sum.Holders < 4 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestBalanceMultipleFiles(t *testing.T) {
	s := evenSim(t, 8, 16000, 100)
	res, err := s.Balance(replication.LessLog{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced || res.Summary.Overloaded != 0 {
		t.Fatalf("not balanced: %+v", res)
	}
	// Every file participated.
	for i, n := range res.PerFile {
		if n < 0 {
			t.Fatalf("file %d replicas %d", i, n)
		}
	}
	perFileSum := 0
	for _, n := range res.PerFile {
		perFileSum += n
	}
	if perFileSum != res.ReplicasCreated {
		t.Fatalf("per-file accounting %d != total %d", perFileSum, res.ReplicasCreated)
	}
	t.Logf("8 files, 16000 req/s: %d replicas (%v per file)", res.ReplicasCreated, res.PerFile)
}

func TestSpreadingFilesNeedsFewerReplicasPerFile(t *testing.T) {
	// Fixed total rate: more hot files spread the load across more
	// targets, so the total replica count should not explode; a single
	// file needs the deepest splitting.
	run := func(k int) int {
		s := evenSim(t, k, 20000, 100)
		res, err := s.Balance(replication.LessLog{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.ReplicasCreated
	}
	one := run(1)
	sixteen := run(16)
	if sixteen > one {
		t.Fatalf("16 files (%d replicas) needed more than 1 file (%d)", sixteen, one)
	}
	t.Logf("replicas to balance 20000 req/s: 1 file=%d, 16 files=%d", one, sixteen)
}

func TestOverlappingTargets(t *testing.T) {
	// Two hot files anchored at the *same* target stack their load; the
	// node sheds them file by file, hottest first.
	live := liveness.NewAllLive(8, 256)
	specs := EvenSplit(2, 4000, 8, live)
	specs[1].Target = specs[0].Target
	s := New(Config{M: 8, Cap: 100, Live: live, Files: specs, Seed: 1})
	target := specs[0].Target
	if got := s.NodeLoads()[target]; math.Abs(got-4000) > 1e-6 {
		t.Fatalf("stacked load = %v", got)
	}
	res, err := s.Balance(replication.LessLog{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Balanced {
		t.Fatal("not balanced")
	}
	if res.PerFile[0] == 0 || res.PerFile[1] == 0 {
		t.Fatalf("both files must shed: %v", res.PerFile)
	}
}

func TestBudgetError(t *testing.T) {
	s := evenSim(t, 2, 20000, 100)
	if _, err := s.Balance(replication.LessLog{}, 3); err == nil {
		t.Fatal("budget exhaustion not reported")
	}
}

func TestEvenSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	EvenSplit(0, 100, 4, liveness.NewAllLive(4, 16))
}

func TestNewPanicsWithoutFiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty file list accepted")
		}
	}()
	New(Config{M: 4, Cap: 1, Live: liveness.NewAllLive(4, 16)})
}

func TestFileSimAccess(t *testing.T) {
	s := evenSim(t, 3, 3000, 100)
	for i := 0; i < 3; i++ {
		if s.FileSim(i) == nil {
			t.Fatalf("file sim %d missing", i)
		}
	}
	if len(s.FileSim(0).Primaries()) != 1 {
		t.Fatal("per-file primary missing")
	}
}

func TestStuckAggregate(t *testing.T) {
	// One file whose single origin pumps more than the cap can never be
	// balanced — its requests chase the copy all the way back to the
	// origin, which then serves its own load. A second, mild file keeps
	// the scenario multi-file.
	live := liveness.NewAllLive(4, 16)
	hotRates := make([]float64, 16)
	hotRates[9] = 160 // above the 100 req/s cap, single origin
	mildRates := make([]float64, 16)
	mildRates[2] = 10
	s := New(Config{M: 4, Cap: 100, Live: live,
		Files: []FileSpec{
			{Name: "hot", Target: 4, Rates: hotRates},
			{Name: "mild", Target: 4, Rates: mildRates},
		}, Seed: 1})
	_, err := s.Balance(replication.LessLog{}, 0)
	if err != ErrStuck {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
	// Replication pushed the hot copy to the origin itself, which now
	// serves its own 160 req/s; nothing can shed further.
	if l := s.NodeLoads()[9]; math.Abs(l-160) > 1e-6 {
		t.Fatalf("stuck node load = %v", l)
	}
}

func BenchmarkMultiFileBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		live := liveness.NewAllLive(10, 1024)
		s := New(Config{M: 10, Cap: 100, Live: live,
			Files: EvenSplit(8, 16000, 10, live), Seed: 1})
		if _, err := s.Balance(replication.LessLog{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
