// Package multisim generalizes the paper's single-popular-file evaluation
// (§6, "There is only one file initially in the system") to many
// concurrently hot files: a node's load is the sum of its serve rates
// across files, and an overloaded node sheds its locally hottest file
// first, using the same logless placement per file. It composes one
// internal/loadsim simulator per file over a shared liveness set, so the
// per-file routing semantics are exactly the validated single-file ones.
package multisim

import (
	"errors"
	"fmt"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/metrics"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
)

// FileSpec describes one popular file.
type FileSpec struct {
	Name   string
	Target bitops.PID     // ψ(name)
	Rates  workload.Rates // per-origin request rates for this file
}

// Config parameterizes a multi-file simulation.
type Config struct {
	M     int
	B     int
	Cap   float64 // aggregate per-node load cap
	Live  *liveness.Set
	Files []FileSpec
	Seed  uint64
}

// Sim is the multi-file state.
type Sim struct {
	cfg  Config
	sims []*loadsim.Sim
}

// New builds one per-file simulator per spec over the shared liveness.
func New(cfg Config) *Sim {
	if len(cfg.Files) == 0 {
		panic("multisim: no files")
	}
	s := &Sim{cfg: cfg}
	for i, f := range cfg.Files {
		s.sims = append(s.sims, loadsim.New(loadsim.Config{
			M: cfg.M, B: cfg.B, Target: f.Target, Cap: cfg.Cap,
			Live: cfg.Live, Rates: f.Rates,
			Seed: cfg.Seed + uint64(i)*0x9e37,
		}))
	}
	return s
}

// FileSim exposes the per-file simulator (for inspection and tests).
func (s *Sim) FileSim(i int) *loadsim.Sim { return s.sims[i] }

// NodeLoads returns each node's aggregate serve rate across all files.
func (s *Sim) NodeLoads() map[bitops.PID]float64 {
	agg := map[bitops.PID]float64{}
	for _, fs := range s.sims {
		for p, l := range fs.Loads() {
			agg[p] += l
		}
	}
	return agg
}

// Summary summarizes the aggregate loads against the cap.
func (s *Sim) Summary() metrics.LoadSummary {
	agg := s.NodeLoads()
	l := make(map[uint32]float64, len(agg))
	for p, v := range agg {
		l[uint32(p)] = v
	}
	return metrics.SummarizeLoads(l, s.cfg.Cap)
}

// Result reports a multi-file balance run.
type Result struct {
	Strategy        string
	ReplicasCreated int
	PerFile         []int // replicas per file, aligned with Config.Files
	Balanced        bool
	Summary         metrics.LoadSummary
}

// ErrStuck mirrors loadsim.ErrStuck for the aggregate system.
var ErrStuck = errors.New("multisim: no placement can relieve the overloaded node")

// Balance drives the aggregate system under the cap: the node with the
// highest total load sheds one replica of its locally hottest file, the
// file contributing the most to its load, placed by the per-file
// strategy. Files whose placement is saturated at that node fall through
// to the next-hottest file; a node with no options is set aside like in
// loadsim.Balance.
func (s *Sim) Balance(strategy replication.Strategy, maxReplicas int) (Result, error) {
	if maxReplicas <= 0 {
		maxReplicas = bitops.Slots(s.cfg.M) * len(s.sims)
	}
	res := Result{Strategy: strategy.Name(), PerFile: make([]int, len(s.sims))}
	saturated := map[bitops.PID]bool{}
	for {
		over, ok := s.mostOverloaded(saturated)
		if !ok {
			if _, still := s.mostOverloaded(nil); still {
				res.Summary = s.Summary()
				return res, ErrStuck
			}
			res.Balanced = true
			res.Summary = s.Summary()
			return res, nil
		}
		if res.ReplicasCreated >= maxReplicas {
			res.Summary = s.Summary()
			return res, fmt.Errorf("multisim: budget of %d replicas exhausted", maxReplicas)
		}
		if !s.shedFrom(over, strategy, &res) {
			saturated[over] = true
			continue
		}
		clear(saturated)
	}
}

// shedFrom tries the node's files hottest-first and places one replica.
func (s *Sim) shedFrom(over bitops.PID, strategy replication.Strategy, res *Result) bool {
	type cand struct {
		idx  int
		load float64
	}
	var cands []cand
	for i, fs := range s.sims {
		if l := fs.LoadOf(over); l > 0 && fs.HasCopy(over) {
			cands = append(cands, cand{i, l})
		}
	}
	// Hottest file first; ties by index for determinism.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].load > cands[j-1].load ||
			(cands[j].load == cands[j-1].load && cands[j].idx < cands[j-1].idx)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		fs := s.sims[c.idx]
		if target, ok := strategy.Place(fs, over); ok {
			fs.AddReplica(target)
			res.ReplicasCreated++
			res.PerFile[c.idx]++
			return true
		}
	}
	return false
}

// mostOverloaded returns the node with the highest aggregate load above
// the cap, skipping the given set; ties break toward the lowest PID.
func (s *Sim) mostOverloaded(skip map[bitops.PID]bool) (bitops.PID, bool) {
	var best bitops.PID
	var bestLoad float64
	found := false
	for p, l := range s.NodeLoads() {
		if l <= s.cfg.Cap || skip[p] {
			continue
		}
		if !found || l > bestLoad || (l == bestLoad && p < best) {
			best, bestLoad, found = p, l, true
		}
	}
	return best, found
}

// EvenSplit builds K FileSpecs sharing a total request rate evenly, with
// targets spread deterministically across the identifier space — the
// standard workload for the multi-file experiment.
func EvenSplit(k int, total float64, m int, live *liveness.Set) []FileSpec {
	if k < 1 {
		panic("multisim: need at least one file")
	}
	specs := make([]FileSpec, k)
	stride := bitops.Slots(m) / k
	if stride == 0 {
		stride = 1
	}
	for i := range specs {
		specs[i] = FileSpec{
			Name:   fmt.Sprintf("hot-%d", i),
			Target: bitops.PID((i*stride + 4) % bitops.Slots(m)),
			Rates:  workload.Even(total/float64(k), live),
		}
	}
	return specs
}
