package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"lesslog/internal/msg"
)

// echoServer speaks the msg protocol: every request is answered OK with the
// request name echoed in Data. mute makes it accept but never answer — the
// hung-peer shape deadlines must bound.
type echoServer struct {
	ln   net.Listener
	mute bool

	mu       sync.Mutex
	accepted int
	open     map[net.Conn]struct{}
	wg       sync.WaitGroup
}

func newEchoServer(t testing.TB, mute bool) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln, mute: mute, open: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(s.Close)
	return s
}

func (s *echoServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.accepted++
		s.open[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.open, conn)
				s.mu.Unlock()
			}()
			for {
				req, err := msg.ReadRequest(conn)
				if err != nil {
					return
				}
				if s.mute {
					continue // swallow the request: the caller's deadline must fire
				}
				resp := &msg.Response{OK: true, Data: []byte(req.Name)}
				if err := msg.WriteResponse(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

func (s *echoServer) Accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted
}

func (s *echoServer) Addr() string { return s.ln.Addr().String() }

func (s *echoServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func TestExchangeAndPoolReuse(t *testing.T) {
	srv := newEchoServer(t, false)
	tr := New(Config{PoolSize: 2}, nil)
	defer tr.Close()
	for i := 0; i < 20; i++ {
		resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"})
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if !resp.OK || string(resp.Data) != "f" {
			t.Fatalf("exchange %d: %+v", i, resp)
		}
	}
	if got := srv.Accepted(); got != 1 {
		t.Fatalf("server accepted %d connections, want 1 (pooled)", got)
	}
	c := tr.Counters()
	if c.Dials.Value() != 1 || c.Reuses.Value() != 19 {
		t.Fatalf("counters: %s", c)
	}
}

func TestPoolDisabledDialsPerCall(t *testing.T) {
	srv := newEchoServer(t, false)
	tr := New(Config{PoolSize: -1}, nil)
	defer tr.Close()
	for i := 0; i < 5; i++ {
		if _, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Accepted(); got != 5 {
		t.Fatalf("server accepted %d connections, want 5 (no pooling)", got)
	}
}

func TestDeadlineBoundsHungPeer(t *testing.T) {
	srv := newEchoServer(t, true)
	tr := New(Config{RPCTimeout: 40 * time.Millisecond, Retries: -1}, nil)
	defer tr.Close()
	start := time.Now()
	_, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange with a mute peer succeeded")
	}
	if !isTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the exchange: %v", elapsed)
	}
	if tr.Counters().Timeouts.Value() == 0 {
		t.Fatal("timeout not counted")
	}
}

func TestDialFailureIsBounded(t *testing.T) {
	// A listener that is closed immediately: dials are refused, not hung.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	tr := New(Config{DialTimeout: 100 * time.Millisecond, Retries: -1}, nil)
	defer tr.Close()
	if _, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet}); err == nil {
		t.Fatal("exchange with a closed listener succeeded")
	}
	if tr.Counters().Failures.Value() != 1 {
		t.Fatalf("counters: %s", tr.Counters())
	}
}

func TestRetryHealsTransientFault(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults().Add(Rule{Addr: srv.Addr(), Drop: true, Times: 2})
	tr := New(Config{Retries: 2, RetryBase: time.Millisecond}, faults)
	defer tr.Close()
	resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"})
	if err != nil || !resp.OK {
		t.Fatalf("retries did not heal the transient fault: %v", err)
	}
	if got := tr.Counters().Retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestMutationsAreNotRetried(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults().Add(Rule{Addr: srv.Addr(), Drop: true, Times: 1})
	tr := New(Config{Retries: 3, RetryBase: time.Millisecond}, faults)
	defer tr.Close()
	if _, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindUpdate, Name: "f"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault (no retry for mutations)", err)
	}
	if got := tr.Counters().Retries.Value(); got != 0 {
		t.Fatalf("a mutation was retried %d times", got)
	}
}

func TestStalePooledConnectionReconnects(t *testing.T) {
	srv := newEchoServer(t, false)
	tr := New(Config{}, nil)
	defer tr.Close()
	if _, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil {
		t.Fatal(err)
	}
	// The server restarts on the same address: the parked stream is dead,
	// but the next exchange must transparently redial.
	addr := srv.Addr()
	srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := &echoServer{ln: ln, open: map[net.Conn]struct{}{}}
	srv2.wg.Add(1)
	go srv2.acceptLoop()
	defer srv2.Close()

	resp, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "g"})
	if err != nil || !resp.OK {
		t.Fatalf("exchange over stale pooled conn: %v", err)
	}
	if got := tr.Counters().Reconnects.Value(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
}

func TestFaultDelaySlowsButSucceeds(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults().Add(Rule{Addr: srv.Addr(), Delay: 20 * time.Millisecond, Times: 1})
	tr := New(Config{}, faults)
	defer tr.Close()
	start := time.Now()
	resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"})
	if err != nil || !resp.OK {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay rule did not delay")
	}
}

func TestFaultRuleBudgetExpires(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults().Add(Rule{Addr: srv.Addr(), Drop: true, Times: 3})
	tr := New(Config{Retries: -1}, faults)
	defer tr.Close()
	fails := 0
	for i := 0; i < 5; i++ {
		if _, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet}); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("rule fired %d times, want exactly 3", fails)
	}
}

func TestDetectorFlipsOnceAndRecovers(t *testing.T) {
	var downs, ups []uint32
	d := NewDetector(3, func(id uint32) { downs = append(downs, id) },
		func(id uint32) { ups = append(ups, id) })
	d.Fail(7)
	d.Fail(7)
	if d.Down(7) {
		t.Fatal("down before threshold")
	}
	d.Fail(7)
	d.Fail(7) // past threshold: no second callback
	if !d.Down(7) || len(downs) != 1 || downs[0] != 7 {
		t.Fatalf("downs = %v", downs)
	}
	d.Ok(7)
	if d.Down(7) || len(ups) != 1 || ups[0] != 7 {
		t.Fatalf("ups = %v", ups)
	}
	// A success resets the streak: two more failures stay below threshold.
	d.Fail(7)
	d.Fail(7)
	if d.Down(7) || len(downs) != 1 {
		t.Fatal("failure streak not reset by success")
	}
	d.Fail(7)
	if !d.Down(7) || d.DownCount() != 1 {
		t.Fatal("second down episode not detected")
	}
	d.Reset(7)
	if d.Down(7) || len(ups) != 1 {
		t.Fatal("Reset must clear state without callbacks")
	}
}

func TestBackoffDeterministic(t *testing.T) {
	a := New(Config{Seed: 42}, nil)
	b := New(Config{Seed: 42}, nil)
	c := New(Config{Seed: 43}, nil)
	var sa, sb, sc []time.Duration
	for i := 1; i <= 5; i++ {
		sa = append(sa, a.backoff(i))
		sb = append(sb, b.backoff(i))
		sc = append(sc, c.backoff(i))
	}
	differ := false
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged: %v vs %v", sa, sb)
		}
		if sa[i] != sc[i] {
			differ = true
		}
		if lo, hi := a.cfg.RetryBase/2, a.cfg.RetryBase*64; sa[i] < lo || sa[i] > hi {
			t.Fatalf("backoff %d out of range: %v", i, sa[i])
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical jitter")
	}
}

// The acceptance benchmark: pooled exchanges vs dial-per-call on the same
// echo server. `make transport-bench` records the comparison in results/.

func benchmarkDo(b *testing.B, poolSize int) {
	srv := newEchoServer(b, false)
	tr := New(Config{PoolSize: poolSize}, nil)
	defer tr.Close()
	req := &msg.Request{Kind: msg.KindGet, Name: "bench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Do(srv.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportPooled(b *testing.B)      { benchmarkDo(b, 4) }
func BenchmarkTransportDialPerCall(b *testing.B) { benchmarkDo(b, -1) }
