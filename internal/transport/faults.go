package transport

// Deterministic fault injection: a Faults table shared by every transport
// in a test system can drop, delay, error, or hang any (address, kind)
// pair. Faults apply at the caller — the exchange fails or stalls before
// touching the socket — so a "crashed" peer can keep running and the test
// still observes exactly the failure it scripted, as many times as the
// rule allows. Combined with short RPC deadlines this replaces real
// time.Sleep-based peer-killing with reproducible scenarios.

import (
	"errors"
	"sync"
	"time"

	"lesslog/internal/msg"
)

// ErrInjected is the error surfaced by a Drop or Err rule.
var ErrInjected = errors.New("transport: injected fault")

// Rule describes one injected fault. Zero-valued match fields are
// wildcards; exactly one of Drop, Hang, Err should be set (Delay composes
// with any of them, or stands alone as pure slowness).
type Rule struct {
	Addr string   // target address; "" matches every address
	Kind msg.Kind // request kind; 0 matches every kind

	Drop  bool          // fail immediately with ErrInjected (connection refused shape)
	Hang  bool          // stall for the full RPC deadline, then fail with a timeout
	Delay time.Duration // sleep before the exchange proceeds (or before Drop/Err fires)
	Err   error         // fail with this error after Delay

	// Times bounds how often the rule fires; 0 means unlimited. A rule
	// whose budget is exhausted stops matching — the idiom for "peer is
	// unreachable for its first N calls, then recovers".
	Times int
}

// Faults is a concurrent-safe rule table. The zero value is unusable;
// construct with NewFaults. A nil *Faults injects nothing.
type Faults struct {
	mu    sync.Mutex
	rules []*Rule
}

// NewFaults returns an empty fault table.
func NewFaults() *Faults { return &Faults{} }

// Add installs a rule and returns the table for chaining.
func (f *Faults) Add(r Rule) *Faults {
	f.mu.Lock()
	f.rules = append(f.rules, &r)
	f.mu.Unlock()
	return f
}

// AddCancel installs a rule and returns a cancel func that removes it —
// the primitive scheduled fault drivers (Churn) build on: a crash is an
// unlimited Drop rule held until the rejoin step cancels it. Cancel is
// idempotent and safe after Clear.
func (f *Faults) AddCancel(r Rule) (cancel func()) {
	f.mu.Lock()
	rp := &r
	f.rules = append(f.rules, rp)
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		for i, cur := range f.rules {
			if cur == rp {
				f.rules = append(f.rules[:i], f.rules[i+1:]...)
				break
			}
		}
		f.mu.Unlock()
	}
}

// Clear removes every rule.
func (f *Faults) Clear() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// timeoutError is the deadline-shaped error a Hang rule produces, so
// injected slowness is indistinguishable from a real blown deadline.
type timeoutError struct{}

func (timeoutError) Error() string   { return "transport: injected fault: deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// apply consumes at most one matching rule for (addr, kind) and enacts it.
// It returns nil when the exchange should proceed normally.
func (f *Faults) apply(addr string, kind msg.Kind, rpcTimeout time.Duration) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	var match *Rule
	for _, r := range f.rules {
		if r.Addr != "" && r.Addr != addr {
			continue
		}
		if r.Kind != 0 && r.Kind != kind {
			continue
		}
		if r.Times < 0 {
			continue // exhausted
		}
		match = r
		if r.Times > 0 {
			r.Times--
			if r.Times == 0 {
				r.Times = -1 // mark exhausted; 0 means unlimited
			}
		}
		break
	}
	f.mu.Unlock()
	if match == nil {
		return nil
	}
	if match.Delay > 0 {
		time.Sleep(match.Delay)
	}
	switch {
	case match.Drop:
		return ErrInjected
	case match.Hang:
		time.Sleep(rpcTimeout)
		return timeoutError{}
	case match.Err != nil:
		return match.Err
	}
	return nil
}
