package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lesslog/internal/msg"
)

// pipelinedServer serves every accepted connection through ServeLoop, so
// tests exercise the full pipelined path: ID-framed requests dispatched to
// a worker pool, responses written out of order by a single writer.
func pipelinedServer(t testing.TB, handle func(*msg.Request) *msg.Response, opts ServeLoopOptions) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				ServeLoop(conn, handle, opts)
			}()
		}
	}()
	return ln.Addr().String()
}

// TestMuxOverlapsSlowExchange pins the head-of-line fix: with one pooled
// stream (PoolSize 1) a deliberately slow exchange must not delay the fast
// exchanges pipelined behind it.
func TestMuxOverlapsSlowExchange(t *testing.T) {
	block := make(chan struct{})
	var fastDone atomic.Int64
	addr := pipelinedServer(t, func(req *msg.Request) *msg.Response {
		if req.Name == "slow" {
			<-block
		}
		return &msg.Response{OK: true, Data: []byte(req.Name)}
	}, ServeLoopOptions{Workers: 8})

	tr := New(Config{PoolSize: 1, Retries: -1}, nil)
	defer tr.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	slowStarted := make(chan struct{})
	go func() {
		defer wg.Done()
		close(slowStarted)
		resp, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "slow"})
		if err != nil || !resp.OK {
			t.Errorf("slow exchange: %v", err)
		}
	}()
	<-slowStarted

	// The fast exchanges share the single pooled stream with the parked
	// slow one; all must complete while it is still blocked.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 16; i++ {
			resp, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "fast"})
			if err != nil || !resp.OK || string(resp.Data) != "fast" {
				t.Errorf("fast exchange %d: %v %+v", i, err, resp)
				return
			}
			fastDone.Add(1)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("fast exchanges stuck behind the slow one: %d/16 done", fastDone.Load())
	}
	close(block)
	wg.Wait()
	if got := fastDone.Load(); got != 16 {
		t.Fatalf("fast exchanges done = %d, want 16", got)
	}
}

// TestMuxConcurrentCallersOneStream hammers one pooled stream from many
// goroutines and checks every response lands on its own request.
func TestMuxConcurrentCallersOneStream(t *testing.T) {
	addr := pipelinedServer(t, func(req *msg.Request) *msg.Response {
		return &msg.Response{OK: true, Data: []byte(req.Name)}
	}, ServeLoopOptions{})

	tr := New(Config{PoolSize: 1}, nil)
	defer tr.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := string(rune('a'+g)) + "-file"
				resp, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: name})
				if err != nil {
					t.Errorf("goroutine %d call %d: %v", g, i, err)
					return
				}
				if string(resp.Data) != name {
					t.Errorf("goroutine %d got %q, want %q — responses crossed", g, resp.Data, name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServeLoopLegacyFIFO pins the compatibility contract: un-ID'd frames
// written back-to-back (a legacy pipelining client) are answered strictly
// in request order even though the server also runs a worker pool.
func TestServeLoopLegacyFIFO(t *testing.T) {
	addr := pipelinedServer(t, func(req *msg.Request) *msg.Response {
		return &msg.Response{OK: true, Data: []byte(req.Name)}
	}, ServeLoopOptions{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := msg.WriteRequest(conn, &msg.Request{Kind: msg.KindGet, Name: string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		resp, err := msg.ReadResponse(conn)
		if err != nil {
			t.Fatal(err)
		}
		if want := string(rune('a' + i)); string(resp.Data) != want {
			t.Fatalf("response %d = %q, want %q (FIFO order broken)", i, resp.Data, want)
		}
	}
}

// TestServeLoopDepthGauge checks the pipeline-depth gauge rises while
// handlers are parked and settles back to zero.
func TestServeLoopDepthGauge(t *testing.T) {
	var depth atomic.Int64
	block := make(chan struct{})
	addr := pipelinedServer(t, func(req *msg.Request) *msg.Response {
		<-block
		return &msg.Response{OK: true}
	}, ServeLoopOptions{Workers: 4, Depth: &depth})

	tr := New(Config{PoolSize: 1}, nil)
	defer tr.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for depth.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("depth gauge = %d, want 4", depth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	for depth.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("depth gauge did not settle: %d", depth.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeDelayModelsSerialServer checks the service-time model: with
// one worker and a ServeDelay of S, n pipelined requests take at least
// n*S (a serial server of capacity 1/S), while with enough workers the
// same delays overlap and the batch finishes in a fraction of that.
func TestServeDelayModelsSerialServer(t *testing.T) {
	const delay = 30 * time.Millisecond
	run := func(workers int) time.Duration {
		addr := pipelinedServer(t, func(req *msg.Request) *msg.Response {
			return &msg.Response{OK: true}
		}, ServeLoopOptions{Workers: workers, ServeDelay: delay})
		tr := New(Config{PoolSize: 1}, nil)
		defer tr.Close()
		// Establish the single pooled stream before the concurrent batch:
		// cold concurrent callers would each dial their own connection.
		if _, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "warm"}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	if serial := run(1); serial < 4*delay {
		t.Fatalf("serial server finished 4 requests in %v, want >= %v", serial, 4*delay)
	}
	if wide := run(4); wide >= 4*delay {
		t.Fatalf("4 workers took %v for 4 requests, want the delays to overlap (< %v)", wide, 4*delay)
	}
}
