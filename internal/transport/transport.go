// Package transport is the fault-tolerant RPC layer under internal/netnode:
// every peer-to-peer and client-to-peer exchange of the networked LessLog
// deployment goes through a Transport instead of a bare net.Dial.
//
// The seed deployment assumed every socket succeeds — one dead or slow peer
// hung a get forever and the paper's §5 fallback routing never fired over
// the wire. A Transport fixes that with four mechanisms:
//
//   - deadlines: every dial and every request/response exchange is bounded
//     by Config.DialTimeout and Config.RPCTimeout, so a hung peer costs at
//     most one deadline, never forever;
//   - retries: idempotent requests (get, has, stat, table) are retried with
//     capped exponential backoff plus deterministic jitter (internal/xrand),
//     so transient drops heal without risking duplicate side effects;
//   - pooling: completed exchanges park their TCP stream in a per-address
//     idle pool and the next exchange reuses it, so forwarding hops and
//     update fan-out stop paying a TCP handshake per hop;
//   - fault injection: a Faults table can drop, delay, fail, or hang any
//     (address, kind) pair, so tests exercise crashes, partitions and
//     slowness deterministically, without real peers misbehaving.
//
// A companion Detector counts consecutive RPC failures per peer and flips
// liveness through callbacks — the failure-detector half of §5 that turns
// socket errors into status-word updates, making the expanded-children-list
// fallback fire over the network.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/metrics"
	"lesslog/internal/msg"
	"lesslog/internal/xrand"
)

// Default knobs; see Config.
const (
	DefaultDialTimeout   = 2 * time.Second
	DefaultRPCTimeout    = 5 * time.Second
	DefaultRetries       = 2
	DefaultRetryBase     = 10 * time.Millisecond
	DefaultPoolSize      = 4
	DefaultFailThreshold = 3
)

// Config parameterizes a Transport. The zero value selects the defaults
// above; PoolSize < 0 disables pooling (dial per call, as the seed did, but
// still with deadlines).
type Config struct {
	DialTimeout time.Duration // bound on establishing a TCP connection
	RPCTimeout  time.Duration // bound on one full write+read exchange
	Retries     int           // extra attempts for idempotent requests; < 0 disables
	RetryBase   time.Duration // first backoff; doubles per retry, capped at 32×
	PoolSize    int           // idle connections kept per address; < 0 disables pooling
	// FailThreshold is consumed by NewDetector callers: consecutive RPC
	// failures to one peer before it is declared down. Kept here so one
	// struct carries every robustness knob from flag parsing to wiring.
	FailThreshold int
	Seed          uint64 // backoff-jitter seed; same seed ⇒ same retry timing
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.PoolSize == 0 {
		c.PoolSize = DefaultPoolSize
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	return c
}

// Counters is a Transport's observable behavior, exposed through
// Peer.TransportCounters and the stat summary.
type Counters struct {
	Dials      metrics.AtomicCounter // fresh TCP connections established
	Reuses     metrics.AtomicCounter // exchanges served by a pooled connection
	Retries    metrics.AtomicCounter // retry attempts after a failed exchange
	Timeouts   metrics.AtomicCounter // exchanges that hit a deadline
	Reconnects metrics.AtomicCounter // stale pooled connections replaced mid-call
	Failures   metrics.AtomicCounter // exchanges that exhausted every attempt
	Faults     metrics.AtomicCounter // injected faults that aborted an attempt
}

// CountersSnapshot is a plain-value copy of Counters, JSON-ready for the
// structured stat snapshot.
type CountersSnapshot struct {
	Dials      uint64 `json:"dials"`
	Reuses     uint64 `json:"reuses"`
	Retries    uint64 `json:"retries"`
	Timeouts   uint64 `json:"timeouts"`
	Reconnects uint64 `json:"reconnects"`
	Failures   uint64 `json:"failures"`
	Faults     uint64 `json:"faults"`
}

// Snapshot copies the counters' current values.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Dials:      c.Dials.Value(),
		Reuses:     c.Reuses.Value(),
		Retries:    c.Retries.Value(),
		Timeouts:   c.Timeouts.Value(),
		Reconnects: c.Reconnects.Value(),
		Failures:   c.Failures.Value(),
		Faults:     c.Faults.Value(),
	}
}

// String summarizes the counters in the "k=v" style of the stat line.
func (c *Counters) String() string {
	return fmt.Sprintf("dials=%d reuses=%d retries=%d timeouts=%d reconnects=%d failures=%d",
		c.Dials.Value(), c.Reuses.Value(), c.Retries.Value(),
		c.Timeouts.Value(), c.Reconnects.Value(), c.Failures.Value())
}

// kindIndex maps a request kind into the per-kind histogram array; unknown
// kinds share slot 0.
func kindIndex(k msg.Kind) int {
	if int(k) >= 1 && int(k) < msg.KindCount {
		return int(k)
	}
	return 0
}

// Transport performs request/response exchanges with deadlines, retries and
// per-address connection pooling. Pooled streams are multiplexed: many
// exchanges run concurrently on one TCP connection using the pipelined msg
// framing, so a slow peer-side forward no longer head-of-line-blocks the
// fast calls sharing the stream. Safe for concurrent use.
type Transport struct {
	cfg    Config
	faults *Faults

	mu     sync.Mutex
	muxes  map[string][]*mux // per-address multiplexed streams, ≤ PoolSize each
	rng    *xrand.Rand       // backoff jitter; guarded by mu
	closed bool

	// inflight gauges client-side exchanges currently multiplexed onto
	// pooled streams — the pipeline depth the /metrics endpoints surface.
	inflight atomic.Int64

	counters Counters
	// latency records the full Do duration — retries and backoff included,
	// because that is the latency the routing layer actually experiences —
	// per request kind.
	latency [msg.KindCount]metrics.Histogram
}

// New returns a Transport with cfg's knobs (zero fields defaulted) and an
// optional fault-injection table (nil means no injected faults).
func New(cfg Config, faults *Faults) *Transport {
	cfg = cfg.withDefaults()
	return &Transport{
		cfg:    cfg,
		faults: faults,
		muxes:  map[string][]*mux{},
		rng:    xrand.New(cfg.Seed ^ 0x7472616e73706f72), // "transpor"
	}
}

// Config returns the resolved configuration (defaults filled in).
func (t *Transport) Config() Config { return t.cfg }

// Counters returns the transport's counters for inspection.
func (t *Transport) Counters() *Counters { return &t.counters }

// Latency returns the RPC latency histogram for kind k (whole-Do duration,
// retries included). Unknown kinds share one bucket histogram.
func (t *Transport) Latency(k msg.Kind) *metrics.Histogram {
	return &t.latency[kindIndex(k)]
}

// LatencySnapshots returns a snapshot per request kind that has recorded
// at least one exchange, keyed by the kind's wire name.
func (t *Transport) LatencySnapshots() map[string]metrics.HistogramSnapshot {
	out := map[string]metrics.HistogramSnapshot{}
	for i := 1; i < msg.KindCount; i++ {
		if t.latency[i].Count() == 0 {
			continue
		}
		out[msg.Kind(i).String()] = t.latency[i].Snapshot()
	}
	return out
}

// InFlight returns the number of exchanges currently multiplexed onto
// pooled streams — the client-side pipeline depth.
func (t *Transport) InFlight() int64 { return t.inflight.Load() }

// Close shuts every pooled stream and stops further pooling. Exchanges
// in flight on those streams fail promptly; later exchanges dial
// single-use streams.
func (t *Transport) Close() error {
	t.mu.Lock()
	muxes := t.muxes
	t.muxes = map[string][]*mux{}
	t.closed = true
	t.mu.Unlock()
	for _, list := range muxes {
		for _, m := range list {
			m.close()
		}
	}
	return nil
}

// Idempotent reports whether a request kind is safe to retry: pure reads
// with no side effects beyond hit counters. Mutations (insert, store,
// update, delete, register) get exactly one attempt so a slow-but-applied
// exchange is never replayed.
func Idempotent(k msg.Kind) bool {
	switch k {
	case msg.KindGet, msg.KindHas, msg.KindStat, msg.KindTable, msg.KindLocate, msg.KindDigest, msg.KindTraces,
		msg.KindFetch, msg.KindLocateSet:
		return true
	}
	return false
}

// Do performs one request/response exchange with addr: dial (or reuse a
// pooled connection) under DialTimeout, write the request and read the
// response under RPCTimeout, and — for idempotent kinds — retry up to
// cfg.Retries times with capped exponential backoff and jitter. Injected
// faults for (addr, kind) apply to every attempt.
func (t *Transport) Do(addr string, req *msg.Request) (*msg.Response, error) {
	return t.DoTimeout(addr, req, 0)
}

// DoTimeout is Do with a per-exchange deadline floor: each attempt runs
// under max(rpcTO, Config.RPCTimeout). It exists for exchanges whose
// handler must move payload bytes before it can answer — a chunked-put
// commit pulls the whole body to every subtree holder, a notify delivery
// pulls it once — where a flat RPC deadline sized for control traffic
// would declare a healthy transfer dead (docs/ROUTING.md "The write
// plane"). rpcTO <= Config.RPCTimeout (including 0) selects the
// configured deadline unchanged.
func (t *Transport) DoTimeout(addr string, req *msg.Request, rpcTO time.Duration) (*msg.Response, error) {
	if rpcTO < t.cfg.RPCTimeout {
		rpcTO = t.cfg.RPCTimeout
	}
	start := time.Now()
	defer func() { t.latency[kindIndex(req.Kind)].ObserveDuration(time.Since(start)) }()
	attempts := 1
	if Idempotent(req.Kind) {
		attempts += t.cfg.Retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.counters.Retries.Inc()
			time.Sleep(t.backoff(attempt))
		}
		resp, err := t.exchange(addr, req, rpcTO)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if isTimeout(err) {
			t.counters.Timeouts.Inc()
		}
	}
	t.counters.Failures.Inc()
	return nil, lastErr
}

// exchange runs a single attempt: fault gate, stream acquisition, one
// multiplexed write+read under the RPC deadline. A reused stream that
// fails is replaced by a fresh dial once — a pooled stream may have been
// closed by the peer between exchanges, which is not the peer's failure.
func (t *Transport) exchange(addr string, req *msg.Request, rpcTO time.Duration) (*msg.Response, error) {
	if err := t.faults.apply(addr, req.Kind, rpcTO); err != nil {
		t.counters.Faults.Inc()
		return nil, err
	}
	if t.cfg.PoolSize < 0 {
		return t.exchangeDirect(addr, req, rpcTO)
	}
	m, reused, err := t.acquireMux(addr)
	if err != nil {
		return nil, err
	}
	resp, err := m.do(req, rpcTO)
	if err == nil {
		t.releaseMux(m)
		return resp, nil
	}
	t.discardMux(addr, m)
	if !reused {
		return nil, err
	}
	// The pooled stream was stale; one fresh dial before giving up.
	t.counters.Reconnects.Inc()
	m, err2 := t.dialMux(addr)
	if err2 != nil {
		return nil, err2
	}
	resp, err = m.do(req, rpcTO)
	if err != nil {
		t.discardMux(addr, m)
		return nil, err
	}
	t.releaseMux(m)
	return resp, nil
}

// exchangeDirect is the unpooled path (PoolSize < 0, as the seed did, but
// still with deadlines): dial, one legacy-framed write+read, close.
func (t *Transport) exchangeDirect(addr string, req *msg.Request, rpcTO time.Duration) (*msg.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.counters.Dials.Inc()
	defer conn.Close()
	return t.roundTrip(conn, req, rpcTO)
}

// roundTrip performs one framed write+read on conn under the RPC deadline.
func (t *Transport) roundTrip(conn net.Conn, req *msg.Request, rpcTO time.Duration) (*msg.Response, error) {
	if err := conn.SetDeadline(time.Now().Add(rpcTO)); err != nil {
		return nil, err
	}
	if err := msg.WriteRequest(conn, req); err != nil {
		return nil, err
	}
	resp, err := msg.ReadResponse(conn)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return resp, nil
}

// acquireMux picks a pooled stream for addr — an idle one if any, else the
// least-loaded once the pool is at PoolSize — or dials a fresh stream when
// every pooled one is busy and the cap leaves room. A dead pooled stream
// can be picked; its exchange fails fast and the reconnect path in
// exchange replaces it, preserving the reuse/reconnect accounting.
func (t *Transport) acquireMux(addr string) (m *mux, reused bool, err error) {
	t.mu.Lock()
	list := t.muxes[addr]
	var pick *mux
	for _, c := range list {
		if c.inflight.Load() == 0 {
			pick = c
			break
		}
	}
	if pick == nil && len(list) >= t.cfg.PoolSize && len(list) > 0 {
		pick = list[0]
		for _, c := range list[1:] {
			if c.inflight.Load() < pick.inflight.Load() {
				pick = c
			}
		}
	}
	if pick != nil {
		pick.inflight.Add(1)
		t.inflight.Add(1)
		t.mu.Unlock()
		t.counters.Reuses.Inc()
		return pick, true, nil
	}
	t.mu.Unlock()
	m, err = t.dialMux(addr)
	return m, false, err
}

// dialMux establishes a fresh multiplexed stream under the dial deadline
// and pools it, unless the pool filled meanwhile (or the transport is
// closed) — then the stream is ephemeral: one exchange and closed.
func (t *Transport) dialMux(addr string) (*mux, error) {
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.counters.Dials.Inc()
	m := newMux(conn)
	m.inflight.Add(1)
	t.inflight.Add(1)
	t.mu.Lock()
	if !t.closed && len(t.muxes[addr]) < t.cfg.PoolSize {
		t.muxes[addr] = append(t.muxes[addr], m)
	} else {
		m.ephemeral = true
	}
	t.mu.Unlock()
	return m, nil
}

// releaseMux ends one exchange's use of a stream. Pooled streams stay in
// the pool for the next exchange; ephemeral overflow streams close.
func (t *Transport) releaseMux(m *mux) {
	m.inflight.Add(-1)
	t.inflight.Add(-1)
	if m.ephemeral {
		m.close()
	}
}

// discardMux ends one exchange's use of a failed stream and evicts it
// from the pool so later exchanges do not keep tripping over it.
func (t *Transport) discardMux(addr string, m *mux) {
	m.inflight.Add(-1)
	t.inflight.Add(-1)
	m.close()
	t.mu.Lock()
	list := t.muxes[addr]
	for i, c := range list {
		if c == m {
			t.muxes[addr] = append(list[:i], list[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// DropIdle closes addr's pooled streams that have no exchange in flight —
// called when a peer is declared dead so its parked streams don't linger
// until reuse fails. Busy streams are left to fail on their own.
func (t *Transport) DropIdle(addr string) {
	t.mu.Lock()
	list := t.muxes[addr]
	var busy []*mux
	var drop []*mux
	for _, m := range list {
		if m.inflight.Load() > 0 {
			busy = append(busy, m)
		} else {
			drop = append(drop, m)
		}
	}
	if len(busy) == 0 {
		delete(t.muxes, addr)
	} else {
		t.muxes[addr] = busy
	}
	t.mu.Unlock()
	for _, m := range drop {
		m.close()
	}
}

// backoff returns the sleep before retry attempt n (n ≥ 1): RetryBase
// doubled per attempt, capped at 32×, with ±25% deterministic jitter.
func (t *Transport) backoff(n int) time.Duration {
	d := t.cfg.RetryBase << uint(n-1)
	if max := t.cfg.RetryBase * 32; d > max {
		d = max
	}
	t.mu.Lock()
	f := t.rng.Float64()
	t.mu.Unlock()
	return d + time.Duration((f-0.5)*0.5*float64(d))
}

// isTimeout reports whether err is deadline-shaped.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
