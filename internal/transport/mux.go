package transport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
)

// errMuxClosed reports an exchange attempted on (or interrupted by) a
// multiplexed connection that has died.
var errMuxClosed = errors.New("transport: multiplexed connection closed")

// A mux call that outlives RPCTimeout fails with the same deadline-shaped
// timeoutError (faults.go) injected hangs use, so isTimeout — and with it
// the Timeouts counter and the retry loop — treats it exactly like a
// socket deadline.

// mux multiplexes concurrent request/response exchanges over one TCP
// stream using the pipelined msg framing: every request carries a fresh
// ID, and a single reader goroutine hands responses back to their callers
// by the echoed ID, so a slow exchange no longer head-of-line-blocks the
// fast ones sharing the stream.
//
// A pre-pipelining peer answers without IDs, strictly in request order;
// the reader matches those responses FIFO to the oldest in-flight call,
// which keeps old peers working through the same pool.
type mux struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes onto conn

	mu      sync.Mutex
	pending map[uint64]chan *msg.Response
	fifo    []uint64 // issue order, to match ID-less legacy responses
	nextID  uint64
	dead    bool
	err     error

	// inflight is the number of exchanges currently using this stream;
	// the pool reads it to pick the least-loaded mux.
	inflight atomic.Int64
	// ephemeral marks an overflow stream dialed past the pool cap: used
	// for one exchange and closed on release, never pooled.
	ephemeral bool
}

func newMux(conn net.Conn) *mux {
	m := &mux{conn: conn, pending: map[uint64]chan *msg.Response{}}
	go m.readLoop()
	return m
}

// readLoop is the stream's only reader: it demultiplexes responses until
// the stream dies, then wakes every waiter with the error.
func (m *mux) readLoop() {
	br := bufio.NewReader(m.conn)
	for {
		resp, id, hasID, err := msg.ReadResponseID(br)
		if err != nil {
			m.fail(err)
			return
		}
		if !m.deliver(resp, id, hasID) {
			// A response nothing waits for means the stream lost sync;
			// it cannot be trusted for another exchange.
			m.fail(errMuxClosed)
			return
		}
	}
}

// deliver routes one response to its waiting call and reports whether a
// caller was found.
func (m *mux) deliver(resp *msg.Response, id uint64, hasID bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hasID {
		for i, v := range m.fifo {
			if v == id {
				m.fifo = append(m.fifo[:i], m.fifo[i+1:]...)
				break
			}
		}
	} else {
		if len(m.fifo) == 0 {
			return false
		}
		id = m.fifo[0]
		m.fifo = m.fifo[1:]
	}
	ch, ok := m.pending[id]
	if !ok {
		return false
	}
	delete(m.pending, id)
	ch <- resp
	return true
}

// fail marks the mux dead, closes the stream and wakes every in-flight
// call with err. Idempotent: only the first error sticks.
func (m *mux) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.err = err
	pending := m.pending
	m.pending = map[uint64]chan *msg.Response{}
	m.fifo = nil
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (m *mux) close() { m.fail(errMuxClosed) }

// lastErr returns the error the mux died with.
func (m *mux) lastErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return errMuxClosed
}

// do performs one exchange: register the call, write the ID-framed
// request, await the matched response under timeout (<= 0 waits forever).
// A timeout kills the whole mux — the stream has an orphaned response in
// flight and cannot be reused without desynchronizing every later call.
func (m *mux) do(req *msg.Request, timeout time.Duration) (*msg.Response, error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return nil, m.lastErr()
	}
	m.nextID++
	id := m.nextID
	ch := make(chan *msg.Response, 1)
	m.pending[id] = ch
	m.fifo = append(m.fifo, id)
	m.mu.Unlock()

	m.wmu.Lock()
	if timeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := msg.WriteRequestID(m.conn, req, id)
	m.wmu.Unlock()
	if err != nil {
		m.fail(err)
		return nil, err
	}

	var expired <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, m.lastErr()
		}
		return resp, nil
	case <-expired:
		m.fail(timeoutError{})
		return nil, timeoutError{}
	}
}

// ClientConn is one multiplexed stream to a single peer — the persistent
// client-connection shape: every exchange is pipelined over the same TCP
// connection, concurrent callers overlap instead of queueing, and each
// exchange is bounded by the connection's RPC deadline. A ClientConn does
// not redial; once the stream dies every call fails and the caller
// replaces the connection.
type ClientConn struct {
	m   *mux
	rpc time.Duration
}

// DialMuxConn opens a multiplexed client connection to addr: dialTO
// bounds connection establishment, rpcTO bounds each Do exchange (0 means
// no exchange deadline).
func DialMuxConn(addr string, dialTO, rpcTO time.Duration) (*ClientConn, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err
	}
	return &ClientConn{m: newMux(conn), rpc: rpcTO}, nil
}

// Do performs one pipelined exchange. Safe for concurrent use.
func (c *ClientConn) Do(req *msg.Request) (*msg.Response, error) {
	return c.m.do(req, c.rpc)
}

// Close shuts the stream; in-flight exchanges fail.
func (c *ClientConn) Close() error {
	c.m.close()
	return nil
}
