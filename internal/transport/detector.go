package transport

// Detector is the failure-detector half of the paper's §5 fault tolerance:
// the status word only helps if something turns socket errors into dead
// bits. A Detector counts consecutive RPC failures per peer; crossing the
// threshold fires OnDown exactly once, and any later success fires OnUp —
// so a netnode peer flips its liveness bit and the expanded-children-list
// fallback (§3) starts routing around the dead peer over the wire, then
// heals when the peer answers again (typically after it rejoins and
// re-registers).

import (
	"sort"
	"sync"
)

// Detector tracks consecutive RPC failures per peer ID. Safe for
// concurrent use; callbacks run without the detector lock held, so they
// may take the caller's own locks freely.
type Detector struct {
	threshold int
	onDown    func(id uint32)
	onUp      func(id uint32)

	mu    sync.Mutex
	fails map[uint32]int
	down  map[uint32]bool
}

// NewDetector returns a detector declaring a peer down after threshold
// consecutive failures (minimum 1). Either callback may be nil.
func NewDetector(threshold int, onDown, onUp func(id uint32)) *Detector {
	if threshold < 1 {
		threshold = 1
	}
	return &Detector{
		threshold: threshold,
		onDown:    onDown,
		onUp:      onUp,
		fails:     map[uint32]int{},
		down:      map[uint32]bool{},
	}
}

// Ok records a successful exchange with id: the failure streak resets, and
// a peer previously declared down is brought back up.
func (d *Detector) Ok(id uint32) {
	d.mu.Lock()
	delete(d.fails, id)
	wasDown := d.down[id]
	delete(d.down, id)
	d.mu.Unlock()
	if wasDown && d.onUp != nil {
		d.onUp(id)
	}
}

// Fail records a failed exchange with id; crossing the threshold declares
// the peer down (once per down episode).
func (d *Detector) Fail(id uint32) {
	d.mu.Lock()
	d.fails[id]++
	goesDown := d.fails[id] >= d.threshold && !d.down[id]
	if goesDown {
		d.down[id] = true
	}
	d.mu.Unlock()
	if goesDown && d.onDown != nil {
		d.onDown(id)
	}
}

// Down reports whether id is currently declared down.
func (d *Detector) Down(id uint32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down[id]
}

// DownCount returns how many peers are currently declared down.
func (d *Detector) DownCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.down)
}

// DownIDs returns the peers currently declared down, ascending — the
// detector view the stats snapshot and /healthz expose.
func (d *Detector) DownIDs() []uint32 {
	d.mu.Lock()
	out := make([]uint32, 0, len(d.down))
	for id := range d.down {
		out = append(out, id)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset forgets all state for id without firing callbacks — used when a
// membership change (join, leave, table swap) supersedes observed history.
func (d *Detector) Reset(id uint32) {
	d.mu.Lock()
	delete(d.fails, id)
	delete(d.down, id)
	d.mu.Unlock()
}

// ResetAll forgets every peer's state without firing callbacks — used when
// a whole address table is replaced.
func (d *Detector) ResetAll() {
	d.mu.Lock()
	d.fails = map[uint32]int{}
	d.down = map[uint32]bool{}
	d.mu.Unlock()
}
