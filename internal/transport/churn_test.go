package transport

import (
	"errors"
	"testing"
	"time"

	"lesslog/internal/msg"
)

func TestAddCancelRemovesRule(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults()
	cancel := faults.AddCancel(Rule{Addr: srv.Addr(), Drop: true})
	tr := New(Config{Retries: -1}, faults)
	defer tr.Close()
	if _, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault while rule is live", err)
	}
	cancel()
	if resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil || !resp.OK {
		t.Fatalf("exchange after cancel: %v", err)
	}
	cancel() // idempotent
	faults.Clear()
	cancel() // safe after Clear
}

func TestChurnCrashRejoinCycle(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults()
	tr := New(Config{Retries: -1}, faults)
	defer tr.Close()

	churn := NewChurn(faults, []ChurnEvent{
		{Crash: []string{srv.Addr()}},
		{Rejoin: []string{srv.Addr()}},
	})
	call := func() error {
		_, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"})
		return err
	}

	if err := call(); err != nil {
		t.Fatalf("before schedule: %v", err)
	}
	if !churn.Advance() {
		t.Fatal("first Advance reported exhausted")
	}
	if !churn.Crashed(srv.Addr()) {
		t.Fatal("Crashed(addr) false after crash step")
	}
	if err := call(); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashed peer answered: %v", err)
	}
	if !churn.Advance() {
		t.Fatal("second Advance reported exhausted")
	}
	if churn.Crashed(srv.Addr()) {
		t.Fatal("Crashed(addr) true after rejoin step")
	}
	if err := call(); err != nil {
		t.Fatalf("rejoined peer unreachable: %v", err)
	}
	if churn.Advance() {
		t.Fatal("exhausted schedule still advanced")
	}
	if !churn.Done() || churn.Step() != 2 {
		t.Fatalf("Done=%v Step=%d after full schedule", churn.Done(), churn.Step())
	}
}

func TestChurnCorrelatedCrashAndLoss(t *testing.T) {
	a := newEchoServer(t, false)
	b := newEchoServer(t, false)
	faults := NewFaults()
	tr := New(Config{Retries: -1}, faults)
	defer tr.Close()

	churn := NewChurn(faults, []ChurnEvent{
		// One step crashes both peers AND loses the next two Has probes.
		{Crash: []string{a.Addr(), b.Addr()}, LoseKind: msg.KindHas, LoseTimes: 2},
	})
	churn.Advance()
	for _, addr := range []string{a.Addr(), b.Addr()} {
		if _, err := tr.Do(addr, &msg.Request{Kind: msg.KindGet}); !errors.Is(err, ErrInjected) {
			t.Fatalf("correlated crash missed %s: %v", addr, err)
		}
	}
	churn.Reset() // lifts both crash rules; loss rule remains with its budget
	c := newEchoServer(t, false)
	for i := 0; i < 2; i++ {
		if _, err := tr.Do(c.Addr(), &msg.Request{Kind: msg.KindHas, Name: "f"}); !errors.Is(err, ErrInjected) {
			t.Fatalf("loss rule did not drop Has probe %d: %v", i, err)
		}
	}
	if resp, err := tr.Do(c.Addr(), &msg.Request{Kind: msg.KindHas, Name: "f"}); err != nil || !resp.OK {
		t.Fatalf("loss budget did not expire: %v", err)
	}
	// Reset rewound the schedule: the same event replays.
	if !churn.Advance() {
		t.Fatal("Advance after Reset reported exhausted")
	}
	if !churn.Crashed(a.Addr()) {
		t.Fatal("replayed crash step did not re-crash")
	}
	churn.Reset()
}

func TestChurnIdempotentSteps(t *testing.T) {
	srv := newEchoServer(t, false)
	faults := NewFaults()
	tr := New(Config{Retries: -1}, faults)
	defer tr.Close()
	churn := NewChurn(faults, []ChurnEvent{
		{Crash: []string{srv.Addr()}},
		{Crash: []string{srv.Addr()}},  // already dark: no-op, no double rule
		{Rejoin: []string{srv.Addr()}}, // one rejoin lifts it fully
		{Rejoin: []string{srv.Addr()}}, // already live: no-op
	})
	for churn.Advance() {
	}
	if resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil || !resp.OK {
		t.Fatalf("peer still dark after rejoin (double-crash left a rule): %v", err)
	}
}

func TestChurnSustainedScheduleUnderLoad(t *testing.T) {
	// A compressed sustained-churn shape: many crash/rejoin cycles applied
	// while callers hammer the peer. Nothing to assert about outcomes other
	// than (a) no panics/races and (b) the world is live after Reset.
	srv := newEchoServer(t, false)
	faults := NewFaults()
	tr := New(Config{Retries: -1, RPCTimeout: 200 * time.Millisecond}, faults)
	defer tr.Close()

	var events []ChurnEvent
	for i := 0; i < 50; i++ {
		events = append(events, ChurnEvent{Crash: []string{srv.Addr()}})
		events = append(events, ChurnEvent{Rejoin: []string{srv.Addr()}})
	}
	churn := NewChurn(faults, events)
	defer churn.Reset()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for churn.Advance() {
		}
	}()
	for i := 0; i < 200; i++ {
		tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}) // errors expected while dark
	}
	<-done
	churn.Reset()
	if resp, err := tr.Do(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "f"}); err != nil || !resp.OK {
		t.Fatalf("world not live after Reset: %v", err)
	}
}
