package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lesslog/internal/msg"
)

// DefaultPipelineWorkers bounds concurrent in-flight requests per served
// connection when the caller does not say otherwise.
const DefaultPipelineWorkers = 8

// ServeLoopOptions tunes ServeLoop. The zero value serves with
// DefaultPipelineWorkers and no instrumentation.
type ServeLoopOptions struct {
	// Workers caps concurrently handled pipelined requests on this
	// connection; the reader stalls (TCP backpressure) once the cap is
	// reached. <= 0 selects DefaultPipelineWorkers.
	Workers int
	// Depth, when non-nil, is a gauge of in-flight pipelined requests:
	// incremented as a handler starts, decremented as it finishes.
	Depth *atomic.Int64
	// OnProtoError, when non-nil, observes decode and write failures on
	// the connection (a clean EOF is not reported).
	OnProtoError func(error)
	// ServeDelay, when positive, sleeps that long before handling each
	// request. It is a service-time model for benches and fault
	// harnesses: the sleep occupies a worker slot, so a connection with
	// Workers=1 and ServeDelay=S serves at most one request per S — a
	// serial server with bounded capacity — without burning CPU the way
	// real work would.
	ServeDelay time.Duration
}

// ServeLoop serves one accepted connection with per-connection request
// pipelining: a reader goroutine decodes frames, pipelined (ID-carrying)
// requests are dispatched to a bounded worker pool, and a single writer
// goroutine frames the responses back — out of request order when handlers
// finish out of order, each echoing its request's ID. Legacy frames (no
// ID) are handled inline on the reader, preserving the strict FIFO
// response order a pre-pipelining client relies on.
//
// handle must be safe for concurrent use and must return a non-nil
// response. ServeLoop returns when the connection dies and every accepted
// request has been handled; the caller owns closing conn.
func ServeLoop(conn net.Conn, handle func(*msg.Request) *msg.Response, opts ServeLoopOptions) {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultPipelineWorkers
	}
	if opts.ServeDelay > 0 {
		inner := handle
		handle = func(req *msg.Request) *msg.Response {
			time.Sleep(opts.ServeDelay)
			return inner(req)
		}
	}
	protoErr := func(err error) {
		if opts.OnProtoError != nil {
			opts.OnProtoError(err)
		}
	}

	type outFrame struct {
		resp  *msg.Response
		id    uint64
		hasID bool
	}
	out := make(chan outFrame, workers)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bw := bufio.NewWriter(conn)
		for f := range out {
			var err error
			if f.hasID {
				err = msg.WriteResponseID(bw, f.resp, f.id)
			} else {
				err = msg.WriteResponse(bw, f.resp)
			}
			if err == nil && len(out) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				protoErr(err)
				// Unblock the reader; the loop keeps draining so no
				// handler blocks on a send to out.
				conn.Close()
			}
		}
	}()

	br := bufio.NewReader(conn)
	sem := make(chan struct{}, workers)
	var handlers sync.WaitGroup
	for {
		req, id, hasID, err := msg.ReadRequestID(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				protoErr(err)
			}
			break
		}
		if !hasID {
			out <- outFrame{resp: handle(req)}
			continue
		}
		sem <- struct{}{}
		handlers.Add(1)
		if opts.Depth != nil {
			opts.Depth.Add(1)
		}
		go func(req *msg.Request, id uint64) {
			defer func() {
				if opts.Depth != nil {
					opts.Depth.Add(-1)
				}
				<-sem
				handlers.Done()
			}()
			out <- outFrame{resp: handle(req), id: id, hasID: true}
		}(req, id)
	}
	handlers.Wait()
	close(out)
	writer.Wait()
}
