package transport

// Churn drives a scheduled crash/rejoin sequence over a Faults table:
// the deterministic fault core extended from single scripted failures to
// sustained membership turbulence. A crash is an unlimited Drop rule for
// every kind at the victim's address (the wire shape of a dead process);
// a rejoin cancels it. Steps are advanced explicitly by the harness, not
// by wall clock, so a schedule replays identically under the race
// detector and on loaded CI machines — the same philosophy that keeps
// Faults free of time.Sleep scripting.

import (
	"sync"

	"lesslog/internal/msg"
)

// ChurnEvent is one step of a churn schedule. All fields compose: a step
// can crash some peers, rejoin others, and inject repair-RPC loss at
// once (the correlated-failure shapes §7's single-failure handling never
// sees).
type ChurnEvent struct {
	// Crash lists addresses that go dark at this step: every request to
	// them fails with ErrInjected until a later step Rejoins them.
	Crash []string
	// Rejoin lists addresses whose earlier Crash rule is lifted.
	Rejoin []string
	// LoseKind, when nonzero, drops the next LoseTimes requests of that
	// kind to any address — the "repair RPC lost in flight" fault
	// (LoseTimes 0 with a nonzero LoseKind drops one).
	LoseKind  msg.Kind
	LoseTimes int
}

// Churn applies a ChurnEvent schedule to a fault table one explicit step
// at a time. Concurrency-safe; the zero value is unusable, construct
// with NewChurn.
type Churn struct {
	mu      sync.Mutex
	faults  *Faults
	events  []ChurnEvent
	step    int
	crashed map[string]func() // live Crash rule cancels by address
}

// NewChurn returns a driver that will play events over faults.
func NewChurn(faults *Faults, events []ChurnEvent) *Churn {
	return &Churn{faults: faults, events: events, crashed: make(map[string]func())}
}

// Step reports how many events have been applied.
func (c *Churn) Step() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// Done reports whether the schedule is exhausted.
func (c *Churn) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step >= len(c.events)
}

// Crashed reports whether addr is currently dark.
func (c *Churn) Crashed(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.crashed[addr]
	return ok
}

// Advance applies the next event and reports false once the schedule is
// exhausted (no event applied). Crashing an already-dark address or
// rejoining a live one is a no-op, so schedules compose without
// bookkeeping.
func (c *Churn) Advance() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step >= len(c.events) {
		return false
	}
	ev := c.events[c.step]
	c.step++
	for _, addr := range ev.Rejoin {
		if cancel, ok := c.crashed[addr]; ok {
			cancel()
			delete(c.crashed, addr)
		}
	}
	for _, addr := range ev.Crash {
		if _, ok := c.crashed[addr]; ok {
			continue
		}
		c.crashed[addr] = c.faults.AddCancel(Rule{Addr: addr, Drop: true})
	}
	if ev.LoseKind != 0 {
		times := ev.LoseTimes
		if times <= 0 {
			times = 1
		}
		c.faults.Add(Rule{Kind: ev.LoseKind, Drop: true, Times: times})
	}
	return true
}

// Reset lifts every Crash rule the driver still holds (loss rules expire
// on their own Times budget) and rewinds the schedule — the cleanup hook
// a harness defers so a failed test does not leave peers dark.
func (c *Churn) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, cancel := range c.crashed {
		cancel()
		delete(c.crashed, addr)
	}
	c.step = 0
}
