// Package sim is a small deterministic discrete-event engine: a virtual
// clock and a priority queue of scheduled callbacks. The dynamic-scenario
// simulator (internal/dynsim) runs the paper's §8 future work on top of it
// — "obtain performance data in a real-world scenario where nodes
// dynamically join and leave the system" — with request arrivals, churn
// processes and maintenance windows all as events.
//
// Determinism: ties in virtual time break by schedule order (a strictly
// increasing sequence number), so a seeded scenario replays identically.
package sim

import (
	"container/heap"
	"math"
)

// Time is virtual time in seconds.
type Time float64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ran    uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have run.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending returns how many events are scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay virtual seconds. Negative delays clamp to
// zero (run at the current instant, after already-queued same-time
// events).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 || math.IsNaN(float64(delay)) {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Step runs the next event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// RunUntil executes events in timestamp order until the clock passes
// deadline or the queue drains. Events scheduled exactly at the deadline
// still run. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.ran
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.ran - start
}

// Drain runs every remaining event (use only with self-limiting
// schedules). It returns the number executed.
func (e *Engine) Drain() uint64 {
	start := e.ran
	for e.Step() {
	}
	return e.ran - start
}
