package sim

import (
	"math"
	"testing"
)

func TestOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := map[int]bool{}
	for _, d := range []int{1, 5, 10} {
		d := d
		e.Schedule(Time(d), func() { ran[d] = true })
	}
	n := e.RunUntil(5)
	if n != 2 || !ran[1] || !ran[5] || ran[10] {
		t.Fatalf("ran=%v n=%d", ran, n)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v (clock must advance to the deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.RunUntil(20)
	if !ran[10] || e.Now() != 20 {
		t.Fatalf("second RunUntil wrong: now=%v", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduling further events: a self-limiting cascade.
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Drain()
	if count != 100 || e.Now() != 100 {
		t.Fatalf("count=%d now=%v", count, e.Now())
	}
	if e.Processed() != 100 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestZeroAndNegativeDelay(t *testing.T) {
	var e Engine
	e.RunUntil(7) // advance the clock
	var at Time
	e.Schedule(-5, func() { at = e.Now() })
	e.Step()
	if at != 7 {
		t.Fatalf("negative delay ran at %v, want now (7)", at)
	}
	e.Schedule(Time(math.NaN()), func() { at = e.Now() })
	e.Step()
	if at != 7 {
		t.Fatalf("NaN delay ran at %v", at)
	}
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func BenchmarkScheduleStep(b *testing.B) {
	var e Engine
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i&7), fn)
		if i&1 == 1 {
			e.Step()
		}
	}
}
