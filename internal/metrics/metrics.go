// Package metrics provides the small set of measurement types shared by
// the analytic simulator, the cluster engine, the networked node and the
// benchmark harness: monotonic counters, cheap streaming summaries,
// lock-free log-bucketed histograms with Prometheus text exposition, and
// the load summaries that decide when the paper's experiments declare the
// system balanced.
//
// Two concurrency tiers, chosen per call site: Counter and Summary are
// unsynchronized and belong to single-goroutine simulators; AtomicCounter
// and Histogram are safe for concurrent use and belong on RPC hot paths.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonic event counter.
//
// NOT safe for concurrent use: Inc/Add are plain read-modify-writes, so a
// Counter shared across goroutines both races and drops increments. It
// exists for the single-goroutine simulators and benchmark harnesses;
// anything touched from multiple goroutines — RPC paths, netnode handlers,
// the transport — must use AtomicCounter instead.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// AtomicCounter is a monotonic event counter safe for concurrent use — the
// form the networked transport needs, where many RPC goroutines bump the
// same counter.
type AtomicCounter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *AtomicCounter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *AtomicCounter) Value() uint64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *AtomicCounter) Reset() { c.n.Store(0) }

// Summary accumulates a stream of float64 observations and reports count,
// sum, mean, min and max without retaining the samples.
//
// NOT safe for concurrent use (unsynchronized fields, same caveat as
// Counter): it serves the single-goroutine simulators. Concurrent
// observers — anything on the networked request path — use Histogram,
// which is lock-free and additionally yields quantiles.
type Summary struct {
	count    int
	sum      float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
}

// Count returns the number of samples.
func (s *Summary) Count() int { return s.count }

// Sum returns the sample sum.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f max=%.2f", s.count, s.Mean(), s.min, s.max)
}

// Quantiles returns the q-quantiles (each in [0,1]) of the samples using
// the nearest-rank method. The input slice is not modified.
func Quantiles(samples []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, q := range qs {
		r := int(math.Ceil(q*float64(len(sorted)))) - 1
		if r < 0 {
			r = 0
		}
		if r >= len(sorted) {
			r = len(sorted) - 1
		}
		out[i] = sorted[r]
	}
	return out
}

// LoadSummary describes the per-holder serve loads of one simulator state.
type LoadSummary struct {
	Holders    int     // nodes holding a copy
	Overloaded int     // holders above the cap
	MaxLoad    float64 // heaviest holder
	MeanLoad   float64 // mean over holders
	TotalLoad  float64 // sum over holders == total request rate
}

// SummarizeLoads builds a LoadSummary from per-holder loads and a cap.
func SummarizeLoads(loads map[uint32]float64, cap float64) LoadSummary {
	var ls LoadSummary
	for _, l := range loads {
		ls.Holders++
		ls.TotalLoad += l
		if l > ls.MaxLoad {
			ls.MaxLoad = l
		}
		if l > cap {
			ls.Overloaded++
		}
	}
	if ls.Holders > 0 {
		ls.MeanLoad = ls.TotalLoad / float64(ls.Holders)
	}
	return ls
}

// String formats the load summary.
func (ls LoadSummary) String() string {
	return fmt.Sprintf("holders=%d overloaded=%d max=%.1f mean=%.1f total=%.1f",
		ls.Holders, ls.Overloaded, ls.MaxLoad, ls.MeanLoad, ls.TotalLoad)
}
