package metrics

// Prometheus text exposition (version 0.0.4) for the measurement types in
// this package, using only the standard library. The admin endpoint of a
// networked peer composes these writers into its /metrics page; any
// Prometheus-compatible scraper can consume the output directly.

import (
	"fmt"
	"io"
)

// LabeledValue is one series of a counter or gauge family. Labels is the
// literal label body without braces (`kind="get"`), or "" for none.
type LabeledValue struct {
	Labels string
	Value  float64
}

// LabeledHistogram is one series of a histogram family.
type LabeledHistogram struct {
	Labels string
	Snap   HistogramSnapshot
}

// seriesName renders name plus an optional label body.
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// mergeLabels joins two label bodies with a comma, tolerating empties.
func mergeLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

// PrometheusFamily writes one counter or gauge family (kind is "counter"
// or "gauge") with its TYPE header and one line per series.
func PrometheusFamily(w io.Writer, name, kind string, series ...LabeledValue) {
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	for _, s := range series {
		fmt.Fprintf(w, "%s %g\n", seriesName(name, s.Labels), s.Value)
	}
}

// PrometheusHistogram writes a histogram family: cumulative buckets with
// `le` upper bounds, then _sum and _count, per series. Samples are scaled
// by scale on the way out (1e-9 turns observed nanoseconds into the
// seconds Prometheus conventions expect). Empty buckets are elided — the
// cumulative counts and the +Inf bucket keep the output well-formed.
func PrometheusHistogram(w io.Writer, name string, scale float64, series ...LabeledHistogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, s := range series {
		var cum uint64
		for i, c := range s.Snap.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			le := fmt.Sprintf(`le="%g"`, float64(BucketUpper(i))*scale)
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, mergeLabels(s.Labels, le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, mergeLabels(s.Labels, `le="+Inf"`), s.Snap.Count)
		fmt.Fprintf(w, "%s %g\n", seriesName(name+"_sum", s.Labels), float64(s.Snap.Sum)*scale)
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", s.Labels), s.Snap.Count)
	}
}
