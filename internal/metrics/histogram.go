package metrics

// Histogram is the wire-facing latency instrument: a lock-free,
// log-bucketed distribution safe for concurrent observation on RPC hot
// paths. Buckets are powers of two subdivided 4× (histSubBits), giving a
// worst-case relative quantile error of 1/8 across the full uint64 range —
// plenty for p50/p95/p99 on latencies — at a fixed 2 KiB per histogram and
// one atomic add per Observe. Snapshots are plain values that merge, so a
// fleet of per-peer histograms aggregates into one distribution.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	histSubBits = 2 // sub-buckets per octave = 1<<histSubBits
	histSubs    = 1 << histSubBits
	// HistBuckets spans the whole uint64 range: values below histSubs get
	// an exact bucket each; every octave above contributes histSubs
	// buckets. 64 octaves × 4 + small values fits in 256.
	HistBuckets = 256
)

// bucketIndex maps a value to its bucket. Small values (< histSubs) are
// exact; larger values index by the position of the leading bit plus the
// next histSubBits bits, so bucket width grows geometrically.
func bucketIndex(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit, ≥ histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSubs - 1)
	return ((exp - histSubBits + 1) << histSubBits) + int(sub)
}

// BucketUpper returns the inclusive upper bound of bucket i — the value
// quantile estimates report for samples landing in it.
func BucketUpper(i int) uint64 {
	if i < histSubs {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) + histSubBits - 1
	sub := uint64(i & (histSubs - 1))
	return (histSubs+sub+1)<<(exp-histSubBits) - 1
}

// Histogram records a distribution of uint64 samples (by convention,
// nanoseconds for latencies; plain counts for sizes). The zero value is
// ready to use. All methods are safe for concurrent use; the hot path is
// three atomic adds and one CAS-bounded max update.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records d in nanoseconds (negative durations count as 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Concurrent observers
// may land between the bucket reads, so the snapshot is consistent only up
// to in-flight observations — fine for monitoring, which is its job.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: a plain value
// that can be merged, quantiled and serialized without further locking.
// The JSON shape is part of the stat-snapshot wire contract — lesslog-top
// decodes these off every peer and Merges them into fleet distributions.
type HistogramSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Max     uint64              `json:"max"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Merge folds o into s, as if every sample observed by o had been
// observed by s's histogram too.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the sample mean, or 0 with no samples.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (q in [0,1]) by nearest rank over the
// buckets, reported as the containing bucket's upper bound — so estimates
// err high by at most one bucket width (≤ 1/8 relative). Returns 0 with no
// samples; q outside [0,1] is clamped.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return float64(BucketUpper(i))
		}
	}
	return float64(s.Max) // unreachable unless counts raced; report max
}
