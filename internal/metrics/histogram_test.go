package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	// Exhaustive over the small range, then spot checks across octaves:
	// indices never decrease, and every value lands within its bucket's
	// bound.
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
		if up := BucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
	}
	for _, v := range []uint64{1 << 20, 1 << 33, 1 << 47, 1<<63 - 1, 1 << 63, math.MaxUint64} {
		i := bucketIndex(v)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if up := BucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket upper %d", v, up)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000: exact nearest-rank answers are 500, 950, 990; bucketed
	// estimates must land within one bucket width (12.5%) above.
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 || s.Max != 1000 {
		t.Fatalf("snapshot count=%d sum=%d max=%d", s.Count, s.Sum, s.Max)
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000},
	} {
		got := s.Quantile(tc.q)
		if got < tc.exact || got > tc.exact*1.125+1 {
			t.Fatalf("Quantile(%v) = %v, want within 12.5%% above %v", tc.q, got, tc.exact)
		}
	}
	if got := s.Quantile(0); got > 1 {
		t.Fatalf("Quantile(0) = %v, want first sample's bucket", got)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatalf("empty histogram not zero: %+v", s)
	}
	h.Observe(7)
	s = h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7", q, got)
		}
	}
	if s.Mean() != 7 || s.Max != 7 {
		t.Fatalf("single-sample mean=%v max=%d", s.Mean(), s.Max)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(-time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != uint64(3*time.Millisecond) {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

// TestHistogramConcurrent exercises the lock-free hot path and
// merge/snapshot under concurrent writers; run with -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed*31 + uint64(i)%1024)
			}
		}(uint64(w))
	}
	// Snapshots taken mid-flight must stay internally sane (count covers
	// the buckets seen so far, never panics).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			var sum uint64
			for _, c := range s.Buckets {
				sum += c
			}
			if sum > writers*perWriter {
				t.Errorf("snapshot buckets sum %d beyond total", sum)
				return
			}
			_ = s.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	// Merging two independent halves equals one histogram of the union.
	var a, b Histogram
	for v := uint64(0); v < 1000; v++ {
		if v%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	var whole Histogram
	for v := uint64(0); v < 1000; v++ {
		whole.Observe(v)
	}
	if sw := whole.Snapshot(); sa != sw {
		t.Fatal("merged halves differ from the whole")
	}
}

func TestPrometheusOutput(t *testing.T) {
	var h Histogram
	h.Observe(uint64(time.Millisecond))
	h.Observe(uint64(2 * time.Millisecond))
	var b strings.Builder
	PrometheusHistogram(&b, "x_seconds", 1e-9, LabeledHistogram{Labels: `kind="get"`, Snap: h.Snapshot()})
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{kind="get",le="+Inf"} 2`,
		`x_seconds_count{kind="get"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	PrometheusFamily(&b, "y_total", "counter", LabeledValue{Value: 3})
	if got := b.String(); got != "# TYPE y_total counter\ny_total 3\n" {
		t.Fatalf("counter family = %q", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xFFFFF)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			v += 2654435761
			h.Observe(v & 0xFFFFF)
		}
	})
}
