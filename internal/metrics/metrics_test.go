package metrics

import (
	"math"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Count() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Sum() != 14 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("summary: %s", s.String())
	}
	if math.Abs(s.Mean()-2.8) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSummaryNegative(t *testing.T) {
	var s Summary
	s.Observe(-3)
	s.Observe(-7)
	if s.Min() != -7 || s.Max() != -3 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestQuantiles(t *testing.T) {
	samples := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	qs := Quantiles(samples, 0, 0.5, 0.9, 1)
	want := []float64{1, 5, 9, 10}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", qs, want)
		}
	}
	if samples[0] != 9 {
		t.Fatal("Quantiles mutated its input")
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatal("empty quantiles not zero")
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	// Empty input: every requested quantile is 0, and no panic.
	if got := Quantiles([]float64{}, 0, 0.5, 1); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("empty input: %v", got)
	}
	// Single sample: every quantile is that sample.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := Quantiles([]float64{42}, q)[0]; got != 42 {
			t.Fatalf("single sample Quantiles(q=%v) = %v", q, got)
		}
	}
	// q=0 clamps to the minimum, q=1 is the maximum, even unsorted.
	in := []float64{5, 3, 9, 1}
	got := Quantiles(in, 0, 1)
	if got[0] != 1 || got[1] != 9 {
		t.Fatalf("q=0/q=1 = %v, want [1 9]", got)
	}
	// The unsorted input slice is left unmodified.
	if in[0] != 5 || in[1] != 3 || in[2] != 9 || in[3] != 1 {
		t.Fatalf("input mutated: %v", in)
	}
	// No quantiles requested: empty result, input untouched.
	if got := Quantiles(in); len(got) != 0 {
		t.Fatalf("no qs: %v", got)
	}
}

func TestSummarizeLoads(t *testing.T) {
	loads := map[uint32]float64{1: 50, 2: 150, 3: 100}
	ls := SummarizeLoads(loads, 100)
	if ls.Holders != 3 || ls.Overloaded != 1 || ls.MaxLoad != 150 || ls.TotalLoad != 300 {
		t.Fatalf("summary: %s", ls)
	}
	if math.Abs(ls.MeanLoad-100) > 1e-12 {
		t.Fatalf("MeanLoad = %v", ls.MeanLoad)
	}
	empty := SummarizeLoads(nil, 100)
	if empty.Holders != 0 || empty.MeanLoad != 0 {
		t.Fatal("empty summary wrong")
	}
}
