// Package routehint caches name → holder locations for the
// locate-then-fetch data plane (docs/ROUTING.md). A hint remembers which
// peer served a name's location — holder PID, listen address and the copy
// version observed — so a warm client turns an O(log N) tree resolution
// into one direct RPC at the holder.
//
// Hints are advisory, never authoritative: the data plane tolerates a
// wrong hint (the holder answers not-found and the client re-resolves), so
// the cache optimizes for cheap invalidation instead of strict coherence.
// Three things bound staleness:
//
//   - a TTL, so replica migration and membership churn age hints out even
//     when no signal arrives;
//   - per-name purges on acknowledged updates, deletes and inserts (the
//     writes that move a name's version or holder set);
//   - per-holder purges (PurgeHolder) when a failure detector — or a
//     failed direct fetch, which is the same evidence one deadline
//     earlier — declares the holder dead, so every name hinted at a dead
//     peer reroutes at once instead of each paying its own timeout.
//
// Capacity is LRU-bounded. All methods are safe for concurrent use.
package routehint

import (
	"container/list"
	"sync"
	"time"
)

// Defaults for consumers that do not care.
const (
	DefaultCapacity = 4096
	DefaultTTL      = 10 * time.Second
)

// Hint locates one name's serving holder.
type Hint struct {
	PID     uint32 // holder's peer identifier
	Addr    string // holder's listen address — where the direct fetch goes
	Version uint64 // copy version observed at locate time
}

// entry is one cached hint plus its bookkeeping.
type entry struct {
	name    string
	hint    Hint
	expires time.Time
}

// Cache maps names to holder hints, bounded by TTL and LRU capacity.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	entries map[string]*list.Element       // of *entry
	lru     *list.List                     // front = most recently used
	byAddr  map[string]map[string]struct{} // holder addr → names hinted there
}

// New returns a cache holding at most capacity hints, each valid for ttl
// after its Put. capacity <= 0 selects DefaultCapacity; ttl <= 0 selects
// DefaultTTL.
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Cache{
		cap:     capacity,
		ttl:     ttl,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		byAddr:  map[string]map[string]struct{}{},
	}
}

// Get returns the live hint for name. An expired hint is removed and
// reported as a miss.
func (c *Cache) Get(name string) (Hint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		return Hint{}, false
	}
	e := el.Value.(*entry)
	if !time.Now().Before(e.expires) {
		c.removeLocked(el)
		return Hint{}, false
	}
	c.lru.MoveToFront(el)
	return e.hint, true
}

// Put records (or refreshes) the hint for name and restarts its TTL.
func (c *Cache) Put(name string, h Hint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		e := el.Value.(*entry)
		c.unindexLocked(e)
		e.hint = h
		e.expires = time.Now().Add(c.ttl)
		c.indexLocked(name, h.Addr)
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&entry{name: name, hint: h, expires: time.Now().Add(c.ttl)})
	c.entries[name] = el
	c.indexLocked(name, h.Addr)
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back())
	}
}

// Purge drops the hint for name, reporting whether one existed — called on
// acknowledged writes, stale direct fetches and holder misses.
func (c *Cache) Purge(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// PurgeHolder drops every hint pointing at addr and returns how many went —
// the peer-down path: one detector event reroutes all of a dead holder's
// names instead of each waiting out its own failed fetch.
func (c *Cache) PurgeHolder(addr string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.byAddr[addr]
	n := len(names)
	for name := range names {
		if el, ok := c.entries[name]; ok {
			c.removeLocked(el)
		}
	}
	return n
}

// Len returns the number of cached hints.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// indexLocked records name under its holder address.
func (c *Cache) indexLocked(name, addr string) {
	set, ok := c.byAddr[addr]
	if !ok {
		set = map[string]struct{}{}
		c.byAddr[addr] = set
	}
	set[name] = struct{}{}
}

// unindexLocked removes e's name from its holder's set.
func (c *Cache) unindexLocked(e *entry) {
	set := c.byAddr[e.hint.Addr]
	delete(set, e.name)
	if len(set) == 0 {
		delete(c.byAddr, e.hint.Addr)
	}
}

// removeLocked unlinks one element from every index.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.name)
	c.unindexLocked(e)
}
