// Package routehint caches name → holder locations for the
// locate-then-fetch data plane (docs/ROUTING.md). A hint set remembers
// which peers hold a name — holder PID, listen address and the copy
// version observed — so a warm client turns an O(log N) tree resolution
// into one direct RPC, and a hot name's fetches rotate across its whole
// replica set instead of re-hammering the one holder a lookup walk
// happened to reach.
//
// Hints are advisory, never authoritative: the data plane tolerates a
// wrong hint (the holder answers not-found and the client re-resolves), so
// the cache optimizes for cheap invalidation instead of strict coherence.
// Three things bound staleness:
//
//   - a TTL, so replica migration and membership churn age hints out even
//     when no signal arrives;
//   - per-name purges on acknowledged updates, deletes and inserts (the
//     writes that move a name's version or holder set);
//   - per-holder purges (PurgeHolder) when a failure detector — or a
//     failed direct fetch, which is the same evidence one deadline
//     earlier — declares the holder dead. The holder is removed from every
//     set it appears in; a name keeps its surviving holders, so one dead
//     replica no longer evicts the hint for the live ones.
//
// Capacity is LRU-bounded per name. All methods are safe for concurrent
// use.
package routehint

import (
	"container/list"
	"sync"
	"time"
)

// Defaults for consumers that do not care.
const (
	DefaultCapacity = 4096
	DefaultTTL      = 10 * time.Second
)

// MaxHolders bounds one name's hint set; mirrors msg.MaxHolders without
// importing it (the cache is wire-agnostic).
const MaxHolders = 64

// Hint locates one holder of a name.
type Hint struct {
	PID     uint32 // holder's peer identifier
	Addr    string // holder's listen address — where the direct fetch goes
	Version uint64 // copy version observed at locate time (0 = unprobed)
}

// entry is one cached hint set plus its bookkeeping.
type entry struct {
	name    string
	hints   []Hint
	next    int // rotation cursor: index of the holder Get serves next
	expires time.Time
}

// Cache maps names to holder hint sets, bounded by TTL and LRU capacity.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	entries map[string]*list.Element       // of *entry
	lru     *list.List                     // front = most recently used
	byAddr  map[string]map[string]struct{} // holder addr → names hinted there
}

// New returns a cache holding at most capacity hint sets, each valid for
// ttl after its Put. capacity <= 0 selects DefaultCapacity; ttl <= 0
// selects DefaultTTL.
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Cache{
		cap:     capacity,
		ttl:     ttl,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		byAddr:  map[string]map[string]struct{}{},
	}
}

// Get returns one live hint for name, rotating through the cached holder
// set call by call so repeated fetches of a hot name spread across its
// replicas. An expired set is removed and reported as a miss.
func (c *Cache) Get(name string) (Hint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.liveLocked(name)
	if e == nil {
		return Hint{}, false
	}
	h := e.hints[e.next%len(e.hints)]
	e.next = (e.next + 1) % len(e.hints)
	return h, true
}

// GetSet returns a copy of name's live hint set, first holder to try
// first (rotation applies: consecutive calls start at successive
// holders).
func (c *Cache) GetSet(name string) ([]Hint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.liveLocked(name)
	if e == nil {
		return nil, false
	}
	n := len(e.hints)
	out := make([]Hint, n)
	for i := 0; i < n; i++ {
		out[i] = e.hints[(e.next+i)%n]
	}
	e.next = (e.next + 1) % n
	return out, true
}

// liveLocked returns name's entry if present and unexpired, bumping its
// LRU position; an expired entry is removed.
func (c *Cache) liveLocked(name string) *entry {
	el, ok := c.entries[name]
	if !ok {
		return nil
	}
	e := el.Value.(*entry)
	if !time.Now().Before(e.expires) {
		c.removeLocked(el)
		return nil
	}
	c.lru.MoveToFront(el)
	return e
}

// Put records (or merges) a single-holder hint for name and restarts the
// set's TTL: a holder already in the set gets its version refreshed, a
// new holder joins the set — so the fetch path's post-success refresh
// enriches a locate-set hint instead of collapsing it to one holder.
func (c *Cache) Put(name string, h Hint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		e := el.Value.(*entry)
		e.expires = time.Now().Add(c.ttl)
		c.lru.MoveToFront(el)
		for i := range e.hints {
			if e.hints[i].Addr == h.Addr {
				e.hints[i] = h
				return
			}
		}
		if len(e.hints) < MaxHolders {
			e.hints = append(e.hints, h)
			c.indexLocked(name, h.Addr)
		}
		return
	}
	c.insertLocked(name, []Hint{h})
}

// PutSet replaces name's hint set wholesale — the locate-set answer path.
// An empty set is a no-op; sets beyond MaxHolders are truncated.
func (c *Cache) PutSet(name string, hs []Hint) {
	if len(hs) == 0 {
		return
	}
	if len(hs) > MaxHolders {
		hs = hs[:MaxHolders]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		c.removeLocked(el)
	}
	c.insertLocked(name, append([]Hint(nil), hs...))
}

// insertLocked installs a fresh entry for name, evicting from the LRU
// tail past capacity.
func (c *Cache) insertLocked(name string, hs []Hint) {
	el := c.lru.PushFront(&entry{name: name, hints: hs, expires: time.Now().Add(c.ttl)})
	c.entries[name] = el
	for _, h := range hs {
		c.indexLocked(name, h.Addr)
	}
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back())
	}
}

// Purge drops the hint set for name, reporting whether one existed —
// called on acknowledged writes, stale direct fetches and holder misses.
func (c *Cache) Purge(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// PurgeFrom removes one holder from one name's set — the targeted
// invalidation for a replica that refused a fetch while its siblings keep
// serving. Dropping the last holder drops the entry. Reports whether the
// holder was present.
func (c *Cache) PurgeFrom(name, addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	for i := range e.hints {
		if e.hints[i].Addr == addr {
			e.hints = append(e.hints[:i], e.hints[i+1:]...)
			if e.next >= len(e.hints) {
				e.next = 0
			}
			c.unindexOneLocked(name, addr)
			if len(e.hints) == 0 {
				c.lru.Remove(el)
				delete(c.entries, name)
			}
			return true
		}
	}
	return false
}

// PurgeHolder removes addr from every hint set it appears in and returns
// how many names were affected — the peer-down path: one detector event
// reroutes all of a dead holder's names at once. Names with surviving
// holders keep them; a set emptied by the purge is dropped.
func (c *Cache) PurgeHolder(addr string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.byAddr[addr]
	n := len(names)
	for name := range names {
		el, ok := c.entries[name]
		if !ok {
			continue
		}
		e := el.Value.(*entry)
		for i := 0; i < len(e.hints); i++ {
			if e.hints[i].Addr == addr {
				e.hints = append(e.hints[:i], e.hints[i+1:]...)
				i--
			}
		}
		if e.next >= len(e.hints) {
			e.next = 0
		}
		if len(e.hints) == 0 {
			c.lru.Remove(el)
			delete(c.entries, name)
		}
	}
	delete(c.byAddr, addr)
	return n
}

// Len returns the number of cached names.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// indexLocked records name under one holder address.
func (c *Cache) indexLocked(name, addr string) {
	set, ok := c.byAddr[addr]
	if !ok {
		set = map[string]struct{}{}
		c.byAddr[addr] = set
	}
	set[name] = struct{}{}
}

// unindexOneLocked removes name from one holder's reverse index.
func (c *Cache) unindexOneLocked(name, addr string) {
	set := c.byAddr[addr]
	delete(set, name)
	if len(set) == 0 {
		delete(c.byAddr, addr)
	}
}

// removeLocked unlinks one element from every index.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.name)
	for _, h := range e.hints {
		c.unindexOneLocked(e.name, h.Addr)
	}
}
