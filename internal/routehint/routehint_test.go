package routehint

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPutGetPurge(t *testing.T) {
	c := New(8, time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	h := Hint{PID: 4, Addr: "127.0.0.1:7104", Version: 9}
	c.Put("a", h)
	got, ok := c.Get("a")
	if !ok || got != h {
		t.Fatalf("Get = %+v, %v; want %+v", got, ok, h)
	}
	if !c.Purge("a") {
		t.Fatal("Purge found nothing")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged hint served")
	}
	if c.Purge("a") {
		t.Fatal("double purge reported a hint")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(8, 10*time.Millisecond)
	c.Put("a", Hint{PID: 1, Addr: "x"})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh hint missed")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired hint served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained, len=%d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3, time.Minute)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("n%d", i), Hint{PID: uint32(i), Addr: "a"})
	}
	c.Get("n0") // refresh n0; n1 becomes the eviction candidate
	c.Put("n3", Hint{PID: 3, Addr: "a"})
	if _, ok := c.Get("n1"); ok {
		t.Fatal("LRU victim survived")
	}
	for _, name := range []string{"n0", "n2", "n3"} {
		if _, ok := c.Get(name); !ok {
			t.Fatalf("%s evicted, want kept", name)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestPurgeHolder(t *testing.T) {
	c := New(16, time.Minute)
	c.Put("a", Hint{PID: 1, Addr: "dead:1"})
	c.Put("b", Hint{PID: 1, Addr: "dead:1"})
	c.Put("c", Hint{PID: 2, Addr: "live:2"})
	// A re-Put at another holder merges into the set: b is now hinted at
	// both, and must survive the dead holder's purge on its live one.
	c.Put("b", Hint{PID: 2, Addr: "live:2"})
	if n := c.PurgeHolder("dead:1"); n != 2 {
		t.Fatalf("PurgeHolder = %d, want 2 (a and b were hinted there)", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hint at dead holder served")
	}
	for _, name := range []string{"b", "c"} {
		h, ok := c.Get(name)
		if !ok {
			t.Fatalf("%s purged, want kept", name)
		}
		if h.Addr != "live:2" {
			t.Fatalf("%s still hinted at %s", name, h.Addr)
		}
	}
	if n := c.PurgeHolder("dead:1"); n != 0 {
		t.Fatalf("second PurgeHolder = %d, want 0", n)
	}
}

func TestRotationAcrossSet(t *testing.T) {
	c := New(16, time.Minute)
	set := []Hint{
		{PID: 1, Addr: "h:1", Version: 5},
		{PID: 2, Addr: "h:2", Version: 5},
		{PID: 3, Addr: "h:3"},
	}
	c.PutSet("a", set)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		h, ok := c.Get("a")
		if !ok {
			t.Fatal("set missed")
		}
		seen[h.Addr]++
	}
	for _, h := range set {
		if seen[h.Addr] != 2 {
			t.Fatalf("rotation uneven: %v", seen)
		}
	}
}

func TestGetSetRotatesStart(t *testing.T) {
	c := New(16, time.Minute)
	c.PutSet("a", []Hint{{PID: 1, Addr: "h:1"}, {PID: 2, Addr: "h:2"}})
	s1, ok := c.GetSet("a")
	if !ok || len(s1) != 2 {
		t.Fatalf("GetSet = %v, %v", s1, ok)
	}
	s2, _ := c.GetSet("a")
	if s1[0].Addr == s2[0].Addr {
		t.Fatal("consecutive GetSet calls start at the same holder")
	}
	if s1[0].Addr != s2[1].Addr || s1[1].Addr != s2[0].Addr {
		t.Fatalf("rotation lost a holder: %v then %v", s1, s2)
	}
}

func TestPurgeFrom(t *testing.T) {
	c := New(16, time.Minute)
	c.PutSet("a", []Hint{{PID: 1, Addr: "h:1"}, {PID: 2, Addr: "h:2"}})
	if !c.PurgeFrom("a", "h:1") {
		t.Fatal("PurgeFrom missed a present holder")
	}
	h, ok := c.Get("a")
	if !ok || h.Addr != "h:2" {
		t.Fatalf("surviving holder = %+v, %v", h, ok)
	}
	if c.PurgeFrom("a", "h:1") {
		t.Fatal("PurgeFrom found an already-removed holder")
	}
	if !c.PurgeFrom("a", "h:2") {
		t.Fatal("PurgeFrom missed the last holder")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty set served")
	}
	if c.Len() != 0 {
		t.Fatalf("emptied entry retained, len=%d", c.Len())
	}
}

func TestPutSetReplaces(t *testing.T) {
	c := New(16, time.Minute)
	c.PutSet("a", []Hint{{PID: 1, Addr: "h:1"}})
	c.PutSet("a", []Hint{{PID: 2, Addr: "h:2"}})
	if n := c.PurgeHolder("h:1"); n != 0 {
		t.Fatalf("stale holder still indexed after PutSet replace: %d", n)
	}
	h, ok := c.Get("a")
	if !ok || h.Addr != "h:2" {
		t.Fatalf("Get = %+v, %v", h, ok)
	}
}

// TestConcurrentMix hammers every mutation concurrently; run under -race
// in CI it is the data-race check for the hint cache.
func TestConcurrentMix(t *testing.T) {
	c := New(64, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("n%d", i%100)
				addr := fmt.Sprintf("h%d", i%7)
				switch i % 8 {
				case 0:
					c.Put(name, Hint{PID: uint32(i), Addr: addr, Version: uint64(i)})
				case 1:
					c.Get(name)
				case 2:
					c.Purge(name)
				case 3:
					c.PurgeHolder(addr)
				case 4:
					c.PutSet(name, []Hint{{PID: uint32(i), Addr: addr}, {PID: uint32(i + 1), Addr: addr + "b"}})
				case 5:
					c.GetSet(name)
				case 6:
					c.PurgeFrom(name, addr)
				default:
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
}
