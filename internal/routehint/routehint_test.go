package routehint

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPutGetPurge(t *testing.T) {
	c := New(8, time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	h := Hint{PID: 4, Addr: "127.0.0.1:7104", Version: 9}
	c.Put("a", h)
	got, ok := c.Get("a")
	if !ok || got != h {
		t.Fatalf("Get = %+v, %v; want %+v", got, ok, h)
	}
	if !c.Purge("a") {
		t.Fatal("Purge found nothing")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged hint served")
	}
	if c.Purge("a") {
		t.Fatal("double purge reported a hint")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(8, 10*time.Millisecond)
	c.Put("a", Hint{PID: 1, Addr: "x"})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh hint missed")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired hint served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained, len=%d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3, time.Minute)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("n%d", i), Hint{PID: uint32(i), Addr: "a"})
	}
	c.Get("n0") // refresh n0; n1 becomes the eviction candidate
	c.Put("n3", Hint{PID: 3, Addr: "a"})
	if _, ok := c.Get("n1"); ok {
		t.Fatal("LRU victim survived")
	}
	for _, name := range []string{"n0", "n2", "n3"} {
		if _, ok := c.Get(name); !ok {
			t.Fatalf("%s evicted, want kept", name)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestPurgeHolder(t *testing.T) {
	c := New(16, time.Minute)
	c.Put("a", Hint{PID: 1, Addr: "dead:1"})
	c.Put("b", Hint{PID: 1, Addr: "dead:1"})
	c.Put("c", Hint{PID: 2, Addr: "live:2"})
	// A re-Put moving a name to another holder must re-index it.
	c.Put("b", Hint{PID: 2, Addr: "live:2"})
	if n := c.PurgeHolder("dead:1"); n != 1 {
		t.Fatalf("PurgeHolder = %d, want 1", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hint at dead holder served")
	}
	for _, name := range []string{"b", "c"} {
		if _, ok := c.Get(name); !ok {
			t.Fatalf("%s purged, want kept", name)
		}
	}
	if n := c.PurgeHolder("dead:1"); n != 0 {
		t.Fatalf("second PurgeHolder = %d, want 0", n)
	}
}

// TestConcurrentMix hammers every mutation concurrently; run under -race
// in CI it is the data-race check for the hint cache.
func TestConcurrentMix(t *testing.T) {
	c := New(64, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("n%d", i%100)
				addr := fmt.Sprintf("h%d", i%7)
				switch i % 5 {
				case 0:
					c.Put(name, Hint{PID: uint32(i), Addr: addr, Version: uint64(i)})
				case 1:
					c.Get(name)
				case 2:
					c.Purge(name)
				case 3:
					c.PurgeHolder(addr)
				default:
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
}
