// Package queuesim measures request response times under a given replica
// placement: Poisson arrivals at every origin, lookup-tree routing with a
// fixed per-hop network latency, and a FIFO single-server queue with a
// fixed service time at every copy holder. It turns the paper's
// load-balance criterion ("no node receives more than 100 requests per
// second") into the quantity operators actually feel — latency — and
// shows the queueing collapse replication prevents: a holder driven past
// its service rate builds an unbounded queue, while the balanced
// placement keeps every queue's utilization below one.
//
// The model is deliberately simple (deterministic service, FIFO, no
// request loss) so results are explainable with M/D/1 intuition; it runs
// on merged pre-generated arrival streams, needing no event engine.
package queuesim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/metrics"
	"lesslog/internal/ptree"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// Config parameterizes one run.
type Config struct {
	M           int
	B           int
	Target      bitops.PID
	Live        *liveness.Set
	Holders     []bitops.PID   // copy placement, including the primary
	Rates       workload.Rates // Poisson arrival rates per origin, req/s
	HopLatency  float64        // one-way network latency per forwarding hop, seconds
	ServiceTime float64        // per-request service time at a holder, seconds
	Duration    float64        // simulated seconds
	WarmUp      float64        // discard completions before this time
	Seed        uint64
}

// Result summarizes the measured response times (request issue to
// response arrival back at the origin).
type Result struct {
	Served     int
	Mean       float64
	P50        float64
	P95        float64
	P99        float64
	Max        float64
	MaxBacklog int // longest queue observed at any holder
}

// String formats the latency summary in milliseconds.
func (r Result) String() string {
	return fmt.Sprintf("served=%d mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms backlog=%d",
		r.Served, r.Mean*1e3, r.P50*1e3, r.P95*1e3, r.P99*1e3, r.Max*1e3, r.MaxBacklog)
}

// arrival is one request at its origin.
type arrival struct {
	at     float64
	origin int
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	a := old[n-1]
	*h = old[:n-1]
	return a
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if cfg.Duration <= 0 || cfg.ServiceTime <= 0 {
		return Result{}, fmt.Errorf("queuesim: duration and service time must be positive")
	}
	if len(cfg.Holders) == 0 {
		return Result{}, fmt.Errorf("queuesim: no copy holders")
	}
	copies := map[bitops.PID]bool{}
	for _, h := range cfg.Holders {
		if !cfg.Live.IsLive(h) {
			return Result{}, fmt.Errorf("queuesim: holder P(%d) is dead", h)
		}
		copies[h] = true
	}
	view := ptree.NewView(cfg.Target, cfg.Live, cfg.B)

	// Route once per origin: server and hop count are placement-static.
	type routeInfo struct {
		server bitops.PID
		hops   int
		ok     bool
	}
	routes := make([]routeInfo, len(cfg.Rates))
	for origin := range cfg.Rates {
		if cfg.Rates[origin] == 0 || !cfg.Live.IsLive(bitops.PID(origin)) {
			continue
		}
		server, hops, ok := route(view, copies, bitops.PID(origin))
		routes[origin] = routeInfo{server: server, hops: hops, ok: ok}
	}

	// Per-origin Poisson streams merged through a heap.
	rng := xrand.New(cfg.Seed)
	var pending arrivalHeap
	streams := make([]*xrand.Rand, len(cfg.Rates))
	for origin, rate := range cfg.Rates {
		if rate == 0 || !routes[origin].ok {
			continue
		}
		streams[origin] = rng.Fork()
		pending = append(pending, arrival{at: expDraw(streams[origin], rate), origin: origin})
	}
	heap.Init(&pending)

	busyUntil := map[bitops.PID]float64{}

	var latencies []float64
	maxBacklog := 0
	for len(pending) > 0 {
		a := heap.Pop(&pending).(arrival)
		if a.at > cfg.Duration {
			continue // stream ended
		}
		// Schedule this origin's next arrival.
		rate := cfg.Rates[a.origin]
		heap.Push(&pending, arrival{at: a.at + expDraw(streams[a.origin], rate), origin: a.origin})

		rt := routes[a.origin]
		arriveAtServer := a.at + float64(rt.hops)*cfg.HopLatency
		start := arriveAtServer
		if bu := busyUntil[rt.server]; bu > start {
			start = bu
		}
		done := start + cfg.ServiceTime
		busyUntil[rt.server] = done
		// Backlog proxy: jobs this one waits behind, plus itself.
		queued := int(math.Round((start-arriveAtServer)/cfg.ServiceTime)) + 1
		if queued > maxBacklog {
			maxBacklog = queued
		}
		responseAt := done + float64(rt.hops)*cfg.HopLatency
		if a.at >= cfg.WarmUp {
			latencies = append(latencies, responseAt-a.at)
		}
	}
	if len(latencies) == 0 {
		return Result{}, fmt.Errorf("queuesim: no completions after warm-up")
	}
	sort.Float64s(latencies)
	qs := metrics.Quantiles(latencies, 0.5, 0.95, 0.99)
	sum := 0.0
	for _, l := range latencies {
		sum += l
	}
	return Result{
		Served: len(latencies),
		Mean:   sum / float64(len(latencies)),
		P50:    qs[0], P95: qs[1], P99: qs[2],
		Max:        latencies[len(latencies)-1],
		MaxBacklog: maxBacklog,
	}, nil
}

// route mirrors the lookup semantics of the analytic simulator: first
// copy on the live-ancestor walk, with the FINDLIVENODE fallback.
func route(v ptree.View, copies map[bitops.PID]bool, origin bitops.PID) (bitops.PID, int, bool) {
	cur := origin
	hops := 0
	if copies[cur] {
		return cur, 0, true
	}
	for {
		next, ok := v.AliveAncestor(cur)
		if !ok {
			p, ok := v.PrimaryHolder(v.SubtreeID(origin))
			if !ok || !copies[p] {
				return 0, 0, false
			}
			return p, hops + 1, true
		}
		hops++
		if copies[next] {
			return next, hops, true
		}
		cur = next
	}
}

// expDraw samples an exponential interarrival.
func expDraw(rng *xrand.Rand, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}
