package queuesim

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/replication"
	"lesslog/internal/workload"
)

// baseConfig: m=8, 256 nodes, target 4, 10 ms service (100 req/s
// capacity per holder), 1 ms per hop.
func baseConfig(live *liveness.Set, holders []bitops.PID, totalRate float64) Config {
	return Config{
		M: 8, Target: 4, Live: live, Holders: holders,
		Rates:      workload.Even(totalRate, live),
		HopLatency: 0.001, ServiceTime: 0.010,
		Duration: 30, WarmUp: 5, Seed: 1,
	}
}

func TestStableSingleHolder(t *testing.T) {
	// 50 req/s against a 100 req/s server: utilization 0.5, latencies a
	// few service times.
	live := liveness.NewAllLive(8, 256)
	res, err := Run(baseConfig(live, []bitops.PID{4}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served < 500 {
		t.Fatalf("served = %d", res.Served)
	}
	// Mean response must be at least the service time and far below a
	// second in the stable regime.
	if res.Mean < 0.010 || res.Mean > 0.2 {
		t.Fatalf("mean latency %v outside the stable band", res.Mean)
	}
	t.Logf("stable: %s", res)
}

func TestOverloadedHolderCollapses(t *testing.T) {
	// 300 req/s against one 100 req/s server: utilization 3; the queue
	// grows through the whole run and tail latencies explode.
	live := liveness.NewAllLive(8, 256)
	over, err := Run(baseConfig(live, []bitops.PID{4}, 300))
	if err != nil {
		t.Fatal(err)
	}
	if over.P99 < 1.0 {
		t.Fatalf("overloaded p99 = %vs, expected queueing collapse", over.P99)
	}
	if over.MaxBacklog < 100 {
		t.Fatalf("max backlog = %d, expected a long queue", over.MaxBacklog)
	}
	t.Logf("overloaded: %s", over)
}

func TestBalancedPlacementRestoresLatency(t *testing.T) {
	// Balance the same 300 req/s with the analytic simulator, then feed
	// the placement to the queueing model: every holder is back under
	// its service rate and tails return to milliseconds.
	live := liveness.NewAllLive(8, 256)
	sim := loadsim.New(loadsim.Config{
		M: 8, Target: 4, Cap: 50, Live: live,
		Rates: workload.Even(300, live), Seed: 1,
	})
	if _, err := sim.Balance(replication.LessLog{}, 0); err != nil {
		t.Fatal(err)
	}
	balanced, err := Run(baseConfig(live, sim.Holders(), 300))
	if err != nil {
		t.Fatal(err)
	}
	if balanced.P99 > 0.2 {
		t.Fatalf("balanced p99 = %vs, still queueing", balanced.P99)
	}
	over, _ := Run(baseConfig(live, []bitops.PID{4}, 300))
	if balanced.P99*5 > over.P99 {
		t.Fatalf("balancing did not clearly help: %v vs %v", balanced.P99, over.P99)
	}
	t.Logf("balanced: %s", balanced)
}

func TestDeterministicBySeed(t *testing.T) {
	live := liveness.NewAllLive(6, 64)
	cfg := Config{
		M: 6, Target: 4, Live: live, Holders: []bitops.PID{4},
		Rates: workload.Even(20, live), HopLatency: 0.001, ServiceTime: 0.01,
		Duration: 10, Seed: 7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestHopLatencyFloor(t *testing.T) {
	// With a tiny load, response time ≈ 2×hops×hopLatency + service.
	live := liveness.NewAllLive(4, 16)
	cfg := Config{
		M: 4, Target: 4, Live: live, Holders: []bitops.PID{4},
		Rates:      workload.Point(1, 8, live), // P(8): 2 hops to P(4)
		HopLatency: 0.010, ServiceTime: 0.001,
		Duration: 50, Seed: 3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*2*0.010 + 0.001
	if res.P50 < want-1e-9 || res.P50 > want+0.005 {
		t.Fatalf("p50 = %v, want ~%v", res.P50, want)
	}
}

func TestConfigValidation(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	if _, err := Run(Config{M: 4, Live: live, Holders: nil, Duration: 1, ServiceTime: 1}); err == nil {
		t.Fatal("no holders accepted")
	}
	if _, err := Run(Config{M: 4, Live: live, Holders: []bitops.PID{4}, Duration: 0, ServiceTime: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
	dead := liveness.NewAllLive(4, 16)
	dead.SetDead(4)
	if _, err := Run(Config{M: 4, Live: dead, Holders: []bitops.PID{4},
		Rates: workload.Even(1, dead), Duration: 1, ServiceTime: 0.01}); err == nil {
		t.Fatal("dead holder accepted")
	}
}
