package store

import (
	"bytes"
	"testing"
	"time"
)

func TestTombstoneBlocksStaleWrites(t *testing.T) {
	s := New()
	s.Put(File{Name: "f", Data: []byte("a"), Version: 3}, Inserted)
	now := time.Now()
	if !s.Tombstone("f", 5, now) {
		t.Fatal("Tombstone did not erase the copy")
	}
	if s.Has("f") {
		t.Fatal("copy survived the tombstone")
	}
	if v, ok := s.TombVersion("f"); !ok || v != 5 {
		t.Fatalf("TombVersion = %d, %v; want 5, true", v, ok)
	}
	// A write at or below the tombstone version is refused.
	if v, res := s.PutNewer(File{Name: "f", Data: []byte("b"), Version: 5}, Inserted); res != PutTombstoned || v != 5 {
		t.Fatalf("stale write: %v, %d; want PutTombstoned, 5", res, v)
	}
	if s.Has("f") {
		t.Fatal("refused write still landed")
	}
	// A strictly newer write supersedes the deletion and clears the mark.
	if _, res := s.PutNewer(File{Name: "f", Data: []byte("c"), Version: 6}, Inserted); res != PutApplied {
		t.Fatalf("superseding write: %v, want PutApplied", res)
	}
	if _, ok := s.TombVersion("f"); ok {
		t.Fatal("tombstone survived a superseding write")
	}
	f, _ := s.Peek("f")
	if !bytes.Equal(f.Data, []byte("c")) || f.Version != 6 {
		t.Fatalf("surviving copy: %+v", f)
	}
}

func TestTombstoneDominatesErasedCopy(t *testing.T) {
	// An unversioned (legacy) delete still records a tombstone at the
	// erased copy's own version, so that exact copy cannot be re-planted.
	s := New()
	s.Put(File{Name: "f", Data: []byte("a"), Version: 7}, Inserted)
	if !s.Tombstone("f", 0, time.Now()) {
		t.Fatal("copy not erased")
	}
	if v, ok := s.TombVersion("f"); !ok || v != 7 {
		t.Fatalf("TombVersion = %d, %v; want 7, true", v, ok)
	}
	if _, res := s.PutNewer(File{Name: "f", Version: 7}, Inserted); res != PutTombstoned {
		t.Fatalf("erased copy re-planted: %v", res)
	}
	if _, res := s.PutNewer(File{Name: "f", Version: 8}, Inserted); res != PutApplied {
		t.Fatalf("newer re-insert refused: %v", res)
	}
}

func TestTombstoneUnknownNameNotRecorded(t *testing.T) {
	s := New()
	if s.Tombstone("ghost", 3, time.Now()) {
		t.Fatal("Tombstone of unknown name reported an erase")
	}
	if _, ok := s.TombVersion("ghost"); ok {
		t.Fatal("tombstone recorded for a name never held")
	}
}

func TestPutNewerKeepsNewerCopy(t *testing.T) {
	s := New()
	s.Put(File{Name: "f", Data: []byte("new"), Version: 5}, Inserted)
	if v, res := s.PutNewer(File{Name: "f", Data: []byte("old"), Version: 4}, Inserted); res != PutStale || v != 5 {
		t.Fatalf("stale put: %v, %d; want PutStale, 5", res, v)
	}
	if v, res := s.PutNewer(File{Name: "f", Data: []byte("dup"), Version: 5}, Inserted); res != PutStale || v != 5 {
		t.Fatalf("equal put: %v, %d; want PutStale, 5", res, v)
	}
	f, _ := s.Peek("f")
	if !bytes.Equal(f.Data, []byte("new")) {
		t.Fatalf("newer copy clobbered: %q", f.Data)
	}
	if _, res := s.PutNewer(File{Name: "f", Data: []byte("newer"), Version: 6}, Inserted); res != PutApplied {
		t.Fatal("strictly newer put refused")
	}
}

func TestPlainDeleteLeavesNoTombstone(t *testing.T) {
	// Delete is the local-only removal (replica eviction, post-handoff
	// cleanup); the file still exists cluster-wide and may come back.
	s := New()
	s.Put(File{Name: "f", Version: 2}, Replica)
	s.Delete("f")
	if _, ok := s.TombVersion("f"); ok {
		t.Fatal("plain Delete left a tombstone")
	}
	if _, res := s.PutNewer(File{Name: "f", Version: 2}, Replica); res != PutApplied {
		t.Fatalf("re-placement after eviction refused: %v", res)
	}
}

func TestPruneTombstones(t *testing.T) {
	s := New()
	s.Put(File{Name: "f", Version: 1}, Inserted)
	s.Tombstone("f", 2, time.Now().Add(-time.Hour))
	s.Put(File{Name: "g", Version: 1}, Inserted)
	s.Tombstone("g", 2, time.Now())
	if n := s.PruneTombstones(time.Now().Add(-time.Minute)); n != 1 {
		t.Fatalf("pruned %d tombstones, want 1", n)
	}
	if _, ok := s.TombVersion("f"); ok {
		t.Fatal("expired tombstone survived pruning")
	}
	if _, ok := s.TombVersion("g"); !ok {
		t.Fatal("fresh tombstone pruned")
	}
}

func TestShardedTombstones(t *testing.T) {
	s := NewSharded(4)
	s.Put(File{Name: "f", Data: []byte("a"), Version: 3}, Inserted)
	if !s.Tombstone("f", 4, time.Now().Add(-time.Hour)) {
		t.Fatal("copy not erased")
	}
	if v, ok := s.TombVersion("f"); !ok || v != 4 {
		t.Fatalf("TombVersion = %d, %v", v, ok)
	}
	if v, res := s.PutNewer(File{Name: "f", Version: 4}, Inserted); res != PutTombstoned || v != 4 {
		t.Fatalf("stale write: %v, %d", res, v)
	}
	if n := s.PruneTombstones(time.Now()); n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if _, res := s.PutNewer(File{Name: "f", Version: 1}, Inserted); res != PutApplied {
		t.Fatal("write refused after pruning")
	}
}
