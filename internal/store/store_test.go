package store

import (
	"reflect"
	"testing"
)

func file(name, data string, v uint64) File {
	return File{Name: name, Data: []byte(data), Version: v}
}

func TestPutGet(t *testing.T) {
	s := New()
	s.Put(file("a", "alpha", 1), Inserted)
	f, ok := s.Get("a")
	if !ok || string(f.Data) != "alpha" || f.Version != 1 {
		t.Fatalf("Get = %+v, %v", f, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on missing name succeeded")
	}
	if !s.Has("a") || s.Has("b") {
		t.Fatal("Has wrong")
	}
}

func TestKindTracking(t *testing.T) {
	s := New()
	s.Put(file("a", "x", 1), Inserted)
	s.Put(file("b", "y", 1), Replica)
	if k, _ := s.KindOf("a"); k != Inserted {
		t.Fatal("a should be inserted")
	}
	if k, _ := s.KindOf("b"); k != Replica {
		t.Fatal("b should be replica")
	}
	if _, ok := s.KindOf("zzz"); ok {
		t.Fatal("KindOf missing name succeeded")
	}
	if got := s.Names(Inserted); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Names(Inserted) = %v", got)
	}
	if got := s.Names(Replica); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Names(Replica) = %v", got)
	}
	if got := s.AllNames(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("AllNames = %v", got)
	}
}

func TestReplicaNeverDemotesInserted(t *testing.T) {
	s := New()
	s.Put(file("a", "x", 1), Inserted)
	s.Put(file("a", "x2", 2), Replica)
	if k, _ := s.KindOf("a"); k != Inserted {
		t.Fatal("replica Put demoted an inserted copy")
	}
	if f, _ := s.Peek("a"); string(f.Data) != "x2" {
		t.Fatal("data not replaced")
	}
}

func TestUpdateVersioning(t *testing.T) {
	s := New()
	s.Put(file("a", "v1", 1), Replica)
	if !s.Update("a", []byte("v2"), 2) {
		t.Fatal("newer update rejected")
	}
	if s.Update("a", []byte("v1-again"), 2) {
		t.Fatal("same-version update applied")
	}
	if s.Update("a", []byte("old"), 1) {
		t.Fatal("stale update applied")
	}
	if s.Update("nope", []byte("x"), 9) {
		t.Fatal("update on missing file applied")
	}
	f, _ := s.Peek("a")
	if string(f.Data) != "v2" || f.Version != 2 {
		t.Fatalf("after updates: %+v", f)
	}
	if k, _ := s.KindOf("a"); k != Replica {
		t.Fatal("update changed the kind")
	}
}

func TestDeleteAndPromote(t *testing.T) {
	s := New()
	s.Put(file("a", "x", 1), Replica)
	s.Promote("a")
	if k, _ := s.KindOf("a"); k != Inserted {
		t.Fatal("Promote failed")
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	s.Promote("ghost") // must not panic
}

func TestHitCountingAndColdReplicas(t *testing.T) {
	s := New()
	s.Put(file("hot", "x", 1), Replica)
	s.Put(file("cold", "y", 1), Replica)
	s.Put(file("primary", "z", 1), Inserted)
	for i := 0; i < 5; i++ {
		s.Get("hot")
	}
	s.Get("cold")
	if s.Hits("hot") != 5 || s.Hits("cold") != 1 || s.Hits("ghost") != 0 {
		t.Fatalf("hits: hot=%d cold=%d", s.Hits("hot"), s.Hits("cold"))
	}
	// Peek must not count.
	s.Peek("cold")
	if s.Hits("cold") != 1 {
		t.Fatal("Peek counted an access")
	}
	if got := s.ColdReplicas(3); !reflect.DeepEqual(got, []string{"cold"}) {
		t.Fatalf("ColdReplicas(3) = %v", got)
	}
	// Inserted copies are never eviction candidates even when cold.
	if got := s.ColdReplicas(100); !reflect.DeepEqual(got, []string{"cold", "hot"}) {
		t.Fatalf("ColdReplicas(100) = %v", got)
	}
	s.ResetHits()
	if s.Hits("hot") != 0 {
		t.Fatal("ResetHits failed")
	}
}

func TestLenAndString(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Put(file("a", "x", 1), Inserted)
	s.Put(file("b", "x", 1), Replica)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.String(); got != "store{inserted=1 replicas=1}" {
		t.Fatalf("String = %q", got)
	}
	if Inserted.String() != "inserted" || Replica.String() != "replica" {
		t.Fatal("Kind.String wrong")
	}
}
