package store

// Model-based property test: the store must behave exactly like a naive
// reference model (a plain map with the same rules) under arbitrary
// operation sequences.

import (
	"fmt"
	"testing"

	"lesslog/internal/xrand"
)

type modelEntry struct {
	data    string
	version uint64
	kind    Kind
	hits    uint64
}

func TestStoreMatchesModel(t *testing.T) {
	rng := xrand.New(31)
	names := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 50; trial++ {
		s := New()
		model := map[string]*modelEntry{}
		for step := 0; step < 400; step++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(7) {
			case 0: // Put inserted
				data := fmt.Sprintf("d%d", step)
				v := uint64(rng.Intn(10))
				s.Put(File{Name: name, Data: []byte(data), Version: v}, Inserted)
				model[name] = &modelEntry{data: data, version: v, kind: Inserted}
			case 1: // Put replica (never demotes an inserted copy)
				data := fmt.Sprintf("r%d", step)
				v := uint64(rng.Intn(10))
				kind := Replica
				if old, ok := model[name]; ok && old.kind == Inserted {
					kind = Inserted
				}
				s.Put(File{Name: name, Data: []byte(data), Version: v}, Replica)
				model[name] = &modelEntry{data: data, version: v, kind: kind}
			case 2: // Get (counts a hit)
				f, ok := s.Get(name)
				m, mok := model[name]
				if ok != mok {
					t.Fatalf("step %d: Get(%s) ok=%v model=%v", step, name, ok, mok)
				}
				if ok {
					m.hits++
					if string(f.Data) != m.data || f.Version != m.version {
						t.Fatalf("step %d: Get(%s) = %q v%d, model %q v%d",
							step, name, f.Data, f.Version, m.data, m.version)
					}
				}
			case 3: // Update
				data := fmt.Sprintf("u%d", step)
				v := uint64(rng.Intn(12))
				applied := s.Update(name, []byte(data), v)
				m, ok := model[name]
				wantApplied := ok && v > m.version
				if applied != wantApplied {
					t.Fatalf("step %d: Update(%s,v%d) = %v, want %v", step, name, v, applied, wantApplied)
				}
				if wantApplied {
					m.data, m.version = data, v
				}
			case 4: // Delete
				deleted := s.Delete(name)
				_, ok := model[name]
				if deleted != ok {
					t.Fatalf("step %d: Delete(%s) = %v, model had=%v", step, name, deleted, ok)
				}
				delete(model, name)
			case 5: // Promote
				s.Promote(name)
				if m, ok := model[name]; ok {
					m.kind = Inserted
				}
			case 6: // ResetHits (occasionally)
				if rng.Bool(0.2) {
					s.ResetHits()
					for _, m := range model {
						m.hits = 0
					}
				}
			}
			// Cross-check complete state every few steps.
			if step%13 == 0 {
				if s.Len() != len(model) {
					t.Fatalf("step %d: Len=%d model=%d", step, s.Len(), len(model))
				}
				for n, m := range model {
					if k, ok := s.KindOf(n); !ok || k != m.kind {
						t.Fatalf("step %d: KindOf(%s)=%v,%v model=%v", step, n, k, ok, m.kind)
					}
					if s.Hits(n) != m.hits {
						t.Fatalf("step %d: Hits(%s)=%d model=%d", step, n, s.Hits(n), m.hits)
					}
				}
			}
		}
	}
}
