package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultShards is the shard count NewSharded picks when the caller does
// not care; 16 keeps per-shard contention negligible at the fan-in one
// pipelined connection can generate while costing one mutex word each.
const DefaultShards = 16

// Sharded is a concurrency-safe store: names are spread across power-of-2
// Store shards by FNV-1a hash, each behind its own mutex, so gets of
// distinct names stop contending on one lock. It mirrors the Store API;
// aggregate reads (AllNames, Len, ColdReplicas, …) visit the shards in
// order and are linearizable per shard, not across them — the same
// guarantee the single global mutex gave concurrent observers in practice.
type Sharded struct {
	shards []shard
	mask   uint32
}

type shard struct {
	mu sync.Mutex
	s  *Store
}

// NewSharded returns an empty sharded store with n shards rounded up to a
// power of 2; n <= 0 selects DefaultShards.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sharded{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].s = New()
	}
	return s
}

// ShardedFrom distributes src's copies (with their kinds; access counters
// start fresh) and tombstones across a new sharded store — the restore
// path from recovery replay, which rebuilds into a plain Store. Carrying
// the tombstones is what stops a restart from resurrecting deletions the
// repair plane hasn't finished propagating.
func ShardedFrom(src *Store, n int) *Sharded {
	s := NewSharded(n)
	for _, name := range src.AllNames() {
		f, _ := src.Peek(name)
		kind, _ := src.KindOf(name)
		s.Put(f, kind)
	}
	for _, t := range src.Tombstones() {
		s.RestoreTombstone(t.Name, t.Version, t.At)
	}
	return s
}

// SetPersister attaches the durability hook to every shard. Mutators call
// it under the shard mutex, so per-name persist order equals apply order.
// Attach only after ShardedFrom has rebuilt recovered state, or the
// replay would be re-logged.
func (s *Sharded) SetPersister(p Persister) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.s.SetPersister(p)
		sh.mu.Unlock()
	}
}

// fnv1a is the 32-bit FNV-1a hash of name.
func fnv1a(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

func (s *Sharded) shardFor(name string) *shard {
	return &s.shards[fnv1a(name)&s.mask]
}

// Put places a copy of f with the given kind; see Store.Put.
func (s *Sharded) Put(f File, kind Kind) {
	sh := s.shardFor(f.Name)
	sh.mu.Lock()
	sh.s.Put(f, kind)
	sh.mu.Unlock()
}

// PutNewer places a copy of f unless an existing copy or tombstone is at
// least as new; see Store.PutNewer. The check and the write are one
// atomic step under the shard's mutex, so a concurrent newer write
// cannot be clobbered between them.
func (s *Sharded) PutNewer(f File, kind Kind) (uint64, PutResult) {
	sh := s.shardFor(f.Name)
	sh.mu.Lock()
	v, res := sh.s.PutNewer(f, kind)
	sh.mu.Unlock()
	return v, res
}

// Get returns the copy of name, counting the access.
func (s *Sharded) Get(name string) (File, bool) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	f, ok := sh.s.Get(name)
	sh.mu.Unlock()
	return f, ok
}

// Peek returns the copy of name without counting an access.
func (s *Sharded) Peek(name string) (File, bool) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	f, ok := sh.s.Peek(name)
	sh.mu.Unlock()
	return f, ok
}

// Has reports whether a copy of name exists.
func (s *Sharded) Has(name string) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	ok := sh.s.Has(name)
	sh.mu.Unlock()
	return ok
}

// KindOf returns the kind of the stored copy of name.
func (s *Sharded) KindOf(name string) (Kind, bool) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	k, ok := sh.s.KindOf(name)
	sh.mu.Unlock()
	return k, ok
}

// Update overwrites an existing copy if newVersion is strictly newer; see
// Store.Update.
func (s *Sharded) Update(name string, data []byte, newVersion uint64) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	ok := sh.s.Update(name, data, newVersion)
	sh.mu.Unlock()
	return ok
}

// Delete removes the copy of name and reports whether one existed.
func (s *Sharded) Delete(name string) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	ok := sh.s.Delete(name)
	sh.mu.Unlock()
	return ok
}

// Tombstone erases the copy of name and records a versioned tombstone;
// see Store.Tombstone.
func (s *Sharded) Tombstone(name string, version uint64, at time.Time) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	ok := sh.s.Tombstone(name, version, at)
	sh.mu.Unlock()
	return ok
}

// RestoreTombstone records a tombstone unconditionally; see
// Store.RestoreTombstone.
func (s *Sharded) RestoreTombstone(name string, version uint64, at time.Time) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	sh.s.RestoreTombstone(name, version, at)
	sh.mu.Unlock()
}

// Tombstones returns every live tombstone across shards, sorted by name.
func (s *Sharded) Tombstones() []TombRecord {
	var out []TombRecord
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.s.Tombstones()...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DiscardAll drops every copy and tombstone across shards without
// informing the persister; see Store.DiscardAll. Per-shard atomicity
// only — callers (Leave) hold their own serialization.
func (s *Sharded) DiscardAll() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.s.DiscardAll()
		sh.mu.Unlock()
	}
	return n
}

// TombVersion returns the tombstone version of name, if tombstoned.
func (s *Sharded) TombVersion(name string) (uint64, bool) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	v, ok := sh.s.TombVersion(name)
	sh.mu.Unlock()
	return v, ok
}

// PruneTombstones drops tombstones recorded before cutoff across every
// shard and returns how many were dropped.
func (s *Sharded) PruneTombstones(cutoff time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.s.PruneTombstones(cutoff)
		sh.mu.Unlock()
	}
	return n
}

// Promote upgrades a replica of name to an inserted copy.
func (s *Sharded) Promote(name string) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	sh.s.Promote(name)
	sh.mu.Unlock()
}

// Hits returns the access count of name in the current window.
func (s *Sharded) Hits(name string) uint64 {
	sh := s.shardFor(name)
	sh.mu.Lock()
	h := sh.s.Hits(name)
	sh.mu.Unlock()
	return h
}

// ResetHits zeroes every access counter.
func (s *Sharded) ResetHits() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.s.ResetHits()
		sh.mu.Unlock()
	}
}

// Names returns the sorted names of all copies of the given kind.
func (s *Sharded) Names(kind Kind) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.s.Names(kind)...)
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// AllNames returns the sorted names of every copy.
func (s *Sharded) AllNames() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.s.AllNames()...)
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// ColdReplicas returns the sorted names of replicas below minHits in the
// current window.
func (s *Sharded) ColdReplicas(minHits uint64) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.s.ColdReplicas(minHits)...)
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored copies.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.s.Len()
		sh.mu.Unlock()
	}
	return n
}

// TombstoneCount returns the number of live tombstones across shards.
func (s *Sharded) TombstoneCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.s.TombstoneCount()
		sh.mu.Unlock()
	}
	return n
}

// Records returns the store's full inventory, sorted by name. Per-shard
// consistency only, like every other aggregate read.
func (s *Sharded) Records() []Record {
	var out []Record
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.s.Records()...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot merges the shards — copies and tombstones — into one plain
// Store. Copies are re-Put, so the snapshot shares no entry structure
// with the live store. Per-shard consistency only.
func (s *Sharded) Snapshot() *Store {
	out := New()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, name := range sh.s.AllNames() {
			f, _ := sh.s.Peek(name)
			kind, _ := sh.s.KindOf(name)
			out.Put(f, kind)
		}
		for _, t := range sh.s.Tombstones() {
			out.RestoreTombstone(t.Name, t.Version, t.At)
		}
		sh.mu.Unlock()
	}
	return out
}

// String summarizes the store in the same format as Store.String.
func (s *Sharded) String() string {
	ins, total := 0, 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		ins += len(sh.s.Names(Inserted))
		total += sh.s.Len()
		sh.mu.Unlock()
	}
	return fmt.Sprintf("store{inserted=%d replicas=%d}", ins, total-ins)
}
