// Package store implements a LessLog node's local file store (paper §2.2
// and §5.2). It distinguishes *inserted* files — the authoritative copies
// placed by (ADVANCED)INSERTFILE, which must be migrated when the node
// leaves — from *replicated* files created to shed load, which are simply
// discarded on departure. Each copy carries a version for top-down update
// propagation and an access counter feeding the paper's counter-based
// replica-removal mechanism (§6).
package store

import (
	"fmt"
	"sort"
	"time"
)

// Kind distinguishes the two copy classes of §5.2.
type Kind uint8

const (
	// Inserted marks an authoritative copy placed by file insertion.
	Inserted Kind = iota
	// Replica marks a copy created by REPLICATEFILE to shed load.
	Replica
)

// String returns "inserted" or "replica".
func (k Kind) String() string {
	if k == Inserted {
		return "inserted"
	}
	return "replica"
}

// File is an immutable snapshot of a stored file.
type File struct {
	Name    string
	Data    []byte
	Version uint64
}

type entry struct {
	file File
	kind Kind
	hits uint64
}

// tomb records a deletion: the version the delete carried (or the erased
// copy's own version when the delete was unversioned) and when it was
// recorded, for horizon-based pruning. A name never carries both a live
// copy and a tombstone: Tombstone erases the copy, and any write that
// supersedes the tombstone clears it.
type tomb struct {
	version uint64
	at      time.Time
}

// Persister receives every durable mutation the store applies, in apply
// order — the hook a write-ahead log (internal/wal) attaches through
// SetPersister. Calls happen synchronously inside the mutator, under
// whatever lock serializes the store (the shard mutex for Sharded), so
// the persisted order per name is exactly the applied order, and a
// persister that blocks until the record is on disk makes "applied"
// imply "durable". A nil persister — the default — keeps the store
// memory-only, which is what tests and the simulation engine want.
//
// Access counters (hits) and tombstone pruning are deliberately not
// persisted: counters are a per-window load signal, and replayed
// tombstones carry their record time, so the repair loop's next TTL
// prune re-drops anything pruned before the restart.
type Persister interface {
	// PersistPut logs a copy placement or overwrite (Put, Update,
	// Promote — kind is the effective stored kind).
	PersistPut(f File, kind Kind)
	// PersistTombstone logs a versioned deletion marker with its merged
	// (winning) version.
	PersistTombstone(name string, version uint64, at time.Time)
	// PersistDelete logs a local-only removal (no tombstone).
	PersistDelete(name string)
}

// Store is one node's local storage. It is not safe for concurrent use;
// the cluster engine serializes access per node, and the networked node
// wraps it in its own mutex.
type Store struct {
	files map[string]*entry
	tombs map[string]tomb
	p     Persister
}

// New returns an empty store.
func New() *Store {
	return &Store{files: make(map[string]*entry), tombs: make(map[string]tomb)}
}

// SetPersister attaches (or, with nil, detaches) the durability hook.
// Attach only after any recovery replay has filled the store, or the
// replay itself would be re-appended to the log it came from.
func (s *Store) SetPersister(p Persister) { s.p = p }

// Put places a copy of f with the given kind, replacing any existing copy
// of the same name (and resetting its access counter) and clearing any
// tombstone — the unconditional, authoritative write. Replacing an
// inserted copy with a replica is rejected: an authoritative copy never
// loses its status to a load-shedding one. Callers that may race newer
// writes or deletions should use PutNewer instead.
func (s *Store) Put(f File, kind Kind) {
	if old, ok := s.files[f.Name]; ok && old.kind == Inserted && kind == Replica {
		kind = Inserted
	}
	delete(s.tombs, f.Name)
	s.files[f.Name] = &entry{file: f, kind: kind}
	if s.p != nil {
		s.p.PersistPut(f, kind)
	}
}

// PutResult says what PutNewer did with a copy.
type PutResult uint8

const (
	// PutApplied: the copy was stored.
	PutApplied PutResult = iota
	// PutStale: an existing copy at least as new was kept instead.
	PutStale
	// PutTombstoned: the name was deleted at a version at least as new as
	// the offered copy; the write was refused.
	PutTombstoned
)

// PutNewer places f with kind unless the name's history already dominates
// it: a tombstone at or above f.Version refuses the write (the name was
// deleted at least as recently as this copy was written), and an existing
// copy at or above f.Version is kept. The surviving version is returned
// either way; a write that goes through clears any older tombstone.
func (s *Store) PutNewer(f File, kind Kind) (uint64, PutResult) {
	if t, ok := s.tombs[f.Name]; ok && f.Version <= t.version {
		return t.version, PutTombstoned
	}
	if old, ok := s.files[f.Name]; ok && old.file.Version >= f.Version {
		return old.file.Version, PutStale
	}
	s.Put(f, kind)
	return f.Version, PutApplied
}

// Get returns the copy of name, counting the access, and reports whether
// one exists.
func (s *Store) Get(name string) (File, bool) {
	e, ok := s.files[name]
	if !ok {
		return File{}, false
	}
	e.hits++
	return e.file, true
}

// Peek returns the copy of name without counting an access.
func (s *Store) Peek(name string) (File, bool) {
	e, ok := s.files[name]
	if !ok {
		return File{}, false
	}
	return e.file, true
}

// Has reports whether a copy of name exists, without counting an access.
func (s *Store) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// KindOf returns the kind of the stored copy of name.
func (s *Store) KindOf(name string) (Kind, bool) {
	e, ok := s.files[name]
	if !ok {
		return 0, false
	}
	return e.kind, true
}

// Update overwrites the data of an existing copy if newVersion is strictly
// newer, preserving its kind and reporting whether an overwrite happened.
// Stale or duplicate update deliveries are therefore idempotent.
func (s *Store) Update(name string, data []byte, newVersion uint64) bool {
	e, ok := s.files[name]
	if !ok || newVersion <= e.file.Version {
		return false
	}
	e.file.Data = data
	e.file.Version = newVersion
	if s.p != nil {
		s.p.PersistPut(e.file, e.kind)
	}
	return true
}

// Delete removes the copy of name and reports whether one existed. No
// tombstone is left behind: this is the local-only removal (replica
// eviction, post-handoff cleanup), not a cluster-wide deletion — the file
// still exists elsewhere and may legitimately be pushed back. Cluster
// deletions go through Tombstone.
func (s *Store) Delete(name string) bool {
	if _, ok := s.files[name]; !ok {
		return false
	}
	delete(s.files, name)
	if s.p != nil {
		s.p.PersistDelete(name)
	}
	return true
}

// Tombstone erases the copy of name (if any) and records a versioned
// tombstone so the deletion wins against later stale writes: PutNewer
// refuses any copy at or below the tombstone's version until a newer
// write supersedes it or PruneTombstones drops it. The recorded version
// is the largest of version, the erased copy's own version, and any
// existing tombstone's, so the exact copy a delete erased can never be
// re-planted by a lagging push. Reports whether a copy was erased.
// Nothing is recorded for a name this store neither holds nor has
// already tombstoned, bounding tombstone growth to names actually held.
func (s *Store) Tombstone(name string, version uint64, at time.Time) bool {
	e, had := s.files[name]
	if had {
		if e.file.Version > version {
			version = e.file.Version
		}
		delete(s.files, name)
	}
	t, marked := s.tombs[name]
	if !had && !marked {
		return false
	}
	if t.version > version {
		version = t.version
	}
	s.tombs[name] = tomb{version: version, at: at}
	if s.p != nil {
		s.p.PersistTombstone(name, version, at)
	}
	return had
}

// RestoreTombstone records a tombstone for name unconditionally, erasing
// any copy it dominates — the recovery-replay path (internal/wal). Unlike
// Tombstone it does not require the name to be held or already marked:
// after log compaction a tombstone may be the only record a name has
// left, and Tombstone would drop it as a no-op. Versions still merge
// upward so replay order quirks can never lower a mark. Nothing is
// persisted — the record being restored is already in the log.
func (s *Store) RestoreTombstone(name string, version uint64, at time.Time) {
	if e, ok := s.files[name]; ok {
		if e.file.Version > version {
			version = e.file.Version
		}
		delete(s.files, name)
	}
	if t, ok := s.tombs[name]; ok && t.version > version {
		version = t.version
	}
	s.tombs[name] = tomb{version: version, at: at}
}

// DiscardAll drops every copy and tombstone without informing the
// persister, and returns how many copies were dropped. This is the
// in-memory half of a graceful departure (netnode Leave): the durable
// half is a single retire barrier record (wal.Engine.Retire), not one
// delete record per name, so the persister must not see the discard.
func (s *Store) DiscardAll() int {
	n := len(s.files)
	s.files = make(map[string]*entry)
	s.tombs = make(map[string]tomb)
	return n
}

// TombVersion returns the tombstone version of name and whether name is
// currently tombstoned.
func (s *Store) TombVersion(name string) (uint64, bool) {
	t, ok := s.tombs[name]
	return t.version, ok
}

// PruneTombstones drops tombstones recorded before cutoff — the GC
// horizon after which a deletion is assumed to have reached every
// replica — and returns how many were dropped. The prune itself is not
// persisted: replay may briefly restore pruned marks, but they carry
// their original record time, so the next TTL prune drops them again.
func (s *Store) PruneTombstones(cutoff time.Time) int {
	n := 0
	for name, t := range s.tombs {
		if t.at.Before(cutoff) {
			delete(s.tombs, name)
			n++
		}
	}
	return n
}

// Promote upgrades a replica of name to an inserted copy (used when a
// leaving node's files are re-inserted at their new holder).
func (s *Store) Promote(name string) {
	e, ok := s.files[name]
	if !ok || e.kind == Inserted {
		return
	}
	e.kind = Inserted
	// Kind is durable state: an inserted copy must be migrated on Leave
	// where a replica is discarded, so a promotion that only lived in
	// memory would demote back across a restart.
	if s.p != nil {
		s.p.PersistPut(e.file, Inserted)
	}
}

// Hits returns the access count of name since it was stored or last reset.
func (s *Store) Hits(name string) uint64 {
	if e, ok := s.files[name]; ok {
		return e.hits
	}
	return 0
}

// ResetHits zeroes every access counter, starting a new counting window
// for the §6 counter-based removal mechanism.
func (s *Store) ResetHits() {
	for _, e := range s.files {
		e.hits = 0
	}
}

// Names returns the sorted names of all copies of the given kind.
func (s *Store) Names(kind Kind) []string {
	var out []string
	for n, e := range s.files {
		if e.kind == kind {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// AllNames returns the sorted names of every copy.
func (s *Store) AllNames() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ColdReplicas returns the sorted names of replicas whose access count in
// the current window is strictly below minHits — the removal candidates of
// the counter-based mechanism. Inserted copies are never candidates.
func (s *Store) ColdReplicas(minHits uint64) []string {
	var out []string
	for n, e := range s.files {
		if e.kind == Replica && e.hits < minHits {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored copies.
func (s *Store) Len() int { return len(s.files) }

// TombstoneCount returns the number of live tombstones — deletions
// recorded but not yet pruned. Surfaced as a gauge so operators can see
// delete propagation debt instead of inferring it from memory growth.
func (s *Store) TombstoneCount() int { return len(s.tombs) }

// TombRecord is one live tombstone: the deleted name, the winning
// version, and when the mark was recorded (the TTL-prune clock).
type TombRecord struct {
	Name    string
	Version uint64
	At      time.Time
}

// Tombstones returns every live tombstone, sorted by name — the
// enumeration checkpointing and compaction need to carry deletions
// across restarts.
func (s *Store) Tombstones() []TombRecord {
	out := make([]TombRecord, 0, len(s.tombs))
	for n, t := range s.tombs {
		out = append(out, TombRecord{Name: n, Version: t.version, At: t.at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Record is one inventory row: a copy's identity plus its §6 access count
// in the current window. The fleet scraper aggregates these into
// replica-count distributions and top-K hot-name lists.
type Record struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Kind    string `json:"kind"`
	Hits    uint64 `json:"hits"`
}

// Records returns the store's full inventory, sorted by name.
func (s *Store) Records() []Record {
	out := make([]Record, 0, len(s.files))
	for n, e := range s.files {
		out = append(out, Record{Name: n, Version: e.file.Version, Kind: e.kind.String(), Hits: e.hits})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String summarizes the store for debugging.
func (s *Store) String() string {
	ins, rep := 0, 0
	for _, e := range s.files {
		if e.kind == Inserted {
			ins++
		} else {
			rep++
		}
	}
	return fmt.Sprintf("store{inserted=%d replicas=%d}", ins, rep)
}
