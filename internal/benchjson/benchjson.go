// Package benchjson emits machine-readable benchmark results. A bench
// target sets BENCH_JSON_DIR and the instrumented benchmarks drop
// BENCH_<name>.json files there — ns/op, bytes-on-wire, speedups —
// alongside the human-readable `go test -bench` text, so results can be
// committed and diffed across PRs without scraping bench output. With
// BENCH_JSON_DIR unset (the normal `go test` path) recording is a no-op.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// EnvDir is the environment variable naming the output directory.
const EnvDir = "BENCH_JSON_DIR"

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesOnWire uint64  `json:"bytes_on_wire,omitempty"`
	// Speedup is this result's improvement factor over its declared
	// baseline (e.g. relay ns/op ÷ locate ns/op), when one applies.
	Speedup float64 `json:"speedup,omitempty"`
	// Extra carries measurement-specific values (p50/p99 latencies,
	// counter deltas) without widening the schema per benchmark.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Record merges results by Name into $BENCH_JSON_DIR/BENCH_<file>.json.
// Existing entries for other names are preserved, so benchmarks of one
// suite can record independently into a shared file. No-op (and no error)
// when BENCH_JSON_DIR is unset.
func Record(file string, results ...Result) error {
	dir := os.Getenv(EnvDir)
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+file+".json")
	merged := map[string]Result{}
	if old, err := os.ReadFile(path); err == nil {
		// Best-effort merge: an unreadable or non-JSON file is replaced.
		_ = json.Unmarshal(old, &merged)
	}
	for _, r := range results {
		merged[r.Name] = r
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
