package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordNoopWithoutDir(t *testing.T) {
	t.Setenv(EnvDir, "")
	if err := Record("x", Result{Name: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordMerges(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvDir, dir)
	if err := Record("suite", Result{Name: "relay", NsPerOp: 100}); err != nil {
		t.Fatal(err)
	}
	// A second Record must keep the first entry and overwrite by name.
	if err := Record("suite",
		Result{Name: "locate", NsPerOp: 25, Speedup: 4, Extra: map[string]float64{"p99_ms": 1.5}},
		Result{Name: "relay", NsPerOp: 90, BytesOnWire: 4096},
	); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_suite.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2: %v", len(got), got)
	}
	if got["relay"].NsPerOp != 90 || got["relay"].BytesOnWire != 4096 {
		t.Fatalf("relay = %+v", got["relay"])
	}
	if got["locate"].Speedup != 4 || got["locate"].Extra["p99_ms"] != 1.5 {
		t.Fatalf("locate = %+v", got["locate"])
	}
}
