package msg

// The KindBatch payload: a count-prefixed list of length-prefixed inner
// encodings, riding in Request.Data (sub-requests) and Response.Data
// (sub-responses, one per sub-request, in order). Every nested length is
// bounds-checked against both MaxBatch and the bytes actually present, the
// same discipline the trace tail follows — a lying inner prefix is
// ErrCorrupt, never an allocation. Batches do not nest: a KindBatch
// sub-request is rejected at decode time, so a malicious frame cannot
// recurse the peer-side dispatcher.

import "encoding/binary"

// AppendBatchRequests encodes reqs as a KindBatch payload onto b. Each
// sub-request obeys the ordinary request limits; KindBatch sub-requests
// are rejected (no nesting), as is a batch whose encoding would not fit a
// Data field.
func AppendBatchRequests(b []byte, reqs []*Request) ([]byte, error) {
	if len(reqs) > MaxBatch {
		return nil, ErrFrameTooLarge
	}
	start := len(b)
	b = binary.BigEndian.AppendUint32(b, uint32(len(reqs)))
	for _, r := range reqs {
		if r.Kind == KindBatch {
			return nil, ErrFrameTooLarge
		}
		inner, err := AppendRequest(nil, r)
		if err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(inner)))
		b = append(b, inner...)
	}
	if len(b)-start > MaxData {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeBatchRequests parses a KindBatch payload into its sub-requests.
func DecodeBatchRequests(b []byte) ([]*Request, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	if n > MaxBatch {
		return nil, ErrCorrupt
	}
	reqs := make([]*Request, 0, n)
	for i := uint32(0); i < n; i++ {
		var ln uint32
		if ln, b, err = takeUint32(b); err != nil {
			return nil, err
		}
		if int(ln) > len(b) {
			return nil, ErrCorrupt
		}
		r, err := DecodeRequest(b[:ln])
		if err != nil {
			return nil, err
		}
		if r.Kind == KindBatch {
			return nil, ErrCorrupt
		}
		reqs = append(reqs, r)
		b = b[ln:]
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return reqs, nil
}

// AppendBatchResponses encodes the sub-responses of a served batch onto b.
func AppendBatchResponses(b []byte, resps []*Response) ([]byte, error) {
	if len(resps) > MaxBatch {
		return nil, ErrFrameTooLarge
	}
	start := len(b)
	b = binary.BigEndian.AppendUint32(b, uint32(len(resps)))
	for _, r := range resps {
		inner, err := AppendResponse(nil, r)
		if err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(inner)))
		b = append(b, inner...)
	}
	if len(b)-start > MaxData {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeBatchResponses parses a served batch's sub-responses.
func DecodeBatchResponses(b []byte) ([]*Response, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	if n > MaxBatch {
		return nil, ErrCorrupt
	}
	resps := make([]*Response, 0, n)
	for i := uint32(0); i < n; i++ {
		var ln uint32
		if ln, b, err = takeUint32(b); err != nil {
			return nil, err
		}
		if int(ln) > len(b) {
			return nil, ErrCorrupt
		}
		r, err := DecodeResponse(b[:ln])
		if err != nil {
			return nil, err
		}
		resps = append(resps, r)
		b = b[ln:]
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return resps, nil
}
